# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_diffusion "/root/repo/build/examples/heat_diffusion" "96" "8")
set_tests_properties(example_heat_diffusion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_overdrive_tour "/root/repo/build/examples/overdrive_tour")
set_tests_properties(example_overdrive_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_false_sharing "/root/repo/build/examples/false_sharing")
set_tests_properties(example_false_sharing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_protocol "/root/repo/build/examples/custom_protocol")
set_tests_properties(example_custom_protocol PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
