
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_protocol.cpp" "examples/CMakeFiles/custom_protocol.dir/custom_protocol.cpp.o" "gcc" "examples/CMakeFiles/custom_protocol.dir/custom_protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/updsm_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/updsm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/updsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/updsm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/updsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
