# Empty dependencies file for overdrive_tour.
# This may be replaced when dependencies are built.
