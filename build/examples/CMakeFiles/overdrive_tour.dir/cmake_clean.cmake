file(REMOVE_RECURSE
  "CMakeFiles/overdrive_tour.dir/overdrive_tour.cpp.o"
  "CMakeFiles/overdrive_tour.dir/overdrive_tour.cpp.o.d"
  "overdrive_tour"
  "overdrive_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overdrive_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
