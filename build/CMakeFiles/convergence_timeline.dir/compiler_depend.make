# Empty compiler generated dependencies file for convergence_timeline.
# This may be replaced when dependencies are built.
