file(REMOVE_RECURSE
  "CMakeFiles/ablation_os_stress.dir/bench/ablation_os_stress.cpp.o"
  "CMakeFiles/ablation_os_stress.dir/bench/ablation_os_stress.cpp.o.d"
  "bench/ablation_os_stress"
  "bench/ablation_os_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_os_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
