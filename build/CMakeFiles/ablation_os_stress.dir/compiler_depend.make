# Empty compiler generated dependencies file for ablation_os_stress.
# This may be replaced when dependencies are built.
