# Empty compiler generated dependencies file for ablation_nodes.
# This may be replaced when dependencies are built.
