file(REMOVE_RECURSE
  "CMakeFiles/ablation_nodes.dir/bench/ablation_nodes.cpp.o"
  "CMakeFiles/ablation_nodes.dir/bench/ablation_nodes.cpp.o.d"
  "bench/ablation_nodes"
  "bench/ablation_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
