# Empty dependencies file for fig2_speedups.
# This may be replaced when dependencies are built.
