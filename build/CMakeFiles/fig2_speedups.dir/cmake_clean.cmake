file(REMOVE_RECURSE
  "CMakeFiles/fig2_speedups.dir/bench/fig2_speedups.cpp.o"
  "CMakeFiles/fig2_speedups.dir/bench/fig2_speedups.cpp.o.d"
  "bench/fig2_speedups"
  "bench/fig2_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
