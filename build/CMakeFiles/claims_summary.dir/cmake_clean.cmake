file(REMOVE_RECURSE
  "CMakeFiles/claims_summary.dir/bench/claims_summary.cpp.o"
  "CMakeFiles/claims_summary.dir/bench/claims_summary.cpp.o.d"
  "bench/claims_summary"
  "bench/claims_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
