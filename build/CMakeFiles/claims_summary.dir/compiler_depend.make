# Empty compiler generated dependencies file for claims_summary.
# This may be replaced when dependencies are built.
