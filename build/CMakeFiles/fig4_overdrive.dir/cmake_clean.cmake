file(REMOVE_RECURSE
  "CMakeFiles/fig4_overdrive.dir/bench/fig4_overdrive.cpp.o"
  "CMakeFiles/fig4_overdrive.dir/bench/fig4_overdrive.cpp.o.d"
  "bench/fig4_overdrive"
  "bench/fig4_overdrive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_overdrive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
