# Empty dependencies file for fig4_overdrive.
# This may be replaced when dependencies are built.
