# Empty dependencies file for sweep_matrix.
# This may be replaced when dependencies are built.
