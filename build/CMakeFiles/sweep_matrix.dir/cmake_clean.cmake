file(REMOVE_RECURSE
  "CMakeFiles/sweep_matrix.dir/bench/sweep_matrix.cpp.o"
  "CMakeFiles/sweep_matrix.dir/bench/sweep_matrix.cpp.o.d"
  "bench/sweep_matrix"
  "bench/sweep_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
