file(REMOVE_RECURSE
  "CMakeFiles/ablation_page_size.dir/bench/ablation_page_size.cpp.o"
  "CMakeFiles/ablation_page_size.dir/bench/ablation_page_size.cpp.o.d"
  "bench/ablation_page_size"
  "bench/ablation_page_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_page_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
