# Empty dependencies file for ablation_page_size.
# This may be replaced when dependencies are built.
