file(REMOVE_RECURSE
  "CMakeFiles/updsm_common.dir/src/log.cpp.o"
  "CMakeFiles/updsm_common.dir/src/log.cpp.o.d"
  "libupdsm_common.a"
  "libupdsm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
