file(REMOVE_RECURSE
  "libupdsm_common.a"
)
