# Empty dependencies file for updsm_common.
# This may be replaced when dependencies are built.
