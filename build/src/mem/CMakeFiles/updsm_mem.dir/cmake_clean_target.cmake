file(REMOVE_RECURSE
  "libupdsm_mem.a"
)
