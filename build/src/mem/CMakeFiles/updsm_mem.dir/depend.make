# Empty dependencies file for updsm_mem.
# This may be replaced when dependencies are built.
