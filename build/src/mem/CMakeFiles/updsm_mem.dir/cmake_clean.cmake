file(REMOVE_RECURSE
  "CMakeFiles/updsm_mem.dir/src/diff.cpp.o"
  "CMakeFiles/updsm_mem.dir/src/diff.cpp.o.d"
  "CMakeFiles/updsm_mem.dir/src/page_table.cpp.o"
  "CMakeFiles/updsm_mem.dir/src/page_table.cpp.o.d"
  "CMakeFiles/updsm_mem.dir/src/shared_heap.cpp.o"
  "CMakeFiles/updsm_mem.dir/src/shared_heap.cpp.o.d"
  "libupdsm_mem.a"
  "libupdsm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
