# Empty compiler generated dependencies file for updsm_protocols.
# This may be replaced when dependencies are built.
