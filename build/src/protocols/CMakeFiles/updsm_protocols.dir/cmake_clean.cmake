file(REMOVE_RECURSE
  "CMakeFiles/updsm_protocols.dir/src/bar.cpp.o"
  "CMakeFiles/updsm_protocols.dir/src/bar.cpp.o.d"
  "CMakeFiles/updsm_protocols.dir/src/factory.cpp.o"
  "CMakeFiles/updsm_protocols.dir/src/factory.cpp.o.d"
  "CMakeFiles/updsm_protocols.dir/src/lmw.cpp.o"
  "CMakeFiles/updsm_protocols.dir/src/lmw.cpp.o.d"
  "CMakeFiles/updsm_protocols.dir/src/sc_sw.cpp.o"
  "CMakeFiles/updsm_protocols.dir/src/sc_sw.cpp.o.d"
  "libupdsm_protocols.a"
  "libupdsm_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
