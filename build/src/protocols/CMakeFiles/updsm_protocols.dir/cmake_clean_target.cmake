file(REMOVE_RECURSE
  "libupdsm_protocols.a"
)
