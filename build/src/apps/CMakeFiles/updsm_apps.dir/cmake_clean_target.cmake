file(REMOVE_RECURSE
  "libupdsm_apps.a"
)
