file(REMOVE_RECURSE
  "CMakeFiles/updsm_apps.dir/src/application.cpp.o"
  "CMakeFiles/updsm_apps.dir/src/application.cpp.o.d"
  "CMakeFiles/updsm_apps.dir/src/barnes.cpp.o"
  "CMakeFiles/updsm_apps.dir/src/barnes.cpp.o.d"
  "CMakeFiles/updsm_apps.dir/src/expl.cpp.o"
  "CMakeFiles/updsm_apps.dir/src/expl.cpp.o.d"
  "CMakeFiles/updsm_apps.dir/src/fft.cpp.o"
  "CMakeFiles/updsm_apps.dir/src/fft.cpp.o.d"
  "CMakeFiles/updsm_apps.dir/src/jacobi.cpp.o"
  "CMakeFiles/updsm_apps.dir/src/jacobi.cpp.o.d"
  "CMakeFiles/updsm_apps.dir/src/registry.cpp.o"
  "CMakeFiles/updsm_apps.dir/src/registry.cpp.o.d"
  "CMakeFiles/updsm_apps.dir/src/shallow.cpp.o"
  "CMakeFiles/updsm_apps.dir/src/shallow.cpp.o.d"
  "CMakeFiles/updsm_apps.dir/src/sor.cpp.o"
  "CMakeFiles/updsm_apps.dir/src/sor.cpp.o.d"
  "CMakeFiles/updsm_apps.dir/src/tomcatv.cpp.o"
  "CMakeFiles/updsm_apps.dir/src/tomcatv.cpp.o.d"
  "libupdsm_apps.a"
  "libupdsm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
