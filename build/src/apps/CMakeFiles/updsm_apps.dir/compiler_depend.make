# Empty compiler generated dependencies file for updsm_apps.
# This may be replaced when dependencies are built.
