
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/src/application.cpp" "src/apps/CMakeFiles/updsm_apps.dir/src/application.cpp.o" "gcc" "src/apps/CMakeFiles/updsm_apps.dir/src/application.cpp.o.d"
  "/root/repo/src/apps/src/barnes.cpp" "src/apps/CMakeFiles/updsm_apps.dir/src/barnes.cpp.o" "gcc" "src/apps/CMakeFiles/updsm_apps.dir/src/barnes.cpp.o.d"
  "/root/repo/src/apps/src/expl.cpp" "src/apps/CMakeFiles/updsm_apps.dir/src/expl.cpp.o" "gcc" "src/apps/CMakeFiles/updsm_apps.dir/src/expl.cpp.o.d"
  "/root/repo/src/apps/src/fft.cpp" "src/apps/CMakeFiles/updsm_apps.dir/src/fft.cpp.o" "gcc" "src/apps/CMakeFiles/updsm_apps.dir/src/fft.cpp.o.d"
  "/root/repo/src/apps/src/jacobi.cpp" "src/apps/CMakeFiles/updsm_apps.dir/src/jacobi.cpp.o" "gcc" "src/apps/CMakeFiles/updsm_apps.dir/src/jacobi.cpp.o.d"
  "/root/repo/src/apps/src/registry.cpp" "src/apps/CMakeFiles/updsm_apps.dir/src/registry.cpp.o" "gcc" "src/apps/CMakeFiles/updsm_apps.dir/src/registry.cpp.o.d"
  "/root/repo/src/apps/src/shallow.cpp" "src/apps/CMakeFiles/updsm_apps.dir/src/shallow.cpp.o" "gcc" "src/apps/CMakeFiles/updsm_apps.dir/src/shallow.cpp.o.d"
  "/root/repo/src/apps/src/sor.cpp" "src/apps/CMakeFiles/updsm_apps.dir/src/sor.cpp.o" "gcc" "src/apps/CMakeFiles/updsm_apps.dir/src/sor.cpp.o.d"
  "/root/repo/src/apps/src/tomcatv.cpp" "src/apps/CMakeFiles/updsm_apps.dir/src/tomcatv.cpp.o" "gcc" "src/apps/CMakeFiles/updsm_apps.dir/src/tomcatv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsm/CMakeFiles/updsm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/updsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/updsm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/updsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
