file(REMOVE_RECURSE
  "libupdsm_harness.a"
)
