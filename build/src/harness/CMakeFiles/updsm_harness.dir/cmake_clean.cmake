file(REMOVE_RECURSE
  "CMakeFiles/updsm_harness.dir/src/assurance.cpp.o"
  "CMakeFiles/updsm_harness.dir/src/assurance.cpp.o.d"
  "CMakeFiles/updsm_harness.dir/src/experiment.cpp.o"
  "CMakeFiles/updsm_harness.dir/src/experiment.cpp.o.d"
  "CMakeFiles/updsm_harness.dir/src/report.cpp.o"
  "CMakeFiles/updsm_harness.dir/src/report.cpp.o.d"
  "libupdsm_harness.a"
  "libupdsm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
