# Empty dependencies file for updsm_harness.
# This may be replaced when dependencies are built.
