# Empty compiler generated dependencies file for updsm_dsm.
# This may be replaced when dependencies are built.
