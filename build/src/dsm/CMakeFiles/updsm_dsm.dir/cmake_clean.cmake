file(REMOVE_RECURSE
  "CMakeFiles/updsm_dsm.dir/src/cluster.cpp.o"
  "CMakeFiles/updsm_dsm.dir/src/cluster.cpp.o.d"
  "CMakeFiles/updsm_dsm.dir/src/diff_store.cpp.o"
  "CMakeFiles/updsm_dsm.dir/src/diff_store.cpp.o.d"
  "CMakeFiles/updsm_dsm.dir/src/race_detector.cpp.o"
  "CMakeFiles/updsm_dsm.dir/src/race_detector.cpp.o.d"
  "CMakeFiles/updsm_dsm.dir/src/runtime.cpp.o"
  "CMakeFiles/updsm_dsm.dir/src/runtime.cpp.o.d"
  "libupdsm_dsm.a"
  "libupdsm_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
