
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsm/src/cluster.cpp" "src/dsm/CMakeFiles/updsm_dsm.dir/src/cluster.cpp.o" "gcc" "src/dsm/CMakeFiles/updsm_dsm.dir/src/cluster.cpp.o.d"
  "/root/repo/src/dsm/src/diff_store.cpp" "src/dsm/CMakeFiles/updsm_dsm.dir/src/diff_store.cpp.o" "gcc" "src/dsm/CMakeFiles/updsm_dsm.dir/src/diff_store.cpp.o.d"
  "/root/repo/src/dsm/src/race_detector.cpp" "src/dsm/CMakeFiles/updsm_dsm.dir/src/race_detector.cpp.o" "gcc" "src/dsm/CMakeFiles/updsm_dsm.dir/src/race_detector.cpp.o.d"
  "/root/repo/src/dsm/src/runtime.cpp" "src/dsm/CMakeFiles/updsm_dsm.dir/src/runtime.cpp.o" "gcc" "src/dsm/CMakeFiles/updsm_dsm.dir/src/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/updsm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/updsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/updsm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
