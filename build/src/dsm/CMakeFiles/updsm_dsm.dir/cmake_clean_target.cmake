file(REMOVE_RECURSE
  "libupdsm_dsm.a"
)
