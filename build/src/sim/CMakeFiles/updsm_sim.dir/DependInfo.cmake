
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/src/gang.cpp" "src/sim/CMakeFiles/updsm_sim.dir/src/gang.cpp.o" "gcc" "src/sim/CMakeFiles/updsm_sim.dir/src/gang.cpp.o.d"
  "/root/repo/src/sim/src/network.cpp" "src/sim/CMakeFiles/updsm_sim.dir/src/network.cpp.o" "gcc" "src/sim/CMakeFiles/updsm_sim.dir/src/network.cpp.o.d"
  "/root/repo/src/sim/src/os_model.cpp" "src/sim/CMakeFiles/updsm_sim.dir/src/os_model.cpp.o" "gcc" "src/sim/CMakeFiles/updsm_sim.dir/src/os_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/updsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
