file(REMOVE_RECURSE
  "CMakeFiles/updsm_sim.dir/src/gang.cpp.o"
  "CMakeFiles/updsm_sim.dir/src/gang.cpp.o.d"
  "CMakeFiles/updsm_sim.dir/src/network.cpp.o"
  "CMakeFiles/updsm_sim.dir/src/network.cpp.o.d"
  "CMakeFiles/updsm_sim.dir/src/os_model.cpp.o"
  "CMakeFiles/updsm_sim.dir/src/os_model.cpp.o.d"
  "libupdsm_sim.a"
  "libupdsm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
