# Empty compiler generated dependencies file for updsm_sim.
# This may be replaced when dependencies are built.
