file(REMOVE_RECURSE
  "libupdsm_sim.a"
)
