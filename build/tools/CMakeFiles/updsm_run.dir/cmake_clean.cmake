file(REMOVE_RECURSE
  "CMakeFiles/updsm_run.dir/updsm_run.cpp.o"
  "CMakeFiles/updsm_run.dir/updsm_run.cpp.o.d"
  "updsm_run"
  "updsm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
