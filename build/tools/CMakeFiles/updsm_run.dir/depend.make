# Empty dependencies file for updsm_run.
# This may be replaced when dependencies are built.
