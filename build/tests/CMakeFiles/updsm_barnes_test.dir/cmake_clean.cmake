file(REMOVE_RECURSE
  "CMakeFiles/updsm_barnes_test.dir/barnes_test.cpp.o"
  "CMakeFiles/updsm_barnes_test.dir/barnes_test.cpp.o.d"
  "updsm_barnes_test"
  "updsm_barnes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_barnes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
