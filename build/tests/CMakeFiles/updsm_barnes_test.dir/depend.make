# Empty dependencies file for updsm_barnes_test.
# This may be replaced when dependencies are built.
