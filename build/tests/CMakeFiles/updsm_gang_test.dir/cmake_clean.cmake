file(REMOVE_RECURSE
  "CMakeFiles/updsm_gang_test.dir/gang_test.cpp.o"
  "CMakeFiles/updsm_gang_test.dir/gang_test.cpp.o.d"
  "updsm_gang_test"
  "updsm_gang_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_gang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
