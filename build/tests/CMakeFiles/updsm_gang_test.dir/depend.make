# Empty dependencies file for updsm_gang_test.
# This may be replaced when dependencies are built.
