# Empty compiler generated dependencies file for updsm_race_detector_test.
# This may be replaced when dependencies are built.
