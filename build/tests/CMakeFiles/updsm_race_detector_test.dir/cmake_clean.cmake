file(REMOVE_RECURSE
  "CMakeFiles/updsm_race_detector_test.dir/race_detector_test.cpp.o"
  "CMakeFiles/updsm_race_detector_test.dir/race_detector_test.cpp.o.d"
  "updsm_race_detector_test"
  "updsm_race_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_race_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
