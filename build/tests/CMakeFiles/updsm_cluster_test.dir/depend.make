# Empty dependencies file for updsm_cluster_test.
# This may be replaced when dependencies are built.
