file(REMOVE_RECURSE
  "CMakeFiles/updsm_cluster_test.dir/cluster_test.cpp.o"
  "CMakeFiles/updsm_cluster_test.dir/cluster_test.cpp.o.d"
  "updsm_cluster_test"
  "updsm_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
