file(REMOVE_RECURSE
  "CMakeFiles/updsm_overdrive_test.dir/overdrive_test.cpp.o"
  "CMakeFiles/updsm_overdrive_test.dir/overdrive_test.cpp.o.d"
  "updsm_overdrive_test"
  "updsm_overdrive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_overdrive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
