# Empty compiler generated dependencies file for updsm_overdrive_test.
# This may be replaced when dependencies are built.
