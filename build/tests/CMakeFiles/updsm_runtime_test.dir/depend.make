# Empty dependencies file for updsm_runtime_test.
# This may be replaced when dependencies are built.
