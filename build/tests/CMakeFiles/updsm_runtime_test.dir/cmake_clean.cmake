file(REMOVE_RECURSE
  "CMakeFiles/updsm_runtime_test.dir/runtime_test.cpp.o"
  "CMakeFiles/updsm_runtime_test.dir/runtime_test.cpp.o.d"
  "updsm_runtime_test"
  "updsm_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
