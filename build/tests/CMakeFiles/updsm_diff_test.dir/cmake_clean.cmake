file(REMOVE_RECURSE
  "CMakeFiles/updsm_diff_test.dir/diff_test.cpp.o"
  "CMakeFiles/updsm_diff_test.dir/diff_test.cpp.o.d"
  "updsm_diff_test"
  "updsm_diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
