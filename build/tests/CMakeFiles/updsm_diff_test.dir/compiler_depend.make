# Empty compiler generated dependencies file for updsm_diff_test.
# This may be replaced when dependencies are built.
