file(REMOVE_RECURSE
  "CMakeFiles/updsm_mem_test.dir/mem_test.cpp.o"
  "CMakeFiles/updsm_mem_test.dir/mem_test.cpp.o.d"
  "updsm_mem_test"
  "updsm_mem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
