# Empty dependencies file for updsm_mem_test.
# This may be replaced when dependencies are built.
