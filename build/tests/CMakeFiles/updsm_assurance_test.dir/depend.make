# Empty dependencies file for updsm_assurance_test.
# This may be replaced when dependencies are built.
