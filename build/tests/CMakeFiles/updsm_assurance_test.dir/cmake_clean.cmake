file(REMOVE_RECURSE
  "CMakeFiles/updsm_assurance_test.dir/assurance_test.cpp.o"
  "CMakeFiles/updsm_assurance_test.dir/assurance_test.cpp.o.d"
  "updsm_assurance_test"
  "updsm_assurance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_assurance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
