# Empty compiler generated dependencies file for updsm_apps_test.
# This may be replaced when dependencies are built.
