file(REMOVE_RECURSE
  "CMakeFiles/updsm_apps_test.dir/apps_test.cpp.o"
  "CMakeFiles/updsm_apps_test.dir/apps_test.cpp.o.d"
  "updsm_apps_test"
  "updsm_apps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
