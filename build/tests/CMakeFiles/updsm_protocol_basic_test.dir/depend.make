# Empty dependencies file for updsm_protocol_basic_test.
# This may be replaced when dependencies are built.
