file(REMOVE_RECURSE
  "CMakeFiles/updsm_sim_test.dir/sim_test.cpp.o"
  "CMakeFiles/updsm_sim_test.dir/sim_test.cpp.o.d"
  "updsm_sim_test"
  "updsm_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
