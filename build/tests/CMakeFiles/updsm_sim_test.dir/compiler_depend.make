# Empty compiler generated dependencies file for updsm_sim_test.
# This may be replaced when dependencies are built.
