# Empty dependencies file for updsm_determinism_test.
# This may be replaced when dependencies are built.
