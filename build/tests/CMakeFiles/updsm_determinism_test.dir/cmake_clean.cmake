file(REMOVE_RECURSE
  "CMakeFiles/updsm_determinism_test.dir/determinism_test.cpp.o"
  "CMakeFiles/updsm_determinism_test.dir/determinism_test.cpp.o.d"
  "updsm_determinism_test"
  "updsm_determinism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
