file(REMOVE_RECURSE
  "CMakeFiles/updsm_physics_test.dir/physics_test.cpp.o"
  "CMakeFiles/updsm_physics_test.dir/physics_test.cpp.o.d"
  "updsm_physics_test"
  "updsm_physics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_physics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
