# Empty dependencies file for updsm_physics_test.
# This may be replaced when dependencies are built.
