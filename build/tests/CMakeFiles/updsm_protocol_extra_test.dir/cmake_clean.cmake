file(REMOVE_RECURSE
  "CMakeFiles/updsm_protocol_extra_test.dir/protocol_extra_test.cpp.o"
  "CMakeFiles/updsm_protocol_extra_test.dir/protocol_extra_test.cpp.o.d"
  "updsm_protocol_extra_test"
  "updsm_protocol_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_protocol_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
