# Empty dependencies file for updsm_protocol_extra_test.
# This may be replaced when dependencies are built.
