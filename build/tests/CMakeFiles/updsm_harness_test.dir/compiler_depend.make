# Empty compiler generated dependencies file for updsm_harness_test.
# This may be replaced when dependencies are built.
