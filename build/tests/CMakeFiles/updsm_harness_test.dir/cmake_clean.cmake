file(REMOVE_RECURSE
  "CMakeFiles/updsm_harness_test.dir/harness_test.cpp.o"
  "CMakeFiles/updsm_harness_test.dir/harness_test.cpp.o.d"
  "updsm_harness_test"
  "updsm_harness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
