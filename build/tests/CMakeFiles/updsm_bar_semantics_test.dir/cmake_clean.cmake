file(REMOVE_RECURSE
  "CMakeFiles/updsm_bar_semantics_test.dir/bar_semantics_test.cpp.o"
  "CMakeFiles/updsm_bar_semantics_test.dir/bar_semantics_test.cpp.o.d"
  "updsm_bar_semantics_test"
  "updsm_bar_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_bar_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
