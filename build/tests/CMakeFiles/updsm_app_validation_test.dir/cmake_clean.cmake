file(REMOVE_RECURSE
  "CMakeFiles/updsm_app_validation_test.dir/app_validation_test.cpp.o"
  "CMakeFiles/updsm_app_validation_test.dir/app_validation_test.cpp.o.d"
  "updsm_app_validation_test"
  "updsm_app_validation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_app_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
