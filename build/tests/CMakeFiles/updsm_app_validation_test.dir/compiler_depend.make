# Empty compiler generated dependencies file for updsm_app_validation_test.
# This may be replaced when dependencies are built.
