file(REMOVE_RECURSE
  "CMakeFiles/updsm_node_context_test.dir/node_context_test.cpp.o"
  "CMakeFiles/updsm_node_context_test.dir/node_context_test.cpp.o.d"
  "updsm_node_context_test"
  "updsm_node_context_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_node_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
