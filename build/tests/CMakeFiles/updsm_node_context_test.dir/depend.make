# Empty dependencies file for updsm_node_context_test.
# This may be replaced when dependencies are built.
