file(REMOVE_RECURSE
  "CMakeFiles/updsm_lmw_semantics_test.dir/lmw_semantics_test.cpp.o"
  "CMakeFiles/updsm_lmw_semantics_test.dir/lmw_semantics_test.cpp.o.d"
  "updsm_lmw_semantics_test"
  "updsm_lmw_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_lmw_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
