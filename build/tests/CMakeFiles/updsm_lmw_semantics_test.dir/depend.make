# Empty dependencies file for updsm_lmw_semantics_test.
# This may be replaced when dependencies are built.
