file(REMOVE_RECURSE
  "CMakeFiles/updsm_smoke_test.dir/smoke_test.cpp.o"
  "CMakeFiles/updsm_smoke_test.dir/smoke_test.cpp.o.d"
  "updsm_smoke_test"
  "updsm_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
