# Empty compiler generated dependencies file for updsm_smoke_test.
# This may be replaced when dependencies are built.
