# Empty compiler generated dependencies file for updsm_fft_math_test.
# This may be replaced when dependencies are built.
