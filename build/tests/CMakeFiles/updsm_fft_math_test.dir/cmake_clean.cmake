file(REMOVE_RECURSE
  "CMakeFiles/updsm_fft_math_test.dir/fft_math_test.cpp.o"
  "CMakeFiles/updsm_fft_math_test.dir/fft_math_test.cpp.o.d"
  "updsm_fft_math_test"
  "updsm_fft_math_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_fft_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
