# Empty compiler generated dependencies file for updsm_common_test.
# This may be replaced when dependencies are built.
