file(REMOVE_RECURSE
  "CMakeFiles/updsm_common_test.dir/common_test.cpp.o"
  "CMakeFiles/updsm_common_test.dir/common_test.cpp.o.d"
  "updsm_common_test"
  "updsm_common_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
