# Empty dependencies file for updsm_trace_test.
# This may be replaced when dependencies are built.
