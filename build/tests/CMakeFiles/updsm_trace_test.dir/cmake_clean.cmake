file(REMOVE_RECURSE
  "CMakeFiles/updsm_trace_test.dir/trace_test.cpp.o"
  "CMakeFiles/updsm_trace_test.dir/trace_test.cpp.o.d"
  "updsm_trace_test"
  "updsm_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updsm_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
