// updsm_run: command-line experiment explorer.
//
// Runs any (application, protocol) combination on any cluster
// configuration and prints the full report: speedup against the
// nulled-sync sequential baseline, Table-1 counters, the Figure-3 time
// breakdown, per-node details and the shared-segment layout. `--csv`
// emits one machine-readable line per run for scripting sweeps.
//
//   updsm_run --app=sor --protocol=bar-u
//   updsm_run --app=swm --protocol=all --nodes=16 --scale=0.5
//   updsm_run --app=fft --protocol=bar-m --breakdown --layout
//   updsm_run --app=jacobi --protocol=all --csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "updsm/harness/experiment.hpp"
#include "updsm/harness/report.hpp"
#include "updsm/mem/shared_heap.hpp"
#include "updsm/sim/cost_model.hpp"

namespace {

using namespace updsm;

struct Options {
  std::string app = "sor";
  std::string protocol = "bar-u";
  int nodes = 8;
  double scale = 1.0;
  int warmup = 5;
  int iters = 10;
  std::uint32_t page_size = 8192;
  std::string net_profile = "sp2";
  std::vector<std::string> cost_overrides;
  int adaptive_window = 4;
  double drop_rate = 0.0;
  std::string faults;  // fault-spec text or a file containing one
  std::uint64_t fault_seed = 0;
  bool migration = true;
  bool aggregate = true;
  int fanout = 0;           // 0 = flat barrier
  int relay_threshold = 0;  // 0 = relay off
  int relay_fanout = 4;
  bool breakdown = false;
  bool layout = false;
  int hot_pages = 0;
  bool per_node = false;
  bool csv = false;
  std::uint64_t seed = 0x1998'0330;
  sim::GangMode gang = sim::GangMode::Parallel;
  int workers = 0;  // 0 = auto (hardware concurrency)
  int staleness = 4;
  double tolerance = 1e-6;
};

[[noreturn]] void usage(int code) {
  std::printf(
      "updsm_run -- run one paper workload under one coherence protocol\n"
      "\n"
      "  --app=NAME        barnes|expl|fft|jacobi|shal|sor|swm|tomcat, or a\n"
      "                    barrier-free workload: jacobi-async|sor-async\n"
      "  --protocol=NAME   lmw-i|lmw-u|bar-i|bar-u|bar-s|bar-m|adaptive|\n"
      "                    sc-sw|async-u|async-i|all (all = the paper's\n"
      "                    fixed protocols)\n"
      "  --nodes=N         cluster size (default 8)\n"
      "  --scale=F         linear problem-size factor (default 1.0)\n"
      "  --warmup=N        unmeasured time-steps (default 5)\n"
      "  --iters=N         measured time-steps (default 10)\n"
      "  --page-size=B     protection granularity (default 8192)\n"
      "  --net-profile=P   interconnect cost profile: sp2 (1998 SP-2 over\n"
      "                    UDP, the paper's Table 2) or rdma (kernel-bypass\n"
      "                    NIC: ~1us one-sided ops, ~10 GB/s)\n"
      "  --cost=K=V        override one cost-model key on top of the\n"
      "                    profile (repeatable); e.g. --cost=net.per_message_us=5\n"
      "                    (pass an unknown key to list the valid ones)\n"
      "  --adaptive-window=W  sliding-window length (written epochs) for\n"
      "                    --protocol=adaptive (default 4)\n"
      "  --drop-rate=F     fraction of update flushes dropped (default 0)\n"
      "  --faults=SPEC     fault-injection plan (inline spec or a file);\n"
      "                    e.g. 'drop=0.1' or 'kind=flush,to=2,drop=0.5'\n"
      "                    (see sim/fault_plan.hpp for the grammar)\n"
      "  --fault-seed=N    seed for the fault plan's decision streams\n"
      "  --no-migration    disable runtime home migration\n"
      "  --no-aggregate    send one flush per page instead of one\n"
      "                    aggregated batch per (sender, destination)\n"
      "                    pair per barrier (results are bit-identical)\n"
      "  --fanout=K        k-ary tree barrier (0 = flat master barrier,\n"
      "                    the default; results are bit-identical)\n"
      "  --relay-threshold=N  relay a producer's update batches through a\n"
      "                    dissemination tree when they target more than N\n"
      "                    destinations (0 = off; results bit-identical)\n"
      "  --relay-fanout=K  dissemination-tree fanout (default 4)\n"
      "  --gang=MODE       parallel|baton|async node scheduling (default\n"
      "                    parallel; parallel and baton are byte-identical;\n"
      "                    async drops the phase barrier and schedules the\n"
      "                    lowest-virtual-clock node -- requires a\n"
      "                    parallel-safe protocol)\n"
      "  --staleness=N     async protocols: refresh a cached page once its\n"
      "                    home version leads by more than N publishes\n"
      "                    (default 4; 0 = always fresh)\n"
      "  --tolerance=F     residual tolerance for the run-to-convergence\n"
      "                    workloads (default 1e-6)\n"
      "  --workers=M       OS threads multiplexing the simulated nodes\n"
      "                    (default: host cores, clamped to N; output is\n"
      "                    byte-identical for every M)\n"
      "  --seed=N          RNG seed\n"
      "  --breakdown       print the Figure-3 style time breakdown\n"
      "  --hot-pages=N     print the N busiest pages with their owners\n"
      "  --per-node        print per-node times\n"
      "  --layout          print the shared-segment layout\n"
      "  --csv             one CSV line per run (with header)\n");
  std::exit(code);
}

/// `--faults` accepts either an inline spec or the name of a file holding
/// one; a readable file wins (a spec is never a valid relative path).
std::string load_fault_spec(const std::string& arg) {
  std::ifstream in(arg);
  if (!in) return arg;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--app=")) {
      opt.app = v;
    } else if (const char* v = value("--protocol=")) {
      opt.protocol = v;
    } else if (const char* v = value("--nodes=")) {
      opt.nodes = std::atoi(v);
    } else if (const char* v = value("--scale=")) {
      opt.scale = std::atof(v);
    } else if (const char* v = value("--warmup=")) {
      opt.warmup = std::atoi(v);
    } else if (const char* v = value("--iters=")) {
      opt.iters = std::atoi(v);
    } else if (const char* v = value("--page-size=")) {
      opt.page_size = static_cast<std::uint32_t>(std::atoi(v));
    } else if (const char* v = value("--net-profile=")) {
      opt.net_profile = v;
    } else if (const char* v = value("--cost=")) {
      opt.cost_overrides.emplace_back(v);
    } else if (const char* v = value("--adaptive-window=")) {
      opt.adaptive_window = std::atoi(v);
    } else if (const char* v = value("--drop-rate=")) {
      opt.drop_rate = std::atof(v);
    } else if (const char* v = value("--faults=")) {
      opt.faults = v;
    } else if (const char* v = value("--fault-seed=")) {
      opt.fault_seed = std::strtoull(v, nullptr, 0);
    } else if (const char* v = value("--seed=")) {
      opt.seed = std::strtoull(v, nullptr, 0);
    } else if (const char* v = value("--gang=")) {
      const std::string mode = v;
      if (mode == "parallel") {
        opt.gang = sim::GangMode::Parallel;
      } else if (mode == "baton") {
        opt.gang = sim::GangMode::Baton;
      } else if (mode == "async") {
        opt.gang = sim::GangMode::Async;
      } else {
        std::fprintf(stderr, "unknown gang mode: %s\n", v);
        usage(2);
      }
    } else if (const char* v = value("--workers=")) {
      opt.workers = std::atoi(v);
      if (opt.workers < 1) {
        std::fprintf(stderr, "--workers must be >= 1, got %s\n", v);
        usage(2);
      }
    } else if (const char* v = value("--staleness=")) {
      opt.staleness = std::atoi(v);
    } else if (const char* v = value("--tolerance=")) {
      opt.tolerance = std::atof(v);
    } else if (const char* v = value("--fanout=")) {
      opt.fanout = std::atoi(v);
    } else if (const char* v = value("--relay-threshold=")) {
      opt.relay_threshold = std::atoi(v);
    } else if (const char* v = value("--relay-fanout=")) {
      opt.relay_fanout = std::atoi(v);
    } else if (arg == "--no-migration") {
      opt.migration = false;
    } else if (arg == "--no-aggregate") {
      opt.aggregate = false;
    } else if (const char* v = value("--hot-pages=")) {
      opt.hot_pages = std::atoi(v);
    } else if (arg == "--breakdown") {
      opt.breakdown = true;
    } else if (arg == "--per-node") {
      opt.per_node = true;
    } else if (arg == "--layout") {
      opt.layout = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n\n", arg.c_str());
      usage(2);
    }
  }
  return opt;
}

dsm::ClusterConfig cluster_config(const Options& opt) {
  dsm::ClusterConfig cfg;
  cfg.num_nodes = opt.nodes;
  cfg.page_size = opt.page_size;
  cfg.seed = opt.seed;
  cfg.gang = opt.gang;
  cfg.workers = opt.workers;
  cfg.home_migration = opt.migration;
  cfg.aggregate_flushes = opt.aggregate;
  cfg.barrier_fanout = opt.fanout;
  cfg.relay_threshold = opt.relay_threshold;
  cfg.relay_fanout = opt.relay_fanout;
  // Profile first, overrides second, then the local knobs that also live in
  // the cost model -- so --drop-rate composes with either profile.
  cfg.net_profile = opt.net_profile;
  cfg.costs = sim::CostModel::from_profile(opt.net_profile);
  sim::apply_cost_overrides(cfg.costs, opt.cost_overrides);
  cfg.adaptive_window = opt.adaptive_window;
  cfg.staleness_bound = opt.staleness;
  cfg.async_tolerance = opt.tolerance;
  cfg.costs.net.flush_drop_rate = opt.drop_rate;
  if (!opt.faults.empty()) {
    cfg.faults = sim::FaultSpec::parse(load_fault_spec(opt.faults));
    cfg.fault_seed = opt.fault_seed;
  }
  // Fail at parse time with a usable message (the deep checks would only
  // trip once a run is underway).
  dsm::validate_cluster_config(cfg);
  return cfg;
}

apps::AppParams app_params(const Options& opt) {
  apps::AppParams p;
  p.scale = opt.scale;
  p.warmup_iterations = opt.warmup;
  p.measured_iterations = opt.iters;
  p.seed = opt.seed;
  return p;
}

void print_run(const Options& opt, const harness::RunResult& run,
               const harness::RunResult& seq) {
  if (opt.csv) {
    static bool header_printed = false;
    if (!header_printed) {
      header_printed = true;
      std::printf(
          "app,protocol,nodes,scale,elapsed_ms,seq_ms,speedup,diffs,misses,"
          "messages,data_kb,updates_sent,migrations,correct\n");
    }
    std::printf("%s,%s,%d,%.3f,%.3f,%.3f,%.3f,%llu,%llu,%llu,%llu,%llu,%llu,%d\n",
                run.app.c_str(), run.protocol.c_str(), run.nodes, opt.scale,
                sim::to_msec(run.elapsed), sim::to_msec(seq.elapsed),
                harness::speedup(run, seq),
                static_cast<unsigned long long>(run.counters.diffs_created),
                static_cast<unsigned long long>(run.counters.remote_misses),
                static_cast<unsigned long long>(run.net.table_messages()),
                static_cast<unsigned long long>(run.net.total_bytes() / 1024),
                static_cast<unsigned long long>(run.counters.updates_sent),
                static_cast<unsigned long long>(run.counters.migrations),
                run.checksum == seq.checksum ? 1 : 0);
    return;
  }

  std::printf("%s under %s: %d nodes, scale %.2f, %d measured iterations\n",
              run.app.c_str(), run.protocol.c_str(), run.nodes, opt.scale,
              opt.iters);
  std::printf("  result        %s (checksum %.17g)\n",
              run.checksum == seq.checksum ? "bit-exact vs sequential"
                                           : "*** DIVERGED ***",
              run.checksum);
  std::printf("  time          %.2f ms (sequential %.2f ms) -> speedup %.2f\n",
              sim::to_msec(run.elapsed), sim::to_msec(seq.elapsed),
              harness::speedup(run, seq));
  std::printf("  diffs         %llu (+%llu empty)\n",
              static_cast<unsigned long long>(run.counters.diffs_created),
              static_cast<unsigned long long>(run.counters.zero_diffs));
  std::printf("  remote misses %llu\n",
              static_cast<unsigned long long>(run.counters.remote_misses));
  std::printf("  messages      %llu (%llu kB)\n",
              static_cast<unsigned long long>(run.net.table_messages()),
              static_cast<unsigned long long>(run.net.total_bytes() / 1024));
  std::printf("  updates       %llu sent, %llu applied, %llu ignored\n",
              static_cast<unsigned long long>(run.counters.updates_sent),
              static_cast<unsigned long long>(run.counters.updates_applied),
              static_cast<unsigned long long>(run.counters.updates_ignored));
  if (run.counters.async_steps > 0) {
    std::printf("  async         %llu steps, %llu staleness refreshes, %llu "
                "invalidations, %llu lead throttles; %llu sweeps to "
                "residual %.3g\n",
                static_cast<unsigned long long>(run.counters.async_steps),
                static_cast<unsigned long long>(run.counters.async_refreshes),
                static_cast<unsigned long long>(
                    run.counters.async_invalidations),
                static_cast<unsigned long long>(run.counters.async_throttles),
                static_cast<unsigned long long>(run.app_iterations),
                run.final_residual);
  }
  std::printf("  homes         %llu migrated; private pages %llu in / %llu "
              "out\n",
              static_cast<unsigned long long>(run.counters.migrations),
              static_cast<unsigned long long>(run.counters.private_entries),
              static_cast<unsigned long long>(run.counters.private_exits));
  if (!opt.faults.empty()) {
    std::printf("  faults        %llu drops, %llu retries, %llu dups "
                "suppressed, %llu recovery faults, %llu stalls\n",
                static_cast<unsigned long long>(run.net.total_dropped()),
                static_cast<unsigned long long>(run.counters.reliable_retries),
                static_cast<unsigned long long>(run.counters.dup_suppressed),
                static_cast<unsigned long long>(run.counters.recovery_faults),
                static_cast<unsigned long long>(run.counters.node_stalls));
  }

  if (opt.breakdown) {
    const auto sum = run.breakdown.summed();
    const double total = static_cast<double>(sum.total());
    std::printf("  breakdown     app %.1f%%  dsm %.1f%%  os %.1f%%  wait "
                "%.1f%%  sigio %.1f%%\n",
                100.0 * sum.app / total, 100.0 * sum.dsm / total,
                100.0 * sum.os / total, 100.0 * sum.wait / total,
                100.0 * sum.sigio / total);
  }
  if (opt.hot_pages > 0) {
    const auto hot =
        harness::hottest_pages(run, static_cast<std::size_t>(opt.hot_pages));
    std::printf("  hottest pages (whole run, all nodes):\n");
    for (const auto& page : hot) {
      std::printf("    page %-6u %-16s %6u rd-faults %6u wr-faults %6u "
                  "mprotects\n",
                  page.page.value(), page.allocation.c_str(),
                  page.stats.read_faults.load(), page.stats.write_faults.load(),
                  page.stats.mprotects.load());
    }
  }
  if (opt.per_node) {
    for (std::size_t i = 0; i < run.breakdown.nodes.size(); ++i) {
      const auto& node = run.breakdown.nodes[i];
      std::printf("    node %-2zu     app %8.1f  dsm %7.1f  os %7.1f  wait "
                  "%7.1f  sigio %6.1f ms\n",
                  i, sim::to_msec(node.app), sim::to_msec(node.dsm),
                  sim::to_msec(node.os), sim::to_msec(node.wait),
                  sim::to_msec(node.sigio));
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  try {
    std::vector<protocols::ProtocolKind> kinds;
    if (opt.protocol == "all") {
      kinds = protocols::all_paper_protocols();
    } else {
      kinds.push_back(protocols::protocol_from_string(opt.protocol));
    }

    // Gang/protocol compatibility fails at parse time with a friendly
    // message, not deep inside a run.
    if (opt.gang == sim::GangMode::Async) {
      for (const auto kind : kinds) {
        const auto probe = protocols::make_protocol(kind);
        dsm::validate_gang_protocol(opt.gang, probe->parallel_safe(),
                                    protocols::to_string(kind));
      }
    }

    if (opt.layout) {
      auto app = apps::make_app(opt.app, app_params(opt));
      mem::SharedHeap heap(opt.page_size);
      app->allocate(heap);
      std::printf("shared segment for %s: %llu kB in %u pages\n",
                  opt.app.c_str(),
                  static_cast<unsigned long long>(heap.bytes_used() / 1024),
                  heap.segment_pages());
      for (const auto& alloc : heap.allocations()) {
        std::printf("  %-16s @ %10llu  %10llu bytes\n", alloc.name.c_str(),
                    static_cast<unsigned long long>(alloc.addr),
                    static_cast<unsigned long long>(alloc.bytes));
      }
      std::printf("\n");
    }

    const auto seq =
        harness::run_sequential(opt.app, cluster_config(opt), app_params(opt));
    bool overdrive_safe = true;
    {
      auto probe = apps::make_app(opt.app, app_params(opt));
      overdrive_safe = probe->overdrive_safe();
    }
    for (const auto kind : kinds) {
      if (!overdrive_safe && (kind == protocols::ProtocolKind::BarS ||
                              kind == protocols::ProtocolKind::BarM)) {
        std::fprintf(stderr,
                     "skipping %s: %s has a dynamic sharing pattern\n",
                     protocols::to_string(kind), opt.app.c_str());
        continue;
      }
      const auto run =
          harness::run_app(opt.app, kind, cluster_config(opt), app_params(opt));
      print_run(opt, run, seq);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
