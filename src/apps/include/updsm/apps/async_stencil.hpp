// jacobi-async / sor-async: stencil solvers ported to the barrier-free
// workload class.
//
// Both solve the same damped fixed-point problem v = b + (kappa/4) * (sum of
// the four neighbours) on a single in-place grid -- a max-norm contraction
// with factor kappa < 1, so plain, red-black and *chaotic* (asynchronous,
// boundedly stale) relaxation all converge to the same fixed point
// (Chazan & Miranker 1969). That makes the pair dual-mode:
//
//  * Under a barrier gang the loop is classic: sweep, reduce the global max
//    residual (one barrier), stop when it drops under the configured
//    tolerance. Every node leaves the loop at the same iteration.
//  * Under gang=async there is no reduction and no barrier in the loop:
//    each node sweeps its own rows, tracks its LOCAL residual, and calls
//    ctx.async_step(residual) -- publish, yield, refresh. The step returns
//    true once the global epoch/residual detector converges; a node also
//    drains after max_sweeps as a backstop.
//
// The final grid bytes are schedule-dependent (in-place chaotic relaxation
// commits to no update order), so the checksum is the CONVERGED flag: every
// correct protocol/schedule must reach the same fixed point to the same
// tolerance, and that -- not the byte pattern -- is the invariant worth
// pinning. Elapsed times, message censuses and counters pin determinism of
// a given configuration bit-for-bit on top.
#pragma once

#include <cstdint>
#include <mutex>

#include "updsm/apps/application.hpp"
#include "updsm/apps/grid.hpp"

namespace updsm::apps {

enum class StencilKind {
  Jacobi,  // damped in-place Jacobi/Gauss-Seidel hybrid sweep
  SorRb,   // red-black successive over-relaxation
};

class AsyncStencilApp final : public Application {
 public:
  AsyncStencilApp(const AppParams& params, StencilKind kind);

  [[nodiscard]] std::string_view name() const override {
    return kind_ == StencilKind::Jacobi ? "jacobi-async" : "sor-async";
  }
  /// The sweeps are not keyed to a periodic barrier pattern; keep the
  /// overdrive protocols away from this workload.
  [[nodiscard]] bool overdrive_safe() const override { return false; }

  void allocate(mem::SharedHeap& heap) override;
  void run(dsm::NodeContext& ctx) override;

  [[nodiscard]] std::uint64_t iterations_completed() const override {
    return max_sweeps_completed_;
  }
  [[nodiscard]] double final_residual() const override {
    return worst_residual_;
  }
  [[nodiscard]] bool all_converged() const { return all_converged_; }

 protected:
  void init(dsm::NodeContext& ctx) override;
  void step(dsm::NodeContext& ctx, int iter) override;
  [[nodiscard]] double compute_checksum(dsm::NodeContext& ctx) override;

 private:
  /// One relaxation sweep over this node's rows; returns the local max
  /// residual (max |new - old| over updated points).
  double sweep(dsm::NodeContext& ctx);
  /// Per-node loop-exit bookkeeping (any gang mode, hence the mutex).
  void record_exit(std::uint64_t sweeps, double residual, bool converged);

  StencilKind kind_;
  std::size_t rows_;
  std::size_t cols_;
  GlobalAddr grid_addr_ = 0;
  int max_sweeps_;

  std::mutex done_mu_;
  std::uint64_t max_sweeps_completed_ = 0;
  double worst_residual_ = 0.0;
  bool all_converged_ = true;
};

}  // namespace updsm::apps
