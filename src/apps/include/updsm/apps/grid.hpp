// 2-D grid view over a shared allocation, plus block decomposition helpers.
//
// Row-major layout; row views are the idiomatic access path (one MMU range
// check per row instead of per element), matching how SUIF-generated code
// walks distributed arrays.
#pragma once

#include <cstddef>
#include <span>

#include "updsm/dsm/node_context.hpp"

namespace updsm::apps {

/// Half-open index range [lo, hi).
struct Range {
  std::size_t lo = 0;
  std::size_t hi = 0;
  [[nodiscard]] std::size_t size() const { return hi - lo; }
  [[nodiscard]] bool contains(std::size_t i) const { return i >= lo && i < hi; }
};

/// Block decomposition of `n` items over `parts` owners ("owner computes"):
/// the first (n % parts) owners get one extra item.
[[nodiscard]] inline Range block_range(std::size_t n, int parts, int idx) {
  const auto p = static_cast<std::size_t>(parts);
  const auto i = static_cast<std::size_t>(idx);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  const std::size_t lo = i * base + (i < extra ? i : extra);
  return Range{lo, lo + base + (i < extra ? 1 : 0)};
}

/// Rows owned by `node`, as SUIF's owner-computes rule would assign them.
[[nodiscard]] inline Range my_rows(const dsm::NodeContext& ctx,
                                   std::size_t rows) {
  return block_range(rows, ctx.num_nodes(), ctx.node());
}

template <typename T>
class Grid2 {
 public:
  Grid2(dsm::NodeContext& ctx, GlobalAddr base, std::size_t rows,
        std::size_t cols)
      : arr_(ctx.array<T>(base, rows * cols)), rows_(rows), cols_(cols) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Read view of one whole row.
  [[nodiscard]] std::span<const T> row(std::size_t r) const {
    return arr_.read_view(r * cols_, (r + 1) * cols_);
  }
  /// Write view of one whole row (write-traps every page the row touches).
  [[nodiscard]] std::span<T> row_w(std::size_t r) {
    return arr_.write_view(r * cols_, (r + 1) * cols_);
  }
  /// Read view of columns [c0, c1) within row r.
  [[nodiscard]] std::span<const T> row_segment(std::size_t r, std::size_t c0,
                                               std::size_t c1) const {
    return arr_.read_view(r * cols_ + c0, r * cols_ + c1);
  }
  /// Write view of columns [c0, c1) within row r (write-traps only the
  /// pages the segment touches).
  [[nodiscard]] std::span<T> row_segment_w(std::size_t r, std::size_t c0,
                                           std::size_t c1) {
    return arr_.write_view(r * cols_ + c0, r * cols_ + c1);
  }

  /// Read view over rows [r0, r1).
  [[nodiscard]] std::span<const T> rows_view(std::size_t r0,
                                             std::size_t r1) const {
    return arr_.read_view(r0 * cols_, r1 * cols_);
  }
  [[nodiscard]] std::span<T> rows_view_w(std::size_t r0, std::size_t r1) {
    return arr_.write_view(r0 * cols_, r1 * cols_);
  }

  [[nodiscard]] T at(std::size_t r, std::size_t c) const {
    return arr_.get(r * cols_ + c);
  }
  void set(std::size_t r, std::size_t c, T v) { arr_.set(r * cols_ + c, v); }

 private:
  dsm::SharedArray<T> arr_;
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace updsm::apps
