// Jacobi: "a stencil kernel combined with a convergence test that checks
// the residual value using a max reduction" (paper §3.1).
//
// Two grids (old/new), copy-back formulation so the per-epoch write sets
// are iteration-invariant: sweep writes `next` from `cur`, the global max
// residual is reduced (one extra barrier), then the owned rows are copied
// back into `cur`. Three epochs per iteration.
#pragma once

#include "updsm/apps/application.hpp"
#include "updsm/apps/grid.hpp"

namespace updsm::apps {

class JacobiApp final : public Application {
 public:
  explicit JacobiApp(const AppParams& params);

  [[nodiscard]] std::string_view name() const override { return "jacobi"; }
  void allocate(mem::SharedHeap& heap) override;

  /// Residual of the last completed iteration (same on every node).
  [[nodiscard]] double last_residual() const { return last_residual_; }

 protected:
  void init(dsm::NodeContext& ctx) override;
  void step(dsm::NodeContext& ctx, int iter) override;
  [[nodiscard]] double compute_checksum(dsm::NodeContext& ctx) override;

 private:
  std::size_t rows_;
  std::size_t cols_;
  GlobalAddr cur_addr_ = 0;
  GlobalAddr next_addr_ = 0;
  double last_residual_ = 0.0;
};

}  // namespace updsm::apps
