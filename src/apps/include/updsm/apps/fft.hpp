// fft: "a three-dimensional implementation of the Fast Fourier Transform
// that uses matrix transposition to reduce communication" (paper §3.1).
//
// Each time-step advances a 3-D heat equation spectrally:
//   forward 2-D FFTs on owned z-planes, a global transpose (z <-> x), a
//   1-D FFT + spectral decay + inverse 1-D FFT along the (now local)
//   z-axis, a transpose back, and inverse 2-D FFTs. The transposes are
//   all-to-all: every node reads a strided slice of every other node's
//   planes -- the heaviest data traffic of the suite, matching fft's
//   Table-1 row.
//
// Complex values are stored interleaved (re, im) in a double array; the
// radix-2 Cooley-Tukey kernels are real implementations validated against
// a direct DFT in tests/apps/fft_math_test.cpp.
#pragma once

#include <vector>

#include "updsm/apps/application.hpp"

namespace updsm::apps {

/// In-place radix-2 FFT over `n` interleaved complex values.
/// `inverse` applies the conjugate transform WITHOUT the 1/n scaling
/// (callers fold normalization into the spectral step).
void fft_radix2(double* data, std::size_t n, bool inverse);

class FftApp final : public Application {
 public:
  explicit FftApp(const AppParams& params);

  [[nodiscard]] std::string_view name() const override { return "fft"; }
  void allocate(mem::SharedHeap& heap) override;

  [[nodiscard]] std::size_t n() const { return n_; }

 protected:
  void init(dsm::NodeContext& ctx) override;
  void step(dsm::NodeContext& ctx, int iter) override;
  [[nodiscard]] double compute_checksum(dsm::NodeContext& ctx) override;

 private:
  // Interleaved-complex offsets into the two cubes.
  [[nodiscard]] std::size_t idx(std::size_t plane, std::size_t row,
                                std::size_t col) const {
    return ((plane * n_ + row) * n_ + col) * 2;
  }

  /// 2-D FFTs (x then y) over this node's z-planes of `cube`.
  void planar_fft(dsm::NodeContext& ctx, GlobalAddr cube, bool inverse);
  /// dst[x][y][z] <- src[z][y][x] for this node's x-planes of dst.
  void transpose(dsm::NodeContext& ctx, GlobalAddr src, GlobalAddr dst);
  /// FFT along z (local in the transposed cube), spectral decay, inverse
  /// FFT along z, and the full 1/n^3 normalization, fused in one pass.
  void spectral_step(dsm::NodeContext& ctx);

  std::size_t n_;
  GlobalAddr data_addr_ = 0;     // data[z][y][x]
  GlobalAddr scratch_addr_ = 0;  // scratch[x][y][z]
};

}  // namespace updsm::apps
