// SOR: "a simple nearest-neighbor stencil" (paper §3.1).
//
// Red-black successive over-relaxation on a 2-D grid, rows block-
// distributed. Each time-step performs the red sweep, a barrier, the black
// sweep, and a barrier: two epochs per iteration with perfectly invariant
// per-epoch write sets -- the friendliest possible pattern for update
// protocols and overdrive.
#pragma once

#include "updsm/apps/application.hpp"
#include "updsm/apps/grid.hpp"

namespace updsm::apps {

class SorApp final : public Application {
 public:
  explicit SorApp(const AppParams& params);

  [[nodiscard]] std::string_view name() const override { return "sor"; }
  void allocate(mem::SharedHeap& heap) override;

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

 protected:
  void init(dsm::NodeContext& ctx) override;
  void step(dsm::NodeContext& ctx, int iter) override;
  [[nodiscard]] double compute_checksum(dsm::NodeContext& ctx) override;

 private:
  /// One half-step: update points of `color` (0 = red, 1 = black).
  void sweep(dsm::NodeContext& ctx, int color);

  std::size_t rows_;
  std::size_t cols_;
  GlobalAddr grid_addr_ = 0;
};

}  // namespace updsm::apps
