// shal / swm: two versions of the shallow-water simulation, "differing
// primarily in synchronization granularity" (paper §3.1). The SPEC swm
// kernel structure is kept: loop100 computes the mass fluxes (cu, cv),
// potential vorticity (z) and height (h) from u, v, p; loop200 advances
// unew/vnew/pnew; loop300 applies Robert-Asselin time smoothing; periodic
// boundary rows/columns are copied by the owners of the source rows.
//
//   shal -- 256x256, coarse (3 barriers per time-step), all phases
//           row-partitioned: boundary-row sharing only, little data, good
//           speedup (the paper's shal);
//   swm  -- 256x256, fine (6 barriers per time-step) and, crucially, with
//           the time-smoothing loop's row distribution SHIFTED by half a
//           block against the other loops' -- the per-loop iteration-
//           assignment mismatch a parallelizing compiler produces when
//           consecutive loops are scheduled independently (the paper
//           transposed tomcatv to fix such locality problems; swm got no
//           such treatment). Every page of all six fields then crosses
//           node boundaries each time-step: heavy diff/update traffic and
//           the paper's dismal swm speedup.
#pragma once

#include "updsm/apps/application.hpp"
#include "updsm/apps/grid.hpp"

namespace updsm::apps {

class ShallowApp final : public Application {
 public:
  ShallowApp(const AppParams& params, std::string_view variant_name,
             std::size_t base_dim, bool fine_grained,
             bool shifted_smoothing);

  [[nodiscard]] std::string_view name() const override { return name_; }
  void allocate(mem::SharedHeap& heap) override;

 protected:
  void init(dsm::NodeContext& ctx) override;
  void step(dsm::NodeContext& ctx, int iter) override;
  [[nodiscard]] double compute_checksum(dsm::NodeContext& ctx) override;

 private:
  // Field order matches the allocation order below.
  enum Field : int {
    kU = 0, kV, kP, kUnew, kVnew, kPnew, kUold, kVold, kPold,
    kCu, kCv, kZ, kH,
    kFieldCount,
  };

  [[nodiscard]] Grid2<double> grid(dsm::NodeContext& ctx, Field f) {
    return Grid2<double>(ctx, addr_[f], rows_, cols_);
  }

  void loop100(dsm::NodeContext& ctx);  // fluxes, vorticity, height
  void loop200(dsm::NodeContext& ctx);  // time advance
  void loop300(dsm::NodeContext& ctx);  // time smoothing
  /// Copies periodic ghost rows for `fields`; each ghost row is written by
  /// the node that owns its source row.
  void wrap_rows(dsm::NodeContext& ctx, std::initializer_list<Field> fields);

  std::string name_;
  bool fine_;
  bool shifted_smoothing_;
  std::size_t rows_;  // interior m rows + 2 ghost rows
  std::size_t cols_;  // interior n cols + 2 ghost cols
  GlobalAddr addr_[kFieldCount] = {};
};

}  // namespace updsm::apps
