// expl: "a dense stencil kernel typical of those found in iterative PDE
// solvers" (paper §3.1).
//
// Leapfrog time integration of the 2-D wave equation with a spatially
// varying wave-speed coefficient:
//   u_next = 2 u - u_prev + c^2 dt^2 laplacian(u)
// written in the in-place two-field form (u_prev is overwritten with
// u_next), with two half-steps per time-step so the per-epoch write sets
// alternate between the two fields in a fixed pattern. The coefficient
// grid is written once at init and only read afterwards: a read-only
// sharing component the stencil apps otherwise lack.
#pragma once

#include "updsm/apps/application.hpp"
#include "updsm/apps/grid.hpp"

namespace updsm::apps {

class ExplApp final : public Application {
 public:
  explicit ExplApp(const AppParams& params);

  [[nodiscard]] std::string_view name() const override { return "expl"; }
  void allocate(mem::SharedHeap& heap) override;

 protected:
  void init(dsm::NodeContext& ctx) override;
  void step(dsm::NodeContext& ctx, int iter) override;
  [[nodiscard]] double compute_checksum(dsm::NodeContext& ctx) override;

 private:
  /// Half-step writing `dst` in place: dst <- 2 src - dst + c^2 lap(src).
  void half_step(dsm::NodeContext& ctx, GlobalAddr src, GlobalAddr dst);

  std::size_t rows_;
  std::size_t cols_;
  GlobalAddr u_addr_ = 0;
  GlobalAddr v_addr_ = 0;      // the "previous" field
  GlobalAddr coef_addr_ = 0;   // read-only wave-speed coefficients
};

}  // namespace updsm::apps
