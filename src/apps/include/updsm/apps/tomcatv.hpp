// tomcat: the SPEC tomcatv mesh-generation kernel, "a mixture of stencils
// and reductions"; "we used the APR version of tomcatv, in which the
// arrays have been transposed to improve data locality" (paper §3.1).
//
// Per time-step: (1) a 9-point stencil computes the residuals rx, ry from
// the mesh coordinates x, y, with the max |residual| reduced globally;
// (2) a tridiagonal solve relaxes the residuals along each mesh line --
// thanks to the APR transposition every line is contiguous and node-local;
// (3) the mesh is updated (x += rx, y += ry). Three epochs per iteration,
// the first closing with the explicit reduction.
#pragma once

#include "updsm/apps/application.hpp"
#include "updsm/apps/grid.hpp"

namespace updsm::apps {

class TomcatvApp final : public Application {
 public:
  explicit TomcatvApp(const AppParams& params);

  [[nodiscard]] std::string_view name() const override { return "tomcat"; }
  void allocate(mem::SharedHeap& heap) override;

  [[nodiscard]] double last_residual() const { return last_residual_; }

 protected:
  void init(dsm::NodeContext& ctx) override;
  void step(dsm::NodeContext& ctx, int iter) override;
  [[nodiscard]] double compute_checksum(dsm::NodeContext& ctx) override;

 private:
  std::size_t n_;  // mesh is n_ x n_ including fixed boundary lines
  GlobalAddr x_addr_ = 0;
  GlobalAddr y_addr_ = 0;
  GlobalAddr rx_addr_ = 0;
  GlobalAddr ry_addr_ = 0;
  GlobalAddr d_addr_ = 0;  // tridiagonal scratch diagonal
  double last_residual_ = 0.0;
};

}  // namespace updsm::apps
