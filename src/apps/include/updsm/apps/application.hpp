// Application framework.
//
// Every workload from the paper's Table 1 implements this interface. The
// standard run() skeleton reproduces the paper's methodology (§3.1):
// initialisation and the first `warmup_iterations` time-steps (covering
// home migration, copyset convergence and overdrive learning) run
// unmeasured; the steady-state window then covers `measured_iterations`
// time-steps; finally node 0 computes a checksum through the DSM, outside
// the window, which the harness compares bit-for-bit against the 1-node
// sequential baseline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "updsm/dsm/node_context.hpp"
#include "updsm/mem/shared_heap.hpp"

namespace updsm::apps {

struct AppParams {
  /// Unmeasured time-steps before the window opens. Must exceed the
  /// overdrive learning iterations (default 3) by at least one so bar-s /
  /// bar-m engage before measurement.
  int warmup_iterations = 5;
  /// Time-steps inside the measurement window.
  int measured_iterations = 10;
  /// Linear problem-dimension multiplier (1.0 = paper-scale); tests use
  /// smaller values for speed.
  double scale = 1.0;
  /// Seed for synthetic datasets.
  std::uint64_t seed = 0x5ca1ab1e;
};

class Application {
 public:
  explicit Application(const AppParams& params) : params_(params) {}
  virtual ~Application() = default;

  Application(const Application&) = delete;
  Application& operator=(const Application&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True for applications whose sharing pattern, while iterative, is not
  /// invariant across iterations (barnes): excluded from bar-s / bar-m
  /// (paper §5.1 -- "Barnes is not shown because its sharing pattern ...
  /// is highly dynamic").
  [[nodiscard]] virtual bool overdrive_safe() const { return true; }

  /// Registers all shared allocations. Called once, before the cluster is
  /// constructed; must be deterministic.
  virtual void allocate(mem::SharedHeap& heap) = 0;

  /// The per-node program: init -> warmup -> measured window -> checksum.
  /// Virtual for workloads whose loop is not a fixed iteration count (the
  /// async stencils run to convergence); overrides must keep the barrier
  /// count identical across nodes and call set_checksum on node 0.
  virtual void run(dsm::NodeContext& ctx);

  /// Result checksum computed by node 0 at the end of run(); identical
  /// across protocols and node counts for a correct protocol.
  [[nodiscard]] double result_checksum() const { return checksum_; }

  /// Iterations the run actually executed: the fixed warmup+measured count
  /// for the standard skeleton; run-to-convergence workloads report the
  /// largest per-node sweep count instead.
  [[nodiscard]] virtual std::uint64_t iterations_completed() const {
    return static_cast<std::uint64_t>(total_iterations());
  }
  /// Final residual for convergence workloads (0 for the fixed-iteration
  /// skeleton, which has no residual notion at this level).
  [[nodiscard]] virtual double final_residual() const { return 0.0; }

  [[nodiscard]] const AppParams& params() const { return params_; }
  [[nodiscard]] int total_iterations() const {
    return params_.warmup_iterations + params_.measured_iterations;
  }

 protected:
  void set_checksum(double v) { checksum_ = v; }

  /// Populates initial data (typically from node 0, through the DSM).
  virtual void init(dsm::NodeContext& ctx) = 0;
  /// One time-step; may contain any number of barriers, but the same
  /// number in every iteration and on every node.
  virtual void step(dsm::NodeContext& ctx, int iter) = 0;
  /// Deterministic reduction of the final state, read through the DSM.
  [[nodiscard]] virtual double compute_checksum(dsm::NodeContext& ctx) = 0;

  AppParams params_;

 private:
  double checksum_ = 0.0;
};

/// Scales a base dimension by params.scale, keeping it a positive multiple
/// of `multiple` (applications keep arrays divisible by the node count).
[[nodiscard]] std::size_t scaled_dim(std::size_t base, double scale,
                                     std::size_t multiple);

}  // namespace updsm::apps
