// barnes: Barnes-Hut n-body, "a version ... from SPLASH-2 that has been
// modified to use less synchronization, and to perform some tasks (i.e.
// maketree) serially in order to reduce parallel overhead" (paper §3.1).
//
// Per time-step: node 0 rebuilds the shared octree serially; every node
// then computes forces for a slice of bodies chosen by cost-balancing
// (interaction counts from the previous iteration, with a deterministic
// per-iteration rotation), and finally integrates its slice. The sharing
// pattern is iterative but *not* invariant -- tree shape and partition
// boundaries drift every iteration -- which is why the paper excludes
// barnes from bar-s / bar-m (§5.1); overdrive_safe() is false.
#pragma once

#include <cstdint>
#include <vector>

#include "updsm/apps/application.hpp"
#include "updsm/apps/grid.hpp"

namespace updsm::apps {

class BarnesApp final : public Application {
 public:
  explicit BarnesApp(const AppParams& params);

  [[nodiscard]] std::string_view name() const override { return "barnes"; }
  [[nodiscard]] bool overdrive_safe() const override { return false; }
  void allocate(mem::SharedHeap& heap) override;

  [[nodiscard]] std::size_t bodies() const { return nbody_; }
  [[nodiscard]] std::size_t max_cells() const { return max_cells_; }

  // Read-only shared-layout introspection for tests and analysis tools.
  [[nodiscard]] GlobalAddr pos_addr() const { return pos_addr_; }
  [[nodiscard]] GlobalAddr vel_addr() const { return vel_addr_; }
  [[nodiscard]] GlobalAddr mass_addr() const { return mass_addr_; }
  [[nodiscard]] GlobalAddr cost_addr() const { return cost_addr_; }
  [[nodiscard]] GlobalAddr tree_meta_addr() const { return tree_meta_addr_; }
  [[nodiscard]] GlobalAddr child_addr() const { return child_addr_; }
  [[nodiscard]] GlobalAddr cell_mass_addr() const { return cell_mass_addr_; }

 protected:
  void init(dsm::NodeContext& ctx) override;
  void step(dsm::NodeContext& ctx, int iter) override;
  [[nodiscard]] double compute_checksum(dsm::NodeContext& ctx) override;

 private:
  /// Child-slot encoding in the shared tree: 0 empty, +k cell k (1-based),
  /// -(b+1) body b.
  static constexpr std::int32_t kEmpty = 0;

  void maketree(dsm::NodeContext& ctx);
  /// Cost-balanced contiguous body range for `node` at `iter`.
  [[nodiscard]] Range my_bodies(dsm::NodeContext& ctx, int iter);
  void compute_forces(dsm::NodeContext& ctx, const Range& mine);
  void advance(dsm::NodeContext& ctx, const Range& mine);

  std::size_t nbody_;
  std::size_t max_cells_;
  // Shared layout.
  GlobalAddr pos_addr_ = 0;    // 3 doubles per body
  GlobalAddr vel_addr_ = 0;    // 3 doubles per body
  GlobalAddr acc_addr_ = 0;    // 3 doubles per body
  GlobalAddr mass_addr_ = 0;   // 1 double per body
  GlobalAddr cost_addr_ = 0;   // interactions per body, previous iteration
  GlobalAddr tree_meta_addr_ = 0;   // [cell_count, root_cx, cy, cz, half]
  GlobalAddr child_addr_ = 0;       // 8 int32 per cell
  GlobalAddr cell_mass_addr_ = 0;   // 1 double per cell
  GlobalAddr cell_com_addr_ = 0;    // 3 doubles per cell
  GlobalAddr cell_mid_addr_ = 0;    // 3 doubles + half-size per cell (4)
};

}  // namespace updsm::apps
