// Application registry: the paper's eight workloads by name.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "updsm/apps/application.hpp"

namespace updsm::apps {

/// The paper's application names, in Table-1 order:
/// barnes, expl, fft, jacobi, shal, sor, swm, tomcat.
[[nodiscard]] std::vector<std::string_view> app_names();

/// The barrier-free workload class (run-to-convergence stencils):
/// jacobi-async, sor-async. Kept out of app_names() so the fixed-iteration
/// sweep grids stay exactly the paper's eight workloads.
[[nodiscard]] std::vector<std::string_view> async_app_names();

/// Instantiates one application. Throws UsageError on unknown names.
[[nodiscard]] std::unique_ptr<Application> make_app(std::string_view name,
                                                    const AppParams& params);

}  // namespace updsm::apps
