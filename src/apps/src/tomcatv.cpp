#include "updsm/apps/tomcatv.hpp"

#include <cmath>

namespace updsm::apps {

namespace {
constexpr double kRelax = 0.5;  // residual relaxation factor
}

TomcatvApp::TomcatvApp(const AppParams& params)
    : Application(params), n_(scaled_dim(256, params.scale, 16) + 2) {}

void TomcatvApp::allocate(mem::SharedHeap& heap) {
  const std::uint64_t bytes = n_ * n_ * sizeof(double);
  x_addr_ = heap.alloc_page_aligned(bytes, "tomcat.x");
  y_addr_ = heap.alloc_page_aligned(bytes, "tomcat.y");
  rx_addr_ = heap.alloc_page_aligned(bytes, "tomcat.rx");
  ry_addr_ = heap.alloc_page_aligned(bytes, "tomcat.ry");
  d_addr_ = heap.alloc_page_aligned(bytes, "tomcat.d");
}

void TomcatvApp::init(dsm::NodeContext& ctx) {
  if (ctx.node() != 0) return;
  Grid2<double> x(ctx, x_addr_, n_, n_);
  Grid2<double> y(ctx, y_addr_, n_, n_);
  // A sheared, unevenly spaced initial mesh the solver will smooth out.
  for (std::size_t i = 0; i < n_; ++i) {
    auto xr = x.row_w(i);
    auto yr = y.row_w(i);
    for (std::size_t j = 0; j < n_; ++j) {
      const double s = static_cast<double>(i) / static_cast<double>(n_ - 1);
      const double t = static_cast<double>(j) / static_cast<double>(n_ - 1);
      xr[j] = t + 0.25 * s * t * (1.0 - t);
      yr[j] = s + 0.15 * std::sin(3.0 * s) * t;
    }
  }
}

void TomcatvApp::step(dsm::NodeContext& ctx, int /*iter*/) {
  Grid2<double> x(ctx, x_addr_, n_, n_);
  Grid2<double> y(ctx, y_addr_, n_, n_);
  Grid2<double> rx(ctx, rx_addr_, n_, n_);
  Grid2<double> ry(ctx, ry_addr_, n_, n_);
  Grid2<double> d(ctx, d_addr_, n_, n_);
  const Range mine = block_range(n_ - 2, ctx.num_nodes(), ctx.node());
  std::uint64_t points = 0;

  // Phase 1: 9-point residual stencil; interior lines only.
  double residual = 0.0;
  for (std::size_t i = 1 + mine.lo; i < 1 + mine.hi; ++i) {
    auto x_m1 = x.row(i - 1);
    auto x_0 = x.row(i);
    auto x_p1 = x.row(i + 1);
    auto y_m1 = y.row(i - 1);
    auto y_0 = y.row(i);
    auto y_p1 = y.row(i + 1);
    auto rx_w = rx.row_w(i);
    auto ry_w = ry.row_w(i);
    for (std::size_t j = 1; j + 1 < n_; ++j) {
      const double xx = x_0[j + 1] - x_0[j - 1];
      const double yx = y_0[j + 1] - y_0[j - 1];
      const double xy = x_p1[j] - x_m1[j];
      const double yy = y_p1[j] - y_m1[j];
      const double a = 0.25 * (xy * xy + yy * yy);
      const double b = 0.25 * (xx * xx + yx * yx);
      const double c = 0.125 * (xx * xy + yx * yy);
      // Second differences (the elliptic operator applied to the mesh).
      const double pxx = x_0[j + 1] - 2.0 * x_0[j] + x_0[j - 1];
      const double qxx = y_0[j + 1] - 2.0 * y_0[j] + y_0[j - 1];
      const double pyy = x_p1[j] - 2.0 * x_0[j] + x_m1[j];
      const double qyy = y_p1[j] - 2.0 * y_0[j] + y_m1[j];
      const double pxy =
          x_p1[j + 1] - x_p1[j - 1] - x_m1[j + 1] + x_m1[j - 1];
      const double qxy =
          y_p1[j + 1] - y_p1[j - 1] - y_m1[j + 1] + y_m1[j - 1];
      rx_w[j] = a * pxx + b * pyy - c * pxy;
      ry_w[j] = a * qxx + b * qyy - c * qxy;
      residual = std::max(residual,
                          std::max(std::abs(rx_w[j]), std::abs(ry_w[j])));
      ++points;
    }
    rx_w[0] = rx_w[n_ - 1] = 0.0;
    ry_w[0] = ry_w[n_ - 1] = 0.0;
  }
  ctx.compute_flops(points * 40);
  // The reduction closes the epoch; every node gets the same value back,
  // but only one thread may store it into the (cross-node) app object.
  const double reduced = ctx.reduce_max(residual);
  if (ctx.node() == 0) last_residual_ = reduced;

  // Phase 2: tridiagonal relaxation along each owned line (APR transposed
  // layout makes lines contiguous and the solve purely local).
  for (std::size_t i = 1 + mine.lo; i < 1 + mine.hi; ++i) {
    auto rx_w = rx.row_w(i);
    auto ry_w = ry.row_w(i);
    auto d_w = d.row_w(i);
    d_w[1] = 1.0 / (2.0 + kRelax);
    for (std::size_t j = 2; j + 1 < n_; ++j) {
      d_w[j] = 1.0 / (2.0 + kRelax - d_w[j - 1]);
      rx_w[j] = (rx_w[j] + rx_w[j - 1]) * d_w[j];
      ry_w[j] = (ry_w[j] + ry_w[j - 1]) * d_w[j];
    }
    for (std::size_t j = n_ - 3; j >= 1; --j) {
      rx_w[j] += d_w[j] * rx_w[j + 1];
      ry_w[j] += d_w[j] * ry_w[j + 1];
    }
  }
  ctx.compute_flops(points * 14);
  ctx.barrier();

  // Phase 3: mesh update over owned lines.
  for (std::size_t i = 1 + mine.lo; i < 1 + mine.hi; ++i) {
    auto rx_r = rx.row(i);
    auto ry_r = ry.row(i);
    auto x_w = x.row_w(i);
    auto y_w = y.row_w(i);
    for (std::size_t j = 1; j + 1 < n_; ++j) {
      x_w[j] += kRelax * rx_r[j];
      y_w[j] += kRelax * ry_r[j];
    }
  }
  ctx.compute_flops(points * 4);
  ctx.barrier();
}

double TomcatvApp::compute_checksum(dsm::NodeContext& ctx) {
  Grid2<double> x(ctx, x_addr_, n_, n_);
  Grid2<double> y(ctx, y_addr_, n_, n_);
  double sum = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    auto xr = x.row(i);
    auto yr = y.row(i);
    for (std::size_t j = 0; j < n_; ++j) sum += xr[j] - yr[j];
  }
  return sum + last_residual_;
}

}  // namespace updsm::apps
