#include "updsm/apps/jacobi.hpp"

#include <cmath>

namespace updsm::apps {

namespace {
constexpr std::uint64_t kFlopsPerPoint = 6;
}

JacobiApp::JacobiApp(const AppParams& params)
    : Application(params),
      rows_(scaled_dim(512, params.scale, 16) + 2),
      cols_(scaled_dim(512, params.scale, 16)) {}

void JacobiApp::allocate(mem::SharedHeap& heap) {
  const std::uint64_t bytes = rows_ * cols_ * sizeof(double);
  cur_addr_ = heap.alloc_page_aligned(bytes, "jacobi.cur");
  next_addr_ = heap.alloc_page_aligned(bytes, "jacobi.next");
}

void JacobiApp::init(dsm::NodeContext& ctx) {
  if (ctx.node() != 0) return;
  Grid2<double> cur(ctx, cur_addr_, rows_, cols_);
  Grid2<double> next(ctx, next_addr_, rows_, cols_);
  // Hot boundary rows over a mildly varying interior: the interior term
  // keeps every stencil update a real modification from iteration 1, which
  // is how a long-running solve behaves (paper §3.1 measures steady state,
  // where the field occupies the whole grid).
  for (std::size_t r = 0; r < rows_; ++r) {
    auto c_row = cur.row_w(r);
    auto n_row = next.row_w(r);
    for (std::size_t c = 0; c < cols_; ++c) {
      const double v = (r == 0 || r + 1 == rows_)
                           ? 1.0 + static_cast<double>(c % 13)
                           : 0.01 * static_cast<double>((r * 31 + c * 17) % 97);
      c_row[c] = v;
      n_row[c] = v;
    }
  }
}

void JacobiApp::step(dsm::NodeContext& ctx, int /*iter*/) {
  Grid2<double> cur(ctx, cur_addr_, rows_, cols_);
  Grid2<double> next(ctx, next_addr_, rows_, cols_);
  const Range mine = block_range(rows_ - 2, ctx.num_nodes(), ctx.node());

  // Sweep: next <- stencil(cur); track the local residual.
  double residual = 0.0;
  std::uint64_t points = 0;
  for (std::size_t r = 1 + mine.lo; r < 1 + mine.hi; ++r) {
    auto up = cur.row(r - 1);
    auto mid = cur.row(r);
    auto down = cur.row(r + 1);
    auto out = next.row_w(r);
    for (std::size_t c = 1; c + 1 < cols_; ++c) {
      const double v = 0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
      residual = std::max(residual, std::abs(v - mid[c]));
      out[c] = v;
      ++points;
    }
  }
  ctx.compute_flops(points * kFlopsPerPoint);
  // Convergence test: the global max residual rides the epoch's closing
  // barrier (explicit reduction support, paper §2.2.1). Every node gets the
  // same value back, but only one thread may store it into the app object.
  const double reduced = ctx.reduce_max(residual);
  if (ctx.node() == 0) last_residual_ = reduced;

  // Copy-back epoch: cur <- next over owned rows.
  for (std::size_t r = 1 + mine.lo; r < 1 + mine.hi; ++r) {
    auto src = next.row(r);
    auto dst = cur.row_w(r);
    for (std::size_t c = 1; c + 1 < cols_; ++c) dst[c] = src[c];
  }
  ctx.compute_flops(points);  // copy traffic, charged as one op per point
  ctx.barrier();
}

double JacobiApp::compute_checksum(dsm::NodeContext& ctx) {
  Grid2<double> cur(ctx, cur_addr_, rows_, cols_);
  double sum = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (const double v : cur.row(r)) sum += v * 1e-3;
  }
  return sum + last_residual_;
}

}  // namespace updsm::apps
