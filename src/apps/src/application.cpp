#include "updsm/apps/application.hpp"

#include <algorithm>

namespace updsm::apps {

void Application::run(dsm::NodeContext& ctx) {
  init(ctx);
  ctx.barrier();

  for (int iter = 1; iter <= total_iterations(); ++iter) {
    if (iter == params_.warmup_iterations + 1) {
      // Open the steady-state window. No extra barrier is inserted: the
      // window engages at the first barrier inside this iteration, keeping
      // the global barrier sequence strictly periodic -- bar-s / bar-m
      // predictions are keyed to that periodicity (an aperiodic barrier is
      // a phase change, which overdrive by design does not tolerate).
      ctx.begin_measurement();
    }
    ctx.iteration_begin();
    step(ctx, iter);
  }

  ctx.end_measurement();
  ctx.barrier();

  if (ctx.node() == 0) {
    checksum_ = compute_checksum(ctx);
  }
  ctx.barrier();
}

std::size_t scaled_dim(std::size_t base, double scale, std::size_t multiple) {
  auto scaled =
      static_cast<std::size_t>(static_cast<double>(base) * scale + 0.5);
  scaled = std::max(scaled, multiple);
  return (scaled / multiple) * multiple;
}

}  // namespace updsm::apps
