#include "updsm/apps/sor.hpp"

namespace updsm::apps {

namespace {
constexpr double kOmega = 1.5;
/// mults+adds per updated point in the sweep loop below.
constexpr std::uint64_t kFlopsPerPoint = 7;
}  // namespace

SorApp::SorApp(const AppParams& params)
    : Application(params),
      rows_(scaled_dim(512, params.scale, 16) + 2),  // +2 boundary rows
      cols_(scaled_dim(512, params.scale, 16)) {}

void SorApp::allocate(mem::SharedHeap& heap) {
  grid_addr_ =
      heap.alloc_page_aligned(rows_ * cols_ * sizeof(double), "sor.grid");
}

void SorApp::init(dsm::NodeContext& ctx) {
  if (ctx.node() != 0) return;
  Grid2<double> g(ctx, grid_addr_, rows_, cols_);
  // Hot left/top edges, cold interior: a classic heat-plate setup.
  for (std::size_t r = 0; r < rows_; ++r) {
    auto row = g.row_w(r);
    for (std::size_t c = 0; c < cols_; ++c) {
      row[c] = (r == 0 || c == 0) ? 100.0 : 0.0;
    }
  }
}

void SorApp::sweep(dsm::NodeContext& ctx, int color) {
  Grid2<double> g(ctx, grid_addr_, rows_, cols_);
  const Range mine = block_range(rows_ - 2, ctx.num_nodes(), ctx.node());
  std::uint64_t points = 0;
  for (std::size_t r = 1 + mine.lo; r < 1 + mine.hi; ++r) {
    auto up = g.row(r - 1);
    auto down = g.row(r + 1);
    auto cur = g.row_w(r);
    const std::size_t start =
        1 + ((r + static_cast<std::size_t>(color)) % 2);
    for (std::size_t c = start; c + 1 < cols_; c += 2) {
      const double res =
          0.25 * (up[c] + down[c] + cur[c - 1] + cur[c + 1]) - cur[c];
      cur[c] += kOmega * res;
      ++points;
    }
  }
  ctx.compute_flops(points * kFlopsPerPoint);
}

void SorApp::step(dsm::NodeContext& ctx, int /*iter*/) {
  sweep(ctx, 0);
  ctx.barrier();
  sweep(ctx, 1);
  ctx.barrier();
}

double SorApp::compute_checksum(dsm::NodeContext& ctx) {
  Grid2<double> g(ctx, grid_addr_, rows_, cols_);
  double sum = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (const double v : g.row(r)) sum += v * 1e-3;
  }
  return sum;
}

}  // namespace updsm::apps
