#include "updsm/apps/shallow.hpp"

#include <cmath>
#include <numbers>

namespace updsm::apps {

namespace {
constexpr double kDx = 1e5;
constexpr double kDy = 1e5;
constexpr double kDt = 90.0;
constexpr double kAlpha = 0.001;  // Robert-Asselin filter coefficient
}  // namespace

ShallowApp::ShallowApp(const AppParams& params, std::string_view variant_name,
                       std::size_t base_dim, bool fine_grained,
                       bool shifted_smoothing)
    : Application(params),
      name_(variant_name),
      fine_(fine_grained),
      shifted_smoothing_(shifted_smoothing),
      rows_(scaled_dim(base_dim, params.scale, 16) + 2),
      cols_(scaled_dim(base_dim, params.scale, 16) + 2) {}

void ShallowApp::allocate(mem::SharedHeap& heap) {
  static constexpr const char* kNames[kFieldCount] = {
      "u", "v", "p", "unew", "vnew", "pnew", "uold", "vold", "pold",
      "cu", "cv", "z", "h"};
  for (int f = 0; f < kFieldCount; ++f) {
    addr_[f] = heap.alloc_page_aligned(rows_ * cols_ * sizeof(double),
                                       std::string(name_) + "." + kNames[f]);
  }
}

void ShallowApp::init(dsm::NodeContext& ctx) {
  if (ctx.node() != 0) return;
  auto u = grid(ctx, kU);
  auto v = grid(ctx, kV);
  auto p = grid(ctx, kP);
  auto uold = grid(ctx, kUold);
  auto vold = grid(ctx, kVold);
  auto pold = grid(ctx, kPold);
  const double el = static_cast<double>(cols_ - 2) * kDx;
  const double pi2 = 2.0 * std::numbers::pi;
  for (std::size_t i = 0; i < rows_; ++i) {
    auto u_row = u.row_w(i);
    auto v_row = v.row_w(i);
    auto p_row = p.row_w(i);
    auto uo = uold.row_w(i);
    auto vo = vold.row_w(i);
    auto po = pold.row_w(i);
    for (std::size_t j = 0; j < cols_; ++j) {
      // The SPEC initial condition: a doubly periodic stream function.
      const double x = static_cast<double>(i) * kDx;
      const double y = static_cast<double>(j) * kDy;
      const double psi_like =
          std::sin(pi2 * x / el) * std::cos(pi2 * y / el);
      u_row[j] = -50.0 * psi_like;
      v_row[j] = 50.0 * std::cos(pi2 * x / el) * std::sin(pi2 * y / el);
      p_row[j] = 5000.0 + 500.0 * psi_like;
      uo[j] = u_row[j];
      vo[j] = v_row[j];
      po[j] = p_row[j];
    }
  }
}

void ShallowApp::wrap_rows(dsm::NodeContext& ctx,
                           std::initializer_list<Field> fields) {
  // Periodic rows: ghost row 0 mirrors interior row m; ghost row m+1
  // mirrors interior row 1. The owner of the *source* row writes the ghost
  // (it already holds the data), so ghost pages are written remotely --
  // deliberately un-"owner-computes" traffic, as in the SPEC code's copy
  // loops.
  const std::size_t m = rows_ - 2;
  const Range mine = block_range(m, ctx.num_nodes(), ctx.node());
  for (const Field f : fields) {
    auto g = grid(ctx, f);
    if (mine.contains(m - 1)) {  // owner of interior row m
      auto src = g.row(m);
      auto dst = g.row_w(0);
      for (std::size_t j = 0; j < cols_; ++j) dst[j] = src[j];
    }
    if (mine.contains(0)) {  // owner of interior row 1
      auto src = g.row(1);
      auto dst = g.row_w(rows_ - 1);
      for (std::size_t j = 0; j < cols_; ++j) dst[j] = src[j];
    }
  }
}

void ShallowApp::loop100(dsm::NodeContext& ctx) {
  auto u = grid(ctx, kU);
  auto v = grid(ctx, kV);
  auto p = grid(ctx, kP);
  auto cu = grid(ctx, kCu);
  auto cv = grid(ctx, kCv);
  auto z = grid(ctx, kZ);
  auto h = grid(ctx, kH);
  const double fsdx = 4.0 / kDx;
  const double fsdy = 4.0 / kDy;
  const std::size_t m = rows_ - 2;
  const Range mine = block_range(m, ctx.num_nodes(), ctx.node());
  std::uint64_t points = 0;
  for (std::size_t i = 1 + mine.lo; i < 1 + mine.hi; ++i) {
    auto p_m1 = p.row(i - 1);
    auto p_0 = p.row(i);
    auto u_0 = u.row(i);
    auto u_p1 = u.row(i + 1);
    auto v_m1 = v.row(i - 1);
    auto v_0 = v.row(i);
    auto cu_w = cu.row_w(i);
    auto cv_w = cv.row_w(i);
    auto z_w = z.row_w(i);
    auto h_w = h.row_w(i);
    for (std::size_t j = 1; j + 1 < cols_; ++j) {
      cu_w[j] = 0.5 * (p_0[j] + p_m1[j]) * u_0[j];
      cv_w[j] = 0.5 * (p_0[j] + p_0[j - 1]) * v_0[j];
      z_w[j] = (fsdx * (v_0[j] - v_m1[j]) - fsdy * (u_0[j] - u_0[j - 1])) /
               (0.25 * (p_m1[j - 1] + p_m1[j] + p_0[j] + p_0[j - 1]));
      h_w[j] = p_0[j] + 0.25 * (u_p1[j] * u_p1[j] + u_0[j] * u_0[j] +
                                v_0[j + 1] * v_0[j + 1] + v_0[j] * v_0[j]);
      // Periodic columns within the owned row.
      ++points;
    }
    cu_w[0] = cu_w[cols_ - 2];
    cu_w[cols_ - 1] = cu_w[1];
    cv_w[0] = cv_w[cols_ - 2];
    cv_w[cols_ - 1] = cv_w[1];
    z_w[0] = z_w[cols_ - 2];
    z_w[cols_ - 1] = z_w[1];
    h_w[0] = h_w[cols_ - 2];
    h_w[cols_ - 1] = h_w[1];
  }
  ctx.compute_flops(points * 24);
}

void ShallowApp::loop200(dsm::NodeContext& ctx) {
  auto uold = grid(ctx, kUold);
  auto vold = grid(ctx, kVold);
  auto pold = grid(ctx, kPold);
  auto unew = grid(ctx, kUnew);
  auto vnew = grid(ctx, kVnew);
  auto pnew = grid(ctx, kPnew);
  auto cu = grid(ctx, kCu);
  auto cv = grid(ctx, kCv);
  auto z = grid(ctx, kZ);
  auto h = grid(ctx, kH);
  const double tdts8 = kDt / 4.0;
  const double tdtsdx = kDt / kDx;
  const double tdtsdy = kDt / kDy;
  const std::size_t m = rows_ - 2;
  const Range mine = block_range(m, ctx.num_nodes(), ctx.node());
  std::uint64_t points = 0;
  for (std::size_t i = 1 + mine.lo; i < 1 + mine.hi; ++i) {
    auto z_0 = z.row(i);
    auto z_p1 = z.row(i + 1);
    auto cv_0 = cv.row(i);
    auto cv_p1 = cv.row(i + 1);
    auto cu_0 = cu.row(i);
    auto cu_m1 = cu.row(i - 1);
    auto h_0 = h.row(i);
    auto h_m1 = h.row(i - 1);
    auto uo = uold.row(i);
    auto vo = vold.row(i);
    auto po = pold.row(i);
    auto un = unew.row_w(i);
    auto vn = vnew.row_w(i);
    auto pn = pnew.row_w(i);
    for (std::size_t j = 1; j + 1 < cols_; ++j) {
      un[j] = uo[j] +
              tdts8 * (z_p1[j] + z_0[j]) *
                  (cv_p1[j] + cv_p1[j - 1] + cv_0[j] + cv_0[j - 1]) * 0.25 -
              tdtsdx * (h_0[j] - h_m1[j]);
      vn[j] = vo[j] -
              tdts8 * (z_0[j + 1] + z_0[j]) *
                  (cu_0[j + 1] + cu_0[j] + cu_m1[j + 1] + cu_m1[j]) * 0.25 -
              tdtsdy * (h_0[j] - h_0[j - 1]);
      pn[j] = po[j] - tdtsdx * (cu_0[j] - cu_m1[j]) -
              tdtsdy * (cv_0[j] - cv_0[j - 1]);
      ++points;
    }
    un[0] = un[cols_ - 2];
    un[cols_ - 1] = un[1];
    vn[0] = vn[cols_ - 2];
    vn[cols_ - 1] = vn[1];
    pn[0] = pn[cols_ - 2];
    pn[cols_ - 1] = pn[1];
  }
  ctx.compute_flops(points * 28);
}

void ShallowApp::loop300(dsm::NodeContext& ctx) {
  auto u = grid(ctx, kU);
  auto v = grid(ctx, kV);
  auto p = grid(ctx, kP);
  auto uold = grid(ctx, kUold);
  auto vold = grid(ctx, kVold);
  auto pold = grid(ctx, kPold);
  auto unew = grid(ctx, kUnew);
  auto vnew = grid(ctx, kVnew);
  auto pnew = grid(ctx, kPnew);
  std::uint64_t points = 0;

  // shal: the smoothing runs over the same row distribution as loops 100
  // and 200 (perfect locality). swm: the smoothing's distribution is
  // SHIFTED by half a block -- the kind of per-loop iteration-assignment
  // mismatch a parallelizing compiler produces when consecutive loops are
  // scheduled independently. Every page of all six arrays then crosses
  // node boundaries once per time-step: the paper's swm pathology.
  const std::size_t m = rows_ - 2;
  const Range aligned = block_range(m, ctx.num_nodes(), ctx.node());
  const std::size_t shift =
      shifted_smoothing_ ? (m / static_cast<std::size_t>(ctx.num_nodes())) / 2
                         : 0;
  const std::size_t start = (aligned.lo + shift) % m;
  for (std::size_t k = 0; k < aligned.size(); ++k) {
    const std::size_t i = 1 + (start + k) % m;
    auto un = unew.row(i);
    auto vn = vnew.row(i);
    auto pn = pnew.row(i);
    auto u_w = u.row_w(i);
    auto v_w = v.row_w(i);
    auto p_w = p.row_w(i);
    auto uo = uold.row_w(i);
    auto vo = vold.row_w(i);
    auto po = pold.row_w(i);
    for (std::size_t j = 0; j < cols_; ++j) {
      uo[j] = u_w[j] + kAlpha * (un[j] - 2.0 * u_w[j] + uo[j]);
      vo[j] = v_w[j] + kAlpha * (vn[j] - 2.0 * v_w[j] + vo[j]);
      po[j] = p_w[j] + kAlpha * (pn[j] - 2.0 * p_w[j] + po[j]);
      u_w[j] = un[j];
      v_w[j] = vn[j];
      p_w[j] = pn[j];
      ++points;
    }
  }
  ctx.compute_flops(points * 15);
}

void ShallowApp::step(dsm::NodeContext& ctx, int /*iter*/) {
  loop100(ctx);
  if (fine_) ctx.barrier();
  wrap_rows(ctx, {kCu, kCv, kZ, kH});
  ctx.barrier();

  loop200(ctx);
  if (fine_) ctx.barrier();
  wrap_rows(ctx, {kUnew, kVnew, kPnew});
  ctx.barrier();

  loop300(ctx);
  if (fine_) ctx.barrier();
  wrap_rows(ctx, {kU, kV, kP, kUold, kVold, kPold});
  ctx.barrier();
}

double ShallowApp::compute_checksum(dsm::NodeContext& ctx) {
  auto p = grid(ctx, kP);
  auto u = grid(ctx, kU);
  double sum = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    auto p_row = p.row(i);
    auto u_row = u.row(i);
    for (std::size_t j = 0; j < cols_; ++j) {
      sum += p_row[j] * 1e-6 + u_row[j] * 1e-4;
    }
  }
  return sum;
}

}  // namespace updsm::apps
