#include "updsm/apps/registry.hpp"

#include "updsm/apps/async_stencil.hpp"
#include "updsm/apps/barnes.hpp"
#include "updsm/apps/expl.hpp"
#include "updsm/apps/fft.hpp"
#include "updsm/apps/jacobi.hpp"
#include "updsm/apps/shallow.hpp"
#include "updsm/apps/sor.hpp"
#include "updsm/apps/tomcatv.hpp"
#include "updsm/common/error.hpp"

namespace updsm::apps {

std::vector<std::string_view> app_names() {
  return {"barnes", "expl", "fft", "jacobi", "shal", "sor", "swm", "tomcat"};
}

std::vector<std::string_view> async_app_names() {
  return {"jacobi-async", "sor-async"};
}

std::unique_ptr<Application> make_app(std::string_view name,
                                      const AppParams& params) {
  if (name == "barnes") return std::make_unique<BarnesApp>(params);
  if (name == "expl") return std::make_unique<ExplApp>(params);
  if (name == "fft") return std::make_unique<FftApp>(params);
  if (name == "jacobi") return std::make_unique<JacobiApp>(params);
  if (name == "shal") {
    return std::make_unique<ShallowApp>(params, "shal", 256,
                                        /*fine_grained=*/false,
                                        /*shifted_smoothing=*/false);
  }
  if (name == "sor") return std::make_unique<SorApp>(params);
  if (name == "swm") {
    return std::make_unique<ShallowApp>(params, "swm", 256,
                                        /*fine_grained=*/true,
                                        /*shifted_smoothing=*/true);
  }
  if (name == "tomcat") return std::make_unique<TomcatvApp>(params);
  if (name == "jacobi-async") {
    return std::make_unique<AsyncStencilApp>(params, StencilKind::Jacobi);
  }
  if (name == "sor-async") {
    return std::make_unique<AsyncStencilApp>(params, StencilKind::SorRb);
  }
  throw UsageError("unknown application: " + std::string(name));
}

}  // namespace updsm::apps
