#include "updsm/apps/fft.hpp"

#include <cmath>
#include <numbers>

#include "updsm/apps/grid.hpp"
#include "updsm/common/rng.hpp"

namespace updsm::apps {

namespace {
constexpr double kDt = 0.02;

/// Largest power of two <= x (problem sizes must be powers of two).
std::size_t floor_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p * 2 <= x) p *= 2;
  return p;
}

std::uint64_t fft_flops(std::size_t n) {
  std::size_t log_n = 0;
  while ((std::size_t{1} << log_n) < n) ++log_n;
  return 5ULL * n * log_n;  // the standard radix-2 operation count
}
}  // namespace

void fft_radix2(double* data, std::size_t n, bool inverse) {
  UPDSM_REQUIRE(n >= 2 && (n & (n - 1)) == 0,
                "fft length must be a power of two >= 2, got " << n);
  // Bit-reversal permutation over complex slots.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(data[2 * i], data[2 * j]);
      std::swap(data[2 * i + 1], data[2 * j + 1]);
    }
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const double w_re = std::cos(ang);
    const double w_im = std::sin(ang);
    for (std::size_t i = 0; i < n; i += len) {
      double cur_re = 1.0;
      double cur_im = 0.0;
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::size_t a = 2 * (i + k);
        const std::size_t b = 2 * (i + k + len / 2);
        const double t_re = data[b] * cur_re - data[b + 1] * cur_im;
        const double t_im = data[b] * cur_im + data[b + 1] * cur_re;
        data[b] = data[a] - t_re;
        data[b + 1] = data[a + 1] - t_im;
        data[a] += t_re;
        data[a + 1] += t_im;
        const double next_re = cur_re * w_re - cur_im * w_im;
        cur_im = cur_re * w_im + cur_im * w_re;
        cur_re = next_re;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked layout (SPLASH-2 FFT style, "matrix transposition to reduce
// communication"): each z-plane of `data` is stored as kLayoutBlocks
// contiguous blocks, block b holding one x-range:
//
//   data(z, y, x) -> complex slot (z*L + b) * (n*B) + y*B + xw
//     where L = kLayoutBlocks, B = n/L, b = x/B, xw = x%B.
//
// The transpose consumer of block (z, b) is the owner of that x-range, so
// at paper scale (n = 64, 8 nodes, 8 KB pages) every block is one page
// with a single-node copyset -- no broadcast amplification. `scratch`
// mirrors the layout with the roles of x and z exchanged. The block count
// is FIXED (not the node count) so the stored field, and therefore every
// checksum, is bit-identical across cluster sizes.
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kLayoutBlocks = 8;
}  // namespace

FftApp::FftApp(const AppParams& params)
    : Application(params), n_(floor_pow2(scaled_dim(64, params.scale, 16))) {}

void FftApp::allocate(mem::SharedHeap& heap) {
  const std::uint64_t bytes = n_ * n_ * n_ * 2 * sizeof(double);
  data_addr_ = heap.alloc_page_aligned(bytes, "fft.data");
  scratch_addr_ = heap.alloc_page_aligned(bytes, "fft.scratch");
}

void FftApp::init(dsm::NodeContext& ctx) {
  if (ctx.node() != 0) return;
  auto data = ctx.array<double>(data_addr_, n_ * n_ * n_ * 2);
  auto w = data.write_all();
  for (std::size_t i = 0; i < n_ * n_ * n_; ++i) {
    // Deterministic pseudo-random field, purely real. Layout does not
    // matter here: the checksum and the physics are layout-agnostic.
    w[2 * i] =
        static_cast<double>(splitmix64(params_.seed + i) >> 11) * 0x1.0p-53;
    w[2 * i + 1] = 0.0;
  }
}

void FftApp::planar_fft(dsm::NodeContext& ctx, GlobalAddr cube,
                        bool inverse) {
  auto arr = ctx.array<double>(cube, n_ * n_ * n_ * 2);
  constexpr std::size_t L = kLayoutBlocks;
  const std::size_t B = n_ / L;
  const Range mine = block_range(n_, ctx.num_nodes(), ctx.node());
  const std::size_t plane_slots = n_ * n_ * 2;  // doubles per plane
  std::vector<double> line(2 * n_);
  std::uint64_t lines = 0;
  for (std::size_t plane = mine.lo; plane < mine.hi; ++plane) {
    auto pv = arr.write_view(plane * plane_slots, (plane + 1) * plane_slots);
    // FFT along x: gather across the plane's blocks (stride B within a
    // block row, block-pitch n*B between blocks).
    for (std::size_t y = 0; y < n_; ++y) {
      for (std::size_t x = 0; x < n_; ++x) {
        const std::size_t slot = (x / B) * (n_ * B) + y * B + (x % B);
        line[2 * x] = pv[2 * slot];
        line[2 * x + 1] = pv[2 * slot + 1];
      }
      fft_radix2(line.data(), n_, inverse);
      for (std::size_t x = 0; x < n_; ++x) {
        const std::size_t slot = (x / B) * (n_ * B) + y * B + (x % B);
        pv[2 * slot] = line[2 * x];
        pv[2 * slot + 1] = line[2 * x + 1];
      }
      ++lines;
    }
    // FFT along y: within block b and offset xw, stride is B slots.
    for (std::size_t b = 0; b < L; ++b) {
      for (std::size_t xw = 0; xw < B; ++xw) {
        const std::size_t base = b * (n_ * B) + xw;
        for (std::size_t y = 0; y < n_; ++y) {
          line[2 * y] = pv[2 * (base + y * B)];
          line[2 * y + 1] = pv[2 * (base + y * B) + 1];
        }
        fft_radix2(line.data(), n_, inverse);
        for (std::size_t y = 0; y < n_; ++y) {
          pv[2 * (base + y * B)] = line[2 * y];
          pv[2 * (base + y * B) + 1] = line[2 * y + 1];
        }
        ++lines;
      }
    }
  }
  ctx.compute_flops(lines * fft_flops(n_));
}

void FftApp::transpose(dsm::NodeContext& ctx, GlobalAddr src,
                       GlobalAddr dst) {
  // dst(x, y, z) <- src(z, y, x) for this node's x-planes of dst. The node
  // reads exactly block `me` of every src plane (contiguous, single-
  // consumer) and writes only its own dst planes.
  auto s = ctx.array<double>(src, n_ * n_ * n_ * 2);
  auto d = ctx.array<double>(dst, n_ * n_ * n_ * 2);
  constexpr std::size_t L = kLayoutBlocks;
  const std::size_t B = n_ / L;
  const std::size_t block_slots = n_ * B;  // complex slots per block
  const Range mine = block_range(n_, ctx.num_nodes(), ctx.node());
  auto out = d.write_view(mine.lo * n_ * n_ * 2, mine.hi * n_ * n_ * 2);
  const std::size_t out_base = mine.lo * n_ * n_;  // complex-slot origin
  const std::size_t b_first = mine.lo / B;
  const std::size_t b_last = (mine.hi - 1) / B;
  for (std::size_t z = 0; z < n_; ++z) {
    for (std::size_t b = b_first; b <= b_last; ++b) {
      const std::size_t src_block = (z * L + b) * block_slots;
      auto in = s.read_view(2 * src_block, 2 * (src_block + block_slots));
      const std::size_t x_lo = std::max(mine.lo, b * B);
      const std::size_t x_hi = std::min(mine.hi, (b + 1) * B);
      for (std::size_t y = 0; y < n_; ++y) {
        for (std::size_t x = x_lo; x < x_hi; ++x) {
          // dst slot for (x, y, z) in the z-blocked scratch layout.
          const std::size_t slot =
              (x * L + z / B) * block_slots + y * B + (z % B) - out_base;
          out[2 * slot] = in[2 * (y * B + (x % B))];
          out[2 * slot + 1] = in[2 * (y * B + (x % B)) + 1];
        }
      }
    }
  }
  ctx.compute_flops(mine.size() * n_ * n_ * 2);  // data movement
}

void FftApp::spectral_step(dsm::NodeContext& ctx) {
  // In the transposed cube the original z-axis is block-local: FFT along
  // z, apply the heat-kernel decay and the full normalization, inverse FFT
  // along z -- all within this node's x-planes.
  auto arr = ctx.array<double>(scratch_addr_, n_ * n_ * n_ * 2);
  constexpr std::size_t L = kLayoutBlocks;
  const std::size_t B = n_ / L;
  const std::size_t block_slots = n_ * B;
  const Range mine = block_range(n_, ctx.num_nodes(), ctx.node());
  const double norm = 1.0 / (static_cast<double>(n_) * static_cast<double>(n_) *
                             static_cast<double>(n_));
  auto wavenumber = [&](std::size_t i) {
    const double k = static_cast<double>(i <= n_ / 2 ? i : n_ - i);
    return 2.0 * std::numbers::pi * k / static_cast<double>(n_);
  };
  auto pv = arr.write_view(mine.lo * n_ * n_ * 2, mine.hi * n_ * n_ * 2);
  const std::size_t base_slot = mine.lo * n_ * n_;
  std::vector<double> line(2 * n_);
  std::uint64_t lines = 0;
  for (std::size_t x = mine.lo; x < mine.hi; ++x) {
    const double kx = wavenumber(x);
    for (std::size_t y = 0; y < n_; ++y) {
      const double ky = wavenumber(y);
      for (std::size_t z = 0; z < n_; ++z) {
        const std::size_t slot =
            (x * L + z / B) * block_slots + y * B + (z % B) - base_slot;
        line[2 * z] = pv[2 * slot];
        line[2 * z + 1] = pv[2 * slot + 1];
      }
      fft_radix2(line.data(), n_, /*inverse=*/false);
      for (std::size_t z = 0; z < n_; ++z) {
        const double kz = wavenumber(z);
        const double decay =
            std::exp(-(kx * kx + ky * ky + kz * kz) * kDt) * norm;
        line[2 * z] *= decay;
        line[2 * z + 1] *= decay;
      }
      fft_radix2(line.data(), n_, /*inverse=*/true);
      for (std::size_t z = 0; z < n_; ++z) {
        const std::size_t slot =
            (x * L + z / B) * block_slots + y * B + (z % B) - base_slot;
        pv[2 * slot] = line[2 * z];
        pv[2 * slot + 1] = line[2 * z + 1];
      }
      lines += 2;
    }
  }
  ctx.compute_flops(lines * fft_flops(n_) + mine.size() * n_ * n_ * 8);
}

void FftApp::step(dsm::NodeContext& ctx, int /*iter*/) {
  planar_fft(ctx, data_addr_, /*inverse=*/false);
  ctx.barrier();
  transpose(ctx, data_addr_, scratch_addr_);
  ctx.barrier();
  spectral_step(ctx);
  ctx.barrier();
  transpose(ctx, scratch_addr_, data_addr_);
  ctx.barrier();
  planar_fft(ctx, data_addr_, /*inverse=*/true);
  ctx.barrier();
}

double FftApp::compute_checksum(dsm::NodeContext& ctx) {
  auto data = ctx.array<double>(data_addr_, n_ * n_ * n_ * 2);
  auto r = data.read_all();
  double sum = 0.0;
  for (std::size_t i = 0; i < r.size(); i += 2) sum += r[i];
  return sum;
}

}  // namespace updsm::apps
