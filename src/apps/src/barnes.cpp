#include "updsm/apps/barnes.hpp"

#include <cmath>

#include "updsm/common/rng.hpp"

namespace updsm::apps {

namespace {
constexpr double kTheta = 0.6;      // opening angle
constexpr double kDt = 0.005;       // leapfrog step
constexpr double kSoftening2 = 1e-4;
constexpr std::uint64_t kFlopsPerInteraction = 22;  // incl. rsqrt

double unit_rand(std::uint64_t seed, std::uint64_t k) {
  return static_cast<double>(splitmix64(seed + k) >> 11) * 0x1.0p-53;
}
}  // namespace

BarnesApp::BarnesApp(const AppParams& params)
    : Application(params),
      nbody_(scaled_dim(2048, params.scale * params.scale, 64)),
      max_cells_(4 * nbody_) {}

void BarnesApp::allocate(mem::SharedHeap& heap) {
  pos_addr_ = heap.alloc_page_aligned(nbody_ * 3 * 8, "barnes.pos");
  vel_addr_ = heap.alloc_page_aligned(nbody_ * 3 * 8, "barnes.vel");
  acc_addr_ = heap.alloc_page_aligned(nbody_ * 3 * 8, "barnes.acc");
  mass_addr_ = heap.alloc_page_aligned(nbody_ * 8, "barnes.mass");
  cost_addr_ = heap.alloc_page_aligned(nbody_ * 8, "barnes.cost");
  tree_meta_addr_ = heap.alloc_page_aligned(5 * 8, "barnes.meta");
  child_addr_ = heap.alloc_page_aligned(max_cells_ * 8 * 4, "barnes.child");
  cell_mass_addr_ = heap.alloc_page_aligned(max_cells_ * 8, "barnes.cmass");
  cell_com_addr_ = heap.alloc_page_aligned(max_cells_ * 3 * 8, "barnes.ccom");
  cell_mid_addr_ = heap.alloc_page_aligned(max_cells_ * 4 * 8, "barnes.cmid");
}

void BarnesApp::init(dsm::NodeContext& ctx) {
  if (ctx.node() != 0) return;
  auto pos = ctx.array<double>(pos_addr_, nbody_ * 3);
  auto vel = ctx.array<double>(vel_addr_, nbody_ * 3);
  auto mass = ctx.array<double>(mass_addr_, nbody_);
  auto cost = ctx.array<double>(cost_addr_, nbody_);
  auto p = pos.write_all();
  auto v = vel.write_all();
  auto m = mass.write_all();
  auto c = cost.write_all();
  // A Plummer-ish clumpy ball: three offset Gaussian-ish clusters.
  for (std::size_t b = 0; b < nbody_; ++b) {
    const std::size_t cl = b % 3;
    const double cx = 0.25 + 0.25 * static_cast<double>(cl);
    for (int d = 0; d < 3; ++d) {
      double g = 0.0;
      for (int s = 0; s < 4; ++s) {
        g += unit_rand(params_.seed, b * 12 + static_cast<std::size_t>(d) * 4 +
                                         static_cast<std::size_t>(s));
      }
      p[3 * b + static_cast<std::size_t>(d)] = cx + 0.1 * (g - 2.0);
      v[3 * b + static_cast<std::size_t>(d)] =
          0.05 *
          (unit_rand(params_.seed ^ 0xbeefULL,
                     b * 3 + static_cast<std::size_t>(d)) -
           0.5);
    }
    m[b] = 1.0 / static_cast<double>(nbody_);
    c[b] = 1.0;
  }
}

void BarnesApp::maketree(dsm::NodeContext& ctx) {
  // Serial tree build at node 0 (paper: maketree performed serially).
  auto pos = ctx.array<double>(pos_addr_, nbody_ * 3);
  auto mass = ctx.array<double>(mass_addr_, nbody_);
  auto p = pos.read_all();
  auto m = mass.read_all();

  // Bounding cube.
  double lo = p[0];
  double hi = p[0];
  for (const double v : p) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double half = 0.5 * (hi - lo) + 1e-9;
  const double mid = 0.5 * (hi + lo);

  // Build locally, then publish with bulk writes (same pages dirtied as an
  // in-place build, far less per-element MMU churn).
  std::vector<std::int32_t> child(8, kEmpty);
  std::vector<double> cmid{mid, mid, mid, half};  // 4 per cell
  std::size_t cells = 1;
  auto octant = [&](std::size_t cell, std::size_t b) {
    int oct = 0;
    for (int d = 0; d < 3; ++d) {
      if (p[3 * b + static_cast<std::size_t>(d)] >
          cmid[4 * cell + static_cast<std::size_t>(d)]) {
        oct |= 1 << d;
      }
    }
    return oct;
  };
  auto new_cell = [&](std::size_t parent, int oct) {
    UPDSM_CHECK_MSG(cells < max_cells_, "barnes tree overflow");
    const std::size_t c = cells++;
    child.resize(8 * cells, kEmpty);
    cmid.resize(4 * cells);
    const double h = 0.5 * cmid[4 * parent + 3];
    for (int d = 0; d < 3; ++d) {
      const double off = (oct & (1 << d)) ? h : -h;
      cmid[4 * c + static_cast<std::size_t>(d)] =
          cmid[4 * parent + static_cast<std::size_t>(d)] + off;
    }
    cmid[4 * c + 3] = h;
    return c;
  };

  for (std::size_t b = 0; b < nbody_; ++b) {
    std::size_t cur = 0;
    for (int depth = 0; depth < 64; ++depth) {
      UPDSM_CHECK_MSG(depth < 63, "barnes tree too deep (duplicate body?)");
      const int oct = octant(cur, b);
      // Index, not a reference: new_cell() below reallocates `child`.
      const std::size_t slot_idx = 8 * cur + static_cast<std::size_t>(oct);
      const std::int32_t slot = child[slot_idx];
      if (slot == kEmpty) {
        child[slot_idx] = -static_cast<std::int32_t>(b) - 1;
        break;
      }
      if (slot > 0) {
        cur = static_cast<std::size_t>(slot - 1);
        continue;
      }
      // Occupied by a body: split the slot into a new cell and push the
      // resident body one level down, then retry from the new cell.
      const std::size_t resident = static_cast<std::size_t>(-slot) - 1;
      const std::size_t c = new_cell(cur, oct);
      child[slot_idx] = static_cast<std::int32_t>(c + 1);
      const int roct = octant(c, resident);
      child[8 * c + static_cast<std::size_t>(roct)] =
          -static_cast<std::int32_t>(resident) - 1;
      cur = c;
    }
  }

  // Centre-of-mass pass: children were always created after their parents,
  // so a reverse sweep sees children before parents.
  std::vector<double> cmass(cells, 0.0);
  std::vector<double> ccom(3 * cells, 0.0);
  for (std::size_t c = cells; c-- > 0;) {
    double total = 0.0;
    double com[3] = {0.0, 0.0, 0.0};
    for (int k = 0; k < 8; ++k) {
      const std::int32_t slot = child[8 * c + static_cast<std::size_t>(k)];
      if (slot == kEmpty) continue;
      double w;
      const double* src;
      if (slot > 0) {
        const auto cc = static_cast<std::size_t>(slot - 1);
        w = cmass[cc];
        src = &ccom[3 * cc];
      } else {
        const auto b = static_cast<std::size_t>(-slot) - 1;
        w = m[b];
        src = &p[3 * b];
      }
      total += w;
      for (int d = 0; d < 3; ++d) {
        com[static_cast<std::size_t>(d)] +=
            w * src[static_cast<std::size_t>(d)];
      }
    }
    cmass[c] = total;
    for (int d = 0; d < 3; ++d) {
      ccom[3 * c + static_cast<std::size_t>(d)] =
          total > 0.0 ? com[static_cast<std::size_t>(d)] / total : 0.0;
    }
  }
  ctx.compute_flops(nbody_ * 40 + cells * 30);

  // Publish.
  auto meta = ctx.array<double>(tree_meta_addr_, 5);
  auto meta_w = meta.write_all();
  meta_w[0] = static_cast<double>(cells);
  meta_w[1] = mid;
  meta_w[2] = mid;
  meta_w[3] = mid;
  meta_w[4] = half;
  auto child_sh = ctx.array<std::int32_t>(child_addr_, max_cells_ * 8);
  auto child_w = child_sh.write_view(0, 8 * cells);
  std::copy(child.begin(), child.end(), child_w.begin());
  auto cmass_sh = ctx.array<double>(cell_mass_addr_, max_cells_);
  auto cmass_w = cmass_sh.write_view(0, cells);
  std::copy(cmass.begin(), cmass.end(), cmass_w.begin());
  auto ccom_sh = ctx.array<double>(cell_com_addr_, max_cells_ * 3);
  auto ccom_w = ccom_sh.write_view(0, 3 * cells);
  std::copy(ccom.begin(), ccom.end(), ccom_w.begin());
  auto cmid_sh = ctx.array<double>(cell_mid_addr_, max_cells_ * 4);
  auto cmid_w = cmid_sh.write_view(0, 4 * cells);
  std::copy(cmid.begin(), cmid.end(), cmid_w.begin());
}

Range BarnesApp::my_bodies(dsm::NodeContext& ctx, int iter) {
  // Cost-balanced contiguous partition from the previous iteration's
  // interaction counts, rotated a little each iteration: iterative but
  // deliberately non-invariant sharing (paper §5.1 on barnes).
  auto cost = ctx.array<double>(cost_addr_, nbody_);
  auto c = cost.read_all();
  double total = 0.0;
  for (const double v : c) total += v;
  const int nodes = ctx.num_nodes();
  // Rotates the partition boundaries by up to ~half a node's share across
  // a 5-iteration cycle: work moves between nodes every iteration, like
  // the SPLASH version's nondeterministic tree traversals (§5.1).
  const double jitter = 0.12 * static_cast<double>(iter % 5);
  const double lo_target =
      total * ((static_cast<double>(ctx.node()) + jitter) /
               static_cast<double>(nodes));
  const double hi_target =
      total * ((static_cast<double>(ctx.node()) + 1.0 + jitter) /
               static_cast<double>(nodes));
  Range r{nbody_, nbody_};
  double acc = 0.0;
  for (std::size_t b = 0; b < nbody_; ++b) {
    if (acc >= lo_target && b < r.lo) r.lo = b;
    acc += c[b];
    if (acc >= hi_target) {
      r.hi = b + 1;
      break;
    }
  }
  if (ctx.node() == 0) r.lo = 0;
  if (ctx.node() == nodes - 1) r.hi = nbody_;
  if (r.lo > r.hi) r.lo = r.hi;
  return r;
}

void BarnesApp::compute_forces(dsm::NodeContext& ctx, const Range& mine) {
  auto pos = ctx.array<double>(pos_addr_, nbody_ * 3);
  auto mass = ctx.array<double>(mass_addr_, nbody_);
  auto meta = ctx.array<double>(tree_meta_addr_, 5);
  auto child_sh = ctx.array<std::int32_t>(child_addr_, max_cells_ * 8);
  auto cmass_sh = ctx.array<double>(cell_mass_addr_, max_cells_);
  auto ccom_sh = ctx.array<double>(cell_com_addr_, max_cells_ * 3);
  auto cmid_sh = ctx.array<double>(cell_mid_addr_, max_cells_ * 4);
  auto acc_sh = ctx.array<double>(acc_addr_, nbody_ * 3);
  auto cost_sh = ctx.array<double>(cost_addr_, nbody_);

  const auto cells = static_cast<std::size_t>(meta.get(0));
  auto p = pos.read_all();
  auto m = mass.read_all();
  auto child = child_sh.read_view(0, 8 * cells);
  auto cmass = cmass_sh.read_view(0, cells);
  auto ccom = ccom_sh.read_view(0, 3 * cells);
  auto cmid = cmid_sh.read_view(0, 4 * cells);
  if (mine.size() == 0) {
    ctx.compute_flops(0);
    return;
  }
  auto acc_w = acc_sh.write_view(3 * mine.lo, 3 * mine.hi);
  auto cost_w = cost_sh.write_view(mine.lo, mine.hi);

  std::uint64_t interactions = 0;
  std::vector<std::int32_t> stack;
  for (std::size_t b = mine.lo; b < mine.hi; ++b) {
    const double bx = p[3 * b];
    const double by = p[3 * b + 1];
    const double bz = p[3 * b + 2];
    double ax = 0.0;
    double ay = 0.0;
    double az = 0.0;
    std::uint64_t count = 0;
    auto interact = [&](double w, double x, double y, double z) {
      const double dx = x - bx;
      const double dy = y - by;
      const double dz = z - bz;
      const double r2 = dx * dx + dy * dy + dz * dz + kSoftening2;
      const double inv = 1.0 / std::sqrt(r2);
      const double f = w * inv * inv * inv;
      ax += f * dx;
      ay += f * dy;
      az += f * dz;
      ++count;
    };
    stack.push_back(1);  // root cell, 1-based
    while (!stack.empty()) {
      const std::int32_t slot = stack.back();
      stack.pop_back();
      if (slot < 0) {
        const auto ob = static_cast<std::size_t>(-slot) - 1;
        if (ob != b) interact(m[ob], p[3 * ob], p[3 * ob + 1], p[3 * ob + 2]);
        continue;
      }
      const auto c = static_cast<std::size_t>(slot - 1);
      const double dx = ccom[3 * c] - bx;
      const double dy = ccom[3 * c + 1] - by;
      const double dz = ccom[3 * c + 2] - bz;
      const double dist2 = dx * dx + dy * dy + dz * dz;
      const double size = 2.0 * cmid[4 * c + 3];
      if (size * size < kTheta * kTheta * dist2) {
        interact(cmass[c], ccom[3 * c], ccom[3 * c + 1], ccom[3 * c + 2]);
      } else {
        for (int k = 0; k < 8; ++k) {
          const std::int32_t ch = child[8 * c + static_cast<std::size_t>(k)];
          if (ch != kEmpty) stack.push_back(ch);
        }
      }
    }
    acc_w[3 * (b - mine.lo)] = ax;
    acc_w[3 * (b - mine.lo) + 1] = ay;
    acc_w[3 * (b - mine.lo) + 2] = az;
    cost_w[b - mine.lo] = static_cast<double>(count);
    interactions += count;
  }
  ctx.compute_flops(interactions * kFlopsPerInteraction);
}

void BarnesApp::advance(dsm::NodeContext& ctx, const Range& mine) {
  if (mine.size() == 0) return;
  auto pos = ctx.array<double>(pos_addr_, nbody_ * 3);
  auto vel = ctx.array<double>(vel_addr_, nbody_ * 3);
  auto acc = ctx.array<double>(acc_addr_, nbody_ * 3);
  auto a = acc.read_view(3 * mine.lo, 3 * mine.hi);
  auto v = vel.write_view(3 * mine.lo, 3 * mine.hi);
  auto x = pos.write_view(3 * mine.lo, 3 * mine.hi);
  for (std::size_t i = 0; i < a.size(); ++i) {
    v[i] += a[i] * kDt;
    x[i] += v[i] * kDt;
  }
  ctx.compute_flops(a.size() * 4);
}

void BarnesApp::step(dsm::NodeContext& ctx, int iter) {
  // The partition is computed during the maketree epoch: `cost` was last
  // written in the previous force epoch and nobody writes it now, so every
  // node reads committed values. (Reading it during the force epoch would
  // be a same-page anti-dependence on the nodes concurrently rewriting
  // their cost slices -- legal under homeless LRC but not under home-based
  // protocols, whose faults fetch the home's live frame.)
  const Range mine = my_bodies(ctx, iter);
  if (ctx.node() == 0) maketree(ctx);
  ctx.barrier();
  compute_forces(ctx, mine);
  ctx.barrier();
  advance(ctx, mine);
  ctx.barrier();
}

double BarnesApp::compute_checksum(dsm::NodeContext& ctx) {
  auto pos = ctx.array<double>(pos_addr_, nbody_ * 3);
  auto vel = ctx.array<double>(vel_addr_, nbody_ * 3);
  double sum = 0.0;
  auto p = pos.read_all();
  auto v = vel.read_all();
  for (std::size_t i = 0; i < p.size(); ++i) sum += p[i] + 0.1 * v[i];
  return sum;
}

}  // namespace updsm::apps
