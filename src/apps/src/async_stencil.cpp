#include "updsm/apps/async_stencil.hpp"

#include <algorithm>
#include <cmath>

#include "updsm/common/error.hpp"

namespace updsm::apps {

namespace {
/// Damping factor: the sweep is a max-norm contraction with this factor, so
/// every relaxation order -- including boundedly-stale chaotic relaxation
/// under gang=async -- converges to the unique fixed point.
constexpr double kKappa = 0.8;
/// Over-relaxation for the red-black variant; contraction factor is still
/// |1 - w| + w * kappa = 0.89 < 1.
constexpr double kOmega = 1.05;
constexpr std::uint64_t kFlopsPerPoint = 8;

/// Source term, a pure function of the indices (nothing to allocate).
[[nodiscard]] double source(std::size_t r, std::size_t c) {
  return 0.2 * (1.0 + static_cast<double>((r * 31 + c * 17) % 97) / 97.0);
}
}  // namespace

AsyncStencilApp::AsyncStencilApp(const AppParams& params, StencilKind kind)
    : Application(params),
      kind_(kind),
      rows_(scaled_dim(256, params.scale, 16) + 2),
      cols_(scaled_dim(256, params.scale, 16)),
      max_sweeps_(500) {}

void AsyncStencilApp::allocate(mem::SharedHeap& heap) {
  const std::uint64_t bytes = rows_ * cols_ * sizeof(double);
  grid_addr_ = heap.alloc_page_aligned(
      bytes, kind_ == StencilKind::Jacobi ? "jacobi-async.v" : "sor-async.v");
}

void AsyncStencilApp::init(dsm::NodeContext& ctx) {
  if (ctx.node() != 0) return;
  Grid2<double> v(ctx, grid_addr_, rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    auto row = v.row_w(r);
    const bool edge_row = r == 0 || r + 1 == rows_;
    for (std::size_t c = 0; c < cols_; ++c) {
      const bool edge = edge_row || c == 0 || c + 1 == cols_;
      row[c] = edge ? 1.0 + 0.1 * static_cast<double>((r + c) % 7) : 0.0;
    }
  }
}

double AsyncStencilApp::sweep(dsm::NodeContext& ctx) {
  Grid2<double> v(ctx, grid_addr_, rows_, cols_);
  const Range mine = block_range(rows_ - 2, ctx.num_nodes(), ctx.node());
  double residual = 0.0;
  std::uint64_t points = 0;
  const int colors = kind_ == StencilKind::SorRb ? 2 : 1;
  for (int color = 0; color < colors; ++color) {
    for (std::size_t r = 1 + mine.lo; r < 1 + mine.hi; ++r) {
      auto up = v.row(r - 1);
      auto down = v.row(r + 1);
      auto out = v.row_w(r);
      for (std::size_t c = 1; c + 1 < cols_; ++c) {
        if (colors == 2 && (r + c) % 2 != static_cast<std::size_t>(color)) {
          continue;
        }
        const double relaxed =
            source(r, c) +
            0.25 * kKappa * (up[c] + down[c] + out[c - 1] + out[c + 1]);
        const double nv = kind_ == StencilKind::SorRb
                              ? (1.0 - kOmega) * out[c] + kOmega * relaxed
                              : relaxed;
        residual = std::max(residual, std::abs(nv - out[c]));
        out[c] = nv;
        ++points;
      }
    }
  }
  ctx.compute_flops(points * kFlopsPerPoint);
  return residual;
}

void AsyncStencilApp::record_exit(std::uint64_t sweeps, double residual,
                                  bool converged) {
  std::lock_guard<std::mutex> lock(done_mu_);
  max_sweeps_completed_ = std::max(max_sweeps_completed_, sweeps);
  worst_residual_ = std::max(worst_residual_, residual);
  all_converged_ = all_converged_ && converged;
}

void AsyncStencilApp::run(dsm::NodeContext& ctx) {
  init(ctx);
  ctx.barrier();

  const double tol = ctx.convergence_tolerance();
  ctx.begin_measurement();
  ctx.barrier();  // window opens here, in both modes

  std::uint64_t sweeps = 0;
  bool converged = false;
  double last = 0.0;
  if (ctx.async_mode()) {
    // Barrier-free loop: publish/yield/refresh each sweep, leave once the
    // global detector converges (max_sweeps_ is a drain backstop).
    while (sweeps < static_cast<std::uint64_t>(max_sweeps_)) {
      last = sweep(ctx);
      ++sweeps;
      if (ctx.async_step(last)) {
        converged = true;
        break;
      }
    }
  } else {
    // Classic loop: every node sees the same reduced residual and leaves
    // at the same iteration.
    while (sweeps < static_cast<std::uint64_t>(max_sweeps_)) {
      ctx.iteration_begin();
      const double res = sweep(ctx);
      last = ctx.reduce_max(res);
      ++sweeps;
      if (last <= tol) {
        converged = true;
        break;
      }
    }
  }

  ctx.end_measurement();
  ctx.barrier();  // window closes here
  if (ctx.async_mode()) {
    // Every node has drained its loop at this barrier, so the detector's
    // verdict is final. A fast node can burn its sweep backstop and drain
    // unconverged while stragglers are still settling; if the detector
    // converges once their reports land, the run converged -- that node
    // merely did extra sweeps.
    converged = converged || ctx.async_converged();
  }
  record_exit(sweeps, last, converged);
  ctx.barrier();  // every node's exit is recorded
  if (ctx.node() == 0) set_checksum(compute_checksum(ctx));
  ctx.barrier();
}

void AsyncStencilApp::step(dsm::NodeContext&, int) {
  throw InternalError("async stencil apps use a custom run loop");
}

double AsyncStencilApp::compute_checksum(dsm::NodeContext&) {
  // In-place chaotic relaxation commits to no update order, so the final
  // byte pattern is schedule-dependent; the protocol-invariant result is
  // reaching the fixed point. (Determinism of a given configuration is
  // pinned separately via elapsed/counters/messages.)
  return all_converged_ ? 1.0 : 0.0;
}

}  // namespace updsm::apps
