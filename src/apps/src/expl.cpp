#include "updsm/apps/expl.hpp"

#include <cmath>

namespace updsm::apps {

namespace {
constexpr double kDt2 = 0.05;  // dt^2 with unit grid spacing
constexpr std::uint64_t kFlopsPerPoint = 9;
}  // namespace

ExplApp::ExplApp(const AppParams& params)
    : Application(params),
      rows_(scaled_dim(480, params.scale, 16) + 2),
      cols_(scaled_dim(480, params.scale, 16)) {}

void ExplApp::allocate(mem::SharedHeap& heap) {
  const std::uint64_t bytes = rows_ * cols_ * sizeof(double);
  u_addr_ = heap.alloc_page_aligned(bytes, "expl.u");
  v_addr_ = heap.alloc_page_aligned(bytes, "expl.v");
  coef_addr_ = heap.alloc_page_aligned(bytes, "expl.coef");
}

void ExplApp::init(dsm::NodeContext& ctx) {
  if (ctx.node() != 0) return;
  Grid2<double> u(ctx, u_addr_, rows_, cols_);
  Grid2<double> v(ctx, v_addr_, rows_, cols_);
  Grid2<double> coef(ctx, coef_addr_, rows_, cols_);
  const double cx = static_cast<double>(cols_) / 2.0;
  const double cy = static_cast<double>(rows_) / 2.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    auto u_row = u.row_w(r);
    auto v_row = v.row_w(r);
    auto c_row = coef.row_w(r);
    for (std::size_t c = 0; c < cols_; ++c) {
      // A Gaussian pulse at the centre, at rest; layered medium.
      const double dx = (static_cast<double>(c) - cx) / 24.0;
      const double dy = (static_cast<double>(r) - cy) / 24.0;
      const double pulse = std::exp(-(dx * dx + dy * dy));
      u_row[c] = pulse;
      v_row[c] = pulse;
      c_row[c] = 0.5 + 0.3 * static_cast<double>((r / 16) % 3);
    }
  }
}

void ExplApp::half_step(dsm::NodeContext& ctx, GlobalAddr src,
                        GlobalAddr dst) {
  Grid2<double> s(ctx, src, rows_, cols_);
  Grid2<double> d(ctx, dst, rows_, cols_);
  Grid2<double> coef(ctx, coef_addr_, rows_, cols_);
  const Range mine = block_range(rows_ - 2, ctx.num_nodes(), ctx.node());
  std::uint64_t points = 0;
  for (std::size_t r = 1 + mine.lo; r < 1 + mine.hi; ++r) {
    auto up = s.row(r - 1);
    auto mid = s.row(r);
    auto down = s.row(r + 1);
    auto cf = coef.row(r);
    auto out = d.row_w(r);
    for (std::size_t c = 1; c + 1 < cols_; ++c) {
      const double lap =
          up[c] + down[c] + mid[c - 1] + mid[c + 1] - 4.0 * mid[c];
      out[c] = 2.0 * mid[c] - out[c] + cf[c] * cf[c] * kDt2 * lap;
      ++points;
    }
  }
  ctx.compute_flops(points * kFlopsPerPoint);
}

void ExplApp::step(dsm::NodeContext& ctx, int /*iter*/) {
  half_step(ctx, u_addr_, v_addr_);  // v becomes the newest field
  ctx.barrier();
  half_step(ctx, v_addr_, u_addr_);  // u becomes the newest field
  ctx.barrier();
}

double ExplApp::compute_checksum(dsm::NodeContext& ctx) {
  Grid2<double> u(ctx, u_addr_, rows_, cols_);
  double sum = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (const double x : u.row(r)) sum += x;
  }
  return sum;
}

}  // namespace updsm::apps
