// Strongly-typed identifiers used across the whole library.
//
// Node ids, page ids and epoch ids are all small integers; mixing them up is
// the classic DSM implementation bug (the paper's protocols index three or
// four tables by different id spaces in the same function). StrongId makes
// such a mix-up a compile error at zero runtime cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace updsm {

/// A zero-cost strongly typed integer id. `Tag` is an empty struct that
/// distinguishes id spaces at compile time.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : v_(v) {}

  [[nodiscard]] constexpr Rep value() const { return v_; }
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(v_);
  }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.v_ != b.v_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator<=(StrongId a, StrongId b) {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>(StrongId a, StrongId b) {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator>=(StrongId a, StrongId b) {
    return a.v_ >= b.v_;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.v_;
  }

 private:
  Rep v_ = 0;
};

struct NodeTag {};
struct PageTag {};
struct EpochTag {};
struct DiffTag {};

/// Identifies one DSM process ("node" in the paper's SP-2 terminology).
using NodeId = StrongId<NodeTag>;
/// Identifies one shared virtual-memory page (index into the shared segment).
using PageId = StrongId<PageTag>;
/// Identifies one barrier epoch; epoch k is the interval between global
/// barrier k and barrier k+1. Epoch 0 precedes the first barrier.
using EpochId = StrongId<EpochTag, std::uint64_t>;
/// Globally unique diff identifier (creator node + sequence number packed
/// by the owner module; opaque here).
using DiffId = StrongId<DiffTag, std::uint64_t>;

/// Byte offset into the shared global address space.
using GlobalAddr = std::uint64_t;

}  // namespace updsm

namespace std {
template <typename Tag, typename Rep>
struct hash<updsm::StrongId<Tag, Rep>> {
  size_t operator()(updsm::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
