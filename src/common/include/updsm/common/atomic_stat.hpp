// Relaxed-atomic accounting cells for the parallel gang.
//
// Under GangMode::Parallel, several simulated nodes mutate shared
// accounting concurrently mid-phase: cluster-wide protocol counters, a
// responder's OS/virtual-clock charges (the sigio model lets a requester
// charge the service time to the responder's clock), and per-page copyset
// bitmaps. All of those mutations are *commutative* -- integer adds and
// bitmask or/and -- so wrapping the fields in relaxed atomics preserves
// bit-exact totals whatever order the nodes ran in, while making the races
// benign for ThreadSanitizer and the C++ memory model. No ordering is
// implied or needed: cross-thread visibility is established by the gang's
// barrier mutex, and mid-phase readers only ever need their own writes.
//
// Relaxed<T> is deliberately copyable (unlike std::atomic) so the structs
// that embed it keep value semantics: results are snapshotted into
// RunResult, frozen at end_measurement, and summed across nodes -- always
// from the controller thread, where no concurrent writer exists.
#pragma once

#include <atomic>

namespace updsm {

template <typename T>
class Relaxed {
 public:
  constexpr Relaxed(T v = T{}) noexcept : v_(v) {}
  Relaxed(const Relaxed& o) noexcept : v_(o.load()) {}
  Relaxed& operator=(const Relaxed& o) noexcept {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  Relaxed& operator=(T v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] T load() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  operator T() const noexcept { return load(); }

  Relaxed& operator+=(T d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  Relaxed& operator-=(T d) noexcept {
    v_.fetch_sub(d, std::memory_order_relaxed);
    return *this;
  }
  Relaxed& operator|=(T m) noexcept {
    v_.fetch_or(m, std::memory_order_relaxed);
    return *this;
  }
  Relaxed& operator&=(T m) noexcept {
    v_.fetch_and(m, std::memory_order_relaxed);
    return *this;
  }
  Relaxed& operator++() noexcept { return *this += T{1}; }
  T operator++(int) noexcept {
    return v_.fetch_add(T{1}, std::memory_order_relaxed);
  }

 private:
  std::atomic<T> v_;
};

}  // namespace updsm
