// Minimal leveled logging to stderr.
//
// Logging is off by default (level None) so that deterministic benchmark
// output is never interleaved with diagnostics; tests and debugging sessions
// raise the level explicitly or via the UPDSM_LOG environment variable
// (trace|debug|info|warn).
#pragma once

#include <sstream>
#include <string>

namespace updsm {

enum class LogLevel : int { None = 0, Warn = 1, Info = 2, Debug = 3, Trace = 4 };

/// Global log level. Initialised from the UPDSM_LOG environment variable.
[[nodiscard]] LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace updsm

#define UPDSM_LOG(level, stream_expr)                                 \
  do {                                                                 \
    if (static_cast<int>(::updsm::log_level()) >=                      \
        static_cast<int>(::updsm::LogLevel::level)) {                  \
      std::ostringstream updsm_log_os_;                                \
      updsm_log_os_ << stream_expr;                                    \
      ::updsm::detail::log_emit(::updsm::LogLevel::level,              \
                                updsm_log_os_.str());                  \
    }                                                                  \
  } while (false)
