// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (message-drop failure injection,
// barnes-hut work perturbation, synthetic datasets) flows through these
// generators so that every run is bit-reproducible from its seed.
#pragma once

#include <cstdint>

namespace updsm {

/// SplitMix64 -- used to expand a user seed into stream seeds and as a
/// cheap stateless hash for "location-dependent" cost jitter (see
/// sim::OsCostModel).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, re-expressed). Fast, high quality, tiny state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9d2c5680u) {
    // Seed the full state via splitmix64 as the authors recommend.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x = splitmix64(x);
      word = x;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Bound must be > 0.
  std::uint64_t bounded(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free variant is overkill here;
    // modulo bias is irrelevant for simulation jitter, but use the
    // high bits which are the strongest.
    return ((*this)() >> 11) % bound;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace updsm
