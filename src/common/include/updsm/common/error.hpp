// Error types and always-on checking macros.
//
// The simulator is a correctness tool first: every internal invariant is
// checked in all build types. Violations throw typed exceptions so that
// tests can assert on failure modes (e.g. a bar-m consistency divergence)
// without aborting the whole test binary.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace updsm {

/// Base class for every error raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An internal invariant of the simulator or a protocol was violated.
/// Indicates a bug in this library, never in user code.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// The application used the DSM API incorrectly (mismatched barriers,
/// out-of-bounds shared access, attaching past the end of the heap, ...).
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// A coherence protocol detected a condition it cannot handle, e.g. bar-s
/// observing an unpredicted write while in overdrive with revert disabled
/// (the paper's prototype "complains loudly and exits" -- we throw this).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  if (kind[0] == 'U') throw UsageError(os.str());
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace updsm

/// Always-on internal invariant check. Throws InternalError on failure.
#define UPDSM_CHECK(expr)                                                     \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::updsm::detail::throw_check_failure("CHECK", #expr, __FILE__,          \
                                           __LINE__, "");                     \
    }                                                                         \
  } while (false)

/// Internal invariant check with a streamed message:
///   UPDSM_CHECK_MSG(a == b, "a=" << a << " b=" << b);
#define UPDSM_CHECK_MSG(expr, stream_expr)                                    \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream updsm_check_os_;                                     \
      updsm_check_os_ << stream_expr;                                         \
      ::updsm::detail::throw_check_failure("CHECK", #expr, __FILE__,          \
                                           __LINE__, updsm_check_os_.str()); \
    }                                                                         \
  } while (false)

/// Check of a precondition on *user* input. Throws UsageError on failure.
#define UPDSM_REQUIRE(expr, stream_expr)                                      \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream updsm_check_os_;                                     \
      updsm_check_os_ << stream_expr;                                         \
      ::updsm::detail::throw_check_failure("USAGE-CHECK", #expr, __FILE__,    \
                                           __LINE__, updsm_check_os_.str()); \
    }                                                                         \
  } while (false)
