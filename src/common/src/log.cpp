#include "updsm/common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace updsm {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("UPDSM_LOG");
  if (env == nullptr) return LogLevel::None;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "trace") == 0) return LogLevel::Trace;
  return LogLevel::None;
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::None:
      break;
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  // One mutex-protected write: node threads in the gang scheduler never run
  // concurrently, but harness code may log from the controller thread.
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << "[updsm " << level_name(level) << "] " << msg << '\n';
}

}  // namespace detail
}  // namespace updsm
