// Per-node virtual clocks with the paper's execution-time breakdown.
//
// Figure 3 of the paper splits bar-u runtime into four components:
//   sigio -- handling incoming requests (interrupt-driven in CVM),
//   wait  -- waiting for remote requests / barrier releases,
//   os    -- operating-system traps (send, recv, mprotect, segv dispatch),
//   app   -- useful application computation.
// We additionally track `dsm` (user-level protocol work: diff creation and
// application, twin copies) which CVM's breakdown folds into `app`; the
// Figure-3 reporter performs the same folding but the raw component is
// preserved for our ablation benches.
//
// Sigio model: when node A faults mid-epoch and node B services the request,
// B is charged Sigio time on its own clock regardless of where B currently
// is in the epoch. This mirrors the real system, where the interrupt steals
// cycles from B's computation at an arbitrary point; because all studied
// protocols are barrier-synchronous, only B's *barrier arrival time* is
// observable, and that is exactly what the accumulated charge shifts.
#pragma once

#include <array>
#include <cstddef>

#include "updsm/common/atomic_stat.hpp"
#include "updsm/common/error.hpp"
#include "updsm/sim/time.hpp"

namespace updsm::sim {

enum class TimeCat : int { App = 0, Dsm = 1, Os = 2, Wait = 3, Sigio = 4 };
inline constexpr std::size_t kTimeCatCount = 5;

[[nodiscard]] constexpr const char* to_string(TimeCat cat) {
  switch (cat) {
    case TimeCat::App:
      return "app";
    case TimeCat::Dsm:
      return "dsm";
    case TimeCat::Os:
      return "os";
    case TimeCat::Wait:
      return "wait";
    case TimeCat::Sigio:
      return "sigio";
  }
  return "?";
}

/// Accumulated virtual time of one node, split by category.
///
/// Cells are relaxed atomics because the sigio model (above) lets a
/// *remote* node's thread charge service time to this clock mid-phase under
/// the parallel gang; time adds commute, so totals are schedule-independent.
/// advance_to() and reads are barrier/self-context operations.
class VirtualClock {
 public:
  /// Advances the clock by `dt >= 0`, attributing it to `cat`. Safe to call
  /// from any thread (commutative relaxed adds).
  void advance(TimeCat cat, SimTime dt) {
    UPDSM_CHECK_MSG(dt >= 0, "negative time advance " << dt);
    now_ += dt;
    by_cat_[static_cast<std::size_t>(cat)] += dt;
  }

  /// Advances the clock to absolute time `t` if `t` is in the future,
  /// attributing the gap to `cat` (used for barrier wait time). No-op if
  /// the clock is already past `t`. Not atomic: callers run it only where
  /// no concurrent advance exists (the owning node's thread or a barrier).
  void advance_to(TimeCat cat, SimTime t) {
    const SimTime now = now_;
    if (t > now) advance(cat, t - now);
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] SimTime in(TimeCat cat) const {
    return by_cat_[static_cast<std::size_t>(cat)];
  }

  /// Resets the breakdown but *keeps* absolute time: used at the start of
  /// the steady-state measurement window (paper, section 3.1: timing starts
  /// only after home assignment / copyset convergence).
  void reset_breakdown() { by_cat_ = {}; }

  [[nodiscard]] std::array<SimTime, kTimeCatCount> breakdown() const {
    std::array<SimTime, kTimeCatCount> out{};
    for (std::size_t i = 0; i < kTimeCatCount; ++i) out[i] = by_cat_[i];
    return out;
  }

 private:
  Relaxed<SimTime> now_ = 0;
  std::array<Relaxed<SimTime>, kTimeCatCount> by_cat_{};
};

}  // namespace updsm::sim
