// Thread-local identity of the simulated node running on this OS thread.
//
// The gang scheduler stamps each worker thread with its node id before the
// node function runs (in both baton and parallel modes); every other thread
// -- the controller that executes barrier callbacks, test main threads,
// harness grid workers -- reports kControllerContext. Shared simulator
// facilities (Network stat shards, TraceLog buffers) key their per-node
// storage off this value so call sites need no explicit node argument and
// cannot pick the wrong shard.
#pragma once

namespace updsm::sim {

/// Reported by current_exec_node() on any thread that is not a gang node
/// worker (controller, tests, harness workers).
inline constexpr int kControllerContext = -1;

/// The simulated node whose code is executing on the calling OS thread, or
/// kControllerContext outside node functions.
[[nodiscard]] int current_exec_node();

/// The gang worker thread this OS thread is (0..workers-1), or
/// kControllerContext on any non-worker thread. Unlike current_exec_node,
/// this is a property of the thread itself, not of the fiber it is
/// running; the gang's baton hand-off uses it to skip the OS wake when the
/// next node already lives on the running worker.
[[nodiscard]] int current_exec_worker();

namespace detail {
/// Set by Gang around each node fiber resume; pass kControllerContext to
/// clear.
void set_exec_node(int node);
/// Set once by each Gang worker thread at startup.
void set_exec_worker(int worker);
}  // namespace detail

}  // namespace updsm::sim
