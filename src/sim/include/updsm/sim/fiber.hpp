// Stackful execution contexts for multiplexing simulated nodes over a
// bounded worker pool.
//
// A simulated node's function blocks *mid-stack* inside Gang::barrier_wait
// with arbitrarily deep application frames below it, so N nodes cannot be
// multiplexed over M < N OS threads by nested function calls -- the worker
// could never suspend one node to run the next. Each node therefore runs on
// its own Fiber: a ucontext-based coroutine whose resume()/yield() switch
// whole stacks in user space. A worker thread resumes each of its nodes in
// turn; barrier_wait yields back to the worker's scheduler loop.
//
// Stacks are mmap'd with a PROT_NONE guard page at the low end, so physical
// pages are allocated lazily (1024 armed fibers cost address space, not
// RSS) and overflow faults instead of silently corrupting a neighbour.
//
// Under ThreadSanitizer every stack switch is announced through the TSan
// fiber API so the runtime tracks each fiber as its own synchronization
// context; without it, TSan would see one OS thread's history jump between
// unrelated stacks and report phantom races. ASan fake-stack annotations
// are deliberately not wired up -- CI sanitizes with TSan only.
#pragma once

#include <cstddef>
#include <functional>

namespace updsm::sim {

/// One suspendable execution context with its own stack. Not thread-safe:
/// resume() must not race with itself, and yield() may only be called from
/// inside the running fiber. A fiber may be resumed from different OS
/// threads across its lifetime (each resume captures the host context
/// afresh), though the gang keeps a fixed owner per run for determinism.
class Fiber {
 public:
  static constexpr std::size_t kDefaultStackBytes = 512 * 1024;

  explicit Fiber(std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Prepares `fn` to run from the top of this fiber's stack on the next
  /// resume(). The previous function must have finished. `fn` must not
  /// throw (the gang wraps node functions in a catch-all).
  void arm(std::function<void()> fn);

  /// Switches into the fiber until it yields or finishes. Returns true
  /// when `fn` returned (the fiber must then be re-arm()ed before any
  /// further resume).
  [[nodiscard]] bool resume();

  /// Suspends the running fiber, returning control to its resumer. Must be
  /// called from inside the fiber.
  void yield();

  /// Armed and not yet finished (suspended or never started).
  [[nodiscard]] bool live() const { return live_; }

 private:
  struct Impl;  // ucontext pair + TSan fiber handles (keeps <ucontext.h>
                // and the sanitizer header out of this header)

  static void trampoline(unsigned self_hi, unsigned self_lo);
  void run_trampoline();
  void switch_out();

  Impl* impl_;
  std::byte* map_base_ = nullptr;  // mmap base; guard page at the low end
  std::size_t map_bytes_ = 0;
  std::size_t stack_bytes_;
  std::function<void()> fn_;
  bool live_ = false;
};

}  // namespace updsm::sim
