// Simulated interconnect: cost computation + message/data accounting.
//
// The network never moves bytes itself (protocol state lives in one address
// space); it is the single point through which every cross-node transfer
// must be *recorded*, so that Table 1's "Messages" and "Data" columns are a
// mechanical census of protocol behaviour. Costs follow NetworkCosts.
//
// Message conventions (matching the paper's counting, §3.3/Table 1):
//  * a miss costs a request/response *pair*; the table's "Messages" column
//    counts requests and flushes ("there are an equal number of replies"),
//    so replies are recorded with `counts_in_table = false`;
//  * a flush/update is a single unreliable message (no ack, droppable);
//  * barrier arrivals and releases are synchronization messages and count.
//
// Concurrency (parallel gang): accounting is sharded per executing thread.
// record() writes to the shard of sim::current_exec_node() (one private
// shard per node, plus one for the controller), so concurrent mid-phase
// node code never touches a shared counter. stats() sums the shards into a
// cached aggregate; because every field is a sum, the merged result is
// identical whatever order the nodes ran in. stats()/reset_stats() must be
// called only while no node is mid-phase (controller context: barriers,
// before/after runs) -- exactly where all existing callers sit.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "updsm/common/rng.hpp"
#include "updsm/common/types.hpp"
#include "updsm/sim/cost_model.hpp"
#include "updsm/sim/time.hpp"

namespace updsm::sim {

enum class MsgKind : int {
  DataRequest = 0,   // diff request (lmw) or page request (bar)
  DataReply = 1,     // the corresponding reply
  Flush = 2,         // unreliable update push / diff-to-home flush
  SyncArrive = 3,    // barrier arrival at the master
  SyncRelease = 4,   // barrier release from the master
  Control = 5,       // home-migration directives etc.
  FlushBatch = 6,    // aggregated per-destination flush (many page records)
  FlushRelay = 7,    // batches forwarded along the dissemination tree
};
inline constexpr std::size_t kMsgKindCount = 8;

[[nodiscard]] constexpr const char* to_string(MsgKind k) {
  switch (k) {
    case MsgKind::DataRequest:
      return "data-request";
    case MsgKind::DataReply:
      return "data-reply";
    case MsgKind::Flush:
      return "flush";
    case MsgKind::SyncArrive:
      return "sync-arrive";
    case MsgKind::SyncRelease:
      return "sync-release";
    case MsgKind::Control:
      return "control";
    case MsgKind::FlushBatch:
      return "flushbatch";
    case MsgKind::FlushRelay:
      return "flush-relay";
  }
  return "?";
}

struct MsgCounter {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;    // payload + header
  std::uint64_t dropped = 0;  // sent (counted above) but never delivered
  std::uint64_t records = 0;  // page records carried (batched kinds only)
};

/// Aggregate traffic statistics for a run.
struct NetworkStats {
  std::array<MsgCounter, kMsgKindCount> by_kind{};
  std::uint64_t injected_dups = 0;    // fault-injected duplicate deliveries
  std::uint64_t injected_delays = 0;  // fault-injected extra-delay events

  [[nodiscard]] const MsgCounter& of(MsgKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }

  /// Table-1 "Messages": requests + flushes + sync messages (replies are
  /// implied by requests and not double-counted, per the paper's caption).
  /// An aggregated FlushBatch is one message however many records it packs.
  [[nodiscard]] std::uint64_t table_messages() const {
    return of(MsgKind::DataRequest).count + of(MsgKind::Flush).count +
           of(MsgKind::FlushBatch).count + of(MsgKind::FlushRelay).count +
           of(MsgKind::SyncArrive).count + of(MsgKind::SyncRelease).count +
           of(MsgKind::Control).count;
  }

  /// Flush-class messages: per-page flushes plus aggregated batches plus
  /// tree-relayed batch hops. With aggregation on this is ~one per
  /// (sender, destination) pair per barrier; with relaying it drops to
  /// ~one per dissemination-tree edge.
  [[nodiscard]] std::uint64_t flush_class_messages() const {
    return of(MsgKind::Flush).count + of(MsgKind::FlushBatch).count +
           of(MsgKind::FlushRelay).count;
  }

  /// Flush-class page records: each per-page flush carries one, a batch
  /// carries `records`. Relayed batches note their records once, under
  /// FlushRelay, however many tree hops the bytes traverse. Fault-free this
  /// is invariant under aggregation and relaying.
  [[nodiscard]] std::uint64_t flush_class_records() const {
    return of(MsgKind::Flush).count + of(MsgKind::FlushBatch).records +
           of(MsgKind::FlushRelay).records;
  }

  /// Table-1 "Data (kbytes)": every byte that crossed the wire.
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& c : by_kind) sum += c.bytes;
    return sum;
  }

  [[nodiscard]] std::uint64_t total_one_way_messages() const {
    std::uint64_t sum = 0;
    for (const auto& c : by_kind) sum += c.count;
    return sum;
  }

  /// Every message lost in transit, whatever its kind (legacy flush drops
  /// and fault-plan drops alike).
  [[nodiscard]] std::uint64_t total_dropped() const {
    std::uint64_t sum = 0;
    for (const auto& c : by_kind) sum += c.dropped;
    return sum;
  }
};

/// The cluster-wide interconnect.
class Network {
 public:
  /// `num_nodes` sizes the per-thread stat shards; accounting from node i
  /// lands in shard i+1, everything else (controller, tests) in shard 0.
  Network(const NetworkCosts& costs, std::uint64_t drop_seed,
          int num_nodes = 1);

  /// Records one message of `kind` with `payload_bytes` of payload and
  /// returns its one-way wire time. Self-sends (from == to) are free and
  /// unrecorded: a node never talks to itself over the switch. Thread-safe
  /// under the parallel gang: writes only the calling thread's shard.
  SimTime record(MsgKind kind, NodeId from, NodeId to,
                 std::uint64_t payload_bytes);

  /// Decides the fate of one unreliable flush to `to`. Deterministic given
  /// the seed AND independent of node scheduling order: each destination
  /// owns a private RNG stream seeded
  ///   splitmix64(drop_seed ^ splitmix64(dest + 1)),
  /// so the k-th flush arriving at a destination gets the k-th draw of that
  /// destination's stream no matter which nodes sent the other flushes or
  /// in which order other destinations were hit. (All flushes today are
  /// issued from the barrier's node-ordered loops, so the per-destination
  /// arrival sequence itself is deterministic.) `kind` selects where a loss
  /// is accounted: per-page flushes drop under Flush, aggregated batches
  /// under FlushBatch; both consume the same per-destination stream, so the
  /// k-th flush-class message at a destination draws the k-th value
  /// whichever path produced it.
  [[nodiscard]] bool flush_delivered(NodeId to = NodeId{0},
                                     MsgKind kind = MsgKind::Flush);

  /// Accounts `records` page records carried by a message of `kind` (called
  /// once per batch, not per transmission attempt, so retries never inflate
  /// the record census). Thread-safe like record().
  void note_records(MsgKind kind, std::uint64_t records);

  /// Marks the last recorded message of `kind` as lost in transit (it was
  /// sent, so record() already counted it). Thread-safe like record().
  void record_drop(MsgKind kind);
  /// Accounts one fault-injected duplicate delivery. The duplicate copy
  /// itself should also be record()ed -- it crossed the wire.
  void note_dup();
  /// Accounts one fault-injected extra-delay event.
  void note_delay();

  /// Sums the per-thread shards. Controller context only (no node mid-phase).
  [[nodiscard]] const NetworkStats& stats() const;
  [[nodiscard]] const NetworkCosts& costs() const { return costs_; }

  /// Flush messages lost in transit (== stats().of(Flush).dropped).
  /// Controller context only.
  std::uint64_t dropped_flushes() const;

  /// Clears statistics at the start of the measurement window.
  /// Controller context only.
  void reset_stats();

 private:
  /// One cache line per shard so concurrent nodes never false-share.
  struct alignas(64) Shard {
    NetworkStats stats;
  };

  [[nodiscard]] Shard& my_shard();

  NetworkCosts costs_;
  std::vector<Shard> shards_;          // [0]=controller, [i+1]=node i
  std::vector<Xoshiro256> drop_rngs_;  // one stream per destination
  std::uint64_t drop_seed_;
  mutable NetworkStats merged_;  // scratch for stats(); controller-only
};

}  // namespace updsm::sim
