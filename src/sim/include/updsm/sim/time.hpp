// Simulated time.
//
// All protocol and OS costs are expressed in virtual nanoseconds; the paper
// quotes microseconds (160 us RPC, 939 us remote fault, 12 us mprotect), so
// helpers convert. Nothing in the simulator ever reads wall-clock time.
#pragma once

#include <cstdint>

namespace updsm::sim {

/// Virtual time in nanoseconds. 64 bits hold ~292 years of simulated time.
using SimTime = std::int64_t;

[[nodiscard]] constexpr SimTime nsec(std::int64_t n) { return n; }
[[nodiscard]] constexpr SimTime usec(double us) {
  return static_cast<SimTime>(us * 1e3);
}
[[nodiscard]] constexpr SimTime msec(double ms) {
  return static_cast<SimTime>(ms * 1e6);
}

[[nodiscard]] constexpr double to_usec(SimTime t) {
  return static_cast<double>(t) / 1e3;
}
[[nodiscard]] constexpr double to_msec(SimTime t) {
  return static_cast<double>(t) / 1e6;
}
[[nodiscard]] constexpr double to_sec(SimTime t) {
  return static_cast<double>(t) / 1e9;
}

}  // namespace updsm::sim
