// Per-node operating-system model.
//
// The paper's central section-4 observation is that the OS, not the network,
// limits DSM performance once updates eliminate remote misses: mprotect and
// segv traffic from write trapping stresses the AIX VM layer, whose
// primitives are "location-dependent, occasionally increasing the cost of
// page protection changes by an order of magnitude". OsModel charges those
// costs and counts every event so that bar-s/bar-m's savings are mechanical
// consequences of the event counts, not hand-tuned outcomes.
#pragma once

#include <cstdint>

#include "updsm/common/atomic_stat.hpp"
#include "updsm/common/types.hpp"
#include "updsm/sim/cost_model.hpp"
#include "updsm/sim/time.hpp"

namespace updsm::sim {

/// Event counters for one node's OS interactions. Relaxed-atomic cells:
/// under the parallel gang a remote requester's thread counts the send/recv
/// pair of the service it charged to this node (the sigio model), racing
/// with the node's own counting; the adds commute.
struct OsCounters {
  Relaxed<std::uint64_t> segvs = 0;
  Relaxed<std::uint64_t> mprotects = 0;
  Relaxed<std::uint64_t> sends = 0;
  Relaxed<std::uint64_t> recvs = 0;

  OsCounters& operator+=(const OsCounters& o) {
    segvs += o.segvs;
    mprotects += o.mprotects;
    sends += o.sends;
    recvs += o.recvs;
    return *this;
  }
};

/// Computes OS trap costs for one node. Stateless apart from counters;
/// the "location-dependent" mprotect penalty is a pure function of the page
/// id so that identical runs charge identical costs.
class OsModel {
 public:
  OsModel(const OsCosts& costs, std::uint32_t shared_pages);

  /// True when the shared segment is large enough to stress the VM layer.
  [[nodiscard]] bool stressed() const { return stressed_; }

  /// Whether `page` falls in the deterministic slow set.
  [[nodiscard]] bool slow_page(PageId page) const;

  /// Cost of one mprotect call covering `page` (counts the call).
  [[nodiscard]] SimTime mprotect_cost(PageId page);

  /// Cost of dispatching a segv to the user-level handler (counts it).
  [[nodiscard]] SimTime segv_cost();

  /// Extra kernel bookkeeping on the remote-fault path (no counter; it is
  /// part of the fault whose segv was already counted).
  [[nodiscard]] SimTime fault_service_extra() const {
    return costs_.fault_service_extra;
  }

  void count_send() { ++counters_.sends; }
  void count_recv() { ++counters_.recvs; }

  [[nodiscard]] const OsCounters& counters() const { return counters_; }
  [[nodiscard]] const OsCosts& costs() const { return costs_; }

 private:
  OsCosts costs_;
  bool stressed_;
  OsCounters counters_;
};

}  // namespace updsm::sim
