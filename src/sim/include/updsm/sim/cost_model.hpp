// Cost model calibrated against the paper's SP-2 micro-benchmarks (§3.2):
//
//   simple RPC round trip            160 us
//   remote page fault (8 KB page)    939 us
//   segv dispatch to user handler    128 us   (AIX best case)
//   mprotect                          12 us   base; "location-dependent,
//                                     occasionally an order of magnitude"
//   sustained link bandwidth        ~ 40 MB/s (0.025 us per byte)
//
// Every number is a plain struct field so ablation benches can perturb one
// knob at a time (e.g. bench/ablation_os_stress zeroes the stress regime).
//
// A second calibration, `rdma_defaults()`, models a modern kernel-bypass
// interconnect (user-level DSM over RDMA-class NICs): ~1 us one-sided
// messages, ~10 GB/s streaming, near-zero send/recv traps. The OS and DSM
// knobs deliberately stay at the SP-2 values -- the profile swaps the
// *interconnect*, so the 1998 conclusions that depend on the per-message /
// per-byte ratio can be re-examined in isolation. Profiles are named
// (`--net-profile=sp2|rdma` on every CLI) and individual fields can be
// perturbed with `--cost key=value` overrides (see cost_key_list()).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "updsm/sim/time.hpp"

namespace updsm::sim {

/// Wire and messaging-stack costs (UDP/IP over the high-performance switch).
struct NetworkCosts {
  /// Fixed per-message latency: switch traversal + protocol stack, excluding
  /// the send/recv system-call traps which are charged separately as OS time.
  SimTime per_message = usec(45);
  /// Payload serialization cost: 0.025 us/B == 40 MB/s sustained.
  double per_byte_ns = 25.0;
  /// Cost of the `send` system-call trap (charged to the sender as OS time).
  SimTime send_trap = usec(15);
  /// Cost of the `recv` system-call trap / sigio dispatch at the receiver.
  SimTime recv_trap = usec(15);
  /// Per-message header bytes, counted in the "data" statistics.
  std::uint32_t header_bytes = 32;
  /// Fraction of unreliable flush messages that are silently dropped.
  /// Lost flushes must never affect correctness (paper §2.1.2), only
  /// performance; the failure-injection tests raise this.
  double flush_drop_rate = 0.0;

  /// One-way wire time for a payload of `bytes` (excluding traps).
  [[nodiscard]] SimTime wire_time(std::uint64_t bytes) const {
    return per_message +
           static_cast<SimTime>(per_byte_ns *
                                static_cast<double>(bytes + header_bytes));
  }
};

/// Operating-system virtual-memory and trap costs.
struct OsCosts {
  /// Delivering a segmentation violation to the user-level handler.
  SimTime segv = usec(128);
  /// Uncontended mprotect system call.
  SimTime mprotect_base = usec(12);
  /// The paper observes that VM-primitive costs are location-dependent and
  /// occasionally an order of magnitude higher. We model this as a fixed,
  /// deterministic set of "slow" pages (hash-selected) whose protection
  /// changes cost `mprotect_base * stress_multiplier`, active only once the
  /// shared segment exceeds `stress_threshold_pages` (small address spaces
  /// do not stress the AIX VM layer).
  double stress_multiplier = 12.0;
  double slow_page_fraction = 0.40;
  std::uint32_t stress_threshold_pages = 96;
  /// Hash salt for slow-page selection; fixed => location-dependent, i.e.
  /// the same page is always slow, as observed on the SP-2.
  std::uint64_t stress_salt = 0x5eedcafef00dULL;
  /// Kernel-side VM bookkeeping on the remote-page-fault path beyond the
  /// segv dispatch itself (AIX page-in accounting); calibrated so that the
  /// composite remote-fault cost lands near the measured 939 us.
  SimTime fault_service_extra = usec(400);
};

/// User-level protocol (DSM runtime) costs, charged as TimeCat::Dsm.
struct DsmCosts {
  /// Word-at-a-time page comparison when creating a diff.
  double diff_create_per_byte_ns = 6.0;
  /// Applying a diff's runs to a page.
  double diff_apply_per_byte_ns = 4.0;
  /// memcpy for twin creation / whole-page installs.
  double copy_per_byte_ns = 3.0;
  /// Fixed cost per diff created (allocation, bookkeeping).
  SimTime diff_fixed = usec(4);
  /// Fixed cost of any incoming-request handler (lookup + demux).
  SimTime handler_fixed = usec(10);
  /// lmw-u stores out-of-order updates in a lookup structure and validates
  /// lazily at the next access; the paper attributes lmw-u's barnes/swm
  /// regression to exactly this machinery (§3.3). Charged per stored update.
  SimTime update_store_fixed = usec(12);
  double update_store_per_byte_ns = 6.0;
  /// Barrier master bookkeeping per arriving node.
  SimTime barrier_master_per_node = usec(8);
  /// Per-page cost of the adaptive protocol's barrier-time policy
  /// evaluation (window fold + three modeled delivery costs). Charged to
  /// the barrier master for every page re-evaluated, so the predictor
  /// bookkeeping is priced, not free; calibrated against
  /// bench/micro_primitives BM_AdaptivePolicyEval.
  double policy_eval_per_page_ns = 200.0;
};

/// Application computation costs: a 66 MHz POWER2 sustains very roughly one
/// useful flop per ~40 ns on stencil codes once memory traffic is included;
/// applications charge their own flop counts through this knob.
struct AppCosts {
  double flop_ns = 40.0;
};

/// Aggregate model handed to the cluster. Defaults reproduce §3.2.
struct CostModel {
  NetworkCosts net;
  OsCosts os;
  DsmCosts dsm;
  AppCosts app;

  [[nodiscard]] static CostModel sp2_defaults() { return CostModel{}; }

  /// Kernel-bypass interconnect: ~1.2 us one-sided put/get, 10 GB/s
  /// streaming (0.1 ns/B), ~150 ns doorbell/poll instead of syscall traps.
  /// OS (VM) and DSM (protocol software) costs keep their SP-2 values.
  [[nodiscard]] static CostModel rdma_defaults();

  /// Named profile lookup ("sp2" | "rdma"); throws UsageError otherwise.
  [[nodiscard]] static CostModel from_profile(std::string_view profile);
  [[nodiscard]] static bool known_profile(std::string_view profile);

  /// Applies one "--cost key=value" override, e.g. "net.per_message_us=45".
  /// Time-valued keys end in _us (microseconds), rate-valued keys in _ns
  /// (nanoseconds per byte / per unit). Throws UsageError listing the valid
  /// keys on an unknown key or a malformed spec.
  void apply_override(std::string_view spec);

  /// All valid override keys, for --help text and error messages.
  [[nodiscard]] static const std::vector<std::string>& cost_key_list();

  /// The paper's "simple RPC" microbenchmark: empty request, empty reply.
  /// send_trap + wire + recv_trap + handler + send_trap + wire + recv_trap.
  [[nodiscard]] SimTime rpc_roundtrip() const {
    return net.send_trap + net.wire_time(0) + net.recv_trap +
           dsm.handler_fixed + net.send_trap + net.wire_time(0) +
           net.recv_trap;
  }

  /// Composite remote-page-fault cost for a page of `page_bytes`: the §3.2
  /// "remote page fault" microbenchmark, mirroring the simulator's actual
  /// charging path (segv dispatch, 16-byte request / page+32 reply
  /// roundtrip with a serve-side page copy, install copy, re-protect, and
  /// the kernel page-in bookkeeping). ~939 us for 8 KB under sp2 defaults.
  [[nodiscard]] SimTime remote_page_fault(std::uint32_t page_bytes) const {
    const SimTime serve_copy = static_cast<SimTime>(
        dsm.copy_per_byte_ns * static_cast<double>(page_bytes));
    const SimTime service = net.recv_trap + dsm.handler_fixed + serve_copy +
                            net.send_trap;
    return os.segv + net.send_trap + net.wire_time(16) + service +
           net.wire_time(page_bytes + 32) + net.recv_trap + serve_copy +
           os.fault_service_extra + os.mprotect_base;
  }
};

/// Applies a list of "key=value" specs in order (the repeatable --cost flag).
void apply_cost_overrides(CostModel& model,
                          const std::vector<std::string>& overrides);

}  // namespace updsm::sim
