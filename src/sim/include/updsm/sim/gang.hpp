// Deterministic gang scheduler for simulated DSM nodes.
//
// Each simulated node runs its application function on a dedicated worker
// thread from a pool that persists for the Gang's lifetime (created once in
// the constructor, reused across run() calls). Two scheduling modes:
//
//  - GangMode::Baton (constructor default): a baton protocol admits exactly
//    ONE runnable thread at a time and hands control over only at barriers
//    (or node exit). Rounds are strictly ordered 0..n-1, so every run is
//    bit-deterministic and free of data races by construction -- no atomics
//    or locks are needed anywhere in protocol or application code.
//
//  - GangMode::Parallel: between barriers ALL ready nodes run concurrently;
//    the controller still runs barrier callbacks alone, with every node
//    parked. Determinism is preserved by the DSM layer's discipline, not by
//    scheduling: mid-phase code may only (a) read state frozen at the
//    previous barrier, (b) perform commutative accounting (relaxed atomic
//    adds), or (c) append to its own per-node logs, which the barrier
//    callback merges in node order. See docs/SIMULATION.md ("Execution
//    model") for the full argument.
//
// Both modes are sound for the protocols under study because they are all
// barrier-synchronous (paper §2.2.1 restricts to barrier-only codes): any
// mid-epoch remote request is serviced against protocol state that was
// *published at the previous barrier* and is therefore frozen while other
// nodes execute their part of the same epoch. Publishing new state happens
// exclusively inside the barrier callback, which runs on the controller
// thread while every node is parked.
//
// Lifecycle:
//   Gang gang(8, GangMode::Parallel);
//   gang.run(node_fn /* void(int node) */,
//            barrier_cb /* void(uint64_t barrier_index) */);
// node_fn calls gang.barrier_wait(node) at each application barrier.
// All nodes must execute identical barrier sequences; a node exiting while
// another still synchronizes is reported as UsageError. Worker threads are
// stamped with their node id (sim::current_exec_node()) in both modes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "updsm/common/error.hpp"

namespace updsm::sim {

enum class GangMode {
  Baton,     ///< one runnable node at a time, strict 0..n-1 round order
  Parallel,  ///< all ready nodes run concurrently between barriers
};

[[nodiscard]] const char* to_string(GangMode mode);

class Gang {
 public:
  using NodeFn = std::function<void(int)>;
  using BarrierFn = std::function<void(std::uint64_t)>;

  /// Spawns the persistent worker pool (one thread per node). Baton is the
  /// default so that plain `Gang g(n)` keeps the historical serialized
  /// semantics; callers opt into concurrency explicitly.
  explicit Gang(int num_nodes, GangMode mode = GangMode::Baton);
  ~Gang();

  Gang(const Gang&) = delete;
  Gang& operator=(const Gang&) = delete;

  /// Runs `node_fn(i)` for every node to completion, invoking
  /// `barrier_cb(k)` on the controller thread (the caller) at the k-th
  /// global barrier. Rethrows the first exception raised by any node or by
  /// the callback. May be called repeatedly; the pool is reused.
  void run(const NodeFn& node_fn, const BarrierFn& barrier_cb);

  /// Called from inside node_fn: parks this node at the global barrier and
  /// returns once the barrier callback has completed and this node may run
  /// again (its baton turn, or the next phase in parallel mode).
  void barrier_wait(int node);

  [[nodiscard]] int size() const { return static_cast<int>(state_.size()); }

  [[nodiscard]] GangMode mode() const { return mode_; }

  /// Number of barriers completed so far (valid during and after run();
  /// accumulates across run() calls).
  [[nodiscard]] std::uint64_t barriers_completed() const { return barriers_; }

 private:
  enum class NodeState { Ready, AtBarrier, Done };
  static constexpr int kController = -1;

  /// Thrown into parked node threads when the gang shuts down on error.
  struct Shutdown {};

  void worker_main(int node);

  // All private methods require mu_ held.
  void advance_baton_locked(int after);
  [[nodiscard]] bool all_done_locked() const;
  void fail_locked(std::exception_ptr error);
  void node_retired_locked(int node);

  const GangMode mode_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<NodeState> state_;
  std::vector<std::thread> workers_;

  // Job hand-off: run() bumps job_epoch_; each parked worker picks the job
  // up once and reports back via active_workers_.
  std::uint64_t job_epoch_ = 0;
  int active_workers_ = 0;
  const NodeFn* node_fn_ = nullptr;
  bool destroy_ = false;

  // Baton mode: whose turn it is (kController between phases).
  int turn_ = 0;
  // Parallel mode: nodes still running the current phase, and the phase
  // generation counter nodes wait on at barriers.
  int running_ = 0;
  std::uint64_t phase_epoch_ = 0;

  bool shutdown_ = false;
  std::exception_ptr first_error_;
  std::uint64_t barriers_ = 0;
};

}  // namespace updsm::sim
