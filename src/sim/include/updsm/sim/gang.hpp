// Deterministic cooperative scheduler for simulated DSM nodes.
//
// Each simulated node runs its application function on a dedicated
// std::thread, but a baton protocol admits exactly ONE runnable thread at a
// time and hands control over only at barriers (or node exit). Rounds are
// strictly ordered 0..n-1, so every run is bit-deterministic and free of
// data races by construction -- no atomics or locks are needed anywhere in
// protocol or application code.
//
// This is sound for the protocols under study because they are all
// barrier-synchronous (paper §2.2.1 restricts to barrier-only codes): any
// mid-epoch remote request is serviced against protocol state that was
// *published at the previous barrier* and is therefore frozen while other
// nodes execute their part of the same epoch. Publishing new state happens
// exclusively inside the barrier callback, which runs on the controller
// thread while every node is parked.
//
// Lifecycle:
//   Gang gang(8);
//   gang.run(node_fn /* void(int node) */,
//            barrier_cb /* void(uint64_t barrier_index) */);
// node_fn calls gang.barrier_wait(node) at each application barrier.
// All nodes must execute identical barrier sequences; a node exiting while
// another still synchronizes is reported as UsageError.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "updsm/common/error.hpp"

namespace updsm::sim {

class Gang {
 public:
  using NodeFn = std::function<void(int)>;
  using BarrierFn = std::function<void(std::uint64_t)>;

  explicit Gang(int num_nodes);

  Gang(const Gang&) = delete;
  Gang& operator=(const Gang&) = delete;

  /// Runs `node_fn(i)` for every node to completion, invoking
  /// `barrier_cb(k)` on the controller thread at the k-th global barrier.
  /// Rethrows the first exception raised by any node or by the callback.
  void run(const NodeFn& node_fn, const BarrierFn& barrier_cb);

  /// Called from inside node_fn: parks this node at the global barrier and
  /// returns once the barrier callback has completed and it is this node's
  /// turn again.
  void barrier_wait(int node);

  [[nodiscard]] int size() const { return static_cast<int>(state_.size()); }

  /// Number of barriers completed so far (valid during and after run()).
  [[nodiscard]] std::uint64_t barriers_completed() const { return barriers_; }

 private:
  enum class NodeState { Ready, AtBarrier, Done };
  static constexpr int kController = -1;

  /// Thrown into parked node threads when the gang shuts down on error.
  struct Shutdown {};

  // All private methods require mu_ held.
  void advance_baton_locked(int after);
  [[nodiscard]] bool all_done_locked() const;
  void fail_locked(std::exception_ptr error);

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<NodeState> state_;
  int turn_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  std::uint64_t barriers_ = 0;
};

}  // namespace updsm::sim
