// Deterministic gang scheduler for simulated DSM nodes.
//
// N simulated node contexts are multiplexed over a bounded pool of M
// worker threads (M = `workers`, default hardware_concurrency, clamped to
// [1, N]) -- a 1024-node run no longer creates 1024 OS threads. Each node
// runs on its own Fiber (stackful coroutine) so it can block mid-stack in
// barrier_wait; nodes are assigned to workers in deterministic contiguous
// blocks (Gang::owner_worker), and each worker resumes its own nodes in
// ascending node order, so the interleaving observable through the DSM
// layer's determinism discipline is a pure function of (N, inputs) --
// never of M or of host scheduling. Two scheduling modes:
//
//  - GangMode::Baton (constructor default): a baton protocol admits exactly
//    ONE runnable node at a time and hands control over only at barriers
//    (or node exit). Rounds are strictly ordered 0..n-1, so every run is
//    bit-deterministic and free of data races by construction -- no atomics
//    or locks are needed anywhere in protocol or application code.
//
//  - GangMode::Parallel: between barriers ALL ready nodes run concurrently
//    (up to M at a time, one per worker); the controller still runs barrier
//    callbacks alone, with every worker parked. Determinism is preserved by
//    the DSM layer's discipline, not by scheduling: mid-phase code may only
//    (a) read state frozen at the previous barrier, (b) perform commutative
//    accounting (relaxed atomic adds), or (c) append to its own per-node
//    logs, which the barrier callback merges in node order. See
//    docs/SIMULATION.md ("Execution model" and "Host-parallel execution").
//
//  - GangMode::Async: like the baton, exactly ONE runnable node at a time,
//    but turns are granted by minimum virtual clock (via set_clock_source,
//    ties to the lowest node id) instead of round order, and a node may
//    yield its turn *without* parking at a barrier (async_step). This is a
//    deterministic discrete-event scheduler for barrier-free iteration:
//    replayable and bit-identical for every worker count, because the
//    event order is a pure function of the virtual clocks. Collectives
//    (barrier_wait) still work and are used for setup/teardown phases.
//
// There is no global mutex/notify_all herd on the phase transitions: every
// worker (and the controller) parks on its own cache-line-padded
// mutex+condvar "parker", phase hand-off in parallel mode goes through an
// atomic arrival counter plus an atomic release epoch (a sense counter),
// and barrier release is O(M) targeted wakes. The baton path wakes exactly
// the next node's owning worker -- or nobody at all, when the next node
// lives on the worker already running.
//
// Both modes are sound for the protocols under study because they are all
// barrier-synchronous (paper §2.2.1 restricts to barrier-only codes): any
// mid-epoch remote request is serviced against protocol state that was
// *published at the previous barrier* and is therefore frozen while other
// nodes execute their part of the same epoch. Publishing new state happens
// exclusively inside the barrier callback, which runs on the controller
// thread while every node is parked.
//
// Lifecycle:
//   Gang gang(8, GangMode::Parallel, /*workers=*/4);
//   gang.run(node_fn /* void(int node) */,
//            barrier_cb /* void(uint64_t barrier_index) */);
// node_fn calls gang.barrier_wait(node) at each application barrier.
// All nodes must execute identical barrier sequences; a node exiting while
// another still synchronizes is reported as UsageError. Node fibers are
// stamped with their node id (sim::current_exec_node()) in both modes;
// worker threads carry sim::current_exec_worker().
//
// Caveat vs the old thread-per-node pool: with M < N, a node that busy-
// waits mid-phase on another node's shared write without reaching a
// barrier can starve that node forever (they may share a worker). The DSM
// protocols never do this -- nodes only communicate at barriers -- and
// tests that want mid-phase cross-node spinning must pass workers == N.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "updsm/common/error.hpp"
#include "updsm/sim/fiber.hpp"

namespace updsm::sim {

enum class GangMode {
  Baton,     ///< one runnable node at a time, strict 0..n-1 round order
  Parallel,  ///< all ready nodes run concurrently between barriers
  Async,     ///< one runnable node at a time, picked by minimum virtual clock
};

[[nodiscard]] const char* to_string(GangMode mode);

class Gang {
 public:
  using NodeFn = std::function<void(int)>;
  using BarrierFn = std::function<void(std::uint64_t)>;

  /// Spawns the persistent worker pool: resolve_workers(workers, num_nodes)
  /// threads multiplexing num_nodes fiber contexts. Baton is the default so
  /// that plain `Gang g(n)` keeps the historical serialized semantics;
  /// callers opt into concurrency explicitly. Requests above num_nodes are
  /// clamped with a stderr warning; negative requests are UsageErrors.
  explicit Gang(int num_nodes, GangMode mode = GangMode::Baton,
                int workers = 0);
  ~Gang();

  Gang(const Gang&) = delete;
  Gang& operator=(const Gang&) = delete;

  /// Runs `node_fn(i)` for every node to completion, invoking
  /// `barrier_cb(k)` on the controller thread (the caller) at the k-th
  /// global barrier. Rethrows the first exception raised by any node or by
  /// the callback. May be called repeatedly; the pool is reused.
  void run(const NodeFn& node_fn, const BarrierFn& barrier_cb);

  /// Called from inside node_fn: parks this node at the global barrier and
  /// returns once the barrier callback has completed and this node may run
  /// again (its baton turn, or the next phase in parallel mode).
  void barrier_wait(int node);

  /// Async mode only: yields this node's turn without parking it at a
  /// barrier. The scheduler re-admits the Ready node with the minimum
  /// (clock_source(node), node) pair; when the caller is still that
  /// minimum, the call returns immediately with no fiber switch. Exactly
  /// one node runs at a time, so async runs are as race-free (and as
  /// bit-deterministic across worker counts) as the baton.
  void async_step(int node);

  /// Wires the virtual-clock lookup used by Async-mode scheduling; must be
  /// monotone per node between async_step calls. Harmless in other modes.
  void set_clock_source(std::function<std::uint64_t(int)> clock_source) {
    clock_source_ = std::move(clock_source);
  }

  [[nodiscard]] int size() const { return num_nodes_; }

  [[nodiscard]] GangMode mode() const { return mode_; }

  /// OS worker threads actually spawned (after auto-detect and clamping).
  [[nodiscard]] int workers() const { return num_workers_; }

  /// Number of barriers completed so far (valid during and after run();
  /// accumulates across run() calls).
  [[nodiscard]] std::uint64_t barriers_completed() const { return barriers_; }

  /// Resolves a requested worker count against a node count: 0 means auto
  /// (hardware_concurrency, minimum 1); anything above num_nodes clamps to
  /// num_nodes. Negative requests throw UsageError. Pure -- shared with the
  /// DSM runtime's per-worker arena sizing so both always agree.
  [[nodiscard]] static int resolve_workers(int workers, int num_nodes);

  /// The worker that owns `node` under the deterministic contiguous-block
  /// assignment: worker w owns nodes [w*base + min(w, rem), ...) of size
  /// base + (w < rem), where base = num_nodes / workers and rem =
  /// num_nodes % workers. Contiguity keeps baton handoffs worker-local and
  /// per-worker node scans cache-friendly.
  [[nodiscard]] static int owner_worker(int node, int num_nodes, int workers);

 private:
  enum class NodeStatus : std::uint8_t { Ready, AtBarrier, Done };
  enum class NodeExit : std::uint8_t { None, Returned, Torn, Errored };
  static constexpr int kController = -1;

  /// Thrown into parked node fibers when the gang shuts down on error.
  struct Shutdown {};

  struct NodeSlot {
    Fiber fiber;
    NodeStatus status = NodeStatus::Done;
    bool started = false;  // fiber armed and resumed at least once this job
    NodeExit exit = NodeExit::None;
    std::exception_ptr error;
  };

  /// One parked thread's private wait channel: an eventcount (ticket =
  /// sequence number) over its own mutex+condvar, cache-line padded so
  /// neighbouring parkers never false-share. Usage: t = prepare(); re-check
  /// the wake condition; wait(t) only if it still does not hold. A waker
  /// that publishes state before wake() can never be lost.
  struct alignas(64) Parker {
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t seq = 0;

    [[nodiscard]] std::uint64_t prepare() {
      std::lock_guard<std::mutex> lock(mu);
      return seq;
    }
    void wait(std::uint64_t ticket) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return seq != ticket; });
    }
    void wake() {
      {
        std::lock_guard<std::mutex> lock(mu);
        ++seq;
      }
      cv.notify_one();
    }
  };

  void worker_main(int worker);
  void run_job_baton(int worker);
  void run_job_parallel(int worker);
  [[nodiscard]] bool run_node_fiber(int node);  // true when node finished
  void unwind_owned(int worker);
  void detach_worker();
  void record_failure(std::exception_ptr error);
  void controller_baton(const BarrierFn& barrier_cb);
  void controller_parallel(const BarrierFn& barrier_cb);
  [[nodiscard]] bool release_parallel_phase();
  void advance_baton_locked(int after);              // requires baton_mu_
  void advance_async_locked();                       // requires baton_mu_
  void fail_baton_locked(std::exception_ptr error);  // requires baton_mu_
  [[nodiscard]] int span_first(int worker) const { return span_[worker]; }
  [[nodiscard]] int span_last(int worker) const {
    return span_[static_cast<std::size_t>(worker) + 1];
  }

  const GangMode mode_;
  const int num_nodes_;
  int num_workers_ = 0;

  std::vector<std::unique_ptr<NodeSlot>> slots_;
  std::vector<int> span_;  // worker w owns nodes [span_[w], span_[w+1])
  std::vector<std::unique_ptr<Parker>> parkers_;  // one per worker
  Parker controller_;
  std::vector<std::thread> threads_;

  // Job hand-off: run() bumps job_epoch_ and wakes every worker; each
  // worker picks the job up once and reports back via active_workers_.
  std::atomic<std::uint64_t> job_epoch_{0};
  std::atomic<int> active_workers_{0};
  std::atomic<bool> destroy_{false};
  const NodeFn* node_fn_ = nullptr;
  std::function<std::uint64_t(int)> clock_source_;  // Async-mode scheduling

  // Parallel mode: workers still to arrive at the current phase barrier,
  // and the release epoch (sense counter) parked workers watch. Statuses
  // are plain fields there; they synchronize through these atomics
  // (workers publish with the acq_rel arrival decrement, the controller
  // publishes with the release epoch increment).
  std::atomic<int> phase_remaining_{0};
  std::atomic<std::uint64_t> phase_epoch_{0};

  // Baton mode: whose turn it is (kController between phases); turn_ and
  // the node statuses are guarded by baton_mu_ there.
  std::mutex baton_mu_;
  int turn_ = 0;

  std::atomic<bool> shutdown_{false};
  std::mutex err_mu_;
  std::exception_ptr first_error_;
  std::uint64_t barriers_ = 0;
};

}  // namespace updsm::sim
