// Deterministic transport fault injection.
//
// A FaultPlan is the adversarial half of the simulated interconnect: given
// a seed and a declarative FaultSpec, it decides -- per message -- whether
// that message is dropped, delivered twice, or delayed, and whether a node
// transiently stalls after a barrier. The DSM runtime consults the plan on
// every reliable-channel exchange (requests/replies, diff flushes to homes,
// sync and control messages) and reacts with timeout/backoff retries and
// service-side dedup; barrier-time update pushes stay fire-and-forget and
// are healed lazily by the protocols' version indices (paper §2.1.2).
//
// Determinism contract (same flavour as Network's flush drop streams): the
// decision for the k-th message of a given (kind, from, to) triple depends
// only on (seed, spec, triple, k) -- a stateless splitmix64 hash keyed by
// the triple's private sequence counter. Every triple's message sequence is
// issued in one thread's program order (a sender's requests mid-phase, or
// the controller at barriers), so the injected schedule -- and everything
// downstream -- is bit-identical across gang modes and host schedules.
// Node stalls are keyed (node, barrier index) and drawn statelessly.
//
// Concurrency: next() mutates only the counter of the queried triple.
// Distinct triples live in distinct cells, and one triple is only ever
// queried by the thread that issues that traffic (requester threads query
// both directions of their own exchanges; barrier traffic is controller
// only), so no cell is ever written concurrently.
//
// A FaultSpec is serializable to a compact text form (`--faults` accepts
// the same grammar on the command line or from a file):
//
//   rule[;rule...]
//   rule  := field[,field...]
//   field := kind=<msg-kind|*> | from=<node|*> | to=<node|*> | node=<id|*>
//          | drop=<p> | dup=<p> | delay=<p> | delay_us=<t>
//          | stall=<p> | stall_us=<t>
//
// The first rule matching a message's (kind, from, to) decides its fate;
// omitted filters match anything, so `drop=0.1` alone drops 10% of every
// message the plan governs. Stall probabilities are matched separately
// (first rule with stall > 0 whose node filter matches).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "updsm/common/types.hpp"
#include "updsm/sim/network.hpp"
#include "updsm/sim/time.hpp"

namespace updsm::sim {

/// One declarative injection rule. -1 filters mean "any".
struct FaultRule {
  int kind = -1;  ///< static_cast<int>(MsgKind), or -1 for every kind.
  int from = -1;  ///< sending node, or -1 for any.
  int to = -1;    ///< receiving node (also the stall target), or -1.
  double drop = 0.0;   ///< P(message silently lost)
  double dup = 0.0;    ///< P(message delivered twice)
  double delay = 0.0;  ///< P(message delayed by delay_time)
  SimTime delay_time = usec(200);
  double stall = 0.0;  ///< P(node stalls after a barrier)
  SimTime stall_time = usec(500);

  [[nodiscard]] bool matches(MsgKind k, NodeId f, NodeId t) const {
    return (kind < 0 || kind == static_cast<int>(k)) &&
           (from < 0 || from == static_cast<int>(f.value())) &&
           (to < 0 || to == static_cast<int>(t.value()));
  }

  friend bool operator==(const FaultRule&, const FaultRule&) = default;
};

/// An ordered rule list; empty means "no injection".
struct FaultSpec {
  std::vector<FaultRule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }

  /// Compact text form; parse(to_string()) reproduces the spec exactly.
  [[nodiscard]] std::string to_string() const;
  /// Parses the grammar above. Throws UsageError on malformed input.
  [[nodiscard]] static FaultSpec parse(std::string_view text);

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// The fate the plan assigned to one message.
struct FaultDecision {
  bool drop = false;       ///< never arrives; the sender must time out
  bool duplicate = false;  ///< arrives twice; receiver must dedup
  SimTime extra_delay = 0; ///< reorder/queueing delay on top of wire time
};

class FaultPlan {
 public:
  /// `num_nodes` sizes the per-triple sequence counters.
  FaultPlan(FaultSpec spec, std::uint64_t seed, int num_nodes);

  /// Decides the fate of the next message of `kind` from `from` to `to`,
  /// advancing that triple's sequence counter. See the header comment for
  /// the determinism and concurrency contract.
  [[nodiscard]] FaultDecision next(MsgKind kind, NodeId from, NodeId to);

  /// Extra stall time for `node` after global barrier `barrier` (0 = no
  /// stall). Stateless: safe from any thread, any number of times.
  [[nodiscard]] SimTime stall(NodeId node, std::uint64_t barrier) const;

  [[nodiscard]] bool active() const { return !spec_.empty(); }
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Full round-trippable form: "seed=0x...;" + the spec grammar.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static FaultPlan deserialize(std::string_view text,
                                             int num_nodes);

 private:
  [[nodiscard]] double draw(std::uint64_t stream, std::uint64_t k,
                            std::uint64_t salt) const;
  [[nodiscard]] const FaultRule* match(MsgKind kind, NodeId from,
                                       NodeId to) const;

  FaultSpec spec_;
  std::uint64_t seed_;
  int num_nodes_;
  std::vector<std::uint64_t> counters_;  // [kind][from][to] sequence numbers
};

}  // namespace updsm::sim
