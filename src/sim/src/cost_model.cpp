#include "updsm/sim/cost_model.hpp"

#include <cstdlib>
#include <utility>

#include "updsm/common/error.hpp"

namespace updsm::sim {

CostModel CostModel::rdma_defaults() {
  CostModel m;  // start from the SP-2 calibration; swap the interconnect
  m.net.per_message = usec(1.2);
  m.net.per_byte_ns = 0.1;  // 10 GB/s sustained
  m.net.send_trap = usec(0.15);
  m.net.recv_trap = usec(0.15);
  return m;
}

bool CostModel::known_profile(std::string_view profile) {
  return profile == "sp2" || profile == "rdma";
}

CostModel CostModel::from_profile(std::string_view profile) {
  if (profile == "sp2") return sp2_defaults();
  if (profile == "rdma") return rdma_defaults();
  throw UsageError("unknown net profile: '" + std::string(profile) +
                   "' (valid: sp2, rdma)");
}

namespace {

/// One override slot: a key name plus how the parsed double lands in the
/// model. Time-valued keys (_us) convert through usec(); everything else is
/// stored verbatim.
struct CostKey {
  const char* name;
  void (*set)(CostModel&, double);
};

const CostKey kCostKeys[] = {
    {"net.per_message_us",
     [](CostModel& m, double v) { m.net.per_message = usec(v); }},
    {"net.per_byte_ns", [](CostModel& m, double v) { m.net.per_byte_ns = v; }},
    {"net.send_trap_us",
     [](CostModel& m, double v) { m.net.send_trap = usec(v); }},
    {"net.recv_trap_us",
     [](CostModel& m, double v) { m.net.recv_trap = usec(v); }},
    {"net.header_bytes",
     [](CostModel& m, double v) {
       m.net.header_bytes = static_cast<std::uint32_t>(v);
     }},
    {"net.flush_drop_rate",
     [](CostModel& m, double v) { m.net.flush_drop_rate = v; }},
    {"os.segv_us", [](CostModel& m, double v) { m.os.segv = usec(v); }},
    {"os.mprotect_us",
     [](CostModel& m, double v) { m.os.mprotect_base = usec(v); }},
    {"os.stress_multiplier",
     [](CostModel& m, double v) { m.os.stress_multiplier = v; }},
    {"os.slow_page_fraction",
     [](CostModel& m, double v) { m.os.slow_page_fraction = v; }},
    {"os.stress_threshold_pages",
     [](CostModel& m, double v) {
       m.os.stress_threshold_pages = static_cast<std::uint32_t>(v);
     }},
    {"os.fault_service_extra_us",
     [](CostModel& m, double v) { m.os.fault_service_extra = usec(v); }},
    {"dsm.diff_create_per_byte_ns",
     [](CostModel& m, double v) { m.dsm.diff_create_per_byte_ns = v; }},
    {"dsm.diff_apply_per_byte_ns",
     [](CostModel& m, double v) { m.dsm.diff_apply_per_byte_ns = v; }},
    {"dsm.copy_per_byte_ns",
     [](CostModel& m, double v) { m.dsm.copy_per_byte_ns = v; }},
    {"dsm.diff_fixed_us",
     [](CostModel& m, double v) { m.dsm.diff_fixed = usec(v); }},
    {"dsm.handler_fixed_us",
     [](CostModel& m, double v) { m.dsm.handler_fixed = usec(v); }},
    {"dsm.update_store_fixed_us",
     [](CostModel& m, double v) { m.dsm.update_store_fixed = usec(v); }},
    {"dsm.update_store_per_byte_ns",
     [](CostModel& m, double v) { m.dsm.update_store_per_byte_ns = v; }},
    {"dsm.barrier_master_per_node_us",
     [](CostModel& m, double v) { m.dsm.barrier_master_per_node = usec(v); }},
    {"dsm.policy_eval_per_page_ns",
     [](CostModel& m, double v) { m.dsm.policy_eval_per_page_ns = v; }},
    {"app.flop_ns", [](CostModel& m, double v) { m.app.flop_ns = v; }},
};

std::string joined_key_list() {
  std::string out;
  for (const CostKey& k : kCostKeys) {
    if (!out.empty()) out += ", ";
    out += k.name;
  }
  return out;
}

}  // namespace

const std::vector<std::string>& CostModel::cost_key_list() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> v;
    for (const CostKey& k : kCostKeys) v.emplace_back(k.name);
    return v;
  }();
  return keys;
}

void CostModel::apply_override(std::string_view spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 == spec.size()) {
    throw UsageError("malformed cost override '" + std::string(spec) +
                     "' (expected key=value)");
  }
  const std::string_view key = spec.substr(0, eq);
  const std::string value_str(spec.substr(eq + 1));
  char* end = nullptr;
  const double value = std::strtod(value_str.c_str(), &end);
  if (end == value_str.c_str() || *end != '\0') {
    throw UsageError("cost override '" + std::string(spec) +
                     "': value is not a number");
  }
  if (value < 0) {
    throw UsageError("cost override '" + std::string(spec) +
                     "': costs must be >= 0");
  }
  for (const CostKey& k : kCostKeys) {
    if (key == k.name) {
      k.set(*this, value);
      return;
    }
  }
  throw UsageError("unknown cost key '" + std::string(key) +
                   "' (valid keys: " + joined_key_list() + ")");
}

void apply_cost_overrides(CostModel& model,
                          const std::vector<std::string>& overrides) {
  for (const std::string& spec : overrides) model.apply_override(spec);
}

}  // namespace updsm::sim
