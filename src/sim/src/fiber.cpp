#include "updsm/sim/fiber.hpp"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>

#include "updsm/common/error.hpp"

#if defined(__SANITIZE_THREAD__)
#define UPDSM_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define UPDSM_TSAN_FIBERS 1
#endif
#endif

#ifdef UPDSM_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace updsm::sim {

struct Fiber::Impl {
  ucontext_t fiber_ctx;
  ucontext_t host_ctx;
#ifdef UPDSM_TSAN_FIBERS
  void* tsan_fiber = nullptr;
  void* tsan_host = nullptr;
#endif
};

Fiber::Fiber(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  stack_bytes_ = (stack_bytes_ + page - 1) / page * page;
  map_bytes_ = stack_bytes_ + page;
  void* base = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  UPDSM_CHECK_MSG(base != MAP_FAILED, "fiber stack mmap failed");
  ::mprotect(base, page, PROT_NONE);
  map_base_ = static_cast<std::byte*>(base);
  impl_ = new Impl;
}

Fiber::~Fiber() {
  // A live *suspended* fiber would leak whatever its frames own; the gang
  // unwinds every started fiber (via Shutdown) before destruction, so by
  // here the fiber either finished or never started.
#ifdef UPDSM_TSAN_FIBERS
  if (impl_->tsan_fiber != nullptr) __tsan_destroy_fiber(impl_->tsan_fiber);
#endif
  delete impl_;
  ::munmap(map_base_, map_bytes_);
}

void Fiber::arm(std::function<void()> fn) {
  UPDSM_CHECK_MSG(!live_, "arming a fiber whose function has not finished");
  fn_ = std::move(fn);
  UPDSM_CHECK(::getcontext(&impl_->fiber_ctx) == 0);
  impl_->fiber_ctx.uc_stack.ss_sp = map_base_ + (map_bytes_ - stack_bytes_);
  impl_->fiber_ctx.uc_stack.ss_size = stack_bytes_;
  // No uc_link: a finished fiber switches back explicitly in
  // run_trampoline so the TSan switch annotation runs on that path too.
  impl_->fiber_ctx.uc_link = nullptr;
  // makecontext only forwards int arguments; split the object pointer.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&impl_->fiber_ctx,
                reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
#ifdef UPDSM_TSAN_FIBERS
  if (impl_->tsan_fiber != nullptr) __tsan_destroy_fiber(impl_->tsan_fiber);
  impl_->tsan_fiber = __tsan_create_fiber(0);
#endif
  live_ = true;
}

void Fiber::trampoline(unsigned self_hi, unsigned self_lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(self_hi) << 32) |
      static_cast<std::uintptr_t>(self_lo));
  self->run_trampoline();
}

void Fiber::run_trampoline() {
  fn_();
  live_ = false;
  switch_out();
  std::abort();  // a finished fiber must never be resumed
}

bool Fiber::resume() {
  UPDSM_CHECK_MSG(live_, "resuming a fiber that is not armed");
#ifdef UPDSM_TSAN_FIBERS
  impl_->tsan_host = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(impl_->tsan_fiber, 0);
#endif
  ::swapcontext(&impl_->host_ctx, &impl_->fiber_ctx);
  return !live_;
}

void Fiber::yield() { switch_out(); }

void Fiber::switch_out() {
#ifdef UPDSM_TSAN_FIBERS
  __tsan_switch_to_fiber(impl_->tsan_host, 0);
#endif
  ::swapcontext(&impl_->fiber_ctx, &impl_->host_ctx);
}

}  // namespace updsm::sim
