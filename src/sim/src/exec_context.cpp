#include "updsm/sim/exec_context.hpp"

namespace updsm::sim {

namespace {
thread_local int tls_exec_node = kControllerContext;
thread_local int tls_exec_worker = kControllerContext;
}  // namespace

int current_exec_node() { return tls_exec_node; }

int current_exec_worker() { return tls_exec_worker; }

namespace detail {
void set_exec_node(int node) { tls_exec_node = node; }
void set_exec_worker(int worker) { tls_exec_worker = worker; }
}  // namespace detail

}  // namespace updsm::sim
