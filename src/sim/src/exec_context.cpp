#include "updsm/sim/exec_context.hpp"

namespace updsm::sim {

namespace {
thread_local int tls_exec_node = kControllerContext;
}  // namespace

int current_exec_node() { return tls_exec_node; }

namespace detail {
void set_exec_node(int node) { tls_exec_node = node; }
}  // namespace detail

}  // namespace updsm::sim
