#include "updsm/sim/network.hpp"

#include "updsm/common/error.hpp"

namespace updsm::sim {

Network::Network(const NetworkCosts& costs, std::uint64_t drop_seed)
    : costs_(costs), drop_rng_(drop_seed) {}

SimTime Network::record(MsgKind kind, NodeId from, NodeId to,
                        std::uint64_t payload_bytes) {
  if (from == to) return 0;
  auto& counter = stats_.by_kind[static_cast<std::size_t>(kind)];
  ++counter.count;
  counter.bytes += payload_bytes + costs_.header_bytes;
  return costs_.wire_time(payload_bytes);
}

bool Network::flush_delivered() {
  if (costs_.flush_drop_rate <= 0.0) return true;
  const bool delivered = drop_rng_.uniform() >= costs_.flush_drop_rate;
  if (!delivered) ++dropped_flushes_;
  return delivered;
}

void Network::reset_stats() {
  stats_ = NetworkStats{};
  dropped_flushes_ = 0;
}

}  // namespace updsm::sim
