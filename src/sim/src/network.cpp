#include "updsm/sim/network.hpp"

#include "updsm/common/error.hpp"
#include "updsm/sim/exec_context.hpp"

namespace updsm::sim {

Network::Network(const NetworkCosts& costs, std::uint64_t drop_seed,
                 int num_nodes)
    : costs_(costs), drop_seed_(drop_seed) {
  UPDSM_REQUIRE(num_nodes >= 1,
                "network needs at least one node, got " << num_nodes);
  shards_.resize(static_cast<std::size_t>(num_nodes) + 1);
  drop_rngs_.reserve(static_cast<std::size_t>(num_nodes));
  for (int d = 0; d < num_nodes; ++d) {
    drop_rngs_.emplace_back(
        splitmix64(drop_seed ^ splitmix64(static_cast<std::uint64_t>(d) + 1)));
  }
}

Network::Shard& Network::my_shard() {
  const int exec = current_exec_node();
  const std::size_t idx =
      exec >= 0 && static_cast<std::size_t>(exec) + 1 < shards_.size()
          ? static_cast<std::size_t>(exec) + 1
          : 0;
  return shards_[idx];
}

SimTime Network::record(MsgKind kind, NodeId from, NodeId to,
                        std::uint64_t payload_bytes) {
  if (from == to) return 0;
  auto& counter = my_shard().stats.by_kind[static_cast<std::size_t>(kind)];
  ++counter.count;
  counter.bytes += payload_bytes + costs_.header_bytes;
  return costs_.wire_time(payload_bytes);
}

bool Network::flush_delivered(NodeId to, MsgKind kind) {
  if (costs_.flush_drop_rate <= 0.0) return true;
  auto& rng = drop_rngs_[to.value() % drop_rngs_.size()];
  const bool delivered = rng.uniform() >= costs_.flush_drop_rate;
  if (!delivered) record_drop(kind);
  return delivered;
}

void Network::note_records(MsgKind kind, std::uint64_t records) {
  my_shard().stats.by_kind[static_cast<std::size_t>(kind)].records += records;
}

void Network::record_drop(MsgKind kind) {
  ++my_shard().stats.by_kind[static_cast<std::size_t>(kind)].dropped;
}

void Network::note_dup() { ++my_shard().stats.injected_dups; }

void Network::note_delay() { ++my_shard().stats.injected_delays; }

const NetworkStats& Network::stats() const {
  merged_ = NetworkStats{};
  for (const Shard& shard : shards_) {
    for (std::size_t k = 0; k < kMsgKindCount; ++k) {
      merged_.by_kind[k].count += shard.stats.by_kind[k].count;
      merged_.by_kind[k].bytes += shard.stats.by_kind[k].bytes;
      merged_.by_kind[k].dropped += shard.stats.by_kind[k].dropped;
      merged_.by_kind[k].records += shard.stats.by_kind[k].records;
    }
    merged_.injected_dups += shard.stats.injected_dups;
    merged_.injected_delays += shard.stats.injected_delays;
  }
  return merged_;
}

std::uint64_t Network::dropped_flushes() const {
  std::uint64_t sum = 0;
  for (const Shard& shard : shards_) {
    sum += shard.stats.by_kind[static_cast<std::size_t>(MsgKind::Flush)].dropped;
  }
  return sum;
}

void Network::reset_stats() {
  for (Shard& shard : shards_) shard = Shard{};
}

}  // namespace updsm::sim
