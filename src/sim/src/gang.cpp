#include "updsm/sim/gang.hpp"

namespace updsm::sim {

Gang::Gang(int num_nodes) {
  UPDSM_REQUIRE(num_nodes >= 1, "gang needs at least one node, got "
                                    << num_nodes);
  state_.assign(static_cast<std::size_t>(num_nodes), NodeState::Ready);
}

void Gang::advance_baton_locked(int after) {
  for (int j = after + 1; j < size(); ++j) {
    if (state_[static_cast<std::size_t>(j)] == NodeState::Ready) {
      turn_ = j;
      cv_.notify_all();
      return;
    }
  }
  turn_ = kController;
  cv_.notify_all();
}

bool Gang::all_done_locked() const {
  for (const NodeState s : state_) {
    if (s != NodeState::Done) return false;
  }
  return true;
}

void Gang::fail_locked(std::exception_ptr error) {
  if (!first_error_) first_error_ = error;
  shutdown_ = true;
  cv_.notify_all();
}

void Gang::barrier_wait(int node) {
  std::unique_lock<std::mutex> lock(mu_);
  UPDSM_CHECK_MSG(turn_ == node,
                  "barrier_wait(" << node << ") called out of turn (turn="
                                  << turn_ << ")");
  state_[static_cast<std::size_t>(node)] = NodeState::AtBarrier;
  advance_baton_locked(node);
  cv_.wait(lock, [&] { return shutdown_ || turn_ == node; });
  if (shutdown_) throw Shutdown{};
}

void Gang::run(const NodeFn& node_fn, const BarrierFn& barrier_cb) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size()));

  for (int i = 0; i < size(); ++i) {
    threads.emplace_back([this, i, &node_fn] {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return shutdown_ || turn_ == i; });
        if (shutdown_) return;
      }
      try {
        node_fn(i);
        std::unique_lock<std::mutex> lock(mu_);
        state_[static_cast<std::size_t>(i)] = NodeState::Done;
        advance_baton_locked(i);
      } catch (const Shutdown&) {
        // Torn down by another node's failure; nothing to record.
      } catch (...) {
        std::unique_lock<std::mutex> lock(mu_);
        state_[static_cast<std::size_t>(i)] = NodeState::Done;
        fail_locked(std::current_exception());
      }
    });
  }

  // Controller loop: runs barrier callbacks while all live nodes are parked.
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return shutdown_ || turn_ == kController; });
      if (shutdown_) break;
      if (all_done_locked()) break;

      // Every non-done node must be at the barrier; a mix of Done and
      // AtBarrier means the application's barrier counts diverged.
      bool any_done = false;
      for (const NodeState s : state_) {
        if (s == NodeState::Done) any_done = true;
      }
      if (any_done) {
        fail_locked(std::make_exception_ptr(UsageError(
            "a node exited while other nodes are still waiting at a "
            "barrier (mismatched barrier counts)")));
        break;
      }

      const std::uint64_t index = barriers_;
      lock.unlock();
      try {
        barrier_cb(index);
      } catch (...) {
        lock.lock();
        fail_locked(std::current_exception());
        break;
      }
      lock.lock();
      ++barriers_;
      for (NodeState& s : state_) {
        if (s == NodeState::AtBarrier) s = NodeState::Ready;
      }
      advance_baton_locked(kController);
    }
  }

  for (std::thread& t : threads) t.join();
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace updsm::sim
