#include "updsm/sim/gang.hpp"

#include <algorithm>
#include <cstdio>

#include "updsm/sim/exec_context.hpp"

namespace updsm::sim {

const char* to_string(GangMode mode) {
  switch (mode) {
    case GangMode::Baton:
      return "baton";
    case GangMode::Parallel:
      return "parallel";
    case GangMode::Async:
      return "async";
  }
  return "?";
}

int Gang::resolve_workers(int workers, int num_nodes) {
  UPDSM_REQUIRE(workers >= 0,
                "workers must be >= 1 (or 0 for auto), got " << workers);
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::clamp(workers, 1, num_nodes);
}

int Gang::owner_worker(int node, int num_nodes, int workers) {
  const int base = num_nodes / workers;
  const int rem = num_nodes % workers;
  // The first `rem` workers own base+1 nodes each, covering [0, big).
  const int big = rem * (base + 1);
  if (node < big) return node / (base + 1);
  return rem + (node - big) / base;
}

Gang::Gang(int num_nodes, GangMode mode, int workers)
    : mode_(mode), num_nodes_(num_nodes) {
  UPDSM_REQUIRE(num_nodes >= 1,
                "gang needs at least one node, got " << num_nodes);
  if (workers > num_nodes) {
    std::fprintf(stderr,
                 "updsm: workers=%d exceeds %d simulated nodes; clamping to "
                 "%d\n",
                 workers, num_nodes, num_nodes);
  }
  num_workers_ = resolve_workers(workers, num_nodes);

  slots_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    slots_.push_back(std::make_unique<NodeSlot>());
  }
  span_.resize(static_cast<std::size_t>(num_workers_) + 1);
  const int base = num_nodes / num_workers_;
  const int rem = num_nodes % num_workers_;
  span_[0] = 0;
  for (int w = 0; w < num_workers_; ++w) {
    span_[static_cast<std::size_t>(w) + 1] =
        span_[w] + base + (w < rem ? 1 : 0);
  }
  parkers_.reserve(static_cast<std::size_t>(num_workers_));
  threads_.reserve(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    parkers_.push_back(std::make_unique<Parker>());
  }
  for (int w = 0; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

Gang::~Gang() {
  destroy_.store(true, std::memory_order_release);
  for (auto& p : parkers_) p->wake();
  for (std::thread& t : threads_) t.join();
}

void Gang::record_failure(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(err_mu_);
    if (!first_error_) first_error_ = std::move(error);
  }
  shutdown_.store(true, std::memory_order_release);
}

bool Gang::run_node_fiber(int node) {
  NodeSlot& slot = *slots_[static_cast<std::size_t>(node)];
  if (!slot.started) {
    slot.started = true;
    slot.fiber.arm([this, node] {
      // Runs on the fiber's own stack; must not let anything escape (a
      // throwing fiber function would std::terminate inside ucontext).
      NodeSlot& s = *slots_[static_cast<std::size_t>(node)];
      try {
        (*node_fn_)(node);
        s.exit = NodeExit::Returned;
      } catch (const Shutdown&) {
        s.exit = NodeExit::Torn;  // torn down by another node's failure
      } catch (...) {
        s.exit = NodeExit::Errored;
        s.error = std::current_exception();
      }
    });
  }
  detail::set_exec_node(node);
  const bool finished = slot.fiber.resume();
  detail::set_exec_node(kControllerContext);
  return finished;
}

void Gang::unwind_owned(int worker) {
  for (int n = span_first(worker); n < span_last(worker); ++n) {
    NodeSlot& slot = *slots_[static_cast<std::size_t>(n)];
    while (slot.status != NodeStatus::Done) {
      if (!slot.started) {
        // Historical semantics: a node that had not started when the gang
        // failed never runs at all.
        slot.status = NodeStatus::Done;
        break;
      }
      // Resume the suspended fiber so barrier_wait rethrows Shutdown and
      // the node's stack unwinds through the application frames. Repeat in
      // case the application swallows it and parks again.
      if (run_node_fiber(n)) slot.status = NodeStatus::Done;
    }
  }
}

void Gang::detach_worker() {
  if (active_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    controller_.wake();
  }
}

void Gang::advance_baton_locked(int after) {
  if (mode_ == GangMode::Async) {
    // Async turns are clock-ordered, not round-ordered; the round position
    // of the yielding node is irrelevant.
    advance_async_locked();
    return;
  }
  for (int j = after + 1; j < num_nodes_; ++j) {
    if (slots_[static_cast<std::size_t>(j)]->status == NodeStatus::Ready) {
      turn_ = j;
      const int ow = owner_worker(j, num_nodes_, num_workers_);
      // Targeted hand-off: wake only the next node's owning worker -- and
      // not even that when the next node lives on the worker already
      // running (its scheduler loop re-checks turn_ before parking).
      if (ow != current_exec_worker()) parkers_[ow]->wake();
      return;
    }
  }
  turn_ = kController;
  controller_.wake();
}

void Gang::advance_async_locked() {
  // Grant the turn to the Ready node with the minimum (clock, id) pair --
  // the ascending scan plus strict < makes the lowest id win ties, so the
  // event order is a pure function of the virtual clocks.
  int best = kController;
  std::uint64_t best_clock = 0;
  for (int j = 0; j < num_nodes_; ++j) {
    if (slots_[static_cast<std::size_t>(j)]->status != NodeStatus::Ready) {
      continue;
    }
    const std::uint64_t c = clock_source_ ? clock_source_(j) : 0;
    if (best == kController || c < best_clock) {
      best = j;
      best_clock = c;
    }
  }
  if (best == kController) {
    turn_ = kController;
    controller_.wake();
    return;
  }
  turn_ = best;
  const int ow = owner_worker(best, num_nodes_, num_workers_);
  if (ow != current_exec_worker()) parkers_[static_cast<std::size_t>(ow)]->wake();
}

void Gang::fail_baton_locked(std::exception_ptr error) {
  record_failure(std::move(error));
  for (auto& p : parkers_) p->wake();
  controller_.wake();
}

void Gang::async_step(int node) {
  UPDSM_CHECK_MSG(mode_ == GangMode::Async,
                  "async_step requires GangMode::Async");
  NodeSlot& slot = *slots_[static_cast<std::size_t>(node)];
  {
    std::lock_guard<std::mutex> lock(baton_mu_);
    UPDSM_CHECK_MSG(turn_ == node,
                    "async_step(" << node << ") called out of turn (turn="
                                  << turn_ << ")");
    // The node stays Ready -- it is yielding its turn, not parking at a
    // barrier -- so advance_async_locked may grant the turn right back.
    advance_async_locked();
    if (turn_ == node) return;  // still the minimum: keep running in place
  }
  slot.fiber.yield();
  if (shutdown_.load(std::memory_order_acquire)) throw Shutdown{};
}

void Gang::barrier_wait(int node) {
  NodeSlot& slot = *slots_[static_cast<std::size_t>(node)];
  if (mode_ != GangMode::Parallel) {
    std::lock_guard<std::mutex> lock(baton_mu_);
    UPDSM_CHECK_MSG(turn_ == node,
                    "barrier_wait(" << node << ") called out of turn (turn="
                                    << turn_ << ")");
    slot.status = NodeStatus::AtBarrier;
    advance_baton_locked(node);
  } else {
    // Plain write: the owning worker's arrival decrement publishes it to
    // the controller.
    slot.status = NodeStatus::AtBarrier;
  }
  // Yield with no locks held: switches back to the owning worker's
  // scheduler loop until the barrier releases this node again.
  slot.fiber.yield();
  if (shutdown_.load(std::memory_order_acquire)) throw Shutdown{};
}

void Gang::worker_main(int worker) {
  detail::set_exec_worker(worker);
  std::uint64_t seen_job = 0;
  for (;;) {
    for (;;) {
      const std::uint64_t ticket = parkers_[static_cast<std::size_t>(worker)]
                                       ->prepare();
      if (destroy_.load(std::memory_order_acquire)) return;
      const std::uint64_t job = job_epoch_.load(std::memory_order_acquire);
      if (job != seen_job) {
        seen_job = job;
        break;
      }
      parkers_[static_cast<std::size_t>(worker)]->wait(ticket);
    }
    if (mode_ == GangMode::Parallel) {
      run_job_parallel(worker);
    } else {
      run_job_baton(worker);  // Baton and Async share the one-at-a-time loop
    }
  }
}

void Gang::run_job_baton(int worker) {
  Parker& parker = *parkers_[static_cast<std::size_t>(worker)];
  int live = span_last(worker) - span_first(worker);
  for (;;) {
    const std::uint64_t ticket = parker.prepare();
    int to_run = kController;
    bool unwind = false;
    {
      std::lock_guard<std::mutex> lock(baton_mu_);
      if (shutdown_.load(std::memory_order_relaxed)) {
        unwind = true;
      } else if (turn_ >= span_first(worker) && turn_ < span_last(worker) &&
                 slots_[static_cast<std::size_t>(turn_)]->status ==
                     NodeStatus::Ready) {
        to_run = turn_;
      }
    }
    if (unwind) {
      unwind_owned(worker);
      break;
    }
    if (to_run == kController) {
      if (live == 0) break;
      parker.wait(ticket);
      continue;
    }
    // Run the node until it parks at a barrier (barrier_wait advances the
    // baton itself) or finishes.
    if (run_node_fiber(to_run)) {
      --live;
      NodeSlot& slot = *slots_[static_cast<std::size_t>(to_run)];
      std::lock_guard<std::mutex> lock(baton_mu_);
      slot.status = NodeStatus::Done;
      if (slot.exit == NodeExit::Errored) {
        fail_baton_locked(slot.error);
      } else {
        advance_baton_locked(to_run);
      }
    }
  }
  detach_worker();
}

void Gang::run_job_parallel(int worker) {
  Parker& parker = *parkers_[static_cast<std::size_t>(worker)];
  for (;;) {
    // The release epoch is stable for the whole phase: the controller
    // cannot bump it again until this worker arrives below.
    const std::uint64_t phase = phase_epoch_.load(std::memory_order_acquire);
    if (shutdown_.load(std::memory_order_acquire)) {
      unwind_owned(worker);
    } else {
      for (int n = span_first(worker); n < span_last(worker); ++n) {
        NodeSlot& slot = *slots_[static_cast<std::size_t>(n)];
        if (slot.status != NodeStatus::Ready) continue;
        if (!slot.started && shutdown_.load(std::memory_order_acquire)) {
          // Another node failed before this one ever started.
          slot.status = NodeStatus::Done;
          continue;
        }
        if (run_node_fiber(n)) {
          slot.status = NodeStatus::Done;
          if (slot.exit == NodeExit::Errored) record_failure(slot.error);
        }
      }
    }
    bool live = false;
    for (int n = span_first(worker); n < span_last(worker); ++n) {
      if (slots_[static_cast<std::size_t>(n)]->status != NodeStatus::Done) {
        live = true;
        break;
      }
    }
    // Arrive at the phase barrier; the last arrival wakes the controller.
    if (phase_remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      controller_.wake();
    }
    if (!live) break;
    for (;;) {
      const std::uint64_t ticket = parker.prepare();
      if (phase_epoch_.load(std::memory_order_acquire) != phase) break;
      parker.wait(ticket);
    }
  }
  detach_worker();
}

void Gang::controller_baton(const BarrierFn& barrier_cb) {
  for (;;) {
    for (;;) {
      const std::uint64_t ticket = controller_.prepare();
      bool quiescent;
      {
        std::lock_guard<std::mutex> lock(baton_mu_);
        quiescent = shutdown_.load(std::memory_order_relaxed) ||
                    turn_ == kController;
      }
      if (quiescent) break;
      controller_.wait(ticket);
    }
    {
      std::lock_guard<std::mutex> lock(baton_mu_);
      if (shutdown_.load(std::memory_order_relaxed)) return;
      bool all_done = true;
      bool any_done = false;
      for (const auto& s : slots_) {
        if (s->status == NodeStatus::Done) {
          any_done = true;
        } else {
          all_done = false;
        }
      }
      if (all_done) return;
      // Every non-done node must be at the barrier; a mix of Done and
      // AtBarrier means the application's barrier counts diverged.
      if (any_done) {
        fail_baton_locked(std::make_exception_ptr(UsageError(
            "a node exited while other nodes are still waiting at a "
            "barrier (mismatched barrier counts)")));
        return;
      }
    }
    try {
      barrier_cb(barriers_);
    } catch (...) {
      std::lock_guard<std::mutex> lock(baton_mu_);
      fail_baton_locked(std::current_exception());
      return;
    }
    {
      std::lock_guard<std::mutex> lock(baton_mu_);
      ++barriers_;
      for (auto& s : slots_) {
        if (s->status == NodeStatus::AtBarrier) s->status = NodeStatus::Ready;
      }
      advance_baton_locked(kController);
    }
  }
}

bool Gang::release_parallel_phase() {
  // Only called with every worker quiescent (arrived or detached), so the
  // status scan cannot race. Wakes exactly the workers that still own a
  // live node: O(M) targeted wakes, no herd.
  int live_workers = 0;
  for (int w = 0; w < num_workers_; ++w) {
    for (int n = span_first(w); n < span_last(w); ++n) {
      if (slots_[static_cast<std::size_t>(n)]->status != NodeStatus::Done) {
        ++live_workers;
        break;
      }
    }
  }
  if (live_workers == 0) return false;
  phase_remaining_.store(live_workers, std::memory_order_relaxed);
  phase_epoch_.fetch_add(1, std::memory_order_release);
  for (int w = 0; w < num_workers_; ++w) {
    for (int n = span_first(w); n < span_last(w); ++n) {
      if (slots_[static_cast<std::size_t>(n)]->status != NodeStatus::Done) {
        parkers_[static_cast<std::size_t>(w)]->wake();
        break;
      }
    }
  }
  return true;
}

void Gang::controller_parallel(const BarrierFn& barrier_cb) {
  for (;;) {
    for (;;) {
      const std::uint64_t ticket = controller_.prepare();
      if (phase_remaining_.load(std::memory_order_acquire) == 0) break;
      controller_.wait(ticket);
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      // Unwind phase: release the surviving workers so they tear their
      // suspended fibers down; repeat until none is left.
      if (!release_parallel_phase()) return;
      continue;
    }
    bool all_done = true;
    bool any_done = false;
    for (const auto& s : slots_) {
      if (s->status == NodeStatus::Done) {
        any_done = true;
      } else {
        all_done = false;
      }
    }
    if (all_done) return;
    if (any_done) {
      record_failure(std::make_exception_ptr(UsageError(
          "a node exited while other nodes are still waiting at a "
          "barrier (mismatched barrier counts)")));
      if (!release_parallel_phase()) return;
      continue;
    }
    try {
      barrier_cb(barriers_);
    } catch (...) {
      record_failure(std::current_exception());
      if (!release_parallel_phase()) return;
      continue;
    }
    ++barriers_;
    for (auto& s : slots_) {
      if (s->status == NodeStatus::AtBarrier) s->status = NodeStatus::Ready;
    }
    if (!release_parallel_phase()) return;
  }
}

void Gang::run(const NodeFn& node_fn, const BarrierFn& barrier_cb) {
  UPDSM_CHECK_MSG(active_workers_.load(std::memory_order_acquire) == 0,
                  "Gang::run is not reentrant");
  node_fn_ = &node_fn;
  shutdown_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  for (auto& s : slots_) {
    s->status = NodeStatus::Ready;
    s->started = false;
    s->exit = NodeExit::None;
    s->error = nullptr;
  }
  turn_ = 0;
  phase_remaining_.store(num_workers_, std::memory_order_relaxed);
  active_workers_.store(num_workers_, std::memory_order_relaxed);
  job_epoch_.fetch_add(1, std::memory_order_release);
  for (auto& p : parkers_) p->wake();

  if (mode_ == GangMode::Parallel) {
    controller_parallel(barrier_cb);
  } else {
    controller_baton(barrier_cb);
  }

  // Wait for every worker to finish (or abandon) this job before
  // returning, so the pool is quiescent for the next run() and errors are
  // complete.
  for (;;) {
    const std::uint64_t ticket = controller_.prepare();
    if (active_workers_.load(std::memory_order_acquire) == 0) break;
    controller_.wait(ticket);
  }
  node_fn_ = nullptr;
  if (first_error_) {
    std::exception_ptr error;
    std::swap(error, first_error_);
    std::rethrow_exception(error);
  }
}

}  // namespace updsm::sim
