#include "updsm/sim/gang.hpp"

#include "updsm/sim/exec_context.hpp"

namespace updsm::sim {

const char* to_string(GangMode mode) {
  return mode == GangMode::Baton ? "baton" : "parallel";
}

Gang::Gang(int num_nodes, GangMode mode) : mode_(mode) {
  UPDSM_REQUIRE(num_nodes >= 1, "gang needs at least one node, got "
                                    << num_nodes);
  state_.assign(static_cast<std::size_t>(num_nodes), NodeState::Done);
  workers_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

Gang::~Gang() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    destroy_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Gang::advance_baton_locked(int after) {
  for (int j = after + 1; j < size(); ++j) {
    if (state_[static_cast<std::size_t>(j)] == NodeState::Ready) {
      turn_ = j;
      cv_.notify_all();
      return;
    }
  }
  turn_ = kController;
  cv_.notify_all();
}

bool Gang::all_done_locked() const {
  for (const NodeState s : state_) {
    if (s != NodeState::Done) return false;
  }
  return true;
}

void Gang::fail_locked(std::exception_ptr error) {
  if (!first_error_) first_error_ = error;
  shutdown_ = true;
  cv_.notify_all();
}

void Gang::node_retired_locked(int node) {
  if (mode_ == GangMode::Baton) {
    advance_baton_locked(node);
  } else {
    if (--running_ == 0) cv_.notify_all();
  }
}

void Gang::barrier_wait(int node) {
  std::unique_lock<std::mutex> lock(mu_);
  if (mode_ == GangMode::Baton) {
    UPDSM_CHECK_MSG(turn_ == node,
                    "barrier_wait(" << node << ") called out of turn (turn="
                                    << turn_ << ")");
    state_[static_cast<std::size_t>(node)] = NodeState::AtBarrier;
    advance_baton_locked(node);
    cv_.wait(lock, [&] { return shutdown_ || turn_ == node; });
  } else {
    const std::uint64_t phase = phase_epoch_;
    state_[static_cast<std::size_t>(node)] = NodeState::AtBarrier;
    if (--running_ == 0) cv_.notify_all();
    cv_.wait(lock, [&] { return shutdown_ || phase_epoch_ != phase; });
  }
  if (shutdown_) throw Shutdown{};
}

void Gang::worker_main(int node) {
  detail::set_exec_node(node);
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen_job = 0;
  for (;;) {
    cv_.wait(lock, [&] { return destroy_ || job_epoch_ > seen_job; });
    if (destroy_) return;
    seen_job = job_epoch_;

    bool run_it = true;
    if (mode_ == GangMode::Baton) {
      // Historical semantics: a node's function does not start until the
      // baton first reaches it, so phase 0 also runs in strict node order.
      cv_.wait(lock, [&] { return shutdown_ || turn_ == node; });
      if (shutdown_) run_it = false;
    } else if (shutdown_) {
      run_it = false;  // another node failed before this one started
    }

    if (run_it) {
      const NodeFn& fn = *node_fn_;
      lock.unlock();
      try {
        fn(node);
        lock.lock();
        state_[static_cast<std::size_t>(node)] = NodeState::Done;
        node_retired_locked(node);
      } catch (const Shutdown&) {
        // Torn down by another node's failure; nothing to record.
        lock.lock();
      } catch (...) {
        lock.lock();
        state_[static_cast<std::size_t>(node)] = NodeState::Done;
        fail_locked(std::current_exception());
      }
    }
    --active_workers_;
    cv_.notify_all();
  }
}

void Gang::run(const NodeFn& node_fn, const BarrierFn& barrier_cb) {
  std::unique_lock<std::mutex> lock(mu_);
  UPDSM_CHECK_MSG(active_workers_ == 0, "Gang::run is not reentrant");

  // Arm a fresh job for the pool.
  for (NodeState& s : state_) s = NodeState::Ready;
  node_fn_ = &node_fn;
  shutdown_ = false;
  first_error_ = nullptr;
  turn_ = 0;
  running_ = size();
  active_workers_ = size();
  ++job_epoch_;
  cv_.notify_all();

  // Controller loop: runs barrier callbacks while all live nodes are parked.
  for (;;) {
    if (mode_ == GangMode::Baton) {
      cv_.wait(lock, [&] { return shutdown_ || turn_ == kController; });
    } else {
      cv_.wait(lock, [&] { return shutdown_ || running_ == 0; });
    }
    if (shutdown_) break;
    if (all_done_locked()) break;

    // Every non-done node must be at the barrier; a mix of Done and
    // AtBarrier means the application's barrier counts diverged.
    bool any_done = false;
    for (const NodeState s : state_) {
      if (s == NodeState::Done) any_done = true;
    }
    if (any_done) {
      fail_locked(std::make_exception_ptr(UsageError(
          "a node exited while other nodes are still waiting at a "
          "barrier (mismatched barrier counts)")));
      break;
    }

    const std::uint64_t index = barriers_;
    lock.unlock();
    try {
      barrier_cb(index);
    } catch (...) {
      lock.lock();
      fail_locked(std::current_exception());
      break;
    }
    lock.lock();
    ++barriers_;
    int released = 0;
    for (NodeState& s : state_) {
      if (s == NodeState::AtBarrier) {
        s = NodeState::Ready;
        ++released;
      }
    }
    if (mode_ == GangMode::Baton) {
      advance_baton_locked(kController);
    } else {
      running_ = released;
      ++phase_epoch_;
      cv_.notify_all();
    }
  }

  // Wait for every worker to finish (or abandon) this job before returning,
  // so the pool is quiescent for the next run() and errors are complete.
  cv_.wait(lock, [&] { return active_workers_ == 0; });
  node_fn_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace updsm::sim
