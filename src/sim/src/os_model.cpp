#include "updsm/sim/os_model.hpp"

#include "updsm/common/rng.hpp"

namespace updsm::sim {

OsModel::OsModel(const OsCosts& costs, std::uint32_t shared_pages)
    : costs_(costs), stressed_(shared_pages >= costs.stress_threshold_pages) {}

bool OsModel::slow_page(PageId page) const {
  if (!stressed_) return false;
  // Deterministic hash-based selection: the same page is always slow, which
  // is what "location-dependent" means on the paper's SP-2 nodes.
  const std::uint64_t h = splitmix64(page.value() ^ costs_.stress_salt);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < costs_.slow_page_fraction;
}

SimTime OsModel::mprotect_cost(PageId page) {
  ++counters_.mprotects;
  if (slow_page(page)) {
    return static_cast<SimTime>(static_cast<double>(costs_.mprotect_base) *
                                costs_.stress_multiplier);
  }
  return costs_.mprotect_base;
}

SimTime OsModel::segv_cost() {
  ++counters_.segvs;
  return costs_.segv;
}

}  // namespace updsm::sim
