#include "updsm/sim/fault_plan.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

#include "updsm/common/error.hpp"
#include "updsm/common/rng.hpp"

namespace updsm::sim {
namespace {

// Hash salts separating the independent decision streams of one message.
constexpr std::uint64_t kSaltDrop = 0x6472u;   // 'dr'
constexpr std::uint64_t kSaltDup = 0x6475u;    // 'du'
constexpr std::uint64_t kSaltDelay = 0x6465u;  // 'de'
constexpr std::uint64_t kSaltStall = 0x7374u;  // 'st'

[[nodiscard]] double hash_uniform(std::uint64_t stream_seed, std::uint64_t k,
                                  std::uint64_t salt) {
  const std::uint64_t h =
      splitmix64(stream_seed ^ splitmix64(k * 4 + salt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

[[nodiscard]] int parse_msg_kind(std::string_view s) {
  for (std::size_t i = 0; i < kMsgKindCount; ++i) {
    if (s == to_string(static_cast<MsgKind>(i))) return static_cast<int>(i);
  }
  throw UsageError("faults: unknown message kind '" + std::string(s) +
                           "'");
}

[[nodiscard]] int parse_filter(std::string_view key, std::string_view s) {
  if (s == "*") return -1;
  int v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size() || v < 0) {
    throw UsageError("faults: bad " + std::string(key) + " value '" +
                             std::string(s) + "'");
  }
  return v;
}

[[nodiscard]] double parse_prob(std::string_view key, std::string_view s) {
  double v = 0.0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size() || v < 0.0 || v > 1.0 ||
      !std::isfinite(v)) {
    throw UsageError("faults: " + std::string(key) +
                             " must be a probability in [0,1], got '" +
                             std::string(s) + "'");
  }
  return v;
}

[[nodiscard]] SimTime parse_usecs(std::string_view key, std::string_view s) {
  std::int64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size() || v < 0) {
    throw UsageError("faults: bad " + std::string(key) + " value '" +
                             std::string(s) + "'");
  }
  return usec(v);
}

// Probabilities print with enough digits to round-trip exactly; trailing
// zeros are trimmed so to_string(parse(x)) is stable.
void append_prob(std::ostringstream& os, const char* key, double v) {
  char buf[64];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  os << ',' << key << '=' << std::string_view(buf, p - buf);
}

}  // namespace

std::string FaultSpec::to_string() const {
  std::ostringstream os;
  bool first_rule = true;
  for (const FaultRule& r : rules) {
    if (!first_rule) os << ';';
    first_rule = false;
    os << "kind=";
    if (r.kind < 0) {
      os << '*';
    } else {
      os << sim::to_string(static_cast<MsgKind>(r.kind));
    }
    os << ",from=";
    if (r.from < 0) {
      os << '*';
    } else {
      os << r.from;
    }
    os << ",to=";
    if (r.to < 0) {
      os << '*';
    } else {
      os << r.to;
    }
    if (r.drop > 0) append_prob(os, "drop", r.drop);
    if (r.dup > 0) append_prob(os, "dup", r.dup);
    if (r.delay > 0) {
      append_prob(os, "delay", r.delay);
      os << ",delay_us=" << r.delay_time / usec(1);
    }
    if (r.stall > 0) {
      append_prob(os, "stall", r.stall);
      os << ",stall_us=" << r.stall_time / usec(1);
    }
  }
  return os.str();
}

FaultSpec FaultSpec::parse(std::string_view text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = std::min(text.find(';', pos), text.size());
    std::string_view rule_text = text.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace (files may end with a newline).
    while (!rule_text.empty() &&
           (rule_text.front() == ' ' || rule_text.front() == '\n' ||
            rule_text.front() == '\t' || rule_text.front() == '\r')) {
      rule_text.remove_prefix(1);
    }
    while (!rule_text.empty() &&
           (rule_text.back() == ' ' || rule_text.back() == '\n' ||
            rule_text.back() == '\t' || rule_text.back() == '\r')) {
      rule_text.remove_suffix(1);
    }
    if (rule_text.empty()) {
      if (end == text.size()) break;
      continue;
    }

    FaultRule rule;
    std::size_t fpos = 0;
    while (fpos <= rule_text.size()) {
      const std::size_t fend =
          std::min(rule_text.find(',', fpos), rule_text.size());
      std::string_view field = rule_text.substr(fpos, fend - fpos);
      fpos = fend + 1;
      // Fields tolerate padding too: "kind = flush , drop = 0.1" is valid.
      auto trim = [](std::string_view s) {
        while (!s.empty() && (s.front() == ' ' || s.front() == '\n' ||
                              s.front() == '\t' || s.front() == '\r')) {
          s.remove_prefix(1);
        }
        while (!s.empty() && (s.back() == ' ' || s.back() == '\n' ||
                              s.back() == '\t' || s.back() == '\r')) {
          s.remove_suffix(1);
        }
        return s;
      };
      field = trim(field);
      if (field.empty()) {
        if (fend == rule_text.size()) break;
        continue;
      }
      const std::size_t eq = field.find('=');
      if (eq == std::string_view::npos) {
        throw UsageError("faults: expected key=value, got '" +
                                 std::string(field) + "'");
      }
      const std::string_view key = trim(field.substr(0, eq));
      const std::string_view val = trim(field.substr(eq + 1));
      if (key == "kind") {
        rule.kind = (val == "*") ? -1 : parse_msg_kind(val);
      } else if (key == "from") {
        rule.from = parse_filter(key, val);
      } else if (key == "to" || key == "node") {
        rule.to = parse_filter(key, val);
      } else if (key == "drop") {
        rule.drop = parse_prob(key, val);
      } else if (key == "dup") {
        rule.dup = parse_prob(key, val);
      } else if (key == "delay") {
        rule.delay = parse_prob(key, val);
      } else if (key == "delay_us") {
        rule.delay_time = parse_usecs(key, val);
      } else if (key == "stall") {
        rule.stall = parse_prob(key, val);
      } else if (key == "stall_us") {
        rule.stall_time = parse_usecs(key, val);
      } else {
        throw UsageError("faults: unknown key '" + std::string(key) +
                                 "'");
      }
      if (fend == rule_text.size()) break;
    }
    spec.rules.push_back(rule);
    if (end == text.size()) break;
  }
  return spec;
}

FaultPlan::FaultPlan(FaultSpec spec, std::uint64_t seed, int num_nodes)
    : spec_(std::move(spec)),
      seed_(seed),
      num_nodes_(num_nodes),
      counters_(spec_.empty() ? 0
                              : kMsgKindCount * static_cast<std::size_t>(
                                                    num_nodes * num_nodes),
                0) {}

double FaultPlan::draw(std::uint64_t stream, std::uint64_t k,
                       std::uint64_t salt) const {
  const std::uint64_t stream_seed =
      splitmix64(seed_ ^ splitmix64(stream + 1));
  return hash_uniform(stream_seed, k, salt);
}

const FaultRule* FaultPlan::match(MsgKind kind, NodeId from, NodeId to) const {
  for (const FaultRule& r : spec_.rules) {
    if (r.matches(kind, from, to)) return &r;
  }
  return nullptr;
}

FaultDecision FaultPlan::next(MsgKind kind, NodeId from, NodeId to) {
  FaultDecision d;
  if (spec_.empty()) return d;
  const std::size_t n = static_cast<std::size_t>(num_nodes_);
  const std::size_t triple = static_cast<std::size_t>(kind) * n * n +
                             from.index() * n + to.index();
  const std::uint64_t k = counters_[triple]++;
  const FaultRule* rule = match(kind, from, to);
  if (rule == nullptr) return d;
  if (rule->drop > 0 && draw(triple, k, kSaltDrop) < rule->drop) {
    d.drop = true;
    return d;  // a dropped message can be neither duplicated nor delayed
  }
  if (rule->dup > 0 && draw(triple, k, kSaltDup) < rule->dup) {
    d.duplicate = true;
  }
  if (rule->delay > 0 && draw(triple, k, kSaltDelay) < rule->delay) {
    d.extra_delay = rule->delay_time;
  }
  return d;
}

SimTime FaultPlan::stall(NodeId node, std::uint64_t barrier) const {
  for (const FaultRule& r : spec_.rules) {
    if (r.stall <= 0) continue;
    if (r.to >= 0 && r.to != static_cast<int>(node.value())) continue;
    const std::uint64_t stream =
        kMsgKindCount * static_cast<std::uint64_t>(num_nodes_) *
            static_cast<std::uint64_t>(num_nodes_) +
        node.value();
    if (draw(stream, barrier, kSaltStall) < r.stall) return r.stall_time;
    return 0;
  }
  return 0;
}

std::string FaultPlan::serialize() const {
  std::ostringstream os;
  os << "seed=" << seed_;
  const std::string body = spec_.to_string();
  if (!body.empty()) os << ';' << body;
  return os.str();
}

FaultPlan FaultPlan::deserialize(std::string_view text, int num_nodes) {
  std::uint64_t seed = 0;
  constexpr std::string_view kSeedKey = "seed=";
  if (text.substr(0, kSeedKey.size()) != kSeedKey) {
    throw UsageError(
        "fault plan: serialized form must start with 'seed='");
  }
  std::string_view rest = text.substr(kSeedKey.size());
  const std::size_t semi = rest.find(';');
  const std::string_view seed_text = rest.substr(0, semi);
  const auto [p, ec] = std::from_chars(
      seed_text.data(), seed_text.data() + seed_text.size(), seed);
  if (ec != std::errc{} || p != seed_text.data() + seed_text.size()) {
    throw UsageError("fault plan: bad seed '" +
                             std::string(seed_text) + "'");
  }
  const std::string_view body =
      semi == std::string_view::npos ? std::string_view{}
                                     : rest.substr(semi + 1);
  return FaultPlan(FaultSpec::parse(body), seed, num_nodes);
}

}  // namespace updsm::sim
