// Bounded free-list of raw byte buffers with loan accounting.
//
// The DSM layer's page-sized allocations (twins, service snapshots,
// FlushBatchWriter backing stores) cycle through pools so steady-state
// barriers allocate nothing. With the host-parallel gang those pools are
// per-worker arenas (dsm::PoolArena); the take/recycle counters let the
// pool-ownership property test prove the discipline: every loan returns to
// the arena it was taken from, so takes - recycles == buffers still live.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace updsm::mem {

class BufferPool {
 public:
  explicit BufferPool(std::size_t max_pooled = 64)
      : max_pooled_(max_pooled) {}

  /// A recycled buffer (cleared, capacity intact) or a fresh empty one.
  /// Every take opens a loan; close it with recycle().
  [[nodiscard]] std::vector<std::byte> take() {
    ++takes_;
    if (free_.empty()) return {};
    ++hits_;
    std::vector<std::byte> buffer = std::move(free_.back());
    free_.pop_back();
    buffer.clear();
    return buffer;
  }

  /// Closes a loan. Keeps the buffer for a later take() unless the pool is
  /// full or the buffer never allocated (bounded so a one-off burst cannot
  /// pin memory forever).
  void recycle(std::vector<std::byte>&& buffer) {
    ++recycles_;
    if (buffer.capacity() == 0 || free_.size() >= max_pooled_) return;
    buffer.clear();
    free_.push_back(std::move(buffer));
  }

  [[nodiscard]] std::size_t pooled() const { return free_.size(); }
  [[nodiscard]] std::uint64_t takes() const { return takes_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t recycles() const { return recycles_; }
  /// Buffers currently on loan (taken and not yet recycled).
  [[nodiscard]] std::uint64_t outstanding() const {
    return takes_ - recycles_;
  }

 private:
  std::size_t max_pooled_;
  std::vector<std::vector<std::byte>> free_;
  std::uint64_t takes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t recycles_ = 0;
};

}  // namespace updsm::mem
