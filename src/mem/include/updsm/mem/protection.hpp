// Page protection states, mirroring mprotect(PROT_NONE / PROT_READ /
// PROT_READ|PROT_WRITE) as CVM used them on AIX.
#pragma once

namespace updsm::mem {

enum class Protect : unsigned char {
  None = 0,       // invalid: any access faults
  Read = 1,       // valid for reading: writes fault (write trapping)
  ReadWrite = 2,  // fully accessible
};

[[nodiscard]] constexpr bool can_read(Protect p) { return p != Protect::None; }
[[nodiscard]] constexpr bool can_write(Protect p) {
  return p == Protect::ReadWrite;
}

[[nodiscard]] constexpr const char* to_string(Protect p) {
  switch (p) {
    case Protect::None:
      return "none";
    case Protect::Read:
      return "read";
    case Protect::ReadWrite:
      return "read-write";
  }
  return "?";
}

}  // namespace updsm::mem
