// Per-node software MMU: a private frame for every shared page plus a
// protection word. This stands in for the paper's per-node AIX address
// space; "mprotect" in the simulation is a plain protection-word write whose
// *cost* is charged by sim::OsModel at the call site in the DSM layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "updsm/common/error.hpp"
#include "updsm/common/types.hpp"
#include "updsm/mem/protection.hpp"

namespace updsm::mem {

class PageTable {
 public:
  /// Creates a table of `num_pages` pages of `page_size` bytes each, all
  /// zero-filled with Protect::None (nothing mapped yet).
  PageTable(std::uint32_t num_pages, std::uint32_t page_size);

  [[nodiscard]] std::uint32_t num_pages() const { return num_pages_; }
  [[nodiscard]] std::uint32_t page_size() const { return page_size_; }
  [[nodiscard]] std::uint64_t segment_bytes() const {
    return static_cast<std::uint64_t>(num_pages_) * page_size_;
  }

  [[nodiscard]] Protect prot(PageId page) const {
    return prot_[check(page)];
  }

  /// Raw protection change -- cost accounting is the caller's job.
  void set_prot(PageId page, Protect p) { prot_[check(page)] = p; }

  /// Mutable view of one page's private frame.
  [[nodiscard]] std::span<std::byte> frame(PageId page) {
    const std::size_t i = check(page);
    return {data_.data() + i * page_size_, page_size_};
  }
  [[nodiscard]] std::span<const std::byte> frame(PageId page) const {
    const std::size_t i = check(page);
    return {data_.data() + i * page_size_, page_size_};
  }

  /// The whole private segment (used by checksum validation and by the
  /// privileged sequential baseline).
  [[nodiscard]] std::span<std::byte> segment() {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<const std::byte> segment() const {
    return {data_.data(), data_.size()};
  }

  [[nodiscard]] PageId page_of(GlobalAddr addr) const {
    UPDSM_REQUIRE(addr < segment_bytes(),
                  "address " << addr << " beyond shared segment of "
                             << segment_bytes() << " bytes");
    return PageId{static_cast<std::uint32_t>(addr / page_size_)};
  }

 private:
  [[nodiscard]] std::size_t check(PageId page) const {
    UPDSM_CHECK_MSG(page.value() < num_pages_,
                    "page " << page << " out of range (" << num_pages_
                            << " pages)");
    return page.index();
  }

  std::uint32_t num_pages_;
  std::uint32_t page_size_;
  std::vector<Protect> prot_;
  std::vector<std::byte> data_;
};

}  // namespace updsm::mem
