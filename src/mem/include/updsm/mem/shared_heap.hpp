// Layout of the shared global address space.
//
// Applications allocate their shared arrays from this bump allocator during
// setup (before the cluster starts); the cluster then materialises one
// private PageTable per node covering heap.segment_pages() pages. Named
// allocations make diagnostics and the DESIGN.md segment-size table easy to
// produce.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "updsm/common/error.hpp"
#include "updsm/common/types.hpp"

namespace updsm::mem {

struct Allocation {
  std::string name;
  GlobalAddr addr = 0;
  std::uint64_t bytes = 0;
};

class SharedHeap {
 public:
  explicit SharedHeap(std::uint32_t page_size);

  [[nodiscard]] std::uint32_t page_size() const { return page_size_; }

  /// Allocates `bytes` aligned to `align` (power of two, default 64 so no
  /// element straddles a cache line boundary gratuitously).
  GlobalAddr alloc(std::uint64_t bytes, const std::string& name,
                   std::uint32_t align = 64);

  /// Allocates starting on a fresh page: used for arrays whose sharing the
  /// paper's compiler lays out page-aligned (avoids false sharing between
  /// unrelated arrays; within-array false sharing remains, as in CVM).
  GlobalAddr alloc_page_aligned(std::uint64_t bytes, const std::string& name);

  [[nodiscard]] std::uint64_t bytes_used() const { return top_; }

  /// Pages needed to cover the heap (minimum 1).
  [[nodiscard]] std::uint32_t segment_pages() const;

  [[nodiscard]] const std::vector<Allocation>& allocations() const {
    return allocations_;
  }

 private:
  std::uint32_t page_size_;
  std::uint64_t top_ = 0;
  std::vector<Allocation> allocations_;
};

}  // namespace updsm::mem
