// Run-length-encoded page diffs (paper §2.1.1).
//
// A diff captures the modifications made to one virtual-memory page as the
// byte ranges where the current page contents differ from the `twin` (the
// copy snapshotted at the first write access of the epoch). Because the
// studied programs are data-race-free, concurrent diffs of the same page
// touch disjoint ranges and can be applied to a common base in any order
// (property-tested in tests/mem/diff_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "updsm/common/error.hpp"

namespace updsm::mem {

/// One modified byte range within a page.
struct DiffRun {
  std::uint32_t offset = 0;  // byte offset within the page
  std::uint32_t length = 0;  // bytes of payload
};

class Diff {
 public:
  Diff() = default;

  /// Builds the diff `cur - twin`. Both spans must be the same length
  /// (one page). Adjacent modified words are coalesced into single runs.
  [[nodiscard]] static Diff create(std::span<const std::byte> twin,
                                   std::span<const std::byte> cur);

  /// A degenerate diff covering the whole page in one run: applying it
  /// reproduces `contents` on any base. Used when a single-writer page
  /// re-enters normal coherence and its accumulated silent modifications
  /// must be publishable under the old write-notice id.
  [[nodiscard]] static Diff full_page(std::span<const std::byte> contents);

  /// Applies this diff to `dst` (same page length as at creation).
  void apply(std::span<std::byte> dst) const;

  /// True when the page was not actually modified (zero runs). bar-s uses
  /// this to suppress updates for predicted-but-unwritten pages (§4.1).
  [[nodiscard]] bool empty() const { return runs_.empty(); }

  [[nodiscard]] std::size_t run_count() const { return runs_.size(); }
  [[nodiscard]] std::span<const DiffRun> runs() const { return runs_; }

  /// Bytes of modified payload.
  [[nodiscard]] std::uint64_t payload_bytes() const { return data_.size(); }

  /// Bytes this diff occupies on the wire: run table + payload.
  [[nodiscard]] std::uint64_t wire_bytes() const {
    return runs_.size() * sizeof(DiffRun) + data_.size();
  }

  /// Bytes this diff occupies in memory while retained (lmw garbage-
  /// collection statistics, paper §2.2 "voracious appetites for memory").
  [[nodiscard]] std::uint64_t memory_bytes() const {
    return sizeof(Diff) + runs_.capacity() * sizeof(DiffRun) +
           data_.capacity();
  }

  /// True if the modified ranges of the two diffs intersect; data-race-free
  /// programs never produce overlapping concurrent diffs.
  [[nodiscard]] bool overlaps(const Diff& other) const;

  /// True if every byte range of `other` is contained in this diff's
  /// ranges: applying this diff supersedes applying `other` first (diff
  /// squashing in homeless protocols).
  [[nodiscard]] bool covers(const Diff& other) const;

 private:
  std::vector<DiffRun> runs_;
  std::vector<std::byte> data_;  // concatenated run payloads
};

}  // namespace updsm::mem
