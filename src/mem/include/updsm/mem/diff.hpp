// Run-length-encoded page diffs (paper §2.1.1).
//
// A diff captures the modifications made to one virtual-memory page as the
// byte ranges where the current page contents differ from the `twin` (the
// copy snapshotted at the first write access of the epoch). Because the
// studied programs are data-race-free, concurrent diffs of the same page
// touch disjoint ranges and can be applied to a common base in any order
// (property-tested in tests/mem/diff_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "updsm/common/error.hpp"

namespace updsm::mem {

/// One modified byte range within a page.
struct DiffRun {
  std::uint32_t offset = 0;  // byte offset within the page
  std::uint32_t length = 0;  // bytes of payload
};

class Diff {
 public:
  Diff() = default;

  /// Builds the diff `cur - twin`. Both spans must be the same length
  /// (one page). Adjacent modified words are coalesced into single runs.
  [[nodiscard]] static Diff create(std::span<const std::byte> twin,
                                   std::span<const std::byte> cur);

  /// Like create(), but rebuilds into `out`, reusing whatever run/payload
  /// capacity it already owns (the diff-pipeline hot loop creates one diff
  /// per twinned page per barrier; recycling spent diffs makes that loop
  /// allocation-free in steady state).
  static void create_into(Diff& out, std::span<const std::byte> twin,
                          std::span<const std::byte> cur);

  /// A degenerate diff covering the whole page in one run: applying it
  /// reproduces `contents` on any base. Used when a single-writer page
  /// re-enters normal coherence and its accumulated silent modifications
  /// must be publishable under the old write-notice id.
  [[nodiscard]] static Diff full_page(std::span<const std::byte> contents);

  /// Applies this diff to `dst` (same page length as at creation).
  void apply(std::span<std::byte> dst) const;

  /// True when the page was not actually modified (zero runs). bar-s uses
  /// this to suppress updates for predicted-but-unwritten pages (§4.1).
  [[nodiscard]] bool empty() const { return runs_.empty(); }

  /// Drops the runs and payload but keeps the allocated capacity, readying
  /// the object for create_into() reuse.
  void clear() {
    runs_.clear();
    data_.clear();
  }

  [[nodiscard]] std::size_t run_count() const { return runs_.size(); }
  [[nodiscard]] std::span<const DiffRun> runs() const { return runs_; }

  /// Concatenated run payloads, in run order (the wire body of the diff).
  [[nodiscard]] std::span<const std::byte> payload() const { return data_; }

  /// Rebuilds this diff from an already-encoded run table + payload -- the
  /// receive side of the aggregated wire format. Reuses whatever capacity
  /// the object holds; `payload` must be exactly the runs' summed length.
  void assign(std::span<const DiffRun> runs,
              std::span<const std::byte> payload) {
    std::uint64_t total = 0;
    for (const DiffRun& r : runs) total += r.length;
    UPDSM_CHECK(total == payload.size());
    runs_.assign(runs.begin(), runs.end());
    data_.assign(payload.begin(), payload.end());
  }

  /// Bytes of modified payload.
  [[nodiscard]] std::uint64_t payload_bytes() const { return data_.size(); }

  /// Bytes this diff occupies on the wire: run table + payload.
  [[nodiscard]] std::uint64_t wire_bytes() const {
    return runs_.size() * sizeof(DiffRun) + data_.size();
  }

  /// Bytes this diff occupies in memory while retained (lmw garbage-
  /// collection statistics, paper §2.2 "voracious appetites for memory").
  /// Content-based (run table + payload), not capacity-based, so the
  /// accounting -- and the GC trigger derived from it -- is a pure function
  /// of the diffed data, independent of buffer-pool reuse history.
  [[nodiscard]] std::uint64_t memory_bytes() const {
    return sizeof(Diff) + runs_.size() * sizeof(DiffRun) + data_.size();
  }

  /// True if the modified ranges of the two diffs intersect; data-race-free
  /// programs never produce overlapping concurrent diffs.
  [[nodiscard]] bool overlaps(const Diff& other) const;

  /// True if every byte range of `other` is contained in this diff's
  /// ranges: applying this diff supersedes applying `other` first (diff
  /// squashing in homeless protocols).
  [[nodiscard]] bool covers(const Diff& other) const;

 private:
  std::vector<DiffRun> runs_;
  std::vector<std::byte> data_;  // concatenated run payloads
};

/// Bounded free-list of spent Diff objects. Protocol epochs create and
/// destroy one diff per twinned page; routing the dead ones through a pool
/// lets create_into() reuse their buffers instead of reallocating. The
/// take/recycle counters carry the loan-accounting invariant of the
/// per-worker arenas (takes - recycles == diffs still live); pool contents
/// never influence results, since takers clear or overwrite the buffers.
class DiffPool {
 public:
  explicit DiffPool(std::size_t max_pooled = 64)
      : max_pooled_(max_pooled) {}

  /// A recycled diff (cleared, capacity intact), or a fresh one. Every
  /// take opens a loan; close it with recycle().
  [[nodiscard]] Diff take() {
    ++takes_;
    if (pool_.empty()) return Diff{};
    ++hits_;
    Diff d = std::move(pool_.back());
    pool_.pop_back();
    return d;
  }

  /// Clears `diff` and keeps its buffers for a later take(). Bounded so a
  /// one-off burst of diffs cannot pin memory forever.
  void recycle(Diff&& diff) {
    ++recycles_;
    if (pool_.size() >= max_pooled_) return;
    diff.clear();
    pool_.push_back(std::move(diff));
  }

  [[nodiscard]] std::size_t size() const { return pool_.size(); }
  [[nodiscard]] std::uint64_t takes() const { return takes_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t recycles() const { return recycles_; }
  /// Diffs currently on loan (taken and not yet recycled).
  [[nodiscard]] std::uint64_t outstanding() const {
    return takes_ - recycles_;
  }

 private:
  std::size_t max_pooled_;
  std::vector<Diff> pool_;
  std::uint64_t takes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t recycles_ = 0;
};

}  // namespace updsm::mem
