#include "updsm/mem/page_table.hpp"

namespace updsm::mem {

PageTable::PageTable(std::uint32_t num_pages, std::uint32_t page_size)
    : num_pages_(num_pages), page_size_(page_size) {
  UPDSM_REQUIRE(num_pages > 0, "page table needs at least one page");
  UPDSM_REQUIRE(page_size >= 64 && (page_size & (page_size - 1)) == 0,
                "page size must be a power of two >= 64, got " << page_size);
  prot_.assign(num_pages, Protect::None);
  data_.assign(static_cast<std::size_t>(num_pages) * page_size,
               std::byte{0});
}

}  // namespace updsm::mem
