#include "updsm/mem/shared_heap.hpp"

namespace updsm::mem {

SharedHeap::SharedHeap(std::uint32_t page_size) : page_size_(page_size) {
  UPDSM_REQUIRE(page_size >= 64 && (page_size & (page_size - 1)) == 0,
                "page size must be a power of two >= 64, got " << page_size);
}

GlobalAddr SharedHeap::alloc(std::uint64_t bytes, const std::string& name,
                             std::uint32_t align) {
  UPDSM_REQUIRE(bytes > 0, "zero-byte allocation '" << name << "'");
  UPDSM_REQUIRE(align > 0 && (align & (align - 1)) == 0,
                "alignment must be a power of two, got " << align);
  top_ = (top_ + align - 1) & ~static_cast<std::uint64_t>(align - 1);
  const GlobalAddr addr = top_;
  top_ += bytes;
  allocations_.push_back(Allocation{name, addr, bytes});
  return addr;
}

GlobalAddr SharedHeap::alloc_page_aligned(std::uint64_t bytes,
                                          const std::string& name) {
  return alloc(bytes, name, page_size_);
}

std::uint32_t SharedHeap::segment_pages() const {
  const std::uint64_t pages = (top_ + page_size_ - 1) / page_size_;
  return static_cast<std::uint32_t>(pages == 0 ? 1 : pages);
}

}  // namespace updsm::mem
