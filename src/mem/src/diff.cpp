#include "updsm/mem/diff.hpp"

#include <cstring>

namespace updsm::mem {
namespace {

/// Word used for the fast comparison sweep; pages are always a multiple of
/// this size (PageTable enforces power-of-two >= 64).
using Word = std::uint64_t;

}  // namespace

Diff Diff::create(std::span<const std::byte> twin,
                  std::span<const std::byte> cur) {
  UPDSM_CHECK_MSG(twin.size() == cur.size(),
                  "twin/current size mismatch: " << twin.size() << " vs "
                                                 << cur.size());
  UPDSM_CHECK(twin.size() % sizeof(Word) == 0);

  Diff diff;
  const std::size_t words = twin.size() / sizeof(Word);
  std::size_t w = 0;
  while (w < words) {
    // Skip identical words.
    Word a;
    Word b;
    std::memcpy(&a, twin.data() + w * sizeof(Word), sizeof(Word));
    std::memcpy(&b, cur.data() + w * sizeof(Word), sizeof(Word));
    if (a == b) {
      ++w;
      continue;
    }
    // Extend the run over consecutive differing words. Word granularity
    // (rather than byte) matches CVM's diffing and keeps runs aligned.
    const std::size_t start = w;
    while (w < words) {
      std::memcpy(&a, twin.data() + w * sizeof(Word), sizeof(Word));
      std::memcpy(&b, cur.data() + w * sizeof(Word), sizeof(Word));
      if (a == b) break;
      ++w;
    }
    DiffRun run;
    run.offset = static_cast<std::uint32_t>(start * sizeof(Word));
    run.length = static_cast<std::uint32_t>((w - start) * sizeof(Word));
    const std::size_t old_size = diff.data_.size();
    diff.data_.resize(old_size + run.length);
    std::memcpy(diff.data_.data() + old_size, cur.data() + run.offset,
                run.length);
    diff.runs_.push_back(run);
  }
  return diff;
}

Diff Diff::full_page(std::span<const std::byte> contents) {
  Diff diff;
  DiffRun run;
  run.offset = 0;
  run.length = static_cast<std::uint32_t>(contents.size());
  diff.runs_.push_back(run);
  diff.data_.assign(contents.begin(), contents.end());
  return diff;
}

void Diff::apply(std::span<std::byte> dst) const {
  std::size_t data_pos = 0;
  for (const DiffRun& run : runs_) {
    UPDSM_CHECK_MSG(static_cast<std::size_t>(run.offset) + run.length <=
                        dst.size(),
                    "diff run [" << run.offset << ", +" << run.length
                                 << ") beyond page of " << dst.size());
    std::memcpy(dst.data() + run.offset, data_.data() + data_pos, run.length);
    data_pos += run.length;
  }
  UPDSM_CHECK(data_pos == data_.size());
}

bool Diff::covers(const Diff& other) const {
  // Both run lists are sorted by offset; sweep `other`'s runs against ours.
  std::size_t i = 0;
  for (const DiffRun& o : other.runs_) {
    std::uint32_t pos = o.offset;
    const std::uint32_t end = o.offset + o.length;
    while (pos < end) {
      while (i < runs_.size() && runs_[i].offset + runs_[i].length <= pos) {
        ++i;
      }
      if (i == runs_.size() || runs_[i].offset > pos) return false;
      pos = runs_[i].offset + runs_[i].length;
    }
  }
  return true;
}

bool Diff::overlaps(const Diff& other) const {
  // Runs are sorted by offset by construction; merge-scan.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < runs_.size() && j < other.runs_.size()) {
    const DiffRun& a = runs_[i];
    const DiffRun& b = other.runs_[j];
    const std::uint32_t a_end = a.offset + a.length;
    const std::uint32_t b_end = b.offset + b.length;
    if (a_end <= b.offset) {
      ++i;
    } else if (b_end <= a.offset) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace updsm::mem
