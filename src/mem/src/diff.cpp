#include "updsm/mem/diff.hpp"

#include <algorithm>
#include <cstring>

namespace updsm::mem {
namespace {

/// Word used for the fast comparison sweep; pages are always a multiple of
/// this size (PageTable enforces power-of-two >= 64).
using Word = std::uint64_t;

/// Block used for the memcmp prescan that skips clean stretches without
/// touching the per-word loop. Must be a multiple of sizeof(Word); 64
/// matches a cache line, so a clean block costs one resident-line compare.
constexpr std::size_t kBlock = 64;
constexpr std::size_t kWordsPerBlock = kBlock / sizeof(Word);

}  // namespace

Diff Diff::create(std::span<const std::byte> twin,
                  std::span<const std::byte> cur) {
  Diff diff;
  create_into(diff, twin, cur);
  return diff;
}

void Diff::create_into(Diff& out, std::span<const std::byte> twin,
                       std::span<const std::byte> cur) {
  UPDSM_CHECK_MSG(twin.size() == cur.size(),
                  "twin/current size mismatch: " << twin.size() << " vs "
                                                 << cur.size());
  UPDSM_CHECK(twin.size() % sizeof(Word) == 0);
  out.clear();

  const std::size_t words = twin.size() / sizeof(Word);
  const std::size_t full_blocks = twin.size() / kBlock;

  // Prescan: memcmp whole blocks to size runs_/data_ up front (no growth
  // reallocations in the extension loop) and to bail out on the very common
  // identical-page case without ever entering the per-word path. A run can
  // never cross a clean block (all its words match), so the span count here
  // is a true upper bound on the run count.
  std::size_t dirty_blocks = 0;
  std::size_t dirty_spans = 0;
  bool prev_dirty = false;
  for (std::size_t b = 0; b < full_blocks; ++b) {
    const bool dirty = std::memcmp(twin.data() + b * kBlock,
                                   cur.data() + b * kBlock, kBlock) != 0;
    dirty_blocks += dirty;
    dirty_spans += dirty && !prev_dirty;
    prev_dirty = dirty;
  }
  const std::size_t tail_bytes = twin.size() - full_blocks * kBlock;
  if (tail_bytes != 0 &&
      std::memcmp(twin.data() + full_blocks * kBlock,
                  cur.data() + full_blocks * kBlock, tail_bytes) != 0) {
    ++dirty_blocks;
    if (!prev_dirty) ++dirty_spans;
  }
  if (dirty_blocks == 0) return;
  out.runs_.reserve(dirty_spans);
  out.data_.reserve(std::min(dirty_blocks * kBlock, twin.size()));

  std::size_t w = 0;
  while (w < words) {
    // Re-skip clean blocks when word-aligned to one; between blocks (and in
    // the tail) fall back to skipping identical words one at a time.
    if (w % kWordsPerBlock == 0) {
      while (w + kWordsPerBlock <= words &&
             std::memcmp(twin.data() + w * sizeof(Word),
                         cur.data() + w * sizeof(Word), kBlock) == 0) {
        w += kWordsPerBlock;
      }
      if (w >= words) break;
    }
    Word a;
    Word b;
    std::memcpy(&a, twin.data() + w * sizeof(Word), sizeof(Word));
    std::memcpy(&b, cur.data() + w * sizeof(Word), sizeof(Word));
    if (a == b) {
      ++w;
      continue;
    }
    // Extend the run over consecutive differing words. Word granularity
    // (rather than byte) matches CVM's diffing and keeps runs aligned.
    const std::size_t start = w;
    while (w < words) {
      std::memcpy(&a, twin.data() + w * sizeof(Word), sizeof(Word));
      std::memcpy(&b, cur.data() + w * sizeof(Word), sizeof(Word));
      if (a == b) break;
      ++w;
    }
    DiffRun run;
    run.offset = static_cast<std::uint32_t>(start * sizeof(Word));
    run.length = static_cast<std::uint32_t>((w - start) * sizeof(Word));
    const std::size_t old_size = out.data_.size();
    out.data_.resize(old_size + run.length);
    std::memcpy(out.data_.data() + old_size, cur.data() + run.offset,
                run.length);
    out.runs_.push_back(run);
  }
}

Diff Diff::full_page(std::span<const std::byte> contents) {
  Diff diff;
  DiffRun run;
  run.offset = 0;
  run.length = static_cast<std::uint32_t>(contents.size());
  diff.runs_.push_back(run);
  diff.data_.assign(contents.begin(), contents.end());
  return diff;
}

void Diff::apply(std::span<std::byte> dst) const {
  std::size_t data_pos = 0;
  for (const DiffRun& run : runs_) {
    UPDSM_CHECK_MSG(static_cast<std::size_t>(run.offset) + run.length <=
                        dst.size(),
                    "diff run [" << run.offset << ", +" << run.length
                                 << ") beyond page of " << dst.size());
    std::memcpy(dst.data() + run.offset, data_.data() + data_pos, run.length);
    data_pos += run.length;
  }
  UPDSM_CHECK(data_pos == data_.size());
}

bool Diff::covers(const Diff& other) const {
  // Both run lists are sorted by offset; sweep `other`'s runs against ours.
  std::size_t i = 0;
  for (const DiffRun& o : other.runs_) {
    std::uint32_t pos = o.offset;
    const std::uint32_t end = o.offset + o.length;
    while (pos < end) {
      while (i < runs_.size() && runs_[i].offset + runs_[i].length <= pos) {
        ++i;
      }
      if (i == runs_.size() || runs_[i].offset > pos) return false;
      pos = runs_[i].offset + runs_[i].length;
    }
  }
  return true;
}

bool Diff::overlaps(const Diff& other) const {
  // Runs are sorted by offset by construction; merge-scan.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < runs_.size() && j < other.runs_.size()) {
    const DiffRun& a = runs_[i];
    const DiffRun& b = other.runs_[j];
    const std::uint32_t a_end = a.offset + a.length;
    const std::uint32_t b_end = b.offset + b.length;
    if (a_end <= b.offset) {
      ++i;
    } else if (b_end <= a.offset) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace updsm::mem
