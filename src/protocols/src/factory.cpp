#include "updsm/protocols/factory.hpp"

#include "updsm/common/error.hpp"
#include "updsm/dsm/null_protocol.hpp"
#include "updsm/protocols/adaptive.hpp"
#include "updsm/protocols/async_update.hpp"
#include "updsm/protocols/bar.hpp"
#include "updsm/protocols/lmw.hpp"
#include "updsm/protocols/sc_sw.hpp"

namespace updsm::protocols {

const char* to_string(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::LmwI:
      return "lmw-i";
    case ProtocolKind::LmwU:
      return "lmw-u";
    case ProtocolKind::BarI:
      return "bar-i";
    case ProtocolKind::BarU:
      return "bar-u";
    case ProtocolKind::BarS:
      return "bar-s";
    case ProtocolKind::BarM:
      return "bar-m";
    case ProtocolKind::Adaptive:
      return "adaptive";
    case ProtocolKind::ScSw:
      return "sc-sw";
    case ProtocolKind::Null:
      return "null";
    case ProtocolKind::AsyncU:
      return "async-u";
    case ProtocolKind::AsyncI:
      return "async-i";
  }
  return "?";
}

ProtocolKind protocol_from_string(std::string_view name) {
  if (name == "lmw-i") return ProtocolKind::LmwI;
  if (name == "lmw-u") return ProtocolKind::LmwU;
  if (name == "bar-i") return ProtocolKind::BarI;
  if (name == "bar-u") return ProtocolKind::BarU;
  if (name == "bar-s") return ProtocolKind::BarS;
  if (name == "bar-m") return ProtocolKind::BarM;
  if (name == "adaptive") return ProtocolKind::Adaptive;
  if (name == "sc-sw") return ProtocolKind::ScSw;
  if (name == "null") return ProtocolKind::Null;
  if (name == "async-u") return ProtocolKind::AsyncU;
  if (name == "async-i") return ProtocolKind::AsyncI;
  throw UsageError("unknown protocol name: " + std::string(name));
}

std::unique_ptr<dsm::CoherenceProtocol> make_protocol(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::LmwI:
      return std::make_unique<LmwProtocol>(/*use_updates=*/false);
    case ProtocolKind::LmwU:
      return std::make_unique<LmwProtocol>(/*use_updates=*/true);
    case ProtocolKind::BarI:
      return std::make_unique<BarProtocol>(BarMode::Invalidate);
    case ProtocolKind::BarU:
      return std::make_unique<BarProtocol>(BarMode::Update);
    case ProtocolKind::BarS:
      return std::make_unique<BarProtocol>(BarMode::OverdriveS);
    case ProtocolKind::BarM:
      return std::make_unique<BarProtocol>(BarMode::OverdriveM);
    case ProtocolKind::Adaptive:
      return std::make_unique<AdaptiveProtocol>();
    case ProtocolKind::ScSw:
      return std::make_unique<ScSwProtocol>();
    case ProtocolKind::Null:
      return std::make_unique<dsm::NullProtocol>();
    case ProtocolKind::AsyncU:
      return std::make_unique<AsyncProtocol>(AsyncMode::Update);
    case ProtocolKind::AsyncI:
      return std::make_unique<AsyncProtocol>(AsyncMode::Invalidate);
  }
  throw InternalError("unreachable protocol kind");
}

std::vector<ProtocolKind> base_protocols() {
  return {ProtocolKind::LmwI, ProtocolKind::LmwU, ProtocolKind::BarI,
          ProtocolKind::BarU};
}

std::vector<ProtocolKind> all_paper_protocols() {
  return {ProtocolKind::LmwI, ProtocolKind::LmwU, ProtocolKind::BarI,
          ProtocolKind::BarU, ProtocolKind::BarS, ProtocolKind::BarM};
}

std::vector<ProtocolKind> all_protocols_with_adaptive() {
  std::vector<ProtocolKind> kinds = all_paper_protocols();
  kinds.push_back(ProtocolKind::Adaptive);
  return kinds;
}

}  // namespace updsm::protocols
