#include "updsm/protocols/lmw.hpp"

#include <algorithm>
#include <map>

#include "updsm/mem/diff.hpp"

namespace updsm::protocols {

namespace {
using dsm::DiffStore;
using dsm::WriteNotice;
using mem::Diff;
using mem::Protect;
using sim::MsgKind;
using sim::SimTime;
}  // namespace

void LmwProtocol::init(dsm::Runtime& rt) {
  rt_ = &rt;
  nodes_.resize(static_cast<std::size_t>(rt.num_nodes()));
  for (int i = 0; i < rt.num_nodes(); ++i) {
    auto& node_state = nodes_[static_cast<std::size_t>(i)];
    node_state.pages.resize(rt.num_pages());
    // Route every pooled allocation of this node (twins, service snapshots,
    // retained/created diffs, stored update copies) through the arena of
    // the gang worker that owns it: uncontended mid-phase, deterministic
    // loan accounting at the barrier.
    dsm::PoolArena& arena = rt.arena_for_node(NodeId{static_cast<std::uint32_t>(i)});
    node_state.twins.bind_pool(&arena.pages);
    node_state.snapshots.bind_pool(&arena.pages);
    node_state.created.bind_pool(&arena.diffs);
    node_state.stored_updates.bind_pool(&arena.diffs);
  }
  // Every node starts with an identical (zero-filled) valid copy of the
  // whole segment, write-protected so that first writes are trapped.
  for (int i = 0; i < rt.num_nodes(); ++i) {
    const NodeId n{static_cast<std::uint32_t>(i)};
    for (std::uint32_t p = 0; p < rt.num_pages(); ++p) {
      rt.table(n).set_prot(PageId{p}, Protect::Read);
    }
  }
}

bool LmwProtocol::validate_page(NodeId n, PageId page, bool demand) {
  NodeState& st = node(n);
  PageLocal& pl = st.pages[page.index()];
  UPDSM_CHECK_MSG(!pl.pending.empty(),
                  "page " << page << " invalid on node " << n
                          << " but has no pending write notices");

  // Single-writer fast path: if the newest notice's creator holds the page
  // exclusively, fetch the whole page (one request/reply pair, like a
  // home-based miss). The copy is served from the creator's *service
  // snapshot* -- the page as of the previous barrier -- not its live frame:
  // the creator may be writing the frame concurrently under the parallel
  // gang, and LRC does not order those same-epoch writes before this
  // access anyway. The creator-side exclusivity exit (twin, republished
  // whole-page diff) mutates creator state and is therefore deferred to
  // barrier_begin() via the per-node fast_fetches log; until then the
  // `exclusive` flag stays frozen, so every same-epoch requester takes
  // this same path and is served the same bytes.
  const NodeId newest_creator = pl.pending.back().creator;
  if (node(newest_creator).pages[page.index()].exclusive) {
    NodeState& cs = node(newest_creator);
    const std::uint32_t psize = rt_->page_size();
    rt_->roundtrip(n, newest_creator, MsgKind::DataRequest, 16, psize + 32,
                   static_cast<SimTime>(rt_->costs().dsm.copy_per_byte_ns *
                                        static_cast<double>(psize)));
    auto src = cs.snapshots.get(page);
    auto dst = rt_->table(n).frame(page);
    std::memcpy(dst.data(), src.data(), dst.size());
    rt_->charge_dsm(n, 0, rt_->costs().dsm.copy_per_byte_ns, psize);
    rt_->mprotect(n, page, Protect::Read);
    for (const WriteNotice& wn : pl.pending) {
      st.stored_updates.erase(DiffStore::Key{wn.page, wn.epoch, wn.creator});
    }
    pl.pending.clear();
    // Copyset learning happens at fetch time (commutative atomic add); the
    // rest of the creator-side exit replays at the next barrier.
    if (demand) cs.pages[page.index()].copyset.add(n);
    st.fast_fetches.emplace_back(newest_creator, page);
    ++rt_->counters().pages_fetched;
    if (demand) ++rt_->counters().remote_misses;
    return true;
  }

  // Which diffs are already available locally? (lmw-u stores flushed
  // updates; lmw-i never has any.)
  std::vector<const Diff*> to_apply(pl.pending.size(), nullptr);
  // Notices whose diffs must be fetched, grouped by creator.
  std::map<NodeId, std::vector<std::size_t>> fetch_by_creator;
  for (std::size_t i = 0; i < pl.pending.size(); ++i) {
    const WriteNotice& wn = pl.pending[i];
    const DiffStore::Key key{wn.page, wn.epoch, wn.creator};
    if (const Diff* stored = st.stored_updates.find(key)) {
      to_apply[i] = stored;
    } else {
      fetch_by_creator[wn.creator].push_back(i);
    }
  }

  const bool missed = !fetch_by_creator.empty();
  for (auto& [creator, indices] : fetch_by_creator) {
    // One request naming all needed diffs; one reply carrying them. Diffs
    // are retained by creators until garbage collection (paper §2.2), but
    // squashing may have replaced an old diff with a newer covering one --
    // which is then served (and shipped) once for all the notices it
    // subsumes.
    std::uint64_t reply_bytes = 8;
    SimTime serve_work = 0;
    const Diff* last_served = nullptr;
    for (const std::size_t i : indices) {
      const WriteNotice& wn = pl.pending[i];
      const Diff* diff = node(creator).created.find_or_successor(
          DiffStore::Key{wn.page, wn.epoch, wn.creator});
      UPDSM_CHECK_MSG(diff != nullptr, "creator " << creator
                                                  << " lost diff for page "
                                                  << wn.page);
      to_apply[i] = diff;
      if (diff != last_served) {
        reply_bytes += diff->wire_bytes();
        serve_work += static_cast<SimTime>(
            rt_->costs().dsm.copy_per_byte_ns *
            static_cast<double>(diff->wire_bytes()));
        last_served = diff;
      }
    }
    rt_->roundtrip(n, creator, MsgKind::DataRequest,
                   16 + 8 * indices.size(), reply_bytes, serve_work);
    // If the creator already knew this consumer, lmw-u pushed these diffs
    // at the barrier and the stored copy should have been found above --
    // this fetch exists only because an unreliable push was lost. (Checked
    // before the copyset add below, which is what records the knowledge.)
    if (use_updates_ && node(creator).pages[page.index()].copyset.contains(n)) {
      ++rt_->counters().recovery_faults;
    }
    // The creator learns a consumer: copyset learning (paper §2.1.2).
    if (demand) node(creator).pages[page.index()].copyset.add(n);
  }

  // Apply in (epoch, creator) order onto the stale local copy. The real
  // handler write-enables the page, applies, then restores read protection:
  // two mprotect calls.
  rt_->mprotect(n, page, Protect::ReadWrite);
  auto frame = rt_->table(n).frame(page);
  const Diff* last_applied = nullptr;
  for (std::size_t i = 0; i < pl.pending.size(); ++i) {
    UPDSM_CHECK(to_apply[i] != nullptr);
    if (to_apply[i] == last_applied) continue;  // squashed duplicate
    last_applied = to_apply[i];
    to_apply[i]->apply(frame);
    rt_->charge_dsm(n, 0, rt_->costs().dsm.diff_apply_per_byte_ns,
                    to_apply[i]->payload_bytes());
    // Consumed stored updates are dropped (their keys may or may not have
    // been in the store; erase is a no-op for fetched ones).
    const WriteNotice& wn = pl.pending[i];
    st.stored_updates.erase(DiffStore::Key{wn.page, wn.epoch, wn.creator});
  }
  rt_->mprotect(n, page, Protect::Read);
  pl.pending.clear();
  if (missed && demand) ++rt_->counters().remote_misses;
  return missed;
}

void LmwProtocol::read_fault(NodeId n, PageId page) {
  // Only invalid pages raise read faults under lmw.
  UPDSM_CHECK(rt_->table(n).prot(page) == Protect::None);
  validate_page(n, page);
}

void LmwProtocol::write_fault(NodeId n, PageId page) {
  NodeState& st = node(n);
  if (rt_->table(n).prot(page) == Protect::None) {
    // Bring the copy current before twinning it (the twin must be the
    // pre-epoch contents, or the diff would swallow foreign data).
    validate_page(n, page);
  }
  st.twins.create(page, rt_->table(n).frame(page));
  ++rt_->counters().twins_created;
  rt_->charge_dsm(n, 0, rt_->costs().dsm.copy_per_byte_ns,
                  rt_->page_size());
  rt_->mprotect(n, page, Protect::ReadWrite);
}

void LmwProtocol::barrier_begin() {
  // Replay the phase's single-writer fast-path fetches: the creator-side
  // exclusivity exits that the serializing baton performed inline at fetch
  // time. Entries are merged over all nodes, sorted and deduplicated, so
  // the replay order -- and hence every downstream effect -- is independent
  // of mid-phase scheduling. Several nodes may have fetched the same
  // exclusive page in one phase; the exit happens once.
  std::vector<std::pair<NodeId, PageId>> exits;
  for (NodeState& st : nodes_) {
    exits.insert(exits.end(), st.fast_fetches.begin(), st.fast_fetches.end());
    st.fast_fetches.clear();
  }
  if (exits.empty()) return;
  std::sort(exits.begin(), exits.end());
  exits.erase(std::unique(exits.begin(), exits.end()), exits.end());

  for (const auto& [creator, page] : exits) {
    NodeState& cs = node(creator);
    PageLocal& cpl = cs.pages[page.index()];
    UPDSM_CHECK_MSG(cpl.exclusive, "fast-path fetch logged for page "
                                       << page << " but creator " << creator
                                       << " is not exclusive");
    cpl.exclusive = false;
    // Writes must be trapped again next epoch; the twin snapshots the
    // *served* contents (the previous-barrier snapshot), so the diff taken
    // at this barrier's arrival captures every silent single-writer write
    // of the finished epoch and announces it with a fresh notice.
    const auto snapshot = cs.snapshots.get(page);
    cs.twins.create(page, snapshot);
    rt_->charge_dsm(creator, 0, rt_->costs().dsm.copy_per_byte_ns,
                    rt_->page_size(), /*sigio=*/true);
    ++rt_->counters().twins_created;
    // The silent modifications accumulated during single-writer mode were
    // never diffed; republish the creator's newest diff id as a whole-page
    // diff so that OTHER nodes still holding the old notice reconstruct
    // the served contents rather than the pre-exclusivity state.
    cs.created.put(DiffStore::Key{page, cpl.last_notice_epoch, creator},
                   mem::Diff::full_page(snapshot));
    ++rt_->counters().private_exits;
    cs.snapshots.discard(page);
  }
}

void LmwProtocol::barrier_arrive(NodeId n) {
  NodeState& st = node(n);
  const EpochId epoch = rt_->epoch();
  const auto& dsm_costs = rt_->costs().dsm;

  // Re-snapshot still-exclusive pages: the frame now holds the epoch's
  // silent writes, and the snapshot must track the page barrier-to-barrier
  // so next epoch's fast-path fetches serve current (barrier-frozen) data.
  for (const PageId page : st.snapshots.pages_sorted()) {
    st.snapshots.refresh(page, rt_->table(n).frame(page));
  }

  for (const PageId page : st.twins.pages_sorted()) {
    Diff diff = st.created.take_scratch();
    Diff::create_into(diff, st.twins.get(page), rt_->table(n).frame(page));
    rt_->charge_dsm(n, dsm_costs.diff_fixed, dsm_costs.diff_create_per_byte_ns,
                    rt_->page_size());
    ++rt_->counters().diffs_created;
    st.twins.discard(page);
    // Re-arm write trapping for the next epoch.
    rt_->mprotect(n, page, Protect::Read);
    if (diff.empty()) {
      // The write was trapped but left no net modification. Consumers stay
      // valid (nothing to propagate), but a page with NO consumers is a
      // single-writer candidate: emit one (empty) notice so every stale
      // replica is invalidated and the release-time entry check is sound.
      ++rt_->counters().zero_diffs;
      PageLocal& pl = st.pages[page.index()];
      if (pl.copyset.empty() && !pl.exclusive) {
        epoch_notices_.push_back(WriteNotice{page, n, epoch});
        st.epoch_diffed.push_back(page);
        pl.last_notice_epoch = epoch;
        rt_->add_arrival_payload(n, WriteNotice::kWireBytes);
        st.created.squash_put(DiffStore::Key{page, epoch, n},
                              std::move(diff));
      } else {
        st.created.recycle(std::move(diff));
      }
      continue;
    }

    const WriteNotice notice{page, n, epoch};
    epoch_notices_.push_back(notice);
    st.epoch_diffed.push_back(page);
    st.pages[page.index()].last_notice_epoch = epoch;
    // The notice itself rides this node's barrier arrival message.
    rt_->add_arrival_payload(n, WriteNotice::kWireBytes);

    if (use_updates_) {
      // Push the diff, unreliably, to every known consumer; storage happens
      // on delivery only (a dropped batch loses all its records and heals
      // through the lazy refetch path).
      const dsm::Copyset consumers = st.pages[page.index()].copyset;
      consumers.for_each([&](NodeId member) {
        if (member == n) return;
        ++rt_->counters().updates_sent;
        rt_->stage_flush(
            n, member, page, n, diff, /*reliable=*/false,
            [this, member](const dsm::FlushRecordView& rec) {
              ++rt_->counters().updates_received;
              ++rt_->counters().updates_stored;
              // Out-of-order update storage: the very machinery the paper
              // blames for lmw-u's barnes/swm regression; charged per byte.
              rt_->charge_dsm(member, rt_->costs().dsm.update_store_fixed,
                              rt_->costs().dsm.update_store_per_byte_ns,
                              rec.diff_wire_bytes(), /*sigio=*/true);
              // Materialize into a recycled diff so the stored copy reuses
              // pooled capacity, exactly like put_copy on the legacy path.
              NodeState& dst = node(member);
              Diff stored = dst.stored_updates.take_scratch();
              rec.decode_into(stored);
              dst.stored_updates.put(
                  DiffStore::Key{rec.page, rec.epoch, rec.creator},
                  std::move(stored));
            });
      });
    }

    st.created.squash_put(DiffStore::Key{page, epoch, n}, std::move(diff));
  }
}

void LmwProtocol::barrier_master() {
  // Track the homeless memory appetite and decide on garbage collection.
  const std::uint64_t retained = retained_diff_bytes();
  auto& counters = rt_->counters();
  counters.retained_diff_bytes_peak =
      std::max<std::uint64_t>(counters.retained_diff_bytes_peak, retained);
  const std::uint64_t threshold = rt_->config().lmw_gc_threshold_bytes;
  gc_requested_ = threshold != 0 && retained > threshold;

  // The master redistributes every notice to every other node; each notice
  // costs payload on each release message (a node needs no notice for its
  // own diffs).
  for (int i = 0; i < rt_->num_nodes(); ++i) {
    const NodeId n{static_cast<std::uint32_t>(i)};
    std::uint64_t foreign = 0;
    for (const WriteNotice& wn : epoch_notices_) {
      if (wn.creator != n) ++foreign;
    }
    rt_->add_release_payload(n, foreign * WriteNotice::kWireBytes);
  }
}

void LmwProtocol::barrier_release(NodeId n) {
  NodeState& st = node(n);
  std::vector<PageId> touched;
  for (const WriteNotice& wn : epoch_notices_) {
    if (wn.creator == n) continue;
    PageLocal& pl = st.pages[wn.page.index()];
    pl.pending.push_back(wn);
    touched.push_back(wn.page);
    // Multi-writer LRC invalidates on *foreign* notices only; a node that
    // was the sole writer of a page never sees a foreign notice for it and
    // keeps its copy valid -- no communication for private pages.
    if (rt_->table(n).prot(wn.page) != Protect::None) {
      rt_->mprotect(n, wn.page, Protect::None);
    }
  }
  // Keep deterministic diff-application order regardless of notice order.
  for (const PageId page : touched) {
    auto& pending = st.pages[page.index()].pending;
    std::sort(pending.begin(), pending.end(), dsm::WriteNoticeOrder{});
  }

  // Single-writer mode entry: a page this node just diffed, with no
  // concurrent foreign writer and no known consumer, now has no valid
  // replica anywhere (our notice invalidated them all) -- stop trapping it
  // until someone asks for it.
  for (const PageId page : st.epoch_diffed) {
    PageLocal& pl = st.pages[page.index()];
    if (pl.exclusive || !pl.copyset.empty()) continue;
    bool foreign_writer = false;
    for (const WriteNotice& wn : epoch_notices_) {
      if (wn.page == page && wn.creator != n) {
        foreign_writer = true;
        break;
      }
    }
    if (foreign_writer) continue;
    UPDSM_CHECK(rt_->table(n).prot(page) == Protect::Read);
    pl.exclusive = true;
    rt_->mprotect(n, page, Protect::ReadWrite);
    // Arm the service snapshot: mid-phase fetches of this page are served
    // from it, never from the live frame (parallel-gang safety).
    st.snapshots.create(page, rt_->table(n).frame(page));
    ++rt_->counters().private_entries;
  }
  st.epoch_diffed.clear();

  const bool last_node =
      n.value() + 1 == static_cast<std::uint32_t>(rt_->num_nodes());
  if (last_node) {
    epoch_notices_.clear();
    if (gc_requested_) {
      gc_requested_ = false;
      garbage_collect();
    }
  }
}

void LmwProtocol::iteration_begin(NodeId /*n*/, std::uint64_t iteration) {
  // Time-step loop entry: start copyset learning afresh so the init-phase
  // broadcast (every node requesting node 0's initialisation diffs) does
  // not leave every page's copyset saturated (§2.1.2: copysets reflect the
  // *loop's* stable sharing pattern, learned during its first iteration).
  if (iteration != 1) return;
  // One-shot global reset, performed by whichever node thread arrives
  // first. Applications call iteration_begin before any shared access of
  // the entering epoch, so the mutex acquire in every other node's call
  // orders this reset before all copyset adds of that epoch -- the same
  // clear-then-learn order the serializing baton produced.
  std::lock_guard<std::mutex> lock(loop_mu_);
  if (loop_entered_) return;
  loop_entered_ = true;
  for (NodeState& st : nodes_) {
    for (PageLocal& pl : st.pages) pl.copyset.clear();
  }
}

void LmwProtocol::garbage_collect() {
  // Global GC (TreadMarks-style): every node first validates every invalid
  // page -- fetching any diffs it is missing, at full cost -- after which
  // no future request can name a pre-GC diff and all stores are dropped.
  ++gc_rounds_;
  ++rt_->counters().gc_rounds;
  for (int i = 0; i < rt_->num_nodes(); ++i) {
    const NodeId n{static_cast<std::uint32_t>(i)};
    NodeState& st = node(n);
    for (std::uint32_t p = 0; p < rt_->num_pages(); ++p) {
      if (!st.pages[p].pending.empty()) {
        validate_page(n, PageId{p}, /*demand=*/false);
      }
    }
  }
  for (auto& st : nodes_) {
    st.created.clear();
    st.stored_updates.clear();
  }
}

std::uint64_t LmwProtocol::retained_diff_bytes() const {
  std::uint64_t total = 0;
  for (const auto& st : nodes_) {
    total += st.created.retained_bytes() + st.stored_updates.retained_bytes();
  }
  return total;
}

}  // namespace updsm::protocols
