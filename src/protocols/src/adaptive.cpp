#include "updsm/protocols/adaptive.hpp"

#include <algorithm>
#include <bit>

#include "updsm/common/log.hpp"

namespace updsm::protocols {

namespace {
using mem::Protect;
using sim::SimTime;

[[nodiscard]] double ns(SimTime t) { return static_cast<double>(t); }
}  // namespace

// ---------------------------------------------------------------------------
// AdaptivePolicy: the pure cost comparison.
// ---------------------------------------------------------------------------

double AdaptivePolicy::modeled_cost(PageMode m, PageMode current,
                                    const PageSignal& s) const {
  const auto& net = costs->net;
  const auto& os = costs->os;
  const auto& dsm = costs->dsm;
  const double page = static_cast<double>(page_bytes);
  const double w = s.writers_avg;
  const double b = s.diff_bytes_avg;
  const double rate = std::clamp(s.write_rate, 1e-3, 1.0);

  // Building blocks, all in ns per written epoch.
  const double trap = ns(os.segv) + 2.0 * ns(os.mprotect_base);
  const double twin = dsm.copy_per_byte_ns * page;
  const double diff = ns(dsm.diff_fixed) + dsm.diff_create_per_byte_ns * page;
  const double msg = ns(net.send_trap) + ns(net.recv_trap) +
                     ns(net.wire_time(0)) + ns(dsm.handler_fixed);
  const double push_one = w * msg + net.per_byte_ns * b +
                          dsm.diff_apply_per_byte_ns * b;
  const double writer_trap_path = w * (trap + twin + diff);

  switch (m) {
    case PageMode::Invalidate: {
      // Every consumer that re-reads pays the composite remote fault.
      // While invalidation is live the observed demand fetches ARE those
      // re-reads; entering invalidation is judged on the structural
      // consumer count (pushes stop, so fetches cannot be observed yet).
      const double refetchers =
          current == PageMode::Invalidate
              ? std::min(s.consumers_avg, s.fetches_avg)
              : s.consumers_avg;
      return writer_trap_path +
             refetchers * ns(costs->remote_page_fault(page_bytes));
    }
    case PageMode::Update:
      return writer_trap_path + s.consumers_avg * push_one;
    case PageMode::Overdrive: {
      // No segv: writers stay armed. The safety tax is the live twin's
      // diff scan at EVERY barrier, written or not -- the quiet-epoch
      // scans (empty diff, no twin refresh) amortize onto each written
      // epoch as diff * (1 - rate) / rate.
      const double scan = twin + diff + diff * (1.0 - rate) / rate;
      return w * scan + s.consumers_avg * push_one;
    }
  }
  return 0.0;
}

bool AdaptivePolicy::consumer_arming_pays(const PageSignal& s,
                                          double mprotect_ns) const {
  const auto& dsm = costs->dsm;
  const double page = static_cast<double>(page_bytes);
  const double rate = std::clamp(s.write_rate, 1e-3, 1.0);
  const double diff = ns(dsm.diff_fixed) + dsm.diff_create_per_byte_ns * page;
  const double twin = dsm.copy_per_byte_ns * page;
  // Per epoch: parked consumer = apply pair per written epoch; armed
  // consumer = one (empty) scan every epoch + twin refresh after applies.
  return rate * 2.0 * mprotect_ns > diff + rate * twin;
}

PageMode AdaptivePolicy::evaluate(PageMode current,
                                  const PageSignal& s) const {
  const double cur_cost = modeled_cost(current, current, s);
  // Overdrive entry needs a full window of identical writer sets (the
  // learned pattern) and at least one consumer worth pushing to. Leaving a
  // mode is purely cost-driven.
  const bool od_eligible = current == PageMode::Overdrive ||
                           (s.window_full && s.stable_writers &&
                            s.consumers_avg >= 1.0);
  // Candidate order is the tie-break: prefer update (the paper's robust
  // default), then overdrive, then invalidate.
  const PageMode candidates[] = {PageMode::Update, PageMode::Overdrive,
                                 PageMode::Invalidate};
  PageMode best = current;
  double best_cost = cur_cost;
  for (const PageMode m : candidates) {
    if (m == current) continue;
    if (m == PageMode::Overdrive && !od_eligible) continue;
    const double c = modeled_cost(m, current, s);
    if (c < best_cost * (best == current ? hysteresis : 1.0) &&
        (best == current || c < best_cost)) {
      best = m;
      best_cost = c;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// AdaptiveProtocol
// ---------------------------------------------------------------------------

void AdaptiveProtocol::init(dsm::Runtime& rt) {
  BarProtocol::init(rt);
  const std::uint32_t pages = rt.num_pages();
  window_ = rt.config().adaptive_window;
  policy_.costs = &rt.config().costs;
  policy_.page_bytes = rt.page_size();
  modes_.assign(pages, PageMode::Update);
  history_.assign(pages, History{});
  epoch_diff_bytes_.assign(pages, 0);
  period_ = 0;
  phase_mask_.assign(pages, 0);
  od_pages_.clear();
  fetch_counts_ = std::make_unique<std::atomic<std::uint32_t>[]>(pages);
  for (std::uint32_t p = 0; p < pages; ++p) {
    fetch_counts_[p].store(0, std::memory_order_relaxed);
  }
  sampled_.clear();
}

void AdaptiveProtocol::observe_diff(NodeId, PageId page,
                                    std::uint64_t bytes) {
  epoch_diff_bytes_[page.index()] += bytes;
}

void AdaptiveProtocol::observe_fetch(NodeId, PageId page) {
  fetch_counts_[page.index()].fetch_add(1, std::memory_order_relaxed);
}

void AdaptiveProtocol::observe_epoch_page(PageId page,
                                          const dsm::NodeSet& writers,
                                          bool /*home_wrote*/) {
  Sample s;
  s.writers = writers;
  s.diff_bytes = epoch_diff_bytes_[page.index()];
  epoch_diff_bytes_[page.index()] = 0;
  s.epoch = rt_->epoch().value();
  // Consumers: replica holders beyond each writer -- the receivers of one
  // writer's diff, by push (bar.cpp's push loop sends to every copyset
  // member but the sender) or by the reliable flush to the home, which the
  // fetch-driven copyset never lists. A multi-writer page with no pure
  // readers still delivers: each writer consumes the others' diffs. (All
  // mid-phase fetches have completed by barrier_master, so the live
  // bitmap's content is schedule-independent here.)
  dsm::NodeSet holders = gpage(page).copyset.snapshot();
  holders.add(gpage(page).home);
  const std::uint32_t members = static_cast<std::uint32_t>(holders.count());
  s.consumers = members > 0 ? members - 1 : 0;
  s.fetches =
      fetch_counts_[page.index()].exchange(0, std::memory_order_relaxed);
  push_sample(page, std::move(s));
  sampled_.push_back(page);
}

void AdaptiveProtocol::push_sample(PageId page, Sample s) {
  History& h = history_[page.index()];
  if (h.ring.empty()) h.ring.resize(static_cast<std::size_t>(window_));
  if (h.count == h.ring.size()) ++rt_->counters().adaptive_window_evictions;
  h.ring[h.head] = std::move(s);
  h.head = (h.head + 1) % h.ring.size();
  if (h.count < h.ring.size()) ++h.count;
}

PageSignal AdaptiveProtocol::summarize(const History& h) const {
  PageSignal sig;
  if (h.count == 0) return sig;
  double writers_sum = 0, bytes_sum = 0, consumers_sum = 0, fetches_sum = 0;
  std::uint64_t oldest_epoch = ~0ULL, newest_epoch = 0;
  bool stable = true;
  const Sample* first = nullptr;
  for (std::size_t i = 0; i < h.count; ++i) {
    // Oldest first: with a full ring, head points at the oldest sample.
    const std::size_t idx =
        h.count == h.ring.size() ? (h.head + i) % h.ring.size() : i;
    const Sample& s = h.ring[idx];
    if (first == nullptr) {
      first = &s;
    } else if (!(s.writers == first->writers)) {
      stable = false;
    }
    writers_sum += s.writers.count();
    bytes_sum += static_cast<double>(s.diff_bytes);
    consumers_sum += s.consumers;
    fetches_sum += s.fetches;
    oldest_epoch = std::min(oldest_epoch, s.epoch);
    newest_epoch = std::max(newest_epoch, s.epoch);
  }
  const double n = static_cast<double>(h.count);
  const double span =
      static_cast<double>(newest_epoch - oldest_epoch) + 1.0;
  sig.write_rate = std::min(1.0, n / span);
  sig.writers_avg = writers_sum / n;
  sig.diff_bytes_avg = bytes_sum / n;
  sig.consumers_avg = consumers_sum / n;
  sig.fetches_avg = fetches_sum / n;
  sig.stable_writers = stable;
  sig.window_full = h.count == h.ring.size() && !h.ring.empty();
  return sig;
}

void AdaptiveProtocol::barrier_finish() {
  // Base work first: copyset_frozen shadows and snapshot upkeep must
  // reflect this barrier before any mode switch manufactures twins.
  BarProtocol::barrier_finish();

  // Re-evaluate exactly the pages written this epoch (sampled_ is sorted:
  // barrier_master visits epoch_touched_ in sorted order). Overdrive entry
  // additionally waits for the steady state: the loop-entry reset and the
  // one-shot home migration rewrite copysets and homes wholesale, so a
  // pattern learned before them is void.
  const bool steady =
      loop_entered_ &&
      (migration_done_ || !rt_->config().home_migration);
  // Barriers per time-step iteration, learned from the harness's loop
  // annotations (same source bar-m's engagement uses). Node 0's record is
  // as good as any: every node begins the same iteration together.
  const auto& ib = node(NodeId{0}).iter_begin_epochs;
  period_ = ib.size() >= 3 ? ib[ib.size() - 1] - ib[ib.size() - 2] : 0;
  std::uint64_t evaluated = 0;
  for (const PageId page : sampled_) {
    if (gpage(page).untracked) continue;  // home-private fast path is free
    ++evaluated;
    const PageMode current = modes_[page.index()];
    const PageSignal sig = summarize(history_[page.index()]);
    UPDSM_LOG(Trace, "adaptive-sig: page " << page << " cur "
                     << to_string(current) << " rate " << sig.write_rate
                     << " w " << sig.writers_avg << " b " << sig.diff_bytes_avg
                     << " K " << sig.consumers_avg << " F " << sig.fetches_avg
                     << " stable " << sig.stable_writers << " full "
                     << sig.window_full << " steady " << steady);
    PageMode next = policy_.evaluate(current, sig);
    if (next == PageMode::Overdrive && current != PageMode::Overdrive &&
        !steady) {
      next = current;
    }
    if (next != current) apply_switch(page, current, next);
    if (modes_[page.index()] == PageMode::Overdrive) update_phase(page);
  }
  sampled_.clear();

  // Phase parking: flip each overdrive replica to the protection its
  // page's next-epoch prediction wants. Runs AFTER release, so armed
  // pages absorbed this epoch's pushes flip-free before parking; a parked
  // replica keeps its (synced) twin, costs nothing on quiet epochs --
  // barrier_arrive skips scanning read-protected twins -- and re-arms
  // here with a single mprotect. Controller context, sorted page / node
  // order: deterministic.
  const std::uint64_t next_epoch = rt_->epoch().value() + 1;
  for (const PageId page : od_pages_) {
    const std::uint64_t mask = phase_mask_[page.index()];
    const bool want_armed =
        mask == 0 || ((mask >> (next_epoch % period_)) & 1) != 0;
    for (int i = 0; i < rt_->num_nodes(); ++i) {
      const NodeId n{static_cast<std::uint32_t>(i)};
      if (!node(n).twins.has(page)) continue;
      const Protect prot = rt_->table(n).prot(page);
      if (want_armed && prot == Protect::Read) {
        rt_->mprotect(n, page, Protect::ReadWrite);
      } else if (!want_armed && prot == Protect::ReadWrite) {
        rt_->mprotect(n, page, Protect::Read);
      }
    }
  }

  // The predictor is not free: charge the barrier master for every
  // evaluation performed (window fold + three modeled costs).
  if (evaluated != 0) {
    rt_->charge_dsm(
        NodeId{0},
        static_cast<SimTime>(rt_->costs().dsm.policy_eval_per_page_ns *
                             static_cast<double>(evaluated)));
  }
}

void AdaptiveProtocol::apply_switch(PageId page, PageMode from,
                                    PageMode to) {
  modes_[page.index()] = to;
  ++rt_->counters().adaptive_switches;
  UPDSM_LOG(Debug, "adaptive: page " << page << " " << to_string(from)
                                     << " -> " << to_string(to) << " epoch "
                                     << rt_->epoch());

  if (to == PageMode::Overdrive) {
    od_pages_.insert(
        std::lower_bound(od_pages_.begin(), od_pages_.end(), page), page);
    arm_page(page);
  } else if (from == PageMode::Overdrive) {
    od_pages_.erase(
        std::find(od_pages_.begin(), od_pages_.end(), page));
    phase_mask_[page.index()] = 0;
    // Disarm: drop any armed (or parked) twin and restore trap-based
    // writing. A parked replica is already read-protected.
    for (int i = 0; i < rt_->num_nodes(); ++i) {
      const NodeId n{static_cast<std::uint32_t>(i)};
      NodeState& st = node(n);
      if (st.twins.has(page)) st.twins.discard(page);
      if (rt_->table(n).prot(page) == Protect::ReadWrite &&
          !st.snapshots.has(page)) {
        rt_->mprotect(n, page, Protect::Read);
      }
    }
  }
}

void AdaptiveProtocol::arm_page(PageId page) {
  // Arm the learned writers: twin + write-enable, so steady-state writes
  // trap no segv. Only nodes holding a valid replica are armed -- an
  // invalid copy re-joins through the normal fault path, and a writer the
  // window never saw arms itself on its first (trapped) write.
  const auto& dsm_costs = rt_->costs().dsm;
  const History& h = history_[page.index()];
  if (h.count == 0) return;
  const auto arm_one = [&](NodeId n) {
    if (rt_->table(n).prot(page) == Protect::None) return;
    NodeState& st = node(n);
    if (!st.twins.has(page)) {
      st.twins.create(page, rt_->table(n).frame(page));
      ++rt_->counters().twins_created;
      rt_->charge_dsm(n, 0, dsm_costs.copy_per_byte_ns, rt_->page_size());
    }
    if (rt_->table(n).prot(page) != Protect::ReadWrite) {
      rt_->mprotect(n, page, Protect::ReadWrite);
    }
  };
  const std::size_t newest = (h.head + h.ring.size() - 1) % h.ring.size();
  h.ring[newest].writers.for_each(arm_one);

  // Pure-reader consumers are armed too when the page's own (possibly
  // VM-stressed) mprotect cost makes the apply pair dearer than the armed
  // scan -- an armed consumer applies pushes with no protection flips, at
  // the price of an empty scan per epoch. Safe for the same reason as the
  // writers: armed implies twinned, and every twin is diffed at every
  // barrier, so even a consumer that unexpectedly starts writing is
  // captured at the next sequence point.
  const auto& os_costs = rt_->costs().os;
  const double mprotect_ns =
      ns(os_costs.mprotect_base) *
      (rt_->os(NodeId{0}).slow_page(page) ? os_costs.stress_multiplier : 1.0);
  if (policy_.consumer_arming_pays(summarize(h), mprotect_ns)) {
    dsm::NodeSet holders = gpage(page).copyset.snapshot();
    holders.add(gpage(page).home);
    holders.for_each(arm_one);
  }
}

void AdaptiveProtocol::update_phase(PageId page) {
  std::uint64_t& mask = phase_mask_[page.index()];
  mask = 0;
  if (period_ < 2 || period_ > 64) return;
  const History& h = history_[page.index()];
  if (h.ring.empty() || h.count < h.ring.size()) return;
  // The window's written epochs, as residues mod the period.
  std::uint64_t lo = ~0ULL, hi = 0, m = 0;
  for (std::size_t i = 0; i < h.count; ++i) {
    const std::uint64_t e = h.ring[i].epoch;
    m |= 1ULL << (e % period_);
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  const std::uint64_t span = hi - lo + 1;
  if (span < period_ || span > 8 * period_) return;
  // Exact cover: the pattern is periodic only if every epoch in the
  // window's span whose residue is marked was actually a written sample.
  // (Samples exist only for written epochs, so over-coverage is the sole
  // failure mode.)
  std::uint64_t expect = 0;
  for (std::uint64_t e = lo; e <= hi; ++e) {
    expect += (m >> (e % period_)) & 1;
  }
  if (expect != h.count) return;
  const int quiet = static_cast<int>(period_) - std::popcount(m);
  if (quiet <= 0) return;  // written every epoch: nothing to park
  // Each maximal cyclic run of quiet residues costs one park + one re-arm
  // mprotect per armed replica and saves `run length` empty scans. Park
  // only if that is a net win at the page's own (possibly VM-stressed)
  // mprotect price -- slow pages under memory pressure stay permanently
  // armed and keep paying the cheaper scans.
  int runs = 0;
  for (std::uint64_t r = 0; r < period_; ++r) {
    const bool q = ((m >> r) & 1) == 0;
    const bool prev_q = ((m >> ((r + period_ - 1) % period_)) & 1) == 0;
    if (q && !prev_q) ++runs;
  }
  const auto& os_costs = rt_->costs().os;
  const double mp =
      ns(os_costs.mprotect_base) *
      (rt_->os(NodeId{0}).slow_page(page) ? os_costs.stress_multiplier
                                          : 1.0);
  const auto& dsm_costs = rt_->costs().dsm;
  const double scan = ns(dsm_costs.diff_fixed) +
                      dsm_costs.diff_create_per_byte_ns *
                          static_cast<double>(rt_->page_size());
  if (static_cast<double>(runs) * 2.0 * mp <
      static_cast<double>(quiet) * scan) {
    mask = m;
  }
}

}  // namespace updsm::protocols
