#include "updsm/protocols/bar.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <span>

#include "updsm/common/log.hpp"

namespace updsm::protocols {

namespace {
using dsm::OverdriveFallback;
using mem::Diff;
using mem::Protect;
using sim::MsgKind;
using sim::SimTime;
}  // namespace

void BarProtocol::init(dsm::Runtime& rt) {
  rt_ = &rt;
  nodes_.resize(static_cast<std::size_t>(rt.num_nodes()));
  global_.resize(rt.num_pages());
  // Initial homes: block distribution -- contiguous page ranges per node,
  // matching how "owner computes" compilers lay out array slices. (Runtime
  // migration corrects any page this guess gets wrong.)
  const std::uint32_t pages = rt.num_pages();
  const std::uint32_t n = static_cast<std::uint32_t>(rt.num_nodes());
  const std::uint32_t per = (pages + n - 1) / n;
  for (std::uint32_t p = 0; p < pages; ++p) {
    global_[p].home = NodeId{std::min(p / per, n - 1)};
  }
  // Zhou-style user annotations override the block guess (§2.2.1: Zhou
  // "addressed the problem of assignments by requiring user annotations on
  // each section of data"). Runtime migration, if enabled, still corrects
  // any page the annotation gets wrong.
  const auto& annotated = rt.config().static_homes;
  for (std::uint32_t p = 0;
       p < pages && p < static_cast<std::uint32_t>(annotated.size()); ++p) {
    UPDSM_REQUIRE(annotated[p] < n, "static home " << annotated[p]
                                                   << " for page " << p
                                                   << " out of range");
    global_[p].home = NodeId{annotated[p]};
  }
  for (int i = 0; i < rt.num_nodes(); ++i) {
    const NodeId node_id{static_cast<std::uint32_t>(i)};
    auto& st = nodes_[static_cast<std::size_t>(i)];
    st.cached_version.assign(pages, 0);
    st.dirty.assign(pages, false);
    st.writable_union.assign(pages, false);
    // Page-buffer traffic (twins, service snapshots) routes through the
    // arena of the gang worker that owns this node: uncontended mid-phase,
    // deterministically drained by the barrier hooks.
    st.twins.bind_pool(&rt.arena_for_node(node_id).pages);
    st.snapshots.bind_pool(&rt.arena_for_node(node_id).pages);
    // Everyone starts with an identical zero-filled copy, write-protected.
    for (std::uint32_t p = 0; p < pages; ++p) {
      rt.table(node_id).set_prot(PageId{p}, Protect::Read);
    }
  }
}

void BarProtocol::fetch_page(NodeId n, PageId page, bool count_as_miss) {
  PageGlobal& gp = gpage(page);
  const NodeId home = gp.home;
  UPDSM_CHECK_MSG(home != n, "node " << n << " fetching page " << page
                                     << " from itself");
  const std::uint32_t psize = rt_->page_size();
  const SimTime serve = static_cast<SimTime>(
      rt_->costs().dsm.copy_per_byte_ns * static_cast<double>(psize));
  rt_->roundtrip(n, home, MsgKind::DataRequest, 16,
                 psize + 32, serve);
  // Install the whole page as of the LAST BARRIER: from the home's service
  // snapshot or live twin when one exists, else from the frame itself
  // (which is then read-only at the home and immutable mid-phase). The
  // copy runs under the home's service mutex, which closes the
  // trap-upgrade race: a concurrent home write fault installs its
  // twin/snapshot and write-enables the frame atomically with respect to
  // this copy, so a torn or part-epoch read is impossible. (LRC never
  // ordered the home's same-epoch writes before this access anyway.)
  // Shared mode: fetchers only read the home's state, so any number of
  // nodes may fetch from one hot home concurrently without convoying --
  // only the home's own write-fault upgrade takes the lock exclusively.
  {
    NodeState& hs = node(home);
    auto dst = rt_->table(n).frame(page);
    std::shared_lock<std::shared_mutex> lock(rt_->service_mutex(home));
    std::span<const std::byte> src;
    if (hs.snapshots.has(page)) {
      src = hs.snapshots.get(page);
    } else if (hs.twins.has(page)) {
      src = hs.twins.get(page);
    } else {
      src = rt_->table(home).frame(page);
    }
    std::memcpy(dst.data(), src.data(), dst.size());
  }
  rt_->charge_dsm(n, 0, rt_->costs().dsm.copy_per_byte_ns, psize);
  if (count_as_miss) {
    // AIX-side VM bookkeeping on the demand-fault path (§3.2 calibration).
    rt_->clock(n).advance(sim::TimeCat::Os, rt_->os(n).fault_service_extra());
    ++rt_->counters().remote_misses;
  }
  ++rt_->counters().pages_fetched;
  rt_->mprotect(n, page, Protect::Read);
  node(n).cached_version[page.index()] = gp.version;
  gp.copyset.add(n);
  // Whether this fetch ends a home-private (untracked) page is decided by
  // barrier_master from the merged fetch logs -- the `untracked` flag is
  // written by the home's thread mid-phase and must not be read here.
  node(n).fetched_log.push_back(page);
  observe_fetch(n, page);
}

void BarProtocol::note_dirty(NodeId n, PageId page) {
  // Fault-time bookkeeping only: a trapped write drives prediction
  // learning and the home-effect scan, but does NOT make this node a
  // writer in the coherence sense -- a write that leaves the page
  // unchanged (zero-length diff) must not force consumers to wait for a
  // diff that will never be sent, nor sway home migration.
  NodeState& st = node(n);
  if (!st.dirty[page.index()]) {
    st.dirty[page.index()] = true;
    st.dirty_pages.push_back(page);
  }
  gpage(page).fault_writers_ever.add(n);
}

void BarProtocol::note_writer(NodeId n, PageId page) {
  // Value-based writer bookkeeping, called at barrier arrival for pages
  // with a non-empty diff (and for home trap-writes, whose effect cannot
  // be checked without a twin).
  PageGlobal& gp = gpage(page);
  if (gp.writers_epoch.empty() && !gp.home_wrote) {
    epoch_touched_.push_back(page);
  }
  gp.writers_epoch.add(n);
  gp.writers_ever.add(n);
}

void BarProtocol::read_fault(NodeId n, PageId page) {
  UPDSM_CHECK_MSG(rt_->table(n).prot(page) == Protect::None,
                  "bar read fault on readable page " << page);
  fetch_page(n, page, /*count_as_miss=*/true);
}

void BarProtocol::write_fault(NodeId n, PageId page) {
  NodeState& st = node(n);
  if (rt_->table(n).prot(page) == Protect::None) {
    fetch_page(n, page, /*count_as_miss=*/true);
  }
  if (od_active_) {
    // Overdrive replaced write trapping with prediction; only a write the
    // learned pattern did NOT predict means the application diverged
    // (§4.1). A *predicted* page can still trap when its pre-armed copy
    // was torn down by a barrier invalidation healing a lost update push:
    // the prediction was right, the copy was lost. Recover like bar-u and
    // rejoin the pattern.
    const bool predicted =
        mode_ == BarMode::OverdriveM
            ? static_cast<bool>(st.writable_union[page.index()])
            : [&] {
                const auto& pw = predicted_writes(n, rt_->epoch().value());
                return std::binary_search(pw.begin(), pw.end(), page);
              }();
    if (predicted) {
      // The frame is current again (refetched above or still readable);
      // a surviving twin holds pre-invalidation bytes and must be brought
      // up to date or the next diff would swallow foreign data.
      if (st.twins.has(page)) {
        st.twins.refresh(page, rt_->table(n).frame(page));
        rt_->charge_dsm(n, 0, rt_->costs().dsm.copy_per_byte_ns,
                        rt_->page_size());
      }
    } else {
      ++rt_->counters().overdrive_mispredictions;
      UPDSM_LOG(Debug, name() << " misprediction: node " << n << " page "
                              << page << " epoch " << rt_->epoch()
                              << " base " << od_base_epoch_ << " period "
                              << od_period_ << " prot "
                              << mem::to_string(rt_->table(n).prot(page)));
      if (rt_->config().overdrive_fallback == OverdriveFallback::Strict) {
        throw ProtocolError(std::string(name()) +
                            ": unpredicted write trapped during overdrive "
                            "(page " +
                            std::to_string(page.value()) + ", node " +
                            std::to_string(n.value()) + ")");
      }
      // Revert mode: fall through and handle it exactly like bar-u. Under
      // bar-m the page then joins the writable set for the rest of the run
      // (it will be audited against its twin like any other writable page).
      if (mode_ == BarMode::OverdriveM) {
        st.writable_union[page.index()] = true;
      }
    }
  }

  const NodeId home = gpage(page).home;
  // Consumer count from the barrier-frozen copyset shadow, NOT the live
  // bitmap: concurrent fetches add members mid-phase, and this decision
  // must be independent of their timing.
  const dsm::NodeSet& frozen = gpage(page).copyset_frozen;
  const int consumers = frozen.count() - (frozen.contains(n) ? 1 : 0);
  if (loop_entered_ && n == home && consumers == 0) {
    // (Gated on the loop annotation: the fast path's invariant -- every
    // valid non-home replica is in the copyset -- is established by the
    // loop-entry invalidation. Unannotated programs never untrack.)
    // Home-private page: nobody else caches it (the loop-entry reset
    // invalidated all cold replicas, and every later consumer enters the
    // copyset via its fetch), so trapping buys nothing. Leave it writable
    // until a consumer appears.
    gpage(page).untracked = true;
    ++rt_->counters().private_entries;
    std::lock_guard<std::shared_mutex> lock(rt_->service_mutex(n));
    if (!st.snapshots.has(page)) {
      // Service snapshot: fetchers are served these (last-barrier) bytes
      // while the frame is writable. A leftover snapshot from a previous
      // tenure holds identical bytes (the frame was read-only since), so
      // it is simply kept.
      st.snapshots.create(page, rt_->table(n).frame(page));
    }
    rt_->mprotect(n, page, Protect::ReadWrite);
    return;
  }
  // The home effect: the home's own writes need no diff -- unless it must
  // push updates to consumers, which requires knowing the modified bytes.
  const bool need_twin =
      n != home || (page_pushes_updates(page) && consumers > 0);
  if (n == home) {
    // The home's twin/snapshot installation and frame write-enable must be
    // atomic with respect to concurrent fetch_page copies (see there).
    std::lock_guard<std::shared_mutex> lock(rt_->service_mutex(n));
    if (need_twin && !st.twins.has(page)) {
      st.twins.create(page, rt_->table(n).frame(page));
      ++rt_->counters().twins_created;
      rt_->charge_dsm(n, 0, rt_->costs().dsm.copy_per_byte_ns,
                      rt_->page_size());
    } else if (!need_twin && !st.snapshots.has(page)) {
      // Home-effect write with no consumers to update: no twin, so arm a
      // service snapshot instead.
      st.snapshots.create(page, rt_->table(n).frame(page));
    }
    rt_->mprotect(n, page, Protect::ReadWrite);
  } else {
    // This page's bytes are never served from here mid-phase (we are not
    // its home), but the twin map is one container per NODE: a concurrent
    // fetch of a *different* page homed at n walks the same hashtable
    // under the service mutex, so this insert must hold it too.
    std::lock_guard<std::shared_mutex> lock(rt_->service_mutex(n));
    if (need_twin && !st.twins.has(page)) {
      st.twins.create(page, rt_->table(n).frame(page));
      ++rt_->counters().twins_created;
      rt_->charge_dsm(n, 0, rt_->costs().dsm.copy_per_byte_ns,
                      rt_->page_size());
    }
    rt_->mprotect(n, page, Protect::ReadWrite);
  }
  note_dirty(n, page);
}

void BarProtocol::barrier_arrive(NodeId n) {
  NodeState& st = node(n);
  const EpochId epoch = rt_->epoch();
  const auto& dsm_costs = rt_->costs().dsm;
  const bool od_m_active = od_active_ && mode_ == BarMode::OverdriveM;

  if (rt_->config().overdrive_audit && od_m_active) {
    audit_unpredicted_writes(n);
  }

  // Home-effect pages first: dirtied by the home with no twin -- a version
  // bump and trap re-arm, no diff anywhere. Must run before twin
  // processing so "has no twin" still distinguishes these pages.
  for (const PageId page : st.dirty_pages) {
    PageGlobal& gp = gpage(page);
    if (n == gp.home && !st.twins.has(page)) {
      note_writer(n, page);
      gp.home_wrote = true;
      if (!od_m_active) rt_->mprotect(n, page, Protect::Read);
    }
  }

  // Pages to diff: normally every twinned page; under bar-m overdrive the
  // twins are permanent, so only the pages *predicted* for this epoch are
  // diffed (plus any fallback-trapped pages).
  std::vector<PageId> to_diff;
  if (od_m_active) {
    to_diff = predicted_writes(n, epoch.value());
    for (const PageId page : st.dirty_pages) {
      if (st.twins.has(page)) to_diff.push_back(page);
    }
    std::sort(to_diff.begin(), to_diff.end());
    to_diff.erase(std::unique(to_diff.begin(), to_diff.end()),
                  to_diff.end());
    std::erase_if(to_diff,
                  [&](PageId page) { return !st.twins.has(page); });
  } else {
    to_diff = st.twins.pages_sorted();
    // Phase-parked pages (adaptive overdrive: read-protected with a
    // retained, synced twin) cannot have been written since the twin last
    // absorbed the frame -- a write would have trapped and re-armed them.
    // Skipping the scan is the whole point of parking. Fixed protocols
    // never hold a twin on a non-writable page, so this erases nothing
    // for them.
    std::erase_if(to_diff, [&](PageId page) {
      return rt_->table(n).prot(page) != Protect::ReadWrite;
    });
  }

  for (const PageId page : to_diff) {
    PageGlobal& gp = gpage(page);
    Diff diff = rt_->arena_for_node(n).diffs.take();
    Diff::create_into(diff, st.twins.get(page), rt_->table(n).frame(page));
    rt_->charge_dsm(n, dsm_costs.diff_fixed,
                    dsm_costs.diff_create_per_byte_ns, rt_->page_size());
    ++rt_->counters().diffs_created;

    // Protection re-arming: bar-i/bar-u/bar-s write-protect after diffing;
    // bar-m in overdrive never touches protections, and the adaptive
    // protocol keeps its armed overdrive pages writable the same way.
    // The surviving twin is re-snapshotted now so the next diff (and the
    // divergence audit) sees this epoch's writes as committed -- except
    // that an adaptive page whose scan came back clean needs no refresh
    // (the twin already equals the frame).
    if (od_m_active || page_keep_writable(page)) {
      if (od_m_active || !diff.empty()) {
        st.twins.refresh(page, rt_->table(n).frame(page));
        rt_->charge_dsm(n, 0, dsm_costs.copy_per_byte_ns, rt_->page_size());
      }
    } else {
      st.twins.discard(page);
      rt_->mprotect(n, page, Protect::Read);
    }

    if (diff.empty()) {
      // Predicted-but-unwritten page: pure overhead (paper §4.1), or a
      // trapped write that restored the original values.
      ++rt_->counters().zero_diffs;
      rt_->arena_for_node(n).diffs.recycle(std::move(diff));
      continue;
    }
    // A real modification exists: this node is a writer of the page.
    note_writer(n, page);
    observe_diff(n, page, diff.payload_bytes());

    if (n != gp.home) {
      // Flush the diff to the home: reliable (rides the barrier channel).
      // The home's copy travels via gp.queued below; the staged record only
      // carries the cost, so no delivery callback is needed.
      rt_->stage_flush(n, gp.home, page, n, diff, /*reliable=*/true, {});
    } else {
      gp.home_wrote = true;
    }

    if (page_pushes_updates(page)) {
      // Push to consumers. The home receives the diff via the reliable
      // flush above (when we are not the home); everyone else in the
      // copyset gets an unreliable update push. The inbox entry is built
      // on delivery only (a dropped batch loses all its records).
      gp.copyset.for_each([&](NodeId member) {
        if (member == n) return;
        if (member == gp.home && n != gp.home) return;  // already flushed
        ++rt_->counters().updates_sent;
        rt_->stage_flush(
            n, member, page, n, diff, /*reliable=*/false,
            [this, member](const dsm::FlushRecordView& rec) {
              ++rt_->counters().updates_received;
              // Copy through a recycled diff so the inbox copy reuses
              // capacity -- the receiving member's arena, since the entry
              // lands in (and is later recycled from) member's inbox.
              Diff copy = rt_->arena_for_node(member).diffs.take();
              rec.decode_into(copy);
              node(member).inbox.push_back(
                  InboxEntry{rec.page, rec.creator, std::move(copy)});
            });
      });
    }

    if (n != gp.home) {
      gp.queued.push_back(QueuedDiff{n, std::move(diff)});
    } else {
      rt_->arena_for_node(n).diffs.recycle(std::move(diff));
    }
  }

  // Learning: record this epoch's write set while not yet in overdrive.
  if (overdrive_capable() && !od_active_) {
    std::vector<PageId> writes = st.dirty_pages;
    std::sort(writes.begin(), writes.end());
    st.write_sets[epoch.value()] = std::move(writes);
  }

  for (const PageId page : st.dirty_pages) st.dirty[page.index()] = false;
  st.dirty_pages.clear();

  // Arrival message metadata: ids of pages this node modified.
  rt_->add_arrival_payload(n, 8 * epoch_touched_.size());
}

void BarProtocol::barrier_master() {
  const std::uint64_t new_version = rt_->epoch().value() + 1;
  epoch_changes_.clear();

  // Home-private pages that gained a consumer this epoch re-enter
  // tracking: the home write-protects them and publishes a version bump,
  // conservatively invalidating the mid-epoch copies the fetchers took.
  // The per-node fetch logs are merged, sorted and deduplicated first, so
  // the retrack set -- and everything downstream -- is independent of
  // mid-phase fetch timing.
  std::vector<PageId> fetched;
  for (NodeState& st : nodes_) {
    fetched.insert(fetched.end(), st.fetched_log.begin(),
                   st.fetched_log.end());
    st.fetched_log.clear();
  }
  std::sort(fetched.begin(), fetched.end());
  fetched.erase(std::unique(fetched.begin(), fetched.end()), fetched.end());
  for (const PageId page : fetched) {
    PageGlobal& gp = gpage(page);
    if (!gp.untracked) continue;
    const NodeId home = gp.home;
    gp.untracked = false;
    ++rt_->counters().private_exits;
    note_writer(home, page);
    gp.home_wrote = true;
    if (rt_->table(home).prot(page) == Protect::ReadWrite) {
      rt_->mprotect(home, page, Protect::Read);
    }
  }
  std::sort(epoch_touched_.begin(), epoch_touched_.end());
  epoch_touched_.erase(
      std::unique(epoch_touched_.begin(), epoch_touched_.end()),
      epoch_touched_.end());

  for (const PageId page : epoch_touched_) {
    PageGlobal& gp = gpage(page);
    if (gp.writers_epoch.empty() && !gp.home_wrote) continue;  // all zero diffs
    const NodeId home = gp.home;

    if (!gp.queued.empty()) {
      // The home applies foreign diffs to its master copy. Its own page is
      // write-protected (trap re-arming), so the real handler brackets the
      // apply in a write-enable / re-protect mprotect pair -- unless bar-m
      // overdrive left the page writable.
      const bool writable =
          rt_->table(home).prot(page) == Protect::ReadWrite;
      if (!writable) rt_->mprotect(home, page, Protect::ReadWrite);
      auto frame = rt_->table(home).frame(page);
      for (const QueuedDiff& qd : gp.queued) {
        qd.diff.apply(frame);
        rt_->charge_dsm(home, 0, rt_->costs().dsm.diff_apply_per_byte_ns,
                        qd.diff.payload_bytes(), /*sigio=*/true);
      }
      if (!writable) rt_->mprotect(home, page, Protect::Read);
      // The home's twin (if pushing updates) must absorb the foreign
      // bytes, or its next diff would re-publish them as its own.
      if (node(home).twins.has(page)) {
        node(home).twins.refresh(page, rt_->table(home).frame(page));
      }
    }

    observe_epoch_page(page, gp.writers_epoch, gp.home_wrote);
    epoch_changes_.push_back(ChangeRecord{page, gp.version, new_version,
                                          gp.writers_epoch});
    gp.version = new_version;
    node(home).cached_version[page.index()] = new_version;
    for (QueuedDiff& qd : gp.queued) {
      // Back to the creator's arena, closing the loan opened at diff time.
      rt_->arena_for_node(qd.creator).diffs.recycle(std::move(qd.diff));
    }
    gp.queued.clear();
    gp.writers_epoch.clear();
    gp.home_wrote = false;
  }
  epoch_touched_.clear();

  // Runtime home migration, once, after every node has entered iteration 2
  // (paper §2.2.1: "collect access behavior information during the first
  // iteration, and migrate pages before the second iteration begins").
  if (rt_->config().home_migration && !migration_done_ &&
      !nodes_.empty()) {
    const bool all_in_iter2 = std::all_of(
        nodes_.begin(), nodes_.end(),
        [](const NodeState& st) { return st.iteration >= 2; });
    if (all_in_iter2) run_migration();
  }

  // Overdrive engagement, once, after the learning iterations complete.
  if (overdrive_capable() && !od_active_) {
    const std::uint64_t target =
        static_cast<std::uint64_t>(rt_->config().overdrive_learn_iterations) +
        1;
    const bool learned = std::all_of(
        nodes_.begin(), nodes_.end(),
        [&](const NodeState& st) { return st.iteration >= target; });
    if (learned) engage_overdrive();
  }

  // Release payload: one change record per modified page, plus migration
  // announcements (handled in run_migration), for every slave.
  for (int i = 0; i < rt_->num_nodes(); ++i) {
    rt_->add_release_payload(NodeId{static_cast<std::uint32_t>(i)},
                             ChangeRecord::wire_bytes(rt_->num_nodes()) *
                                 epoch_changes_.size());
  }
}

void BarProtocol::run_migration() {
  migration_done_ = true;
  std::uint64_t moved = 0;
  for (std::uint32_t p = 0; p < rt_->num_pages(); ++p) {
    PageGlobal& gp = global_[p];
    const dsm::NodeSet fault_writers = gp.fault_writers_ever.snapshot();
    if (fault_writers.empty()) continue;
    if (fault_writers.contains(gp.home)) continue;
    // Written, but never by its home: migrate to the lowest-id writer.
    const NodeId new_home = fault_writers.lowest();
    const NodeId old_home = gp.home;
    const PageId page{p};
    // The new home needs the authoritative copy.
    if (node(new_home).cached_version[p] != gp.version ||
        rt_->table(new_home).prot(page) == Protect::None) {
      const std::uint32_t psize = rt_->page_size();
      rt_->roundtrip(new_home, old_home, MsgKind::DataRequest, 16,
                     psize + 32,
                     static_cast<SimTime>(rt_->costs().dsm.copy_per_byte_ns *
                                          static_cast<double>(psize)));
      std::memcpy(rt_->table(new_home).frame(page).data(),
                  rt_->table(old_home).frame(page).data(), psize);
      rt_->charge_dsm(new_home, 0, rt_->costs().dsm.copy_per_byte_ns, psize);
      node(new_home).cached_version[p] = gp.version;
      rt_->mprotect(new_home, page, Protect::Read);
    }
    gp.home = new_home;
    // Drop the old home's replica rather than tracking it as a consumer:
    // it never wrote the page (that is why it lost it) and keeping it in
    // the copyset would disguise single-writer pages as shared, blocking
    // the home-private fast path forever.
    if (rt_->table(old_home).prot(page) != Protect::None) {
      rt_->mprotect(old_home, page, Protect::None);
    }
    gp.copyset.remove(old_home);
    ++moved;
    ++rt_->counters().migrations;
  }
  // Migration decisions ride the next release messages (8 bytes per page
  // per node: page id + new home).
  for (int i = 0; i < rt_->num_nodes(); ++i) {
    rt_->add_release_payload(NodeId{static_cast<std::uint32_t>(i)},
                             8 * moved);
  }
}

void BarProtocol::engage_overdrive() {
  // Determine the iteration period from the recorded iteration beginnings:
  // every node must agree or the application is not barrier-regular.
  const auto& ib0 = nodes_[0].iter_begin_epochs;
  const std::uint64_t learn =
      static_cast<std::uint64_t>(rt_->config().overdrive_learn_iterations);
  UPDSM_CHECK(ib0.size() > learn + 1);
  od_base_epoch_ = ib0[learn];            // first epoch of last learning iter
  od_period_ = ib0[learn + 1] - ib0[learn];
  UPDSM_REQUIRE(od_period_ > 0, "overdrive needs at least one barrier per "
                                "iteration");
  for (const NodeState& st : nodes_) {
    UPDSM_REQUIRE(st.iter_begin_epochs.size() > learn + 1 &&
                      st.iter_begin_epochs[learn] == od_base_epoch_ &&
                      st.iter_begin_epochs[learn + 1] ==
                          od_base_epoch_ + od_period_,
                  "nodes disagree on iteration boundaries; overdrive "
                  "requires globally aligned iterations");
  }
  od_active_ = true;

  if (mode_ == BarMode::OverdriveM) {
    // bar-m: every page that will be written locally while overdrive is in
    // effect -- by the application or by update application -- is made
    // writable now, once; protections are never changed again (§5).
    for (int i = 0; i < rt_->num_nodes(); ++i) {
      const NodeId n{static_cast<std::uint32_t>(i)};
      NodeState& st = node(n);
      std::vector<PageId> union_pages;
      for (std::uint64_t e = od_base_epoch_; e < od_base_epoch_ + od_period_;
           ++e) {
        const auto wit = st.write_sets.find(e);
        if (wit != st.write_sets.end()) {
          union_pages.insert(union_pages.end(), wit->second.begin(),
                             wit->second.end());
        }
        const auto uit = st.update_sets.find(e);
        if (uit != st.update_sets.end()) {
          union_pages.insert(union_pages.end(), uit->second.begin(),
                             uit->second.end());
        }
      }
      std::sort(union_pages.begin(), union_pages.end());
      union_pages.erase(
          std::unique(union_pages.begin(), union_pages.end()),
          union_pages.end());
      for (const PageId page : union_pages) {
        st.writable_union[page.index()] = true;
        if (!st.twins.has(page)) {
          st.twins.create(page, rt_->table(n).frame(page));
          ++rt_->counters().twins_created;
          rt_->charge_dsm(n, 0, rt_->costs().dsm.copy_per_byte_ns,
                          rt_->page_size());
        }
        if (rt_->table(n).prot(page) != Protect::ReadWrite) {
          rt_->mprotect(n, page, Protect::ReadWrite);
        }
      }
    }
  }
}

const std::vector<PageId>& BarProtocol::predicted_writes(NodeId n,
                                                         std::uint64_t e) {
  static const std::vector<PageId> kEmpty;
  NodeState& st = node(n);
  const std::uint64_t mapped =
      od_base_epoch_ + (e - od_base_epoch_) % od_period_;
  const auto it = st.write_sets.find(mapped);
  return it == st.write_sets.end() ? kEmpty : it->second;
}

void BarProtocol::overdrive_prepare(NodeId n, std::uint64_t next_epoch) {
  NodeState& st = node(n);
  for (const PageId page : predicted_writes(n, next_epoch)) {
    if (mode_ == BarMode::OverdriveM) {
      // Page is already writable and twinned; nothing per-epoch. The twin
      // is diffed at the next arrive because we record it as predicted.
      if (!st.twins.has(page)) continue;  // invalid page: see below
    } else {
      // bar-s: twin ahead of the (predicted) write and write-enable, so no
      // segv fires (Figure 5). An invalid page cannot be pre-twinned: the
      // eventual write will fault and take the fallback path.
      if (rt_->table(n).prot(page) == Protect::None) continue;
      if (!st.twins.has(page)) {
        st.twins.create(page, rt_->table(n).frame(page));
        ++rt_->counters().twins_created;
        rt_->charge_dsm(n, 0, rt_->costs().dsm.copy_per_byte_ns,
                        rt_->page_size());
      }
      if (rt_->table(n).prot(page) != Protect::ReadWrite) {
        rt_->mprotect(n, page, Protect::ReadWrite);
      }
    }
  }
}

void BarProtocol::audit_unpredicted_writes(NodeId n) {
  // bar-m consistency audit (tests only): a writable page that is NOT
  // predicted for this epoch must still match its twin; a mismatch is a
  // silent divergence the real bar-m would have missed.
  NodeState& st = node(n);
  const std::uint64_t e = rt_->epoch().value();
  const auto& predicted = predicted_writes(n, e);
  for (std::uint32_t p = 0; p < rt_->num_pages(); ++p) {
    const PageId page{p};
    if (!st.writable_union[p] || !st.twins.has(page)) continue;
    if (std::binary_search(predicted.begin(), predicted.end(), page)) {
      continue;
    }
    const auto twin = st.twins.get(page);
    const auto frame = rt_->table(n).frame(page);
    if (std::memcmp(twin.data(), frame.data(), frame.size()) != 0) {
      throw ProtocolError(
          "bar-m audit: unpredicted write to page " +
          std::to_string(p) + " on node " + std::to_string(n.value()) +
          " went untrapped (silent divergence)");
    }
  }
}

void BarProtocol::barrier_release(NodeId n) {
  NodeState& st = node(n);
  const auto& dsm_costs = rt_->costs().dsm;
  const bool od_m_active = od_active_ && mode_ == BarMode::OverdriveM;
  std::vector<PageId> updated_pages;

  for (const ChangeRecord& rec : epoch_changes_) {
    const PageId page = rec.page;
    PageGlobal& gp = gpage(page);
    // Collect this node's update pushes for the page (creator order is node
    // order because arrivals ran in node order).
    dsm::NodeSet got;
    for (const InboxEntry& e : st.inbox) {
      if (e.page == page) got.add(e.creator);
    }

    if (n == gp.home) {
      // Home copy was made authoritative in barrier_master.
      continue;
    }
    const bool cached = rt_->table(n).prot(page) != Protect::None;
    if (!cached) {
      if (!got.empty()) ++rt_->counters().updates_ignored;
      continue;
    }
    const bool current = st.cached_version[page.index()] == rec.prev_version;
    dsm::NodeSet need = rec.writers;
    need.remove(n);
    if (current && got.contains_all(need)) {
      // All concurrent modifications are available locally: apply inside
      // the barrier and stay valid -- the fault never happens (bar-u) --
      // or, with no foreign writers, nothing to do at all.
      if (!need.empty()) {
        const bool writable =
            rt_->table(n).prot(page) == Protect::ReadWrite;
        if (!writable) rt_->mprotect(n, page, Protect::ReadWrite);
        auto frame = rt_->table(n).frame(page);
        for (const InboxEntry& e : st.inbox) {
          if (e.page != page || !need.contains(e.creator)) continue;
          e.diff.apply(frame);
          rt_->charge_dsm(n, 0, dsm_costs.diff_apply_per_byte_ns,
                          e.diff.payload_bytes());
          ++rt_->counters().updates_applied;
        }
        if (!writable) rt_->mprotect(n, page, Protect::Read);
        updated_pages.push_back(page);
        // A live twin must absorb the foreign bytes.
        if (st.twins.has(page)) {
          st.twins.refresh(page, rt_->table(n).frame(page));
          rt_->charge_dsm(n, 0, dsm_costs.copy_per_byte_ns,
                          rt_->page_size());
        }
      }
      st.cached_version[page.index()] = rec.new_version;
    } else {
      // Stale copy or missing diffs (e.g. a dropped flush): invalidate;
      // the next access refetches from the home. Never a correctness
      // problem -- exactly the paper's unreliable-flush argument.
      UPDSM_LOG(Trace, name() << " invalidate node " << n << " page "
                              << page << " cached "
                              << st.cached_version[page.index()] << " prev "
                              << rec.prev_version << " writers "
                              << rec.writers.count() << " got "
                              << got.count());
      if (page_pushes_updates(page) && current && !got.contains_all(need)) {
        // Update delivery, current copy, missing diffs: this invalidation
        // would not have happened had every update push arrived -- pure
        // recovery from a lost flush (the degradation the fault benches
        // measure). Pages that never push (bar-i; adaptive pages in
        // invalidate mode) never count here.
        ++rt_->counters().recovery_faults;
      }
      if (!got.empty()) ++rt_->counters().updates_ignored;
      rt_->mprotect(n, page, Protect::None);
      if (st.twins.has(page) && !od_m_active) {
        st.twins.discard(page);
      }
    }
  }

  // Drop all inbox entries for this epoch (applied or ignored), recycling
  // their diff buffers into this node's arena (the one they were copied
  // from at delivery).
  for (InboxEntry& e : st.inbox) {
    rt_->arena_for_node(n).diffs.recycle(std::move(e.diff));
  }
  st.inbox.clear();

  // Learning: pages that receive updates feed bar-m's writable union.
  if (overdrive_capable() && !od_active_ && !updated_pages.empty()) {
    std::sort(updated_pages.begin(), updated_pages.end());
    st.update_sets[rt_->epoch().value()] = updated_pages;
  }

  // Overdrive per-epoch preparation for the *next* epoch.
  if (od_active_) {
    overdrive_prepare(n, rt_->epoch().value() + 1);
  }
}

void BarProtocol::barrier_finish() {
  // Refresh the barrier-frozen copyset shadows that mid-phase decisions
  // read: runs after all release work, with every node parked, so the next
  // phase sees one consistent, deterministic value per page.
  for (std::uint32_t p = 0; p < rt_->num_pages(); ++p) {
    global_[p].copyset_frozen = global_[p].copyset.snapshot();
  }
  // Service-snapshot upkeep, in node order: a snapshot must exist exactly
  // for the pages a home keeps ReadWrite with no twin (untracked pages,
  // bar-m home-effect pages). Refresh survivors to this barrier's frame
  // contents -- AFTER barrier_master possibly applied queued foreign diffs
  // to the frame -- and drop the rest.
  for (int i = 0; i < rt_->num_nodes(); ++i) {
    const NodeId n{static_cast<std::uint32_t>(i)};
    NodeState& st = node(n);
    for (const PageId page : st.snapshots.pages_sorted()) {
      if (rt_->table(n).prot(page) == Protect::ReadWrite &&
          !st.twins.has(page)) {
        st.snapshots.refresh(page, rt_->table(n).frame(page));
      } else {
        st.snapshots.discard(page);
      }
    }
  }
}

void BarProtocol::iteration_begin(NodeId n, std::uint64_t iteration) {
  NodeState& st = node(n);
  st.iteration = iteration;
  UPDSM_CHECK(st.iter_begin_epochs.size() == iteration);
  st.iter_begin_epochs.push_back(rt_->epoch().value());

  if (iteration != 1) return;
  // Entry to the time-step loop: "On the first iteration of the time-step
  // loop, the copysets of each page are empty, and page faults occur"
  // (§2.2.1). Discard everything learned during initialisation -- the
  // init-phase writer (typically node 0 populating all data) must not
  // pollute migration decisions or update targeting.
  //
  // The global reset runs once, by whichever node thread arrives first;
  // applications call iteration_begin before any shared access of the
  // entering epoch, so the mutex acquire in every node's call orders the
  // reset before all copyset/writer learning of that epoch. (The frozen
  // copyset shadows are deliberately NOT touched: they refresh at the next
  // barrier_finish, keeping mid-phase decisions schedule-independent.)
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    if (!loop_entered_) {
      loop_entered_ = true;
      for (std::uint32_t p = 0; p < rt_->num_pages(); ++p) {
        PageGlobal& gp = global_[p];
        gp.copyset.clear();
        gp.writers_ever.clear();
        gp.fault_writers_ever.clear();
      }
    }
  }
  // Invalidate every cold (non-home) replica so that "valid non-home copy
  // implies copyset membership" holds from here on -- the invariant the
  // home-private fast path relies on. Iteration-1 reads re-fault and
  // re-join copysets, exactly the paper's "on the first iteration ... page
  // faults occur". Distributed: each node drops its OWN replicas, on its
  // own thread (a node must not touch another node's page table
  // mid-phase).
  for (std::uint32_t p = 0; p < rt_->num_pages(); ++p) {
    const PageId page{p};
    if (global_[p].home == n) continue;
    if (rt_->table(n).prot(page) != Protect::None) {
      rt_->mprotect(n, page, Protect::None);
    }
  }
}

}  // namespace updsm::protocols
