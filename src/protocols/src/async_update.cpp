#include "updsm/protocols/async_update.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <span>

#include "updsm/mem/diff.hpp"

namespace updsm::protocols {

namespace {
using mem::Diff;
using mem::Protect;
using sim::MsgKind;
using sim::SimTime;
}  // namespace

void AsyncProtocol::init(dsm::Runtime& rt) {
  rt_ = &rt;
  nodes_.resize(static_cast<std::size_t>(rt.num_nodes()));
  global_.resize(rt.num_pages());
  journal_on_ = rt.config().trace;
  detector_ = std::make_unique<ConvergenceDetector>(
      rt.num_nodes(), rt.config().async_tolerance,
      rt.config().async_convergence_window);
  // Homes: same block distribution as bar-* (contiguous page ranges per
  // node), with the same Zhou-style static_homes override. No migration:
  // the async protocols keep homes fixed -- there is no barrier at which a
  // home handoff could be made globally visible.
  const std::uint32_t pages = rt.num_pages();
  const std::uint32_t n = static_cast<std::uint32_t>(rt.num_nodes());
  const std::uint32_t per = (pages + n - 1) / n;
  for (std::uint32_t p = 0; p < pages; ++p) {
    global_[p].home = NodeId{std::min(p / per, n - 1)};
  }
  const auto& annotated = rt.config().static_homes;
  for (std::uint32_t p = 0;
       p < pages && p < static_cast<std::uint32_t>(annotated.size()); ++p) {
    UPDSM_REQUIRE(annotated[p] < n, "static home " << annotated[p]
                                                   << " for page " << p
                                                   << " out of range");
    global_[p].home = NodeId{annotated[p]};
  }
  for (int i = 0; i < rt.num_nodes(); ++i) {
    const NodeId node_id{static_cast<std::uint32_t>(i)};
    auto& st = nodes_[static_cast<std::size_t>(i)];
    st.cached_version.assign(pages, 0);
    st.twins.bind_pool(&rt.arena_for_node(node_id).pages);
    // Everyone starts with an identical zero-filled copy, write-protected.
    for (std::uint32_t p = 0; p < pages; ++p) {
      rt.table(node_id).set_prot(PageId{p}, Protect::Read);
    }
  }
}

void AsyncProtocol::fetch_page(NodeId n, PageId page, bool count_as_miss) {
  PageGlobal& gp = gpage(page);
  const NodeId home = gp.home;
  UPDSM_CHECK_MSG(home != n, "node " << n << " fetching page " << page
                                     << " from itself");
  const std::uint32_t psize = rt_->page_size();
  const SimTime serve = static_cast<SimTime>(
      rt_->costs().dsm.copy_per_byte_ns * static_cast<double>(psize));
  rt_->roundtrip(n, home, MsgKind::DataRequest, 16, psize + 32, serve);
  // Serve the page's PUBLISHED contents: the home's twin when the home is
  // mid-sweep with unpublished local writes, else the frame itself. The
  // copy runs under the home's service mutex for the same trap-upgrade
  // reason as bar-* (only relevant when this protocol is driven under the
  // parallel gang; under the async gang every other node is parked).
  {
    NodeState& hs = node(home);
    auto dst = rt_->table(n).frame(page);
    std::shared_lock<std::shared_mutex> lock(rt_->service_mutex(home));
    std::span<const std::byte> src = hs.twins.has(page)
                                         ? hs.twins.get(page)
                                         : rt_->table(home).frame(page);
    std::memcpy(dst.data(), src.data(), dst.size());
  }
  rt_->charge_dsm(n, 0, rt_->costs().dsm.copy_per_byte_ns, psize);
  if (count_as_miss) {
    rt_->clock(n).advance(sim::TimeCat::Os, rt_->os(n).fault_service_extra());
    ++rt_->counters().remote_misses;
  }
  ++rt_->counters().pages_fetched;
  rt_->mprotect(n, page, Protect::Read);
  node(n).cached_version[page.index()] = gp.version;
  gp.copyset.add(n);
  note(JournalEntry::Kind::Fetch, n, page, gp.version, 0);
}

void AsyncProtocol::apply_diff(NodeId m, PageId page, const mem::Diff& diff) {
  NodeState& st = node(m);
  std::lock_guard<std::shared_mutex> lock(rt_->service_mutex(m));
  diff.apply(rt_->table(m).frame(page));
  // Keep the twin in sync: at a home it IS the published contents; at a
  // concurrent writer it keeps the writer's next diff from re-publishing
  // these foreign bytes as its own.
  if (st.twins.has(page)) diff.apply(st.twins.get_mut(page));
}

void AsyncProtocol::read_fault(NodeId n, PageId page) {
  UPDSM_CHECK_MSG(rt_->table(n).prot(page) == Protect::None,
                  "async read fault on readable page " << page);
  fetch_page(n, page, /*count_as_miss=*/true);
}

void AsyncProtocol::write_fault(NodeId n, PageId page) {
  NodeState& st = node(n);
  if (rt_->table(n).prot(page) == Protect::None) {
    fetch_page(n, page, /*count_as_miss=*/true);
  }
  // Every write is twinned, home or not: the diff is what gets published,
  // and at a home the twin additionally preserves the published contents
  // that fetches are served from while the frame is dirty.
  std::lock_guard<std::shared_mutex> lock(rt_->service_mutex(n));
  if (!st.twins.has(page)) {
    st.twins.create(page, rt_->table(n).frame(page));
    ++rt_->counters().twins_created;
    rt_->charge_dsm(n, 0, rt_->costs().dsm.copy_per_byte_ns,
                    rt_->page_size());
  }
  rt_->mprotect(n, page, Protect::ReadWrite);
}

bool AsyncProtocol::async_publish(NodeId n, std::uint64_t step,
                                  double residual) {
  NodeState& st = node(n);
  const auto& dsm_costs = rt_->costs().dsm;

  for (const PageId page : st.twins.pages_sorted()) {
    PageGlobal& gp = gpage(page);
    Diff diff = rt_->arena_for_node(n).diffs.take();
    Diff::create_into(diff, st.twins.get(page), rt_->table(n).frame(page));
    rt_->charge_dsm(n, dsm_costs.diff_fixed, dsm_costs.diff_create_per_byte_ns,
                    rt_->page_size());
    ++rt_->counters().diffs_created;
    st.twins.discard(page);
    rt_->mprotect(n, page, Protect::Read);
    if (diff.empty()) {
      ++rt_->counters().zero_diffs;
      rt_->arena_for_node(n).diffs.recycle(std::move(diff));
      continue;
    }

    const std::uint64_t base = gp.version;
    const std::uint64_t next = base + 1;
    if (n != gp.home) {
      // Reliable flush to the home, applied eagerly: the staged record
      // carries the wire cost, the bytes land now (exactly one node runs
      // at a time, so "now" is a well-defined global order).
      rt_->stage_flush(n, gp.home, page, n, diff, /*reliable=*/true, {});
      apply_diff(gp.home, page, diff);
      rt_->charge_dsm(gp.home, 0, dsm_costs.diff_apply_per_byte_ns,
                      diff.payload_bytes(), /*sigio=*/true);
    }
    gp.version = next;
    if (n == gp.home || st.cached_version[page.index()] == base) {
      // The writer's copy was current (or it IS the home), so frame ==
      // published state `next` and it may adopt the new version.
      st.cached_version[page.index()] = next;
    }
    // Otherwise the writer missed pushes for this page: its own bytes are
    // published, but the frame's *foreign* bytes still date from its old
    // cached_version. Adopting `next` here would hide that staleness from
    // the lag check forever (the halo would freeze and convergence stall);
    // keeping the old version lets the bound force a refresh instead.
    note(JournalEntry::Kind::Publish, n, page, next, step);

    if (mode_ == AsyncMode::Update) {
      // Push the diff to every cached copy. Unreliable: a dropped push
      // just leaves the member's copy older, and the staleness refresh
      // heals it within the bound.
      gp.copyset.for_each([&](NodeId member) {
        if (member == n || member == gp.home) return;
        ++rt_->counters().updates_sent;
        rt_->stage_flush(
            n, member, page, n, diff, /*reliable=*/false,
            [this, member, page, base, next,
             step](const dsm::FlushRecordView& rec) {
              ++rt_->counters().updates_received;
              NodeState& ms = node(member);
              if (rt_->table(member).prot(page) == Protect::None ||
                  ms.cached_version[page.index()] != base) {
                ++rt_->counters().updates_ignored;
                return;
              }
              Diff copy = rt_->arena_for_node(member).diffs.take();
              rec.decode_into(copy);
              apply_diff(member, page, copy);
              rt_->charge_dsm(member, 0,
                              rt_->costs().dsm.diff_apply_per_byte_ns,
                              copy.payload_bytes(), /*sigio=*/true);
              ++rt_->counters().updates_applied;
              ms.cached_version[page.index()] = next;
              note(JournalEntry::Kind::Apply, member, page, next, step);
              rt_->arena_for_node(member).diffs.recycle(std::move(copy));
            });
      });
    } else {
      // Invalidate every cached copy -- except concurrent writers (a live
      // twin means unpublished local writes that must not be destroyed;
      // their copy ages within the staleness bound instead). Reliable:
      // losing an invalidation would leave a copy stale beyond the bound.
      std::vector<NodeId> members;
      gp.copyset.for_each([&](NodeId member) {
        if (member == n || member == gp.home) return;
        if (node(member).twins.has(page)) return;
        members.push_back(member);
      });
      for (const NodeId member : members) {
        rt_->reliable_send(MsgKind::Control, n, member, 16);
        rt_->mprotect(member, page, Protect::None, /*sigio=*/true);
        node(member).cached_version[page.index()] = 0;
        gp.copyset.remove(member);
        ++rt_->counters().async_invalidations;
        note(JournalEntry::Kind::Invalidate, member, page, next, step);
      }
    }
    rt_->arena_for_node(n).diffs.recycle(std::move(diff));
  }
  rt_->seal_flush_batches();

  // Residual report to the master (which hosts the detector). Reports are
  // fire-and-forget like update pushes (§2.1.2): a reliable exchange here
  // would make non-master clocks pay retry timeouts under lossy plans while
  // the master pays nothing, and the resulting clock skew starves the slow
  // nodes of scheduler turns. The detector itself is a deterministic global
  // monitor -- convergence is decided from every residual whether or not
  // the modelled report message survived the wire (its verdict is sticky
  // and conservative, so a lost report can only delay the *costing* of
  // detection, never un-converge it).
  if (n != rt_->master()) {
    (void)rt_->flush(n, rt_->master(), 24, /*reliable=*/false);
  }
  detector_->report(static_cast<int>(n.value()), residual);
  return detector_->converged();
}

void AsyncProtocol::async_refresh(NodeId n) {
  NodeState& st = node(n);
  const int bound = rt_->config().staleness_bound;
  for (std::uint32_t p = 0; p < rt_->num_pages(); ++p) {
    const PageId page{p};
    PageGlobal& gp = gpage(page);
    if (gp.home == n) continue;
    if (rt_->table(n).prot(page) == Protect::None) continue;
    const std::uint64_t cached = st.cached_version[p];
    UPDSM_CHECK_MSG(gp.version >= cached, "cached version ran ahead of home"
                                              << " for page " << page);
    if (gp.version - cached > static_cast<std::uint64_t>(bound)) {
      fetch_page(n, page, /*count_as_miss=*/false);
      ++rt_->counters().async_refreshes;
    }
  }
  // The sweep the node is about to run reads exactly the state installed
  // by now (versions cannot advance until it yields again).
  note(JournalEntry::Kind::StepBegin, n, PageId{0}, 0, 0);
}

void AsyncProtocol::barrier_arrive(NodeId n) {
  // Degenerate sync path (init/teardown barriers, or an async protocol
  // driven under a barrier gang): publish every twinned page to its home.
  NodeState& st = node(n);
  const auto& dsm_costs = rt_->costs().dsm;
  for (const PageId page : st.twins.pages_sorted()) {
    PageGlobal& gp = gpage(page);
    Diff diff = rt_->arena_for_node(n).diffs.take();
    Diff::create_into(diff, st.twins.get(page), rt_->table(n).frame(page));
    rt_->charge_dsm(n, dsm_costs.diff_fixed, dsm_costs.diff_create_per_byte_ns,
                    rt_->page_size());
    ++rt_->counters().diffs_created;
    st.twins.discard(page);
    rt_->mprotect(n, page, Protect::Read);
    if (diff.empty()) {
      ++rt_->counters().zero_diffs;
      rt_->arena_for_node(n).diffs.recycle(std::move(diff));
      continue;
    }
    const std::uint64_t next = gp.version + 1;
    if (n != gp.home) {
      rt_->stage_flush(n, gp.home, page, n, diff, /*reliable=*/true, {});
      apply_diff(gp.home, page, diff);
      rt_->charge_dsm(gp.home, 0, dsm_costs.diff_apply_per_byte_ns,
                      diff.payload_bytes(), /*sigio=*/true);
    }
    gp.version = next;
    // Same adoption rule as async_publish (the journal replay model
    // mirrors one rule for every Publish): a writer whose copy was stale
    // keeps its old version. Here it is also moot -- barrier_release drops
    // every non-home copy right after.
    if (n == gp.home || st.cached_version[page.index()] + 1 == next) {
      st.cached_version[page.index()] = next;
    }
    note(JournalEntry::Kind::Publish, n, page, next, 0);
    rt_->arena_for_node(n).diffs.recycle(std::move(diff));
  }
}

void AsyncProtocol::barrier_release(NodeId n) {
  // Drop every non-home copy: the next phase refetches current versions on
  // demand, so a barrier is a full synchronization point regardless of how
  // stale the copies were allowed to get before it.
  NodeState& st = node(n);
  for (std::uint32_t p = 0; p < rt_->num_pages(); ++p) {
    const PageId page{p};
    PageGlobal& gp = gpage(page);
    if (gp.home == n) continue;
    if (rt_->table(n).prot(page) == Protect::None) continue;
    rt_->mprotect(n, page, Protect::None);
    st.cached_version[p] = 0;
    gp.copyset.remove(n);
    note(JournalEntry::Kind::Invalidate, n, page, gp.version, 0);
  }
}

}  // namespace updsm::protocols
