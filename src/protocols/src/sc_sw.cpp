#include "updsm/protocols/sc_sw.hpp"

#include <cstring>

namespace updsm::protocols {

namespace {
using mem::Protect;
using sim::MsgKind;
using sim::SimTime;
}  // namespace

void ScSwProtocol::init(dsm::Runtime& rt) {
  rt_ = &rt;
  pages_.resize(rt.num_pages());
  // Initial exclusive owner: block distribution, like bar's initial homes.
  const std::uint32_t pages = rt.num_pages();
  const auto n = static_cast<std::uint32_t>(rt.num_nodes());
  const std::uint32_t per = (pages + n - 1) / n;
  for (std::uint32_t p = 0; p < pages; ++p) {
    const NodeId owner{std::min(p / per, n - 1)};
    pages_[p].owner = owner;
    pages_[p].holders.add(owner);
    for (std::uint32_t i = 0; i < n; ++i) {
      rt.table(NodeId{i}).set_prot(
          PageId{p}, i == owner.value() ? Protect::ReadWrite : Protect::None);
    }
  }
}

void ScSwProtocol::transfer(NodeId n, PageId page) {
  const NodeId owner = pages_[page.index()].owner;
  UPDSM_CHECK(owner != n);
  const std::uint32_t psize = rt_->page_size();
  rt_->roundtrip(n, owner, MsgKind::DataRequest, 16, psize + 32,
                 static_cast<SimTime>(rt_->costs().dsm.copy_per_byte_ns *
                                      static_cast<double>(psize)));
  std::memcpy(rt_->table(n).frame(page).data(),
              rt_->table(owner).frame(page).data(), psize);
  rt_->charge_dsm(n, 0, rt_->costs().dsm.copy_per_byte_ns, psize);
  ++rt_->counters().pages_fetched;
  ++rt_->counters().remote_misses;
}

void ScSwProtocol::read_fault(NodeId n, PageId page) {
  PageDir& dir = pages_[page.index()];
  transfer(n, page);
  // The owner keeps its copy but loses write permission (shared state).
  if (rt_->table(dir.owner).prot(page) == Protect::ReadWrite) {
    rt_->mprotect(dir.owner, page, Protect::Read, /*sigio=*/true);
  }
  rt_->mprotect(n, page, Protect::Read);
  dir.holders.add(n);
}

void ScSwProtocol::write_fault(NodeId n, PageId page) {
  PageDir& dir = pages_[page.index()];
  if (rt_->table(n).prot(page) == Protect::None) {
    transfer(n, page);
  }
  // Gain exclusivity: invalidate every other holder. Each invalidation is
  // a (small) reliable request/ack pair -- the very arbitration traffic
  // multi-writer LRC removes.
  dir.holders.for_each([&](NodeId holder) {
    if (holder == n) return;
    rt_->roundtrip(n, holder, MsgKind::DataRequest, 16, 8, 0);
    rt_->mprotect(holder, page, Protect::None, /*sigio=*/true);
  });
  dir.holders.clear();
  dir.holders.add(n);
  dir.owner = n;
  rt_->mprotect(n, page, Protect::ReadWrite);
}

}  // namespace updsm::protocols
