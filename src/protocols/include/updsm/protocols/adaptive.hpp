// adaptive: per-page protocol selection under the active cost model.
//
// The paper picks ONE delivery mode for the whole run (invalidate, update,
// or overdrive) and §3-§4 show the right choice depends on the platform's
// per-message / per-byte / trap cost ratios -- ratios that moved by two
// orders of magnitude between 1998 UDP-over-HPS and kernel-bypass NICs.
// This protocol generalizes overdrive's write-set history into an online,
// per-page policy: for every page it keeps a sliding window of the last W
// written epochs (observed writer set, summed diff bytes, consumer count,
// demand fetches) and, at each barrier the page was written in, compares
// the *modeled* per-epoch cost of the three delivery modes under the
// cluster's active CostModel:
//
//   invalidate  writers trap+twin+diff; every consumer refetches the page
//   update      writers trap+twin+diff; diffs are pushed and applied
//   overdrive   the page's learned writers are permanently armed --
//               twinned and write-enabled -- so steady-state writes trap
//               no segv and applies between co-writers need no protection
//               flips, like a page-granular bar-s
//
// The cheapest mode wins, with hysteresis (a challenger must undercut the
// incumbent by 10%) so borderline pages do not thrash. Overdrive is only
// entered for pages whose writer set was identical across a full window --
// and unlike bar-m it stays SAFE under a later pattern change: a
// write-enabled page ALWAYS carries a live twin that is diffed at the
// next barrier, so an untrapped write is captured at the next sequence
// point, and a new writer simply traps down the ordinary bar-u path and
// arms itself. The residual safety tax is an empty diff scan on armed
// epochs the page is not written; *phase parking* prices even that away
// where the pattern allows: when a page's written epochs form an exact
// periodic residue pattern (validated against the app's learned
// barriers-per-iteration period), its replicas are write-protected on the
// predicted-quiet residues with the synced twin RETAINED. A read-protected
// page cannot change, so parked epochs need no scan at all, re-arming at
// the next predicted-write residue is a single mprotect (no twin copy),
// and a mispredicted write simply traps -- unlike bar-m, which skips the
// quiet-epoch scans by fiat and silently loses unpredicted writes. Pages
// whose pattern is aperiodic, or whose (possibly VM-stressed) mprotect
// price exceeds the scans saved, stay permanently armed instead; either
// way a pattern change costs time, never correctness -- there is no
// silent-divergence mode and no learn-iteration alignment requirement.
//
// Determinism: every policy input is a barrier-frozen or commutative
// quantity (value-based writer sets, diff byte sums, copyset membership,
// total fetch counts), modes only change inside barrier_finish() while all
// nodes are parked, and mid-phase readers (write_fault's push decision)
// see one constant value per epoch -- the same argument as the
// copyset_frozen shadow, so results are bit-identical across gang modes,
// --jobs, --workers, and seeded fault plans (adaptive_conformance_test).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "updsm/protocols/bar.hpp"
#include "updsm/sim/cost_model.hpp"

namespace updsm::protocols {

/// Per-page delivery mode picked by the policy.
enum class PageMode : std::uint8_t { Invalidate, Update, Overdrive };

[[nodiscard]] constexpr const char* to_string(PageMode m) {
  switch (m) {
    case PageMode::Invalidate:
      return "invalidate";
    case PageMode::Update:
      return "update";
    case PageMode::Overdrive:
      return "overdrive";
  }
  return "?";
}

/// Window summary for one page: the policy's only inputs.
struct PageSignal {
  double write_rate = 1.0;     // written epochs / spanned epochs, (0, 1]
  double writers_avg = 0.0;    // mean distinct writers per written epoch
  double diff_bytes_avg = 0.0; // mean summed diff payload per written epoch
  double consumers_avg = 0.0;  // mean receivers per push (copyset size - 1)
  double fetches_avg = 0.0;    // mean demand fetches between written epochs
  bool stable_writers = false; // identical writer set across the window
  bool window_full = false;
};

/// The pure cost comparison, separated from the protocol so
/// bench/micro_primitives can price one evaluation (BM_AdaptivePolicyEval)
/// and cost_model_test can pin its decisions platform-by-platform.
struct AdaptivePolicy {
  const sim::CostModel* costs = nullptr;
  std::uint32_t page_bytes = 8192;
  /// A challenger mode must undercut the incumbent's modeled cost by this
  /// factor before the page switches (hysteresis against thrashing).
  double hysteresis = 0.90;

  /// Modeled per-written-epoch cost (ns) of running `m` for a page with
  /// window summary `s`. `current` matters only for invalidate, whose
  /// refetch count uses observed fetches while invalidation is live.
  [[nodiscard]] double modeled_cost(PageMode m, PageMode current,
                                    const PageSignal& s) const;

  /// The mode the page should run next epoch.
  [[nodiscard]] PageMode evaluate(PageMode current, const PageSignal& s) const;

  /// Should an overdrive page's pure-reader consumers be armed too?
  /// A parked consumer pays a protection flip pair around every diff apply;
  /// an armed one pays the per-epoch empty scan plus a post-apply twin
  /// refresh instead. The break-even depends on the page's actual mprotect
  /// cost (`mprotect_ns`), which is location-dependent under VM stress --
  /// the caller passes the page's own slow/fast cost, so consumers of slow
  /// pages arm while consumers of fast pages keep trapping applies.
  [[nodiscard]] bool consumer_arming_pays(const PageSignal& s,
                                          double mprotect_ns) const;
};

class AdaptiveProtocol final : public BarProtocol {
 public:
  AdaptiveProtocol() : BarProtocol(BarMode::Update) {}

  [[nodiscard]] std::string_view name() const override { return "adaptive"; }

  void init(dsm::Runtime& rt) override;
  void barrier_finish() override;

  // ---- introspection (tests, benches) ------------------------------------
  [[nodiscard]] PageMode page_mode(PageId p) const {
    return modes_[p.index()];
  }
  [[nodiscard]] const AdaptivePolicy& policy() const { return policy_; }

 protected:
  [[nodiscard]] bool page_pushes_updates(PageId p) const override {
    return modes_[p.index()] != PageMode::Invalidate;
  }
  /// Overdrive pages keep the twin + write enable across every barrier
  /// (permanently armed); all other pages take the bar-u park path.
  [[nodiscard]] bool page_keep_writable(PageId p) const override {
    return modes_[p.index()] == PageMode::Overdrive;
  }
  void observe_diff(NodeId n, PageId page, std::uint64_t bytes) override;
  void observe_fetch(NodeId n, PageId page) override;
  void observe_epoch_page(PageId page, const dsm::NodeSet& writers,
                          bool home_wrote) override;

 private:
  struct Sample {
    dsm::NodeSet writers;
    std::uint64_t diff_bytes = 0;
    std::uint64_t epoch = 0;
    std::uint32_t consumers = 0;
    std::uint32_t fetches = 0;
  };
  /// Fixed-capacity ring of the last `window_` written-epoch samples.
  struct History {
    std::vector<Sample> ring;
    std::size_t head = 0;  // next slot to overwrite
    std::size_t count = 0;
  };

  [[nodiscard]] PageSignal summarize(const History& h) const;
  void push_sample(PageId page, Sample s);
  void apply_switch(PageId page, PageMode from, PageMode to);
  /// Twin + write-enable the page's learned writers (valid replicas only)
  /// on overdrive entry; later writers arm themselves via the trap path.
  void arm_page(PageId page);
  /// Recompute the page's phase mask (phase parking) from its window.
  void update_phase(PageId page);

  AdaptivePolicy policy_;
  int window_ = 6;
  std::vector<PageMode> modes_;  // mutated only in barrier_finish
  std::vector<History> history_;
  /// Phase parking state. `period_` is the app's learned barriers per
  /// time-step iteration (0 until two iteration begins are on record);
  /// `phase_mask_[p]` is the residue bitmask (bit r = page written on
  /// epochs == r mod period_) of a VALIDATED exact periodic pattern, or 0
  /// for permanently-armed pages. `od_pages_` (sorted) drives the
  /// finish-time park/re-arm pass. All three mutate only in
  /// barrier_finish and are read mid-phase as barrier-frozen values.
  std::uint64_t period_ = 0;
  std::vector<std::uint64_t> phase_mask_;
  std::vector<PageId> od_pages_;
  /// Diff payload accumulator for the epoch in flight (barrier_arrive runs
  /// in controller context, so plain integers suffice).
  std::vector<std::uint64_t> epoch_diff_bytes_;
  /// Demand fetches since the page's last written epoch. Bumped mid-phase
  /// from fault handlers (possibly concurrently), so these are atomics;
  /// totals are commutative and schedule-independent.
  std::unique_ptr<std::atomic<std::uint32_t>[]> fetch_counts_;
  /// Pages sampled this epoch (sorted: master visits pages in sorted
  /// order); barrier_finish re-evaluates exactly these.
  std::vector<PageId> sampled_;
};

}  // namespace updsm::protocols
