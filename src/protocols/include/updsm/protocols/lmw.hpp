// lmw-i / lmw-u: homeless multi-writer lazy-release-consistency protocols
// (paper §2.1), restricted -- like the whole study -- to barrier-only codes.
//
// lmw-i (invalidate): modifications are captured as diffs at each barrier;
// write notices ride the barrier messages; recipients invalidate named
// pages; the next access faults and fetches the named diffs from their
// creators. Diffs are *retained* by creators until an explicit garbage
// collection (Figure 1's point: nobody knows who might still request one).
//
// lmw-u (hybrid update): producers track per-page copysets (a node enters a
// page's copyset at producer q when it requests one of q's diffs for that
// page). At each barrier a producer flushes its new diffs, unreliably, to
// the page's copyset. Receivers *store* the updates without applying them:
// the next access still faults (a segv), but if every needed diff is
// already stored locally the fault is satisfied without network traffic --
// so remote misses vanish while segv/mprotect traffic remains (this is the
// gap bar-u closes, §3.3 end).
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "updsm/dsm/copyset.hpp"
#include "updsm/dsm/diff_store.hpp"
#include "updsm/dsm/protocol.hpp"
#include "updsm/dsm/runtime.hpp"
#include "updsm/dsm/twin_store.hpp"
#include "updsm/dsm/write_notice.hpp"

namespace updsm::protocols {

class LmwProtocol final : public dsm::CoherenceProtocol {
 public:
  /// `use_updates` selects lmw-u; false is lmw-i.
  explicit LmwProtocol(bool use_updates) : use_updates_(use_updates) {}

  [[nodiscard]] std::string_view name() const override {
    return use_updates_ ? "lmw-u" : "lmw-i";
  }

  void init(dsm::Runtime& rt) override;
  void read_fault(NodeId n, PageId page) override;
  void write_fault(NodeId n, PageId page) override;
  /// Parallel-safe (see protocol.hpp): fault-handler decisions read only
  /// barrier-frozen state (`exclusive` flags, creators' diff stores, service
  /// snapshots), mutations are node-local or commutative, and exclusivity
  /// exits are deferred to barrier_begin().
  [[nodiscard]] bool parallel_safe() const override { return true; }
  void barrier_begin() override;
  void barrier_arrive(NodeId n) override;
  void barrier_master() override;
  void barrier_release(NodeId n) override;
  void iteration_begin(NodeId n, std::uint64_t iteration) override;

  /// Total bytes of diffs currently retained across all nodes (creators'
  /// stores plus lmw-u stored updates): the homeless memory appetite.
  [[nodiscard]] std::uint64_t retained_diff_bytes() const;

  [[nodiscard]] std::uint64_t gc_rounds() const { return gc_rounds_; }

  [[nodiscard]] std::uint64_t live_page_buffers() const override {
    std::uint64_t live = 0;
    for (const NodeState& st : nodes_) {
      live += st.twins.size() + st.snapshots.size();
    }
    return live;
  }

 private:
  struct PageLocal {
    /// Notices for foreign diffs that must be applied before the next
    /// access; kept sorted by WriteNoticeOrder.
    dsm::NoticeList pending;
    /// Consumers of THIS node's diffs for this page (lmw-u producers push
    /// to these). Learned from diff requests.
    dsm::Copyset copyset;
    /// Epoch of this node's newest write notice for the page; the diff id
    /// later requesters will ask for while the page sits in single-writer
    /// mode.
    EpochId last_notice_epoch{0};
    /// TreadMarks-style single-writer mode: this node is the only holder
    /// of the page (its last notice invalidated every replica, and nobody
    /// has requested a diff), so it writes untrapped -- no twins, diffs or
    /// notices -- until a remote access fetches the whole page.
    bool exclusive = false;
  };

  struct NodeState {
    std::vector<PageLocal> pages;
    dsm::TwinStore twins;
    /// Diffs this node created (it is the only server for them).
    dsm::DiffStore created;
    /// lmw-u: unapplied updates received by flush, keyed like created diffs.
    dsm::DiffStore stored_updates;
    /// Pages whose non-empty diff was created at the current barrier
    /// (candidates for single-writer mode, judged at release).
    std::vector<PageId> epoch_diffed;
    /// Service snapshots of THIS node's exclusive pages: the page contents
    /// as of the previous barrier, refreshed at every barrier_arrive while
    /// the page stays exclusive. Mid-phase single-writer fetches are served
    /// from the snapshot (immutable between barriers), never from the live
    /// frame the owner is concurrently writing -- that is what makes the
    /// fast path parallel-safe. Invariant: snapshots.has(p) == pages[p]
    /// .exclusive. Simulator machinery; the copy is not charged.
    dsm::TwinStore snapshots;
    /// Deferred-work log, appended by THIS node's thread mid-phase: one
    /// (creator, page) entry per single-writer fast-path fetch. Replayed --
    /// merged over all nodes, sorted, deduplicated -- by barrier_begin(),
    /// which performs the creator-side exclusivity exit that the serializing
    /// baton used to do inline at fetch time.
    std::vector<std::pair<NodeId, PageId>> fast_fetches;
  };

  /// Ensures node n has a current copy of `page` by fetching and applying
  /// all pending diffs; charges everything; returns true if any network
  /// request was needed. `demand` is true for application faults (counted
  /// as remote misses; the creator learns a consumer) and false for the
  /// garbage-collection sweep, which must neither inflate miss counts nor
  /// teach copysets phantom consumers.
  bool validate_page(NodeId n, PageId page, bool demand = true);

  /// Forces every node current on every page, then drops all diff state:
  /// the explicit global garbage collection homeless protocols need.
  void garbage_collect();

  [[nodiscard]] NodeState& node(NodeId n) { return nodes_[n.index()]; }

  bool use_updates_;
  dsm::Runtime* rt_ = nullptr;
  std::vector<NodeState> nodes_;
  /// Notices generated at the current barrier, aggregated by the master and
  /// redistributed on release.
  dsm::NoticeList epoch_notices_;
  bool gc_requested_ = false;
  /// Guards the one-shot loop-entry copyset reset: iteration_begin runs on
  /// node threads mid-phase under the parallel gang, and applications call
  /// it before any shared access of the entering epoch, so the mutex
  /// acquire orders the reset before every add of that epoch.
  std::mutex loop_mu_;
  bool loop_entered_ = false;
  std::uint64_t gc_rounds_ = 0;
};

}  // namespace updsm::protocols
