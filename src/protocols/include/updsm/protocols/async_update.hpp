// async-u / async-i: stale-tolerant home-based protocols for barrier-free
// (GangMode::Async) iteration.
//
// Like bar-*, every page has a home holding the authoritative copy and a
// scalar version index. Unlike bar-*, there is no barrier at which diffs
// are exchanged: each node brackets every iteration of its own loop with
//
//   async_publish -- diff every twinned page against its twin, flush the
//     diffs reliably to the homes (version bump per modified page), and
//     either push the diff to the page's cached copies (async-u) or
//     invalidate them (async-i). The node's local residual feeds a global
//     epoch/residual convergence detector (protocols/convergence.hpp).
//   async_refresh -- after the scheduler yield returns, refetch every
//     cached page whose home version ran ahead of the configured
//     staleness bound while the node was parked.
//
// The staleness bound is exact, not approximate: under the async gang
// exactly one node runs at a time, so home versions are frozen during a
// node's run window and can only advance while it is parked -- which is
// precisely the window async_refresh closes. Every read of a sweep
// therefore observes a copy at most `staleness_bound` publishes old (the
// staleness_property_test replays the journal against a reference model
// to pin this).
//
// The barrier hooks implement a deliberately simple degenerate protocol
// (flush at arrival, drop every non-home copy at release): they only run
// for the init/teardown barriers of async apps -- or when an async
// protocol is driven under a barrier gang for comparison -- where
// correctness matters and performance does not.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "updsm/dsm/copyset.hpp"
#include "updsm/dsm/protocol.hpp"
#include "updsm/dsm/runtime.hpp"
#include "updsm/dsm/twin_store.hpp"
#include "updsm/protocols/convergence.hpp"

namespace updsm::protocols {

enum class AsyncMode {
  Update,      // async-u: publishes push diffs to cached copies
  Invalidate,  // async-i: publishes invalidate cached copies
};

[[nodiscard]] constexpr const char* to_string(AsyncMode m) {
  switch (m) {
    case AsyncMode::Update:
      return "async-u";
    case AsyncMode::Invalidate:
      return "async-i";
  }
  return "?";
}

class AsyncProtocol : public dsm::CoherenceProtocol {
 public:
  explicit AsyncProtocol(AsyncMode mode) : mode_(mode) {}

  [[nodiscard]] std::string_view name() const override {
    return to_string(mode_);
  }

  void init(dsm::Runtime& rt) override;
  void read_fault(NodeId n, PageId page) override;
  void write_fault(NodeId n, PageId page) override;
  /// Fault handlers follow the bar-* parallel-safe discipline (decisions on
  /// frozen state, page bytes copied under the home's service mutex). The
  /// async hooks additionally mutate remote state (update application,
  /// invalidation, version bumps), which is safe because they only run
  /// under the async gang, with every other node parked.
  [[nodiscard]] bool parallel_safe() const override { return true; }

  void barrier_arrive(NodeId n) override;
  void barrier_master() override {}
  void barrier_release(NodeId n) override;

  [[nodiscard]] bool async_publish(NodeId n, std::uint64_t step,
                                   double residual) override;
  void async_refresh(NodeId n) override;
  [[nodiscard]] bool async_converged() const override {
    return detector_ != nullptr && detector_->converged();
  }

  [[nodiscard]] std::uint64_t live_page_buffers() const override {
    std::uint64_t live = 0;
    for (const NodeState& st : nodes_) live += st.twins.size();
    return live;
  }

  // ---- introspection (tests, benches) ------------------------------------
  [[nodiscard]] AsyncMode mode() const { return mode_; }
  [[nodiscard]] NodeId home(PageId p) const { return global_[p.index()].home; }
  [[nodiscard]] std::uint64_t home_version(PageId p) const {
    return global_[p.index()].version;
  }
  [[nodiscard]] std::uint64_t cached_version(NodeId n, PageId p) const {
    return nodes_[n.index()].cached_version[p.index()];
  }
  [[nodiscard]] dsm::Copyset copyset(PageId p) const {
    return global_[p.index()].copyset;
  }
  [[nodiscard]] const ConvergenceDetector& detector() const {
    return *detector_;
  }

  /// Protocol event journal, recorded only when config.trace is set. The
  /// staleness property test replays it against a std::map reference model;
  /// entry order is the exact event order of the (single-threaded) async
  /// schedule.
  struct JournalEntry {
    enum class Kind : std::uint8_t {
      StepBegin,   // node begins a sweep: its cached state is now read
      Publish,     // node published a non-empty diff; `version` = new home v
      Fetch,       // node installed the page at home `version` (fault/refresh)
      Apply,       // update push applied; node's copy is now at `version`
      Invalidate,  // node's copy dropped (async-i publish or barrier release)
    };
    Kind kind;
    std::uint32_t node;
    std::uint32_t page;
    std::uint64_t version;
    std::uint64_t step;
  };
  [[nodiscard]] const std::vector<JournalEntry>& journal() const {
    return journal_;
  }

 private:
  struct PageGlobal {
    NodeId home{0};
    /// Publish count: bumped once per non-empty published diff (and per
    /// page modified across a barrier). 0 = initial contents.
    std::uint64_t version = 0;
    /// Nodes caching the page; drives pushes (async-u) and invalidations
    /// (async-i). Correctness never depends on it -- the staleness refresh
    /// checks every readable page against the home version directly.
    dsm::Copyset copyset;
  };

  struct NodeState {
    std::vector<std::uint64_t> cached_version;  // per page
    /// Twin per page written since this node's last publish. The home's
    /// twin doubles as the page's PUBLISHED contents while the frame holds
    /// unpublished writes; fetches are served twin-first.
    dsm::TwinStore twins;
  };

  [[nodiscard]] NodeState& node(NodeId n) { return nodes_[n.index()]; }
  [[nodiscard]] PageGlobal& gpage(PageId p) { return global_[p.index()]; }

  /// Whole-page fetch from the home (twin-first, under the home's service
  /// mutex). Installs the page readable at the current home version.
  void fetch_page(NodeId n, PageId page, bool count_as_miss);
  /// Applies a published diff to node `m`'s frame -- and to its twin when
  /// one exists, so (a) a home's twin stays equal to the published
  /// contents and (b) a concurrent writer's next diff does not re-publish
  /// foreign bytes as its own.
  void apply_diff(NodeId m, PageId page, const mem::Diff& diff);
  void note(JournalEntry::Kind kind, NodeId n, PageId page,
            std::uint64_t version, std::uint64_t step) {
    if (journal_on_) {
      journal_.push_back(JournalEntry{kind, n.value(), page.value(), version,
                                      step});
    }
  }

  AsyncMode mode_;
  dsm::Runtime* rt_ = nullptr;
  std::vector<NodeState> nodes_;
  std::vector<PageGlobal> global_;
  std::unique_ptr<ConvergenceDetector> detector_;
  std::vector<JournalEntry> journal_;
  bool journal_on_ = false;
};

}  // namespace updsm::protocols
