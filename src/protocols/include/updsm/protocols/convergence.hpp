// Epoch/residual-based convergence detection for barrier-free iteration.
//
// Barrier-synchronous solvers decide doneness collectively: every node
// contributes its local residual to a reduction and every node sees the
// same verdict at the same barrier. A barrier-free solver has neither the
// reduction nor the "same time" -- nodes publish residuals at their own
// pace, reports arrive interleaved, and a straggler may go quiet for long
// stretches. This detector replaces the collective check:
//
//  * Each node reports its local residual once per asynchronous step
//    (epoch). A node becomes SETTLED after `window` *consecutive* reports
//    at or under `tolerance`; a report above tolerance resets both the
//    streak and the settled flag, so an oscillating residual can never
//    produce a false positive.
//  * A settled node STAYS settled while it is silent: a straggler that
//    settled and then stalls (or simply steps slowly) cannot deadlock
//    detection, because no fresh report is required to keep its verdict.
//  * The run is CONVERGED once every node is settled simultaneously.
//    Convergence is sticky -- nodes drain out of their loops at different
//    times, and a late report from a draining node must not resurrect the
//    run.
//
// Single-threaded by design: under GangMode::Async exactly one node runs
// at a time, so reports are naturally serialized (see sim/gang.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "updsm/common/error.hpp"

namespace updsm::protocols {

class ConvergenceDetector {
 public:
  ConvergenceDetector(int num_nodes, double tolerance, int window)
      : tolerance_(tolerance), window_(window) {
    UPDSM_REQUIRE(num_nodes >= 1, "detector needs >= 1 node, got "
                                      << num_nodes);
    UPDSM_REQUIRE(tolerance > 0.0,
                  "tolerance must be > 0, got " << tolerance);
    UPDSM_REQUIRE(window >= 1, "window must be >= 1, got " << window);
    streak_.assign(static_cast<std::size_t>(num_nodes), 0);
    settled_.assign(static_cast<std::size_t>(num_nodes), 0);
    last_.assign(static_cast<std::size_t>(num_nodes), 0.0);
    reported_.assign(static_cast<std::size_t>(num_nodes), 0);
  }

  /// Feeds node `node`'s residual for its latest step; returns converged().
  bool report(int node, double residual) {
    const auto i = static_cast<std::size_t>(node);
    UPDSM_REQUIRE(i < streak_.size(), "detector report from node " << node);
    ++reports_;
    last_[i] = residual;
    reported_[i] = 1;
    if (converged_) return true;  // sticky: late drain reports are no-ops
    if (residual <= tolerance_) {
      if (++streak_[i] >= window_) settled_[i] = 1;
    } else {
      streak_[i] = 0;
      settled_[i] = 0;  // un-settle: no false positive on oscillation
    }
    bool all = true;
    for (const std::uint8_t s : settled_) all = all && s != 0;
    converged_ = all;
    return converged_;
  }

  [[nodiscard]] bool converged() const { return converged_; }
  [[nodiscard]] bool settled(int node) const {
    return settled_[static_cast<std::size_t>(node)] != 0;
  }
  [[nodiscard]] double last_residual(int node) const {
    return last_[static_cast<std::size_t>(node)];
  }
  /// Worst last-reported residual across nodes that reported at all.
  [[nodiscard]] double worst_residual() const {
    double worst = 0.0;
    for (std::size_t i = 0; i < last_.size(); ++i) {
      if (reported_[i] != 0 && last_[i] > worst) worst = last_[i];
    }
    return worst;
  }
  [[nodiscard]] std::uint64_t reports() const { return reports_; }
  [[nodiscard]] double tolerance() const { return tolerance_; }
  [[nodiscard]] int window() const { return window_; }

 private:
  double tolerance_;
  int window_;
  std::vector<int> streak_;
  std::vector<std::uint8_t> settled_;
  std::vector<double> last_;
  std::vector<std::uint8_t> reported_;
  std::uint64_t reports_ = 0;
  bool converged_ = false;
};

}  // namespace updsm::protocols
