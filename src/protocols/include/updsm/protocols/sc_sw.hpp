// sc-sw: a canonical sequentially-consistent single-writer invalidate
// protocol (paper §2.1's foil: "sequentially consistent systems require
// processes to gain exclusive access to shared pages before modifying any
// items that reside on the pages").
//
// Not part of the paper's measured set; included as an extra baseline so
// the benches can show *why* multi-writer LRC exists: false sharing makes
// sc-sw ping-pong pages between concurrent writers inside an epoch.
//
// Usage note: sc-sw invalidates pages *mid-epoch* (a remote write fault
// revokes local access immediately). Applications run under sc-sw must use
// element accessors (SharedArray::get/set), never cached views -- a raw
// view span would bypass the revocation. The protocol cannot detect stale
// view usage; the dedicated sc-sw benches honour this contract.
#pragma once

#include <vector>

#include "updsm/dsm/copyset.hpp"
#include "updsm/dsm/protocol.hpp"
#include "updsm/dsm/runtime.hpp"

namespace updsm::protocols {

class ScSwProtocol final : public dsm::CoherenceProtocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "sc-sw"; }

  void init(dsm::Runtime& rt) override;
  void read_fault(NodeId n, PageId page) override;
  void write_fault(NodeId n, PageId page) override;
  // Deliberately NOT parallel-safe (keeps the base-class `false`): the
  // fault handlers perform mid-phase ownership transfers, cross-node
  // invalidations and protection downgrades -- eager SC semantics cannot
  // be deferred to the barrier. The cluster runs sc-sw under the baton.
  void barrier_arrive(NodeId) override {}
  void barrier_master() override {}
  void barrier_release(NodeId) override {}

  [[nodiscard]] NodeId owner(PageId p) const { return pages_[p.index()].owner; }

 private:
  struct PageDir {
    NodeId owner{0};     // current exclusive or last writer
    dsm::Copyset holders;  // every node with a valid copy (incl. owner)
  };

  /// Copies the authoritative frame to node n and charges the transfer.
  void transfer(NodeId n, PageId page);

  dsm::Runtime* rt_ = nullptr;
  std::vector<PageDir> pages_;
};

}  // namespace updsm::protocols
