// Protocol factory: string names <-> protocol instances.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "updsm/dsm/protocol.hpp"

namespace updsm::protocols {

enum class ProtocolKind {
  LmwI,  // homeless multi-writer LRC, invalidate
  LmwU,  // homeless multi-writer LRC, hybrid update
  BarI,  // home-based barrier protocol, invalidate
  BarU,  // home-based barrier protocol, update
  BarS,  // bar-u + overdrive without segvs
  BarM,  // bar-s + no mprotects in overdrive
  Adaptive,  // per-page invalidate/update/overdrive under the active costs
  ScSw,  // sequentially consistent single-writer (extra baseline)
  Null,  // the 1-node sequential baseline
  AsyncU,  // stale-tolerant home-based protocol for gang=async, update
  AsyncI,  // stale-tolerant home-based protocol for gang=async, invalidate
};

[[nodiscard]] const char* to_string(ProtocolKind kind);

/// Parses "lmw-i", "bar-u", ... Throws UsageError on unknown names.
[[nodiscard]] ProtocolKind protocol_from_string(std::string_view name);

[[nodiscard]] std::unique_ptr<dsm::CoherenceProtocol> make_protocol(
    ProtocolKind kind);

/// The four protocols of Table 1 / Figure 2, in the paper's order.
[[nodiscard]] std::vector<ProtocolKind> base_protocols();

/// The six measured protocols (Table 1 + Figure 4), in presentation order.
[[nodiscard]] std::vector<ProtocolKind> all_paper_protocols();

/// The six fixed paper protocols plus the adaptive per-page selector
/// (bench/ablation_profiles' grid).
[[nodiscard]] std::vector<ProtocolKind> all_protocols_with_adaptive();

}  // namespace updsm::protocols
