// bar-i / bar-u / bar-s / bar-m: home-based barrier protocols (paper
// §2.2.1, §4, §5).
//
// Every page has a home. Non-home writers capture modifications as diffs
// and flush them to the home at each barrier (reliably -- they are
// correctness-critical); the home's own writes need no diffs (the "home
// effect"), only a version bump. Page faults are satisfied by whole-page
// fetches from the home: always exactly one request/reply pair, and every
// diff dies at the barrier that created it -- no garbage collection.
//
// Per-page scalar version indices (maintained by the home, distributed on
// barrier releases) drive invalidation; runtime home *migration* after the
// first iteration replaces Zhou's user annotations; per-page copysets turn
// the protocol into a hybrid updater (bar-u): writers push diffs directly
// to consumers, who apply them *inside* the barrier, eliminating both the
// faults and lmw-u's lazy-validation segvs.
//
// bar-s ("overdrive"): after the sharing pattern has been learned, write
// trapping by segv is replaced by prediction -- twins are created and pages
// write-enabled *before* the writes happen (Figure 5). bar-m additionally
// eliminates every mprotect: all pages predicted to be written (by the
// application or by update application) are made writable once, when
// overdrive engages, and protections are never touched again. bar-m is not
// guaranteed to maintain consistency if the application diverges from the
// learned pattern; an optional audit mode detects such divergence in tests.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "updsm/common/atomic_stat.hpp"
#include "updsm/dsm/copyset.hpp"
#include "updsm/dsm/protocol.hpp"
#include "updsm/dsm/runtime.hpp"
#include "updsm/dsm/twin_store.hpp"
#include "updsm/mem/diff.hpp"

namespace updsm::protocols {

enum class BarMode {
  Invalidate,  // bar-i
  Update,      // bar-u
  OverdriveS,  // bar-s: no segvs in steady state
  OverdriveM,  // bar-m: no segvs and no mprotects in steady state
};

[[nodiscard]] constexpr const char* to_string(BarMode m) {
  switch (m) {
    case BarMode::Invalidate:
      return "bar-i";
    case BarMode::Update:
      return "bar-u";
    case BarMode::OverdriveS:
      return "bar-s";
    case BarMode::OverdriveM:
      return "bar-m";
  }
  return "?";
}

class BarProtocol : public dsm::CoherenceProtocol {
 public:
  explicit BarProtocol(BarMode mode) : mode_(mode) {}

  [[nodiscard]] std::string_view name() const override {
    return to_string(mode_);
  }

  void init(dsm::Runtime& rt) override;
  void read_fault(NodeId n, PageId page) override;
  void write_fault(NodeId n, PageId page) override;
  /// Parallel-safe (see protocol.hpp): fault-handler decisions read only
  /// barrier-frozen state (homes, versions, copyset_frozen), page bytes are
  /// served from snapshots/twins or under the home's service mutex, and
  /// untracked-page retracking is deferred to barrier_master via per-node
  /// fetch logs.
  [[nodiscard]] bool parallel_safe() const override { return true; }

  [[nodiscard]] std::uint64_t live_page_buffers() const override {
    std::uint64_t live = 0;
    for (const NodeState& st : nodes_) {
      live += st.twins.size() + st.snapshots.size();
    }
    return live;
  }
  void barrier_arrive(NodeId n) override;
  void barrier_master() override;
  void barrier_release(NodeId n) override;
  void barrier_finish() override;
  void iteration_begin(NodeId n, std::uint64_t iteration) override;

  // ---- introspection (tests, benches) ------------------------------------
  [[nodiscard]] BarMode mode() const { return mode_; }
  [[nodiscard]] NodeId home(PageId p) const {
    return global_[p.index()].home;
  }
  [[nodiscard]] std::uint64_t version(PageId p) const {
    return global_[p.index()].version;
  }
  [[nodiscard]] dsm::Copyset copyset(PageId p) const {
    return global_[p.index()].copyset;
  }
  [[nodiscard]] bool overdrive_active() const { return od_active_; }
  [[nodiscard]] std::uint64_t overdrive_period() const { return od_period_; }
  [[nodiscard]] bool migration_done() const { return migration_done_; }

 protected:
  [[nodiscard]] bool update_mode() const { return mode_ != BarMode::Invalidate; }
  [[nodiscard]] bool overdrive_capable() const {
    return mode_ == BarMode::OverdriveS || mode_ == BarMode::OverdriveM;
  }

  // ---- per-page policy hooks (AdaptiveProtocol overrides) ----------------
  // The fixed protocols apply one delivery mode to every page; the adaptive
  // subclass answers per page. Hook answers may only depend on
  // barrier-frozen state (modes switch at barrier_finish, when every node
  // is parked), so mid-phase callers see one consistent value per epoch.

  /// Do this page's writers push diffs to the copyset at the barrier
  /// (bar-u behaviour) rather than relying on invalidation (bar-i)?
  [[nodiscard]] virtual bool page_pushes_updates(PageId) const {
    return update_mode();
  }
  /// Keep this page's twinned replicas write-enabled across barriers
  /// (overdrive delivery: the permanent twin is diffed at *every* barrier,
  /// so untrapped writes are still captured)? Orthogonal to bar-m's global
  /// `od_active_` machinery, which keeps its own predicted-epoch logic.
  [[nodiscard]] virtual bool page_keep_writable(PageId) const {
    return false;
  }
  /// A non-empty diff of `bytes` payload was created at barrier arrival
  /// (controller context, node order -- plain state is safe).
  virtual void observe_diff(NodeId, PageId, std::uint64_t /*bytes*/) {}
  /// A whole-page fetch was served (MID-PHASE: may run concurrently under
  /// the parallel gang -- implementations must use commutative updates).
  virtual void observe_fetch(NodeId, PageId) {}
  /// barrier_master visits a written page (sorted page order, controller
  /// context), before its per-epoch scratch is cleared. `writers` includes
  /// the home when it wrote.
  virtual void observe_epoch_page(PageId, const dsm::NodeSet& /*writers*/,
                                  bool /*home_wrote*/) {}

  struct QueuedDiff {
    NodeId creator;
    mem::Diff diff;
  };

  struct PageGlobal {
    NodeId home{0};
    /// Scalar version index: barrier-index-plus-one of the last epoch that
    /// modified the page; 0 = initial contents.
    std::uint64_t version = 0;
    /// Nodes caching the page (consumers), learned from fetches
    /// (commutative atomic adds mid-phase).
    dsm::Copyset copyset;
    /// Barrier-frozen shadow of `copyset`, refreshed by barrier_finish().
    /// Mid-phase *decisions* (the home-private consumer count in
    /// write_fault) read this, never the live bitmap, so they cannot
    /// depend on which concurrent fetch happened to land first.
    dsm::NodeSet copyset_frozen;
    /// All nodes whose non-empty diffs (or home trap-writes) touched the
    /// page (value-based; consumers wait only for diffs that exist).
    dsm::NodeSet writers_ever;
    /// All nodes that ever *trapped* a write to the page (fault-based;
    /// drives home migration -- a node repeatedly writing values that
    /// happen to be unchanged still deserves to own the page). Atomic
    /// bitmap: note_dirty sets bits from faulting node threads mid-phase.
    dsm::Copyset fault_writers_ever;
    /// Home-private fast path: the home writes the page with no consumers
    /// anywhere, so it stays read-write at the home with no trapping, no
    /// version bumps and no barrier work until a consumer fetches it (the
    /// logical extreme of the paper's "home effect").
    bool untracked = false;
    // --- per-epoch scratch, cleared by barrier_master -----------------
    dsm::NodeSet writers_epoch;
    bool home_wrote = false;
    std::vector<QueuedDiff> queued;  // foreign diffs flushed to the home
  };

  struct InboxEntry {
    PageId page{0};
    NodeId creator{0};
    mem::Diff diff;
  };

  struct ChangeRecord {
    PageId page{0};
    std::uint64_t prev_version = 0;
    std::uint64_t new_version = 0;
    dsm::NodeSet writers;  // bitmap
    /// Wire footprint per receiving node: page + version (16 bytes) plus
    /// the var-length writer/copyset bitmap -- 8 bytes per started 64-node
    /// block, so exactly the legacy 24 bytes on clusters <= 64 nodes.
    [[nodiscard]] static std::uint64_t wire_bytes(int num_nodes) {
      return 16 + dsm::NodeSet::wire_bytes(num_nodes);
    }
  };

  struct NodeState {
    std::vector<std::uint64_t> cached_version;  // per page
    std::vector<bool> dirty;                    // wrote during this epoch
    std::vector<PageId> dirty_pages;            // insertion order
    dsm::TwinStore twins;
    std::vector<InboxEntry> inbox;  // update pushes received this epoch
    /// Service snapshots of pages this node (as home) keeps ReadWrite with
    /// no twin -- untracked home-private pages and home-effect writes. A
    /// mid-phase fetch is served from the snapshot (or a live twin), never
    /// from a frame the home is concurrently writing; barrier_arrive
    /// refreshes surviving snapshots and discards dead ones. Simulator
    /// machinery, created/refreshed uncharged under the home's service
    /// mutex.
    dsm::TwinStore snapshots;
    /// Pages this node fetched during the finished epoch (appended by the
    /// node's own thread). barrier_master merges the logs to find untracked
    /// pages that gained a consumer -- the retrack decision the baton used
    /// to take inline at fetch time.
    std::vector<PageId> fetched_log;
    // --- learning state ------------------------------------------------
    std::uint64_t iteration = 0;
    /// rt.epoch() at each iteration_begin call (index = iteration number).
    std::vector<std::uint64_t> iter_begin_epochs{0};
    /// epoch -> pages written (recorded while not in overdrive).
    std::unordered_map<std::uint64_t, std::vector<PageId>> write_sets;
    /// epoch -> pages that had updates applied (bar-m writable union).
    std::unordered_map<std::uint64_t, std::vector<PageId>> update_sets;
    /// bar-m: pages made permanently writable at overdrive engagement.
    std::vector<bool> writable_union;
  };

  [[nodiscard]] NodeState& node(NodeId n) { return nodes_[n.index()]; }
  [[nodiscard]] PageGlobal& gpage(PageId p) { return global_[p.index()]; }

  /// Whole-page fetch from the home (the 939 us path). Marks the fetcher a
  /// consumer. `miss` distinguishes demand faults from migration copies.
  void fetch_page(NodeId n, PageId page, bool count_as_miss);

  void note_dirty(NodeId n, PageId page);
  void note_writer(NodeId n, PageId page);
  void run_migration();
  void engage_overdrive();
  /// Predicted write set of node `n` for epoch `e` (od must be active).
  [[nodiscard]] const std::vector<PageId>& predicted_writes(NodeId n,
                                                            std::uint64_t e);
  /// Pre-twin + write-enable node n's predicted pages for the next epoch
  /// (bar-s: every barrier; bar-m: only via the engagement union).
  void overdrive_prepare(NodeId n, std::uint64_t next_epoch);
  void audit_unpredicted_writes(NodeId n);

  BarMode mode_;
  dsm::Runtime* rt_ = nullptr;
  std::vector<NodeState> nodes_;
  /// Diff scratch routes through the per-worker arenas of the runtime
  /// (rt_->arena_for_node): creators take from -- and spent diffs recycle
  /// to -- the arena of the worker owning the node named in the call, so
  /// mid-phase pool traffic is single-threaded by construction and the
  /// barrier hooks (controller context, workers parked) drain the loans
  /// deterministically.
  std::vector<PageGlobal> global_;
  /// Pages touched this epoch (set at first write note; master consumes).
  std::vector<PageId> epoch_touched_;
  std::vector<ChangeRecord> epoch_changes_;
  /// Guards the one-shot loop-entry reset (see LmwProtocol::loop_mu_).
  std::mutex loop_mu_;
  bool loop_entered_ = false;
  bool migration_done_ = false;
  bool od_active_ = false;
  std::uint64_t od_base_epoch_ = 0;  // first epoch of the learned iteration
  std::uint64_t od_period_ = 0;      // barriers per iteration
};

}  // namespace updsm::protocols
