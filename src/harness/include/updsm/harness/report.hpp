// Plain-text report formatting: fixed-width tables and ASCII bar charts so
// each bench binary prints its paper artifact (Table 1, Figures 2-4) in a
// shape directly comparable with the paper.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace updsm::harness {

/// Minimal fixed-width table: set a header, append rows, print. Column
/// widths auto-fit; numeric cells are right-aligned (detected by content).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
[[nodiscard]] std::string fmt(double v, int digits = 2);

/// Grouped horizontal bar chart (one group per app, one bar per series):
/// the textual rendering of the paper's figures.
void print_bar_chart(std::ostream& os, const std::string& title,
                     const std::vector<std::string>& groups,
                     const std::vector<std::string>& series,
                     const std::vector<std::vector<double>>& values,
                     double max_value, int width = 48);

}  // namespace updsm::harness
