// Experiment runner: executes one (application, protocol, cluster) run and
// captures everything the paper's tables and figures need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "updsm/apps/registry.hpp"
#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/stats.hpp"
#include "updsm/protocols/factory.hpp"
#include "updsm/sim/network.hpp"

namespace updsm::harness {

struct RunResult {
  std::string app;
  std::string protocol;
  int nodes = 0;
  /// Result checksum (node 0); must match the sequential run bit-for-bit.
  double checksum = 0.0;
  /// Parallel execution time over the steady-state window.
  sim::SimTime elapsed = 0;
  dsm::ProtocolCounters counters;
  sim::NetworkStats net;
  dsm::BreakdownReport breakdown;
  std::uint64_t barriers = 0;
  /// Iterations the app actually executed: the fixed count for the
  /// standard skeleton, the largest per-node sweep count for the
  /// run-to-convergence (async) workloads.
  std::uint64_t app_iterations = 0;
  /// Final residual of convergence workloads (0 for fixed-iteration apps).
  double final_residual = 0.0;
  std::uint64_t shared_bytes = 0;
  /// Whole-run per-page event counts and the heap layout to attribute them.
  std::vector<dsm::PageStats> page_stats;
  std::vector<mem::Allocation> allocations;
  std::uint32_t page_size = 0;
};

/// One row of hot-page analysis: a page, its event counts, and the shared
/// allocation it belongs to.
struct HotPage {
  PageId page{0};
  dsm::PageStats stats;
  std::string allocation;
};

/// The `count` busiest pages of a run (by faults + mprotects), attributed
/// to the named allocations of its shared heap.
[[nodiscard]] std::vector<HotPage> hottest_pages(const RunResult& run,
                                                 std::size_t count);

/// Runs `app_name` under `kind` on a cluster configured by `config`
/// (config.num_nodes nodes). The protocol kind overrides nothing else in
/// the config.
[[nodiscard]] RunResult run_app(std::string_view app_name,
                                protocols::ProtocolKind kind,
                                const dsm::ClusterConfig& config,
                                const apps::AppParams& params);

/// The paper's baseline: the same program, one process, synchronization
/// nulled out (§3.1). Used as the speedup denominator and as the
/// correctness reference.
[[nodiscard]] RunResult run_sequential(std::string_view app_name,
                                       const dsm::ClusterConfig& config,
                                       const apps::AppParams& params);

[[nodiscard]] inline double speedup(const RunResult& par,
                                    const RunResult& seq) {
  return par.elapsed > 0 ? static_cast<double>(seq.elapsed) /
                               static_cast<double>(par.elapsed)
                         : 0.0;
}

}  // namespace updsm::harness
