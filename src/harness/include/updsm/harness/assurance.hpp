// Overdrive-safety assurance runs (paper §5.2).
//
// "While running bar-s over similar data sets several times can give some
// measure of assurance, a clean run of bar-s is by no means proof of a
// program's repeatability." This harness operationalises that: it runs the
// application under bar-s with the Revert fallback over `trials` perturbed
// datasets (varying seeds) and reports whether any run trapped an
// unpredicted write. A clean report is the paper's "some measure of
// assurance" for enabling bar-m; a dirty one is a proof of unsafety.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "updsm/apps/registry.hpp"
#include "updsm/dsm/config.hpp"

namespace updsm::harness {

struct AssuranceTrial {
  std::uint64_t seed = 0;
  std::uint64_t mispredictions = 0;
  bool correct = false;  // checksum matched its own sequential run
};

struct AssuranceReport {
  std::vector<AssuranceTrial> trials;

  [[nodiscard]] bool assured() const {
    for (const auto& t : trials) {
      if (t.mispredictions != 0 || !t.correct) return false;
    }
    return !trials.empty();
  }
  [[nodiscard]] std::uint64_t total_mispredictions() const {
    std::uint64_t total = 0;
    for (const auto& t : trials) total += t.mispredictions;
    return total;
  }
};

/// Runs `trials` bar-s executions of `app_name` with Revert fallback,
/// perturbing the dataset seed each time.
[[nodiscard]] AssuranceReport assure_overdrive_safety(
    std::string_view app_name, const dsm::ClusterConfig& config,
    const apps::AppParams& base_params, int trials);

}  // namespace updsm::harness
