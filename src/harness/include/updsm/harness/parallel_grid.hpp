// Parallel experiment engine: runs a grid of independent experiment cells
// on a fixed-size worker pool.
//
// Every (application, protocol, cluster) run is a pure function of its
// configuration -- the Gang keeps each simulation bit-deterministic in
// either scheduling mode (see sim/gang.hpp) -- so whole runs can execute
// concurrently with no shared mutable state. Results are collected by grid
// index, never by completion order, which makes the output of every bench
// byte-identical regardless of the worker count.
#pragma once

#include <functional>
#include <vector>

#include "updsm/harness/experiment.hpp"

namespace updsm::harness {

/// Default worker count: the hardware concurrency, at least 1.
[[nodiscard]] int default_jobs();

/// Runs every task on a pool of `jobs` workers and returns the results
/// indexed exactly like `tasks` (deterministic-ordered collection).
/// `jobs <= 1` degenerates to a serial in-order loop, reproducing the
/// single-threaded behavior exactly. The first exception thrown by any task
/// aborts the remaining unstarted tasks and is rethrown after the pool
/// drains.
[[nodiscard]] std::vector<RunResult> run_grid(
    const std::vector<std::function<RunResult()>>& tasks, int jobs);

}  // namespace updsm::harness
