#include "updsm/harness/report.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "updsm/common/error.hpp"

namespace updsm::harness {

namespace {

bool numeric_cell(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
        c != '-' && c != '+' && c != '%' && c != 'e') {
      return false;
    }
  }
  return true;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  UPDSM_REQUIRE(cells.size() == header_.size(),
                "row has " << cells.size() << " cells, header has "
                           << header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      const bool right = numeric_cell(row[c]);
      os << (right ? std::right : std::left) << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << " |\n";
  };
  auto print_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << (c == 0 ? "+" : "-+") << std::string(width[c] + 1, '-');
    }
    os << "-+\n";
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string fmt(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

void print_bar_chart(std::ostream& os, const std::string& title,
                     const std::vector<std::string>& groups,
                     const std::vector<std::string>& series,
                     const std::vector<std::vector<double>>& values,
                     double max_value, int width) {
  UPDSM_REQUIRE(values.size() == series.size(),
                "one value row per series expected");
  os << title << '\n' << std::string(title.size(), '=') << '\n';
  std::size_t label_width = 0;
  for (const auto& s : series) label_width = std::max(label_width, s.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    os << groups[g] << '\n';
    for (std::size_t s = 0; s < series.size(); ++s) {
      UPDSM_REQUIRE(values[s].size() == groups.size(),
                    "series " << series[s] << " has wrong length");
      const double v = values[s][g];
      const int bar = max_value > 0
                          ? static_cast<int>(v / max_value *
                                             static_cast<double>(width) +
                                             0.5)
                          : 0;
      os << "  " << std::left
         << std::setw(static_cast<int>(label_width)) << series[s] << " |"
         << std::string(static_cast<std::size_t>(std::max(bar, 0)), '#')
         << ' ' << fmt(v) << '\n';
    }
  }
  os << '\n';
}

}  // namespace updsm::harness
