#include "updsm/harness/experiment.hpp"

#include <algorithm>

#include "updsm/mem/shared_heap.hpp"

namespace updsm::harness {

namespace {

RunResult run_impl(std::string_view app_name, protocols::ProtocolKind kind,
                   const dsm::ClusterConfig& config,
                   const apps::AppParams& params) {
  auto app = apps::make_app(app_name, params);
  mem::SharedHeap heap(config.page_size);
  app->allocate(heap);

  dsm::Cluster cluster(config, heap, protocols::make_protocol(kind));
  cluster.run([&](dsm::NodeContext& ctx) { app->run(ctx); });

  RunResult result;
  result.app = std::string(app_name);
  result.protocol = protocols::to_string(kind);
  result.nodes = config.num_nodes;
  result.checksum = app->result_checksum();
  result.elapsed = cluster.elapsed();
  result.counters = cluster.runtime().measured_counters();
  result.net = cluster.runtime().measured_net_stats();
  result.breakdown = cluster.breakdown();
  result.barriers = cluster.barriers();
  result.app_iterations = app->iterations_completed();
  result.final_residual = app->final_residual();
  result.shared_bytes = heap.bytes_used();
  result.page_stats = cluster.runtime().page_stats();
  result.allocations = heap.allocations();
  result.page_size = config.page_size;
  return result;
}

}  // namespace

std::vector<HotPage> hottest_pages(const RunResult& run, std::size_t count) {
  std::vector<HotPage> pages;
  pages.reserve(run.page_stats.size());
  for (std::size_t p = 0; p < run.page_stats.size(); ++p) {
    if (run.page_stats[p].total() == 0) continue;
    HotPage hot;
    hot.page = PageId{static_cast<std::uint32_t>(p)};
    hot.stats = run.page_stats[p];
    const GlobalAddr page_start =
        static_cast<GlobalAddr>(p) * run.page_size;
    hot.allocation = "(unnamed)";
    for (const auto& alloc : run.allocations) {
      if (page_start >= alloc.addr && page_start < alloc.addr + alloc.bytes) {
        hot.allocation = alloc.name;
        break;
      }
    }
    pages.push_back(std::move(hot));
  }
  std::sort(pages.begin(), pages.end(), [](const HotPage& a, const HotPage& b) {
    if (a.stats.total() != b.stats.total()) {
      return a.stats.total() > b.stats.total();
    }
    return a.page < b.page;
  });
  if (pages.size() > count) pages.resize(count);
  return pages;
}

RunResult run_app(std::string_view app_name, protocols::ProtocolKind kind,
                  const dsm::ClusterConfig& config,
                  const apps::AppParams& params) {
  return run_impl(app_name, kind, config, params);
}

RunResult run_sequential(std::string_view app_name,
                         const dsm::ClusterConfig& config,
                         const apps::AppParams& params) {
  dsm::ClusterConfig seq_config = config;
  seq_config.num_nodes = 1;
  // The null protocol has no async hooks; a 1-node run has nothing to
  // overlap anyway, so the baseline always executes a barrier gang.
  if (seq_config.gang == sim::GangMode::Async) {
    seq_config.gang = sim::GangMode::Baton;
  }
  return run_impl(app_name, protocols::ProtocolKind::Null, seq_config,
                  params);
}

}  // namespace updsm::harness
