#include "updsm/harness/assurance.hpp"

#include "updsm/common/rng.hpp"
#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/harness/experiment.hpp"
#include "updsm/mem/shared_heap.hpp"
#include "updsm/protocols/factory.hpp"

namespace updsm::harness {

AssuranceReport assure_overdrive_safety(std::string_view app_name,
                                        const dsm::ClusterConfig& config,
                                        const apps::AppParams& base_params,
                                        int trials) {
  AssuranceReport report;
  for (int t = 0; t < trials; ++t) {
    apps::AppParams params = base_params;
    params.seed = splitmix64(base_params.seed + static_cast<std::uint64_t>(t));

    dsm::ClusterConfig cfg = config;
    cfg.seed = params.seed;
    // Revert: an unpredicted write is *handled* (and counted), so a dirty
    // trial still finishes and still validates.
    cfg.overdrive_fallback = dsm::OverdriveFallback::Revert;

    const auto seq = run_sequential(app_name, cfg, params);

    // Run the cluster directly rather than through run_app: assurance
    // wants every post-engagement misprediction, including those outside
    // the steady-state measurement window.
    auto app = apps::make_app(app_name, params);
    mem::SharedHeap heap(cfg.page_size);
    app->allocate(heap);
    dsm::Cluster cluster(
        cfg, heap, protocols::make_protocol(protocols::ProtocolKind::BarS));
    cluster.run([&](dsm::NodeContext& ctx) { app->run(ctx); });

    AssuranceTrial trial;
    trial.seed = params.seed;
    trial.mispredictions =
        cluster.runtime().counters().overdrive_mispredictions;
    trial.correct = app->result_checksum() == seq.checksum;
    report.trials.push_back(trial);
  }
  return report;
}

}  // namespace updsm::harness
