#include "updsm/harness/parallel_grid.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace updsm::harness {

int default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<RunResult> run_grid(
    const std::vector<std::function<RunResult()>>& tasks, int jobs) {
  std::vector<RunResult> results(tasks.size());
  if (jobs <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) results[i] = tasks[i]();
    return results;
  }

  // Work-stealing by shared index: workers claim the next unclaimed cell.
  // Claim order affects only scheduling; results land at their own index.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size() || abort.load(std::memory_order_relaxed)) return;
      try {
        results[i] = tasks[i]();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t pool = std::min<std::size_t>(
      static_cast<std::size_t>(jobs), tasks.size());
  std::vector<std::thread> threads;
  threads.reserve(pool);
  for (std::size_t t = 0; t < pool; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace updsm::harness
