#include "updsm/dsm/cluster.hpp"

#include <algorithm>
#include <vector>

#include "updsm/common/log.hpp"
#include "updsm/dsm/node_context.hpp"

namespace updsm::dsm {

namespace {
using sim::MsgKind;
using sim::SimTime;
using sim::TimeCat;

/// Wire footprint of one reduction contribution / result (op + double).
constexpr std::uint64_t kReduceWireBytes = 16;

/// Parallel scheduling is opt-in per protocol: anything whose fault
/// handlers mutate remote state mid-phase (sc-sw) keeps the baton. The
/// async gang cannot be silently downgraded (the app's iteration structure
/// depends on it), so an unsafe protocol there is a hard error.
sim::GangMode effective_gang_mode(const ClusterConfig& config,
                                  const CoherenceProtocol* protocol) {
  if (protocol != nullptr && config.gang == sim::GangMode::Async) {
    validate_gang_protocol(config.gang, protocol->parallel_safe(),
                           std::string(protocol->name()));
    return config.gang;
  }
  if (protocol != nullptr && !protocol->parallel_safe()) {
    return sim::GangMode::Baton;
  }
  return config.gang;
}
}  // namespace

Cluster::Cluster(const ClusterConfig& config, const mem::SharedHeap& heap,
                 std::unique_ptr<CoherenceProtocol> protocol)
    : rt_(config, heap.segment_pages()),
      protocol_(std::move(protocol)),
      gang_(config.num_nodes, effective_gang_mode(config, protocol_.get()),
            config.workers) {
  UPDSM_REQUIRE(protocol_ != nullptr, "cluster needs a protocol");
  UPDSM_REQUIRE(heap.page_size() == config.page_size,
                "heap page size " << heap.page_size()
                                  << " != cluster page size "
                                  << config.page_size);
  if (config.race_check != RaceCheck::Off) {
    race_detector_ = std::make_unique<RaceDetector>(config.num_nodes);
  }
  const auto n = static_cast<std::size_t>(config.num_nodes);
  pending_reduce_.assign(n, PendingReduce{});
  measurement_requested_.assign(n, 0);
  measurement_end_requested_.assign(n, 0);
  iteration_count_.assign(n, 0);
  async_step_count_.assign(n, 0);
  async_active_.assign(n, 0);
  // Async scheduling is ordered by the nodes' virtual clocks; clocks only
  // advance while their node holds the turn, so the lookup is race-free.
  gang_.set_clock_source([this](int node) {
    const SimTime now = rt_.clock(NodeId{static_cast<std::uint32_t>(node)}).now();
    return now < 0 ? 0u : static_cast<std::uint64_t>(now);
  });
  protocol_->init(rt_);
}

Cluster::~Cluster() = default;

void Cluster::run(const AppFn& app) {
  UPDSM_REQUIRE(!ran_, "Cluster::run may be called only once");
  ran_ = true;
  gang_.run(
      [&](int node) {
        NodeContext ctx(*this, NodeId{static_cast<std::uint32_t>(node)});
        app(ctx);
      },
      [&](std::uint64_t index) { do_barrier(index); });
  // Post-final-barrier node events (checksum reads etc.) are still sitting
  // in the per-node trace buffers; append them in node order.
  if (auto* trace = rt_.trace()) trace->flush_node_buffers();
}

sim::SimTime Cluster::elapsed() const {
  SimTime worst = 0;
  for (int i = 0; i < rt_.num_nodes(); ++i) {
    const NodeId n{static_cast<std::uint32_t>(i)};
    worst = std::max(worst, rt_.measure_end(n) - rt_.measure_mark(n));
  }
  return worst;
}

BreakdownReport Cluster::breakdown() const {
  BreakdownReport report;
  report.nodes.resize(static_cast<std::size_t>(rt_.num_nodes()));
  for (int i = 0; i < rt_.num_nodes(); ++i) {
    const NodeId n{static_cast<std::uint32_t>(i)};
    const auto window = rt_.window_breakdown(n);
    auto& out = report.nodes[static_cast<std::size_t>(i)];
    out.app = window[static_cast<std::size_t>(TimeCat::App)];
    out.dsm = window[static_cast<std::size_t>(TimeCat::Dsm)];
    out.os = window[static_cast<std::size_t>(TimeCat::Os)];
    out.wait = window[static_cast<std::size_t>(TimeCat::Wait)];
    out.sigio = window[static_cast<std::size_t>(TimeCat::Sigio)];
  }
  return report;
}

void Cluster::node_barrier(NodeId n) {
  async_active_[n.index()] = 0;  // drained out of its async loop (if any)
  gang_.barrier_wait(static_cast<int>(n.value()));
}

bool Cluster::node_async_step(NodeId n, double residual) {
  UPDSM_REQUIRE(gang_.mode() == sim::GangMode::Async,
                "async_step called outside gang=async (mode is "
                    << sim::to_string(gang_.mode()) << ")");
  const std::uint64_t step = async_step_count_[n.index()]++;
  async_active_[n.index()] = 1;
  // Publish BEFORE the yield: this node's diffs reach the homes (and its
  // residual the detector) while it still holds the turn, so the event
  // order stays a pure function of the virtual clocks.
  const bool converged = protocol_->async_publish(n, step, residual);
  ++rt_.counters().async_steps;
  // Straggler injection: the same stateless (node, index) stall stream the
  // barrier path uses, keyed here by the node's own step count.
  if (auto* plan = rt_.fault_plan()) {
    const SimTime stall = plan->stall(n, step);
    if (stall > 0) {
      rt_.clock(n).advance(TimeCat::Os, stall);
      ++rt_.counters().node_stalls;
      if (auto* trace = rt_.trace()) {
        trace->emit("stall n" + std::to_string(n.value()) + " " +
                    std::to_string(stall) + "ns");
      }
    }
  }
  gang_.async_step(static_cast<int>(n.value()));
  // Bounded asynchrony: under lossy fault plans retry timeouts can skew
  // per-sweep virtual costs by orders of magnitude, letting a cheap node
  // burn its entire drain backstop while a straggler is still settling. A
  // node more than async_max_lead steps ahead of the slowest node still
  // iterating blocks here -- its clock advances in Wait past the
  // straggler's so the scheduler hands the turn over -- until the gap
  // closes. Only ACTIVE nodes count: a drained node can never stall the
  // rest. Deterministic: the wait target is a pure function of the
  // virtual clocks and step counts.
  const int max_lead = rt_.config().async_max_lead;
  while (max_lead > 0) {
    std::uint64_t slowest_steps = async_step_count_[n.index()];
    NodeId slowest = n;
    for (std::size_t i = 0; i < async_active_.size(); ++i) {
      if (async_active_[i] == 0) continue;
      if (async_step_count_[i] < slowest_steps) {
        slowest_steps = async_step_count_[i];
        slowest = NodeId{static_cast<std::uint32_t>(i)};
      }
    }
    if (slowest == n || async_step_count_[n.index()] <=
                            slowest_steps + static_cast<std::uint64_t>(
                                                max_lead)) {
      break;
    }
    const SimTime target = rt_.clock(slowest).now() + 1;
    const SimTime now = rt_.clock(n).now();
    if (now < target) rt_.clock(n).advance(TimeCat::Wait, target - now);
    ++rt_.counters().async_throttles;
    gang_.async_step(static_cast<int>(n.value()));
  }
  // Refresh AFTER the yield: home versions only advanced while this node
  // was parked, so refetching every page beyond the staleness bound here
  // guarantees the bound for every read of the next sweep.
  protocol_->async_refresh(n);
  return converged;
}

void Cluster::node_reduce_prepare(NodeId n, ReduceOp op, double value) {
  auto& slot = pending_reduce_[n.index()];
  UPDSM_REQUIRE(!slot.armed,
                "node " << n << " issued two reductions without a barrier");
  slot = PendingReduce{true, op, value};
}

double Cluster::node_reduce_result(NodeId n) const {
  (void)n;
  UPDSM_CHECK_MSG(reduce_result_valid_, "reduction result read but no "
                                        "reduction completed at last barrier");
  return reduce_result_;
}

void Cluster::node_iteration_begin(NodeId n) {
  auto& count = iteration_count_[n.index()];
  ++count;
  protocol_->iteration_begin(n, count);
}

void Cluster::node_request_measurement(NodeId n) {
  measurement_requested_[n.index()] = true;
}

void Cluster::node_request_measurement_end(NodeId n) {
  measurement_end_requested_[n.index()] = true;
}

void Cluster::node_compute(NodeId n, SimTime t) {
  rt_.clock(n).advance(TimeCat::App, t);
}

std::byte* Cluster::node_touch(NodeId n, GlobalAddr addr, std::size_t len,
                               AccessMode mode) {
  auto& pt = rt_.table(n);
  UPDSM_REQUIRE(len > 0 && addr + len <= pt.segment_bytes(),
                "shared access [" << addr << ", +" << len
                                  << ") outside segment of "
                                  << pt.segment_bytes() << " bytes");
  if (race_detector_) {
    race_detector_->record(n, addr, len, mode == AccessMode::Write);
  }
  const std::uint32_t psize = pt.page_size();
  const std::uint32_t first = static_cast<std::uint32_t>(addr / psize);
  const std::uint32_t last =
      static_cast<std::uint32_t>((addr + len - 1) / psize);
  for (std::uint32_t p = first; p <= last; ++p) {
    const PageId page{p};
    const mem::Protect prot = pt.prot(page);
    if (mode == AccessMode::Read) {
      if (!mem::can_read(prot)) {
        ++rt_.counters().read_faults;
        ++rt_.page_stats(page).read_faults;
        if (auto* trace = rt_.trace()) {
          trace->emit("fault r n" + std::to_string(n.value()) + " p" +
                      std::to_string(p));
        }
        rt_.charge_segv(n);
        protocol_->read_fault(n, page);
        UPDSM_CHECK_MSG(mem::can_read(pt.prot(page)),
                        protocol_->name() << " left page " << page
                                          << " unreadable after read fault");
      }
    } else {
      if (!mem::can_write(prot)) {
        ++rt_.counters().write_faults;
        ++rt_.page_stats(page).write_faults;
        if (auto* trace = rt_.trace()) {
          trace->emit("fault w n" + std::to_string(n.value()) + " p" +
                      std::to_string(p));
        }
        rt_.charge_segv(n);
        protocol_->write_fault(n, page);
        UPDSM_CHECK_MSG(mem::can_write(pt.prot(page)),
                        protocol_->name() << " left page " << page
                                          << " unwritable after write fault");
      }
    }
  }
  return pt.segment().data() + addr;
}

void Cluster::do_barrier(std::uint64_t index) {
  (void)index;
  // Merge the finished phase's buffered trace lines (node order) before any
  // barrier-time event is emitted.
  if (auto* trace = rt_.trace()) trace->flush_node_buffers();
  if (race_detector_) {
    auto reports = race_detector_->finish_epoch(rt_.epoch());
    for (const RaceReport& report : reports) {
      UPDSM_LOG(Warn, "race detector: " << report.describe());
      if (rt_.config().race_check == RaceCheck::Throw) {
        throw ProtocolError("race detector: " + report.describe());
      }
      race_reports_.push_back(report);
    }
  }
  const int n = rt_.num_nodes();
  const NodeId master = rt_.master();
  const auto& net_costs = rt_.costs().net;

  // Replay of mid-phase deferred work (per-node logs), in node order.
  protocol_->barrier_begin();

  // Phase A: every node captures its own epoch modifications. Strict node
  // order; each hook reads only its own frames and publishes diffs/flushes
  // (staged into per-destination batches when aggregation is on).
  for (int i = 0; i < n; ++i) {
    protocol_->barrier_arrive(NodeId{static_cast<std::uint32_t>(i)});
  }

  // Seal and transmit the aggregated flush batches: one FlushBatch per
  // (sender, destination) pair, in (sender, destination) order -- the same
  // per-receiver record order the per-page path produced, so results stay
  // bit-identical. No-op with aggregate_flushes off.
  rt_.seal_flush_batches();

  // Reduction sanity: either nobody reduced at this barrier or everybody
  // did, with the same operator (the compiler emits matching calls).
  int reducers = 0;
  for (const auto& slot : pending_reduce_) reducers += slot.armed ? 1 : 0;
  UPDSM_REQUIRE(reducers == 0 || reducers == n,
                "reduction joined by " << reducers << " of " << n
                                       << " nodes at one barrier");
  const bool reducing = reducers == n;

  const int fanout = rt_.config().barrier_fanout;
  if (fanout >= 2) {
    // Tree barrier: k-ary reduction tree in heap layout (children of i are
    // k*i+1 .. k*i+k; the master is the root). Arrivals combine bottom-up:
    // each inner node waits for its children, absorbs their recv traps,
    // pays the per-hop combining cost, and forwards one message carrying
    // its whole subtree's metadata to its parent. The master's per-barrier
    // critical path drops from O(N) to O(k log_k N); the total message
    // count (N-1 arrivals) is unchanged, only the (from, to) pairs differ.
    std::vector<SimTime> arrive_done(static_cast<std::size_t>(n), 0);
    std::vector<std::uint64_t> up_payload(static_cast<std::size_t>(n), 0);
    for (int i = n - 1; i >= 0; --i) {
      const NodeId node{static_cast<std::uint32_t>(i)};
      up_payload[static_cast<std::size_t>(i)] += rt_.take_arrival_payload(node);
      const long long first_child = static_cast<long long>(fanout) * i + 1;
      int children = 0;
      SimTime latest = rt_.clock(node).now();
      for (long long c = first_child; c < first_child + fanout && c < n; ++c) {
        latest = std::max(latest, arrive_done[static_cast<std::size_t>(c)]);
        ++children;
      }
      if (children > 0) {
        rt_.clock(node).advance_to(TimeCat::Wait, latest);
        for (int c = 0; c < children; ++c) {
          rt_.clock(node).advance(TimeCat::Os, net_costs.recv_trap);
          rt_.os(node).count_recv();
        }
      }
      // Combining cost: one barrier_master_per_node per arriving child (the
      // root also pays for itself, exactly as the flat master does).
      const int combines = children + (i == 0 ? 1 : 0);
      if (combines > 0) {
        rt_.charge_dsm(node, rt_.costs().dsm.barrier_master_per_node *
                                 static_cast<SimTime>(combines));
      }
      if (i == 0) continue;  // the root's metadata stays local
      const int parent = (i - 1) / fanout;
      std::uint64_t payload = up_payload[static_cast<std::size_t>(i)];
      if (reducing) payload += kReduceWireBytes;
      const SimTime wire = rt_.reliable_send(
          MsgKind::SyncArrive, node, NodeId{static_cast<std::uint32_t>(parent)},
          payload);
      arrive_done[static_cast<std::size_t>(i)] = rt_.clock(node).now() + wire;
      up_payload[static_cast<std::size_t>(parent)] +=
          up_payload[static_cast<std::size_t>(i)];
    }
  } else {
    // Arrival messages: slaves -> master, carrying protocol metadata and any
    // reduction contribution.
    SimTime latest_arrival = rt_.clock(master).now();
    for (int i = 0; i < n; ++i) {
      const NodeId node{static_cast<std::uint32_t>(i)};
      std::uint64_t payload = rt_.take_arrival_payload(node);
      if (node == master) continue;  // master's metadata stays local
      if (reducing) payload += kReduceWireBytes;
      const SimTime wire =
          rt_.reliable_send(MsgKind::SyncArrive, node, master, payload);
      latest_arrival =
          std::max(latest_arrival, rt_.clock(node).now() + wire);
    }

    // Master waits for the last arrival, absorbs the recv traps, then runs
    // per-node bookkeeping and the protocol's global phase.
    rt_.clock(master).advance_to(TimeCat::Wait, latest_arrival);
    for (int i = 1; i < n; ++i) {
      rt_.clock(master).advance(TimeCat::Os, net_costs.recv_trap);
      rt_.os(master).count_recv();
    }
    rt_.charge_dsm(master, rt_.costs().dsm.barrier_master_per_node *
                               static_cast<SimTime>(n));
  }

  if (reducing) {
    // Combine in node order: deterministic and identical to the sequential
    // baseline's (single-contribution) result semantics.
    double acc = pending_reduce_[0].value;
    const ReduceOp op = pending_reduce_[0].op;
    for (int i = 1; i < n; ++i) {
      const auto& slot = pending_reduce_[static_cast<std::size_t>(i)];
      UPDSM_REQUIRE(slot.op == op,
                    "mismatched reduction operators at one barrier");
      switch (op) {
        case ReduceOp::Max:
          acc = std::max(acc, slot.value);
          break;
        case ReduceOp::Min:
          acc = std::min(acc, slot.value);
          break;
        case ReduceOp::Sum:
          acc += slot.value;
          break;
      }
    }
    reduce_result_ = acc;
    reduce_result_valid_ = true;
    for (auto& slot : pending_reduce_) slot.armed = false;
  } else {
    reduce_result_valid_ = false;
  }

  protocol_->barrier_master();

  // Phase C: releases. The master first sends every release message (its
  // own local release work must not delay the slaves), then each node
  // performs its release-side protocol work (invalidations, update
  // application, trap re-arming) concurrently on its own clock.
  if (fanout >= 2) {
    // Broadcast down the same tree: each node receives its subtree's
    // release metadata from its parent and forwards the rest to its
    // children. Heap layout makes i = 1..n-1 a valid top-down order
    // (parent(i) < i, so a parent's clock is settled before it sends).
    std::vector<std::uint64_t> down_payload(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
      down_payload[static_cast<std::size_t>(i)] =
          rt_.take_release_payload(NodeId{static_cast<std::uint32_t>(i)});
    }
    // down_payload[i] becomes the subtree sum; the root's own metadata
    // stays local (index 0 is accumulated but never shipped).
    for (int i = n - 1; i >= 1; --i) {
      down_payload[static_cast<std::size_t>((i - 1) / fanout)] +=
          down_payload[static_cast<std::size_t>(i)];
    }
    for (int i = 1; i < n; ++i) {
      const NodeId node{static_cast<std::uint32_t>(i)};
      const NodeId parent{static_cast<std::uint32_t>((i - 1) / fanout)};
      std::uint64_t payload = down_payload[static_cast<std::size_t>(i)];
      if (reducing) payload += kReduceWireBytes;
      const SimTime wire =
          rt_.reliable_send(MsgKind::SyncRelease, parent, node, payload);
      rt_.clock(node).advance_to(TimeCat::Wait,
                                 rt_.clock(parent).now() + wire);
      rt_.clock(node).advance(TimeCat::Os, net_costs.recv_trap);
      rt_.os(node).count_recv();
    }
  } else {
    for (int i = 0; i < n; ++i) {
      const NodeId node{static_cast<std::uint32_t>(i)};
      if (node == master) {
        (void)rt_.take_release_payload(node);
        continue;
      }
      std::uint64_t payload = rt_.take_release_payload(node);
      if (reducing) payload += kReduceWireBytes;
      const SimTime wire =
          rt_.reliable_send(MsgKind::SyncRelease, master, node, payload);
      rt_.clock(node).advance_to(TimeCat::Wait,
                                 rt_.clock(master).now() + wire);
      rt_.clock(node).advance(TimeCat::Os, net_costs.recv_trap);
      rt_.os(node).count_recv();
    }
  }
  for (int i = 0; i < n; ++i) {
    protocol_->barrier_release(NodeId{static_cast<std::uint32_t>(i)});
  }

  // Refresh barrier-frozen shadow state for the next phase's readers.
  protocol_->barrier_finish();

  if (auto* trace = rt_.trace()) {
    trace->emit("barrier " + std::to_string(index));
  }

  // Transient node stalls: a stalled node starts the next phase late, as if
  // the OS descheduled its process right after the release (ISSUE: "node
  // stalls between barriers"). Drawn statelessly from (node, barrier), so
  // the schedule is identical in both gang modes.
  if (auto* plan = rt_.fault_plan()) {
    for (int i = 0; i < n; ++i) {
      const NodeId node{static_cast<std::uint32_t>(i)};
      const SimTime stall = plan->stall(node, index);
      if (stall <= 0) continue;
      rt_.clock(node).advance(TimeCat::Os, stall);
      ++rt_.counters().node_stalls;
      if (auto* trace = rt_.trace()) {
        trace->emit("stall n" + std::to_string(node.value()) + " " +
                    std::to_string(stall) + "ns");
      }
    }
  }
  rt_.advance_epoch();

  // Measurement window: engaged at the barrier where every node asked for
  // it, *after* the barrier itself, so warm-up barrier costs are excluded.
  const bool any = std::any_of(measurement_requested_.begin(),
                               measurement_requested_.end(),
                               [](bool b) { return b; });
  if (any) {
    const bool all = std::all_of(measurement_requested_.begin(),
                                 measurement_requested_.end(),
                                 [](bool b) { return b; });
    UPDSM_REQUIRE(all, "begin_measurement must be collective: some nodes "
                       "did not request it before this barrier");
    UPDSM_REQUIRE(!rt_.measuring(), "begin_measurement requested twice");
    rt_.begin_measurement();
    std::fill(measurement_requested_.begin(), measurement_requested_.end(),
              false);
  }

  const bool any_end = std::any_of(measurement_end_requested_.begin(),
                                   measurement_end_requested_.end(),
                                   [](bool b) { return b; });
  if (any_end) {
    const bool all = std::all_of(measurement_end_requested_.begin(),
                                 measurement_end_requested_.end(),
                                 [](bool b) { return b; });
    UPDSM_REQUIRE(all, "end_measurement must be collective: some nodes did "
                       "not request it before this barrier");
    rt_.end_measurement();
    std::fill(measurement_end_requested_.begin(),
              measurement_end_requested_.end(), false);
  }
}

}  // namespace updsm::dsm
