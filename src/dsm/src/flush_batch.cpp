#include "updsm/dsm/flush_batch.hpp"

#include "updsm/common/error.hpp"

namespace updsm::dsm {
namespace {

constexpr std::size_t pad4(std::size_t n) { return (n + 3u) & ~std::size_t{3}; }

void put_u32(std::vector<std::byte>& buf, std::uint32_t v) {
  std::byte raw[4];
  std::memcpy(raw, &v, 4);
  buf.insert(buf.end(), raw, raw + 4);
}

void put_u64(std::vector<std::byte>& buf, std::uint64_t v) {
  std::byte raw[8];
  std::memcpy(raw, &v, 8);
  buf.insert(buf.end(), raw, raw + 8);
}

std::uint32_t get_u32(std::span<const std::byte> bytes, std::size_t pos) {
  std::uint32_t v = 0;
  std::memcpy(&v, bytes.data() + pos, 4);
  return v;
}

std::uint64_t get_u64(std::span<const std::byte> bytes, std::size_t pos) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + pos, 8);
  return v;
}

}  // namespace

void FlushRecordView::apply(std::span<std::byte> dst) const {
  std::size_t src = 0;
  for (const mem::DiffRun& run : runs) {
    UPDSM_CHECK(run.offset + run.length <= dst.size());
    std::memcpy(dst.data() + run.offset, payload.data() + src, run.length);
    src += run.length;
  }
}

void FlushBatchWriter::begin(NodeId sender) {
  UPDSM_CHECK(buf_.empty());
  put_u32(buf_, kFlushBatchMagic);
  put_u32(buf_, sender.value());
  put_u32(buf_, 0);  // record_count, patched by seal()
  put_u32(buf_, 0);  // body_bytes, patched by seal()
}

void FlushBatchWriter::add(PageId page, NodeId creator, EpochId epoch,
                           const mem::Diff& diff) {
  UPDSM_CHECK(!buf_.empty());  // begin() first
  put_u32(buf_, page.value());
  put_u32(buf_, creator.value());
  put_u64(buf_, epoch.value());
  put_u32(buf_, static_cast<std::uint32_t>(diff.run_count()));
  const auto payload = diff.payload();
  put_u32(buf_, static_cast<std::uint32_t>(payload.size()));
  const auto runs = diff.runs();
  const auto* run_bytes = reinterpret_cast<const std::byte*>(runs.data());
  buf_.insert(buf_.end(), run_bytes,
              run_bytes + runs.size() * sizeof(mem::DiffRun));
  buf_.insert(buf_.end(), payload.begin(), payload.end());
  buf_.resize(pad4(buf_.size()));  // zero-pads to the next 4 B boundary
  ++records_;
}

void FlushBatchWriter::seal() {
  UPDSM_CHECK(buf_.size() >= kFlushBatchHeaderBytes);
  const std::uint32_t body =
      static_cast<std::uint32_t>(buf_.size() - kFlushBatchHeaderBytes);
  std::memcpy(buf_.data() + 8, &records_, 4);
  std::memcpy(buf_.data() + 12, &body, 4);
}

FlushBatchReader::FlushBatchReader(std::span<const std::byte> bytes)
    : bytes_(bytes) {
  if (bytes.size() < kFlushBatchHeaderBytes) return;
  if (get_u32(bytes, 0) != kFlushBatchMagic) return;
  sender_ = NodeId{get_u32(bytes, 4)};
  record_count_ = get_u32(bytes, 8);
  const std::uint32_t body = get_u32(bytes, 12);
  if (kFlushBatchHeaderBytes + static_cast<std::size_t>(body) > bytes.size())
    return;
  // Trim trailing junk so record parsing sees exactly the declared body.
  bytes_ = bytes.first(kFlushBatchHeaderBytes + body);
  pos_ = kFlushBatchHeaderBytes;
  header_ok_ = true;
}

BatchReadStatus FlushBatchReader::next(FlushRecordView& out) {
  if (!header_ok_) return BatchReadStatus::Corrupt;
  if (seen_ == record_count_) {
    return pos_ == bytes_.size() ? BatchReadStatus::End
                                 : BatchReadStatus::Corrupt;
  }
  if (bytes_.size() - pos_ < kFlushRecordHeaderBytes)
    return BatchReadStatus::Corrupt;
  out.page = PageId{get_u32(bytes_, pos_)};
  out.creator = NodeId{get_u32(bytes_, pos_ + 4)};
  out.epoch = EpochId{get_u64(bytes_, pos_ + 8)};
  const std::uint32_t run_count = get_u32(bytes_, pos_ + 16);
  const std::uint32_t payload_len = get_u32(bytes_, pos_ + 20);
  pos_ += kFlushRecordHeaderBytes;
  const std::size_t run_bytes =
      static_cast<std::size_t>(run_count) * sizeof(mem::DiffRun);
  const std::size_t body = run_bytes + pad4(payload_len);
  if (bytes_.size() - pos_ < body) return BatchReadStatus::Corrupt;
  // In-place view: record offsets are all multiples of 4 and the buffer
  // base is allocator-aligned, so the cast is well-aligned for DiffRun.
  out.runs = {reinterpret_cast<const mem::DiffRun*>(bytes_.data() + pos_),
              run_count};
  out.payload = bytes_.subspan(pos_ + run_bytes, payload_len);
  std::uint64_t total = 0;
  for (const mem::DiffRun& r : out.runs) total += r.length;
  if (total != payload_len) return BatchReadStatus::Corrupt;
  pos_ += body;
  ++seen_;
  return BatchReadStatus::Record;
}

}  // namespace updsm::dsm
