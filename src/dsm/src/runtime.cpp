#include "updsm/dsm/runtime.hpp"

#include <algorithm>
#include <string>

#include "updsm/common/log.hpp"
#include "updsm/common/rng.hpp"

namespace updsm::dsm {

namespace {
using sim::MsgKind;
using sim::SimTime;
using sim::TimeCat;

/// Wire overhead per batch carried inside a FlushRelay message: original
/// sender, final destination, offset and length of the segment's bytes.
constexpr std::uint64_t kRelaySegmentHeaderBytes = 16;
}  // namespace

Runtime::Runtime(const ClusterConfig& config, std::uint32_t num_pages)
    : config_(config),
      num_pages_(num_pages),
      net_(config.costs.net, splitmix64(config.seed ^ 0xfeedULL),
           config.num_nodes) {
  validate_cluster_config(config);
  const int n = config.num_nodes;
  tables_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    tables_.push_back(
        std::make_unique<mem::PageTable>(num_pages, config.page_size));
  }
  clocks_.assign(static_cast<std::size_t>(n), sim::VirtualClock{});
  os_.assign(static_cast<std::size_t>(n),
             sim::OsModel(config.costs.os, num_pages));
  service_mu_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    service_mu_.push_back(std::make_unique<std::shared_mutex>());
  }
  workers_ = sim::Gang::resolve_workers(config.workers, n);
  arenas_.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    arenas_.push_back(std::make_unique<PoolArena>());
  }
  node_arena_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    node_arena_[static_cast<std::size_t>(i)] =
        sim::Gang::owner_worker(i, n, workers_);
  }
  if (config.trace) trace_ = std::make_unique<TraceLog>(n);
  if (!config.faults.empty()) {
    fault_plan_ = std::make_unique<sim::FaultPlan>(config.faults,
                                                   config.fault_seed, n);
  }
  page_stats_.assign(num_pages, PageStats{});
  if (config.aggregate_flushes) {
    staged_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  }
  arrival_payload_.assign(static_cast<std::size_t>(n), 0);
  release_payload_.assign(static_cast<std::size_t>(n), 0);
  measure_mark_.assign(static_cast<std::size_t>(n), 0);
}

void Runtime::mprotect(NodeId n, PageId page, mem::Protect prot, bool sigio) {
  UPDSM_LOG(Trace, "mprotect node " << n << " page " << page << " -> "
                                    << mem::to_string(prot) << " epoch "
                                    << epoch_);
  table(n).set_prot(page, prot);
  if (trace_) {
    const char* p = prot == mem::Protect::None
                        ? "none"
                        : (prot == mem::Protect::Read ? "r" : "rw");
    trace_->emit("mprot n" + std::to_string(n.value()) + " p" +
                 std::to_string(page.value()) + " " + p);
  }
  ++page_stats_[page.index()].mprotects;
  const SimTime cost = os(n).mprotect_cost(page);
  clock(n).advance(sigio ? TimeCat::Sigio : TimeCat::Os, cost);
}

void Runtime::charge_segv(NodeId n) {
  clock(n).advance(TimeCat::Os, os(n).segv_cost());
}

void Runtime::charge_dsm(NodeId n, SimTime fixed, double per_byte_ns,
                         std::uint64_t bytes, bool sigio) {
  const SimTime cost =
      fixed + static_cast<SimTime>(per_byte_ns * static_cast<double>(bytes));
  clock(n).advance(sigio ? TimeCat::Sigio : TimeCat::Dsm, cost);
}

void Runtime::retry_wait(NodeId sender, MsgKind kind, NodeId to,
                         SimTime& timeout) {
  clock(sender).advance(TimeCat::Wait, timeout);
  timeout = std::min(
      static_cast<SimTime>(static_cast<double>(timeout) *
                           config_.retry.backoff),
      config_.retry.max_timeout);
  ++counters_.reliable_retries;
  if (trace_) {
    trace_->emit("retry " + std::string(sim::to_string(kind)) + " n" +
                 std::to_string(sender.value()) + ">n" +
                 std::to_string(to.value()));
  }
}

void Runtime::suppress_dup(MsgKind kind, NodeId from, NodeId to,
                           std::uint64_t bytes, SimTime handler_extra) {
  net_.record(kind, from, to, bytes);
  net_.note_dup();
  clock(to).advance(TimeCat::Sigio, costs().net.recv_trap + handler_extra);
  os(to).count_recv();
  ++counters_.dup_suppressed;
  if (trace_) {
    trace_->emit("dup " + std::string(sim::to_string(kind)) + " n" +
                 std::to_string(from.value()) + ">n" +
                 std::to_string(to.value()));
  }
}

void Runtime::roundtrip(NodeId requester, NodeId responder, MsgKind req_kind,
                        std::uint64_t req_bytes, std::uint64_t reply_bytes,
                        SimTime responder_work) {
  UPDSM_CHECK_MSG(requester != responder,
                  "self-roundtrip on node " << requester);
  if (trace_) {
    trace_->emit("req n" + std::to_string(requester.value()) + ">n" +
                 std::to_string(responder.value()) + " " +
                 std::to_string(req_bytes) + "B " +
                 std::to_string(reply_bytes) + "B");
  }
  const auto& net_costs = costs().net;
  if (fault_plan_ == nullptr) {
    const SimTime req_wire = net_.record(req_kind, requester, responder,
                                         req_bytes);
    const SimTime reply_wire =
        net_.record(MsgKind::DataReply, responder, requester, reply_bytes);

    // Requester: send trap, then stall until the reply has been received.
    clock(requester).advance(TimeCat::Os, net_costs.send_trap);
    os(requester).count_send();
    const SimTime service = net_costs.recv_trap + costs().dsm.handler_fixed +
                            responder_work + net_costs.send_trap;
    clock(requester).advance(TimeCat::Wait, req_wire + service + reply_wire);
    clock(requester).advance(TimeCat::Os, net_costs.recv_trap);
    os(requester).count_recv();

    // Responder: the request interrupts it; everything runs in sigio context.
    clock(responder).advance(TimeCat::Sigio, service);
    os(responder).count_recv();
    os(responder).count_send();
    return;
  }

  // Fault path: retransmission loop with idempotent service-side handling.
  // A lost request or reply costs the requester the full timeout in Wait;
  // a retransmitted request arriving after the original was already served
  // is recognized (dedup) and re-answered without redoing the work, so the
  // exchange's effect on protocol state happens exactly once no matter how
  // many copies flew.
  const RetryPolicy& rp = config_.retry;
  SimTime timeout = rp.timeout;
  bool served = false;  // responder_work already performed
  for (int attempt = 1;; ++attempt) {
    const SimTime req_wire = net_.record(req_kind, requester, responder,
                                         req_bytes);
    clock(requester).advance(TimeCat::Os, net_costs.send_trap);
    os(requester).count_send();
    const sim::FaultDecision req_fate =
        fault_plan_->next(req_kind, requester, responder);
    if (req_fate.drop) {
      net_.record_drop(req_kind);
      if (attempt >= rp.max_attempts) {
        throw ProtocolError(
            "reliable " + std::string(sim::to_string(req_kind)) + " n" +
            std::to_string(requester.value()) + ">n" +
            std::to_string(responder.value()) + " exhausted " +
            std::to_string(rp.max_attempts) + " attempts");
      }
      retry_wait(requester, req_kind, responder, timeout);
      continue;
    }
    if (req_fate.extra_delay > 0) net_.note_delay();

    // Request delivered: service in sigio context at the responder. Only
    // the first delivered copy executes the real work.
    const SimTime service = net_costs.recv_trap + costs().dsm.handler_fixed +
                            (served ? 0 : responder_work) +
                            net_costs.send_trap;
    clock(responder).advance(TimeCat::Sigio, service);
    os(responder).count_recv();
    os(responder).count_send();
    if (served) {
      // Retransmission of an already-served request: counted as a
      // suppressed duplicate (the reply is simply resent).
      net_.note_dup();
      ++counters_.dup_suppressed;
    }
    served = true;
    if (req_fate.duplicate) {
      suppress_dup(req_kind, requester, responder, req_bytes,
                   costs().dsm.handler_fixed);
    }

    const SimTime reply_wire =
        net_.record(MsgKind::DataReply, responder, requester, reply_bytes);
    const sim::FaultDecision reply_fate =
        fault_plan_->next(MsgKind::DataReply, responder, requester);
    if (reply_fate.drop) {
      net_.record_drop(MsgKind::DataReply);
      if (attempt >= rp.max_attempts) {
        throw ProtocolError(
            "reliable " + std::string(sim::to_string(req_kind)) + " n" +
            std::to_string(requester.value()) + ">n" +
            std::to_string(responder.value()) + " exhausted " +
            std::to_string(rp.max_attempts) + " attempts");
      }
      retry_wait(requester, req_kind, responder, timeout);
      continue;
    }
    if (reply_fate.extra_delay > 0) net_.note_delay();

    clock(requester).advance(TimeCat::Wait,
                             req_wire + req_fate.extra_delay + service +
                                 reply_wire + reply_fate.extra_delay);
    clock(requester).advance(TimeCat::Os, net_costs.recv_trap);
    os(requester).count_recv();
    if (reply_fate.duplicate) {
      suppress_dup(MsgKind::DataReply, responder, requester, reply_bytes);
    }
    return;
  }
}

bool Runtime::flush(NodeId from, NodeId to, std::uint64_t bytes,
                    bool reliable) {
  UPDSM_CHECK_MSG(from != to, "self-flush on node " << from);
  const auto& net_costs = costs().net;
  if (fault_plan_ != nullptr && reliable) {
    // Correctness-critical diff flush: rides the retried reliable channel.
    (void)reliable_send(MsgKind::Flush, from, to, bytes);
    if (trace_) {
      trace_->emit("flush n" + std::to_string(from.value()) + ">n" +
                   std::to_string(to.value()) + " " + std::to_string(bytes) +
                   "B");
    }
    clock(to).advance(TimeCat::Sigio, net_costs.recv_trap);
    os(to).count_recv();
    return true;
  }
  net_.record(MsgKind::Flush, from, to, bytes);
  clock(from).advance(TimeCat::Os, net_costs.send_trap);
  os(from).count_send();
  bool delivered = reliable || net_.flush_delivered(to);
  bool duplicate = false;
  if (fault_plan_ != nullptr) {
    // The plan's stream is drawn unconditionally (independence from the
    // legacy flush_drop_rate stream), but a message already dropped by the
    // legacy knob is not dropped twice in the stats.
    const sim::FaultDecision fate = fault_plan_->next(MsgKind::Flush, from, to);
    if (fate.drop) {
      if (delivered) net_.record_drop(MsgKind::Flush);
      delivered = false;
    } else if (delivered) {
      duplicate = fate.duplicate;
      // Extra delay on a fire-and-forget push has no timing effect in this
      // model (the receiver absorbs it asynchronously); account it only.
      if (fate.extra_delay > 0) net_.note_delay();
    }
  }
  if (trace_) {
    trace_->emit("flush n" + std::to_string(from.value()) + ">n" +
                 std::to_string(to.value()) + " " + std::to_string(bytes) +
                 "B" + (delivered ? "" : " drop"));
  }
  if (!delivered) return false;
  clock(to).advance(TimeCat::Sigio, net_costs.recv_trap);
  os(to).count_recv();
  // A duplicated push interrupts the receiver a second time but is
  // suppressed before the protocol sees it: updates apply exactly once.
  if (duplicate) suppress_dup(MsgKind::Flush, from, to, bytes);
  return true;
}

void Runtime::stage_flush(NodeId from, NodeId to, PageId page, NodeId creator,
                          const mem::Diff& diff, bool reliable,
                          FlushDeliverFn on_deliver) {
  UPDSM_CHECK_MSG(from != to, "self-flush on node " << from);
  if (staged_.empty()) {
    // Aggregation off: the legacy per-page path, with the delivery effects
    // expressed through the same callback interface (the view aliases the
    // live diff; no serialization happens).
    const bool delivered = flush(from, to, diff.wire_bytes(), reliable);
    if (delivered && on_deliver) {
      FlushRecordView rec;
      rec.page = page;
      rec.creator = creator;
      rec.epoch = epoch_;
      rec.runs = diff.runs();
      rec.payload = diff.payload();
      on_deliver(rec);
    }
    return;
  }
  const std::size_t idx =
      from.index() * static_cast<std::size_t>(num_nodes()) + to.index();
  StagedBatch& slot = staged_[idx];
  if (slot.writer.bytes().empty()) {
    // Borrow the backing buffer from the sender-owner's arena for the
    // lifetime of this barrier's batch; seal returns it. Retained batch
    // capacity is thus bounded by the arenas, not by n^2 live slots.
    slot.writer.adopt_buffer(arena_for_node(from).batch_buffers.take());
    slot.writer.begin(from);
    staged_active_.push_back(idx);
  }
  slot.writer.add(page, creator, epoch_, diff);
  slot.deliver.push_back(std::move(on_deliver));
  slot.reliable = slot.reliable || reliable;
}

void Runtime::seal_flush_batches() {
  if (staged_.empty() || staged_active_.empty()) return;
  if (config_.relay_threshold > 0) {
    seal_flush_batches_relayed();
    return;
  }
  const auto& net_costs = costs().net;
  const std::size_t n = static_cast<std::size_t>(num_nodes());
  // Stage order interleaves destinations; transmission and delivery happen
  // in (sender asc, destination asc) order, exactly as a full-grid scan
  // would visit the non-empty slots.
  std::sort(staged_active_.begin(), staged_active_.end());
  for (const std::size_t idx : staged_active_) {
    {
      StagedBatch& slot = staged_[idx];
      const NodeId from{static_cast<std::uint32_t>(idx / n)};
      const NodeId to{static_cast<std::uint32_t>(idx % n)};
      slot.writer.seal();
      const auto bytes = slot.writer.bytes();
      const std::uint64_t records = slot.writer.record_count();

      // Record census: once per batch, never per transmission attempt, so
      // fault-injected retries cannot inflate flush_class_records().
      net_.note_records(MsgKind::FlushBatch, records);
      ++counters_.flush_batches;
      counters_.flush_batch_records += records;
      if (records > counters_.flush_batch_records_max.load()) {
        counters_.flush_batch_records_max = records;
      }
      const std::uint64_t cur_min = counters_.flush_batch_records_min.load();
      if (cur_min == 0 || records < cur_min) {
        counters_.flush_batch_records_min = records;
      }
      counters_.flush_batch_header_bytes_saved +=
          (records - 1) * net_costs.header_bytes;

      bool delivered = true;
      bool duplicate = false;
      if (slot.reliable) {
        // Any diff-to-home record makes the whole batch reliable; with no
        // fault plan reliable_send degenerates to record + send trap.
        (void)reliable_send(MsgKind::FlushBatch, from, to, bytes.size());
      } else {
        net_.record(MsgKind::FlushBatch, from, to, bytes.size());
        clock(from).advance(TimeCat::Os, net_costs.send_trap);
        os(from).count_send();
        delivered = net_.flush_delivered(to, MsgKind::FlushBatch);
        if (fault_plan_ != nullptr) {
          // Drawn unconditionally, mirroring flush(): the plan's stream is
          // independent of the legacy flush_drop_rate stream.
          const sim::FaultDecision fate =
              fault_plan_->next(MsgKind::FlushBatch, from, to);
          if (fate.drop) {
            if (delivered) net_.record_drop(MsgKind::FlushBatch);
            delivered = false;
          } else if (delivered) {
            duplicate = fate.duplicate;
            if (fate.extra_delay > 0) net_.note_delay();
          }
        }
      }
      if (trace_) {
        trace_->emit("flushbatch n" + std::to_string(from.value()) + ">n" +
                     std::to_string(to.value()) + " " +
                     std::to_string(records) + "r " +
                     std::to_string(bytes.size()) + "B" +
                     (delivered ? "" : " drop"));
      }
      if (delivered) {
        clock(to).advance(TimeCat::Sigio, net_costs.recv_trap);
        os(to).count_recv();
        if (duplicate) {
          suppress_dup(MsgKind::FlushBatch, from, to, bytes.size());
        }
        // Iterate the sealed bytes in place: every delivery round-trips
        // the wire format (the reader's views feed the callbacks directly).
        FlushBatchReader reader(bytes);
        UPDSM_CHECK(reader.header_ok());
        FlushRecordView rec;
        for (const FlushDeliverFn& fn : slot.deliver) {
          UPDSM_CHECK(reader.next(rec) == BatchReadStatus::Record);
          if (fn) fn(rec);
        }
        UPDSM_CHECK(reader.next(rec) == BatchReadStatus::End);
      }
      // A dropped batch loses *all* its records; the protocols heal through
      // the same per-record recovery as lost per-page flushes (bar version-
      // index invalidation, lmw lazy refetch).
      arena_for_node(from).batch_buffers.recycle(slot.writer.release_buffer());
      slot.deliver.clear();
      slot.reliable = false;
    }
  }
  staged_active_.clear();
}

void Runtime::seal_flush_batches_relayed() {
  const auto& net_costs = costs().net;
  const std::size_t n = static_cast<std::size_t>(num_nodes());
  const std::size_t fanout = static_cast<std::size_t>(config_.relay_fanout);
  std::sort(staged_active_.begin(), staged_active_.end());

  // Route decision per sender: a producer whose unreliable batches target
  // more than relay_threshold distinct destinations ships them through the
  // tree; reliable (diff-to-home) batches always stay unicast.
  std::vector<int> unreliable_targets(n, 0);
  for (const std::size_t idx : staged_active_) {
    if (!staged_[idx].reliable) ++unreliable_targets[idx / n];
  }

  // One traveling segment per relayed (sender, destination) batch: the
  // sealed wire bytes are never re-serialized, intermediate hops only
  // account their forwarding.
  struct Segment {
    std::size_t slot;     // index into staged_ (encodes sender and dest)
    std::uint32_t to;     // final destination
    std::uint64_t bytes;  // sealed batch wire size
  };
  std::vector<Segment> segs;

  // Pass A, (sender, destination) order: seal + census every batch and
  // transmit the unicast ones. Delivery callbacks are deferred to pass C
  // so the global callback order is independent of routing (clock charges
  // are additive, fault streams are per-(kind, from, to): deferral cannot
  // change any outcome).
  for (const std::size_t idx : staged_active_) {
    StagedBatch& slot = staged_[idx];
    const NodeId from{static_cast<std::uint32_t>(idx / n)};
    const NodeId to{static_cast<std::uint32_t>(idx % n)};
    slot.writer.seal();
    const auto bytes = slot.writer.bytes();
    const std::uint64_t records = slot.writer.record_count();
    const bool relayed =
        !slot.reliable &&
        unreliable_targets[idx / n] > config_.relay_threshold;

    // Record census: once per batch, never per transmission attempt or
    // tree hop, so flush_class_records() stays invariant under routing.
    net_.note_records(relayed ? MsgKind::FlushRelay : MsgKind::FlushBatch,
                      records);
    ++counters_.flush_batches;
    counters_.flush_batch_records += records;
    if (records > counters_.flush_batch_records_max.load()) {
      counters_.flush_batch_records_max = records;
    }
    const std::uint64_t cur_min = counters_.flush_batch_records_min.load();
    if (cur_min == 0 || records < cur_min) {
      counters_.flush_batch_records_min = records;
    }
    counters_.flush_batch_header_bytes_saved +=
        (records - 1) * net_costs.header_bytes;

    if (relayed) {
      ++counters_.relay_batches;
      segs.push_back(Segment{idx, to.value(), bytes.size()});
      continue;
    }

    bool ok = true;
    bool duplicate = false;
    if (slot.reliable) {
      (void)reliable_send(MsgKind::FlushBatch, from, to, bytes.size());
    } else {
      net_.record(MsgKind::FlushBatch, from, to, bytes.size());
      clock(from).advance(TimeCat::Os, net_costs.send_trap);
      os(from).count_send();
      ok = net_.flush_delivered(to, MsgKind::FlushBatch);
      if (fault_plan_ != nullptr) {
        const sim::FaultDecision fate =
            fault_plan_->next(MsgKind::FlushBatch, from, to);
        if (fate.drop) {
          if (ok) net_.record_drop(MsgKind::FlushBatch);
          ok = false;
        } else if (ok) {
          duplicate = fate.duplicate;
          if (fate.extra_delay > 0) net_.note_delay();
        }
      }
    }
    if (trace_) {
      trace_->emit("flushbatch n" + std::to_string(from.value()) + ">n" +
                   std::to_string(to.value()) + " " + std::to_string(records) +
                   "r " + std::to_string(bytes.size()) + "B" +
                   (ok ? "" : " drop"));
    }
    if (ok) {
      clock(to).advance(TimeCat::Sigio, net_costs.recv_trap);
      os(to).count_recv();
      if (duplicate) {
        suppress_dup(MsgKind::FlushBatch, from, to, bytes.size());
      }
    }
    slot.delivered = ok;
  }

  // Pass B: simulate the shared dissemination tree (heap layout rooted at
  // node 0, children of i are fanout*i+1 .. fanout*i+fanout). Up phase,
  // children before parents: each node combines its own batches with its
  // children's surviving segments, delivers the ones addressed to itself
  // on the spot, and forwards the rest as ONE FlushRelay message to its
  // parent. Down phase, parents before children: each hop carries only
  // the segments whose destination lies in that child's subtree. A
  // dropped hop loses every segment aboard.
  std::vector<std::vector<std::size_t>> at(n);
  for (std::size_t s = 0; s < segs.size(); ++s) {
    at[segs[s].slot / n].push_back(s);
  }
  for (std::size_t i = n; i-- > 1;) {
    std::vector<std::size_t> onward;
    for (const std::size_t s : at[i]) {
      if (segs[s].to == i) {
        staged_[segs[s].slot].delivered = true;
      } else {
        onward.push_back(s);
      }
    }
    at[i].clear();
    if (onward.empty()) continue;
    const std::size_t parent = (i - 1) / fanout;
    std::uint64_t msg_bytes = 0;
    for (const std::size_t s : onward) {
      msg_bytes += segs[s].bytes + kRelaySegmentHeaderBytes;
    }
    if (relay_hop(NodeId{static_cast<std::uint32_t>(i)},
                  NodeId{static_cast<std::uint32_t>(parent)}, msg_bytes,
                  onward.size())) {
      for (const std::size_t s : onward) at[parent].push_back(s);
    }
  }
  for (const std::size_t s : at[0]) {
    if (segs[s].to == 0) staged_[segs[s].slot].delivered = true;
  }
  const auto in_subtree = [fanout](std::size_t t, std::size_t c) {
    while (t > c) t = (t - 1) / fanout;
    return t == c;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (at[i].empty()) continue;
    const std::size_t first_child = fanout * i + 1;
    for (std::size_t c = first_child; c < first_child + fanout && c < n; ++c) {
      std::vector<std::size_t> down;
      std::uint64_t msg_bytes = 0;
      for (const std::size_t s : at[i]) {
        if (!in_subtree(segs[s].to, c)) continue;
        down.push_back(s);
        msg_bytes += segs[s].bytes + kRelaySegmentHeaderBytes;
      }
      if (down.empty()) continue;
      if (!relay_hop(NodeId{static_cast<std::uint32_t>(i)},
                     NodeId{static_cast<std::uint32_t>(c)}, msg_bytes,
                     down.size())) {
        continue;
      }
      for (const std::size_t s : down) {
        if (segs[s].to == c) {
          staged_[segs[s].slot].delivered = true;
        } else {
          at[c].push_back(s);
        }
      }
    }
    at[i].clear();
  }

  // Pass C, (sender, destination) order: run the delivery callbacks of
  // every batch that arrived -- unicast or relayed -- by iterating the
  // sealed bytes in place, then reset the slots. A lost batch loses *all*
  // its records; the protocols heal through the same per-record recovery
  // as lost per-page flushes.
  for (const std::size_t idx : staged_active_) {
    StagedBatch& slot = staged_[idx];
    if (slot.delivered) {
      FlushBatchReader reader(slot.writer.bytes());
      UPDSM_CHECK(reader.header_ok());
      FlushRecordView rec;
      for (const FlushDeliverFn& fn : slot.deliver) {
        UPDSM_CHECK(reader.next(rec) == BatchReadStatus::Record);
        if (fn) fn(rec);
      }
      UPDSM_CHECK(reader.next(rec) == BatchReadStatus::End);
    }
    const NodeId from{
        static_cast<std::uint32_t>(idx / static_cast<std::size_t>(num_nodes()))};
    arena_for_node(from).batch_buffers.recycle(slot.writer.release_buffer());
    slot.deliver.clear();
    slot.reliable = false;
    slot.delivered = false;
  }
  staged_active_.clear();
}

bool Runtime::relay_hop(NodeId from, NodeId to, std::uint64_t bytes,
                        std::size_t segments) {
  const auto& net_costs = costs().net;
  net_.record(MsgKind::FlushRelay, from, to, bytes);
  clock(from).advance(TimeCat::Os, net_costs.send_trap);
  os(from).count_send();
  ++counters_.relay_messages;
  counters_.relay_forwarded_bytes += bytes;
  bool ok = net_.flush_delivered(to, MsgKind::FlushRelay);
  bool duplicate = false;
  if (fault_plan_ != nullptr) {
    const sim::FaultDecision fate =
        fault_plan_->next(MsgKind::FlushRelay, from, to);
    if (fate.drop) {
      if (ok) net_.record_drop(MsgKind::FlushRelay);
      ok = false;
    } else if (ok) {
      duplicate = fate.duplicate;
      if (fate.extra_delay > 0) net_.note_delay();
    }
  }
  if (!ok) ++counters_.relay_subtree_losses;
  if (trace_) {
    trace_->emit("flushrelay n" + std::to_string(from.value()) + ">n" +
                 std::to_string(to.value()) + " " + std::to_string(segments) +
                 "s " + std::to_string(bytes) + "B" + (ok ? "" : " drop"));
  }
  if (!ok) return false;
  clock(to).advance(TimeCat::Sigio, net_costs.recv_trap);
  os(to).count_recv();
  if (duplicate) suppress_dup(MsgKind::FlushRelay, from, to, bytes);
  return true;
}

void Runtime::control(NodeId from, NodeId to, std::uint64_t bytes) {
  if (from == to) return;
  if (trace_) {
    trace_->emit("ctl n" + std::to_string(from.value()) + ">n" +
                 std::to_string(to.value()) + " " + std::to_string(bytes) +
                 "B");
  }
  (void)reliable_send(MsgKind::Control, from, to, bytes);
  clock(to).advance(TimeCat::Sigio, costs().net.recv_trap);
  os(to).count_recv();
}

SimTime Runtime::reliable_send(MsgKind kind, NodeId from, NodeId to,
                               std::uint64_t bytes) {
  if (from == to) return 0;
  const auto& net_costs = costs().net;
  const RetryPolicy& rp = config_.retry;
  SimTime timeout = rp.timeout;
  for (int attempt = 1;; ++attempt) {
    const SimTime wire = net_.record(kind, from, to, bytes);
    clock(from).advance(TimeCat::Os, net_costs.send_trap);
    os(from).count_send();
    if (fault_plan_ == nullptr) return wire;
    const sim::FaultDecision fate = fault_plan_->next(kind, from, to);
    if (fate.drop) {
      net_.record_drop(kind);
      if (attempt >= rp.max_attempts) {
        throw ProtocolError(
            "reliable " + std::string(sim::to_string(kind)) + " n" +
            std::to_string(from.value()) + ">n" + std::to_string(to.value()) +
            " exhausted " + std::to_string(rp.max_attempts) + " attempts");
      }
      retry_wait(from, kind, to, timeout);
      continue;
    }
    if (fate.duplicate) suppress_dup(kind, from, to, bytes);
    if (fate.extra_delay > 0) net_.note_delay();
    return wire + fate.extra_delay;
  }
}

void Runtime::begin_measurement() {
  measuring_ = true;
  net_.reset_stats();
  counters_ = ProtocolCounters{};
  for (int i = 0; i < num_nodes(); ++i) {
    clocks_[static_cast<std::size_t>(i)].reset_breakdown();
    measure_mark_[static_cast<std::size_t>(i)] =
        clocks_[static_cast<std::size_t>(i)].now();
  }
}

void Runtime::end_measurement() {
  UPDSM_CHECK_MSG(!ended_, "measurement window ended twice");
  ended_ = true;
  frozen_counters_ = counters_;
  frozen_net_ = net_.stats();
  measure_end_.resize(static_cast<std::size_t>(num_nodes()));
  frozen_breakdown_.resize(static_cast<std::size_t>(num_nodes()));
  for (int i = 0; i < num_nodes(); ++i) {
    measure_end_[static_cast<std::size_t>(i)] =
        clocks_[static_cast<std::size_t>(i)].now();
    frozen_breakdown_[static_cast<std::size_t>(i)] =
        clocks_[static_cast<std::size_t>(i)].breakdown();
  }
}

}  // namespace updsm::dsm
