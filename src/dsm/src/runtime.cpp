#include "updsm/dsm/runtime.hpp"

#include "updsm/common/log.hpp"
#include "updsm/common/rng.hpp"

namespace updsm::dsm {

namespace {
using sim::MsgKind;
using sim::SimTime;
using sim::TimeCat;
}  // namespace

Runtime::Runtime(const ClusterConfig& config, std::uint32_t num_pages)
    : config_(config),
      num_pages_(num_pages),
      net_(config.costs.net, splitmix64(config.seed ^ 0xfeedULL),
           config.num_nodes) {
  UPDSM_REQUIRE(config.num_nodes >= 1 && config.num_nodes <= 64,
                "num_nodes must be in [1, 64], got " << config.num_nodes);
  const int n = config.num_nodes;
  tables_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    tables_.push_back(
        std::make_unique<mem::PageTable>(num_pages, config.page_size));
  }
  clocks_.assign(static_cast<std::size_t>(n), sim::VirtualClock{});
  os_.assign(static_cast<std::size_t>(n),
             sim::OsModel(config.costs.os, num_pages));
  service_mu_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    service_mu_.push_back(std::make_unique<std::mutex>());
  }
  if (config.trace) trace_ = std::make_unique<TraceLog>(n);
  page_stats_.assign(num_pages, PageStats{});
  arrival_payload_.assign(static_cast<std::size_t>(n), 0);
  release_payload_.assign(static_cast<std::size_t>(n), 0);
  measure_mark_.assign(static_cast<std::size_t>(n), 0);
}

void Runtime::mprotect(NodeId n, PageId page, mem::Protect prot, bool sigio) {
  UPDSM_LOG(Trace, "mprotect node " << n << " page " << page << " -> "
                                    << mem::to_string(prot) << " epoch "
                                    << epoch_);
  table(n).set_prot(page, prot);
  if (trace_) {
    const char* p = prot == mem::Protect::None
                        ? "none"
                        : (prot == mem::Protect::Read ? "r" : "rw");
    trace_->emit("mprot n" + std::to_string(n.value()) + " p" +
                 std::to_string(page.value()) + " " + p);
  }
  ++page_stats_[page.index()].mprotects;
  const SimTime cost = os(n).mprotect_cost(page);
  clock(n).advance(sigio ? TimeCat::Sigio : TimeCat::Os, cost);
}

void Runtime::charge_segv(NodeId n) {
  clock(n).advance(TimeCat::Os, os(n).segv_cost());
}

void Runtime::charge_dsm(NodeId n, SimTime fixed, double per_byte_ns,
                         std::uint64_t bytes, bool sigio) {
  const SimTime cost =
      fixed + static_cast<SimTime>(per_byte_ns * static_cast<double>(bytes));
  clock(n).advance(sigio ? TimeCat::Sigio : TimeCat::Dsm, cost);
}

void Runtime::roundtrip(NodeId requester, NodeId responder, MsgKind req_kind,
                        std::uint64_t req_bytes, std::uint64_t reply_bytes,
                        SimTime responder_work) {
  UPDSM_CHECK_MSG(requester != responder,
                  "self-roundtrip on node " << requester);
  if (trace_) {
    trace_->emit("req n" + std::to_string(requester.value()) + ">n" +
                 std::to_string(responder.value()) + " " +
                 std::to_string(req_bytes) + "B " +
                 std::to_string(reply_bytes) + "B");
  }
  const auto& net_costs = costs().net;
  const SimTime req_wire = net_.record(req_kind, requester, responder,
                                       req_bytes);
  const SimTime reply_wire =
      net_.record(MsgKind::DataReply, responder, requester, reply_bytes);

  // Requester: send trap, then stall until the reply has been received.
  clock(requester).advance(TimeCat::Os, net_costs.send_trap);
  os(requester).count_send();
  const SimTime service = net_costs.recv_trap + costs().dsm.handler_fixed +
                          responder_work + net_costs.send_trap;
  clock(requester).advance(TimeCat::Wait, req_wire + service + reply_wire);
  clock(requester).advance(TimeCat::Os, net_costs.recv_trap);
  os(requester).count_recv();

  // Responder: the request interrupts it; everything runs in sigio context.
  clock(responder).advance(TimeCat::Sigio, service);
  os(responder).count_recv();
  os(responder).count_send();
}

bool Runtime::flush(NodeId from, NodeId to, std::uint64_t bytes,
                    bool reliable) {
  UPDSM_CHECK_MSG(from != to, "self-flush on node " << from);
  const auto& net_costs = costs().net;
  net_.record(MsgKind::Flush, from, to, bytes);
  clock(from).advance(TimeCat::Os, net_costs.send_trap);
  os(from).count_send();
  const bool delivered = reliable || net_.flush_delivered(to);
  if (trace_) {
    trace_->emit("flush n" + std::to_string(from.value()) + ">n" +
                 std::to_string(to.value()) + " " + std::to_string(bytes) +
                 "B" + (delivered ? "" : " drop"));
  }
  if (!delivered) return false;
  clock(to).advance(TimeCat::Sigio, net_costs.recv_trap);
  os(to).count_recv();
  return true;
}

void Runtime::control(NodeId from, NodeId to, std::uint64_t bytes) {
  if (from == to) return;
  if (trace_) {
    trace_->emit("ctl n" + std::to_string(from.value()) + ">n" +
                 std::to_string(to.value()) + " " + std::to_string(bytes) +
                 "B");
  }
  const auto& net_costs = costs().net;
  net_.record(MsgKind::Control, from, to, bytes);
  clock(from).advance(TimeCat::Os, net_costs.send_trap);
  os(from).count_send();
  clock(to).advance(TimeCat::Sigio, net_costs.recv_trap);
  os(to).count_recv();
}

void Runtime::begin_measurement() {
  measuring_ = true;
  net_.reset_stats();
  counters_ = ProtocolCounters{};
  for (int i = 0; i < num_nodes(); ++i) {
    clocks_[static_cast<std::size_t>(i)].reset_breakdown();
    measure_mark_[static_cast<std::size_t>(i)] =
        clocks_[static_cast<std::size_t>(i)].now();
  }
}

void Runtime::end_measurement() {
  UPDSM_CHECK_MSG(!ended_, "measurement window ended twice");
  ended_ = true;
  frozen_counters_ = counters_;
  frozen_net_ = net_.stats();
  measure_end_.resize(static_cast<std::size_t>(num_nodes()));
  frozen_breakdown_.resize(static_cast<std::size_t>(num_nodes()));
  for (int i = 0; i < num_nodes(); ++i) {
    measure_end_[static_cast<std::size_t>(i)] =
        clocks_[static_cast<std::size_t>(i)].now();
    frozen_breakdown_[static_cast<std::size_t>(i)] =
        clocks_[static_cast<std::size_t>(i)].breakdown();
  }
}

}  // namespace updsm::dsm
