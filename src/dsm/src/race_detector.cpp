#include "updsm/dsm/race_detector.hpp"

#include <algorithm>
#include <sstream>

#include "updsm/common/error.hpp"

namespace updsm::dsm {

namespace {
constexpr std::size_t kMaxReportsPerEpoch = 64;
}

std::string RaceReport::describe() const {
  std::ostringstream os;
  os << (write_write ? "write/write race" : "write/read anti-dependence")
     << " on bytes [" << lo << ", " << hi << ") between node "
     << writer.value() << " (writer) and node " << other.value()
     << " during epoch " << epoch.value();
  return os.str();
}

RaceDetector::RaceDetector(int num_nodes) {
  UPDSM_REQUIRE(num_nodes >= 1, "detector needs at least one node");
  writes_.resize(static_cast<std::size_t>(num_nodes));
  reads_.resize(static_cast<std::size_t>(num_nodes));
}

void RaceDetector::record(NodeId node, GlobalAddr addr, std::uint64_t len,
                          bool write) {
  if (len == 0) return;
  auto& list = write ? writes_[node.index()] : reads_[node.index()];
  // Fast path: extend the previous interval when accesses walk forward
  // (row-by-row views do).
  if (!list.empty() && list.back().hi >= addr && list.back().lo <= addr) {
    list.back().hi = std::max(list.back().hi, addr + len);
    return;
  }
  list.push_back(Interval{addr, addr + len, node});
}

void RaceDetector::normalize(std::vector<Interval>& intervals) {
  if (intervals.empty()) return;
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  merged.reserve(intervals.size());
  for (const Interval& iv : intervals) {
    if (!merged.empty() && iv.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  intervals = std::move(merged);
}

std::vector<RaceReport> RaceDetector::finish_epoch(EpochId epoch) {
  const auto n = writes_.size();
  for (auto& list : writes_) normalize(list);
  for (auto& list : reads_) normalize(list);

  // Merge all nodes' write intervals into one sweep list.
  std::vector<Interval> all_writes;
  for (const auto& list : writes_) {
    all_writes.insert(all_writes.end(), list.begin(), list.end());
  }
  std::sort(all_writes.begin(), all_writes.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });

  std::vector<RaceReport> reports;
  auto emit = [&](const Interval& w, const Interval& o, bool ww) {
    if (reports.size() >= kMaxReportsPerEpoch) return;
    RaceReport r;
    r.lo = std::max(w.lo, o.lo);
    r.hi = std::min(w.hi, o.hi);
    r.writer = w.node;
    r.other = o.node;
    r.write_write = ww;
    r.epoch = epoch;
    reports.push_back(r);
  };

  // write/write: adjacent-in-sweep overlap between different nodes.
  for (std::size_t i = 0; i + 1 < all_writes.size(); ++i) {
    for (std::size_t j = i + 1; j < all_writes.size(); ++j) {
      if (all_writes[j].lo >= all_writes[i].hi) break;
      if (all_writes[j].node != all_writes[i].node) {
        emit(all_writes[i], all_writes[j], /*ww=*/true);
      }
    }
  }

  // write/read: sweep each node's reads against the other nodes' writes.
  for (std::size_t reader = 0; reader < n; ++reader) {
    const auto& reads = reads_[reader];
    if (reads.empty()) continue;
    std::size_t w = 0;
    for (const Interval& r : reads) {
      while (w < all_writes.size() && all_writes[w].hi <= r.lo) ++w;
      for (std::size_t k = w;
           k < all_writes.size() && all_writes[k].lo < r.hi; ++k) {
        if (all_writes[k].node.index() != reader) {
          emit(all_writes[k], r, /*ww=*/false);
        }
      }
    }
  }

  for (auto& list : writes_) list.clear();
  for (auto& list : reads_) list.clear();
  return reports;
}

}  // namespace updsm::dsm
