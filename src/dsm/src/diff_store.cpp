#include "updsm/dsm/diff_store.hpp"

namespace updsm::dsm {

void DiffStore::put(const Key& key, mem::Diff diff) {
  // Replacement only happens in lmw-u update storage, where a later flush
  // for the same (page, epoch, creator) supersedes a stored one; drop the
  // stale accounting (and recycle the buffers) before the old object goes.
  const auto it = diffs_.find(key);
  if (it != diffs_.end()) {
    retained_bytes_ -= it->second.memory_bytes();
    pool().recycle(std::move(it->second));
  }
  retained_bytes_ += diff.memory_bytes();
  diffs_.insert_or_assign(key, std::move(diff));
}

void DiffStore::put_copy(const Key& key, const mem::Diff& diff) {
  mem::Diff copy = pool().take();
  copy = diff;  // vector copy-assignment reuses the recycled capacity
  put(key, std::move(copy));
}

const mem::Diff* DiffStore::find(const Key& key) const {
  const auto it = diffs_.find(key);
  return it == diffs_.end() ? nullptr : &it->second;
}

const mem::Diff* DiffStore::find_or_successor(const Key& key) const {
  auto it = diffs_.lower_bound(key);
  while (it != diffs_.end() && it->first.page == key.page) {
    if (it->first.creator == key.creator) return &it->second;
    ++it;
  }
  return nullptr;
}

void DiffStore::squash_put(const Key& key, mem::Diff diff) {
  auto it = diffs_.lower_bound(Key{key.page, EpochId{0}, NodeId{0}});
  while (it != diffs_.end() && it->first.page == key.page &&
         it->first.epoch < key.epoch) {
    if (it->first.creator == key.creator && diff.covers(it->second)) {
      retained_bytes_ -= it->second.memory_bytes();
      pool().recycle(std::move(it->second));
      it = diffs_.erase(it);
    } else {
      ++it;
    }
  }
  put(key, std::move(diff));
}

void DiffStore::erase(const Key& key) {
  const auto it = diffs_.find(key);
  if (it == diffs_.end()) return;
  retained_bytes_ -= it->second.memory_bytes();
  pool().recycle(std::move(it->second));
  diffs_.erase(it);
}

void DiffStore::clear() {
  for (auto& [key, diff] : diffs_) pool().recycle(std::move(diff));
  diffs_.clear();
  retained_bytes_ = 0;
}

}  // namespace updsm::dsm
