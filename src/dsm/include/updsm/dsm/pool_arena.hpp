// Per-worker allocation arenas for the host-parallel execution engine.
//
// Before the bounded worker pool, bar.cpp shared one DiffPool across all
// nodes and every TwinStore/DiffStore carried its own private free-list;
// under the parallel gang the shared pool would need a lock on the hottest
// allocation path of every barrier. Instead each gang worker owns one
// PoolArena, and every node's allocations route to the arena of the worker
// that *owns the node* (Gang::owner_worker) -- not whichever thread happens
// to run -- so the routing is deterministic and, since mid-phase only the
// owning worker executes a node and barrier hooks run on the controller
// with all workers parked (the phase barrier provides the happens-before),
// completely uncontended: no pool is ever touched by two threads at once.
//
// Pool state can never affect simulation results: takers clear or
// fully overwrite recycled buffers (Diff::create_into clears, twin create
// memcpys the whole page), so runs are bit-identical for every worker
// count. The loan counters (takes - recycles) let tests prove arenas never
// leak or cross-serve.
#pragma once

#include "updsm/mem/buffer_pool.hpp"
#include "updsm/mem/diff.hpp"

namespace updsm::dsm {

/// One worker's private pools, padded to a cache line so adjacent arenas
/// never false-share under concurrent mid-phase use.
struct alignas(64) PoolArena {
  /// Diff scratch for every node this worker owns (barrier diff creation,
  /// update-push receive copies, lmw retained stores).
  mem::DiffPool diffs{256};
  /// Page-sized buffers: twins and service snapshots.
  mem::BufferPool pages{256};
  /// FlushBatchWriter backing stores, borrowed when a (from, to) batch
  /// slot goes live at stage time and returned at seal -- retained batch
  /// capacity is O(active pairs through bounded pools), not O(n^2).
  mem::BufferPool batch_buffers{64};
};

}  // namespace updsm::dsm
