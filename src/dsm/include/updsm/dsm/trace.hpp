// Protocol event tracing.
//
// When ClusterConfig::trace is set, every externally visible protocol
// action -- faults, protection changes, request/reply exchanges, flushes,
// barriers -- is appended to a TraceLog as one compact text line. Because
// runs are bit-deterministic, a trace is a complete behavioural fingerprint
// of a protocol on a scenario: the golden tests in tests/trace_test.cpp pin
// entire event sequences, so any unintended protocol change shows up as a
// readable diff.
//
// Line grammar (space-separated, stable):
//   barrier <k>                 global barrier k completed
//   fault r|w n<node> p<page>   read/write segv on a page
//   mprot n<node> p<page> none|r|rw
//   req n<from>>n<to> <req>B <reply>B     request/reply pair
//   flush n<from>>n<to> <bytes>B [drop]   one-way flush (drop = lost)
//   ctl n<from>>n<to> <bytes>B            control message
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace updsm::dsm {

class TraceLog {
 public:
  void emit(std::string line) { lines_.push_back(std::move(line)); }

  [[nodiscard]] const std::vector<std::string>& lines() const {
    return lines_;
  }
  [[nodiscard]] std::size_t size() const { return lines_.size(); }
  void clear() { lines_.clear(); }

  /// Joins all lines with '\n' (golden-test comparison form).
  [[nodiscard]] std::string str() const {
    std::string out;
    for (const auto& line : lines_) {
      out += line;
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<std::string> lines_;
};

}  // namespace updsm::dsm
