// Protocol event tracing.
//
// When ClusterConfig::trace is set, every externally visible protocol
// action -- faults, protection changes, request/reply exchanges, flushes,
// barriers -- is appended to a TraceLog as one compact text line. Because
// runs are bit-deterministic, a trace is a complete behavioural fingerprint
// of a protocol on a scenario: the golden tests in tests/trace_test.cpp pin
// entire event sequences, so any unintended protocol change shows up as a
// readable diff.
//
// Line grammar (space-separated, stable):
//   barrier <k>                 global barrier k completed
//   fault r|w n<node> p<page>   read/write segv on a page
//   mprot n<node> p<page> none|r|rw
//   req n<from>>n<to> <req>B <reply>B     request/reply pair
//   flush n<from>>n<to> <bytes>B [drop]   one-way flush (drop = lost);
//                                 <bytes> is the diff payload, so summing
//                                 them (+ header per line) reconciles with
//                                 NetworkStats' Flush counter
//   flushbatch n<from>>n<to> <records>r <bytes>B [drop]
//                                 aggregated per-destination flush batch;
//                                 <records> page records, <bytes> the whole
//                                 sealed batch (batch + record headers
//                                 count as payload)
//   ctl n<from>>n<to> <bytes>B            control message
//
// Fault-injection events (only with a non-empty ClusterConfig::faults; the
// no-fault trace is byte-identical to the pre-fault-injection grammar):
//   retry <kind> n<from>>n<to>    reliable message lost; sender timed out
//                                 and retransmitted (kind per
//                                 sim::to_string(MsgKind))
//   dup <kind> n<from>>n<to>      duplicate delivery suppressed by the
//                                 receiver's idempotent handling
//   stall n<node> <t>ns           transient node stall injected after a
//                                 barrier release
//
// Concurrency: under the parallel gang, lines emitted mid-phase go to a
// private per-node buffer (keyed by sim::current_exec_node(), no locking),
// and the cluster flushes the buffers in node order at each barrier and at
// run end. Since every mid-phase line is emitted by the acting node's own
// thread, the flushed order -- node 0's phase events, then node 1's, ... --
// is exactly the order the serializing baton produced, so golden traces are
// identical across gang modes. Controller-context lines (barrier work)
// append directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "updsm/sim/exec_context.hpp"

namespace updsm::dsm {

class TraceLog {
 public:
  /// `num_nodes` sizes the per-node mid-phase buffers; the default keeps
  /// the log a plain single-threaded line vector (tests, tools).
  explicit TraceLog(int num_nodes = 0)
      : buffers_(static_cast<std::size_t>(num_nodes)) {}

  void emit(std::string line) {
    const int exec = sim::current_exec_node();
    if (exec >= 0 && static_cast<std::size_t>(exec) < buffers_.size()) {
      buffers_[static_cast<std::size_t>(exec)].push_back(std::move(line));
    } else {
      lines_.push_back(std::move(line));
    }
  }

  /// Appends each node's buffered mid-phase lines, in node order, to the
  /// main log. Controller context only (all nodes parked).
  void flush_node_buffers() {
    for (auto& buf : buffers_) {
      for (auto& line : buf) lines_.push_back(std::move(line));
      buf.clear();
    }
  }

  [[nodiscard]] const std::vector<std::string>& lines() const {
    return lines_;
  }
  [[nodiscard]] std::size_t size() const { return lines_.size(); }
  void clear() {
    lines_.clear();
    for (auto& buf : buffers_) buf.clear();
  }

  /// Joins all lines with '\n' (golden-test comparison form).
  [[nodiscard]] std::string str() const {
    std::string out;
    for (const auto& line : lines_) {
      out += line;
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<std::string> lines_;
  std::vector<std::vector<std::string>> buffers_;
};

}  // namespace updsm::dsm
