// Write notices for homeless (lmw) protocols (paper §2.1.1).
//
// A write notice tells a node that `page` was modified during `epoch` by
// `creator`, and names the diff to fetch before the next access. Notices
// ride barrier messages; each consumes kWireBytes of sync payload.
#pragma once

#include <cstdint>
#include <vector>

#include "updsm/common/types.hpp"

namespace updsm::dsm {

struct WriteNotice {
  PageId page{0};
  NodeId creator{0};
  EpochId epoch{0};

  /// Wire footprint: page id (4) + creator (2) + epoch (8), padded.
  static constexpr std::uint64_t kWireBytes = 16;

  friend bool operator==(const WriteNotice&, const WriteNotice&) = default;
};

/// Orders notices the way diffs must be applied: by epoch, then by creator
/// (creators within one epoch wrote disjoint ranges, so creator order is a
/// deterministic tie-break, not a semantic requirement).
struct WriteNoticeOrder {
  bool operator()(const WriteNotice& a, const WriteNotice& b) const {
    if (a.epoch != b.epoch) return a.epoch < b.epoch;
    if (a.creator != b.creator) return a.creator < b.creator;
    return a.page < b.page;
  }
};

using NoticeList = std::vector<WriteNotice>;

}  // namespace updsm::dsm
