// NullProtocol: the sequential baseline's "protocol".
//
// The paper computes speedups "with reference to a single-process version
// of the same program with all synchronization macros nulled out" (§3.1).
// NullProtocol realises exactly that: every page is mapped read-write from
// the start, no faults can occur, and barrier hooks are empty (on a 1-node
// cluster no sync messages exist either), so a 1-node run under it charges
// pure application compute time.
#pragma once

#include "updsm/dsm/protocol.hpp"
#include "updsm/dsm/runtime.hpp"

namespace updsm::dsm {

class NullProtocol final : public CoherenceProtocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "null"; }

  void init(Runtime& rt) override {
    // Frames are node-private: with no coherence actions, a multi-node run
    // would silently diverge. The null protocol is single-node by design.
    UPDSM_REQUIRE(rt.num_nodes() == 1,
                  "NullProtocol is the 1-node sequential baseline; got "
                      << rt.num_nodes() << " nodes");
    for (int i = 0; i < rt.num_nodes(); ++i) {
      const NodeId n{static_cast<std::uint32_t>(i)};
      for (std::uint32_t p = 0; p < rt.num_pages(); ++p) {
        rt.table(n).set_prot(PageId{p}, mem::Protect::ReadWrite);
      }
    }
  }

  void read_fault(NodeId, PageId) override {
    throw InternalError("NullProtocol cannot fault");
  }
  void write_fault(NodeId, PageId) override {
    throw InternalError("NullProtocol cannot fault");
  }
  // Trivially parallel-safe: no faults, no shared protocol state (and only
  // one node anyway).
  [[nodiscard]] bool parallel_safe() const override { return true; }
  void barrier_arrive(NodeId) override {}
  void barrier_master() override {}
  void barrier_release(NodeId) override {}
};

}  // namespace updsm::dsm
