// NodeContext + SharedArray: the public API an application sees.
//
// A NodeContext is handed to the application function on each node; it
// exposes shared-memory attachment, barrier/reduction synchronization,
// compute-time charging and the SUIF-style iteration annotation. Shared
// data is accessed through SharedArray<T>, whose every access goes through
// the simulated MMU: insufficient page protection raises the protocol's
// fault handler exactly like a hardware segv would under CVM.
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>

#include "updsm/common/error.hpp"
#include "updsm/common/types.hpp"
#include "updsm/dsm/cluster.hpp"
#include "updsm/sim/time.hpp"

namespace updsm::dsm {

template <typename T>
class SharedArray;

class NodeContext {
 public:
  NodeContext(Cluster& cluster, NodeId id) : cluster_(&cluster), id_(id) {}

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] int node() const { return static_cast<int>(id_.value()); }
  [[nodiscard]] int num_nodes() const {
    return cluster_->runtime().num_nodes();
  }
  [[nodiscard]] std::uint32_t page_size() const {
    return cluster_->runtime().page_size();
  }

  /// Global barrier. All nodes must call it the same number of times.
  void barrier() { cluster_->node_barrier(id_); }

  /// Global reductions (paper §2.2.1: "bar-i has been augmented to provide
  /// explicit support for reductions"; lmw carries them the same way, over
  /// its ordinary barrier messages). Each implies one barrier.
  double reduce_max(double v) { return reduce(ReduceOp::Max, v); }
  double reduce_min(double v) { return reduce(ReduceOp::Min, v); }
  double reduce_sum(double v) { return reduce(ReduceOp::Sum, v); }

  /// Charges `t` of useful application computation to this node.
  void compute(sim::SimTime t) { cluster_->node_compute(id_, t); }

  /// Convenience: charges `flops` floating-point operations through the
  /// cost model's AppCosts.
  void compute_flops(std::uint64_t flops) {
    const double ns = cluster_->runtime().costs().app.flop_ns *
                      static_cast<double>(flops);
    compute(static_cast<sim::SimTime>(ns));
  }

  /// SUIF-style annotation marking the top of the time-step loop body.
  void iteration_begin() { cluster_->node_iteration_begin(id_); }

  /// True when this run executes under the barrier-free async gang; apps
  /// with an async port switch their iteration loop on it.
  [[nodiscard]] bool async_mode() const {
    return cluster_->gang_mode() == sim::GangMode::Async;
  }

  /// Residual tolerance configured for convergence workloads
  /// (ClusterConfig::async_tolerance): apps drain their solve loop against
  /// the same value the async detector settles on, so sync and async runs
  /// converge to the same residual.
  [[nodiscard]] double convergence_tolerance() const {
    return cluster_->runtime().config().async_tolerance;
  }

  /// Barrier-free iteration boundary (async mode only): publishes this
  /// node's writes and local `residual`, yields to the node with the
  /// smallest virtual clock, and refreshes stale pages on resume. Returns
  /// true once the global residual detector has (stickily) converged --
  /// the node should then leave its iteration loop.
  [[nodiscard]] bool async_step(double residual) {
    return cluster_->node_async_step(id_, residual);
  }

  /// Global convergence verdict of the async residual detector. Only
  /// authoritative once every node has drained out of its iteration loop
  /// (read it after a post-loop barrier): a node can exhaust its sweep
  /// backstop before stragglers settle, and the detector's verdict -- not
  /// that node's loop-exit flag -- decides whether the run converged.
  [[nodiscard]] bool async_converged() const {
    return cluster_->protocol().async_converged();
  }

  /// Requests the steady-state measurement window to open at the next
  /// barrier. Collective: every node must request before that barrier.
  void begin_measurement() { cluster_->node_request_measurement(id_); }

  /// Requests the window to close at the next barrier (collective), so
  /// result validation and teardown are excluded from measured time.
  void end_measurement() { cluster_->node_request_measurement_end(id_); }

  /// Attaches a typed view of `count` elements at `addr`.
  template <typename T>
  [[nodiscard]] SharedArray<T> array(GlobalAddr addr, std::size_t count);

  /// Raw MMU-checked access; SharedArray's engine. Returns a pointer into
  /// this node's private frame memory, valid until the next barrier.
  [[nodiscard]] std::byte* touch(GlobalAddr addr, std::size_t len,
                                 AccessMode mode) {
    return cluster_->node_touch(id_, addr, len, mode);
  }

 private:
  double reduce(ReduceOp op, double v) {
    cluster_->node_reduce_prepare(id_, op, v);
    barrier();
    return cluster_->node_reduce_result(id_);
  }

  Cluster* cluster_;
  NodeId id_;
};

/// Typed accessor over a shared allocation. Copyable and cheap; acquire
/// fresh views after every barrier (protections may have changed, and a
/// stale raw span would bypass the simulated MMU).
template <typename T>
class SharedArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "shared data must be trivially copyable");

 public:
  SharedArray(NodeContext& ctx, GlobalAddr base, std::size_t count)
      : ctx_(&ctx), base_(base), count_(count) {
    UPDSM_REQUIRE(base % alignof(T) == 0,
                  "shared array base " << base << " misaligned for type of "
                                       << alignof(T) << "-byte alignment");
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] GlobalAddr addr_of(std::size_t i) const {
    UPDSM_REQUIRE(i < count_, "index " << i << " out of " << count_);
    return base_ + i * sizeof(T);
  }

  /// Single-element read through the MMU.
  [[nodiscard]] T get(std::size_t i) const {
    const std::byte* p =
        ctx_->touch(addr_of(i), sizeof(T), AccessMode::Read);
    T v;
    __builtin_memcpy(&v, p, sizeof(T));
    return v;
  }

  /// Single-element write through the MMU.
  void set(std::size_t i, T v) {
    std::byte* p = ctx_->touch(addr_of(i), sizeof(T), AccessMode::Write);
    __builtin_memcpy(p, &v, sizeof(T));
  }

  /// Validates [begin, end) for reading and returns a raw span over it.
  /// The span bypasses per-element checks; it must not outlive the epoch.
  [[nodiscard]] std::span<const T> read_view(std::size_t begin,
                                             std::size_t end) const {
    UPDSM_REQUIRE(begin <= end && end <= count_,
                  "bad view [" << begin << ", " << end << ") of " << count_);
    if (begin == end) return {};
    const std::byte* p = ctx_->touch(base_ + begin * sizeof(T),
                                     (end - begin) * sizeof(T),
                                     AccessMode::Read);
    return {reinterpret_cast<const T*>(p), end - begin};
  }

  /// Validates [begin, end) for writing and returns a mutable raw span.
  /// Taking a write view *is* a write access: write trapping fires for
  /// every page it covers, exactly as if the caller dirtied each page.
  [[nodiscard]] std::span<T> write_view(std::size_t begin, std::size_t end) {
    UPDSM_REQUIRE(begin <= end && end <= count_,
                  "bad view [" << begin << ", " << end << ") of " << count_);
    if (begin == end) return {};
    std::byte* p = ctx_->touch(base_ + begin * sizeof(T),
                               (end - begin) * sizeof(T), AccessMode::Write);
    return {reinterpret_cast<T*>(p), end - begin};
  }

  [[nodiscard]] std::span<const T> read_all() const {
    return read_view(0, count_);
  }
  [[nodiscard]] std::span<T> write_all() { return write_view(0, count_); }

 private:
  NodeContext* ctx_;
  GlobalAddr base_;
  std::size_t count_;
};

template <typename T>
SharedArray<T> NodeContext::array(GlobalAddr addr, std::size_t count) {
  return SharedArray<T>(*this, addr, count);
}

}  // namespace updsm::dsm
