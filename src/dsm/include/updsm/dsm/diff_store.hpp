// Retained-diff storage for homeless protocols (paper §2.2, Figure 1).
//
// A creator cannot discard a diff after serving it, "because P1 can not
// know if or when some other process might subsequently request the diff as
// well" -- diffs live until an explicit garbage collection. DiffStore keyes
// diffs by (page, epoch, creator), tracks total retained bytes (the
// homeless protocols' memory appetite, reported in Table-1 ablations), and
// supports the global GC that the lmw protocols trigger on memory pressure.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>

#include "updsm/common/types.hpp"
#include "updsm/mem/diff.hpp"

namespace updsm::dsm {

class DiffStore {
 public:
  struct Key {
    PageId page{0};
    EpochId epoch{0};
    NodeId creator{0};

    friend bool operator<(const Key& a, const Key& b) {
      return std::tie(a.page, a.epoch, a.creator) <
             std::tie(b.page, b.epoch, b.creator);
    }
  };

  ~DiffStore() { clear(); }  // close external-pool loans at teardown

  /// Routes diff pooling through an external per-worker arena pool
  /// (host-parallel engine) instead of the private free-list. Must be
  /// bound while empty; the bound pool must outlive this store. Pool
  /// contents never matter (takers clear or overwrite), so binding cannot
  /// change results.
  void bind_pool(mem::DiffPool* pool) { external_ = pool; }

  /// Stores a diff; replaces any previous diff with the same key.
  void put(const Key& key, mem::Diff diff);

  /// Stores a copy of `diff`, building it inside a recycled diff so the
  /// copy reuses pooled capacity (lmw-u stores one copy per consumer of
  /// every flushed update -- the hottest allocation site of that protocol).
  void put_copy(const Key& key, const mem::Diff& diff);

  /// A cleared diff with pooled capacity, for Diff::create_into(). Spent
  /// diffs return to the pool via recycle() or any erase/clear/squash.
  [[nodiscard]] mem::Diff take_scratch() { return pool().take(); }
  void recycle(mem::Diff&& diff) { pool().recycle(std::move(diff)); }

  /// Nullptr when absent.
  [[nodiscard]] const mem::Diff* find(const Key& key) const;

  /// Exact match, or -- when the entry was squashed away -- the OLDEST
  /// surviving diff of the same (page, creator) with a newer epoch (whose
  /// coverage supersedes the squashed one by construction). Nullptr when
  /// neither exists.
  [[nodiscard]] const mem::Diff* find_or_successor(const Key& key) const;

  /// Stores `diff` and erases any older diff of the same (page, creator)
  /// that it fully covers ("diff squashing": repeatedly rewritten pages
  /// retain only the newest diff instead of one per epoch).
  void squash_put(const Key& key, mem::Diff diff);

  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != nullptr;
  }

  void erase(const Key& key);
  void clear();

  [[nodiscard]] std::size_t size() const { return diffs_.size(); }
  [[nodiscard]] std::uint64_t retained_bytes() const {
    return retained_bytes_;
  }

 private:
  [[nodiscard]] mem::DiffPool& pool() {
    return external_ != nullptr ? *external_ : pool_;
  }

  std::map<Key, mem::Diff> diffs_;
  std::uint64_t retained_bytes_ = 0;
  mem::DiffPool pool_;
  mem::DiffPool* external_ = nullptr;  // per-worker arena, when bound
};

}  // namespace updsm::dsm
