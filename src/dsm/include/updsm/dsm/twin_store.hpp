// Twin management (paper §2.1.1).
//
// A twin is the pristine copy of a page snapshotted at the first write
// access of an epoch; diffing current contents against the twin yields the
// epoch's modifications. One TwinStore per node.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <unordered_map>
#include <vector>

#include "updsm/common/error.hpp"
#include "updsm/common/types.hpp"
#include "updsm/mem/buffer_pool.hpp"

namespace updsm::dsm {

class TwinStore {
 public:
  ~TwinStore() { clear(); }  // close external-pool loans at teardown

  /// Routes buffer pooling through an external per-worker arena pool
  /// instead of the private free-list (host-parallel engine). Must be
  /// bound before any twin exists; the bound pool must outlive this store.
  /// Buffer contents never matter (create() overwrites the whole page), so
  /// binding cannot change results.
  void bind_pool(mem::BufferPool* pool) {
    UPDSM_CHECK_MSG(twins_.empty(), "bind_pool with live twins");
    external_ = pool;
  }

  /// Snapshots `page_data` as the twin of `page`. A twin must not already
  /// exist (protocols create exactly one twin per page per epoch). Reuses a
  /// pooled buffer from an earlier discard() when one is available, so the
  /// twin/diff/discard cycle of each epoch allocates nothing in steady
  /// state.
  void create(PageId page, std::span<const std::byte> page_data) {
    auto [it, inserted] = twins_.try_emplace(page);
    UPDSM_CHECK_MSG(inserted, "twin for page " << page << " already exists");
    if (external_ != nullptr) {
      it->second = external_->take();
    } else if (!pool_.empty()) {
      it->second = std::move(pool_.back());
      pool_.pop_back();
    }
    it->second.resize(page_data.size());
    std::memcpy(it->second.data(), page_data.data(), page_data.size());
  }

  /// Re-snapshots an existing twin in place (bar-s/bar-m refresh the twin
  /// each epoch instead of discarding it).
  void refresh(PageId page, std::span<const std::byte> page_data) {
    const auto it = twins_.find(page);
    UPDSM_CHECK_MSG(it != twins_.end(), "no twin for page " << page);
    UPDSM_CHECK(it->second.size() == page_data.size());
    std::memcpy(it->second.data(), page_data.data(), page_data.size());
  }

  [[nodiscard]] bool has(PageId page) const { return twins_.count(page) != 0; }

  [[nodiscard]] std::span<const std::byte> get(PageId page) const {
    const auto it = twins_.find(page);
    UPDSM_CHECK_MSG(it != twins_.end(), "no twin for page " << page);
    return it->second;
  }

  /// Mutable view of an existing twin. The async protocols keep a home's
  /// twin equal to its last-PUBLISHED contents (the frame may hold newer
  /// unpublished local writes), so foreign diffs must be applied to the
  /// twin as well as the frame.
  [[nodiscard]] std::span<std::byte> get_mut(PageId page) {
    const auto it = twins_.find(page);
    UPDSM_CHECK_MSG(it != twins_.end(), "no twin for page " << page);
    return it->second;
  }

  void discard(PageId page) {
    const auto it = twins_.find(page);
    if (it == twins_.end()) return;
    recycle(std::move(it->second));
    twins_.erase(it);
  }

  void clear() {
    for (auto& [page, twin] : twins_) recycle(std::move(twin));
    twins_.clear();
  }

  [[nodiscard]] std::size_t size() const { return twins_.size(); }

  /// Page-sized buffers parked for reuse by the next create().
  [[nodiscard]] std::size_t pooled_buffers() const { return pool_.size(); }

  /// Pages with live twins, in ascending page order (deterministic
  /// iteration for diff creation).
  [[nodiscard]] std::vector<PageId> pages_sorted() const;

 private:
  static constexpr std::size_t kMaxPooled = 64;

  void recycle(std::vector<std::byte>&& buffer) {
    if (external_ != nullptr) {
      external_->recycle(std::move(buffer));
      return;
    }
    if (buffer.capacity() == 0 || pool_.size() >= kMaxPooled) return;
    pool_.push_back(std::move(buffer));
  }

  std::unordered_map<PageId, std::vector<std::byte>> twins_;
  std::vector<std::vector<std::byte>> pool_;
  mem::BufferPool* external_ = nullptr;  // per-worker arena, when bound
};

inline std::vector<PageId> TwinStore::pages_sorted() const {
  std::vector<PageId> pages;
  pages.reserve(twins_.size());
  for (const auto& [page, twin] : twins_) pages.push_back(page);
  std::sort(pages.begin(), pages.end());
  return pages;
}

}  // namespace updsm::dsm
