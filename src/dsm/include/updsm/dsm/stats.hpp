// Protocol event counters: the raw material for Table 1 and Figures 2-4.
//
// Counters are cluster-wide sums (the paper reports per-run totals).
// Network message/byte statistics live in sim::NetworkStats; time breakdowns
// in the per-node sim::VirtualClock.
//
// Fields are relaxed-atomic cells (common/atomic_stat.hpp): under the
// parallel gang, concurrent fault handlers bump the same cluster-wide
// counters mid-phase, and integer adds commute so totals stay bit-exact in
// any schedule. The struct keeps value semantics (snapshots, += merging).
#pragma once

#include <cstdint>

#include "updsm/common/atomic_stat.hpp"

namespace updsm::dsm {

struct ProtocolCounters {
  using Cell = Relaxed<std::uint64_t>;
  /// Diffs created (Table 1, "Diffs"). Includes zero-length diffs created
  /// speculatively by bar-s/bar-m only in `zero_diffs`, not here, matching
  /// the paper's accounting of real modifications.
  Cell diffs_created = 0;
  /// Speculative diffs that turned out empty (bar-s/bar-m pure overhead).
  Cell zero_diffs = 0;
  /// Remote misses: page faults whose service required network traffic
  /// (Table 1, "Remote Misses"). lmw-u faults satisfied entirely from
  /// locally stored updates do NOT count (paper §3.3).
  Cell remote_misses = 0;
  /// All faults, including locally satisfiable ones.
  Cell read_faults = 0;
  Cell write_faults = 0;
  /// Twins created (including ahead-of-time twins in overdrive).
  Cell twins_created = 0;
  /// Update (flush) messages carrying diffs that were sent / received /
  /// stored-for-later (lmw-u) / applied-at-barrier (bar-u).
  Cell updates_sent = 0;
  Cell updates_received = 0;
  Cell updates_stored = 0;
  Cell updates_applied = 0;
  /// Updates discarded because the receiver's copy was not current.
  Cell updates_ignored = 0;
  /// Whole pages fetched from homes (bar-*) or full fetches in sc-sw.
  Cell pages_fetched = 0;
  /// Home reassignments performed by the runtime migration pass.
  Cell migrations = 0;
  /// Peak bytes of retained (not-yet-garbage-collected) diffs -- the
  /// homeless protocols' "voracious appetite for memory".
  Cell retained_diff_bytes_peak = 0;
  /// Homeless-protocol garbage collections triggered.
  Cell gc_rounds = 0;
  /// Unpredicted writes trapped during overdrive (bar-s/bar-m fallback).
  Cell overdrive_mispredictions = 0;
  /// Pages that entered the private fast path: lmw single-writer mode /
  /// bar home-untracked mode (no per-epoch trapping while private).
  Cell private_entries = 0;
  /// Private pages pulled back into normal coherence by a remote access.
  Cell private_exits = 0;
  /// Reliable-channel retransmissions triggered by fault-injected drops
  /// (one per resend; a message lost k times retries k times).
  Cell reliable_retries = 0;
  /// Duplicate deliveries suppressed by idempotent service-side handling
  /// (retransmissions arriving after the original plus injected dups).
  Cell dup_suppressed = 0;
  /// Recovery work attributable to a lost unreliable update push: a bar-*
  /// barrier invalidation of an otherwise-current copy, or an lmw-u fetch
  /// for a page whose update should have been stored locally.
  Cell recovery_faults = 0;
  /// Transient node stalls injected between barriers by the fault plan.
  Cell node_stalls = 0;
  /// Aggregated FlushBatch messages sealed and transmitted (one per
  /// non-empty (sender, destination) pair per barrier).
  Cell flush_batches = 0;
  /// Page records carried by those batches (sum; mean = records / batches).
  Cell flush_batch_records = 0;
  /// Largest / smallest record count observed in one batch (min is 0 until
  /// the first batch seals; merged by max/min, not summed).
  Cell flush_batch_records_max = 0;
  Cell flush_batch_records_min = 0;
  /// Network header bytes saved by aggregation: (records - 1) * header per
  /// batch -- the per-message headers the per-page path would have paid.
  Cell flush_batch_header_bytes_saved = 0;
  /// Sealed batches that travelled the dissemination tree instead of being
  /// unicast (sender crossed relay_threshold distinct destinations).
  Cell relay_batches = 0;
  /// FlushRelay tree-hop messages actually sent (each may carry many
  /// batches as segments).
  Cell relay_messages = 0;
  /// Total bytes forwarded along tree hops (segment bytes + per-segment
  /// relay headers, summed over every hop traversed).
  Cell relay_forwarded_bytes = 0;
  /// Dropped relay hops: each loses every segment aboard (the destination
  /// subtree heals through the usual per-record recovery).
  Cell relay_subtree_losses = 0;
  /// Adaptive protocol: per-page delivery-mode changes applied at barrier
  /// sequence points (invalidate <-> update <-> overdrive).
  Cell adaptive_switches = 0;
  /// Adaptive protocol: history samples evicted from full per-page sliding
  /// windows (window pressure; 0 means every page's history fit).
  Cell adaptive_window_evictions = 0;
  /// Barrier-free iteration boundaries executed (gang=async; one per
  /// node-iteration, the async analogue of node-barriers).
  Cell async_steps = 0;
  /// Pages refetched by the async staleness refresh (cached copy lagged
  /// the home version by more than the staleness bound).
  Cell async_refreshes = 0;
  /// Cached copies invalidated by async-i publishes.
  Cell async_invalidations = 0;
  /// Times a node blocked on the bounded-asynchrony throttle
  /// (ClusterConfig::async_max_lead) waiting for a straggler to catch up.
  Cell async_throttles = 0;

  ProtocolCounters& operator+=(const ProtocolCounters& o) {
    diffs_created += o.diffs_created;
    zero_diffs += o.zero_diffs;
    remote_misses += o.remote_misses;
    read_faults += o.read_faults;
    write_faults += o.write_faults;
    twins_created += o.twins_created;
    updates_sent += o.updates_sent;
    updates_received += o.updates_received;
    updates_stored += o.updates_stored;
    updates_applied += o.updates_applied;
    updates_ignored += o.updates_ignored;
    pages_fetched += o.pages_fetched;
    migrations += o.migrations;
    retained_diff_bytes_peak =
        retained_diff_bytes_peak > o.retained_diff_bytes_peak
            ? retained_diff_bytes_peak
            : o.retained_diff_bytes_peak;
    gc_rounds += o.gc_rounds;
    overdrive_mispredictions += o.overdrive_mispredictions;
    private_entries += o.private_entries;
    private_exits += o.private_exits;
    reliable_retries += o.reliable_retries;
    dup_suppressed += o.dup_suppressed;
    recovery_faults += o.recovery_faults;
    node_stalls += o.node_stalls;
    flush_batches += o.flush_batches;
    flush_batch_records += o.flush_batch_records;
    flush_batch_records_max = flush_batch_records_max > o.flush_batch_records_max
                                  ? flush_batch_records_max
                                  : o.flush_batch_records_max;
    if (flush_batch_records_min.load() == 0 ||
        (o.flush_batch_records_min.load() != 0 &&
         o.flush_batch_records_min < flush_batch_records_min)) {
      flush_batch_records_min = o.flush_batch_records_min;
    }
    flush_batch_header_bytes_saved += o.flush_batch_header_bytes_saved;
    relay_batches += o.relay_batches;
    relay_messages += o.relay_messages;
    relay_forwarded_bytes += o.relay_forwarded_bytes;
    relay_subtree_losses += o.relay_subtree_losses;
    adaptive_switches += o.adaptive_switches;
    adaptive_window_evictions += o.adaptive_window_evictions;
    async_steps += o.async_steps;
    async_refreshes += o.async_refreshes;
    async_invalidations += o.async_invalidations;
    async_throttles += o.async_throttles;
    return *this;
  }
};

}  // namespace updsm::dsm
