// Cluster-level configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "updsm/common/error.hpp"
#include "updsm/dsm/copyset.hpp"
#include "updsm/dsm/race_detector.hpp"
#include "updsm/sim/cost_model.hpp"
#include "updsm/sim/fault_plan.hpp"
#include "updsm/sim/gang.hpp"
#include "updsm/sim/time.hpp"

namespace updsm::dsm {

/// What bar-s / bar-m should do when an *unpredicted* write is trapped while
/// overdrive is active (paper §4.1: "revert to bar-u, or, as in our
/// prototype, complain loudly and exit").
enum class OverdriveFallback {
  Strict,  // throw ProtocolError (the paper's prototype behaviour)
  Revert,  // handle the fault like bar-u and keep going
};

/// Retry parameters for the reliable channel under fault injection.
/// Request/reply exchanges and reliable one-way messages (sync, control,
/// diff-to-home flushes) that the FaultPlan drops are retransmitted after a
/// timeout with bounded exponential backoff; the sender is charged the full
/// timeout as Wait time for every lost attempt. Exhausting max_attempts
/// throws ProtocolError (only reachable with drop probabilities near 1).
struct RetryPolicy {
  sim::SimTime timeout = sim::usec(2000);
  double backoff = 2.0;
  sim::SimTime max_timeout = sim::usec(16000);
  int max_attempts = 25;
};

struct ClusterConfig {
  /// Number of DSM nodes. The paper's testbed is an 8-node SP-2.
  int num_nodes = 8;
  /// Protection granularity; the paper used 8 KB on AIX (§3.2).
  std::uint32_t page_size = 8192;
  /// Calibrated platform model (§3.2 micro-benchmarks). Authoritative --
  /// every cost charged comes from here. `net_profile` below records which
  /// named profile it was built from.
  sim::CostModel costs = sim::CostModel::sp2_defaults();
  /// Named base profile `costs` was derived from ("sp2" | "rdma"), recorded
  /// so benches can stamp provenance into BENCH_*.json. The CLIs set both:
  /// `costs = sim::CostModel::from_profile(net_profile)` plus any --cost
  /// overrides. Changing this string alone does NOT change the costs.
  std::string net_profile = "sp2";
  /// Seed for all stochastic machinery (flush drops; app datasets draw from
  /// their own seeds).
  std::uint64_t seed = 0x1998'0330;
  /// Intra-run node scheduling. Parallel runs all ready nodes concurrently
  /// between barriers (results are bit-identical to Baton -- a ctest pins
  /// it); the cluster silently downgrades to Baton for protocols whose
  /// fault handlers are not parallel-safe (sc-sw).
  sim::GangMode gang = sim::GangMode::Parallel;
  /// OS threads the parallel gang multiplexes the node contexts over.
  /// 0 = auto (hardware concurrency); values above num_nodes are clamped
  /// with a warning. Results are bit-identical for every worker count --
  /// only host wall-clock changes. `--workers` on the tools.
  int workers = 0;
  /// Barrier-time message aggregation: stage every barrier flush (diffs to
  /// home, update pushes) into one FlushBatch per (sender, destination)
  /// pair per barrier instead of one Flush per page (§2.1.2: "all diffs
  /// destined for a single node are aggregated into a single message").
  /// Results are bit-identical either way -- only message counts and times
  /// differ; a conformance test pins it. `--no-aggregate` on the tools.
  bool aggregate_flushes = true;

  // --- large-cluster topology ---------------------------------------------
  /// Barrier topology: 0 = the paper's flat master barrier (every slave
  /// messages node 0 directly); k >= 2 = a k-ary reduction/broadcast tree
  /// in heap layout (children of i are k*i+1 .. k*i+k), charging
  /// barrier_master_per_node per tree hop instead of N times on the master.
  /// Results are bit-identical to flat -- only simulated times and the
  /// per-pair message census differ; a conformance test pins it.
  /// `--fanout` on the tools.
  int barrier_fanout = 0;
  /// Relayed multicast flush dissemination: when a producer's sealed
  /// unreliable FlushBatches for one barrier target more than this many
  /// distinct destinations, they travel as one FlushRelay message up/down a
  /// deterministic relay_fanout-ary dissemination tree (intermediate nodes
  /// forward the zero-copy wire bytes unmodified) instead of N unicasts.
  /// 0 disables relaying. Reliable batches (diffs to home) always stay
  /// unicast. Results are bit-identical either way; a dropped relay loses
  /// the whole subtree and heals through the usual recovery.
  /// `--relay-threshold` on the tools.
  int relay_threshold = 0;
  /// Fan-out of the dissemination tree used for relayed flushes (>= 2).
  int relay_fanout = 4;

  // --- fault injection ----------------------------------------------------
  /// Adversarial transport behaviour (see sim/fault_plan.hpp). Empty = the
  /// perfect network (plus the legacy flush_drop_rate knob in costs.net).
  sim::FaultSpec faults;
  /// Seed for the fault plan's decision streams. Independent of `seed` so a
  /// fault schedule can be varied while the run's other stochastic inputs
  /// stay fixed.
  std::uint64_t fault_seed = 0;
  /// Reliable-channel retry behaviour when `faults` is non-empty.
  RetryPolicy retry;

  // --- home-based protocol options (bar-*) -------------------------------
  /// Runtime home migration after the first iteration (§2.2.1, third
  /// extension). Disabling reverts to static homes -- ablation X4.
  bool home_migration = true;
  /// Zhou-style user ANNOTATIONS (the alternative the paper's migration
  /// replaces, §2.2.1): an explicit home node per page. Empty = the
  /// default block distribution. Entries beyond the segment are ignored;
  /// a short vector leaves the remaining pages block-distributed.
  std::vector<std::uint32_t> static_homes;

  // --- overdrive options (bar-s / bar-m) ---------------------------------
  /// Complete iterations observed before overdrive engages ("after
  /// gathering information for some period of time", §4.1). Homes migrate
  /// during iteration 2 and copysets converge behind them, so the last
  /// learning iteration -- the one overdrive replays -- must be the first
  /// fully steady one: iteration 3. Overdrive engages during iteration 4.
  int overdrive_learn_iterations = 3;
  OverdriveFallback overdrive_fallback = OverdriveFallback::Strict;
  /// Sliding-window length, in touched epochs per page, of the adaptive
  /// protocol's history (writers, diff bytes, consumers). A page's delivery
  /// mode is re-evaluated at each barrier it was written in, and overdrive
  /// needs a full window of identical writer sets before it is considered.
  int adaptive_window = 4;
  /// Test-only: bar-m scans writable-but-unpredicted pages at each barrier
  /// to *detect* silent divergence (the paper's bar-m is "not guaranteed to
  /// maintain consistency"; the audit makes that observable in tests).
  bool overdrive_audit = false;

  // --- asynchronous iteration (gang=Async, async-u / async-i) -------------
  /// Bounded-staleness window for the async protocols: after yielding its
  /// turn, a node refreshes every cached page whose home version has
  /// advanced by MORE than this many publishes since the cached copy. 0 =
  /// always-fresh reads (refetch on any newer version); larger values trade
  /// refresh traffic for staler reads. `--staleness` on the tools.
  int staleness_bound = 4;
  /// Convergence window for the async residual detector: a node counts as
  /// settled after this many consecutive published residuals at or under
  /// the app's tolerance; the run converges when every node is settled
  /// (sticky -- see protocols/convergence.hpp).
  int async_convergence_window = 3;
  /// Residual tolerance the async detector settles against. Apps use the
  /// same value to pick their own drain criterion, so sync and async runs
  /// of a workload converge to the same residual. `--tolerance` on the
  /// tools.
  double async_tolerance = 1e-6;
  /// Bounded-asynchrony throttle: a node more than this many async steps
  /// ahead of the slowest node still iterating blocks (accruing Wait time)
  /// until the straggler catches up. Under lossy fault plans retry
  /// timeouts can skew per-sweep costs 25:1; without a bound the fast node
  /// burns its whole drain backstop before stragglers settle and its stale
  /// final residual can poison convergence detection. 0 disables the
  /// throttle (unbounded run-ahead).
  int async_max_lead = 64;

  // --- debugging tools ----------------------------------------------------
  /// Byte-granularity data-race detection (paper §5.2's companion tool):
  /// reports same-epoch conflicting accesses at each barrier. Off by
  /// default (zero overhead).
  RaceCheck race_check = RaceCheck::Off;
  /// Protocol event tracing (see dsm/trace.hpp). Off by default.
  bool trace = false;

  // --- lmw options --------------------------------------------------------
  /// Garbage-collection threshold for retained diff bytes in homeless
  /// protocols (paper §2.2: diffs "can not be discarded until explicitly
  /// garbage-collected"). 0 disables GC.
  std::uint64_t lmw_gc_threshold_bytes = 64ULL << 20;
};

/// Friendly front-door validation shared by Runtime and the CLIs, so an
/// out-of-range cluster size fails at parse time with a usable message
/// instead of tripping a check deep inside the copyset bitmap.
inline void validate_cluster_config(const ClusterConfig& config) {
  if (config.num_nodes < 1 ||
      config.num_nodes > static_cast<int>(kMaxNodes)) {
    throw UsageError("num_nodes must be between 1 and " +
                     std::to_string(kMaxNodes) + ", got " +
                     std::to_string(config.num_nodes));
  }
  if (config.workers < 0) {
    throw UsageError("workers must be >= 1 (or 0 for auto), got " +
                     std::to_string(config.workers));
  }
  if (config.barrier_fanout != 0 && config.barrier_fanout < 2) {
    throw UsageError(
        "barrier_fanout must be 0 (flat) or >= 2 (k-ary tree), got " +
        std::to_string(config.barrier_fanout));
  }
  if (config.relay_fanout < 2) {
    throw UsageError("relay_fanout must be >= 2, got " +
                     std::to_string(config.relay_fanout));
  }
  if (config.relay_threshold < 0) {
    throw UsageError("relay_threshold must be >= 0 (0 = off), got " +
                     std::to_string(config.relay_threshold));
  }
  if (!sim::CostModel::known_profile(config.net_profile)) {
    throw UsageError("unknown net profile: '" + config.net_profile +
                     "' (valid: sp2, rdma)");
  }
  if (config.adaptive_window < 2 || config.adaptive_window > 64) {
    throw UsageError("adaptive_window must be between 2 and 64, got " +
                     std::to_string(config.adaptive_window));
  }
  if (config.staleness_bound < 0) {
    throw UsageError("staleness_bound must be >= 0 (0 = always fresh), got " +
                     std::to_string(config.staleness_bound));
  }
  if (config.async_convergence_window < 1) {
    throw UsageError("async_convergence_window must be >= 1, got " +
                     std::to_string(config.async_convergence_window));
  }
  if (config.async_max_lead < 0) {
    throw UsageError("async_max_lead must be >= 0 (0 = unbounded), got " +
                     std::to_string(config.async_max_lead));
  }
  if (!(config.async_tolerance > 0.0)) {
    throw UsageError("async_tolerance must be > 0, got " +
                     std::to_string(config.async_tolerance));
  }
}

/// Gang/protocol compatibility check, shared by the CLIs and the cluster
/// constructor: the async gang hands turns to exactly one node at a time,
/// but its yield points interleave *mid-iteration* protocol work, so it
/// requires a protocol whose handlers follow the parallel-safe discipline.
/// `parallel_safe` comes from the protocol object (config.hpp cannot see
/// CoherenceProtocol); `protocol_name` makes the message friendly.
inline void validate_gang_protocol(sim::GangMode gang, bool parallel_safe,
                                   const std::string& protocol_name) {
  if (gang == sim::GangMode::Async && !parallel_safe) {
    throw UsageError("--gang=async is not supported with protocol '" +
                     protocol_name +
                     "' (its handlers are not parallel-safe); pick a "
                     "parallel-safe protocol or --gang=baton/parallel");
  }
}

}  // namespace updsm::dsm
