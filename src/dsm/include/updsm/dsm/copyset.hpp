// Per-page copysets (paper §2.1.2 / §2.2.1).
//
// A copyset is a bitmap naming the processors that cache (consume) a page.
// Producers use it to push updates instead of waiting for invalidation
// faults. Copysets are *hints*: stale entries cost wasted flushes, missing
// entries cost one more fault -- never correctness.
//
// The bitmap is a relaxed-atomic cell: under the parallel gang, several
// faulting nodes may add themselves to the same page's copyset mid-phase.
// Bitmask or/and commute, so the barrier-time value is schedule-independent.
#pragma once

#include <cstdint>

#include "updsm/common/atomic_stat.hpp"
#include "updsm/common/error.hpp"
#include "updsm/common/types.hpp"

namespace updsm::dsm {

class Copyset {
 public:
  void add(NodeId n) { bits_ |= bit(n); }
  void remove(NodeId n) { bits_ &= ~bit(n); }
  [[nodiscard]] bool contains(NodeId n) const {
    return (bits_.load() & bit(n)) != 0;
  }
  [[nodiscard]] bool empty() const { return bits_.load() == 0; }
  void clear() { bits_ = 0; }

  [[nodiscard]] int count() const { return __builtin_popcountll(bits_.load()); }

  /// Raw bitmap, as shipped in release messages (8 bytes on the wire).
  [[nodiscard]] std::uint64_t bits() const { return bits_.load(); }
  static Copyset from_bits(std::uint64_t bits) {
    Copyset cs;
    cs.bits_ = bits;
    return cs;
  }

  /// Iterates members in node order: f(NodeId).
  template <typename F>
  void for_each(F&& f) const {
    std::uint64_t b = bits_.load();
    while (b != 0) {
      const int i = __builtin_ctzll(b);
      f(NodeId{static_cast<std::uint32_t>(i)});
      b &= b - 1;
    }
  }

  friend bool operator==(Copyset a, Copyset b) {
    return a.bits_.load() == b.bits_.load();
  }

 private:
  static std::uint64_t bit(NodeId n) {
    UPDSM_CHECK_MSG(n.value() < 64, "copyset supports <= 64 nodes, got "
                                        << n);
    return 1ULL << n.value();
  }

  Relaxed<std::uint64_t> bits_ = 0;
};

}  // namespace updsm::dsm
