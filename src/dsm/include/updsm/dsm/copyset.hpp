// Per-page copysets (paper §2.1.2 / §2.2.1).
//
// A copyset is a bitmap naming the processors that cache (consume) a page.
// Producers use it to push updates instead of waiting for invalidation
// faults. Copysets are *hints*: stale entries cost wasted flushes, missing
// entries cost one more fault -- never correctness.
//
// Storage is a fixed-stride multi-word bitmap sized for kMaxNodes, so the
// cluster scales past 64 nodes without a heap allocation per page (inline
// words keep Copyset trivially copyable and free of realloc races). Two
// flavours share the layout:
//
//  * Copyset -- relaxed-atomic words: under the parallel gang, several
//    faulting nodes may add themselves to the same page's copyset
//    mid-phase. Bitmask or/and commute per word, so the barrier-time value
//    is schedule-independent.
//  * NodeSet -- plain words: barrier-frozen shadows, writer masks and wire
//    records, mutated only from controller context.
//
// On the wire a set costs wire_bytes(num_nodes) = 8 bytes per started
// 64-node block -- exactly the old single-word cost for clusters <= 64.
#pragma once

#include <array>
#include <cstdint>

#include "updsm/common/atomic_stat.hpp"
#include "updsm/common/error.hpp"
#include "updsm/common/types.hpp"

namespace updsm::dsm {

/// Hard ceiling on cluster size: sizes every inline bitmap, and Runtime /
/// the CLIs validate num_nodes against it at parse time.
inline constexpr std::uint32_t kMaxNodes = 1024;
inline constexpr std::size_t kNodeSetWords = kMaxNodes / 64;

namespace detail {
inline std::size_t node_word(NodeId n) {
  UPDSM_CHECK_MSG(n.value() < kMaxNodes,
                  "copyset supports <= " << kMaxNodes << " nodes, got " << n);
  return n.value() / 64;
}
inline std::uint64_t node_mask(NodeId n) {
  return 1ULL << (n.value() % 64);
}
}  // namespace detail

/// Non-atomic node bitmap: value semantics, controller-context mutation.
class NodeSet {
 public:
  void add(NodeId n) { words_[detail::node_word(n)] |= detail::node_mask(n); }
  void remove(NodeId n) {
    words_[detail::node_word(n)] &= ~detail::node_mask(n);
  }
  [[nodiscard]] bool contains(NodeId n) const {
    return (words_[detail::node_word(n)] & detail::node_mask(n)) != 0;
  }
  [[nodiscard]] bool empty() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  void clear() { words_.fill(0); }

  [[nodiscard]] int count() const {
    int total = 0;
    for (const std::uint64_t w : words_) total += __builtin_popcountll(w);
    return total;
  }

  /// True iff every member of `other` is also a member of this set
  /// ((other & ~this) == 0 in mask terms).
  [[nodiscard]] bool contains_all(const NodeSet& other) const {
    for (std::size_t i = 0; i < kNodeSetWords; ++i) {
      if ((other.words_[i] & ~words_[i]) != 0) return false;
    }
    return true;
  }

  /// Lowest-id member; the set must be non-empty.
  [[nodiscard]] NodeId lowest() const {
    for (std::size_t i = 0; i < kNodeSetWords; ++i) {
      if (words_[i] != 0) {
        return NodeId{static_cast<std::uint32_t>(
            i * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[i])))};
      }
    }
    UPDSM_CHECK_MSG(false, "lowest() on an empty node set");
    return NodeId{0};
  }

  /// Iterates members in node order: f(NodeId).
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < kNodeSetWords; ++i) {
      std::uint64_t b = words_[i];
      while (b != 0) {
        const int j = __builtin_ctzll(b);
        f(NodeId{static_cast<std::uint32_t>(i * 64 + static_cast<std::size_t>(j))});
        b &= b - 1;
      }
    }
  }

  /// Raw words, as shipped in release messages and flush-relay headers
  /// (only the first words_for(num_nodes) cross the wire).
  [[nodiscard]] const std::array<std::uint64_t, kNodeSetWords>& words() const {
    return words_;
  }
  static NodeSet from_words(
      const std::array<std::uint64_t, kNodeSetWords>& words) {
    NodeSet s;
    s.words_ = words;
    return s;
  }

  /// Words / bytes a set occupies on the wire for a given cluster size:
  /// 8 bytes per started 64-node block (8 bytes for any cluster <= 64, so
  /// legacy message footprints are unchanged).
  [[nodiscard]] static std::uint64_t words_for(int num_nodes) {
    return (static_cast<std::uint64_t>(num_nodes) + 63) / 64;
  }
  [[nodiscard]] static std::uint64_t wire_bytes(int num_nodes) {
    return 8 * words_for(num_nodes);
  }

  friend bool operator==(const NodeSet&, const NodeSet&) = default;

 private:
  std::array<std::uint64_t, kNodeSetWords> words_{};
};

/// Relaxed-atomic node bitmap: concurrent mid-phase adds commute.
class Copyset {
 public:
  void add(NodeId n) { words_[detail::node_word(n)] |= detail::node_mask(n); }
  void remove(NodeId n) {
    words_[detail::node_word(n)] &= ~detail::node_mask(n);
  }
  [[nodiscard]] bool contains(NodeId n) const {
    return (words_[detail::node_word(n)].load() & detail::node_mask(n)) != 0;
  }
  [[nodiscard]] bool empty() const {
    for (const auto& w : words_) {
      if (w.load() != 0) return false;
    }
    return true;
  }
  void clear() {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] int count() const {
    int total = 0;
    for (const auto& w : words_) total += __builtin_popcountll(w.load());
    return total;
  }

  /// Plain-word snapshot (the barrier-frozen shadow). Controller context or
  /// otherwise quiesced: a mid-phase snapshot would be per-word atomic only.
  [[nodiscard]] NodeSet snapshot() const {
    std::array<std::uint64_t, kNodeSetWords> words;
    for (std::size_t i = 0; i < kNodeSetWords; ++i) {
      words[i] = words_[i].load();
    }
    return NodeSet::from_words(words);
  }
  static Copyset from(const NodeSet& s) {
    Copyset cs;
    for (std::size_t i = 0; i < kNodeSetWords; ++i) {
      cs.words_[i] = s.words()[i];
    }
    return cs;
  }

  /// Iterates members in node order: f(NodeId).
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < kNodeSetWords; ++i) {
      std::uint64_t b = words_[i].load();
      while (b != 0) {
        const int j = __builtin_ctzll(b);
        f(NodeId{static_cast<std::uint32_t>(i * 64 + static_cast<std::size_t>(j))});
        b &= b - 1;
      }
    }
  }

  friend bool operator==(const Copyset& a, const Copyset& b) {
    for (std::size_t i = 0; i < kNodeSetWords; ++i) {
      if (a.words_[i].load() != b.words_[i].load()) return false;
    }
    return true;
  }

 private:
  std::array<Relaxed<std::uint64_t>, kNodeSetWords> words_{};
};

}  // namespace updsm::dsm
