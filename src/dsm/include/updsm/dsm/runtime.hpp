// Runtime: the per-run service hub shared by the cluster, the protocol and
// the application-facing NodeContext.
//
// It owns the per-node software MMUs (page tables), virtual clocks and OS
// models, the simulated network, and the protocol counters; and it provides
// the *charging helpers* through which every protocol action pays its
// simulated cost. Protocol code never touches a clock directly -- each
// helper documents who is charged, with which TimeCat, so that Figure 3's
// breakdown is an audit trail rather than an estimate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "updsm/common/atomic_stat.hpp"
#include "updsm/common/error.hpp"
#include "updsm/common/types.hpp"
#include "updsm/dsm/config.hpp"
#include "updsm/dsm/flush_batch.hpp"
#include "updsm/dsm/pool_arena.hpp"
#include "updsm/dsm/stats.hpp"
#include "updsm/dsm/trace.hpp"
#include "updsm/mem/page_table.hpp"
#include "updsm/sim/clock.hpp"
#include "updsm/sim/cost_model.hpp"
#include "updsm/sim/network.hpp"
#include "updsm/sim/os_model.hpp"

namespace updsm::dsm {

/// Cluster-wide per-page event counters (cheap enough to keep always on):
/// the raw material for hot-page analysis (`updsm_run --hot-pages`).
/// Relaxed cells: concurrent nodes may fault on the same page mid-phase
/// under the parallel gang; the increments commute.
struct PageStats {
  Relaxed<std::uint32_t> read_faults = 0;
  Relaxed<std::uint32_t> write_faults = 0;
  Relaxed<std::uint32_t> mprotects = 0;

  [[nodiscard]] std::uint64_t total() const {
    return static_cast<std::uint64_t>(read_faults.load()) +
           write_faults.load() + mprotects.load();
  }
};

class Runtime {
 public:
  Runtime(const ClusterConfig& config, std::uint32_t num_pages);

  // --- topology -----------------------------------------------------------
  [[nodiscard]] int num_nodes() const { return config_.num_nodes; }
  [[nodiscard]] NodeId master() const { return NodeId{0}; }
  [[nodiscard]] std::uint32_t num_pages() const { return num_pages_; }
  [[nodiscard]] std::uint32_t page_size() const { return config_.page_size; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] const sim::CostModel& costs() const { return config_.costs; }

  // --- per-node state -----------------------------------------------------
  [[nodiscard]] mem::PageTable& table(NodeId n) { return *tables_[check(n)]; }
  [[nodiscard]] const mem::PageTable& table(NodeId n) const {
    return *tables_[check(n)];
  }
  [[nodiscard]] sim::VirtualClock& clock(NodeId n) { return clocks_[check(n)]; }
  [[nodiscard]] const sim::VirtualClock& clock(NodeId n) const {
    return clocks_[check(n)];
  }
  [[nodiscard]] sim::OsModel& os(NodeId n) { return os_[check(n)]; }

  /// Serializes remote-fetch service against protection upgrades on node
  /// `n`'s frames under the parallel gang: fetchers copy a served page
  /// (live frame or service snapshot) under a *shared* lock -- any number
  /// of concurrent fetches may read the same owner's frames without
  /// convoying -- while the owner takes it *exclusively* for the
  /// snapshot-create + mprotect(RW) step of its own write faults, so a
  /// concurrent fetch never observes a torn frame.
  [[nodiscard]] std::shared_mutex& service_mutex(NodeId n) {
    return *service_mu_[check(n)];
  }

  // --- host-parallel allocation arenas -------------------------------------
  /// Worker count the gang will run with (resolved: auto-detected and
  /// clamped). Arenas are sized to match.
  [[nodiscard]] int workers() const { return workers_; }
  /// The allocation arena owned by gang worker `w`.
  [[nodiscard]] PoolArena& arena(int w) { return *arenas_[w]; }
  /// The arena of the worker that *owns* node `n` (Gang::owner_worker) --
  /// not whichever thread happens to call. Deterministic routing keeps the
  /// loan accounting exact and the pools uncontended (only the owning
  /// worker touches a node mid-phase; barrier hooks run with workers
  /// parked).
  [[nodiscard]] PoolArena& arena_for_node(NodeId n) {
    return *arenas_[node_arena_[check(n)]];
  }

  [[nodiscard]] sim::Network& net() { return net_; }
  [[nodiscard]] const sim::Network& net() const { return net_; }
  /// Null unless config.faults is non-empty.
  [[nodiscard]] sim::FaultPlan* fault_plan() { return fault_plan_.get(); }
  [[nodiscard]] ProtocolCounters& counters() { return counters_; }
  [[nodiscard]] const ProtocolCounters& counters() const { return counters_; }
  /// Null unless config.trace is set.
  [[nodiscard]] TraceLog* trace() { return trace_.get(); }

  [[nodiscard]] PageStats& page_stats(PageId page) {
    return page_stats_[page.index()];
  }
  [[nodiscard]] const std::vector<PageStats>& page_stats() const {
    return page_stats_;
  }

  /// Current barrier epoch: epoch k is the interval following global
  /// barrier k; epoch 0 precedes the first barrier.
  [[nodiscard]] EpochId epoch() const { return epoch_; }
  void advance_epoch() { epoch_ = EpochId{epoch_.value() + 1}; }

  // --- cost-charging helpers ----------------------------------------------
  /// Changes `page`'s protection on node `n`, charging one mprotect system
  /// call (TimeCat::Os) in the given interrupt context (`sigio` true when
  /// the change happens inside a request/flush handler).
  void mprotect(NodeId n, PageId page, mem::Protect prot, bool sigio = false);

  /// Charges the segv dispatch for a trapped access on node `n`.
  void charge_segv(NodeId n);

  /// Charges user-level protocol work (TimeCat::Dsm) of `fixed` plus
  /// `per_byte_ns * bytes` to node `n`.
  void charge_dsm(NodeId n, sim::SimTime fixed, double per_byte_ns = 0.0,
                  std::uint64_t bytes = 0, bool sigio = false);

  /// Records and charges a synchronous request/reply exchange: requester
  /// pays traps (Os) and latency (Wait); responder pays handler time
  /// (Sigio). `responder_work` is extra service time at the responder
  /// beyond the fixed handler cost (e.g. assembling a page).
  void roundtrip(NodeId requester, NodeId responder, sim::MsgKind req_kind,
                 std::uint64_t req_bytes, std::uint64_t reply_bytes,
                 sim::SimTime responder_work);

  /// Records and charges one flush message (sender Os traps; receiver Sigio
  /// recv). Update pushes are unreliable (paper §2.1.2: "flush messages can
  /// be unreliable, and therefore do not need to be acknowledged"); returns
  /// false if the network dropped one, in which case the receiver is
  /// charged nothing and must not see the data. Diff flushes to home nodes
  /// pass `reliable = true`: they are correctness-critical and ride the
  /// barrier's reliable channel.
  [[nodiscard]] bool flush(NodeId from, NodeId to, std::uint64_t bytes,
                           bool reliable = false);

  /// Reliable control message (home-migration directives etc.).
  void control(NodeId from, NodeId to, std::uint64_t bytes);

  // --- barrier-time message aggregation ------------------------------------
  /// Delivery callback of one staged flush record: runs on delivery only,
  /// with a view over the record's wire bytes (aggregated path) or over the
  /// live diff itself (per-page path) -- the callback cannot tell which.
  using FlushDeliverFn = std::function<void(const FlushRecordView&)>;

  /// Routes one barrier-time flush carrying `diff` for `page` through the
  /// aggregation layer. With config.aggregate_flushes the record is
  /// serialized into the (from, to) batch (so `diff` may be recycled as
  /// soon as this returns) and `on_deliver` is deferred until
  /// seal_flush_batches() transmits the batch; otherwise a legacy per-page
  /// flush() is sent immediately and `on_deliver` fires inline if it was
  /// delivered. A batch containing any reliable record (a diff-to-home
  /// flush) rides the reliable channel as a whole; piggybacked update
  /// records are then delivered too, which only *reduces* later recovery
  /// work and never changes results. Barrier context only (the staging
  /// loops are node-ordered, so batch contents are deterministic).
  void stage_flush(NodeId from, NodeId to, PageId page, NodeId creator,
                   const mem::Diff& diff, bool reliable,
                   FlushDeliverFn on_deliver);

  /// Seals and transmits every non-empty staged batch, one FlushBatch
  /// message per (sender, destination) pair, in (sender asc, destination
  /// asc) order; invokes the per-record delivery callbacks of delivered
  /// batches by iterating the sealed bytes in place. Controller context
  /// (Cluster calls it between the arrive loop and the releases). No-op
  /// when nothing is staged.
  ///
  /// With config.relay_threshold > 0, a sender whose unreliable batches
  /// target more than relay_threshold distinct destinations ships them as
  /// segments of FlushRelay messages along a relay_fanout-ary dissemination
  /// tree (heap layout rooted at node 0): one combined message per tree
  /// edge instead of one unicast per destination. Intermediate nodes
  /// forward the sealed wire bytes unmodified; a dropped hop loses every
  /// segment aboard, healing through the usual recovery. Results are
  /// bit-identical to unicast -- callbacks still fire in (sender,
  /// destination) order -- only times and the message census change.
  void seal_flush_batches();

  /// Records and charges one reliable one-way message (sync arrivals and
  /// releases, and internally the reliable legs of control/flush): sender
  /// pays one send trap per attempt. With no fault plan this is exactly
  /// record + send_trap + count_send. Under faults, drops cost the sender a
  /// full timeout of Wait and a retransmission (bounded exponential backoff
  /// per ClusterConfig::retry); injected duplicates charge the receiver one
  /// suppressed recv trap. Returns the wire latency of the copy that
  /// actually arrived (including any injected extra delay). Receiver-side
  /// delivery accounting stays with the caller.
  sim::SimTime reliable_send(sim::MsgKind kind, NodeId from, NodeId to,
                             std::uint64_t bytes);

  // --- barrier payload accumulators (used by Cluster) ----------------------
  /// Protocols add piggybacked metadata bytes to the arrival / release sync
  /// messages of node `n` (write notices, version lists, copyset tables).
  void add_arrival_payload(NodeId n, std::uint64_t bytes) {
    arrival_payload_[check(n)] += bytes;
  }
  void add_release_payload(NodeId n, std::uint64_t bytes) {
    release_payload_[check(n)] += bytes;
  }
  [[nodiscard]] std::uint64_t take_arrival_payload(NodeId n) {
    return std::exchange(arrival_payload_[check(n)], 0);
  }
  [[nodiscard]] std::uint64_t take_release_payload(NodeId n) {
    return std::exchange(release_payload_[check(n)], 0);
  }

  /// Resets statistics at the start of the steady-state measurement window
  /// (paper §3.1). Clock *breakdowns* reset; absolute times continue.
  void begin_measurement();
  /// Freezes the window: per-node end marks and breakdown snapshots are
  /// taken so later work (checksums, teardown) is not measured.
  void end_measurement();
  [[nodiscard]] bool measuring() const { return measuring_; }
  [[nodiscard]] bool measurement_ended() const { return ended_; }
  /// Per-node virtual time at the start of the measurement window.
  [[nodiscard]] sim::SimTime measure_mark(NodeId n) const {
    return measure_mark_[check(n)];
  }
  /// Per-node virtual time at the end of the window (now() if still open).
  [[nodiscard]] sim::SimTime measure_end(NodeId n) const {
    return ended_ ? measure_end_[check(n)] : clock(n).now();
  }
  /// Breakdown over the window (frozen at end_measurement if it was called).
  [[nodiscard]] std::array<sim::SimTime, sim::kTimeCatCount>
  window_breakdown(NodeId n) const {
    return ended_ ? frozen_breakdown_[check(n)] : clock(n).breakdown();
  }
  /// Protocol counters over the window: frozen at end_measurement so the
  /// checksum/teardown phase does not pollute Table-1 statistics.
  [[nodiscard]] const ProtocolCounters& measured_counters() const {
    return ended_ ? frozen_counters_ : counters_;
  }
  /// Network statistics over the window (same freezing rule).
  [[nodiscard]] const sim::NetworkStats& measured_net_stats() const {
    return ended_ ? frozen_net_ : net_.stats();
  }

 private:
  /// Charges `sender` the current retransmission timeout (Wait), grows it
  /// (bounded exponential backoff) and counts/traces the retry.
  void retry_wait(NodeId sender, sim::MsgKind kind, NodeId to,
                  sim::SimTime& timeout);
  /// Accounts one suppressed duplicate delivery at `to` (the copy is
  /// recorded as wire traffic, the receiver absorbs one recv trap, and the
  /// protocol never sees it).
  void suppress_dup(sim::MsgKind kind, NodeId from, NodeId to,
                    std::uint64_t bytes, sim::SimTime handler_extra = 0);

  /// seal_flush_batches() body when relay dissemination is configured:
  /// unicasts reliable / below-threshold batches, routes the rest through
  /// the tree, then runs all delivery callbacks in global (sender,
  /// destination) order so results match the unicast path bit for bit.
  void seal_flush_batches_relayed();
  /// Transmits one unreliable FlushRelay hop (fire-and-forget, like an
  /// unreliable unicast batch). Returns false if it was dropped, in which
  /// case every segment aboard is lost.
  [[nodiscard]] bool relay_hop(NodeId from, NodeId to, std::uint64_t bytes,
                               std::size_t segments);

  /// One aggregation slot per (sender, destination) pair, reused every
  /// barrier (writer buffers keep their capacity across reset()).
  struct StagedBatch {
    FlushBatchWriter writer;
    std::vector<FlushDeliverFn> deliver;  // one per staged record
    bool reliable = false;                // any reliable record upgrades all
    bool delivered = false;               // transient, relay path only
  };

  [[nodiscard]] std::size_t check(NodeId n) const {
    UPDSM_CHECK_MSG(n.value() < static_cast<std::uint32_t>(num_nodes()),
                    "node " << n << " out of range");
    return n.index();
  }

  ClusterConfig config_;
  std::uint32_t num_pages_;
  std::vector<std::unique_ptr<mem::PageTable>> tables_;
  std::vector<sim::VirtualClock> clocks_;
  std::vector<sim::OsModel> os_;
  std::vector<std::unique_ptr<std::shared_mutex>> service_mu_;
  int workers_ = 1;
  std::vector<std::unique_ptr<PoolArena>> arenas_;  // [worker]
  std::vector<int> node_arena_;                     // node -> owning worker
  sim::Network net_;
  std::unique_ptr<sim::FaultPlan> fault_plan_;
  ProtocolCounters counters_;
  std::unique_ptr<TraceLog> trace_;
  std::vector<PageStats> page_stats_;
  EpochId epoch_{0};
  std::vector<StagedBatch> staged_;  // [from * num_nodes + to]
  /// Slot indices touched since the last seal: seal iterates (and sorts)
  /// this instead of scanning all num_nodes^2 slots -- at 1024 nodes the
  /// full scan would dominate every barrier. Staging is barrier/controller
  /// context only, so plain vector appends are race-free.
  std::vector<std::size_t> staged_active_;
  std::vector<std::uint64_t> arrival_payload_;
  std::vector<std::uint64_t> release_payload_;
  bool measuring_ = false;
  bool ended_ = false;
  std::vector<sim::SimTime> measure_mark_;
  std::vector<sim::SimTime> measure_end_;
  std::vector<std::array<sim::SimTime, sim::kTimeCatCount>> frozen_breakdown_;
  ProtocolCounters frozen_counters_;
  sim::NetworkStats frozen_net_;
};

}  // namespace updsm::dsm
