// The coherence-protocol interface.
//
// A protocol implements the paper's per-event behaviour. The threading
// contract has two tiers, selected by parallel_safe():
//
//  * read_fault / write_fault run on the faulting node's thread, mid-epoch.
//    Under GangMode::Baton exactly one node runs at a time; under
//    GangMode::Parallel (only if parallel_safe() returns true) several
//    fault handlers run CONCURRENTLY. A parallel-safe handler must
//    therefore (a) base every *decision* on state frozen at the previous
//    barrier, (b) mutate only state logically local to the faulting node,
//    plus commutative accounting (relaxed-atomic counters/copysets) and the
//    node's own deferred-work logs, and (c) copy served page bytes from
//    immutable mid-phase sources (twins, service snapshots, or read-only
//    frames -- runtime.service_mutex() guards the upgrade race). State the
//    handler reads on other nodes was published at the previous barrier and
//    is frozen (LRC legality; see sim/gang.hpp).
//
//  * The barrier hooks run on the controller thread while every node is
//    parked, in globally ordered phases:
//      barrier_begin()    -- (optional) replay per-node deferred-work logs
//                            from the finished phase, in node order, before
//                            any arrival processing;
//      barrier_arrive(n)  -- capture node n's modifications (diff creation,
//                            flush sends); must not touch other nodes'
//                            frames;
//      barrier_master()   -- apply queued diffs at homes, bump versions,
//                            aggregate write notices, decide migrations;
//      barrier_release(n) -- node-n-side release work: invalidations,
//                            applying received updates, re-arming write
//                            traps, overdrive pre-twinning;
//      barrier_finish()   -- (optional) refresh barrier-frozen shadow state
//                            (e.g. frozen copysets) after all release work.
//    The phase split mirrors the real message flow and guarantees that diff
//    creation always reads frames that contain exactly the creator's own
//    epoch modifications. Because every hook here is controller-context and
//    node-ordered, barrier effects are deterministic in both gang modes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "updsm/common/error.hpp"
#include "updsm/common/types.hpp"

namespace updsm::dsm {

class Runtime;

enum class AccessMode { Read, Write };

class CoherenceProtocol {
 public:
  virtual ~CoherenceProtocol() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once, after the Runtime is fully constructed and before any
  /// application code runs. Protocols set initial page protections here.
  virtual void init(Runtime& rt) = 0;

  /// Node `n` accessed `page` with insufficient protection. The segv
  /// dispatch cost has already been charged by the MMU layer; the handler
  /// must leave the page readable (read_fault) or writable (write_fault).
  virtual void read_fault(NodeId n, PageId page) = 0;
  virtual void write_fault(NodeId n, PageId page) = 0;

  /// True when the protocol's fault handlers obey the parallel-safety
  /// contract above. The cluster downgrades GangMode::Parallel to Baton for
  /// protocols that return false (e.g. sc-sw, whose fault handlers perform
  /// mid-phase cross-node protection changes and ownership transfers).
  [[nodiscard]] virtual bool parallel_safe() const { return false; }

  /// Runs first at every barrier, before arrival processing: the place to
  /// replay mid-phase per-node logs in deterministic node order.
  virtual void barrier_begin() {}

  virtual void barrier_arrive(NodeId n) = 0;
  virtual void barrier_master() = 0;
  virtual void barrier_release(NodeId n) = 0;

  /// Runs last at every barrier, after all release work: the place to
  /// refresh shadow copies of state that the next phase reads mid-phase.
  virtual void barrier_finish() {}

  /// SUIF-style annotation: node `n` is starting the body of a new
  /// time-step iteration. Drives home migration and overdrive learning.
  virtual void iteration_begin(NodeId n, std::uint64_t iteration) {
    (void)n;
    (void)iteration;
  }

  // --- asynchronous stepping (GangMode::Async) ---------------------------
  // Under the async gang there are no mid-run barriers: instead, each node
  // brackets every iteration with a two-phase protocol hook around the
  // scheduler yield. Exactly one node runs at a time (see sim/gang.hpp), so
  // both hooks run with every other node parked and need no locking:
  //
  //   async_publish(n, step, residual)  -- BEFORE the yield: flush node n's
  //     modifications to the homes, bump versions, push/invalidate remote
  //     caches, and feed `residual` to the convergence detector. Returns
  //     true once global convergence has been detected (sticky).
  //   async_refresh(n)                  -- AFTER the yield returns: re-fetch
  //     every cached page whose home version ran ahead of the staleness
  //     bound while n was parked. Because versions only advance while n is
  //     parked, this is exactly the point that enforces the bound.
  //
  // Protocols that do not support barrier-free execution keep the throwing
  // defaults; the cluster additionally rejects gang=Async for them up
  // front (validate_gang_protocol).

  /// Publish node n's writes and its local residual for async step `step`;
  /// returns true when the run has globally converged.
  [[nodiscard]] virtual bool async_publish(NodeId n, std::uint64_t step,
                                           double residual) {
    (void)step;
    (void)residual;
    throw UsageError(std::string("protocol '") + std::string(name()) +
                     "' does not support asynchronous stepping (node " +
                     std::to_string(n.index()) + ")");
  }

  /// Refresh node n's stale cached pages after an async yield.
  virtual void async_refresh(NodeId n) {
    throw UsageError(std::string("protocol '") + std::string(name()) +
                     "' does not support asynchronous stepping (node " +
                     std::to_string(n.index()) + ")");
  }

  /// The global convergence verdict, readable after nodes drain out of
  /// their async loops. A node can exhaust its local sweep backstop while
  /// stragglers are still settling; once every node has drained (i.e. at
  /// the first post-loop barrier) this is the authoritative answer, not
  /// the per-node loop-exit flag. False for protocols without a detector.
  [[nodiscard]] virtual bool async_converged() const { return false; }

  /// Page-sized buffers (twins + service snapshots) currently held live
  /// across all nodes -- i.e. the open loans against the per-worker
  /// arenas' page pools. Simulator introspection for the pool-ownership
  /// property test; protocols without pooled page buffers report 0.
  [[nodiscard]] virtual std::uint64_t live_page_buffers() const { return 0; }
};

}  // namespace updsm::dsm
