// The coherence-protocol interface.
//
// A protocol implements the paper's per-event behaviour. All hooks run on
// exactly one thread at a time (the gang guarantees it), so protocols are
// written as straight-line single-threaded code:
//
//  * read_fault / write_fault run on the faulting node's thread, mid-epoch.
//    They may consult and charge any node (a remote request interrupts the
//    responder), but must mutate only state that is logically local to the
//    faulting node plus append-only service statistics -- the state they
//    read on other nodes was published at the previous barrier and is
//    frozen (LRC legality; see sim/gang.hpp).
//
//  * The barrier hooks run on the controller thread while every node is
//    parked, in three globally ordered phases:
//      barrier_arrive(n)  -- capture node n's modifications (diff creation,
//                            flush sends); must not touch other nodes'
//                            frames;
//      barrier_master()   -- apply queued diffs at homes, bump versions,
//                            aggregate write notices, decide migrations;
//      barrier_release(n) -- node-n-side release work: invalidations,
//                            applying received updates, re-arming write
//                            traps, overdrive pre-twinning.
//    The phase split mirrors the real message flow and guarantees that diff
//    creation always reads frames that contain exactly the creator's own
//    epoch modifications.
#pragma once

#include <cstdint>
#include <string_view>

#include "updsm/common/types.hpp"

namespace updsm::dsm {

class Runtime;

enum class AccessMode { Read, Write };

class CoherenceProtocol {
 public:
  virtual ~CoherenceProtocol() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once, after the Runtime is fully constructed and before any
  /// application code runs. Protocols set initial page protections here.
  virtual void init(Runtime& rt) = 0;

  /// Node `n` accessed `page` with insufficient protection. The segv
  /// dispatch cost has already been charged by the MMU layer; the handler
  /// must leave the page readable (read_fault) or writable (write_fault).
  virtual void read_fault(NodeId n, PageId page) = 0;
  virtual void write_fault(NodeId n, PageId page) = 0;

  virtual void barrier_arrive(NodeId n) = 0;
  virtual void barrier_master() = 0;
  virtual void barrier_release(NodeId n) = 0;

  /// SUIF-style annotation: node `n` is starting the body of a new
  /// time-step iteration. Drives home migration and overdrive learning.
  virtual void iteration_begin(NodeId n, std::uint64_t iteration) {
    (void)n;
    (void)iteration;
  }
};

}  // namespace updsm::dsm
