// Aggregated flush wire format (barrier-time message aggregation).
//
// The paper's bar-u design hinges on "all diffs destined for a single node
// are aggregated into a single message" at the barrier. This module is that
// message: protocols stage per-page diffs into one per-destination batch
// during the barrier, the runtime seals it and transmits it as a single
// MsgKind::FlushBatch, and the receiver iterates the records *in place* --
// the run table and payload are read straight out of the sealed buffer
// without an intermediate deserialized copy.
//
// Wire layout (all integers little-endian host order; the simulator never
// crosses a real byte order boundary):
//
//   BatchHeader   16 B   magic 'UFB1' | sender | record_count | body_bytes
//   Record[0..r)         each:
//     RecordHeader 24 B  page | creator | epoch (u64) | run_count | payload_len
//     run table          run_count x DiffRun {offset u32, length u32}
//     payload            payload_len bytes, zero-padded to a 4 B boundary
//
// Every offset is a multiple of 4, so the receiver can reinterpret the run
// table in place (DiffRun is two u32s); the 64-bit epoch is memcpy'd.
// body_bytes counts everything after the BatchHeader, which is also what
// the cost model charges as payload: one per_message + one trap pair + one
// 32 B network header per batch, but the full summed body (record headers
// count as payload -- the data is honest, only per-message overhead is
// amortized).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "updsm/common/error.hpp"
#include "updsm/common/types.hpp"
#include "updsm/mem/diff.hpp"

namespace updsm::dsm {

inline constexpr std::uint32_t kFlushBatchMagic = 0x55464231;  // 'UFB1'
inline constexpr std::size_t kFlushBatchHeaderBytes = 16;
inline constexpr std::size_t kFlushRecordHeaderBytes = 24;

/// One page record viewed in place inside a sealed batch (or built directly
/// over a live Diff on the non-aggregated path -- the delivery callbacks
/// cannot tell the difference).
struct FlushRecordView {
  PageId page;
  NodeId creator;
  EpochId epoch;
  std::span<const mem::DiffRun> runs;
  std::span<const std::byte> payload;

  /// Bytes the diff alone would occupy on the wire (run table + payload);
  /// matches mem::Diff::wire_bytes() of the staged diff.
  [[nodiscard]] std::uint64_t diff_wire_bytes() const {
    return runs.size() * sizeof(mem::DiffRun) + payload.size();
  }

  /// Applies the record's runs to `dst` exactly like mem::Diff::apply.
  void apply(std::span<std::byte> dst) const;

  /// Materializes the record as a Diff (capacity of `out` is reused).
  void decode_into(mem::Diff& out) const {
    out.assign(runs, payload);
  }
};

/// Builds one per-destination batch. Records serialize at stage time (the
/// protocol recycles its diff immediately after staging), so the writer owns
/// the only copy of the bytes between barrier arrival and seal. reset()
/// keeps the buffer capacity: in steady state a run's whole aggregation
/// traffic is serialized through n*n retained buffers with no allocation.
class FlushBatchWriter {
 public:
  void begin(NodeId sender);
  void add(PageId page, NodeId creator, EpochId epoch, const mem::Diff& diff);

  /// Finalizes the header. Call exactly once, after the last add().
  void seal();

  /// The sealed wire bytes (valid until reset()).
  [[nodiscard]] std::span<const std::byte> bytes() const { return buf_; }

  [[nodiscard]] std::uint32_t record_count() const { return records_; }
  [[nodiscard]] bool empty() const { return records_ == 0; }

  /// Drops the contents but keeps the allocated capacity.
  void reset() {
    buf_.clear();
    records_ = 0;
  }

  /// Installs a (pooled) backing buffer for the next begin()/add() cycle.
  /// The writer must be reset; contents of `buffer` are discarded, only
  /// its capacity matters. Pairs with release_buffer() so batch slots can
  /// borrow from a per-worker arena instead of each retaining capacity.
  void adopt_buffer(std::vector<std::byte>&& buffer) {
    UPDSM_CHECK_MSG(buf_.empty() && records_ == 0,
                    "adopt_buffer on a non-reset writer");
    buf_ = std::move(buffer);
    buf_.clear();
  }

  /// Surrenders the backing buffer (for recycling), leaving the writer
  /// reset.
  [[nodiscard]] std::vector<std::byte> release_buffer() {
    records_ = 0;
    std::vector<std::byte> out = std::move(buf_);
    buf_ = {};
    out.clear();
    return out;
  }

 private:
  std::vector<std::byte> buf_;
  std::uint32_t records_ = 0;
};

enum class BatchReadStatus {
  Record,   // a record was produced
  End,      // all record_count records consumed cleanly
  Corrupt,  // truncated or inconsistent bytes; stop
};

/// Iterates the records of a sealed batch in place.
class FlushBatchReader {
 public:
  explicit FlushBatchReader(std::span<const std::byte> bytes);

  /// False if the batch header itself is missing, has a bad magic, or
  /// declares more body bytes than are present.
  [[nodiscard]] bool header_ok() const { return header_ok_; }
  [[nodiscard]] NodeId sender() const { return sender_; }
  [[nodiscard]] std::uint32_t record_count() const { return record_count_; }

  /// Advances to the next record. Returns Record and fills `out` (spans
  /// point into the batch bytes), End after the last record, or Corrupt.
  BatchReadStatus next(FlushRecordView& out);

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
  std::uint32_t record_count_ = 0;
  std::uint32_t seen_ = 0;
  NodeId sender_;
  bool header_ok_ = false;
};

}  // namespace updsm::dsm
