// Cluster: owns the simulated machine and drives one application run.
//
// Construction wires together the Runtime (page tables, clocks, OS models,
// network), a coherence protocol, and the gang scheduler; run() executes the
// application function once per node and performs the global barrier
// protocol (sync messages, reductions, measurement windows) around the
// protocol's barrier hooks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "updsm/common/types.hpp"
#include "updsm/dsm/config.hpp"
#include "updsm/dsm/protocol.hpp"
#include "updsm/dsm/race_detector.hpp"
#include "updsm/dsm/runtime.hpp"
#include "updsm/mem/shared_heap.hpp"
#include "updsm/sim/gang.hpp"

namespace updsm::dsm {

class NodeContext;

enum class ReduceOp { Max, Min, Sum };

/// Per-node execution-time breakdown over the measurement window.
struct BreakdownReport {
  struct PerNode {
    sim::SimTime app = 0;
    sim::SimTime dsm = 0;
    sim::SimTime os = 0;
    sim::SimTime wait = 0;
    sim::SimTime sigio = 0;
    [[nodiscard]] sim::SimTime total() const {
      return app + dsm + os + wait + sigio;
    }
  };
  std::vector<PerNode> nodes;

  [[nodiscard]] PerNode summed() const {
    PerNode s;
    for (const PerNode& n : nodes) {
      s.app += n.app;
      s.dsm += n.dsm;
      s.os += n.os;
      s.wait += n.wait;
      s.sigio += n.sigio;
    }
    return s;
  }
};

class Cluster {
 public:
  using AppFn = std::function<void(NodeContext&)>;

  /// The heap fixes the shared-segment layout (one page table per node is
  /// sized from it). The protocol is installed and init()ed immediately.
  Cluster(const ClusterConfig& config, const mem::SharedHeap& heap,
          std::unique_ptr<CoherenceProtocol> protocol);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Executes `app` on every node to completion. May be called once.
  void run(const AppFn& app);

  [[nodiscard]] Runtime& runtime() { return rt_; }
  [[nodiscard]] const Runtime& runtime() const { return rt_; }
  [[nodiscard]] CoherenceProtocol& protocol() { return *protocol_; }

  /// Longest per-node virtual time over the measurement window (or the
  /// whole run when no window was set): the run's parallel execution time.
  [[nodiscard]] sim::SimTime elapsed() const;

  /// Per-node time breakdown over the measurement window.
  [[nodiscard]] BreakdownReport breakdown() const;

  /// Barriers executed.
  [[nodiscard]] std::uint64_t barriers() const { return gang_.barriers_completed(); }

  /// The scheduling mode actually in effect (after any protocol-driven
  /// downgrade); apps use it to pick the barrier vs async iteration loop.
  [[nodiscard]] sim::GangMode gang_mode() const { return gang_.mode(); }

  /// Conflicts found so far by the race detector (RaceCheck::Warn mode).
  [[nodiscard]] const std::vector<RaceReport>& race_reports() const {
    return race_reports_;
  }

  // ---- entry points used by NodeContext (not application code) ----------
  void node_barrier(NodeId n);
  void node_reduce_prepare(NodeId n, ReduceOp op, double value);
  [[nodiscard]] double node_reduce_result(NodeId n) const;
  void node_iteration_begin(NodeId n);
  void node_request_measurement(NodeId n);
  void node_request_measurement_end(NodeId n);
  void node_compute(NodeId n, sim::SimTime t);
  [[nodiscard]] std::byte* node_touch(NodeId n, GlobalAddr addr,
                                      std::size_t len, AccessMode mode);
  /// One barrier-free iteration boundary (gang=Async only): publishes node
  /// n's writes and `residual` through the protocol, applies any FaultPlan
  /// stall keyed by (node, per-node step index), yields the scheduler turn,
  /// and refreshes stale cached pages on resume. Returns true once global
  /// convergence has been detected.
  [[nodiscard]] bool node_async_step(NodeId n, double residual);

 private:
  void do_barrier(std::uint64_t index);

  Runtime rt_;
  std::unique_ptr<CoherenceProtocol> protocol_;
  sim::Gang gang_;
  bool ran_ = false;

  // Reduction rendezvous state for the current barrier.
  struct PendingReduce {
    bool armed = false;
    ReduceOp op = ReduceOp::Max;
    double value = 0.0;
  };
  std::vector<PendingReduce> pending_reduce_;
  double reduce_result_ = 0.0;
  bool reduce_result_valid_ = false;

  // One byte per node, not vector<bool>: nodes set their own flag from
  // their own thread mid-phase under the parallel gang, and vector<bool>'s
  // packed bits would make that a shared-byte data race.
  std::vector<std::uint8_t> measurement_requested_;
  std::vector<std::uint8_t> measurement_end_requested_;
  std::vector<std::uint64_t> iteration_count_;
  std::vector<std::uint64_t> async_step_count_;
  /// 1 while the node is inside its async iteration loop (between its first
  /// async_step and its next barrier); the bounded-asynchrony throttle only
  /// waits on active nodes, so drained nodes can never stall the others.
  std::vector<std::uint8_t> async_active_;

  std::unique_ptr<RaceDetector> race_detector_;  // null when Off
  std::vector<RaceReport> race_reports_;
};

}  // namespace updsm::dsm
