// Byte-granularity data-race detection for barrier programs.
//
// The paper (§5.2) compares the problem of knowing whether a program is
// safe for bar-m to run-time data-race detection [13, 14]. This detector
// provides the complementary tool: with RaceCheck enabled, the cluster
// records every MMU-checked access range and reports, at each barrier, any
// byte range touched by two different nodes in the same epoch with at
// least one writer.
//
// Two conflict classes are distinguished:
//   * write/write -- always an error for the programs this system targets
//     (concurrent diffs would overlap; merge order would matter);
//   * write/read  -- an intra-epoch anti-dependence. Plain LRC tolerates
//     these for *replicated* pages (§2.1), but their value is execution-
//     dependent under home-based serving and single-writer mode (see
//     DESIGN.md §8), so portable programs should avoid them too.
//
// Granularity note: ranges come from SharedArray accessors, so a
// write_view over bytes the application never stores to is still recorded
// as written -- the detector is conservative, exactly like the page-based
// tools of the era, but at view rather than page granularity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "updsm/common/types.hpp"

namespace updsm::dsm {

enum class RaceCheck {
  Off,   // no recording (default; zero overhead)
  Warn,  // record, report via log, keep running
  Throw, // record, throw ProtocolError at the barrier that detects it
};

struct RaceReport {
  GlobalAddr lo = 0;   // conflicting byte range [lo, hi)
  GlobalAddr hi = 0;
  NodeId writer{0};    // the (first) writing node
  NodeId other{0};     // the conflicting node
  bool write_write = false;
  EpochId epoch{0};

  [[nodiscard]] std::string describe() const;
};

class RaceDetector {
 public:
  explicit RaceDetector(int num_nodes);

  /// Records one MMU-checked access by `node`.
  void record(NodeId node, GlobalAddr addr, std::uint64_t len, bool write);

  /// Analyses the epoch's accesses, clears the recording buffers, and
  /// returns every conflict found (bounded to 64 reports per epoch).
  [[nodiscard]] std::vector<RaceReport> finish_epoch(EpochId epoch);

 private:
  struct Interval {
    GlobalAddr lo;
    GlobalAddr hi;
    NodeId node;
  };

  /// Sorts by lo and coalesces adjacent/overlapping intervals of the same
  /// node (views are recorded per row: thousands of abutting ranges).
  static void normalize(std::vector<Interval>& intervals);

  std::vector<std::vector<Interval>> writes_;  // per node
  std::vector<std::vector<Interval>> reads_;   // per node
};

}  // namespace updsm::dsm
