// custom_protocol: extending the library with your own coherence protocol.
//
// Implements, outside the library, the classic EAGER update protocol of
// Munin's "write-shared" class: every node keeps every page valid; at each
// barrier, each node's diffs are broadcast to ALL other nodes and applied
// during the release. It is the natural strawman the paper's lazy
// protocols improve on -- correct, simple, and communication-hungry.
//
// The example runs the same stencil under eager-broadcast, lmw-u and
// bar-u, validates all three against sequential execution, and prints the
// traffic each one needed.
//
//   $ ./custom_protocol
#include <cstdio>
#include <vector>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/dsm/runtime.hpp"
#include "updsm/dsm/twin_store.hpp"
#include "updsm/mem/diff.hpp"
#include "updsm/mem/shared_heap.hpp"
#include "updsm/protocols/factory.hpp"

namespace {

using namespace updsm;

/// Munin-style eager write-shared protocol in ~100 lines: everything a
/// protocol needs is the CoherenceProtocol interface plus the Runtime's
/// charging helpers.
class EagerBroadcastProtocol final : public dsm::CoherenceProtocol {
 public:
  std::string_view name() const override { return "eager-bcast"; }

  void init(dsm::Runtime& rt) override {
    rt_ = &rt;
    twins_.resize(static_cast<std::size_t>(rt.num_nodes()));
    // Everyone starts with a valid, write-protected copy of everything.
    for (int i = 0; i < rt.num_nodes(); ++i) {
      for (std::uint32_t p = 0; p < rt.num_pages(); ++p) {
        rt.table(NodeId{static_cast<std::uint32_t>(i)})
            .set_prot(PageId{p}, mem::Protect::Read);
      }
    }
  }

  void read_fault(NodeId, PageId) override {
    // Pages are never invalidated: a read fault is impossible.
    throw InternalError("eager-bcast pages are always valid");
  }

  void write_fault(NodeId n, PageId page) override {
    twins_[n.index()].create(page, rt_->table(n).frame(page));
    ++rt_->counters().twins_created;
    rt_->charge_dsm(n, 0, rt_->costs().dsm.copy_per_byte_ns,
                    rt_->page_size());
    rt_->mprotect(n, page, mem::Protect::ReadWrite);
  }

  void barrier_arrive(NodeId n) override {
    auto& twins = twins_[n.index()];
    for (const PageId page : twins.pages_sorted()) {
      mem::Diff diff =
          mem::Diff::create(twins.get(page), rt_->table(n).frame(page));
      rt_->charge_dsm(n, rt_->costs().dsm.diff_fixed,
                      rt_->costs().dsm.diff_create_per_byte_ns,
                      rt_->page_size());
      ++rt_->counters().diffs_created;
      twins.discard(page);
      rt_->mprotect(n, page, mem::Protect::Read);  // re-arm the trap
      if (diff.empty()) {
        ++rt_->counters().zero_diffs;
        continue;
      }
      // The eager part: one flush to EVERY other node, unconditionally.
      for (int i = 0; i < rt_->num_nodes(); ++i) {
        const NodeId to{static_cast<std::uint32_t>(i)};
        if (to == n) continue;
        ++rt_->counters().updates_sent;
        (void)rt_->flush(n, to, diff.wire_bytes(), /*reliable=*/true);
      }
      pending_.push_back(Pending{page, n, std::move(diff)});
    }
  }

  void barrier_master() override {}

  void barrier_release(NodeId n) override {
    // Apply every foreign diff: each node's replica stays fully current.
    for (const Pending& p : pending_) {
      if (p.creator == n) continue;
      const bool writable =
          rt_->table(n).prot(p.page) == mem::Protect::ReadWrite;
      if (!writable) rt_->mprotect(n, p.page, mem::Protect::ReadWrite);
      p.diff.apply(rt_->table(n).frame(p.page));
      rt_->charge_dsm(n, 0, rt_->costs().dsm.diff_apply_per_byte_ns,
                      p.diff.payload_bytes());
      if (!writable) rt_->mprotect(n, p.page, mem::Protect::Read);
      ++rt_->counters().updates_applied;
    }
    if (n.value() + 1 == static_cast<std::uint32_t>(rt_->num_nodes())) {
      pending_.clear();  // diffs die at the barrier, as in home-based
    }
  }

 private:
  struct Pending {
    PageId page;
    NodeId creator;
    mem::Diff diff;
  };
  dsm::Runtime* rt_ = nullptr;
  std::vector<dsm::TwinStore> twins_;
  std::vector<Pending> pending_;
};

struct Outcome {
  double checksum = 0;
  sim::SimTime elapsed = 0;
  std::uint64_t data_kb = 0;
  std::uint64_t messages = 0;
};

Outcome run_stencil(std::unique_ptr<dsm::CoherenceProtocol> protocol,
                    int nodes) {
  dsm::ClusterConfig config;
  config.num_nodes = nodes;
  constexpr std::size_t kN = 192;
  mem::SharedHeap heap(config.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(kN * kN * 8, "grid.a");
  const GlobalAddr b = heap.alloc_page_aligned(kN * kN * 8, "grid.b");
  dsm::Cluster cluster(config, heap, std::move(protocol));
  Outcome out;
  cluster.run([&](dsm::NodeContext& ctx) {
    auto ga = ctx.array<double>(a, kN * kN);
    auto gb = ctx.array<double>(b, kN * kN);
    if (ctx.node() == 0) {
      auto w = ga.write_all();
      for (std::size_t i = 0; i < kN * kN; ++i) {
        w[i] = static_cast<double>(i % 101);
      }
    }
    ctx.barrier();
    const std::size_t rows = (kN - 2) / static_cast<std::size_t>(ctx.num_nodes());
    const std::size_t lo = 1 + rows * static_cast<std::size_t>(ctx.node());
    const std::size_t hi =
        ctx.node() + 1 == ctx.num_nodes() ? kN - 1 : lo + rows;
    auto sweep = [&](dsm::SharedArray<double>& src,
                     dsm::SharedArray<double>& dst) {
      for (std::size_t r = lo; r < hi; ++r) {
        auto up = src.read_view((r - 1) * kN, r * kN);
        auto mid = src.read_view(r * kN, (r + 1) * kN);
        auto down = src.read_view((r + 1) * kN, (r + 2) * kN);
        auto o = dst.write_view(r * kN, (r + 1) * kN);
        for (std::size_t c = 1; c + 1 < kN; ++c) {
          o[c] = 0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
        }
      }
      ctx.compute_flops((hi - lo) * kN * 4);
      ctx.barrier();
    };
    for (int iter = 0; iter < 10; ++iter) {
      ctx.iteration_begin();
      sweep(ga, gb);
      sweep(gb, ga);
    }
    if (ctx.node() == 0) {
      double sum = 0;
      for (const double v : ga.read_all()) sum += v;
      out.checksum = sum;
    }
    ctx.barrier();
  });
  out.elapsed = cluster.elapsed();
  out.data_kb = cluster.runtime().net().stats().total_bytes() / 1024;
  out.messages = cluster.runtime().net().stats().total_one_way_messages();
  return out;
}

}  // namespace

int main() {
  const Outcome seq = run_stencil(
      protocols::make_protocol(protocols::ProtocolKind::Null), 1);
  std::printf("custom protocol demo: 192x192 stencil, 10 steps, 8 nodes\n\n");
  std::printf("  %-12s %10s %9s %10s  %s\n", "protocol", "time(ms)",
              "speedup", "data(kB)", "correct");

  struct Entry {
    const char* label;
    Outcome out;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"eager-bcast",
       run_stencil(std::make_unique<EagerBroadcastProtocol>(), 8)});
  entries.push_back(
      {"lmw-u",
       run_stencil(protocols::make_protocol(protocols::ProtocolKind::LmwU),
                   8)});
  entries.push_back(
      {"bar-u",
       run_stencil(protocols::make_protocol(protocols::ProtocolKind::BarU),
                   8)});
  for (const Entry& e : entries) {
    std::printf("  %-12s %10.1f %9.2f %10llu  %s\n", e.label,
                sim::to_msec(e.out.elapsed),
                static_cast<double>(seq.elapsed) /
                    static_cast<double>(e.out.elapsed),
                static_cast<unsigned long long>(e.out.data_kb),
                e.out.checksum == seq.checksum ? "bit-exact" : "DIVERGED");
  }
  std::printf(
      "\nEager broadcast keeps every replica current but ships every diff "
      "to every\nnode; the paper's lazy copyset-directed updates move the "
      "same data only to\nits consumers.\n");
  return 0;
}
