// false_sharing: why multi-writer LRC exists (paper §2.1).
//
// Eight nodes concurrently update interleaved elements of the SAME pages.
// Under the sequentially-consistent single-writer baseline (sc-sw), every
// write must win exclusive ownership, so the pages ping-pong across the
// cluster inside each epoch; under multi-writer LRC (lmw-i) the concurrent
// writes proceed without any communication and the diffs merge at the
// barrier. The example prints the message/traffic gap.
//
// Note: sc-sw revokes access mid-epoch, so this program uses element
// accessors (get/set) throughout -- cached views would bypass revocation
// (see protocols/sc_sw.hpp).
//
//   $ ./false_sharing
#include <cstdio>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/mem/shared_heap.hpp"
#include "updsm/protocols/factory.hpp"

namespace {

using namespace updsm;

constexpr std::size_t kCount = 2048;  // two 8 KB pages of doubles
constexpr int kIterations = 8;

struct Outcome {
  std::uint64_t messages = 0;
  std::uint64_t data_kb = 0;
  sim::SimTime elapsed = 0;
  bool correct = false;
};

Outcome run(protocols::ProtocolKind kind) {
  dsm::ClusterConfig config;
  config.num_nodes = 8;
  mem::SharedHeap heap(config.page_size);
  const GlobalAddr addr = heap.alloc_page_aligned(kCount * 8, "data");

  dsm::Cluster cluster(config, heap, protocols::make_protocol(kind));
  bool correct = true;
  cluster.run([&](dsm::NodeContext& ctx) {
    auto data = ctx.array<double>(addr, kCount);
    const auto nodes = static_cast<std::size_t>(ctx.num_nodes());
    const auto me = static_cast<std::size_t>(ctx.node());
    for (int iter = 1; iter <= kIterations; ++iter) {
      // Interleaved ownership: node k updates elements k, k+8, k+16, ...
      // Every page is written by every node in every epoch.
      for (std::size_t i = me; i < kCount; i += nodes) {
        data.set(i, iter * 10.0 + static_cast<double>(i));
      }
      ctx.compute_flops(kCount / nodes * 2);
      ctx.barrier();
      for (std::size_t i = 0; i < kCount; i += 97) {
        if (data.get(i) != iter * 10.0 + static_cast<double>(i)) {
          correct = false;
        }
      }
      ctx.barrier();
    }
  });

  Outcome out;
  out.messages = cluster.runtime().net().stats().total_one_way_messages();
  out.data_kb = cluster.runtime().net().stats().total_bytes() / 1024;
  out.elapsed = cluster.elapsed();
  out.correct = correct;
  return out;
}

}  // namespace

int main() {
  std::printf("false sharing: 8 writers interleaved on the same pages, "
              "%d epochs\n\n", kIterations);
  std::printf("  %-6s %12s %10s %10s  %s\n", "proto", "messages", "data(kB)",
              "time(ms)", "correct");
  for (const auto kind :
       {protocols::ProtocolKind::ScSw, protocols::ProtocolKind::LmwI,
        protocols::ProtocolKind::BarU}) {
    const Outcome o = run(kind);
    std::printf("  %-6s %12llu %10llu %10.1f  %s\n",
                protocols::to_string(kind),
                static_cast<unsigned long long>(o.messages),
                static_cast<unsigned long long>(o.data_kb),
                sim::to_msec(o.elapsed), o.correct ? "yes" : "NO");
  }
  std::printf(
      "\nsc-sw must arbitrate page ownership among the concurrent writers "
      "inside the\nepoch (the simulator's cooperative scheduling coalesces "
      "its per-access\nping-pong into one ownership transfer per node per "
      "page, so real hardware\nwould look considerably worse); the "
      "multi-writer protocols let all eight\nwriters proceed in parallel "
      "and merge their diffs at the barrier -- bar-u\nfinishes ~2-3x "
      "sooner (paper section 2.1).\n");
  return 0;
}
