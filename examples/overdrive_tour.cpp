// overdrive_tour: a guided walk through bar-s and bar-m "overdrive"
// (paper §4 and §5).
//
// Runs one stable stencil under bar-u, bar-s and bar-m, printing the OS
// trap counters before and after overdrive engages -- showing bar-s
// eliminating segvs and bar-m eliminating mprotects -- and then
// demonstrates the safety net: the same program with a late phase change
// is rejected by the Strict fallback and survives (correctly) under
// Revert.
//
//   $ ./overdrive_tour
#include <cstdio>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/mem/shared_heap.hpp"
#include "updsm/protocols/bar.hpp"
#include "updsm/protocols/factory.hpp"

namespace {

using namespace updsm;

constexpr std::size_t kCount = 8192;
constexpr int kNodes = 8;

void stencil_iteration(dsm::NodeContext& ctx,
                       dsm::SharedArray<double>& data, int iter,
                       bool diverge) {
  const auto nodes = static_cast<std::size_t>(ctx.num_nodes());
  const auto me = static_cast<std::size_t>(ctx.node());
  const std::size_t chunk = kCount / nodes;
  ctx.iteration_begin();
  {
    auto w = data.write_view(me * chunk, (me + 1) * chunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      w[i] = iter * 3.0 + static_cast<double>(i);
    }
    ctx.compute_flops(chunk * 2);
  }
  if (diverge && me == 3) {
    // A write the learned pattern never saw: node 3 pokes node 4's block.
    data.set(4 * chunk, -1.0);
  }
  ctx.barrier();
  {
    const std::size_t peer = (me + 1) % nodes;
    auto r = data.read_view(peer * chunk, (peer + 1) * chunk);
    double acc = 0;
    for (const double v : r) acc += v;
    ctx.compute_flops(chunk);
    (void)acc;
  }
  ctx.barrier();
}

struct TrapCounts {
  std::uint64_t segvs = 0;
  std::uint64_t mprotects = 0;
};

TrapCounts total_traps(const dsm::Cluster& cluster) {
  TrapCounts t;
  for (int i = 0; i < kNodes; ++i) {
    auto& rt = const_cast<dsm::Cluster&>(cluster).runtime();
    const auto& c = rt.os(NodeId{static_cast<std::uint32_t>(i)}).counters();
    t.segvs += c.segvs;
    t.mprotects += c.mprotects;
  }
  return t;
}

void tour_protocol(protocols::ProtocolKind kind) {
  dsm::ClusterConfig config;
  config.num_nodes = kNodes;
  mem::SharedHeap heap(config.page_size);
  const GlobalAddr addr = heap.alloc_page_aligned(kCount * 8, "data");

  auto protocol = protocols::make_protocol(kind);
  auto* bar = dynamic_cast<protocols::BarProtocol*>(protocol.get());
  dsm::Cluster cluster(config, heap, std::move(protocol));

  TrapCounts at_engage;
  bool engaged_reported = false;
  cluster.run([&](dsm::NodeContext& ctx) {
    auto data = ctx.array<double>(addr, kCount);
    for (int iter = 1; iter <= 12; ++iter) {
      stencil_iteration(ctx, data, iter, /*diverge=*/false);
      if (ctx.node() == 0 && bar->overdrive_active() && !engaged_reported) {
        engaged_reported = true;
        at_engage = total_traps(cluster);
        std::printf("  %-6s overdrive engaged after iteration %d "
                    "(period %llu barriers)\n",
                    protocols::to_string(kind), iter,
                    static_cast<unsigned long long>(bar->overdrive_period()));
      }
    }
  });

  const TrapCounts end = total_traps(cluster);
  if (!engaged_reported) {
    std::printf("  %-6s never engages overdrive (by design)\n",
                protocols::to_string(kind));
    at_engage = TrapCounts{};
  }
  std::printf("  %-6s steady-state traps: %llu segvs, %llu mprotects\n",
              protocols::to_string(kind),
              static_cast<unsigned long long>(end.segvs - at_engage.segvs),
              static_cast<unsigned long long>(end.mprotects -
                                              at_engage.mprotects));
}

int run_divergent(dsm::OverdriveFallback fallback) {
  dsm::ClusterConfig config;
  config.num_nodes = kNodes;
  config.overdrive_fallback = fallback;
  mem::SharedHeap heap(config.page_size);
  const GlobalAddr addr = heap.alloc_page_aligned(kCount * 8, "data");
  dsm::Cluster cluster(config, heap,
                       protocols::make_protocol(protocols::ProtocolKind::BarS));
  try {
    cluster.run([&](dsm::NodeContext& ctx) {
      auto data = ctx.array<double>(addr, kCount);
      for (int iter = 1; iter <= 12; ++iter) {
        stencil_iteration(ctx, data, iter, /*diverge=*/iter == 9);
      }
    });
  } catch (const ProtocolError& e) {
    std::printf("  Strict: rejected -- %s\n", e.what());
    return 1;
  }
  std::printf("  Revert: handled %llu unpredicted write(s), result correct "
              "(poked value visible: %s)\n",
              static_cast<unsigned long long>(
                  cluster.runtime().counters().overdrive_mispredictions),
              cluster.runtime().counters().overdrive_mispredictions > 0
                  ? "yes"
                  : "no");
  return 0;
}

}  // namespace

int main() {
  std::printf("Part 1: trap elimination on a stable pattern (12 iterations)\n");
  for (const auto kind :
       {protocols::ProtocolKind::BarU, protocols::ProtocolKind::BarS,
        protocols::ProtocolKind::BarM}) {
    tour_protocol(kind);
  }
  std::printf("\nPart 2: what happens when the pattern changes at "
              "iteration 9\n");
  run_divergent(dsm::OverdriveFallback::Strict);
  run_divergent(dsm::OverdriveFallback::Revert);
  std::printf("\n(bar-m is only safe when access patterns are completely "
              "predictable -- paper section 5.2.)\n");
  return 0;
}
