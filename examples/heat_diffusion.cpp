// heat_diffusion: porting a real kernel to the DSM, the way a scientist
// would follow the paper's programming model (§1: "write sequential
// programs, re-writing a few computation-intensive procedures, and adding
// parallelism directives where necessary").
//
// A 2-D explicit heat solver is written once against NodeContext; the same
// function runs sequentially (1 node) and in parallel under each protocol.
// The example prints a protocol-by-protocol speedup/traffic comparison and
// verifies that every run computes bit-identical temperatures.
//
//   $ ./heat_diffusion [grid] [iterations]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/mem/shared_heap.hpp"
#include "updsm/protocols/factory.hpp"

namespace {

using namespace updsm;

struct HeatResult {
  double checksum = 0.0;
  sim::SimTime elapsed = 0;
  std::uint64_t data_kb = 0;
  std::uint64_t misses = 0;
};

/// The ported kernel: forward-Euler heat diffusion with a hot disk in the
/// middle, rows block-distributed, one barrier per half-step.
void heat_program(dsm::NodeContext& ctx, GlobalAddr a_addr, GlobalAddr b_addr,
                  std::size_t n, int iterations, double* checksum_out) {
  auto a = ctx.array<double>(a_addr, n * n);
  auto b = ctx.array<double>(b_addr, n * n);

  if (ctx.node() == 0) {
    auto w = a.write_all();
    auto w2 = b.write_all();
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        const double dr = static_cast<double>(r) - static_cast<double>(n) / 2;
        const double dc = static_cast<double>(c) - static_cast<double>(n) / 2;
        const double v =
            (dr * dr + dc * dc < static_cast<double>(n * n) / 16) ? 100.0 : 0.0;
        w[r * n + c] = v;
        w2[r * n + c] = v;
      }
    }
  }
  ctx.barrier();

  const std::size_t rows = n - 2;
  const std::size_t per = rows / static_cast<std::size_t>(ctx.num_nodes());
  const std::size_t lo = 1 + per * static_cast<std::size_t>(ctx.node());
  const std::size_t hi =
      ctx.node() + 1 == ctx.num_nodes() ? n - 1 : lo + per;

  auto half_step = [&](dsm::SharedArray<double>& src,
                       dsm::SharedArray<double>& dst) {
    for (std::size_t r = lo; r < hi; ++r) {
      auto up = src.read_view((r - 1) * n, r * n);
      auto mid = src.read_view(r * n, (r + 1) * n);
      auto down = src.read_view((r + 1) * n, (r + 2) * n);
      auto out = dst.write_view(r * n, (r + 1) * n);
      for (std::size_t c = 1; c + 1 < n; ++c) {
        out[c] = mid[c] + 0.2 * (up[c] + down[c] + mid[c - 1] + mid[c + 1] -
                                 4.0 * mid[c]);
      }
    }
    ctx.compute_flops((hi - lo) * (n - 2) * 7);
    ctx.barrier();
  };

  for (int iter = 0; iter < iterations; ++iter) {
    ctx.iteration_begin();
    half_step(a, b);
    half_step(b, a);
  }

  if (ctx.node() == 0) {
    double sum = 0.0;
    for (const double v : a.read_all()) sum += v;
    *checksum_out = sum;
  }
  ctx.barrier();
}

HeatResult run_heat(protocols::ProtocolKind kind, int nodes, std::size_t n,
                    int iterations) {
  dsm::ClusterConfig config;
  config.num_nodes = nodes;
  mem::SharedHeap heap(config.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(n * n * 8, "heat.a");
  const GlobalAddr b = heap.alloc_page_aligned(n * n * 8, "heat.b");

  dsm::Cluster cluster(config, heap, protocols::make_protocol(kind));
  HeatResult result;
  cluster.run([&](dsm::NodeContext& ctx) {
    heat_program(ctx, a, b, n, iterations, &result.checksum);
  });
  result.elapsed = cluster.elapsed();
  result.data_kb = cluster.runtime().net().stats().total_bytes() / 1024;
  result.misses = cluster.runtime().counters().remote_misses;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 20;

  std::printf("heat_diffusion: %zux%zu grid, %d time-steps, 8 nodes\n\n", n,
              n, iterations);
  const HeatResult seq =
      run_heat(protocols::ProtocolKind::Null, 1, n, iterations);
  std::printf("  %-6s  %10s  %8s  %9s  %8s  %s\n", "proto", "time(ms)",
              "speedup", "data(kB)", "misses", "correct");
  std::printf("  %-6s  %10.1f  %8s  %9s  %8s  %s\n", "seq",
              sim::to_msec(seq.elapsed), "1.00", "-", "-", "ref");
  for (const auto kind :
       {protocols::ProtocolKind::LmwI, protocols::ProtocolKind::LmwU,
        protocols::ProtocolKind::BarI, protocols::ProtocolKind::BarU,
        protocols::ProtocolKind::BarS, protocols::ProtocolKind::BarM}) {
    const HeatResult r = run_heat(kind, 8, n, iterations);
    std::printf("  %-6s  %10.1f  %8.2f  %9llu  %8llu  %s\n",
                protocols::to_string(kind), sim::to_msec(r.elapsed),
                static_cast<double>(seq.elapsed) /
                    static_cast<double>(r.elapsed),
                static_cast<unsigned long long>(r.data_kb),
                static_cast<unsigned long long>(r.misses),
                r.checksum == seq.checksum ? "bit-exact" : "DIVERGED");
  }
  std::printf(
      "\nThe same kernel, unchanged, ran under six coherence protocols.\n");
  return 0;
}
