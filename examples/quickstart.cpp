// Quickstart: the smallest complete updsm program.
//
// Simulates a 4-node DSM cluster running the paper's best general-purpose
// protocol (bar-u). Node 0 produces a shared array each iteration; every
// node consumes it; the run prints the protocol's behaviour counters.
//
//   $ ./quickstart
#include <cstdio>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/mem/shared_heap.hpp"
#include "updsm/protocols/factory.hpp"

int main() {
  using namespace updsm;

  // 1. Configure the simulated cluster (defaults model the paper's SP-2).
  dsm::ClusterConfig config;
  config.num_nodes = 4;

  // 2. Lay out shared memory before the cluster starts.
  mem::SharedHeap heap(config.page_size);
  constexpr std::size_t kCount = 4096;
  const GlobalAddr data_addr =
      heap.alloc_page_aligned(kCount * sizeof(double), "data");

  // 3. Pick a coherence protocol and build the cluster.
  dsm::Cluster cluster(config, heap,
                       protocols::make_protocol(protocols::ProtocolKind::BarU));

  // 4. Run one program on every node. Shared data is only reachable
  //    through MMU-checked accessors; barriers are the only synchronization.
  cluster.run([&](dsm::NodeContext& ctx) {
    auto data = ctx.array<double>(data_addr, kCount);
    for (int iter = 1; iter <= 10; ++iter) {
      ctx.iteration_begin();  // SUIF-style time-step annotation
      if (ctx.node() == 0) {
        auto w = data.write_all();
        for (std::size_t i = 0; i < kCount; ++i) {
          w[i] = iter * 1000.0 + static_cast<double>(i);
        }
      }
      ctx.compute_flops(kCount);  // charge the virtual clock for real work
      ctx.barrier();

      double sum = 0.0;
      for (const double v : data.read_all()) sum += v;
      const double expect =
          kCount * (iter * 1000.0) + (kCount - 1.0) * kCount / 2.0;
      if (sum != expect) {
        std::printf("node %d: WRONG SUM at iter %d\n", ctx.node(), iter);
        return;
      }
      ctx.barrier();
    }
  });

  // 5. Inspect what the protocol did.
  const auto& counters = cluster.runtime().counters();
  const auto& net = cluster.runtime().net().stats();
  std::printf("quickstart OK under bar-u\n");
  std::printf("  diffs created   %llu\n",
              static_cast<unsigned long long>(counters.diffs_created));
  std::printf("  remote misses   %llu\n",
              static_cast<unsigned long long>(counters.remote_misses));
  std::printf("  updates pushed  %llu\n",
              static_cast<unsigned long long>(counters.updates_sent));
  std::printf("  messages        %llu\n",
              static_cast<unsigned long long>(net.table_messages()));
  std::printf("  data moved      %llu kB\n",
              static_cast<unsigned long long>(net.total_bytes() / 1024));
  std::printf("  simulated time  %.2f ms\n",
              sim::to_msec(cluster.elapsed()));
  return 0;
}
