// Baton/parallel equivalence under stress.
//
// The parallel gang's determinism contract says a run is *indistinguishable*
// from the baton run: not just the same answer, but the same simulated time,
// the same counters, the same wire traffic, the same per-node breakdown.
// These tests drive a seeded irregular application -- rotating element
// ownership, scattered remote reads, anti-dependences -- through every paper
// protocol in both gang modes and compare the full observable state field by
// field. A scheduling-dependent code path anywhere in the DSM stack (a
// fault handler reading live state, a non-commutative counter, an
// unmerged log) shows up here as a one-field diff naming the protocol.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "updsm/common/rng.hpp"
#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/protocols/factory.hpp"

namespace updsm {
namespace {

using dsm::Cluster;
using dsm::ClusterConfig;
using dsm::NodeContext;
using protocols::ProtocolKind;
using sim::GangMode;

constexpr int kNodes = 4;
constexpr std::size_t kElems = 768;  // 6 pages of 1024 B
constexpr int kIters = 8;

std::uint64_t mix(std::uint64_t x) {
  // splitmix64 finalizer: cheap, stateless, good dispersion.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Which node writes element i during `iter`. With `rotate`, ownership is
// re-dealt every third iteration (migration and copyset churn); without, the
// hash-scattered pattern is iteration-stable -- the shape overdrive
// (bar-s/bar-m) is specified for, the same way the paper excludes
// dynamic-sharing apps from those protocols.
int owner(std::size_t i, int iter, bool rotate) {
  const unsigned block = rotate ? static_cast<unsigned>(iter / 3) : 0u;
  return static_cast<int>(mix(i * 1315423911u + block) % kNodes);
}

/// Everything a run exposes; compared field-by-field across gang modes.
struct Observed {
  std::vector<double> result;
  sim::SimTime elapsed = 0;
  std::uint64_t barriers = 0;
  dsm::ProtocolCounters counters;
  sim::NetworkStats net;
  dsm::BreakdownReport breakdown;
};

Observed run_stress(ProtocolKind kind, GangMode mode, int workers = 0,
                    const std::string& faults = {}) {
  const bool rotate =
      kind != ProtocolKind::BarS && kind != ProtocolKind::BarM;
  ClusterConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.page_size = 1024;
  cfg.gang = mode;
  cfg.workers = workers;
  if (!faults.empty()) {
    cfg.faults = sim::FaultSpec::parse(faults);
    cfg.fault_seed = 0x5eed'f00dULL;
  }
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(kElems * 8, "x");

  Observed obs;
  Cluster cluster(cfg, heap, protocols::make_protocol(kind));
  cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<std::uint64_t>(a, kElems);
    const int me = ctx.node();
    // Per-node RNG: deterministic, diverging streams per node.
    Xoshiro256 rng(0xabcdef12u + static_cast<std::uint64_t>(me) * 977u);
    std::uint64_t acc = 0;
    for (int iter = 1; iter <= kIters; ++iter) {
      ctx.iteration_begin();
      for (std::size_t i = 0; i < kElems; ++i) {
        if (owner(i, iter, rotate) == me) {
          x.set(i, mix(i + static_cast<unsigned>(iter)));
        }
      }
      // Scattered remote reads, racing with the current epoch's writes on
      // other nodes: the §2.1 anti-dependence guarantee makes the values
      // (pre-epoch) deterministic in either gang mode.
      for (int k = 0; k < 48; ++k) {
        acc += x.get(rng() % kElems);
      }
      ctx.barrier();
    }
    // Publish the per-node accumulators through the reduction mechanism
    // (the paper's way of extracting results; a late shared-memory write
    // would be an unpredicted write under engaged overdrive). Folding to
    // 32 bits keeps the double-carried sum exact.
    const auto folded =
        static_cast<double>((acc ^ (acc >> 32)) & 0xffffffffULL);
    const double sum = ctx.reduce_sum(folded);
    const double lo = ctx.reduce_min(folded);
    const double hi = ctx.reduce_max(folded);
    if (me == 0) obs.result = {sum, lo, hi};
    ctx.barrier();
  });
  obs.elapsed = cluster.elapsed();
  obs.barriers = cluster.barriers();
  obs.counters = cluster.runtime().counters();
  obs.net = cluster.runtime().net().stats();
  obs.breakdown = cluster.breakdown();
  return obs;
}

void expect_identical(const Observed& baton, const Observed& parallel,
                      const char* label) {
  EXPECT_EQ(baton.result, parallel.result) << label;
  EXPECT_EQ(baton.elapsed, parallel.elapsed) << label;
  EXPECT_EQ(baton.barriers, parallel.barriers) << label;

  const dsm::ProtocolCounters& a = baton.counters;
  const dsm::ProtocolCounters& b = parallel.counters;
  EXPECT_EQ(a.diffs_created, b.diffs_created) << label;
  EXPECT_EQ(a.zero_diffs, b.zero_diffs) << label;
  EXPECT_EQ(a.remote_misses, b.remote_misses) << label;
  EXPECT_EQ(a.read_faults, b.read_faults) << label;
  EXPECT_EQ(a.write_faults, b.write_faults) << label;
  EXPECT_EQ(a.twins_created, b.twins_created) << label;
  EXPECT_EQ(a.updates_sent, b.updates_sent) << label;
  EXPECT_EQ(a.updates_received, b.updates_received) << label;
  EXPECT_EQ(a.updates_stored, b.updates_stored) << label;
  EXPECT_EQ(a.updates_applied, b.updates_applied) << label;
  EXPECT_EQ(a.updates_ignored, b.updates_ignored) << label;
  EXPECT_EQ(a.pages_fetched, b.pages_fetched) << label;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.retained_diff_bytes_peak, b.retained_diff_bytes_peak) << label;
  EXPECT_EQ(a.gc_rounds, b.gc_rounds) << label;
  EXPECT_EQ(a.overdrive_mispredictions, b.overdrive_mispredictions) << label;
  EXPECT_EQ(a.private_entries, b.private_entries) << label;
  EXPECT_EQ(a.private_exits, b.private_exits) << label;

  for (std::size_t k = 0; k < sim::kMsgKindCount; ++k) {
    EXPECT_EQ(baton.net.by_kind[k].count, parallel.net.by_kind[k].count)
        << label << " msg kind " << k;
    EXPECT_EQ(baton.net.by_kind[k].bytes, parallel.net.by_kind[k].bytes)
        << label << " msg kind " << k;
  }

  ASSERT_EQ(baton.breakdown.nodes.size(), parallel.breakdown.nodes.size())
      << label;
  for (std::size_t n = 0; n < baton.breakdown.nodes.size(); ++n) {
    const auto& x = baton.breakdown.nodes[n];
    const auto& y = parallel.breakdown.nodes[n];
    EXPECT_EQ(x.app, y.app) << label << " node " << n;
    EXPECT_EQ(x.dsm, y.dsm) << label << " node " << n;
    EXPECT_EQ(x.os, y.os) << label << " node " << n;
    EXPECT_EQ(x.wait, y.wait) << label << " node " << n;
    EXPECT_EQ(x.sigio, y.sigio) << label << " node " << n;
  }
}

class GangStressTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(GangStressTest, BatonAndParallelAreIndistinguishable) {
  const ProtocolKind kind = GetParam();
  const Observed baton = run_stress(kind, GangMode::Baton);
  const Observed parallel = run_stress(kind, GangMode::Parallel);
  ASSERT_EQ(baton.result.size(), 3u);
  // The equality must not hold vacuously: the workload has to exercise the
  // remote-service paths whose scheduling the two modes actually differ on.
  EXPECT_GT(parallel.counters.remote_misses, 10u);
  EXPECT_GT(parallel.counters.write_faults, 10u);
  expect_identical(baton, parallel, protocols::to_string(kind));
}

// The bounded worker pool's determinism contract is the same, one axis
// wider: for every worker count M (1, a strict subset, and M == nodes) the
// parallel run must be field-for-field indistinguishable from the
// single-worker baton -- including under a seeded adversarial fault plan,
// whose drop/dup/delay decision streams are consumed in protocol order and
// must not leak host scheduling into the simulation.
TEST_P(GangStressTest, WorkerCountsAreIndistinguishable) {
  const ProtocolKind kind = GetParam();
  for (const char* plan : {"", "drop=0.05,dup=0.03,delay=0.05,delay_us=200"}) {
    const std::string faults = plan;
    const Observed baton = run_stress(kind, GangMode::Baton, 1, faults);
    for (const int workers : {1, 2, kNodes}) {
      const Observed pool =
          run_stress(kind, GangMode::Parallel, workers, faults);
      const std::string label = std::string(protocols::to_string(kind)) +
                                " workers=" + std::to_string(workers) +
                                (faults.empty() ? "" : " +faults");
      expect_identical(baton, pool, label.c_str());
    }
    // The baton itself must also be worker-count independent.
    const Observed baton4 = run_stress(kind, GangMode::Baton, kNodes, faults);
    expect_identical(baton, baton4, "baton workers=4");
  }
}

INSTANTIATE_TEST_SUITE_P(AllPaperProtocols, GangStressTest,
                         ::testing::ValuesIn(protocols::all_paper_protocols()),
                         [](const auto& info) {
                           std::string name = protocols::to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// The race detector records from node threads mid-phase (per-node interval
// lists, analysed on the controller at the barrier); its reports must be
// schedule-independent too.
std::vector<std::string> race_descriptions(GangMode mode) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.page_size = 1024;
  cfg.gang = mode;
  cfg.race_check = dsm::RaceCheck::Warn;
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(64 * 8, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::LmwI));
  cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<std::uint64_t>(a, 64);
    if (ctx.node() == 0) x.set(7, 1);
    ctx.barrier();
    // Anti-dependence: node 0 rewrites while node 1 reads, same epoch.
    if (ctx.node() == 0) {
      x.set(7, 2);
    } else {
      (void)x.get(7);
    }
    ctx.barrier();
  });
  std::vector<std::string> out;
  for (const auto& report : cluster.race_reports()) {
    out.push_back(report.describe());
  }
  return out;
}

TEST(GangStressTest_RaceDetector, ReportsIdenticalAcrossModes) {
  const auto baton = race_descriptions(GangMode::Baton);
  const auto parallel = race_descriptions(GangMode::Parallel);
  ASSERT_FALSE(parallel.empty()) << "the planted race must be detected";
  EXPECT_EQ(baton, parallel);
}

}  // namespace
}  // namespace updsm
