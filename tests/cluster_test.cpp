// Tests for the Cluster/Runtime layer: MMU-checked access, fault counting,
// reductions, measurement windows and API misuse detection.
#include <gtest/gtest.h>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/dsm/null_protocol.hpp"
#include "updsm/protocols/factory.hpp"

namespace updsm {
namespace {

using dsm::Cluster;
using dsm::ClusterConfig;
using dsm::NodeContext;
using protocols::ProtocolKind;

ClusterConfig small_config(int nodes = 4) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.page_size = 1024;
  return cfg;
}

TEST(ClusterTest, OutOfBoundsAccessRejected) {
  const ClusterConfig cfg = small_config(1);
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(100 * 8, "a");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::Null));
  EXPECT_THROW(cluster.run([&](NodeContext& ctx) {
                 auto arr = ctx.array<double>(a, 100);
                 (void)arr.get(100);  // one past the end
               }),
               UsageError);
}

TEST(ClusterTest, MisalignedArrayRejected) {
  const ClusterConfig cfg = small_config(1);
  mem::SharedHeap heap(cfg.page_size);
  heap.alloc_page_aligned(64, "pad");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::Null));
  EXPECT_THROW(cluster.run([&](NodeContext& ctx) {
                 (void)ctx.array<double>(3, 4);  // addr 3 not 8-aligned
               }),
               UsageError);
}

TEST(ClusterTest, FaultsAreCounted) {
  const ClusterConfig cfg = small_config(2);
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(512 * 8, "a");  // 4 pages
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::LmwI));
  cluster.run([&](NodeContext& ctx) {
    auto arr = ctx.array<double>(a, 512);
    if (ctx.node() == 0) {
      auto w = arr.write_all();  // 4 write faults
      for (std::size_t i = 0; i < w.size(); ++i) w[i] = 1.0;
    }
    ctx.barrier();
    if (ctx.node() == 1) (void)arr.read_all();  // 4 read faults
    ctx.barrier();
  });
  EXPECT_EQ(cluster.runtime().counters().write_faults, 4u);
  EXPECT_EQ(cluster.runtime().counters().read_faults, 4u);
  // 4 write-fault twins, plus up to 4 more when lmw's single-writer exit
  // re-twins the pages while serving node 1's reads.
  EXPECT_GE(cluster.runtime().counters().twins_created, 4u);
  EXPECT_LE(cluster.runtime().counters().twins_created, 8u);
}

TEST(ClusterTest, RunTwiceRejected) {
  const ClusterConfig cfg = small_config(1);
  mem::SharedHeap heap(cfg.page_size);
  heap.alloc_page_aligned(64, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::Null));
  cluster.run([](NodeContext&) {});
  EXPECT_THROW(cluster.run([](NodeContext&) {}), UsageError);
}

TEST(ClusterTest, NullProtocolRejectsMultipleNodes) {
  const ClusterConfig cfg = small_config(2);
  mem::SharedHeap heap(cfg.page_size);
  heap.alloc_page_aligned(64, "x");
  EXPECT_THROW(
      Cluster(cfg, heap, protocols::make_protocol(ProtocolKind::Null)),
      UsageError);
}

TEST(ClusterTest, HeapPageSizeMustMatch) {
  const ClusterConfig cfg = small_config(1);
  mem::SharedHeap heap(4096);  // != cfg.page_size (1024)
  heap.alloc(64, "x");
  EXPECT_THROW(
      Cluster(cfg, heap, protocols::make_protocol(ProtocolKind::Null)),
      UsageError);
}

TEST(ClusterTest, PartialReductionRejected) {
  const ClusterConfig cfg = small_config(2);
  mem::SharedHeap heap(cfg.page_size);
  heap.alloc_page_aligned(64, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::BarU));
  EXPECT_THROW(cluster.run([&](NodeContext& ctx) {
                 if (ctx.node() == 0) {
                   (void)ctx.reduce_max(1.0);  // node 1 just barriers
                 } else {
                   ctx.barrier();
                 }
               }),
               UsageError);
}

TEST(ClusterTest, MixedReductionOpsRejected) {
  const ClusterConfig cfg = small_config(2);
  mem::SharedHeap heap(cfg.page_size);
  heap.alloc_page_aligned(64, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::BarU));
  EXPECT_THROW(cluster.run([&](NodeContext& ctx) {
                 if (ctx.node() == 0) {
                   (void)ctx.reduce_max(1.0);
                 } else {
                   (void)ctx.reduce_sum(1.0);
                 }
               }),
               UsageError);
}

TEST(ClusterTest, ReductionsMatchSequentialSemantics) {
  const ClusterConfig cfg = small_config(8);
  mem::SharedHeap heap(cfg.page_size);
  heap.alloc_page_aligned(64, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::LmwI));
  cluster.run([&](NodeContext& ctx) {
    const double v = ctx.node() == 5 ? -3.5 : static_cast<double>(ctx.node());
    EXPECT_DOUBLE_EQ(ctx.reduce_min(v), -3.5);
    EXPECT_DOUBLE_EQ(ctx.reduce_max(v), 7.0);
    EXPECT_DOUBLE_EQ(ctx.reduce_sum(v), 0 + 1 + 2 + 3 + 4 - 3.5 + 6 + 7);
  });
}

TEST(ClusterTest, MeasurementWindowIsCollective) {
  const ClusterConfig cfg = small_config(2);
  mem::SharedHeap heap(cfg.page_size);
  heap.alloc_page_aligned(64, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::BarU));
  EXPECT_THROW(cluster.run([&](NodeContext& ctx) {
                 if (ctx.node() == 0) ctx.begin_measurement();
                 ctx.barrier();
               }),
               UsageError);
}

TEST(ClusterTest, MeasurementWindowExcludesWarmupAndTail) {
  const ClusterConfig cfg = small_config(2);
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(256 * 8, "a");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::BarU));
  cluster.run([&](NodeContext& ctx) {
    auto arr = ctx.array<double>(a, 256);
    // Warm-up work, excluded from the window.
    ctx.compute(sim::msec(50));
    ctx.begin_measurement();
    ctx.barrier();
    ctx.compute(sim::msec(10));
    (void)arr;
    ctx.end_measurement();
    ctx.barrier();
    // Tail work, also excluded.
    ctx.compute(sim::msec(500));
  });
  const double ms = sim::to_msec(cluster.elapsed());
  EXPECT_GE(ms, 10.0);
  EXPECT_LT(ms, 15.0) << "window should cover only the 10ms of work plus "
                         "barrier costs";
  const auto sum = cluster.breakdown().summed();
  EXPECT_NEAR(sim::to_msec(sum.app), 20.0, 1.0);  // 10ms on each of 2 nodes
}

TEST(ClusterTest, VirtualTimeIsDeterministic) {
  auto run_once = [] {
    const ClusterConfig cfg = small_config(4);
    mem::SharedHeap heap(cfg.page_size);
    const GlobalAddr a = heap.alloc_page_aligned(1024 * 8, "a");
    Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::BarU));
    cluster.run([&](NodeContext& ctx) {
      auto arr = ctx.array<double>(a, 1024);
      const auto me = static_cast<std::size_t>(ctx.node());
      for (int iter = 0; iter < 5; ++iter) {
        ctx.iteration_begin();
        auto w = arr.write_view(me * 256, me * 256 + 256);
        for (std::size_t i = 0; i < 256; ++i) w[i] = iter + i;
        ctx.compute_flops(256);
        ctx.barrier();
        (void)arr.read_view(((me + 1) % 4) * 256, ((me + 1) % 4) * 256 + 256);
        ctx.barrier();
      }
    });
    return cluster.elapsed();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace updsm
