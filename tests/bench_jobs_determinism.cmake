# Acceptance gate for the parallel experiment engine: every grid bench must
# produce byte-identical stdout at --jobs=1 (the serial baseline) and
# --jobs=4 (oversubscribed worker pool). Run via ctest:
#   cmake -DBENCH_DIR=<build>/bench -P bench_jobs_determinism.cmake
if(NOT DEFINED BENCH_DIR)
  message(FATAL_ERROR "pass -DBENCH_DIR=<dir with bench binaries>")
endif()

set(flags --quick --scale=0.15 --iters=2)
foreach(bench sweep_matrix fig2_speedups fig3_breakdown claims_summary
        table1_base_stats)
  foreach(jobs 1 4)
    execute_process(
      COMMAND ${BENCH_DIR}/${bench} ${flags} --jobs=${jobs}
      OUTPUT_VARIABLE out_${jobs}
      ERROR_VARIABLE err_${jobs}
      RESULT_VARIABLE rc_${jobs})
    if(NOT rc_${jobs} EQUAL 0)
      message(FATAL_ERROR
        "${bench} --jobs=${jobs} failed (${rc_${jobs}}): ${err_${jobs}}")
    endif()
  endforeach()
  if(NOT out_1 STREQUAL out_4)
    message(FATAL_ERROR
      "${bench}: stdout differs between --jobs=1 and --jobs=4")
  endif()
  message(STATUS "${bench}: --jobs=1 and --jobs=4 byte-identical")
endforeach()
