# Acceptance gate for the fault-injection bench: the injected fault
# schedule is a pure function of (--fault-seed, workload), so
# ablation_faults must print byte-identical output whatever the worker
# count, and repeated runs with the same seed must agree exactly (while a
# different seed must not, proving the plans actually bite). Run via ctest:
#   cmake -DBENCH_DIR=<build>/bench -P bench_faults_determinism.cmake
if(NOT DEFINED BENCH_DIR)
  message(FATAL_ERROR "pass -DBENCH_DIR=<dir with bench binaries>")
endif()

set(flags --quick --scale=0.12 --iters=2 --nodes=4)

# Same seed, --jobs=1 vs --jobs=4, plus a repeat of --jobs=1: all identical.
foreach(run jobs1 jobs4 jobs1_again)
  if(run STREQUAL jobs4)
    set(jobs 4)
  else()
    set(jobs 1)
  endif()
  execute_process(
    COMMAND ${BENCH_DIR}/ablation_faults ${flags} --jobs=${jobs}
            --fault-seed=42
    OUTPUT_VARIABLE out_${run}
    ERROR_VARIABLE err_${run}
    RESULT_VARIABLE rc_${run})
  if(NOT rc_${run} EQUAL 0)
    message(FATAL_ERROR
      "ablation_faults (${run}) failed (${rc_${run}}): ${err_${run}}")
  endif()
endforeach()
if(NOT out_jobs1 STREQUAL out_jobs4)
  message(FATAL_ERROR
    "ablation_faults: stdout differs between --jobs=1 and --jobs=4")
endif()
if(NOT out_jobs1 STREQUAL out_jobs1_again)
  message(FATAL_ERROR
    "ablation_faults: repeated runs with --fault-seed=42 differ")
endif()
message(STATUS "ablation_faults: byte-identical across --jobs and reruns")

# A different seed must change the injected schedule somewhere.
execute_process(
  COMMAND ${BENCH_DIR}/ablation_faults ${flags} --jobs=1 --fault-seed=43
  OUTPUT_VARIABLE out_seed43
  ERROR_VARIABLE err_seed43
  RESULT_VARIABLE rc_seed43)
if(NOT rc_seed43 EQUAL 0)
  message(FATAL_ERROR
    "ablation_faults --fault-seed=43 failed (${rc_seed43}): ${err_seed43}")
endif()
if(out_jobs1 STREQUAL out_seed43)
  message(FATAL_ERROR
    "ablation_faults: --fault-seed=42 and 43 printed identical output; "
    "the fault plans are not reaching the runs")
endif()
message(STATUS "ablation_faults: --fault-seed changes the schedule")
