# Acceptance gate for the aggregation ablation: virtual-time results are a
# pure function of the workload and config, so ablation_aggregation (and
# the BENCH_aggregation.json it writes) must be byte-identical whatever
# the worker count and across reruns -- and --no-aggregate must actually
# change the traffic it reports (proving the toggle reaches the runs).
# Run via ctest:
#   cmake -DBENCH_DIR=<build>/bench -P bench_aggregation_determinism.cmake
if(NOT DEFINED BENCH_DIR)
  message(FATAL_ERROR "pass -DBENCH_DIR=<dir with bench binaries>")
endif()

# fft only coalesces once rows span several pages; 0.5 is the smallest
# scale where the sweep exercises real multi-record batches (see the bench
# preamble), and 4 nodes keeps the 144-run sweep quick.
set(flags --scale=0.5 --iters=2 --warmup=2 --nodes=4)

# --jobs=1 vs --jobs=4, plus a repeat of --jobs=1: all byte-identical, on
# stdout and in the emitted JSON.
foreach(run jobs1 jobs4 jobs1_again)
  if(run STREQUAL jobs4)
    set(jobs 4)
  else()
    set(jobs 1)
  endif()
  execute_process(
    COMMAND ${BENCH_DIR}/ablation_aggregation ${flags} --jobs=${jobs}
    WORKING_DIRECTORY ${BENCH_DIR}
    OUTPUT_VARIABLE out_${run}
    ERROR_VARIABLE err_${run}
    RESULT_VARIABLE rc_${run})
  if(NOT rc_${run} EQUAL 0)
    message(FATAL_ERROR
      "ablation_aggregation (${run}) failed (${rc_${run}}): ${err_${run}}")
  endif()
  file(READ ${BENCH_DIR}/BENCH_aggregation.json json_${run})
endforeach()
if(NOT out_jobs1 STREQUAL out_jobs4)
  message(FATAL_ERROR
    "ablation_aggregation: stdout differs between --jobs=1 and --jobs=4")
endif()
if(NOT out_jobs1 STREQUAL out_jobs1_again)
  message(FATAL_ERROR "ablation_aggregation: repeated runs differ")
endif()
if(NOT json_jobs1 STREQUAL json_jobs4)
  message(FATAL_ERROR
    "BENCH_aggregation.json differs between --jobs=1 and --jobs=4")
endif()
if(NOT json_jobs1 STREQUAL json_jobs1_again)
  message(FATAL_ERROR "BENCH_aggregation.json differs across reruns")
endif()
message(STATUS
  "ablation_aggregation: byte-identical across --jobs and reruns")

# The sweep must contain real coalescing somewhere (a message_reduction
# above 1x), otherwise the bench is measuring nothing.
string(FIND "${json_jobs1}" "\"message_reduction\": 2" has_reduction)
if(has_reduction EQUAL -1)
  string(FIND "${json_jobs1}" "\"message_reduction\": 4" has_reduction)
endif()
if(has_reduction EQUAL -1)
  message(FATAL_ERROR
    "BENCH_aggregation.json shows no multi-record coalescing at all")
endif()
message(STATUS "ablation_aggregation: sweep exercises real coalescing")

# Sanity-check the toggle on the CLI driver: aggregated and per-page runs
# of a coalescing workload must agree on correctness but disagree on the
# message column.
execute_process(
  COMMAND ${BENCH_DIR}/../tools/updsm_run --app=fft --protocol=bar-u
          --scale=0.5 --iters=2 --csv
  OUTPUT_VARIABLE out_agg RESULT_VARIABLE rc_agg)
execute_process(
  COMMAND ${BENCH_DIR}/../tools/updsm_run --app=fft --protocol=bar-u
          --scale=0.5 --iters=2 --csv --no-aggregate
  OUTPUT_VARIABLE out_noagg RESULT_VARIABLE rc_noagg)
if(NOT rc_agg EQUAL 0 OR NOT rc_noagg EQUAL 0)
  message(FATAL_ERROR "updsm_run toggle smoke failed")
endif()
if(out_agg STREQUAL out_noagg)
  message(FATAL_ERROR
    "updsm_run: --no-aggregate output is identical to the aggregated run; "
    "the toggle is not reaching the transport")
endif()
foreach(out IN ITEMS "${out_agg}" "${out_noagg}")
  if(NOT out MATCHES ",1\n")
    message(FATAL_ERROR "updsm_run toggle smoke: a run reported incorrect")
  endif()
endforeach()
message(STATUS "updsm_run: --no-aggregate changes traffic, not results")
