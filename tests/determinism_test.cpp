// Bit-determinism and regression pinning.
//
// Every run of the simulator is a pure function of its configuration: the
// same seed must produce the same virtual times, counters and traffic down
// to the last unit. The golden test pins one scenario's exact outcome so
// that unintended behavioural drift (a miscounted message, a double-charged
// trap) is caught immediately; intentional cost-model changes update the
// constants knowingly.
#include <gtest/gtest.h>

#include "updsm/harness/experiment.hpp"

namespace updsm {
namespace {

using protocols::ProtocolKind;

harness::RunResult run_fixture(ProtocolKind kind, std::uint64_t seed) {
  apps::AppParams params;
  params.scale = 0.25;
  params.warmup_iterations = 5;
  params.measured_iterations = 4;
  params.seed = seed;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.seed = seed;
  return harness::run_app("expl", kind, cfg, params);
}

TEST(DeterminismTest, IdenticalRunsAreBitIdentical) {
  for (const auto kind :
       {ProtocolKind::LmwU, ProtocolKind::BarU, ProtocolKind::BarM}) {
    const auto a = run_fixture(kind, 42);
    const auto b = run_fixture(kind, 42);
    EXPECT_EQ(a.elapsed, b.elapsed) << protocols::to_string(kind);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.counters.diffs_created, b.counters.diffs_created);
    EXPECT_EQ(a.counters.remote_misses, b.counters.remote_misses);
    EXPECT_EQ(a.net.total_bytes(), b.net.total_bytes());
    EXPECT_EQ(a.net.table_messages(), b.net.table_messages());
  }
}

TEST(DeterminismTest, SeedChangesDataNotStructure) {
  const auto a = run_fixture(ProtocolKind::BarU, 1);
  const auto b = run_fixture(ProtocolKind::BarU, 2);
  // expl's initial field does not depend on the seed, but the simulator's
  // internals (drop RNG with rate 0) must not either: structure identical.
  EXPECT_EQ(a.counters.diffs_created, b.counters.diffs_created);
  EXPECT_EQ(a.net.table_messages(), b.net.table_messages());
}

TEST(DeterminismTest, DropRateRunsAreSeedDeterministic) {
  apps::AppParams params;
  params.scale = 0.2;
  params.warmup_iterations = 3;
  params.measured_iterations = 3;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.costs.net.flush_drop_rate = 0.3;
  cfg.seed = 7;
  const auto a = harness::run_app("sor", ProtocolKind::BarU, cfg, params);
  const auto b = harness::run_app("sor", ProtocolKind::BarU, cfg, params);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.counters.updates_ignored, b.counters.updates_ignored);
  EXPECT_EQ(a.counters.remote_misses, b.counters.remote_misses);
}

// A coarse regression pin: exact counters would churn with every cost
// recalibration, so pin the *count* invariants (cost-independent) exactly
// and the time coarsely.
TEST(DeterminismTest, ExplFixtureStructuralPin) {
  const auto run = run_fixture(ProtocolKind::BarU, 42);
  // 4 measured iterations, 2 epochs each; expl at scale 0.25 has
  // 122 interior rows over 8 nodes with 1 KB rows (8 rows/page).
  EXPECT_EQ(run.barriers, 21u);  // init + 9*2 iters + end + checksum
  EXPECT_EQ(run.counters.remote_misses, 0u)
      << "updates must eliminate steady-state misses for expl";
  EXPECT_GT(run.counters.diffs_created, 0u);
  EXPECT_EQ(run.counters.migrations, 0u)
      << "expl writes where the initial homes already are... or migrates "
         "deterministically";
  EXPECT_EQ(run.checksum, run_fixture(ProtocolKind::LmwI, 42).checksum);
}

}  // namespace
}  // namespace updsm
