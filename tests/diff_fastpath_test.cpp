// Reference-equivalence coverage for the Diff::create fast path.
//
// The optimized create() prescans 64-byte blocks (memcmp) before the
// per-word run extension; this suite pins it against a straight
// word-at-a-time reference implementation (the pre-optimization algorithm)
// over randomized twin/current pairs and the edge cases the block skip
// could plausibly get wrong: identical pages, fully-dirty pages, runs
// crossing block boundaries, dirt confined to the sub-block tail, and a
// single trailing dirty word.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "updsm/common/rng.hpp"
#include "updsm/dsm/diff_store.hpp"
#include "updsm/dsm/twin_store.hpp"
#include "updsm/mem/diff.hpp"

namespace updsm {
namespace {

using mem::Diff;
using mem::DiffRun;

/// The pre-optimization algorithm, kept verbatim as the reference: skip
/// identical 64-bit words, extend runs over consecutive differing words.
struct ReferenceDiff {
  std::vector<DiffRun> runs;
  std::vector<std::byte> data;
};

ReferenceDiff reference_create(std::span<const std::byte> twin,
                               std::span<const std::byte> cur) {
  using Word = std::uint64_t;
  ReferenceDiff diff;
  const std::size_t words = twin.size() / sizeof(Word);
  std::size_t w = 0;
  while (w < words) {
    Word a;
    Word b;
    std::memcpy(&a, twin.data() + w * sizeof(Word), sizeof(Word));
    std::memcpy(&b, cur.data() + w * sizeof(Word), sizeof(Word));
    if (a == b) {
      ++w;
      continue;
    }
    const std::size_t start = w;
    while (w < words) {
      std::memcpy(&a, twin.data() + w * sizeof(Word), sizeof(Word));
      std::memcpy(&b, cur.data() + w * sizeof(Word), sizeof(Word));
      if (a == b) break;
      ++w;
    }
    DiffRun run;
    run.offset = static_cast<std::uint32_t>(start * sizeof(Word));
    run.length = static_cast<std::uint32_t>((w - start) * sizeof(Word));
    const std::size_t old = diff.data.size();
    diff.data.resize(old + run.length);
    std::memcpy(diff.data.data() + old, cur.data() + run.offset, run.length);
    diff.runs.push_back(run);
  }
  return diff;
}

void expect_equivalent(std::span<const std::byte> twin,
                       std::span<const std::byte> cur,
                       const char* label) {
  const ReferenceDiff want = reference_create(twin, cur);
  const Diff got = Diff::create(twin, cur);
  ASSERT_EQ(got.run_count(), want.runs.size()) << label;
  for (std::size_t i = 0; i < want.runs.size(); ++i) {
    EXPECT_EQ(got.runs()[i].offset, want.runs[i].offset) << label << " #" << i;
    EXPECT_EQ(got.runs()[i].length, want.runs[i].length) << label << " #" << i;
  }
  ASSERT_EQ(got.payload_bytes(), want.data.size()) << label;
  // Applying the diff onto the twin must reproduce `cur` exactly.
  std::vector<std::byte> rebuilt(twin.begin(), twin.end());
  got.apply(rebuilt);
  EXPECT_EQ(std::memcmp(rebuilt.data(), cur.data(), cur.size()), 0) << label;
}

std::vector<std::byte> filled_page(std::size_t size, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::byte> page(size);
  for (auto& b : page) b = static_cast<std::byte>(rng.bounded(256));
  return page;
}

TEST(DiffFastPathTest, IdenticalPage) {
  const auto twin = filled_page(8192, 1);
  const auto cur = twin;
  expect_equivalent(twin, cur, "identical");
  EXPECT_TRUE(Diff::create(twin, cur).empty());
}

TEST(DiffFastPathTest, FullyDirtyPage) {
  const auto twin = filled_page(8192, 1);
  std::vector<std::byte> cur(twin.size());
  for (std::size_t i = 0; i < cur.size(); ++i) {
    cur[i] = static_cast<std::byte>(~std::to_integer<unsigned>(twin[i]));
  }
  expect_equivalent(twin, cur, "fully dirty");
  EXPECT_EQ(Diff::create(twin, cur).run_count(), 1u);
}

TEST(DiffFastPathTest, SingleTrailingWordDirty) {
  const auto twin = filled_page(4096, 2);
  auto cur = twin;
  cur[4095] = static_cast<std::byte>(~std::to_integer<unsigned>(cur[4095]));
  expect_equivalent(twin, cur, "trailing word");
  const Diff d = Diff::create(twin, cur);
  ASSERT_EQ(d.run_count(), 1u);
  EXPECT_EQ(d.runs()[0].offset, 4088u);
  EXPECT_EQ(d.runs()[0].length, 8u);
}

TEST(DiffFastPathTest, SingleLeadingWordDirty) {
  const auto twin = filled_page(4096, 3);
  auto cur = twin;
  cur[0] = static_cast<std::byte>(~std::to_integer<unsigned>(cur[0]));
  expect_equivalent(twin, cur, "leading word");
}

TEST(DiffFastPathTest, RunCrossingBlockBoundary) {
  // Dirty words 7 and 8 of the page (bytes 56..72): one run straddling the
  // 64-byte prescan boundary, which must not be split in two.
  const auto twin = filled_page(4096, 4);
  auto cur = twin;
  for (std::size_t i = 56; i < 72; ++i) cur[i] ^= std::byte{0xff};
  expect_equivalent(twin, cur, "block straddle");
  EXPECT_EQ(Diff::create(twin, cur).run_count(), 1u);
}

TEST(DiffFastPathTest, AlternatingWordsDefeatBlockSkip) {
  // Every other word dirty: every block is dirty, maximal run count.
  const auto twin = filled_page(2048, 5);
  auto cur = twin;
  for (std::size_t w = 0; w < cur.size() / 8; w += 2) {
    cur[w * 8] ^= std::byte{0x01};
  }
  expect_equivalent(twin, cur, "alternating");
  EXPECT_EQ(Diff::create(twin, cur).run_count(), cur.size() / 16);
}

TEST(DiffFastPathTest, SubBlockPageSizes) {
  // Sizes that are multiples of the word but not of the prescan block:
  // everything is "tail".
  for (const std::size_t size : {8u, 24u, 56u, 120u, 200u}) {
    const auto twin = filled_page(size, size);
    auto cur = twin;
    cur[size / 2] ^= std::byte{0x80};
    expect_equivalent(twin, cur, "sub-block size");
  }
}

TEST(DiffFastPathTest, RandomizedPairsMatchReference) {
  Xoshiro256 rng(0x1998'0330);
  for (int trial = 0; trial < 300; ++trial) {
    // Word-multiple sizes, deliberately including non-block multiples.
    const std::size_t size = 8 * (1 + rng.bounded(600));
    const auto twin = filled_page(size, rng());
    auto cur = twin;
    // Dirty a random number of random islands (possibly zero).
    const std::uint64_t islands = rng.bounded(8);
    for (std::uint64_t k = 0; k < islands; ++k) {
      const std::size_t start = rng.bounded(size);
      const std::size_t len = 1 + rng.bounded(size - start);
      for (std::size_t i = start; i < start + len; ++i) {
        cur[i] = static_cast<std::byte>(rng.bounded(256));
      }
    }
    expect_equivalent(twin, cur, "randomized");
  }
}

TEST(DiffFastPathTest, CreateIntoReusesCapacityAndMatchesCreate) {
  Xoshiro256 rng(7);
  Diff scratch;
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t size = 64 * (1 + rng.bounded(64));
    const auto twin = filled_page(size, rng());
    auto cur = twin;
    const std::size_t start = rng.bounded(size);
    cur[start] ^= std::byte{0x42};
    Diff::create_into(scratch, twin, cur);
    const Diff fresh = Diff::create(twin, cur);
    ASSERT_EQ(scratch.run_count(), fresh.run_count());
    EXPECT_EQ(scratch.payload_bytes(), fresh.payload_bytes());
    std::vector<std::byte> rebuilt(twin.begin(), twin.end());
    scratch.apply(rebuilt);
    EXPECT_EQ(std::memcmp(rebuilt.data(), cur.data(), cur.size()), 0);
  }
}

TEST(DiffFastPathTest, TwinStoreRecyclesDiscardedBuffers) {
  dsm::TwinStore twins;
  const auto page = filled_page(4096, 9);
  twins.create(PageId{1}, page);
  EXPECT_EQ(twins.pooled_buffers(), 0u);
  twins.discard(PageId{1});
  EXPECT_EQ(twins.pooled_buffers(), 1u);
  // Re-creating consumes the pooled buffer and snapshots correctly.
  const auto page2 = filled_page(4096, 10);
  twins.create(PageId{2}, page2);
  EXPECT_EQ(twins.pooled_buffers(), 0u);
  EXPECT_EQ(std::memcmp(twins.get(PageId{2}).data(), page2.data(),
                        page2.size()),
            0);
}

TEST(DiffFastPathTest, DiffStoreScratchRoundTrip) {
  dsm::DiffStore store;
  const auto twin = filled_page(1024, 11);
  auto cur = twin;
  cur[100] ^= std::byte{0xff};
  Diff d = store.take_scratch();
  Diff::create_into(d, twin, cur);
  const dsm::DiffStore::Key key{PageId{0}, EpochId{1}, NodeId{0}};
  store.put(key, std::move(d));
  ASSERT_NE(store.find(key), nullptr);
  store.erase(key);  // recycles into the pool
  Diff reused = store.take_scratch();
  Diff::create_into(reused, twin, cur);
  ASSERT_EQ(reused.run_count(), 1u);
  std::vector<std::byte> rebuilt(twin.begin(), twin.end());
  reused.apply(rebuilt);
  EXPECT_EQ(std::memcmp(rebuilt.data(), cur.data(), cur.size()), 0);
}

}  // namespace
}  // namespace updsm
