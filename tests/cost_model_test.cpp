// Pins the cost-profile layer: the sp2 composites stay calibrated against
// the paper's §3.2 micro-benchmarks, the rdma profile actually models a
// kernel-bypass interconnect, and the --net-profile / --cost plumbing
// (from_profile, apply_override) round-trips with friendly errors.
#include <gtest/gtest.h>

#include <cmath>

#include "updsm/common/error.hpp"
#include "updsm/dsm/config.hpp"
#include "updsm/protocols/adaptive.hpp"
#include "updsm/sim/cost_model.hpp"

namespace updsm::sim {
namespace {

// --- sp2 calibration (paper Table / §3.2) ----------------------------------

TEST(CostModelTest, Sp2RpcRoundtripMatchesPaper) {
  const CostModel m = CostModel::sp2_defaults();
  // "simple RPC round trip: 160 us", +-3% calibration tolerance.
  const double us = to_usec(m.rpc_roundtrip());
  EXPECT_GE(us, 160.0 * 0.97) << us;
  EXPECT_LE(us, 160.0 * 1.03) << us;
}

TEST(CostModelTest, Sp2RemotePageFaultMatchesPaper) {
  const CostModel m = CostModel::sp2_defaults();
  // "remote page fault (8 KB page): 939 us", +-3%.
  const double us = to_usec(m.remote_page_fault(8192));
  EXPECT_GE(us, 939.0 * 0.97) << us;
  EXPECT_LE(us, 939.0 * 1.03) << us;
}

TEST(CostModelTest, Sp2PrimitiveCalibration) {
  const CostModel m = CostModel::sp2_defaults();
  EXPECT_EQ(m.os.segv, usec(128));
  EXPECT_EQ(m.os.mprotect_base, usec(12));
  EXPECT_EQ(m.net.per_message, usec(45));
  EXPECT_DOUBLE_EQ(m.net.per_byte_ns, 25.0);  // 40 MB/s
}

// --- rdma sanity ------------------------------------------------------------

TEST(CostModelTest, RdmaIsAKernelBypassInterconnect) {
  const CostModel sp2 = CostModel::sp2_defaults();
  const CostModel rdma = CostModel::rdma_defaults();
  // One-sided ops land in the low microseconds, not the hundreds.
  EXPECT_LT(to_usec(rdma.rpc_roundtrip()), 20.0);
  EXPECT_LT(rdma.remote_page_fault(8192), sp2.remote_page_fault(8192));
  // Per-message cost collapses by orders of magnitude; bandwidth is
  // GB/s-class (per-byte cost far below the 25 ns/B link).
  EXPECT_LT(to_usec(rdma.net.per_message), 2.0);
  EXPECT_LT(rdma.net.per_byte_ns, 1.0);
  EXPECT_LT(rdma.net.send_trap, sp2.net.send_trap);
  // The profile swaps the interconnect only: OS and DSM stay SP-2.
  EXPECT_EQ(rdma.os.segv, sp2.os.segv);
  EXPECT_EQ(rdma.os.mprotect_base, sp2.os.mprotect_base);
  EXPECT_DOUBLE_EQ(rdma.dsm.diff_create_per_byte_ns,
                   sp2.dsm.diff_create_per_byte_ns);
}

// --- profile lookup ---------------------------------------------------------

TEST(CostModelTest, FromProfileRoundTrips) {
  EXPECT_TRUE(CostModel::known_profile("sp2"));
  EXPECT_TRUE(CostModel::known_profile("rdma"));
  EXPECT_FALSE(CostModel::known_profile("myrinet"));
  EXPECT_EQ(CostModel::from_profile("sp2").net.per_message,
            CostModel::sp2_defaults().net.per_message);
  EXPECT_EQ(CostModel::from_profile("rdma").net.per_message,
            CostModel::rdma_defaults().net.per_message);
  try {
    (void)CostModel::from_profile("myrinet");
    FAIL() << "unknown profile accepted";
  } catch (const UsageError& e) {
    // The error names the valid profiles, not just "bad input".
    EXPECT_NE(std::string(e.what()).find("sp2"), std::string::npos)
        << e.what();
  }
}

// --- overrides --------------------------------------------------------------

TEST(CostModelTest, ApplyOverrideSetsEachKindOfKey) {
  CostModel m = CostModel::sp2_defaults();
  m.apply_override("net.per_message_us=5");
  EXPECT_EQ(m.net.per_message, usec(5));
  m.apply_override("net.per_byte_ns=0.5");
  EXPECT_DOUBLE_EQ(m.net.per_byte_ns, 0.5);
  m.apply_override("os.segv_us=1");
  EXPECT_EQ(m.os.segv, usec(1));
  m.apply_override("dsm.policy_eval_per_page_ns=50");
  EXPECT_DOUBLE_EQ(m.dsm.policy_eval_per_page_ns, 50.0);
}

TEST(CostModelTest, ApplyOverridesComposeInOrder) {
  CostModel m = CostModel::rdma_defaults();
  apply_cost_overrides(m, {"os.mprotect_us=3", "os.mprotect_us=7"});
  EXPECT_EQ(m.os.mprotect_base, usec(7));
}

TEST(CostModelTest, UnknownKeyListsTheValidOnes) {
  CostModel m = CostModel::sp2_defaults();
  try {
    m.apply_override("net.bogus_us=1");
    FAIL() << "unknown key accepted";
  } catch (const UsageError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("net.per_message_us"), std::string::npos) << msg;
  }
  EXPECT_THROW(m.apply_override("no-equals-sign"), UsageError);
  EXPECT_THROW(m.apply_override("net.per_message_us=abc"), UsageError);
  EXPECT_THROW(m.apply_override("=5"), UsageError);
}

TEST(CostModelTest, CostKeyListCoversEveryOverride) {
  CostModel m = CostModel::sp2_defaults();
  for (const std::string& key : CostModel::cost_key_list()) {
    EXPECT_NO_THROW(m.apply_override(key + "=1")) << key;
  }
}

// --- config validation ------------------------------------------------------

TEST(CostModelTest, ClusterConfigRejectsUnknownProfile) {
  dsm::ClusterConfig cfg;
  cfg.net_profile = "token-ring";
  EXPECT_THROW(dsm::validate_cluster_config(cfg), UsageError);
}

TEST(CostModelTest, ClusterConfigRejectsBadAdaptiveWindow) {
  dsm::ClusterConfig cfg;
  cfg.adaptive_window = 1;
  EXPECT_THROW(dsm::validate_cluster_config(cfg), UsageError);
  cfg.adaptive_window = 65;
  EXPECT_THROW(dsm::validate_cluster_config(cfg), UsageError);
  cfg.adaptive_window = 4;
  EXPECT_NO_THROW(dsm::validate_cluster_config(cfg));
}

// --- the adaptive policy under both profiles --------------------------------

using protocols::AdaptivePolicy;
using protocols::PageMode;
using protocols::PageSignal;

PageSignal stencil_edge_page() {
  PageSignal s;
  s.write_rate = 1.0;
  s.writers_avg = 2.0;
  s.diff_bytes_avg = 4096.0;
  s.consumers_avg = 2.0;
  s.fetches_avg = 0.0;
  s.stable_writers = true;
  s.window_full = true;
  return s;
}

TEST(AdaptivePolicyTest, StableHotPageGoesOverdriveOnSp2) {
  const CostModel m = CostModel::sp2_defaults();
  AdaptivePolicy policy;
  policy.costs = &m;
  // A stable co-written stencil page: dropping the 128 us segv (plus the
  // protection flips) per writer per epoch beats everything else on sp2.
  EXPECT_EQ(policy.evaluate(PageMode::Update, stencil_edge_page()),
            PageMode::Overdrive);
}

TEST(AdaptivePolicyTest, UnstableWritersNeverEnterOverdrive) {
  const CostModel m = CostModel::sp2_defaults();
  AdaptivePolicy policy;
  policy.costs = &m;
  PageSignal s = stencil_edge_page();
  s.stable_writers = false;
  EXPECT_NE(policy.evaluate(PageMode::Update, s), PageMode::Overdrive);
  s = stencil_edge_page();
  s.window_full = false;
  EXPECT_NE(policy.evaluate(PageMode::Update, s), PageMode::Overdrive);
}

TEST(AdaptivePolicyTest, ManyIdleConsumersFavorInvalidateOnSp2) {
  const CostModel m = CostModel::sp2_defaults();
  AdaptivePolicy policy;
  policy.costs = &m;
  // A page pushed to many replica holders that almost never re-read it:
  // pushes charge every consumer each epoch, invalidation only charges the
  // rare actual readers (observed fetches stay near zero).
  PageSignal s;
  s.write_rate = 1.0;
  s.writers_avg = 1.0;
  s.diff_bytes_avg = 8192.0;
  s.consumers_avg = 6.0;
  s.fetches_avg = 0.1;
  s.stable_writers = false;
  s.window_full = true;
  const PageMode from_inv = policy.evaluate(PageMode::Invalidate, s);
  EXPECT_EQ(from_inv, PageMode::Invalidate);
}

TEST(AdaptivePolicyTest, HysteresisHoldsBorderlinePages) {
  const CostModel m = CostModel::sp2_defaults();
  AdaptivePolicy policy;
  policy.costs = &m;
  PageSignal s = stencil_edge_page();
  // A mode only switches if the challenger undercuts the incumbent by the
  // hysteresis margin; an exact tie must stay put.
  policy.hysteresis = 1e-9;  // challenger can essentially never win
  EXPECT_EQ(policy.evaluate(PageMode::Update, s), PageMode::Update);
}

TEST(AdaptivePolicyTest, ModeledCostsArePositiveAndFinite) {
  for (const char* profile : {"sp2", "rdma"}) {
    const CostModel m = CostModel::from_profile(profile);
    AdaptivePolicy policy;
    policy.costs = &m;
    const PageSignal s = stencil_edge_page();
    for (const PageMode mode : {PageMode::Invalidate, PageMode::Update,
                                PageMode::Overdrive}) {
      const double c = policy.modeled_cost(mode, PageMode::Update, s);
      EXPECT_GT(c, 0.0) << profile;
      EXPECT_TRUE(std::isfinite(c)) << profile;
    }
  }
}

}  // namespace
}  // namespace updsm::sim
