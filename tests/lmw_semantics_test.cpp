// Protocol-semantics tests specific to the homeless lmw protocols:
// the paper §2.1 anti-dependence guarantee, write-notice-driven
// invalidation, diff retention (Figure 1), garbage collection, the
// single-writer fast path, and lmw-u's stored-update behaviour.
#include <gtest/gtest.h>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/protocols/factory.hpp"
#include "updsm/protocols/lmw.hpp"

namespace updsm {
namespace {

using dsm::Cluster;
using dsm::ClusterConfig;
using dsm::NodeContext;
using protocols::LmwProtocol;
using protocols::ProtocolKind;

ClusterConfig config3() {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.page_size = 1024;
  return cfg;
}

TEST(LmwSemanticsTest, AntiDependenceReturnsPreEpochValue) {
  // Paper §2.1: "If process pi writes to data x during the same barrier
  // epoch in which pj reads x, the value returned by the read ... is
  // always the last value written prior to the previous barrier." The gang
  // runs node 0 (the writer) before node 1 (the reader) within the epoch,
  // so a protocol that leaked current-epoch data would return the newer
  // value. Node 1 also writes another word of the page every epoch (multi-
  // writer false sharing), which keeps the page in replica-based coherence
  // -- where the guarantee lives.
  ClusterConfig cfg = config3();
  cfg.num_nodes = 2;
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(8 * 16, "x");

  for (const auto kind : {ProtocolKind::LmwI, ProtocolKind::LmwU}) {
    Cluster cluster(cfg, heap, protocols::make_protocol(kind));
    cluster.run([&](NodeContext& ctx) {
      auto x = ctx.array<std::uint64_t>(a, 16);
      if (ctx.node() == 0) x.set(0, 5);
      if (ctx.node() == 1) x.set(8, 90);
      ctx.barrier();
      // Race epoch 1: the write of 10 is concurrent with the read of x[0].
      if (ctx.node() == 0) {
        x.set(0, 10);
      } else {
        EXPECT_EQ(x.get(0), 5u) << protocols::to_string(kind);
        x.set(8, 91);
      }
      ctx.barrier();
      // Race epoch 2: same shape, with copysets now populated.
      if (ctx.node() == 0) {
        x.set(0, 111);
      } else {
        EXPECT_EQ(x.get(0), 10u) << protocols::to_string(kind);
        x.set(8, 92);
      }
      ctx.barrier();
      EXPECT_EQ(x.get(0), 111u);
      EXPECT_EQ(x.get(8), 92u);
      ctx.barrier();
    });
  }
}

TEST(LmwSemanticsTest, SingleWriterModeServesSnapshotData) {
  // A racing first-touch read of an exclusive page is a true
  // unsynchronized race (nobody holds a replica), and LRC permits either
  // value. The fetch is served from the owner's *service snapshot* -- the
  // page as of the last barrier -- never its live frame: under the
  // parallel gang the owner may be writing the frame at that very moment.
  // The same-epoch silent write becomes visible one barrier later, when
  // the deferred exclusivity exit diffs the frame against the served
  // snapshot and publishes a fresh notice.
  ClusterConfig cfg = config3();
  cfg.num_nodes = 2;
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(8 * 16, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::LmwI));
  cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<std::uint64_t>(a, 16);
    if (ctx.node() == 0) x.set(0, 10);
    ctx.barrier();  // sole writer + empty copyset -> exclusive
    if (ctx.node() == 0) {
      x.set(0, 111);  // silent write, no trap
    } else {
      EXPECT_EQ(x.get(0), 10u) << "snapshot serve from the single writer";
    }
    ctx.barrier();
    // The exit barrier published the silent write; everyone reads it now.
    EXPECT_EQ(x.get(0), 111u);
    ctx.barrier();
  });
  EXPECT_GT(cluster.runtime().counters().private_exits, 0u);
}

TEST(LmwSemanticsTest, DiffsRetainedAfterServing) {
  // Figure 1: P1's diff cannot be discarded after P2 fetched it, because
  // P3 may request it later. Retained bytes must stay nonzero after the
  // first service and the late reader must still succeed.
  const ClusterConfig cfg = config3();
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(128 * 8, "x");

  auto protocol = protocols::make_protocol(ProtocolKind::LmwI);
  auto* lmw = dynamic_cast<LmwProtocol*>(protocol.get());
  ASSERT_NE(lmw, nullptr);
  Cluster cluster(cfg, heap, std::move(protocol));
  std::uint64_t retained_after_first_fetch = 0;
  cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, 128);
    if (ctx.node() == 0) {
      auto w = x.write_all();
      for (std::size_t i = 0; i < 128; ++i) w[i] = static_cast<double>(i);
    }
    ctx.barrier();
    if (ctx.node() == 1) {
      EXPECT_DOUBLE_EQ(x.get(5), 5.0);  // P2 fetches the diff
      retained_after_first_fetch = lmw->retained_diff_bytes();
    }
    ctx.barrier();
    if (ctx.node() == 2) {
      EXPECT_DOUBLE_EQ(x.get(7), 7.0);  // P3 fetches the SAME diff later
    }
    ctx.barrier();
  });
  EXPECT_GT(retained_after_first_fetch, 0u)
      << "creator must keep the diff after serving it";
}

TEST(LmwSemanticsTest, GarbageCollectionTriggersAndPreservesData) {
  ClusterConfig cfg = config3();
  cfg.lmw_gc_threshold_bytes = 16 * 1024;  // tiny: force GC quickly
  mem::SharedHeap heap(cfg.page_size);
  constexpr std::size_t kCount = 2048;  // 16 pages
  const GlobalAddr a = heap.alloc_page_aligned(kCount * 8, "x");

  auto protocol = protocols::make_protocol(ProtocolKind::LmwI);
  auto* lmw = dynamic_cast<LmwProtocol*>(protocol.get());
  Cluster cluster(cfg, heap, std::move(protocol));
  cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, kCount);
    const auto me = static_cast<std::size_t>(ctx.node());
    for (int iter = 1; iter <= 8; ++iter) {
      // Rotate writers so pages never become single-writer exclusive and
      // diffs keep accumulating.
      const auto writer = static_cast<std::size_t>(
          (iter + static_cast<int>(me)) % ctx.num_nodes());
      const std::size_t chunk = kCount / 3;
      auto w = x.write_view(writer * chunk, writer * chunk + chunk);
      for (std::size_t i = 0; i < chunk; ++i) {
        w[i] = iter * 1e4 + static_cast<double>(writer * chunk + i);
      }
      ctx.barrier();
      // All nodes read everything: data must survive collection.
      for (std::size_t i = 0; i < kCount; i += 173) {
        const auto owner = i / chunk >= 3 ? 2 : i / chunk;
        const auto expected_writer =
            static_cast<std::size_t>((iter + static_cast<int>(owner)) %
                                     ctx.num_nodes());
        (void)expected_writer;
        ASSERT_GT(x.get(i), 0.0);
      }
      ctx.barrier();
    }
  });
  EXPECT_GT(lmw->gc_rounds(), 0u) << "the tiny threshold must force a GC";
  EXPECT_GT(cluster.runtime().counters().retained_diff_bytes_peak,
            cfg.lmw_gc_threshold_bytes);
}

TEST(LmwSemanticsTest, SingleWriterModeStopsDiffTraffic) {
  ClusterConfig cfg = config3();
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(384 * 8, "x");  // 3 pages

  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::LmwI));
  std::uint64_t diffs_mid = 0;
  cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, 384);
    const auto me = static_cast<std::size_t>(ctx.node());
    for (int iter = 1; iter <= 10; ++iter) {
      ctx.iteration_begin();
      // Perfectly private: node k writes its own page, nobody reads.
      auto w = x.write_view(me * 128, me * 128 + 128);
      for (std::size_t i = 0; i < 128; ++i) w[i] = iter + i;
      ctx.barrier();
      if (iter == 3 && ctx.node() == 0) {
        diffs_mid = cluster.runtime().counters().diffs_created;
      }
    }
  });
  // After single-writer entry (iteration 1-2), no further diffs at all.
  EXPECT_EQ(cluster.runtime().counters().diffs_created, diffs_mid);
  EXPECT_GT(cluster.runtime().counters().private_entries, 0u);
  EXPECT_EQ(cluster.runtime().counters().private_exits, 0u);
}

TEST(LmwSemanticsTest, SingleWriterServesAccumulatedSilentWrites) {
  const ClusterConfig cfg = config3();
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(128 * 8, "x");

  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::LmwI));
  cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, 128);
    // Node 0 writes the page for several epochs (silently, once exclusive).
    for (int iter = 1; iter <= 5; ++iter) {
      if (ctx.node() == 0) {
        auto w = x.write_view(0, 128);
        for (std::size_t i = 0; i < 128; ++i) w[i] = iter * 100.0 + i;
      }
      ctx.barrier();
    }
    // A late reader must see the newest values (node 1: whole-page serve);
    // a second late reader (node 2) exercises the republished full diff.
    if (ctx.node() == 1) {
      EXPECT_DOUBLE_EQ(x.get(3), 503.0);
    }
    ctx.barrier();
    if (ctx.node() == 2) {
      EXPECT_DOUBLE_EQ(x.get(100), 600.0);
    }
    ctx.barrier();
  });
  EXPECT_GT(cluster.runtime().counters().private_exits, 0u);
}

TEST(LmwSemanticsTest, LmwUStoresUpdatesAndValidatesWithoutNetwork) {
  ClusterConfig cfg = config3();
  cfg.num_nodes = 2;
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(128 * 8, "x");

  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::LmwU));
  cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, 128);
    for (int iter = 1; iter <= 6; ++iter) {
      ctx.iteration_begin();
      if (ctx.node() == 0) {
        auto w = x.write_view(0, 128);
        for (std::size_t i = 0; i < 128; ++i) w[i] = iter * 10.0 + i;
      }
      ctx.barrier();
      if (ctx.node() == 1) {
        EXPECT_DOUBLE_EQ(x.get(2), iter * 10.0 + 2);
      }
      ctx.barrier();
    }
  });
  const auto& counters = cluster.runtime().counters();
  // The consumer joins the copyset at its first fault; later epochs are
  // served by stored updates: faults happen but missing over the network
  // only once (paper §3.3: lmw-u's faults are satisfied locally).
  EXPECT_GT(counters.updates_stored, 0u);
  EXPECT_LE(counters.remote_misses, 2u);
  EXPECT_GT(counters.read_faults, 4u)
      << "lmw-u still takes segvs for lazy validation";
}

}  // namespace
}  // namespace updsm
