// Tests for the deterministic gang scheduler: strict node ordering, barrier
// callback sequencing, error propagation and misuse detection -- plus the
// parallel mode's contracts (concurrent phase admission, callback isolation,
// pool reuse, and the same misuse/error behaviour as the baton).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "updsm/sim/gang.hpp"

namespace updsm::sim {
namespace {

TEST(GangTest, RunsNodesInStrictOrderEveryRound) {
  Gang gang(4);
  std::vector<int> order;
  gang.run(
      [&](int node) {
        for (int round = 0; round < 3; ++round) {
          order.push_back(node);  // safe: one runnable thread at a time
          gang.barrier_wait(node);
        }
      },
      [](std::uint64_t) {});
  ASSERT_EQ(order.size(), 12u);
  for (int round = 0; round < 3; ++round) {
    for (int node = 0; node < 4; ++node) {
      EXPECT_EQ(order[static_cast<std::size_t>(round * 4 + node)], node);
    }
  }
  EXPECT_EQ(gang.barriers_completed(), 3u);
}

TEST(GangTest, BarrierCallbackRunsBetweenRounds) {
  Gang gang(2);
  std::vector<std::string> log;
  gang.run(
      [&](int node) {
        log.push_back("n" + std::to_string(node));
        gang.barrier_wait(node);
        log.push_back("n" + std::to_string(node) + "'");
      },
      [&](std::uint64_t index) {
        log.push_back("b" + std::to_string(index));
      });
  const std::vector<std::string> expected{"n0", "n1", "b0", "n0'", "n1'"};
  EXPECT_EQ(log, expected);
}

TEST(GangTest, DeterministicAcrossRuns) {
  auto trace = [] {
    Gang gang(3);
    std::vector<int> order;
    gang.run(
        [&](int node) {
          for (int i = 0; i < 5; ++i) {
            order.push_back(node * 10 + i);
            gang.barrier_wait(node);
          }
        },
        [](std::uint64_t) {});
    return order;
  };
  EXPECT_EQ(trace(), trace());
}

TEST(GangTest, NodeExceptionPropagates) {
  Gang gang(4);
  EXPECT_THROW(
      gang.run(
          [&](int node) {
            gang.barrier_wait(node);
            if (node == 2) throw std::runtime_error("node 2 died");
            gang.barrier_wait(node);
          },
          [](std::uint64_t) {}),
      std::runtime_error);
}

TEST(GangTest, BarrierCallbackExceptionPropagates) {
  Gang gang(2);
  EXPECT_THROW(gang.run(
                   [&](int node) {
                     gang.barrier_wait(node);
                     gang.barrier_wait(node);
                   },
                   [](std::uint64_t index) {
                     if (index == 1) throw UsageError("callback failure");
                   }),
               UsageError);
}

TEST(GangTest, MismatchedBarrierCountsDetected) {
  Gang gang(3);
  EXPECT_THROW(gang.run(
                   [&](int node) {
                     gang.barrier_wait(node);
                     if (node != 0) gang.barrier_wait(node);  // node 0 exits
                   },
                   [](std::uint64_t) {}),
               UsageError);
}

TEST(GangTest, SingleNodeNeedsNoBarriers) {
  Gang gang(1);
  int runs = 0;
  gang.run([&](int) { ++runs; }, [](std::uint64_t) {});
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(gang.barriers_completed(), 0u);
}

TEST(GangTest, SingleNodeBarriersWork) {
  Gang gang(1);
  gang.run(
      [&](int node) {
        for (int i = 0; i < 10; ++i) gang.barrier_wait(node);
      },
      [](std::uint64_t) {});
  EXPECT_EQ(gang.barriers_completed(), 10u);
}

TEST(GangTest, RejectsZeroNodes) { EXPECT_THROW(Gang(0), UsageError); }

TEST(GangTest, ManyNodesManyRounds) {
  Gang gang(16);
  std::vector<int> counts(16, 0);
  gang.run(
      [&](int node) {
        for (int i = 0; i < 50; ++i) {
          ++counts[static_cast<std::size_t>(node)];
          gang.barrier_wait(node);
        }
      },
      [](std::uint64_t) {});
  for (const int c : counts) EXPECT_EQ(c, 50);
  EXPECT_EQ(gang.barriers_completed(), 50u);
}

// --- parallel mode ----------------------------------------------------------

TEST(GangParallelTest, AllNodesRunConcurrentlyWithinAPhase) {
  // A rendezvous that only completes if every node is admitted to the phase
  // at once: each node arrives and then waits for the others *without*
  // reaching the gang barrier. Under the baton (one runnable node at a
  // time) this would deadlock; in parallel mode it must finish. Mid-phase
  // cross-node spinning requires one worker per node (see gang.hpp caveat).
  Gang gang(4, GangMode::Parallel, /*workers=*/4);
  ASSERT_EQ(gang.mode(), GangMode::Parallel);
  std::atomic<int> arrived{0};
  gang.run(
      [&](int node) {
        arrived.fetch_add(1);
        while (arrived.load() < 4) std::this_thread::yield();
        gang.barrier_wait(node);
      },
      [](std::uint64_t) {});
  EXPECT_EQ(arrived.load(), 4);
  EXPECT_EQ(gang.barriers_completed(), 1u);
}

TEST(GangParallelTest, BarrierCallbackRunsAloneBetweenPhases) {
  // Nodes log concurrently (under a test-local mutex); the callback logs
  // from the controller. Within a phase the node order is arbitrary, but
  // every phase-1 entry must precede b0 and every phase-2 entry follow it.
  Gang gang(3, GangMode::Parallel);
  std::mutex mu;
  std::vector<std::string> log;
  auto emit = [&](std::string s) {
    std::lock_guard<std::mutex> lock(mu);
    log.push_back(std::move(s));
  };
  gang.run(
      [&](int node) {
        emit("n" + std::to_string(node));
        gang.barrier_wait(node);
        emit("n" + std::to_string(node) + "'");
      },
      [&](std::uint64_t index) { emit("b" + std::to_string(index)); });
  ASSERT_EQ(log.size(), 7u);
  EXPECT_EQ(log[3], "b0");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(log[i].size(), 2u) << log[i];  // "nK": phase 1
    EXPECT_EQ(log[i + 4].size(), 3u) << log[i + 4];  // "nK'": phase 2
  }
}

TEST(GangParallelTest, ReusesPoolAcrossRuns) {
  Gang gang(4, GangMode::Parallel);
  for (int round = 1; round <= 3; ++round) {
    std::atomic<int> visits{0};
    gang.run(
        [&](int node) {
          visits.fetch_add(1);
          gang.barrier_wait(node);
          visits.fetch_add(1);
        },
        [](std::uint64_t) {});
    EXPECT_EQ(visits.load(), 8);
    EXPECT_EQ(gang.barriers_completed(), static_cast<std::uint64_t>(round));
  }
}

TEST(GangParallelTest, NodeExceptionPropagates) {
  Gang gang(4, GangMode::Parallel);
  EXPECT_THROW(
      gang.run(
          [&](int node) {
            gang.barrier_wait(node);
            if (node == 2) throw std::runtime_error("node 2 died");
            gang.barrier_wait(node);
          },
          [](std::uint64_t) {}),
      std::runtime_error);
}

TEST(GangParallelTest, MismatchedBarrierCountsDetected) {
  Gang gang(3, GangMode::Parallel);
  EXPECT_THROW(gang.run(
                   [&](int node) {
                     gang.barrier_wait(node);
                     if (node != 0) gang.barrier_wait(node);  // node 0 exits
                   },
                   [](std::uint64_t) {}),
               UsageError);
}

TEST(GangParallelTest, UsableAfterError) {
  // A failed run must not poison the pool: the next run() succeeds.
  Gang gang(2, GangMode::Parallel);
  EXPECT_THROW(gang.run([&](int) { throw std::runtime_error("boom"); },
                        [](std::uint64_t) {}),
               std::runtime_error);
  std::atomic<int> visits{0};
  gang.run(
      [&](int node) {
        visits.fetch_add(1);
        gang.barrier_wait(node);
      },
      [](std::uint64_t) {});
  EXPECT_EQ(visits.load(), 2);
}

TEST(GangParallelTest, ManyNodesManyRounds) {
  Gang gang(16, GangMode::Parallel);
  std::vector<std::atomic<int>> counts(16);
  gang.run(
      [&](int node) {
        for (int i = 0; i < 50; ++i) {
          counts[static_cast<std::size_t>(node)].fetch_add(1);
          gang.barrier_wait(node);
        }
      },
      [](std::uint64_t) {});
  for (const auto& c : counts) EXPECT_EQ(c.load(), 50);
  EXPECT_EQ(gang.barriers_completed(), 50u);
}

TEST(GangParallelTest, ModeNames) {
  EXPECT_STREQ(to_string(GangMode::Baton), "baton");
  EXPECT_STREQ(to_string(GangMode::Parallel), "parallel");
}

// --- bounded worker pool ----------------------------------------------------

TEST(GangWorkersTest, ResolveWorkersClampsAndAutoDetects) {
  EXPECT_EQ(Gang::resolve_workers(3, 8), 3);
  EXPECT_EQ(Gang::resolve_workers(8, 8), 8);
  EXPECT_EQ(Gang::resolve_workers(100, 8), 8);  // clamp to nodes
  const int auto_workers = Gang::resolve_workers(0, 1024);
  EXPECT_GE(auto_workers, 1);
  EXPECT_LE(auto_workers, 1024);
  EXPECT_EQ(Gang::resolve_workers(0, 1), 1);
  EXPECT_THROW((void)Gang::resolve_workers(-1, 8), UsageError);
  EXPECT_THROW(Gang(4, GangMode::Parallel, -2), UsageError);
}

TEST(GangWorkersTest, OwnerWorkerIsAContiguousPartition) {
  for (const int nodes : {1, 3, 7, 8, 16, 256, 1024}) {
    for (const int workers : {1, 2, 3, 4, 8}) {
      if (workers > nodes) continue;
      int prev = 0;
      std::vector<int> sizes(static_cast<std::size_t>(workers), 0);
      for (int n = 0; n < nodes; ++n) {
        const int w = Gang::owner_worker(n, nodes, workers);
        ASSERT_GE(w, prev) << "assignment must be monotone";
        ASSERT_LT(w, workers);
        prev = w;
        ++sizes[static_cast<std::size_t>(w)];
      }
      const int base = nodes / workers;
      for (const int s : sizes) {
        EXPECT_GE(s, base);  // balanced: every worker owns base or base+1
        EXPECT_LE(s, base + 1);
      }
    }
  }
}

#ifdef __linux__
// Counts this process's OS threads via /proc; the whole point of the pool.
int os_thread_count() {
  int count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/task")) {
    (void)entry;
    ++count;
  }
  return count;
}

TEST(GangWorkersTest, LargeGangSpawnsOnlyWorkersThreads) {
  const int before = os_thread_count();
  Gang gang(256, GangMode::Parallel, /*workers=*/4);
  EXPECT_EQ(gang.workers(), 4);
  EXPECT_LE(os_thread_count(), before + 4);
  std::vector<std::atomic<int>> counts(256);
  gang.run(
      [&](int node) {
        for (int i = 0; i < 3; ++i) {
          counts[static_cast<std::size_t>(node)].fetch_add(1);
          gang.barrier_wait(node);
        }
      },
      [](std::uint64_t) {});
  for (const auto& c : counts) EXPECT_EQ(c.load(), 3);
  EXPECT_EQ(gang.barriers_completed(), 3u);
}
#endif

TEST(GangWorkersTest, BatonOrderIdenticalForEveryWorkerCount) {
  auto trace = [](int workers) {
    Gang gang(5, GangMode::Baton, workers);
    std::vector<int> order;
    gang.run(
        [&](int node) {
          for (int round = 0; round < 4; ++round) {
            order.push_back(node);
            gang.barrier_wait(node);
          }
        },
        [](std::uint64_t) {});
    return order;
  };
  const std::vector<int> baseline = trace(1);
  ASSERT_EQ(baseline.size(), 20u);
  for (int round = 0; round < 4; ++round) {
    for (int node = 0; node < 5; ++node) {
      EXPECT_EQ(baseline[static_cast<std::size_t>(round * 5 + node)], node);
    }
  }
  EXPECT_EQ(trace(2), baseline);
  EXPECT_EQ(trace(3), baseline);
  EXPECT_EQ(trace(5), baseline);
}

TEST(GangWorkersTest, ParallelPhasesCompleteForEveryWorkerCount) {
  for (const int workers : {1, 2, 3, 7}) {
    Gang gang(7, GangMode::Parallel, workers);
    EXPECT_EQ(gang.workers(), workers);
    std::vector<std::atomic<int>> counts(7);
    gang.run(
        [&](int node) {
          for (int i = 0; i < 10; ++i) {
            counts[static_cast<std::size_t>(node)].fetch_add(1);
            gang.barrier_wait(node);
          }
        },
        [](std::uint64_t) {});
    for (const auto& c : counts) EXPECT_EQ(c.load(), 10);
    EXPECT_EQ(gang.barriers_completed(), 10u);
  }
}

TEST(GangWorkersTest, ErrorsPropagateWithSharedWorkers) {
  // Node 2 throws while nodes 0/1/3 (some on the same worker) are parked
  // at the barrier; the pool must unwind every suspended fiber and stay
  // usable.
  for (const auto mode : {GangMode::Baton, GangMode::Parallel}) {
    Gang gang(4, mode, /*workers=*/2);
    EXPECT_THROW(
        gang.run(
            [&](int node) {
              gang.barrier_wait(node);
              if (node == 2) throw std::runtime_error("node 2 died");
              gang.barrier_wait(node);
            },
            [](std::uint64_t) {}),
        std::runtime_error);
    std::atomic<int> visits{0};
    gang.run(
        [&](int node) {
          visits.fetch_add(1);
          gang.barrier_wait(node);
        },
        [](std::uint64_t) {});
    EXPECT_EQ(visits.load(), 4);
  }
}

}  // namespace
}  // namespace updsm::sim
