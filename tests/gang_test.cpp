// Tests for the deterministic gang scheduler: strict node ordering, barrier
// callback sequencing, error propagation and misuse detection.
#include <gtest/gtest.h>

#include <vector>

#include "updsm/sim/gang.hpp"

namespace updsm::sim {
namespace {

TEST(GangTest, RunsNodesInStrictOrderEveryRound) {
  Gang gang(4);
  std::vector<int> order;
  gang.run(
      [&](int node) {
        for (int round = 0; round < 3; ++round) {
          order.push_back(node);  // safe: one runnable thread at a time
          gang.barrier_wait(node);
        }
      },
      [](std::uint64_t) {});
  ASSERT_EQ(order.size(), 12u);
  for (int round = 0; round < 3; ++round) {
    for (int node = 0; node < 4; ++node) {
      EXPECT_EQ(order[static_cast<std::size_t>(round * 4 + node)], node);
    }
  }
  EXPECT_EQ(gang.barriers_completed(), 3u);
}

TEST(GangTest, BarrierCallbackRunsBetweenRounds) {
  Gang gang(2);
  std::vector<std::string> log;
  gang.run(
      [&](int node) {
        log.push_back("n" + std::to_string(node));
        gang.barrier_wait(node);
        log.push_back("n" + std::to_string(node) + "'");
      },
      [&](std::uint64_t index) {
        log.push_back("b" + std::to_string(index));
      });
  const std::vector<std::string> expected{"n0", "n1", "b0", "n0'", "n1'"};
  EXPECT_EQ(log, expected);
}

TEST(GangTest, DeterministicAcrossRuns) {
  auto trace = [] {
    Gang gang(3);
    std::vector<int> order;
    gang.run(
        [&](int node) {
          for (int i = 0; i < 5; ++i) {
            order.push_back(node * 10 + i);
            gang.barrier_wait(node);
          }
        },
        [](std::uint64_t) {});
    return order;
  };
  EXPECT_EQ(trace(), trace());
}

TEST(GangTest, NodeExceptionPropagates) {
  Gang gang(4);
  EXPECT_THROW(
      gang.run(
          [&](int node) {
            gang.barrier_wait(node);
            if (node == 2) throw std::runtime_error("node 2 died");
            gang.barrier_wait(node);
          },
          [](std::uint64_t) {}),
      std::runtime_error);
}

TEST(GangTest, BarrierCallbackExceptionPropagates) {
  Gang gang(2);
  EXPECT_THROW(gang.run(
                   [&](int node) {
                     gang.barrier_wait(node);
                     gang.barrier_wait(node);
                   },
                   [](std::uint64_t index) {
                     if (index == 1) throw UsageError("callback failure");
                   }),
               UsageError);
}

TEST(GangTest, MismatchedBarrierCountsDetected) {
  Gang gang(3);
  EXPECT_THROW(gang.run(
                   [&](int node) {
                     gang.barrier_wait(node);
                     if (node != 0) gang.barrier_wait(node);  // node 0 exits
                   },
                   [](std::uint64_t) {}),
               UsageError);
}

TEST(GangTest, SingleNodeNeedsNoBarriers) {
  Gang gang(1);
  int runs = 0;
  gang.run([&](int) { ++runs; }, [](std::uint64_t) {});
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(gang.barriers_completed(), 0u);
}

TEST(GangTest, SingleNodeBarriersWork) {
  Gang gang(1);
  gang.run(
      [&](int node) {
        for (int i = 0; i < 10; ++i) gang.barrier_wait(node);
      },
      [](std::uint64_t) {});
  EXPECT_EQ(gang.barriers_completed(), 10u);
}

TEST(GangTest, RejectsZeroNodes) { EXPECT_THROW(Gang(0), UsageError); }

TEST(GangTest, ManyNodesManyRounds) {
  Gang gang(16);
  std::vector<int> counts(16, 0);
  gang.run(
      [&](int node) {
        for (int i = 0; i < 50; ++i) {
          ++counts[static_cast<std::size_t>(node)];
          gang.barrier_wait(node);
        }
      },
      [](std::uint64_t) {});
  for (const int c : counts) EXPECT_EQ(c, 50);
  EXPECT_EQ(gang.barriers_completed(), 50u);
}

}  // namespace
}  // namespace updsm::sim
