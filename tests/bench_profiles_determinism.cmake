# Acceptance gate for the cost-profile ablation: virtual-time results are a
# pure function of the workload and config, so ablation_profiles (and the
# BENCH_profiles.json it writes) must be byte-identical across --jobs,
# --workers and reruns -- and the --net-profile / --cost knobs on the CLI
# driver must actually change the times they model without ever changing
# the computed data.
# Run via ctest:
#   cmake -DBENCH_DIR=<build>/bench -P bench_profiles_determinism.cmake
if(NOT DEFINED BENCH_DIR)
  message(FATAL_ERROR "pass -DBENCH_DIR=<dir with bench binaries>")
endif()

set(flags --quick)

# --jobs=1 vs --jobs=4, a --workers=1 run, plus a repeat of --jobs=1: all
# byte-identical, on stdout and in the emitted JSON.
foreach(run jobs1 jobs4 workers1 jobs1_again)
  set(extra "")
  if(run STREQUAL jobs4)
    set(extra --jobs=4)
  elseif(run STREQUAL workers1)
    set(extra --workers=1)
  else()
    set(extra --jobs=1)
  endif()
  execute_process(
    COMMAND ${BENCH_DIR}/ablation_profiles ${flags} ${extra}
    WORKING_DIRECTORY ${BENCH_DIR}
    OUTPUT_VARIABLE out_${run}
    ERROR_VARIABLE err_${run}
    RESULT_VARIABLE rc_${run})
  if(NOT rc_${run} EQUAL 0)
    message(FATAL_ERROR
      "ablation_profiles (${run}) failed (${rc_${run}}): ${err_${run}}")
  endif()
  file(READ ${BENCH_DIR}/BENCH_profiles.json json_${run})
endforeach()
foreach(run jobs4 workers1 jobs1_again)
  if(NOT out_jobs1 STREQUAL out_${run})
    message(FATAL_ERROR
      "ablation_profiles: stdout differs between --jobs=1 and ${run}")
  endif()
  if(NOT json_jobs1 STREQUAL json_${run})
    message(FATAL_ERROR
      "BENCH_profiles.json differs between --jobs=1 and ${run}")
  endif()
endforeach()
message(STATUS
  "ablation_profiles: byte-identical across --jobs, --workers and reruns")

# The sweep must show the headline phenomena even at --quick scale: at
# least one fixed-protocol ranking inversion between the profiles, and an
# adaptive row for every (profile, app) cell.
string(REGEX MATCH "\"ranking_inversions\": [1-9]" has_inversion
       "${json_jobs1}")
if(NOT has_inversion)
  message(FATAL_ERROR
    "BENCH_profiles.json reports no fixed-protocol ranking inversion "
    "between sp2 and rdma")
endif()
string(REGEX MATCHALL "\"adaptive_speedup\"" adaptive_rows "${json_jobs1}")
list(LENGTH adaptive_rows n_adaptive)
if(n_adaptive LESS 6)
  message(FATAL_ERROR
    "BENCH_profiles.json has ${n_adaptive} adaptive rows, expected 6 "
    "(2 profiles x 3 apps)")
endif()
message(STATUS "ablation_profiles: inversion present, adaptive grid complete")

# Profile smoke on the CLI driver: same workload under sp2 vs rdma vs an
# sp2 override must stay correct (checksum column) while reporting
# different times; the knobs must reach the cost model.
set(runner ${BENCH_DIR}/../tools/updsm_run)
set(common --app=jacobi --protocol=adaptive --scale=0.25 --iters=3 --csv)
execute_process(COMMAND ${runner} ${common} --net-profile=sp2
                OUTPUT_VARIABLE out_sp2 RESULT_VARIABLE rc_sp2)
execute_process(COMMAND ${runner} ${common} --net-profile=rdma
                OUTPUT_VARIABLE out_rdma RESULT_VARIABLE rc_rdma)
execute_process(COMMAND ${runner} ${common} --net-profile=sp2
                        --cost=net.per_message_us=5
                OUTPUT_VARIABLE out_cost RESULT_VARIABLE rc_cost)
if(NOT rc_sp2 EQUAL 0 OR NOT rc_rdma EQUAL 0 OR NOT rc_cost EQUAL 0)
  message(FATAL_ERROR "updsm_run profile smoke failed to run")
endif()
if(out_sp2 STREQUAL out_rdma)
  message(FATAL_ERROR
    "updsm_run: --net-profile=rdma output is identical to sp2; the profile "
    "is not reaching the cost model")
endif()
if(out_sp2 STREQUAL out_cost)
  message(FATAL_ERROR
    "updsm_run: --cost override output is identical to the base profile")
endif()
foreach(out IN ITEMS "${out_sp2}" "${out_rdma}" "${out_cost}")
  if(NOT out MATCHES ",1\n")
    message(FATAL_ERROR "updsm_run profile smoke: a run reported incorrect")
  endif()
endforeach()
# An unknown profile or cost key must fail fast with a helpful message.
execute_process(COMMAND ${runner} ${common} --net-profile=myrinet
                ERROR_VARIABLE err_badprofile RESULT_VARIABLE rc_badprofile)
if(rc_badprofile EQUAL 0)
  message(FATAL_ERROR "updsm_run accepted --net-profile=myrinet")
endif()
execute_process(COMMAND ${runner} ${common} --cost=net.bogus_us=1
                ERROR_VARIABLE err_badkey RESULT_VARIABLE rc_badkey)
if(rc_badkey EQUAL 0)
  message(FATAL_ERROR "updsm_run accepted an unknown --cost key")
endif()
if(NOT err_badkey MATCHES "net.per_message_us")
  message(FATAL_ERROR
    "updsm_run: unknown --cost key error does not list the valid keys")
endif()
message(STATUS "updsm_run: profile/cost knobs change times, not results")
