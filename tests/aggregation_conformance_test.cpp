// Aggregation conformance: barrier-time flush batching is a transport-level
// optimization, so every observable *result* must be bit-identical with it
// on or off -- across the six paper protocols, both gang modes, and a
// battery of fault plans -- while the *traffic* shape changes exactly as
// designed (one flush-class message per (sender, destination) per barrier,
// same total record census).
//
// Plan count defaults to 8; UPDSM_AGG_PLANS=<n> shrinks (or grows) the
// battery, which CI uses to keep the sanitizer job inside its time budget.
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "updsm/common/rng.hpp"
#include "updsm/harness/experiment.hpp"
#include "updsm/harness/parallel_grid.hpp"

namespace updsm {
namespace {

using protocols::ProtocolKind;
using sim::GangMode;
using sim::MsgKind;

struct Scenario {
  const char* app;
  std::vector<ProtocolKind> kinds;
};

// Same roster as the fault-conformance soak: tomcat's shifting write set
// excludes the overdrive predictors (bar-s / bar-m).
const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> s{
      {"jacobi",
       {ProtocolKind::LmwI, ProtocolKind::LmwU, ProtocolKind::BarI,
        ProtocolKind::BarU, ProtocolKind::BarS, ProtocolKind::BarM}},
      {"tomcat",
       {ProtocolKind::LmwI, ProtocolKind::LmwU, ProtocolKind::BarI,
        ProtocolKind::BarU}},
  };
  return s;
}

int plan_count() {
  if (const char* env = std::getenv("UPDSM_AGG_PLANS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

/// Same deterministic plan construction as the fault conformance battery,
/// offset so the two suites exercise different draws.
std::string make_plan(int i) {
  std::uint64_t x = 0x1998'0330u + 7777u + static_cast<std::uint64_t>(i);
  auto draw = [&x] {
    x = splitmix64(x);
    return static_cast<double>(x >> 11) * 0x1.0p-53;
  };
  auto pct = [&](double lo, double hi) {
    const double p = lo + draw() * (hi - lo);
    return std::to_string(p).substr(0, 6);
  };
  switch (i % 4) {
    case 0:
      return "drop=" + pct(0.02, 0.15);
    case 1:
      return "drop=" + pct(0.01, 0.1) + ",dup=" + pct(0.01, 0.1) +
             ",delay=" + pct(0.01, 0.1) + ",delay_us=" +
             std::to_string(50 + static_cast<int>(draw() * 400));
    case 2:  // hammer the aggregated flush path directly
      return std::string("kind=flushbatch,drop=") + pct(0.1, 0.3) +
             ";drop=" + pct(0.0, 0.05);
    default:
      return "from=0,to=1,drop=" + pct(0.1, 0.3) + ";drop=" +
             pct(0.01, 0.08) + ";node=1,stall=" + pct(0.1, 0.4) +
             ",stall_us=" + std::to_string(100 + static_cast<int>(draw() * 800));
  }
}

harness::RunResult run_one(const char* app, ProtocolKind kind, GangMode gang,
                           bool aggregate, const std::string& plan,
                           std::uint64_t fault_seed) {
  apps::AppParams params;
  params.scale = 0.1;
  params.warmup_iterations = 4;
  params.measured_iterations = 2;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.gang = gang;
  cfg.aggregate_flushes = aggregate;
  if (!plan.empty()) {
    cfg.faults = sim::FaultSpec::parse(plan);
    cfg.fault_seed = fault_seed;
  }
  return harness::run_app(app, kind, cfg, params);
}

// Fault-free: aggregation must preserve the computation and the protocol's
// logical traffic exactly -- same checksums, same barrier count, same
// protocol work counters, same record census -- while packing records into
// strictly fewer (or equal) wire messages.
TEST(AggregationConformanceTest, FaultFreeRunsAreEquivalent) {
  for (const Scenario& sc : scenarios()) {
    for (const ProtocolKind kind : sc.kinds) {
      for (const GangMode gang : {GangMode::Baton, GangMode::Parallel}) {
        const harness::RunResult off =
            run_one(sc.app, kind, gang, false, "", 0);
        const harness::RunResult on = run_one(sc.app, kind, gang, true, "", 0);
        const std::string ctx = std::string(sc.app) + " under " +
                                protocols::to_string(kind) +
                                (gang == GangMode::Baton ? " baton" : " par");
        ASSERT_NE(off.checksum, 0.0) << ctx;
        EXPECT_EQ(on.checksum, off.checksum) << ctx;
        EXPECT_EQ(on.barriers, off.barriers) << ctx;

        // Protocol-level work is untouched by the transport change.
        EXPECT_EQ(on.counters.diffs_created.load(),
                  off.counters.diffs_created.load())
            << ctx;
        EXPECT_EQ(on.counters.updates_sent.load(),
                  off.counters.updates_sent.load())
            << ctx;
        EXPECT_EQ(on.counters.updates_received.load(),
                  off.counters.updates_received.load())
            << ctx;
        EXPECT_EQ(on.counters.updates_applied.load(),
                  off.counters.updates_applied.load())
            << ctx;
        EXPECT_EQ(on.counters.pages_fetched.load(),
                  off.counters.pages_fetched.load())
            << ctx;
        EXPECT_EQ(on.counters.migrations.load(), off.counters.migrations.load())
            << ctx;

        // Traffic shape: every per-page flush became a record inside some
        // batch; no legacy flush messages remain; the batch count can only
        // shrink the message total.
        EXPECT_EQ(on.net.of(MsgKind::Flush).count, 0u) << ctx;
        EXPECT_EQ(on.net.of(MsgKind::FlushBatch).records,
                  off.net.of(MsgKind::Flush).count)
            << ctx;
        EXPECT_EQ(on.net.flush_class_records(), off.net.flush_class_records())
            << ctx;
        EXPECT_LE(on.net.flush_class_messages(), off.net.flush_class_messages())
            << ctx;
        // The non-flush traffic (fetches, syncs, control) is untouched.
        EXPECT_EQ(on.net.of(MsgKind::DataRequest).count,
                  off.net.of(MsgKind::DataRequest).count)
            << ctx;
        EXPECT_EQ(on.net.of(MsgKind::DataReply).count,
                  off.net.of(MsgKind::DataReply).count)
            << ctx;
        EXPECT_EQ(on.net.of(MsgKind::SyncArrive).count,
                  off.net.of(MsgKind::SyncArrive).count)
            << ctx;
        EXPECT_EQ(on.net.of(MsgKind::SyncRelease).count,
                  off.net.of(MsgKind::SyncRelease).count)
            << ctx;
        // Batch bookkeeping agrees with itself.
        EXPECT_EQ(on.counters.flush_batches.load(),
                  on.net.of(MsgKind::FlushBatch).count)
            << ctx;
        EXPECT_EQ(on.counters.flush_batch_records.load(),
                  on.net.of(MsgKind::FlushBatch).records)
            << ctx;
        if (on.counters.flush_batches.load() > 0) {
          EXPECT_GE(on.counters.flush_batch_records_min.load(), 1u) << ctx;
          EXPECT_GE(on.counters.flush_batch_records_max.load(),
                    on.counters.flush_batch_records_min.load())
              << ctx;
        }
      }
    }
  }
}

// Under faults, aggregation changes which packets carry which records, so
// the loss pattern differs -- but the *result* must still match the
// fault-free baseline bit-for-bit, and both gang modes must agree on every
// observable for the aggregated path, exactly as they do for the per-page
// path.
TEST(AggregationConformanceTest, AggregatedRunsBitExactUnderFaults) {
  const int plans = plan_count();
  for (const Scenario& sc : scenarios()) {
    for (const ProtocolKind kind : sc.kinds) {
      const harness::RunResult base =
          run_one(sc.app, kind, GangMode::Parallel, true, "", 0);
      for (int i = 0; i < plans; ++i) {
        const std::string plan = make_plan(i);
        const std::uint64_t seed = 4000u + static_cast<std::uint64_t>(i);
        const harness::RunResult faulty =
            run_one(sc.app, kind, GangMode::Parallel, true, plan, seed);
        const std::string ctx = std::string(sc.app) + " under " +
                                protocols::to_string(kind) + " plan " +
                                std::to_string(i) + " [" + plan + "]";
        EXPECT_EQ(faulty.checksum, base.checksum) << ctx;
        EXPECT_EQ(faulty.barriers, base.barriers) << ctx;
        EXPECT_GE(faulty.net.total_dropped(),
                  faulty.counters.reliable_retries.load())
            << ctx;
        EXPECT_GE(faulty.counters.dup_suppressed.load(),
                  faulty.net.injected_dups)
            << ctx;

        const harness::RunResult baton =
            run_one(sc.app, kind, GangMode::Baton, true, plan, seed);
        EXPECT_EQ(baton.checksum, faulty.checksum) << ctx;
        EXPECT_EQ(baton.elapsed, faulty.elapsed) << ctx;
        EXPECT_EQ(baton.net.total_bytes(), faulty.net.total_bytes()) << ctx;
        EXPECT_EQ(baton.net.total_dropped(), faulty.net.total_dropped()) << ctx;
        EXPECT_EQ(baton.counters.flush_batches.load(),
                  faulty.counters.flush_batches.load())
            << ctx;
        EXPECT_EQ(baton.counters.flush_batch_records.load(),
                  faulty.counters.flush_batch_records.load())
            << ctx;
      }
    }
  }
}

// Batcher determinism across worker counts: the same task list executed on
// 1 worker and 4 workers must produce identical results cell-for-cell --
// the aggregation layer keeps no cross-run state.
TEST(AggregationConformanceTest, GridResultsIdenticalAcrossJobs) {
  std::vector<std::function<harness::RunResult()>> tasks;
  for (const Scenario& sc : scenarios()) {
    for (const ProtocolKind kind : sc.kinds) {
      tasks.push_back([app = sc.app, kind] {
        return run_one(app, kind, GangMode::Parallel, true, "", 0);
      });
    }
  }
  const std::vector<harness::RunResult> one = harness::run_grid(tasks, 1);
  const std::vector<harness::RunResult> four = harness::run_grid(tasks, 4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].checksum, four[i].checksum) << "cell " << i;
    EXPECT_EQ(one[i].elapsed, four[i].elapsed) << "cell " << i;
    EXPECT_EQ(one[i].net.total_bytes(), four[i].net.total_bytes())
        << "cell " << i;
    EXPECT_EQ(one[i].counters.flush_batches.load(),
              four[i].counters.flush_batches.load())
        << "cell " << i;
    EXPECT_EQ(one[i].counters.flush_batch_records.load(),
              four[i].counters.flush_batch_records.load())
        << "cell " << i;
  }
}

// The headline aggregation claim at the traffic level: for the home-based
// update protocols, the steady-state flush-class message count equals the
// number of active (sender, destination) pairs per barrier, not the number
// of pages -- i.e. batches actually coalesce multi-page flows.
TEST(AggregationConformanceTest, BatchesCoalesceMultiPageFlows) {
  // Needs a communication pattern where a sender dirties several pages
  // bound for the same destination within one barrier interval; fft's
  // transpose is exactly that (jacobi's single boundary page per neighbor
  // never yields multi-record batches, by design).
  auto run_at = [](ProtocolKind kind, bool aggregate) {
    apps::AppParams params;
    params.scale = 0.25;
    params.warmup_iterations = 2;
    params.measured_iterations = 2;
    dsm::ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.aggregate_flushes = aggregate;
    return harness::run_app("fft", kind, cfg, params);
  };
  for (const ProtocolKind kind :
       {ProtocolKind::BarU, ProtocolKind::BarS, ProtocolKind::BarM}) {
    const harness::RunResult off = run_at(kind, false);
    const harness::RunResult on = run_at(kind, true);
    const std::string ctx = protocols::to_string(kind);
    ASSERT_GT(on.net.of(MsgKind::FlushBatch).count, 0u) << ctx;
    // Strictly fewer messages than per-page records, i.e. real coalescing.
    EXPECT_LT(on.net.flush_class_messages(), off.net.flush_class_messages())
        << ctx;
    EXPECT_GT(on.counters.flush_batch_records_max.load(), 1u) << ctx;
    // Fewer wire messages means fewer fixed per-message charges: the
    // aggregated run must not be slower.
    EXPECT_LE(on.elapsed, off.elapsed) << ctx;
  }
}

}  // namespace
}  // namespace updsm
