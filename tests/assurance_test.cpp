// Tests for the §5.2 overdrive-assurance harness: invariant applications
// come back clean over perturbed datasets; barnes never does.
#include <gtest/gtest.h>

#include "updsm/harness/assurance.hpp"

namespace updsm::harness {
namespace {

apps::AppParams quick_params() {
  apps::AppParams p;
  p.scale = 0.25;
  p.warmup_iterations = 5;
  p.measured_iterations = 3;
  return p;
}

dsm::ClusterConfig quick_config() {
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  return cfg;
}

TEST(AssuranceTest, InvariantStencilIsAssured) {
  const auto report =
      assure_overdrive_safety("sor", quick_config(), quick_params(), 3);
  ASSERT_EQ(report.trials.size(), 3u);
  EXPECT_TRUE(report.assured());
  EXPECT_EQ(report.total_mispredictions(), 0u);
  for (const auto& trial : report.trials) {
    EXPECT_TRUE(trial.correct);
  }
}

TEST(AssuranceTest, SeedsActuallyVaryAcrossTrials) {
  const auto report =
      assure_overdrive_safety("expl", quick_config(), quick_params(), 3);
  ASSERT_EQ(report.trials.size(), 3u);
  EXPECT_NE(report.trials[0].seed, report.trials[1].seed);
  EXPECT_NE(report.trials[1].seed, report.trials[2].seed);
  EXPECT_TRUE(report.assured());
}

TEST(AssuranceTest, BarnesIsNeverAssured) {
  // Paper §5.1: barnes' sharing pattern, although iterative, is highly
  // dynamic -- assurance runs must catch it (at full scale its partition
  // rotation crosses page boundaries every cycle).
  apps::AppParams params = quick_params();
  params.scale = 1.0;
  params.measured_iterations = 5;
  const auto report =
      assure_overdrive_safety("barnes", quick_config(), params, 1);
  EXPECT_FALSE(report.assured());
  EXPECT_GT(report.total_mispredictions(), 0u);
  // Revert mode keeps even the divergent run correct.
  EXPECT_TRUE(report.trials[0].correct);
}

TEST(AssuranceTest, EmptyReportIsNotAssurance) {
  const AssuranceReport empty;
  EXPECT_FALSE(empty.assured());
}

}  // namespace
}  // namespace updsm::harness
