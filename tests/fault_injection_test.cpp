// FaultPlan unit tests: the injected schedule must be a pure function of
// (seed, spec, traffic), rules must target exactly what their filters say,
// and the text form must round-trip losslessly -- these three properties
// are what make a fault plan a *reproducible* adversary rather than noise.
// Also pins the flush-drop accounting: a flush lost to the legacy
// flush_drop_rate knob must show up both in NetworkStats and in the trace.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "updsm/common/error.hpp"
#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/protocols/factory.hpp"
#include "updsm/sim/fault_plan.hpp"

namespace updsm {
namespace {

using sim::FaultDecision;
using sim::FaultPlan;
using sim::FaultSpec;
using sim::MsgKind;

constexpr int kNodes = 4;

NodeId nid(int v) { return NodeId{static_cast<std::uint32_t>(v)}; }

/// Drains `count` decisions for every (kind, from, to) triple and flattens
/// them into one comparable schedule.
std::vector<FaultDecision> schedule(FaultPlan& plan, int count) {
  std::vector<FaultDecision> out;
  for (int k = 0; k < static_cast<int>(sim::kMsgKindCount); ++k) {
    for (int f = 0; f < kNodes; ++f) {
      for (int t = 0; t < kNodes; ++t) {
        if (f == t) continue;
        for (int i = 0; i < count; ++i) {
          out.push_back(plan.next(static_cast<MsgKind>(k), nid(f),
                                  nid(t)));
        }
      }
    }
  }
  return out;
}

bool same(const FaultDecision& a, const FaultDecision& b) {
  return a.drop == b.drop && a.duplicate == b.duplicate &&
         a.extra_delay == b.extra_delay;
}

TEST(FaultPlanTest, SameSeedSameSchedule) {
  const FaultSpec spec = FaultSpec::parse("drop=0.2,dup=0.1,delay=0.15");
  FaultPlan a(spec, 42, kNodes);
  FaultPlan b(spec, 42, kNodes);
  const auto sa = schedule(a, 64);
  const auto sb = schedule(b, 64);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_TRUE(same(sa[i], sb[i])) << "decision " << i << " diverged";
  }
}

TEST(FaultPlanTest, DifferentSeedDifferentSchedule) {
  const FaultSpec spec = FaultSpec::parse("drop=0.2");
  FaultPlan a(spec, 1, kNodes);
  FaultPlan b(spec, 2, kNodes);
  const auto sa = schedule(a, 64);
  const auto sb = schedule(b, 64);
  bool any_diff = false;
  for (std::size_t i = 0; i < sa.size(); ++i) any_diff |= !same(sa[i], sb[i]);
  EXPECT_TRUE(any_diff);
}

// The k-th decision of a triple depends only on (seed, spec, triple, k):
// interleaving traffic from other triples must not perturb it.
TEST(FaultPlanTest, TriplesAreIndependentStreams) {
  const FaultSpec spec = FaultSpec::parse("drop=0.3,dup=0.2");
  FaultPlan isolated(spec, 7, kNodes);
  std::vector<FaultDecision> alone;
  for (int i = 0; i < 32; ++i) {
    alone.push_back(isolated.next(MsgKind::DataRequest, nid(0), nid(1)));
  }
  FaultPlan noisy(spec, 7, kNodes);
  std::vector<FaultDecision> interleaved;
  for (int i = 0; i < 32; ++i) {
    (void)noisy.next(MsgKind::Flush, nid(2), nid(3));
    (void)noisy.next(MsgKind::DataRequest, nid(1), nid(0));
    interleaved.push_back(noisy.next(MsgKind::DataRequest, nid(0),
                                     nid(1)));
    (void)noisy.next(MsgKind::Control, nid(0), nid(1));
  }
  for (std::size_t i = 0; i < alone.size(); ++i) {
    EXPECT_TRUE(same(alone[i], interleaved[i])) << "draw " << i;
  }
}

TEST(FaultPlanTest, KindFilterTargetsOnlyThatKind) {
  FaultPlan plan(FaultSpec::parse("kind=flush,drop=1"), 3, kNodes);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(plan.next(MsgKind::Flush, nid(0), nid(1)).drop);
    EXPECT_FALSE(plan.next(MsgKind::DataRequest, nid(0), nid(1)).drop);
    EXPECT_FALSE(plan.next(MsgKind::SyncArrive, nid(1), nid(0)).drop);
  }
}

TEST(FaultPlanTest, PairFilterTargetsOnlyThatPair) {
  FaultPlan plan(FaultSpec::parse("from=0,to=1,drop=1"), 3, kNodes);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(plan.next(MsgKind::DataRequest, nid(0), nid(1)).drop);
    EXPECT_FALSE(plan.next(MsgKind::DataRequest, nid(1), nid(0)).drop);
    EXPECT_FALSE(plan.next(MsgKind::DataRequest, nid(0), nid(2)).drop);
  }
}

TEST(FaultPlanTest, FirstMatchingRuleWins) {
  // Rule 1 exempts flushes; rule 2 drops everything else.
  FaultPlan plan(FaultSpec::parse("kind=flush,drop=0;drop=1"), 3, kNodes);
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(plan.next(MsgKind::Flush, nid(0), nid(1)).drop);
    EXPECT_TRUE(plan.next(MsgKind::DataReply, nid(0), nid(1)).drop);
  }
}

TEST(FaultPlanTest, DropRateIsApproximatelyHonoured) {
  FaultPlan plan(FaultSpec::parse("drop=0.25"), 99, kNodes);
  int drops = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    drops += plan.next(MsgKind::DataRequest, nid(0), nid(1)).drop;
  }
  EXPECT_GT(drops, n / 4 - n / 20);
  EXPECT_LT(drops, n / 4 + n / 20);
}

TEST(FaultPlanTest, DelayUsesConfiguredTime) {
  FaultPlan plan(FaultSpec::parse("delay=1,delay_us=350"), 5, kNodes);
  const FaultDecision d = plan.next(MsgKind::DataReply, nid(2), nid(0));
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.extra_delay, sim::usec(350));
}

TEST(FaultPlanTest, StallIsStatelessAndTargeted) {
  FaultPlan plan(FaultSpec::parse("node=2,stall=1,stall_us=700"), 11, kNodes);
  // Stateless: repeated queries of the same (node, barrier) agree.
  const sim::SimTime s = plan.stall(nid(2), 5);
  EXPECT_EQ(s, sim::usec(700));
  EXPECT_EQ(plan.stall(nid(2), 5), s);
  // Node filter: other nodes never stall.
  for (std::uint64_t b = 0; b < 32; ++b) {
    EXPECT_EQ(plan.stall(nid(0), b), 0);
    EXPECT_EQ(plan.stall(nid(3), b), 0);
  }
}

TEST(FaultPlanTest, StallProbabilityVariesByBarrier) {
  FaultPlan plan(FaultSpec::parse("stall=0.5,stall_us=100"), 13, kNodes);
  int stalled = 0;
  for (std::uint64_t b = 0; b < 200; ++b) {
    stalled += plan.stall(nid(1), b) > 0;
  }
  EXPECT_GT(stalled, 50);
  EXPECT_LT(stalled, 150);
}

TEST(FaultSpecTest, TextFormRoundTrips) {
  const char* texts[] = {
      "drop=0.1",
      "kind=flush,drop=0.25,dup=0.5",
      "kind=data-request,from=0,to=3,delay=0.125,delay_us=250",
      "node=1,stall=0.0625,stall_us=900",
      "kind=sync-arrive,drop=0.1;kind=sync-release,dup=0.2;drop=0.05",
  };
  for (const char* text : texts) {
    const FaultSpec spec = FaultSpec::parse(text);
    EXPECT_EQ(FaultSpec::parse(spec.to_string()), spec) << text;
  }
}

TEST(FaultSpecTest, ParseAcceptsWildcardsAndWhitespace) {
  const FaultSpec spec =
      FaultSpec::parse(" kind=* , from=* , drop=0.5 ;\n to=2 , dup=1 ");
  ASSERT_EQ(spec.rules.size(), 2u);
  EXPECT_EQ(spec.rules[0].kind, -1);
  EXPECT_EQ(spec.rules[0].from, -1);
  EXPECT_EQ(spec.rules[0].drop, 0.5);
  EXPECT_EQ(spec.rules[1].to, 2);
  EXPECT_EQ(spec.rules[1].dup, 1.0);
}

TEST(FaultSpecTest, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)FaultSpec::parse("bogus=1"), UsageError);
  EXPECT_THROW((void)FaultSpec::parse("drop=1.5"), UsageError);
  EXPECT_THROW((void)FaultSpec::parse("drop=-0.1"), UsageError);
  EXPECT_THROW((void)FaultSpec::parse("kind=warp,drop=0.1"), UsageError);
  EXPECT_THROW((void)FaultSpec::parse("drop=abc"), UsageError);
  EXPECT_THROW((void)FaultSpec::parse("from=x,drop=0.1"), UsageError);
}

TEST(FaultPlanTest, SerializeRoundTripsSeedAndSchedule) {
  const FaultSpec spec = FaultSpec::parse("drop=0.2,dup=0.1;node=1,stall=0.3");
  FaultPlan a(spec, 0xdead'beef, kNodes);
  FaultPlan b = FaultPlan::deserialize(a.serialize(), kNodes);
  EXPECT_EQ(b.seed(), a.seed());
  EXPECT_EQ(b.spec(), a.spec());
  const auto sa = schedule(a, 16);
  const auto sb = schedule(b, 16);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_TRUE(same(sa[i], sb[i])) << "decision " << i;
  }
  for (std::uint64_t bar = 0; bar < 16; ++bar) {
    EXPECT_EQ(a.stall(nid(1), bar), b.stall(nid(1), bar));
  }
}

// Regression: the legacy flush_drop_rate knob used to vanish into thin air
// -- flushes were lost without any NetworkStats evidence. Every dropped
// flush must now increment the Flush drop counter and leave a trace line.
TEST(FlushDropAccountingTest, LegacyDropRateFeedsStatsAndTrace) {
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.page_size = 1024;
  cfg.trace = true;
  cfg.aggregate_flushes = false;  // this test pins the per-page path
  cfg.costs.net.flush_drop_rate = 1.0;  // lose every update push
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(256 * 8, "x");
  dsm::Cluster cluster(cfg, heap,
                       protocols::make_protocol(protocols::ProtocolKind::BarU));
  cluster.run([&](dsm::NodeContext& ctx) {
    auto x = ctx.array<double>(a, 256);
    for (int iter = 1; iter <= 3; ++iter) {
      ctx.iteration_begin();
      if (ctx.node() == 0) {
        auto w = x.write_view(0, 256);
        for (std::size_t i = 0; i < 256; ++i) w[i] = iter * 100.0 + i;
      }
      ctx.barrier();
      if (ctx.node() == 1) {
        EXPECT_EQ(x.get(0), iter * 100.0) << "stale read after lost flush";
      }
      ctx.barrier();
    }
  });
  const sim::NetworkStats& net = cluster.runtime().net().stats();
  EXPECT_GT(net.of(MsgKind::Flush).dropped, 0u);
  EXPECT_EQ(net.of(MsgKind::Flush).dropped,
            cluster.runtime().net().dropped_flushes());
  EXPECT_EQ(net.total_dropped(), net.of(MsgKind::Flush).dropped)
      << "only flushes ride the lossy legacy channel";
  std::uint64_t trace_drops = 0;
  for (const std::string& line : cluster.runtime().trace()->lines()) {
    if (line.size() >= 5 && line.compare(0, 5, "flush") == 0 &&
        line.size() >= 4 && line.compare(line.size() - 4, 4, "drop") == 0) {
      ++trace_drops;
    }
  }
  EXPECT_EQ(trace_drops, net.of(MsgKind::Flush).dropped);
}

// The same knob with aggregation on: losses land on FlushBatch (the whole
// per-destination batch vanishes), with matching flushbatch trace lines,
// and the computation still survives (version-index recovery).
TEST(FlushDropAccountingTest, LegacyDropRateDropsWholeBatches) {
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.page_size = 1024;
  cfg.trace = true;
  cfg.aggregate_flushes = true;
  cfg.costs.net.flush_drop_rate = 1.0;  // lose every update batch
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(256 * 8, "x");
  dsm::Cluster cluster(cfg, heap,
                       protocols::make_protocol(protocols::ProtocolKind::BarU));
  cluster.run([&](dsm::NodeContext& ctx) {
    auto x = ctx.array<double>(a, 256);
    for (int iter = 1; iter <= 3; ++iter) {
      ctx.iteration_begin();
      if (ctx.node() == 0) {
        auto w = x.write_view(0, 256);
        for (std::size_t i = 0; i < 256; ++i) w[i] = iter * 100.0 + i;
      }
      ctx.barrier();
      if (ctx.node() == 1) {
        EXPECT_EQ(x.get(0), iter * 100.0) << "stale read after lost batch";
      }
      ctx.barrier();
    }
  });
  const sim::NetworkStats& net = cluster.runtime().net().stats();
  EXPECT_GT(net.of(MsgKind::FlushBatch).dropped, 0u);
  EXPECT_EQ(net.of(MsgKind::Flush).count, 0u)
      << "aggregation leaves no per-page flushes";
  EXPECT_EQ(net.total_dropped(), net.of(MsgKind::FlushBatch).dropped)
      << "only flush batches ride the lossy legacy channel";
  std::uint64_t trace_drops = 0;
  for (const std::string& line : cluster.runtime().trace()->lines()) {
    if (line.compare(0, 10, "flushbatch") == 0 && line.size() >= 4 &&
        line.compare(line.size() - 4, 4, "drop") == 0) {
      ++trace_drops;
    }
  }
  EXPECT_EQ(trace_drops, net.of(MsgKind::FlushBatch).dropped);
}

}  // namespace
}  // namespace updsm
