# Acceptance gate for the bounded worker pool: bench output must be a pure
# function of the simulated experiment, never of how many OS threads
# multiplex the node contexts. Sweeps --workers across 1, a strict subset,
# and an over-subscription (clamped) value and compares stdout byte for
# byte; wallclock_scaling additionally sweeps its --workers-list. Run via
# ctest:
#   cmake -DBENCH_DIR=<build>/bench -P bench_workers_determinism.cmake
if(NOT DEFINED BENCH_DIR)
  message(FATAL_ERROR "pass -DBENCH_DIR=<dir with bench binaries>")
endif()

# Grid benches: one reference run at --workers=1, then wider pools. 99
# over-subscribes every --quick cluster size, so it exercises the clamp.
set(flags --quick --scale=0.15 --iters=2 --gang=parallel --jobs=2)
foreach(bench sweep_matrix fig2_speedups claims_summary)
  set(reference "")
  foreach(workers 1 2 99)
    execute_process(
      COMMAND ${BENCH_DIR}/${bench} ${flags} --workers=${workers}
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "${bench} --workers=${workers} failed (${rc}): ${err}")
    endif()
    if(reference STREQUAL "")
      set(reference "${out}")
    elseif(NOT out STREQUAL reference)
      message(FATAL_ERROR
        "${bench}: stdout differs between --workers=1 and --workers=${workers}")
    endif()
  endforeach()
  message(STATUS "${bench}: --workers 1/2/99 byte-identical")
endforeach()

# The scaling bench prints only simulation-determined check lines to stdout
# (timings go to stderr/JSON), so any two worker sweeps must match.
set(sweep_a 1)
set(sweep_b 1,2)
foreach(tag a b)
  execute_process(
    COMMAND ${BENCH_DIR}/wallclock_scaling --quick --workers-list=${sweep_${tag}}
    OUTPUT_VARIABLE out_${tag}
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "wallclock_scaling --workers-list=${sweep_${tag}} failed (${rc}): ${err}")
  endif()
endforeach()
if(NOT "${out_a}" STREQUAL "${out_b}")
  message(FATAL_ERROR
    "wallclock_scaling: check lines differ across --workers-list sweeps")
endif()
message(STATUS "wallclock_scaling: check lines identical across sweeps")
