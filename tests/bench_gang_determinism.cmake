# Acceptance gate for the parallel gang: every grid bench must produce
# byte-identical stdout whether the simulated nodes run serialized
# (--gang=baton) or concurrently (--gang=parallel), and whatever the
# experiment-engine worker count. Run via ctest:
#   cmake -DBENCH_DIR=<build>/bench -P bench_gang_determinism.cmake
if(NOT DEFINED BENCH_DIR)
  message(FATAL_ERROR "pass -DBENCH_DIR=<dir with bench binaries>")
endif()

set(flags --quick --scale=0.15 --iters=2)
foreach(bench sweep_matrix fig2_speedups fig3_breakdown claims_summary
        table1_base_stats)
  foreach(gang baton parallel)
    execute_process(
      COMMAND ${BENCH_DIR}/${bench} ${flags} --gang=${gang} --jobs=2
      OUTPUT_VARIABLE out_${gang}
      ERROR_VARIABLE err_${gang}
      RESULT_VARIABLE rc_${gang})
    if(NOT rc_${gang} EQUAL 0)
      message(FATAL_ERROR
        "${bench} --gang=${gang} failed (${rc_${gang}}): ${err_${gang}}")
    endif()
  endforeach()
  if(NOT out_baton STREQUAL out_parallel)
    message(FATAL_ERROR
      "${bench}: stdout differs between --gang=baton and --gang=parallel")
  endif()
  message(STATUS "${bench}: --gang=baton and --gang=parallel byte-identical")
endforeach()
