// Topology conformance: tree barriers and relayed flush dissemination are
// transport-level optimizations, so every observable *result* must be
// bit-identical with them on or off -- across the six paper protocols,
// both gang modes, and a battery of fault plans -- while the *traffic*
// shape changes exactly as designed (the same 2(n-1) sync messages per
// barrier re-routed along the tree; relayed batches noted once in the
// record census however many hops they ride).
//
// Plan count defaults to 6; UPDSM_TOPO_PLANS=<n> shrinks (or grows) the
// battery, which CI uses to keep the sanitizer job inside its time budget.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "updsm/common/rng.hpp"
#include "updsm/harness/experiment.hpp"

namespace updsm {
namespace {

using protocols::ProtocolKind;
using sim::GangMode;
using sim::MsgKind;

struct Scenario {
  const char* app;
  std::vector<ProtocolKind> kinds;
};

// Same roster as the aggregation suite: tomcat's shifting write set
// excludes the overdrive predictors (bar-s / bar-m).
const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> s{
      {"jacobi",
       {ProtocolKind::LmwI, ProtocolKind::LmwU, ProtocolKind::BarI,
        ProtocolKind::BarU, ProtocolKind::BarS, ProtocolKind::BarM}},
      {"tomcat",
       {ProtocolKind::LmwI, ProtocolKind::LmwU, ProtocolKind::BarI,
        ProtocolKind::BarU}},
  };
  return s;
}

int plan_count() {
  if (const char* env = std::getenv("UPDSM_TOPO_PLANS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 6;
}

/// Same deterministic plan construction as the fault / aggregation
/// batteries, offset so this suite exercises different draws -- and with
/// one arm that hammers the relay hops directly.
std::string make_plan(int i) {
  std::uint64_t x = 0x1998'0330u + 31337u + static_cast<std::uint64_t>(i);
  auto draw = [&x] {
    x = splitmix64(x);
    return static_cast<double>(x >> 11) * 0x1.0p-53;
  };
  auto pct = [&](double lo, double hi) {
    const double p = lo + draw() * (hi - lo);
    return std::to_string(p).substr(0, 6);
  };
  switch (i % 4) {
    case 0:
      return "drop=" + pct(0.02, 0.15);
    case 1:
      return "drop=" + pct(0.01, 0.1) + ",dup=" + pct(0.01, 0.1) +
             ",delay=" + pct(0.01, 0.1) + ",delay_us=" +
             std::to_string(50 + static_cast<int>(draw() * 400));
    case 2:  // hammer the dissemination tree directly: a lost hop loses
             // every segment aboard, the whole destination subtree heals
      return std::string("kind=flush-relay,drop=") + pct(0.1, 0.3) +
             ";drop=" + pct(0.0, 0.05);
    default:
      return "from=0,to=1,drop=" + pct(0.1, 0.3) + ";drop=" + pct(0.01, 0.08) +
             ";node=1,stall=" + pct(0.1, 0.4) + ",stall_us=" +
             std::to_string(100 + static_cast<int>(draw() * 800));
  }
}

struct Topology {
  int barrier_fanout = 0;   // 0 = flat master barrier
  int relay_threshold = 0;  // 0 = unicast flush batches
};

harness::RunResult run_one(const char* app, ProtocolKind kind, GangMode gang,
                           Topology topo, int nodes, double scale,
                           const std::string& plan, std::uint64_t fault_seed) {
  apps::AppParams params;
  params.scale = scale;
  params.warmup_iterations = 4;
  params.measured_iterations = 2;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.gang = gang;
  cfg.barrier_fanout = topo.barrier_fanout;
  cfg.relay_threshold = topo.relay_threshold;
  if (!plan.empty()) {
    cfg.faults = sim::FaultSpec::parse(plan);
    cfg.fault_seed = fault_seed;
  }
  return harness::run_app(app, kind, cfg, params);
}

// Fault-free tree barriers: the k-ary reduction/broadcast tree must
// preserve the computation and every protocol observable exactly -- same
// checksums, same counters, same flush traffic -- and re-route, not
// multiply, the sync traffic: still one arrival and one release message
// per non-root node per barrier, whatever the fanout.
TEST(TopologyConformanceTest, TreeBarrierMatchesFlat) {
  for (const Scenario& sc : scenarios()) {
    for (const ProtocolKind kind : sc.kinds) {
      for (const GangMode gang : {GangMode::Baton, GangMode::Parallel}) {
        const harness::RunResult flat =
            run_one(sc.app, kind, gang, {0, 0}, 8, 0.1, "", 0);
        for (const int fanout : {2, 8}) {
          const harness::RunResult tree =
              run_one(sc.app, kind, gang, {fanout, 0}, 8, 0.1, "", 0);
          const std::string ctx =
              std::string(sc.app) + " under " + protocols::to_string(kind) +
              (gang == GangMode::Baton ? " baton" : " par") + " fanout " +
              std::to_string(fanout);
          ASSERT_NE(flat.checksum, 0.0) << ctx;
          EXPECT_EQ(tree.checksum, flat.checksum) << ctx;
          EXPECT_EQ(tree.barriers, flat.barriers) << ctx;
          EXPECT_EQ(tree.counters.diffs_created.load(),
                    flat.counters.diffs_created.load())
              << ctx;
          EXPECT_EQ(tree.counters.updates_sent.load(),
                    flat.counters.updates_sent.load())
              << ctx;
          EXPECT_EQ(tree.counters.pages_fetched.load(),
                    flat.counters.pages_fetched.load())
              << ctx;
          EXPECT_EQ(tree.counters.migrations.load(),
                    flat.counters.migrations.load())
              << ctx;
          // Sync census: same message count, re-routed along tree edges.
          EXPECT_EQ(tree.net.of(MsgKind::SyncArrive).count,
                    flat.net.of(MsgKind::SyncArrive).count)
              << ctx;
          EXPECT_EQ(tree.net.of(MsgKind::SyncRelease).count,
                    flat.net.of(MsgKind::SyncRelease).count)
              << ctx;
          // Flush traffic is untouched by the barrier topology.
          EXPECT_EQ(tree.net.flush_class_messages(),
                    flat.net.flush_class_messages())
              << ctx;
          EXPECT_EQ(tree.net.flush_class_records(),
                    flat.net.flush_class_records())
              << ctx;
          EXPECT_EQ(tree.counters.relay_batches.load(), 0u) << ctx;
        }
      }
    }
  }
}

// Fault-free relayed dissemination: routing batches through the tree must
// not change results or the record census -- records are noted once per
// batch (under FlushRelay for relayed ones), never per hop -- and the
// relay bookkeeping must reconcile with the network's message table.
TEST(TopologyConformanceTest, RelayMatchesUnicast) {
  for (const char* app : {"jacobi", "fft"}) {
    for (const ProtocolKind kind :
         {ProtocolKind::LmwU, ProtocolKind::BarU, ProtocolKind::BarI}) {
      const harness::RunResult uni =
          run_one(app, kind, GangMode::Parallel, {0, 0}, 8, 0.25, "", 0);
      const harness::RunResult rel =
          run_one(app, kind, GangMode::Parallel, {0, 2}, 8, 0.25, "", 0);
      const std::string ctx =
          std::string(app) + " under " + protocols::to_string(kind);
      ASSERT_NE(uni.checksum, 0.0) << ctx;
      EXPECT_EQ(rel.checksum, uni.checksum) << ctx;
      EXPECT_EQ(rel.barriers, uni.barriers) << ctx;
      EXPECT_EQ(rel.counters.updates_received.load(),
                uni.counters.updates_received.load())
          << ctx;
      EXPECT_EQ(rel.counters.updates_applied.load(),
                uni.counters.updates_applied.load())
          << ctx;
      // The record census is invariant under routing; the batch count too.
      EXPECT_EQ(rel.net.flush_class_records(), uni.net.flush_class_records())
          << ctx;
      EXPECT_EQ(rel.counters.flush_batches.load(),
                uni.counters.flush_batches.load())
          << ctx;
      // Bookkeeping reconciles: every sealed batch is either a unicast
      // FlushBatch message or a relayed segment; every relay hop is a
      // FlushRelay message; nothing is lost without faults.
      EXPECT_EQ(rel.counters.flush_batches.load(),
                rel.net.of(MsgKind::FlushBatch).count +
                    rel.counters.relay_batches.load())
          << ctx;
      EXPECT_EQ(rel.counters.relay_messages.load(),
                rel.net.of(MsgKind::FlushRelay).count)
          << ctx;
      EXPECT_EQ(rel.counters.relay_subtree_losses.load(), 0u) << ctx;
      EXPECT_EQ(rel.counters.recovery_faults.load(),
                uni.counters.recovery_faults.load())
          << ctx;
    }
  }
  // The headline claim for the all-to-all app: relaying actually shrinks
  // the flush-class message total (that is its whole point).
  const harness::RunResult uni =
      run_one("fft", ProtocolKind::BarU, GangMode::Parallel, {0, 0}, 8, 0.25,
              "", 0);
  const harness::RunResult rel =
      run_one("fft", ProtocolKind::BarU, GangMode::Parallel, {0, 2}, 8, 0.25,
              "", 0);
  ASSERT_GT(rel.counters.relay_batches.load(), 0u);
  EXPECT_LT(rel.net.flush_class_messages(), uni.net.flush_class_messages());
}

// Under faults the packet pattern differs by topology (a dropped relay hop
// loses a whole subtree's segments; a dropped tree sync retries on a
// different edge), but the *result* must still match the fault-free
// baseline bit-for-bit in every topology, and both gang modes must agree
// on every observable.
TEST(TopologyConformanceTest, TopologiesBitExactUnderFaults) {
  const int plans = plan_count();
  const std::vector<Topology> topologies{{0, 0}, {4, 0}, {0, 2}, {4, 2}};
  for (const Scenario& sc : scenarios()) {
    for (const ProtocolKind kind : sc.kinds) {
      const harness::RunResult base =
          run_one(sc.app, kind, GangMode::Parallel, {0, 0}, 8, 0.1, "", 0);
      for (int i = 0; i < plans; ++i) {
        const std::string plan = make_plan(i);
        const std::uint64_t seed = 6000u + static_cast<std::uint64_t>(i);
        for (const Topology topo : topologies) {
          const harness::RunResult faulty = run_one(
              sc.app, kind, GangMode::Parallel, topo, 8, 0.1, plan, seed);
          const std::string ctx =
              std::string(sc.app) + " under " + protocols::to_string(kind) +
              " plan " + std::to_string(i) + " [" + plan + "] fanout " +
              std::to_string(topo.barrier_fanout) + " relay " +
              std::to_string(topo.relay_threshold);
          EXPECT_EQ(faulty.checksum, base.checksum) << ctx;
          EXPECT_EQ(faulty.barriers, base.barriers) << ctx;

          const harness::RunResult baton = run_one(
              sc.app, kind, GangMode::Baton, topo, 8, 0.1, plan, seed);
          EXPECT_EQ(baton.checksum, faulty.checksum) << ctx;
          EXPECT_EQ(baton.elapsed, faulty.elapsed) << ctx;
          EXPECT_EQ(baton.net.total_bytes(), faulty.net.total_bytes()) << ctx;
          EXPECT_EQ(baton.net.total_dropped(), faulty.net.total_dropped())
              << ctx;
          EXPECT_EQ(baton.counters.relay_messages.load(),
                    faulty.counters.relay_messages.load())
              << ctx;
          EXPECT_EQ(baton.counters.relay_subtree_losses.load(),
                    faulty.counters.relay_subtree_losses.load())
              << ctx;
        }
      }
    }
  }
}

// The scaling smoke at a post-64 cluster size the flat protocol stack was
// never allowed to reach before: 64 nodes, every topology combination,
// bit-identical results -- and the tree barrier strictly cheaper in
// simulated time for the barrier-dominated update protocol.
TEST(TopologyConformanceTest, SixtyFourNodesBitExactAcrossTopologies) {
  for (const char* app : {"jacobi", "fft"}) {
    for (const ProtocolKind kind : {ProtocolKind::LmwU, ProtocolKind::BarU}) {
      const std::string ctx = std::string(app) + " at 64 nodes under " +
                              protocols::to_string(kind);
      const harness::RunResult flat =
          run_one(app, kind, GangMode::Parallel, {0, 0}, 64, 0.1, "", 0);
      const harness::RunResult tree =
          run_one(app, kind, GangMode::Parallel, {4, 0}, 64, 0.1, "", 0);
      const harness::RunResult both =
          run_one(app, kind, GangMode::Parallel, {4, 4}, 64, 0.1, "", 0);
      ASSERT_NE(flat.checksum, 0.0) << ctx;
      EXPECT_EQ(tree.checksum, flat.checksum) << ctx;
      EXPECT_EQ(both.checksum, flat.checksum) << ctx;
      EXPECT_EQ(tree.barriers, flat.barriers) << ctx;
      // At 64 nodes the O(n) master barrier dominates; the tree must win.
      EXPECT_LT(tree.elapsed, flat.elapsed) << ctx;
      // ...and stay bit-exact under a fault plan in the full topology.
      const std::string plan = "drop=0.08,dup=0.03";
      const harness::RunResult faulty = run_one(
          app, kind, GangMode::Parallel, {4, 4}, 64, 0.1, plan, 7);
      EXPECT_EQ(faulty.checksum, flat.checksum) << ctx;
      EXPECT_EQ(faulty.barriers, flat.barriers) << ctx;
    }
  }
}

}  // namespace
}  // namespace updsm
