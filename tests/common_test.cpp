// Tests for the common/ layer: strong ids, deterministic RNG, checking
// macros and the copyset bitmap.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <unordered_set>
#include <vector>

#include "updsm/common/error.hpp"
#include "updsm/common/rng.hpp"
#include "updsm/common/types.hpp"
#include "updsm/dsm/copyset.hpp"

namespace updsm {
namespace {

TEST(StrongIdTest, ComparesAndHashes) {
  const PageId a{3};
  const PageId b{7};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(PageId{3}, a);
  std::unordered_set<PageId> set{a, b, PageId{3}};
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongIdTest, DistinctTagTypesDoNotMix) {
  static_assert(!std::is_same_v<PageId, NodeId>);
  static_assert(!std::is_convertible_v<PageId, NodeId>);
  static_assert(!std::is_convertible_v<std::uint32_t, PageId>);
}

TEST(RngTest, SplitmixIsAStatelessHash) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(RngTest, XoshiroIsDeterministicPerSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  Xoshiro256 c(124);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    if (va != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BoundedStaysInBounds) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.bounded(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(ErrorTest, CheckMacrosThrowTypedErrors) {
  EXPECT_THROW(UPDSM_CHECK(1 == 2), InternalError);
  EXPECT_THROW(UPDSM_CHECK_MSG(false, "ctx " << 42), InternalError);
  EXPECT_THROW(UPDSM_REQUIRE(false, "user error " << 1), UsageError);
  EXPECT_NO_THROW(UPDSM_CHECK(true));
  EXPECT_NO_THROW(UPDSM_REQUIRE(true, "fine"));
  try {
    UPDSM_CHECK_MSG(false, "value=" << 7);
    FAIL();
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("value=7"), std::string::npos);
  }
}

TEST(CopysetTest, AddRemoveContains) {
  dsm::Copyset cs;
  EXPECT_TRUE(cs.empty());
  cs.add(NodeId{0});
  cs.add(NodeId{5});
  cs.add(NodeId{63});
  EXPECT_TRUE(cs.contains(NodeId{5}));
  EXPECT_FALSE(cs.contains(NodeId{4}));
  EXPECT_EQ(cs.count(), 3);
  cs.remove(NodeId{5});
  EXPECT_FALSE(cs.contains(NodeId{5}));
  EXPECT_EQ(cs.count(), 2);
}

TEST(CopysetTest, ForEachVisitsInNodeOrder) {
  dsm::Copyset cs;
  cs.add(NodeId{9});
  cs.add(NodeId{2});
  cs.add(NodeId{40});
  std::vector<std::uint32_t> visited;
  cs.for_each([&](NodeId n) { visited.push_back(n.value()); });
  EXPECT_EQ(visited, (std::vector<std::uint32_t>{2, 9, 40}));
}

TEST(CopysetTest, SnapshotRoundTrip) {
  dsm::Copyset cs;
  cs.add(NodeId{1});
  cs.add(NodeId{3});
  cs.add(NodeId{700});
  const dsm::NodeSet snap = cs.snapshot();
  const dsm::Copyset restored = dsm::Copyset::from(snap);
  EXPECT_EQ(restored, cs);
  EXPECT_EQ(snap.words()[0], 0b1010u);
  EXPECT_TRUE(snap.contains(NodeId{700}));
  EXPECT_EQ(dsm::NodeSet::from_words(snap.words()), snap);
}

TEST(CopysetTest, SupportsBeyond64Nodes) {
  dsm::Copyset cs;
  cs.add(NodeId{64});
  cs.add(NodeId{1023});
  EXPECT_TRUE(cs.contains(NodeId{64}));
  EXPECT_TRUE(cs.contains(NodeId{1023}));
  EXPECT_EQ(cs.count(), 2);
}

TEST(CopysetTest, RejectsNodesBeyondMax) {
  dsm::Copyset cs;
  EXPECT_THROW(cs.add(NodeId{dsm::kMaxNodes}), InternalError);
}

TEST(NodeSetTest, WireFootprintGrowsPer64Nodes) {
  EXPECT_EQ(dsm::NodeSet::wire_bytes(8), 8u);    // legacy single word
  EXPECT_EQ(dsm::NodeSet::wire_bytes(64), 8u);
  EXPECT_EQ(dsm::NodeSet::wire_bytes(65), 16u);
  EXPECT_EQ(dsm::NodeSet::wire_bytes(1024), 128u);
}

TEST(NodeSetTest, ContainsAllAndLowest) {
  dsm::NodeSet a;
  a.add(NodeId{2});
  a.add(NodeId{70});
  a.add(NodeId{500});
  dsm::NodeSet b;
  b.add(NodeId{70});
  b.add(NodeId{500});
  EXPECT_TRUE(a.contains_all(b));
  EXPECT_FALSE(b.contains_all(a));
  EXPECT_EQ(a.lowest(), NodeId{2});
  a.remove(NodeId{2});
  EXPECT_EQ(a.lowest(), NodeId{70});
}

// Property test of the multi-word bitmap against a reference std::set
// model: random add/remove sequences at cluster sizes on both sides of
// every word boundary must agree on membership, count, iteration order,
// and the wire-word round trip at every step.
TEST(CopysetTest, MatchesReferenceSetModel) {
  for (const std::uint32_t nodes : {8u, 64u, 65u, 128u, 1024u}) {
    Xoshiro256 rng(0x1998'0330u + nodes);
    dsm::Copyset cs;
    std::set<std::uint32_t> model;
    for (int step = 0; step < 2000; ++step) {
      const auto n = static_cast<std::uint32_t>(rng.bounded(nodes));
      if (rng.bounded(3) == 0) {
        cs.remove(NodeId{n});
        model.erase(n);
      } else {
        cs.add(NodeId{n});
        model.insert(n);
      }
      if (step % 100 != 0) continue;  // full audits are O(nodes)
      const dsm::NodeSet snap = cs.snapshot();
      EXPECT_EQ(snap.count(), model.size()) << nodes << " @" << step;
      for (std::uint32_t i = 0; i < nodes; ++i) {
        ASSERT_EQ(snap.contains(NodeId{i}), model.count(i) == 1)
            << nodes << " node " << i << " @" << step;
      }
      // for_each visits exactly the model, in ascending node order.
      std::vector<std::uint32_t> visited;
      snap.for_each([&](NodeId id) { visited.push_back(id.value()); });
      EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
      EXPECT_EQ(visited, std::vector<std::uint32_t>(model.begin(), model.end()))
          << nodes << " @" << step;
      if (!model.empty()) {
        EXPECT_EQ(snap.lowest().value(), *model.begin());
      }
      // Wire round trip through exactly the words a `nodes`-sized cluster
      // ships: the tail words beyond the highest possible node are zero.
      const std::size_t words = dsm::NodeSet::words_for(nodes);
      for (std::size_t w = words; w < dsm::kNodeSetWords; ++w) {
        EXPECT_EQ(snap.words()[w], 0u) << nodes << " word " << w;
      }
      std::array<std::uint64_t, dsm::kNodeSetWords> wire{};
      for (std::size_t w = 0; w < words; ++w) wire[w] = snap.words()[w];
      EXPECT_EQ(dsm::NodeSet::from_words(wire), snap) << nodes << " @" << step;
      EXPECT_EQ(dsm::Copyset::from(snap).snapshot(), snap);
    }
  }
}

}  // namespace
}  // namespace updsm
