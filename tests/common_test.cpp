// Tests for the common/ layer: strong ids, deterministic RNG, checking
// macros and the copyset bitmap.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "updsm/common/error.hpp"
#include "updsm/common/rng.hpp"
#include "updsm/common/types.hpp"
#include "updsm/dsm/copyset.hpp"

namespace updsm {
namespace {

TEST(StrongIdTest, ComparesAndHashes) {
  const PageId a{3};
  const PageId b{7};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(PageId{3}, a);
  std::unordered_set<PageId> set{a, b, PageId{3}};
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongIdTest, DistinctTagTypesDoNotMix) {
  static_assert(!std::is_same_v<PageId, NodeId>);
  static_assert(!std::is_convertible_v<PageId, NodeId>);
  static_assert(!std::is_convertible_v<std::uint32_t, PageId>);
}

TEST(RngTest, SplitmixIsAStatelessHash) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(RngTest, XoshiroIsDeterministicPerSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  Xoshiro256 c(124);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    if (va != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BoundedStaysInBounds) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.bounded(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(ErrorTest, CheckMacrosThrowTypedErrors) {
  EXPECT_THROW(UPDSM_CHECK(1 == 2), InternalError);
  EXPECT_THROW(UPDSM_CHECK_MSG(false, "ctx " << 42), InternalError);
  EXPECT_THROW(UPDSM_REQUIRE(false, "user error " << 1), UsageError);
  EXPECT_NO_THROW(UPDSM_CHECK(true));
  EXPECT_NO_THROW(UPDSM_REQUIRE(true, "fine"));
  try {
    UPDSM_CHECK_MSG(false, "value=" << 7);
    FAIL();
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("value=7"), std::string::npos);
  }
}

TEST(CopysetTest, AddRemoveContains) {
  dsm::Copyset cs;
  EXPECT_TRUE(cs.empty());
  cs.add(NodeId{0});
  cs.add(NodeId{5});
  cs.add(NodeId{63});
  EXPECT_TRUE(cs.contains(NodeId{5}));
  EXPECT_FALSE(cs.contains(NodeId{4}));
  EXPECT_EQ(cs.count(), 3);
  cs.remove(NodeId{5});
  EXPECT_FALSE(cs.contains(NodeId{5}));
  EXPECT_EQ(cs.count(), 2);
}

TEST(CopysetTest, ForEachVisitsInNodeOrder) {
  dsm::Copyset cs;
  cs.add(NodeId{9});
  cs.add(NodeId{2});
  cs.add(NodeId{40});
  std::vector<std::uint32_t> visited;
  cs.for_each([&](NodeId n) { visited.push_back(n.value()); });
  EXPECT_EQ(visited, (std::vector<std::uint32_t>{2, 9, 40}));
}

TEST(CopysetTest, BitsRoundTrip) {
  dsm::Copyset cs;
  cs.add(NodeId{1});
  cs.add(NodeId{3});
  const auto restored = dsm::Copyset::from_bits(cs.bits());
  EXPECT_EQ(restored, cs);
  EXPECT_EQ(cs.bits(), 0b1010u);
}

TEST(CopysetTest, Rejects64PlusNodes) {
  dsm::Copyset cs;
  EXPECT_THROW(cs.add(NodeId{64}), InternalError);
}

}  // namespace
}  // namespace updsm
