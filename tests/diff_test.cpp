// Unit and property tests for the run-length-encoded diff engine -- the
// mechanism every protocol's correctness rests on.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "updsm/common/rng.hpp"
#include "updsm/mem/diff.hpp"

namespace updsm::mem {
namespace {

using Page = std::vector<std::byte>;

Page zero_page(std::size_t size) { return Page(size, std::byte{0}); }

Page random_page(std::size_t size, std::uint64_t seed) {
  Page page(size);
  for (std::size_t i = 0; i < size; ++i) {
    page[i] = static_cast<std::byte>(splitmix64(seed + i) & 0xff);
  }
  return page;
}

TEST(DiffTest, EmptyWhenIdentical) {
  const Page twin = random_page(4096, 1);
  const Diff diff = Diff::create(twin, twin);
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(diff.run_count(), 0u);
  EXPECT_EQ(diff.payload_bytes(), 0u);
  EXPECT_EQ(diff.wire_bytes(), 0u);
}

TEST(DiffTest, SingleWordChange) {
  const Page twin = zero_page(4096);
  Page cur = twin;
  cur[128] = std::byte{0xff};
  const Diff diff = Diff::create(twin, cur);
  EXPECT_EQ(diff.run_count(), 1u);
  // Word granularity: the run covers the containing 8-byte word.
  EXPECT_EQ(diff.payload_bytes(), 8u);
  EXPECT_EQ(diff.runs()[0].offset, 128u);
}

TEST(DiffTest, AdjacentWordsCoalesce) {
  const Page twin = zero_page(4096);
  Page cur = twin;
  for (std::size_t i = 64; i < 96; ++i) cur[i] = std::byte{1};
  const Diff diff = Diff::create(twin, cur);
  EXPECT_EQ(diff.run_count(), 1u);
  EXPECT_EQ(diff.payload_bytes(), 32u);
}

TEST(DiffTest, DisjointRunsStaySeparate) {
  const Page twin = zero_page(4096);
  Page cur = twin;
  cur[0] = std::byte{1};
  cur[2048] = std::byte{2};
  cur[4088] = std::byte{3};
  const Diff diff = Diff::create(twin, cur);
  EXPECT_EQ(diff.run_count(), 3u);
}

TEST(DiffTest, ApplyReconstructsExactly) {
  const Page twin = random_page(8192, 7);
  Page cur = twin;
  // Scatter modifications.
  for (std::size_t i = 0; i < 8192; i += 321) cur[i] = std::byte{0xaa};
  const Diff diff = Diff::create(twin, cur);
  Page target = twin;
  diff.apply(target);
  EXPECT_EQ(std::memcmp(target.data(), cur.data(), cur.size()), 0);
}

TEST(DiffTest, FullPageAppliesOnAnyBase) {
  const Page contents = random_page(4096, 11);
  const Diff diff = Diff::full_page(contents);
  EXPECT_EQ(diff.run_count(), 1u);
  EXPECT_EQ(diff.payload_bytes(), 4096u);
  Page target = random_page(4096, 99);  // arbitrary garbage base
  diff.apply(target);
  EXPECT_EQ(std::memcmp(target.data(), contents.data(), 4096), 0);
}

TEST(DiffTest, OverlapsDetectsIntersection) {
  const Page twin = zero_page(4096);
  Page a = twin;
  Page b = twin;
  for (std::size_t i = 0; i < 64; ++i) a[i] = std::byte{1};
  for (std::size_t i = 56; i < 128; ++i) b[i] = std::byte{2};
  const Diff da = Diff::create(twin, a);
  const Diff db = Diff::create(twin, b);
  EXPECT_TRUE(da.overlaps(db));
  EXPECT_TRUE(db.overlaps(da));

  Page c = twin;
  for (std::size_t i = 1024; i < 1100; ++i) c[i] = std::byte{3};
  const Diff dc = Diff::create(twin, c);
  EXPECT_FALSE(da.overlaps(dc));
  EXPECT_FALSE(dc.overlaps(da));
}

TEST(DiffTest, CoversIsContainment) {
  const Page twin = zero_page(4096);
  Page big = twin;
  for (std::size_t i = 0; i < 512; ++i) big[i] = std::byte{1};
  Page small = twin;
  for (std::size_t i = 128; i < 256; ++i) small[i] = std::byte{2};
  Page other = twin;
  for (std::size_t i = 480; i < 600; ++i) other[i] = std::byte{3};
  const Diff dbig = Diff::create(twin, big);
  const Diff dsmall = Diff::create(twin, small);
  const Diff dother = Diff::create(twin, other);
  EXPECT_TRUE(dbig.covers(dsmall));
  EXPECT_FALSE(dsmall.covers(dbig));
  EXPECT_FALSE(dbig.covers(dother));  // 512..600 is uncovered
  EXPECT_TRUE(dbig.covers(Diff::create(twin, twin)));  // empty is covered
}

TEST(DiffTest, MismatchedSizesRejected) {
  const Page a = zero_page(4096);
  const Page b = zero_page(8192);
  EXPECT_THROW((void)Diff::create(a, b), InternalError);
}

// ---------------------------------------------------------------------------
// Property sweeps: randomized modification patterns at several page sizes.
// ---------------------------------------------------------------------------

struct DiffPropertyCase {
  std::size_t page_size;
  std::uint64_t seed;
  double density;  // fraction of words modified
};

class DiffPropertyTest : public ::testing::TestWithParam<DiffPropertyCase> {};

TEST_P(DiffPropertyTest, RoundTripAndAccounting) {
  const auto& param = GetParam();
  const Page twin = random_page(param.page_size, param.seed);
  Page cur = twin;
  Xoshiro256 rng(param.seed ^ 0x5eed);
  std::size_t modified_words = 0;
  for (std::size_t w = 0; w < param.page_size / 8; ++w) {
    if (rng.uniform() < param.density) {
      cur[w * 8 + rng.bounded(8)] = static_cast<std::byte>(rng.bounded(256));
      ++modified_words;
    }
  }
  const Diff diff = Diff::create(twin, cur);

  // apply(twin copy) == cur, always.
  Page target = twin;
  diff.apply(target);
  ASSERT_EQ(std::memcmp(target.data(), cur.data(), cur.size()), 0);

  // Applying twice is idempotent.
  diff.apply(target);
  ASSERT_EQ(std::memcmp(target.data(), cur.data(), cur.size()), 0);

  // Payload covers at least the modified words (note: a random byte can
  // equal the old value, so <=), never more than the whole page.
  EXPECT_LE(diff.payload_bytes(), param.page_size);
  EXPECT_LE(diff.payload_bytes(), 8 * modified_words + param.page_size / 64);
  // wire = run table + payload.
  EXPECT_EQ(diff.wire_bytes(),
            diff.run_count() * sizeof(DiffRun) + diff.payload_bytes());
  // A diff always covers itself and the empty diff.
  EXPECT_TRUE(diff.covers(diff));
}

TEST_P(DiffPropertyTest, ConcurrentDisjointDiffsMergeOrderIndependently) {
  const auto& param = GetParam();
  const Page base = random_page(param.page_size, param.seed);
  // Two "nodes" modify disjoint interleaved word ranges (data-race-free).
  Page a = base;
  Page b = base;
  for (std::size_t w = 0; w < param.page_size / 8; w += 2) {
    a[w * 8] = std::byte{0x11};
    if (w + 1 < param.page_size / 8) b[(w + 1) * 8] = std::byte{0x22};
  }
  const Diff da = Diff::create(base, a);
  const Diff db = Diff::create(base, b);
  ASSERT_FALSE(da.overlaps(db));

  Page ab = base;
  da.apply(ab);
  db.apply(ab);
  Page ba = base;
  db.apply(ba);
  da.apply(ba);
  EXPECT_EQ(std::memcmp(ab.data(), ba.data(), ab.size()), 0);
  // The merge contains both nodes' modifications.
  EXPECT_EQ(ab[0], std::byte{0x11});
  EXPECT_EQ(ab[16 + 8 - 16], ab[8]);  // b's first mod at word 1
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, DiffPropertyTest,
    ::testing::Values(DiffPropertyCase{1024, 1, 0.02},
                      DiffPropertyCase{1024, 2, 0.5},
                      DiffPropertyCase{4096, 3, 0.01},
                      DiffPropertyCase{4096, 4, 0.25},
                      DiffPropertyCase{8192, 5, 0.02},
                      DiffPropertyCase{8192, 6, 0.5},
                      DiffPropertyCase{8192, 7, 0.95},
                      DiffPropertyCase{16384, 8, 0.1}),
    [](const ::testing::TestParamInfo<DiffPropertyCase>& info) {
      return "p" + std::to_string(info.param.page_size) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace updsm::mem
