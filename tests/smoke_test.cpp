// Build-system smoke test: the core layers link and a trivial 1-node
// sequential run works end to end.
#include <gtest/gtest.h>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/dsm/null_protocol.hpp"
#include "updsm/mem/shared_heap.hpp"

namespace updsm {
namespace {

TEST(Smoke, SequentialBaselineRuns) {
  dsm::ClusterConfig config;
  config.num_nodes = 1;
  mem::SharedHeap heap(config.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(1024 * sizeof(double), "a");

  dsm::Cluster cluster(config, heap, std::make_unique<dsm::NullProtocol>());
  cluster.run([&](dsm::NodeContext& ctx) {
    auto arr = ctx.array<double>(a, 1024);
    auto w = arr.write_all();
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = static_cast<double>(i);
    ctx.compute_flops(1024);
    ctx.barrier();
    double sum = 0;
    for (const double v : arr.read_all()) sum += v;
    EXPECT_DOUBLE_EQ(sum, 1023.0 * 1024.0 / 2.0);
  });
  EXPECT_EQ(cluster.barriers(), 1u);
  EXPECT_GT(cluster.elapsed(), 0);
}

}  // namespace
}  // namespace updsm
