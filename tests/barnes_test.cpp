// Barnes-Hut specific tests: octree structural invariants, approximation
// quality against direct summation, physics sanity, and the dynamic-
// sharing property that excludes barnes from overdrive.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "updsm/apps/barnes.hpp"
#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/protocols/factory.hpp"

namespace updsm::apps {
namespace {

using dsm::Cluster;
using dsm::NodeContext;
using protocols::ProtocolKind;

struct BarnesRun {
  std::vector<double> pos;
  std::vector<double> vel;
  std::vector<double> mass;
  std::vector<double> cost;
  std::vector<std::int32_t> child;
  std::vector<double> cell_mass;
  std::size_t cells = 0;
  std::size_t nbody = 0;
};

BarnesRun run_barnes(int iterations, double scale = 0.25) {
  AppParams params;
  params.scale = scale;
  params.warmup_iterations = 2;
  params.measured_iterations = iterations - 2;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  auto app = std::make_unique<BarnesApp>(params);
  auto* barnes = app.get();
  mem::SharedHeap heap(cfg.page_size);
  app->allocate(heap);
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::BarU));

  BarnesRun out;
  out.nbody = barnes->bodies();
  cluster.run([&](NodeContext& ctx) {
    app->run(ctx);
    if (ctx.node() == 0) {
      // Snapshot the final shared state through the DSM.
      auto grab = [&](GlobalAddr addr, std::size_t count) {
        auto arr = ctx.array<double>(addr, count);
        auto view = arr.read_view(0, count);
        return std::vector<double>(view.begin(), view.end());
      };
      out.pos = grab(barnes->pos_addr(), out.nbody * 3);
      out.vel = grab(barnes->vel_addr(), out.nbody * 3);
      out.mass = grab(barnes->mass_addr(), out.nbody);
      out.cost = grab(barnes->cost_addr(), out.nbody);
      const auto meta = grab(barnes->tree_meta_addr(), 5);
      out.cells = static_cast<std::size_t>(meta[0]);
      auto child_arr = ctx.array<std::int32_t>(barnes->child_addr(),
                                               barnes->max_cells() * 8);
      auto cv = child_arr.read_view(0, out.cells * 8);
      out.child.assign(cv.begin(), cv.end());
      out.cell_mass = grab(barnes->cell_mass_addr(), out.cells);
    }
    ctx.barrier();
  });
  return out;
}

TEST(BarnesTest, TreeContainsEveryBodyExactlyOnce) {
  const BarnesRun run = run_barnes(4);
  ASSERT_GT(run.cells, 0u);
  std::vector<int> seen(run.nbody, 0);
  std::size_t cell_refs = 0;
  for (const std::int32_t slot : run.child) {
    if (slot < 0) {
      const auto body = static_cast<std::size_t>(-slot) - 1;
      ASSERT_LT(body, run.nbody);
      ++seen[body];
    } else if (slot > 0) {
      ASSERT_LE(static_cast<std::size_t>(slot), run.cells);
      ++cell_refs;
    }
  }
  for (std::size_t b = 0; b < run.nbody; ++b) {
    EXPECT_EQ(seen[b], 1) << "body " << b;
  }
  // Every cell except the root is referenced exactly once.
  EXPECT_EQ(cell_refs, run.cells - 1);
}

TEST(BarnesTest, RootMassEqualsTotalMass) {
  const BarnesRun run = run_barnes(4);
  double total = 0;
  for (const double m : run.mass) total += m;
  EXPECT_NEAR(run.cell_mass[0], total, 1e-12);
  EXPECT_NEAR(total, 1.0, 1e-9);  // masses are 1/N each
}

TEST(BarnesTest, CostsReflectWorkAndVary) {
  const BarnesRun run = run_barnes(4);
  double lo = 1e300;
  double hi = 0;
  for (const double c : run.cost) {
    EXPECT_GT(c, 0.0);
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_GT(hi, lo) << "interaction counts should differ across bodies";
  EXPECT_LT(hi, static_cast<double>(run.nbody) * 8)
      << "tree walk must beat brute force by a wide margin";
}

TEST(BarnesTest, MomentumApproximatelyConserved) {
  // Barnes-Hut forces are not exactly antisymmetric, but over a few steps
  // the total momentum drift must stay small relative to the momentum
  // scale |p| ~ N * mass * v ~ 0.025.
  const BarnesRun before = run_barnes(3);
  const BarnesRun after = run_barnes(9);
  auto momentum = [](const BarnesRun& run, int axis) {
    double p = 0;
    for (std::size_t b = 0; b < run.nbody; ++b) {
      p += run.mass[b] * run.vel[3 * b + static_cast<std::size_t>(axis)];
    }
    return p;
  };
  for (int axis = 0; axis < 3; ++axis) {
    EXPECT_NEAR(momentum(after, axis), momentum(before, axis), 5e-3)
        << "axis " << axis;
  }
}

TEST(BarnesTest, PartitionRotatesAcrossIterations) {
  // The cost-balanced partition with per-iteration jitter is why the paper
  // excludes barnes from overdrive: the write sets differ from iteration
  // to iteration. Check the mechanism: two different iterations hand node
  // 1 different body ranges (observable via write-fault counters when run
  // under bar-s in Revert mode, which counts the mispredictions).
  AppParams params;
  params.scale = 1.0;  // page-level write-set variation needs real sizes
  params.warmup_iterations = 5;
  params.measured_iterations = 5;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.overdrive_fallback = dsm::OverdriveFallback::Revert;
  auto app = std::make_unique<BarnesApp>(params);
  mem::SharedHeap heap(cfg.page_size);
  app->allocate(heap);
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::BarS));
  cluster.run([&](NodeContext& ctx) { app->run(ctx); });
  EXPECT_GT(cluster.runtime().counters().overdrive_mispredictions, 0u)
      << "barnes' dynamic sharing must defeat overdrive prediction";
}

}  // namespace
}  // namespace updsm::apps
