// Additional protocol-level coverage: the factory, the sc-sw baseline,
// drop-rate robustness sweeps, and page-size sweeps over the full
// correctness matrix.
#include <gtest/gtest.h>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/harness/experiment.hpp"
#include "updsm/protocols/factory.hpp"
#include "updsm/protocols/sc_sw.hpp"

namespace updsm {
namespace {

using dsm::Cluster;
using dsm::ClusterConfig;
using dsm::NodeContext;
using protocols::ProtocolKind;

TEST(FactoryTest, RoundTripsEveryName) {
  for (const auto kind :
       {ProtocolKind::LmwI, ProtocolKind::LmwU, ProtocolKind::BarI,
        ProtocolKind::BarU, ProtocolKind::BarS, ProtocolKind::BarM,
        ProtocolKind::ScSw, ProtocolKind::Null}) {
    EXPECT_EQ(protocols::protocol_from_string(protocols::to_string(kind)),
              kind);
    auto protocol = protocols::make_protocol(kind);
    ASSERT_NE(protocol, nullptr);
    EXPECT_EQ(protocol->name(), protocols::to_string(kind));
  }
  EXPECT_THROW((void)protocols::protocol_from_string("bogus"), UsageError);
}

TEST(FactoryTest, PaperProtocolListsAreOrdered) {
  const auto base = protocols::base_protocols();
  ASSERT_EQ(base.size(), 4u);
  EXPECT_EQ(base.front(), ProtocolKind::LmwI);
  EXPECT_EQ(base.back(), ProtocolKind::BarU);
  const auto all = protocols::all_paper_protocols();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all.back(), ProtocolKind::BarM);
}

// --- sc-sw ---------------------------------------------------------------------

ClusterConfig sc_config() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.page_size = 1024;
  return cfg;
}

TEST(ScSwTest, SingleWriterInvalidateIsCoherent) {
  const ClusterConfig cfg = sc_config();
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(256 * 8, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::ScSw));
  cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<std::uint64_t>(a, 256);
    const auto me = static_cast<std::size_t>(ctx.node());
    for (int iter = 1; iter <= 4; ++iter) {
      // Element accessors only: sc-sw revokes access mid-epoch.
      for (std::size_t i = me; i < 256; i += 4) {
        x.set(i, iter * 1000 + i);
      }
      ctx.barrier();
      for (std::size_t i = 0; i < 256; i += 17) {
        ASSERT_EQ(x.get(i), iter * 1000 + i);
      }
      ctx.barrier();
    }
  });
  EXPECT_EQ(cluster.runtime().counters().diffs_created, 0u)
      << "sequentially consistent single-writer needs no diffs at all";
  EXPECT_GT(cluster.runtime().counters().pages_fetched, 0u);
}

TEST(ScSwTest, OwnershipFollowsTheWriter) {
  const ClusterConfig cfg = sc_config();
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(128 * 8, "x");
  auto protocol = protocols::make_protocol(ProtocolKind::ScSw);
  auto* sc = dynamic_cast<protocols::ScSwProtocol*>(protocol.get());
  ASSERT_NE(sc, nullptr);
  Cluster cluster(cfg, heap, std::move(protocol));
  cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<std::uint64_t>(a, 128);
    const int n = ctx.num_nodes();
    for (int hop = 0; hop < 2 * n; ++hop) {
      if (hop % n == ctx.node()) x.set(0, static_cast<std::uint64_t>(hop));
      ctx.barrier();
    }
  });
  // Last writer of the page was node (2n-1) % n == n-1.
  EXPECT_EQ(sc->owner(PageId{0}).value(), 3u);
}

TEST(ScSwTest, FalseSharingForcesArbitrationTraffic) {
  const ClusterConfig cfg = sc_config();
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(128 * 8, "x");

  auto traffic = [&](ProtocolKind kind) {
    Cluster cluster(cfg, heap, protocols::make_protocol(kind));
    cluster.run([&](NodeContext& ctx) {
      auto x = ctx.array<std::uint64_t>(a, 128);
      const auto me = static_cast<std::size_t>(ctx.node());
      for (int iter = 0; iter < 6; ++iter) {
        for (std::size_t i = me; i < 128; i += 4) x.set(i, iter);
        ctx.barrier();
      }
    });
    return cluster.runtime().net().stats().total_one_way_messages();
  };
  // Concurrent writers on one page: the SC protocol must arbitrate
  // ownership inside every epoch; multi-writer LRC needs only barrier
  // traffic after single-... (page is multi-writer, so never exclusive).
  EXPECT_GT(traffic(ProtocolKind::ScSw), traffic(ProtocolKind::BarU));
}

// --- drop-rate robustness sweep -------------------------------------------------

class DropRateTest : public ::testing::TestWithParam<double> {};

TEST_P(DropRateTest, UpdateProtocolsSurviveAnyLossRate) {
  apps::AppParams params;
  params.scale = 0.2;
  params.warmup_iterations = 3;
  params.measured_iterations = 3;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.costs.net.flush_drop_rate = GetParam();

  for (const auto kind : {ProtocolKind::LmwU, ProtocolKind::BarU}) {
    const auto seq = harness::run_sequential("expl", cfg, params);
    const auto par = harness::run_app("expl", kind, cfg, params);
    EXPECT_EQ(par.checksum, seq.checksum)
        << protocols::to_string(kind) << " diverged at drop rate "
        << GetParam();
    if (GetParam() > 0.9) {
      // With (nearly) every flush lost, updates cannot help: the run must
      // fall back to demand misses.
      EXPECT_GT(par.counters.remote_misses, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, DropRateTest,
                         ::testing::Values(0.0, 0.1, 0.5, 0.95, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "drop" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

// --- page-size sweep -------------------------------------------------------------

struct PageSizeCase {
  std::uint32_t page_size;
  ProtocolKind kind;
};

class PageSizeTest : public ::testing::TestWithParam<PageSizeCase> {};

TEST_P(PageSizeTest, ValidationHoldsAtEveryGranularity) {
  apps::AppParams params;
  params.scale = 0.25;
  params.warmup_iterations = 5;
  params.measured_iterations = 2;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.page_size = GetParam().page_size;
  const auto seq = harness::run_sequential("jacobi", cfg, params);
  const auto par = harness::run_app("jacobi", GetParam().kind, cfg, params);
  EXPECT_EQ(par.checksum, seq.checksum);
}

INSTANTIATE_TEST_SUITE_P(
    Granularities, PageSizeTest,
    ::testing::Values(PageSizeCase{1024, ProtocolKind::LmwI},
                      PageSizeCase{1024, ProtocolKind::BarU},
                      PageSizeCase{4096, ProtocolKind::LmwU},
                      PageSizeCase{4096, ProtocolKind::BarM},
                      PageSizeCase{16384, ProtocolKind::BarI},
                      PageSizeCase{16384, ProtocolKind::BarS},
                      PageSizeCase{32768, ProtocolKind::BarU}),
    [](const ::testing::TestParamInfo<PageSizeCase>& info) {
      return std::string("p") + std::to_string(info.param.page_size) + "_" +
             [&] {
               std::string name = protocols::to_string(info.param.kind);
               for (char& c : name) {
                 if (c == '-') c = '_';
               }
               return name;
             }();
    });

// --- node-count sweep of the core coherence patterns ---------------------------

struct NodeSweepCase {
  ProtocolKind kind;
  int nodes;
};

class NodeSweepTest : public ::testing::TestWithParam<NodeSweepCase> {};

TEST_P(NodeSweepTest, ProducerConsumerAndFalseSharing) {
  ClusterConfig cfg;
  cfg.num_nodes = GetParam().nodes;
  cfg.page_size = 1024;
  mem::SharedHeap heap(cfg.page_size);
  constexpr std::size_t kCount = 773;  // deliberately not a round number
  const GlobalAddr a =
      heap.alloc_page_aligned(kCount * sizeof(std::uint64_t), "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(GetParam().kind));
  cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<std::uint64_t>(a, kCount);
    const auto nodes = static_cast<std::size_t>(ctx.num_nodes());
    const auto me = static_cast<std::size_t>(ctx.node());
    for (std::uint64_t iter = 1; iter <= 4; ++iter) {
      ctx.iteration_begin();
      // Interleaved writes: every page multi-writer at > 1 node.
      for (std::size_t i = me; i < kCount; i += nodes) {
        x.set(i, iter * 1000 + i);
      }
      ctx.barrier();
      for (std::size_t i = 0; i < kCount; i += 31) {
        ASSERT_EQ(x.get(i), iter * 1000 + i)
            << "iter " << iter << " index " << i << " nodes "
            << GetParam().nodes;
      }
      ctx.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NodeSweepTest,
    ::testing::Values(NodeSweepCase{ProtocolKind::LmwI, 2},
                      NodeSweepCase{ProtocolKind::LmwI, 16},
                      NodeSweepCase{ProtocolKind::LmwU, 3},
                      NodeSweepCase{ProtocolKind::LmwU, 12},
                      NodeSweepCase{ProtocolKind::BarI, 2},
                      NodeSweepCase{ProtocolKind::BarI, 16},
                      NodeSweepCase{ProtocolKind::BarU, 3},
                      NodeSweepCase{ProtocolKind::BarU, 12},
                      NodeSweepCase{ProtocolKind::BarU, 64},
                      NodeSweepCase{ProtocolKind::ScSw, 5}),
    [](const ::testing::TestParamInfo<NodeSweepCase>& info) {
      std::string name = protocols::to_string(info.param.kind);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_n" + std::to_string(info.param.nodes);
    });

}  // namespace
}  // namespace updsm
