// Golden protocol-trace tests.
//
// With ClusterConfig::trace on, a run records every externally visible
// protocol event in order (see dsm/trace.hpp). Runs are bit-deterministic,
// so these traces are complete behavioural fingerprints: the scenarios
// below pin the exact event sequences of lmw-i and bar-i on a two-node
// producer/consumer program. If a protocol change alters the sequence the
// diff is human-readable -- update the golden only for *intended* changes.
//
// The scenario (3 iterations, 2 pages):
//   epoch A: node 0 writes both pages; barrier;
//   epoch B: node 1 reads one element of each page; barrier.
//
// What to look for in the pinned traces:
//   * bar-i: the loop-entry invalidation of cold replicas, whole-page
//     fetches (1056-byte replies), the migration of page 1 from its
//     initial home (node 1) to its writer at barrier 2, and the home
//     effect (no diffs for node 0's writes after migration).
//   * lmw-i: the twin/diff write-trap cycle, notices invalidating node 1,
//     and diff fetches (24-byte requests, full-page diff replies after
//     squashing) with the apply-time protection dance.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/protocols/factory.hpp"

namespace updsm {
namespace {

std::vector<std::string> run_traced(protocols::ProtocolKind kind,
                                    bool aggregate = false) {
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.page_size = 1024;
  cfg.trace = true;
  // The pinned goldens below predate barrier-time aggregation; they keep
  // exercising the per-page path (and prove it unchanged). The aggregated
  // variant has its own golden.
  cfg.aggregate_flushes = aggregate;
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(256 * 8, "x");  // 2 pages
  dsm::Cluster cluster(cfg, heap, protocols::make_protocol(kind));
  cluster.run([&](dsm::NodeContext& ctx) {
    auto x = ctx.array<double>(a, 256);
    for (int iter = 1; iter <= 3; ++iter) {
      ctx.iteration_begin();
      if (ctx.node() == 0) {
        auto w = x.write_view(0, 256);
        for (std::size_t i = 0; i < 256; ++i) w[i] = iter * 100.0 + i;
      }
      ctx.barrier();
      if (ctx.node() == 1) {
        (void)x.get(0);
        (void)x.get(200);
      }
      ctx.barrier();
    }
  });
  return cluster.runtime().trace()->lines();
}

TEST(TraceGoldenTest, BarIProducerConsumer) {
  const std::vector<std::string> expected{
      // Loop-entry cold-replica invalidation is distributed: each node
      // drops its OWN non-home replicas on its own thread, so node 0's
      // whole-phase lines come first and node 1's single invalidation
      // line follows (node-ordered buffers), instead of one node emitting
      // both lines up front.
      "mprot n0 p1 none",
      "fault w n0 p0",
      "mprot n0 p0 rw",
      "fault w n0 p1",
      "req n0>n1 16B 1056B",
      "mprot n0 p1 r",
      "mprot n0 p1 rw",
      "mprot n1 p0 none",
      "mprot n0 p1 r",
      "flush n0>n1 1032B",
      "mprot n1 p1 rw",
      "mprot n1 p1 r",
      "barrier 0",
      "fault r n1 p0",
      "req n1>n0 16B 1056B",
      "mprot n1 p0 r",
      "mprot n0 p0 r",
      "mprot n1 p0 none",
      "barrier 1",
      "fault w n0 p0",
      "mprot n0 p0 rw",
      "fault w n0 p1",
      "mprot n0 p1 rw",
      "mprot n0 p0 r",
      "mprot n0 p1 r",
      "flush n0>n1 1032B",
      "mprot n1 p1 rw",
      "mprot n1 p1 r",
      "req n0>n1 16B 1056B",
      "mprot n0 p1 r",
      "mprot n1 p1 none",
      "barrier 2",
      "fault r n1 p0",
      "req n1>n0 16B 1056B",
      "mprot n1 p0 r",
      "fault r n1 p1",
      "req n1>n0 16B 1056B",
      "mprot n1 p1 r",
      "barrier 3",
      "fault w n0 p0",
      "mprot n0 p0 rw",
      "fault w n0 p1",
      "mprot n0 p1 rw",
      "mprot n0 p0 r",
      "mprot n0 p1 r",
      "mprot n1 p0 none",
      "mprot n1 p1 none",
      "barrier 4",
      "fault r n1 p0",
      "req n1>n0 16B 1056B",
      "mprot n1 p0 r",
      "fault r n1 p1",
      "req n1>n0 16B 1056B",
      "mprot n1 p1 r",
      "barrier 5",
  };
  EXPECT_EQ(run_traced(protocols::ProtocolKind::BarI), expected);
}

// The same scenario with barrier-time aggregation on (the default): the
// event sequence is identical except that each per-page "flush" becomes a
// sealed "flushbatch" -- here 1 record of 1072 B (16 B batch header + 24 B
// record header + one 8 B run + 1024 B payload), where the per-page line
// carried 1032 B (run + payload). Everything else -- faults, fetches,
// protections, migration -- is untouched, which is the bit-exactness
// argument in trace form.
TEST(TraceGoldenTest, BarIProducerConsumerAggregated) {
  const std::vector<std::string> expected{
      "mprot n0 p1 none",
      "fault w n0 p0",
      "mprot n0 p0 rw",
      "fault w n0 p1",
      "req n0>n1 16B 1056B",
      "mprot n0 p1 r",
      "mprot n0 p1 rw",
      "mprot n1 p0 none",
      "mprot n0 p1 r",
      "flushbatch n0>n1 1r 1072B",
      "mprot n1 p1 rw",
      "mprot n1 p1 r",
      "barrier 0",
      "fault r n1 p0",
      "req n1>n0 16B 1056B",
      "mprot n1 p0 r",
      "mprot n0 p0 r",
      "mprot n1 p0 none",
      "barrier 1",
      "fault w n0 p0",
      "mprot n0 p0 rw",
      "fault w n0 p1",
      "mprot n0 p1 rw",
      "mprot n0 p0 r",
      "mprot n0 p1 r",
      "flushbatch n0>n1 1r 1072B",
      "mprot n1 p1 rw",
      "mprot n1 p1 r",
      "req n0>n1 16B 1056B",
      "mprot n0 p1 r",
      "mprot n1 p1 none",
      "barrier 2",
      "fault r n1 p0",
      "req n1>n0 16B 1056B",
      "mprot n1 p0 r",
      "fault r n1 p1",
      "req n1>n0 16B 1056B",
      "mprot n1 p1 r",
      "barrier 3",
      "fault w n0 p0",
      "mprot n0 p0 rw",
      "fault w n0 p1",
      "mprot n0 p1 rw",
      "mprot n0 p0 r",
      "mprot n0 p1 r",
      "mprot n1 p0 none",
      "mprot n1 p1 none",
      "barrier 4",
      "fault r n1 p0",
      "req n1>n0 16B 1056B",
      "mprot n1 p0 r",
      "fault r n1 p1",
      "req n1>n0 16B 1056B",
      "mprot n1 p1 r",
      "barrier 5",
  };
  EXPECT_EQ(run_traced(protocols::ProtocolKind::BarI, /*aggregate=*/true),
            expected);
}

TEST(TraceGoldenTest, LmwIProducerConsumer) {
  const std::vector<std::string> expected{
      "fault w n0 p0",
      "mprot n0 p0 rw",
      "fault w n0 p1",
      "mprot n0 p1 rw",
      "mprot n0 p0 r",
      "mprot n0 p1 r",
      "mprot n0 p0 rw",
      "mprot n0 p1 rw",
      "mprot n1 p0 none",
      "mprot n1 p1 none",
      "barrier 0",
      "fault r n1 p0",
      "req n1>n0 16B 1056B",
      "mprot n1 p0 r",
      "fault r n1 p1",
      "req n1>n0 16B 1056B",
      "mprot n1 p1 r",
      "mprot n0 p0 r",
      "mprot n0 p1 r",
      "barrier 1",
      "fault w n0 p0",
      "mprot n0 p0 rw",
      "fault w n0 p1",
      "mprot n0 p1 rw",
      "mprot n0 p0 r",
      "mprot n0 p1 r",
      "mprot n1 p0 none",
      "mprot n1 p1 none",
      "barrier 2",
      "fault r n1 p0",
      "req n1>n0 24B 1040B",
      "mprot n1 p0 rw",
      "mprot n1 p0 r",
      "fault r n1 p1",
      "req n1>n0 24B 1040B",
      "mprot n1 p1 rw",
      "mprot n1 p1 r",
      "barrier 3",
      "fault w n0 p0",
      "mprot n0 p0 rw",
      "fault w n0 p1",
      "mprot n0 p1 rw",
      "mprot n0 p0 r",
      "mprot n0 p1 r",
      "mprot n1 p0 none",
      "mprot n1 p1 none",
      "barrier 4",
      "fault r n1 p0",
      "req n1>n0 24B 1040B",
      "mprot n1 p0 rw",
      "mprot n1 p0 r",
      "fault r n1 p1",
      "req n1>n0 24B 1040B",
      "mprot n1 p1 rw",
      "mprot n1 p1 r",
      "barrier 5",
  };
  EXPECT_EQ(run_traced(protocols::ProtocolKind::LmwI), expected);
}

// Satellite contract: flush-class trace lines carry enough to be diffed
// against NetworkStats. Summing the per-line bytes (plus one wire header
// per line) and record counts must reproduce the Flush/FlushBatch counters
// exactly, on both paths, including drops.
TEST(TraceTest, FlushLinesReconcileWithNetworkStats) {
  for (const bool aggregate : {false, true}) {
    dsm::ClusterConfig cfg;
    cfg.num_nodes = 2;
    cfg.page_size = 1024;
    cfg.trace = true;
    cfg.aggregate_flushes = aggregate;
    cfg.costs.net.flush_drop_rate = 0.3;  // exercise the drop suffix too
    mem::SharedHeap heap(cfg.page_size);
    const GlobalAddr a = heap.alloc_page_aligned(256 * 8, "x");
    dsm::Cluster cluster(
        cfg, heap, protocols::make_protocol(protocols::ProtocolKind::BarU));
    cluster.run([&](dsm::NodeContext& ctx) {
      auto x = ctx.array<double>(a, 256);
      for (int iter = 1; iter <= 4; ++iter) {
        ctx.iteration_begin();
        if (ctx.node() == 0) {
          auto w = x.write_view(0, 256);
          for (std::size_t i = 0; i < 256; ++i) w[i] = iter * 100.0 + i;
        }
        ctx.barrier();
        (void)x.get(0);
        ctx.barrier();
      }
    });
    std::uint64_t lines = 0, bytes = 0, records = 0, drops = 0;
    const std::string prefix = aggregate ? "flushbatch n" : "flush n";
    for (const std::string& line : cluster.runtime().trace()->lines()) {
      if (line.compare(0, prefix.size(), prefix) != 0) continue;
      ++lines;
      std::istringstream is(line);
      std::string tok;
      is >> tok >> tok;  // mnemonic, "nF>nT"
      if (aggregate) {
        is >> tok;
        ASSERT_EQ(tok.back(), 'r') << line;
        records += std::stoull(tok);
      } else {
        records += 1;
      }
      is >> tok;
      ASSERT_EQ(tok.back(), 'B') << line;
      bytes += std::stoull(tok);
      if (is >> tok) {
        ASSERT_EQ(tok, "drop") << line;
        ++drops;
      }
    }
    const auto kind = aggregate ? sim::MsgKind::FlushBatch : sim::MsgKind::Flush;
    const sim::NetworkStats& net = cluster.runtime().net().stats();
    ASSERT_GT(lines, 0u);
    EXPECT_EQ(lines, net.of(kind).count);
    EXPECT_EQ(drops, net.of(kind).dropped);
    EXPECT_EQ(bytes + lines * cfg.costs.net.header_bytes, net.of(kind).bytes);
    if (aggregate) {
      EXPECT_EQ(records, net.of(kind).records);
      EXPECT_EQ(records, cluster.runtime().counters().flush_batch_records);
      EXPECT_EQ(lines, cluster.runtime().counters().flush_batches);
    }
  }
}

TEST(TraceTest, DisabledByDefault) {
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 1;
  mem::SharedHeap heap(cfg.page_size);
  heap.alloc_page_aligned(64, "x");
  dsm::Cluster cluster(cfg, heap,
                       protocols::make_protocol(protocols::ProtocolKind::Null));
  EXPECT_EQ(cluster.runtime().trace(), nullptr);
}

TEST(TraceTest, StrJoinsLines) {
  dsm::TraceLog log;
  log.emit("a");
  log.emit("b c");
  EXPECT_EQ(log.str(), "a\nb c\n");
  EXPECT_EQ(log.size(), 2u);
  log.clear();
  EXPECT_TRUE(log.lines().empty());
}

}  // namespace
}  // namespace updsm
