// Staleness-bound property: under the async protocols no sweep ever reads
// a cached page more than `staleness_bound` publishes older than its home
// version. The protocol journals every version-moving event (Publish,
// Fetch, Apply, Invalidate) plus a StepBegin marker at the exact point a
// node's read state for the next sweep is frozen (the end of its staleness
// refresh -- versions cannot advance again until the node yields). This
// test replays that journal against an independent std::map reference
// model of (home version, per-node cached version) and asserts the bound
// at every StepBegin, across both async protocols and a battery of seeded
// fault plans -- the exact adversary that historically broke the bound
// (dropped pushes leaving a writer's foreign bytes stale while it adopted
// the newest version number).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "updsm/apps/registry.hpp"
#include "updsm/dsm/cluster.hpp"
#include "updsm/mem/shared_heap.hpp"
#include "updsm/protocols/async_update.hpp"
#include "updsm/sim/fault_plan.hpp"

namespace updsm {
namespace {

using protocols::AsyncMode;
using protocols::AsyncProtocol;

struct JournalRun {
  std::vector<AsyncProtocol::JournalEntry> journal;
  /// home node per page, captured before the cluster is torn down.
  std::vector<std::uint32_t> homes;
  std::uint64_t steps = 0;
};

JournalRun run_and_capture(AsyncMode mode, const std::string& plan,
                           std::uint64_t seed, int staleness_bound) {
  apps::AppParams params;
  params.scale = 0.1;
  auto app = apps::make_app("jacobi-async", params);

  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.gang = sim::GangMode::Async;
  cfg.staleness_bound = staleness_bound;
  cfg.trace = true;  // journalling rides the trace switch
  if (!plan.empty()) {
    cfg.faults = sim::FaultSpec::parse(plan);
    cfg.fault_seed = seed;
  }

  mem::SharedHeap heap(cfg.page_size);
  app->allocate(heap);

  auto protocol = std::make_unique<AsyncProtocol>(mode);
  AsyncProtocol* raw = protocol.get();
  dsm::Cluster cluster(cfg, heap, std::move(protocol));
  cluster.run([&](dsm::NodeContext& ctx) { app->run(ctx); });

  EXPECT_EQ(app->result_checksum(), 1.0)
      << "run did not converge; the property below would be vacuous";

  JournalRun out;
  out.journal = raw->journal();
  out.steps = cluster.runtime().measured_counters().async_steps.load();
  const std::uint32_t pages = cluster.runtime().num_pages();
  out.homes.reserve(pages);
  for (std::uint32_t p = 0; p < pages; ++p) {
    out.homes.push_back(raw->home(PageId{p}).value());
  }
  return out;
}

/// Replays the journal against a reference model and asserts the bound at
/// every StepBegin. Returns the number of StepBegin checks performed.
std::uint64_t replay_and_check(const JournalRun& run, int bound,
                               const std::string& ctx) {
  using Entry = AsyncProtocol::JournalEntry;
  // Reference model, deliberately in different containers than the
  // protocol's flat vectors: page -> home version, and (node, page) ->
  // cached version for pages the node holds mapped (absent = Protect::None).
  std::map<std::uint32_t, std::uint64_t> home_version;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> cached;
  // Initial state: every node starts with every page mapped at version 0.
  for (std::uint32_t p = 0; p < run.homes.size(); ++p) {
    for (std::uint32_t n = 0; n < 4; ++n) cached[{n, p}] = 0;
  }

  std::uint64_t checks = 0;
  for (const Entry& e : run.journal) {
    switch (e.kind) {
      case Entry::Kind::Publish: {
        home_version[e.page] = e.version;
        // Adoption rule: the home always has current bytes; a non-home
        // writer adopts the new version only if its copy was current
        // (missed pushes leave its foreign bytes at the old version, and
        // hiding that would freeze its halo forever).
        auto it = cached.find({e.node, e.page});
        if (run.homes[e.page] == e.node ||
            (it != cached.end() && it->second + 1 == e.version)) {
          cached[{e.node, e.page}] = e.version;
        }
        break;
      }
      case Entry::Kind::Fetch:
      case Entry::Kind::Apply:
        cached[{e.node, e.page}] = e.version;
        break;
      case Entry::Kind::Invalidate:
        cached.erase({e.node, e.page});
        break;
      case Entry::Kind::StepBegin: {
        for (const auto& [key, version] : cached) {
          if (key.first != e.node) continue;
          if (run.homes[key.second] == e.node) continue;  // home is exact
          const auto hv = home_version.count(key.second)
                              ? home_version.at(key.second)
                              : 0u;
          EXPECT_GE(hv, version) << ctx << ": cached version ran ahead of "
                                 << "home for page " << key.second;
          EXPECT_LE(hv - version, static_cast<std::uint64_t>(bound))
              << ctx << ": node " << e.node << " entered a sweep with page "
              << key.second << " stale by " << (hv - version)
              << " publishes (bound " << bound << ")";
          ++checks;
        }
        break;
      }
    }
  }
  return checks;
}

TEST(StalenessPropertyTest, CleanRunsObeyTheBound) {
  for (const AsyncMode mode : {AsyncMode::Update, AsyncMode::Invalidate}) {
    const int bound = 2;
    const std::string ctx = std::string("clean ") + std::string(
        protocols::to_string(mode));
    const JournalRun run = run_and_capture(mode, "", 0, bound);
    ASSERT_FALSE(run.journal.empty()) << ctx;
    EXPECT_GT(run.steps, 0u) << ctx;
    EXPECT_GT(replay_and_check(run, bound, ctx), 0u) << ctx;
  }
}

// The adversarial case: dropped pushes age cached copies, stalls starve
// nodes of turns, and the refresh must still fence every sweep within the
// bound -- for several bounds, both modes, and several seeds.
TEST(StalenessPropertyTest, FaultPlansObeyTheBound) {
  const char* kPlans[] = {
      "drop=0.3",
      "kind=flushbatch,drop=0.5",
      "drop=0.2,dup=0.05,delay=0.1,delay_us=300",
      "from=0,to=1,drop=0.4;node=1,stall=0.4,stall_us=2000;drop=0.1",
  };
  for (const AsyncMode mode : {AsyncMode::Update, AsyncMode::Invalidate}) {
    for (const int bound : {0, 2, 6}) {
      int i = 0;
      for (const char* plan : kPlans) {
        const std::uint64_t seed = 100u + static_cast<std::uint64_t>(i++);
        const std::string ctx = std::string(protocols::to_string(mode)) +
                                " bound " + std::to_string(bound) + " [" +
                                plan + "]";
        const JournalRun run = run_and_capture(mode, plan, seed, bound);
        ASSERT_FALSE(run.journal.empty()) << ctx;
        EXPECT_GT(replay_and_check(run, bound, ctx), 0u) << ctx;
      }
    }
  }
}

// The journal itself is deterministic: two identical runs produce
// identical event sequences (the replay model would hide a nondeterminism
// that happened to obey the bound).
TEST(StalenessPropertyTest, JournalIsDeterministic) {
  const JournalRun a =
      run_and_capture(AsyncMode::Update, "drop=0.3", 55, 2);
  const JournalRun b =
      run_and_capture(AsyncMode::Update, "drop=0.3", 55, 2);
  ASSERT_EQ(a.journal.size(), b.journal.size());
  for (std::size_t i = 0; i < a.journal.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a.journal[i].kind),
              static_cast<int>(b.journal[i].kind))
        << "entry " << i;
    EXPECT_EQ(a.journal[i].node, b.journal[i].node) << "entry " << i;
    EXPECT_EQ(a.journal[i].page, b.journal[i].page) << "entry " << i;
    EXPECT_EQ(a.journal[i].version, b.journal[i].version) << "entry " << i;
  }
}

}  // namespace
}  // namespace updsm
