// Unit tests for the sim/ layer: virtual clocks, the calibrated cost model
// (paper §3.2 micro-benchmarks), the OS stress model and the network.
#include <gtest/gtest.h>

#include "updsm/sim/clock.hpp"
#include "updsm/sim/cost_model.hpp"
#include "updsm/sim/network.hpp"
#include "updsm/sim/os_model.hpp"

namespace updsm::sim {
namespace {

// --- VirtualClock -----------------------------------------------------------

TEST(ClockTest, AdvanceAccumulatesByCategory) {
  VirtualClock clock;
  clock.advance(TimeCat::App, usec(10));
  clock.advance(TimeCat::Os, usec(5));
  clock.advance(TimeCat::App, usec(2));
  EXPECT_EQ(clock.now(), usec(17));
  EXPECT_EQ(clock.in(TimeCat::App), usec(12));
  EXPECT_EQ(clock.in(TimeCat::Os), usec(5));
  EXPECT_EQ(clock.in(TimeCat::Wait), 0);
}

TEST(ClockTest, AdvanceToOnlyMovesForward) {
  VirtualClock clock;
  clock.advance(TimeCat::App, usec(100));
  clock.advance_to(TimeCat::Wait, usec(50));  // in the past: no-op
  EXPECT_EQ(clock.now(), usec(100));
  EXPECT_EQ(clock.in(TimeCat::Wait), 0);
  clock.advance_to(TimeCat::Wait, usec(130));
  EXPECT_EQ(clock.now(), usec(130));
  EXPECT_EQ(clock.in(TimeCat::Wait), usec(30));
}

TEST(ClockTest, NegativeAdvanceIsABug) {
  VirtualClock clock;
  EXPECT_THROW(clock.advance(TimeCat::App, -1), InternalError);
}

TEST(ClockTest, ResetBreakdownKeepsAbsoluteTime) {
  VirtualClock clock;
  clock.advance(TimeCat::App, usec(42));
  clock.reset_breakdown();
  EXPECT_EQ(clock.now(), usec(42));
  EXPECT_EQ(clock.in(TimeCat::App), 0);
}

// --- CostModel calibration (paper section 3.2) -------------------------------

TEST(CostModelTest, RpcRoundTripNear160us) {
  const CostModel model = CostModel::sp2_defaults();
  const double us = to_usec(model.rpc_roundtrip());
  EXPECT_NEAR(us, 160.0, 10.0) << "paper: simple RPCs require 160 usecs";
}

TEST(CostModelTest, RemoteFaultCompositeNear939us) {
  // Recompose the bar-style remote page fault from its parts, exactly as
  // the protocol charges it: segv + request/reply round trip carrying a
  // whole 8 KB page + install copy + fault-path VM extra + mprotect.
  const CostModel m = CostModel::sp2_defaults();
  const std::uint32_t page = 8192;
  const SimTime serve = static_cast<SimTime>(m.dsm.copy_per_byte_ns * page);
  const SimTime roundtrip = m.net.send_trap + m.net.wire_time(16) +
                            m.net.recv_trap + m.dsm.handler_fixed + serve +
                            m.net.send_trap + m.net.wire_time(page + 32) +
                            m.net.recv_trap;
  const SimTime install = static_cast<SimTime>(m.dsm.copy_per_byte_ns * page);
  const SimTime total = m.os.segv + roundtrip + install +
                        m.os.fault_service_extra + m.os.mprotect_base;
  EXPECT_NEAR(to_usec(total), 939.0, 80.0)
      << "paper: remote page faults require 939 usecs";
}

TEST(CostModelTest, BandwidthNear40MBps) {
  const CostModel m = CostModel::sp2_defaults();
  // 0.025 us per byte == 40 MB/s sustained payload rate.
  const SimTime one_mb = m.net.wire_time(1 << 20) - m.net.wire_time(0);
  const double mb_per_s = 1.0 / to_sec(one_mb);
  EXPECT_NEAR(mb_per_s, 40.0, 2.0);
}

// --- OsModel ------------------------------------------------------------------

TEST(OsModelTest, SmallAddressSpacesAreNotStressed) {
  const OsCosts costs;
  OsModel os(costs, /*shared_pages=*/16);
  EXPECT_FALSE(os.stressed());
  for (std::uint32_t p = 0; p < 16; ++p) {
    EXPECT_EQ(os.mprotect_cost(PageId{p}), costs.mprotect_base);
  }
}

TEST(OsModelTest, StressIsLocationDependentAndDeterministic) {
  const OsCosts costs;
  OsModel a(costs, /*shared_pages=*/512);
  OsModel b(costs, /*shared_pages=*/512);
  ASSERT_TRUE(a.stressed());
  int slow = 0;
  for (std::uint32_t p = 0; p < 512; ++p) {
    EXPECT_EQ(a.slow_page(PageId{p}), b.slow_page(PageId{p}))
        << "slow set must be deterministic";
    if (a.slow_page(PageId{p})) {
      ++slow;
      EXPECT_EQ(a.mprotect_cost(PageId{p}),
                static_cast<SimTime>(costs.mprotect_base *
                                     costs.stress_multiplier));
    }
  }
  // ~slow_page_fraction of pages should be slow (paper: "occasionally an
  // order of magnitude").
  EXPECT_NEAR(static_cast<double>(slow) / 512.0, costs.slow_page_fraction,
              0.08);
}

TEST(OsModelTest, CountsEvents) {
  OsModel os(OsCosts{}, 16);
  (void)os.segv_cost();
  (void)os.segv_cost();
  (void)os.mprotect_cost(PageId{0});
  os.count_send();
  EXPECT_EQ(os.counters().segvs, 2u);
  EXPECT_EQ(os.counters().mprotects, 1u);
  EXPECT_EQ(os.counters().sends, 1u);
}

// --- Network -------------------------------------------------------------------

TEST(NetworkTest, RecordsByKindAndComputesWireTime) {
  Network net(NetworkCosts{}, /*drop_seed=*/1);
  const SimTime t1 = net.record(MsgKind::DataRequest, NodeId{0}, NodeId{1}, 16);
  const SimTime t2 =
      net.record(MsgKind::DataReply, NodeId{1}, NodeId{0}, 8192);
  EXPECT_GT(t2, t1);  // payload costs wire time
  EXPECT_EQ(net.stats().of(MsgKind::DataRequest).count, 1u);
  EXPECT_EQ(net.stats().of(MsgKind::DataReply).count, 1u);
  EXPECT_GT(net.stats().of(MsgKind::DataReply).bytes, 8192u);
}

TEST(NetworkTest, SelfSendsAreFreeAndUnrecorded) {
  Network net(NetworkCosts{}, 1);
  EXPECT_EQ(net.record(MsgKind::Flush, NodeId{2}, NodeId{2}, 4096), 0);
  EXPECT_EQ(net.stats().total_one_way_messages(), 0u);
}

TEST(NetworkTest, TableMessagesExcludeReplies) {
  Network net(NetworkCosts{}, 1);
  (void)net.record(MsgKind::DataRequest, NodeId{0}, NodeId{1}, 16);
  (void)net.record(MsgKind::DataReply, NodeId{1}, NodeId{0}, 100);
  (void)net.record(MsgKind::Flush, NodeId{0}, NodeId{2}, 64);
  (void)net.record(MsgKind::SyncArrive, NodeId{1}, NodeId{0}, 8);
  (void)net.record(MsgKind::SyncRelease, NodeId{0}, NodeId{1}, 8);
  EXPECT_EQ(net.stats().table_messages(), 4u);
  EXPECT_EQ(net.stats().total_one_way_messages(), 5u);
}

TEST(NetworkTest, FlushDropsAreDeterministicPerSeed) {
  NetworkCosts costs;
  costs.flush_drop_rate = 0.5;
  Network a(costs, 42);
  Network b(costs, 42);
  Network c(costs, 43);
  int diff = 0;
  for (int i = 0; i < 256; ++i) {
    const bool da = a.flush_delivered();
    EXPECT_EQ(da, b.flush_delivered());
    if (da != c.flush_delivered()) ++diff;
  }
  EXPECT_GT(diff, 0) << "different seeds should differ somewhere";
  EXPECT_NEAR(static_cast<double>(a.dropped_flushes()) / 256.0, 0.5, 0.15);
}

TEST(NetworkTest, ZeroDropRateNeverDrops) {
  Network net(NetworkCosts{}, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(net.flush_delivered());
  EXPECT_EQ(net.dropped_flushes(), 0u);
}

TEST(NetworkTest, ResetClearsStats) {
  Network net(NetworkCosts{}, 1);
  (void)net.record(MsgKind::Flush, NodeId{0}, NodeId{1}, 10);
  net.reset_stats();
  EXPECT_EQ(net.stats().total_one_way_messages(), 0u);
  EXPECT_EQ(net.stats().total_bytes(), 0u);
}

}  // namespace
}  // namespace updsm::sim
