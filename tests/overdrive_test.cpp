// bar-s / bar-m overdrive behaviour (paper §4.1 and §5, Figure 5).
//
// Overdrive replaces segv-based write trapping with history-based
// prediction. These tests verify: correct results under a stable iterative
// pattern; engagement timing; the elimination of segvs (bar-s) and of all
// mprotects (bar-m) in steady state; the Strict / Revert fallback on
// divergent patterns; and the audit's detection of bar-m's silent
// divergence.
#include <gtest/gtest.h>

#include <vector>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/protocols/bar.hpp"
#include "updsm/protocols/factory.hpp"

namespace updsm {
namespace {

using dsm::Cluster;
using dsm::ClusterConfig;
using dsm::NodeContext;
using dsm::OverdriveFallback;
using protocols::BarMode;
using protocols::BarProtocol;
using protocols::ProtocolKind;

constexpr std::size_t kCount = 1024;

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.page_size = 1024;
  return cfg;
}

/// A stable two-epoch iteration: phase 1 writes the node's block of `a`
/// and reads neighbours of `b`; phase 2 the reverse (Figure 5's x/y shape).
void stable_app(NodeContext& ctx, GlobalAddr a_base, GlobalAddr b_base,
                int iterations) {
  auto a = ctx.array<std::uint64_t>(a_base, kCount);
  auto b = ctx.array<std::uint64_t>(b_base, kCount);
  const auto nodes = static_cast<std::size_t>(ctx.num_nodes());
  const auto me = static_cast<std::size_t>(ctx.node());
  const std::size_t chunk = kCount / nodes;
  const std::size_t lo = me * chunk;
  const std::size_t hi = lo + chunk;
  for (int iter = 1; iter <= iterations; ++iter) {
    ctx.iteration_begin();
    {
      auto w = a.write_view(lo, hi);
      for (std::size_t i = 0; i < chunk; ++i) {
        w[i] = static_cast<std::uint64_t>(iter) * 7 + lo + i;
      }
    }
    ctx.barrier();
    {
      const std::size_t peer = (me + 1) % nodes;
      auto r = a.read_view(peer * chunk, peer * chunk + chunk);
      auto w = b.write_view(lo, hi);
      for (std::size_t i = 0; i < chunk; ++i) {
        ASSERT_EQ(r[i], static_cast<std::uint64_t>(iter) * 7 + peer * chunk + i);
        w[i] = r[i] * 2;
      }
    }
    ctx.barrier();
    {
      // b[k's block] holds a[(k+1)'s block] doubled; we read our left
      // neighbour's block of b, which mirrors our own block of a.
      const std::size_t peer = (me + nodes - 1) % nodes;
      auto r = b.read_view(peer * chunk, peer * chunk + chunk);
      for (std::size_t i = 0; i < chunk; ++i) {
        ASSERT_EQ(r[i],
                  (static_cast<std::uint64_t>(iter) * 7 + me * chunk + i) * 2);
      }
    }
    ctx.barrier();
  }
}

class OverdriveTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(OverdriveTest, StablePatternRunsCorrectlyAndEngages) {
  const ClusterConfig cfg = small_config();
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(kCount * 8, "a");
  const GlobalAddr b = heap.alloc_page_aligned(kCount * 8, "b");

  auto protocol = protocols::make_protocol(GetParam());
  auto* bar = dynamic_cast<BarProtocol*>(protocol.get());
  ASSERT_NE(bar, nullptr);
  Cluster cluster(cfg, heap, std::move(protocol));
  cluster.run([&](NodeContext& ctx) { stable_app(ctx, a, b, 10); });

  EXPECT_TRUE(bar->overdrive_active());
  EXPECT_EQ(bar->overdrive_period(), 3u);  // three barriers per iteration
  EXPECT_EQ(cluster.runtime().counters().overdrive_mispredictions, 0u);
}

TEST_P(OverdriveTest, SteadyStateEliminatesTraps) {
  const ClusterConfig cfg = small_config();
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(kCount * 8, "a");
  const GlobalAddr b = heap.alloc_page_aligned(kCount * 8, "b");

  auto protocol = protocols::make_protocol(GetParam());
  auto* bar = dynamic_cast<BarProtocol*>(protocol.get());
  Cluster cluster(cfg, heap, std::move(protocol));

  // Snapshot trap counters once overdrive is engaged (after the learning
  // iterations), then check the deltas over the steady-state tail.
  std::vector<std::uint64_t> segvs_mark(4, ~0ULL);
  std::vector<std::uint64_t> mprotects_mark(4, ~0ULL);
  cluster.run([&](NodeContext& ctx) {
    auto run_iters = [&](int from, int to) {
      auto aa = ctx.array<std::uint64_t>(a, kCount);
      auto bb = ctx.array<std::uint64_t>(b, kCount);
      const auto nodes = static_cast<std::size_t>(ctx.num_nodes());
      const auto me = static_cast<std::size_t>(ctx.node());
      const std::size_t chunk = kCount / nodes;
      for (int iter = from; iter <= to; ++iter) {
        ctx.iteration_begin();
        {
          auto w = aa.write_view(me * chunk, me * chunk + chunk);
          for (std::size_t i = 0; i < chunk; ++i) w[i] = iter + i;
        }
        ctx.barrier();
        {
          const std::size_t peer = (me + 1) % nodes;
          auto r = aa.read_view(peer * chunk, peer * chunk + chunk);
          auto w = bb.write_view(me * chunk, me * chunk + chunk);
          for (std::size_t i = 0; i < chunk; ++i) w[i] = r[i] * 3;
        }
        ctx.barrier();
      }
    };
    run_iters(1, 4);  // learning + first overdrive iteration
    // Mark per-node OS counters here (single-threaded inside the gang).
    const auto& os = cluster.runtime().os(ctx.id()).counters();
    segvs_mark[static_cast<std::size_t>(ctx.node())] = os.segvs;
    mprotects_mark[static_cast<std::size_t>(ctx.node())] = os.mprotects;
    run_iters(5, 10);  // steady state
  });

  ASSERT_TRUE(bar->overdrive_active());
  for (int i = 0; i < 4; ++i) {
    const NodeId n{static_cast<std::uint32_t>(i)};
    const auto& os = cluster.runtime().os(n).counters();
    // No write-trapping segvs in steady state for either overdrive mode.
    EXPECT_EQ(os.segvs, segvs_mark[static_cast<std::size_t>(i)])
        << "node " << i << " took segvs in overdrive steady state";
    if (GetParam() == ProtocolKind::BarM) {
      EXPECT_EQ(os.mprotects, mprotects_mark[static_cast<std::size_t>(i)])
          << "node " << i << " issued mprotects under bar-m steady state";
    } else {
      // bar-s still cycles write protection every epoch.
      EXPECT_GT(os.mprotects, mprotects_mark[static_cast<std::size_t>(i)]);
    }
  }
}

TEST_P(OverdriveTest, StrictModeRejectsDivergentPattern) {
  ClusterConfig cfg = small_config();
  cfg.overdrive_fallback = OverdriveFallback::Strict;
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(kCount * 8, "a");

  Cluster cluster(cfg, heap, protocols::make_protocol(GetParam()));
  EXPECT_THROW(
      cluster.run([&](NodeContext& ctx) {
        auto arr = ctx.array<std::uint64_t>(a, kCount);
        const auto nodes = static_cast<std::size_t>(ctx.num_nodes());
        const auto me = static_cast<std::size_t>(ctx.node());
        const std::size_t chunk = kCount / nodes;
        for (int iter = 1; iter <= 8; ++iter) {
          ctx.iteration_begin();
          auto w = arr.write_view(me * chunk, me * chunk + chunk);
          for (std::size_t i = 0; i < chunk; ++i) w[i] = iter;
          // Phase change at iteration 6: write a rotated block. The write
          // is unpredicted; bar-s traps it, bar-m may trap it only if the
          // target page was never write-enabled.
          if (iter >= 6) {
            const std::size_t other = ((me + 1) % nodes) * chunk;
            arr.set(other, 99);
          }
          ctx.barrier();
        }
      }),
      ProtocolError);
}

TEST(OverdriveRevertTest, BarSRevertHandlesDivergenceCorrectly) {
  ClusterConfig cfg = small_config();
  cfg.overdrive_fallback = OverdriveFallback::Revert;
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(kCount * 8, "a");

  // A separate flag word that no regular iteration ever writes: writing it
  // during overdrive is guaranteed unpredicted.
  const GlobalAddr flag = heap.alloc_page_aligned(8, "flag");

  auto protocol = protocols::make_protocol(ProtocolKind::BarS);
  Cluster cluster(cfg, heap, std::move(protocol));
  cluster.run([&](NodeContext& ctx) {
    auto arr = ctx.array<std::uint64_t>(a, kCount);
    auto flag_word = ctx.array<std::uint64_t>(flag, 1);
    const auto nodes = static_cast<std::size_t>(ctx.num_nodes());
    const auto me = static_cast<std::size_t>(ctx.node());
    const std::size_t chunk = kCount / nodes;
    for (int iter = 1; iter <= 8; ++iter) {
      ctx.iteration_begin();
      {
        auto w = arr.write_view(me * chunk, me * chunk + chunk);
        for (std::size_t i = 0; i < chunk; ++i) w[i] = iter * 1000 + i;
      }
      // Node 0 makes one unpredicted write at iteration 7.
      if (iter == 7 && me == 0) {
        flag_word.set(0, 424242);
      }
      ctx.barrier();
      if (iter == 7) {
        ASSERT_EQ(flag_word.get(0), 424242u) << "node " << me;
      }
      ctx.barrier();
    }
  });
  EXPECT_GE(cluster.runtime().counters().overdrive_mispredictions, 1u);
}

TEST(OverdriveAuditTest, BarMAuditDetectsSilentDivergence) {
  // bar-m leaves predicted pages writable: an unpredicted write to such a
  // page is silently missed ("bar-m is not guaranteed to maintain
  // consistency", §5). The test-only audit must catch it.
  ClusterConfig cfg = small_config();
  cfg.overdrive_fallback = OverdriveFallback::Revert;
  cfg.overdrive_audit = true;
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(kCount * 8, "a");
  const GlobalAddr b = heap.alloc_page_aligned(kCount * 8, "b");

  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::BarM));
  EXPECT_THROW(
      cluster.run([&](NodeContext& ctx) {
        auto aa = ctx.array<std::uint64_t>(a, kCount);
        auto bb = ctx.array<std::uint64_t>(b, kCount);
        const auto nodes = static_cast<std::size_t>(ctx.num_nodes());
        const auto me = static_cast<std::size_t>(ctx.node());
        const std::size_t chunk = kCount / nodes;
        for (int iter = 1; iter <= 8; ++iter) {
          ctx.iteration_begin();
          // Epoch 1 writes a[me]; epoch 2 reads a[peer] (so `a` is shared
          // and stays in normal coherence, not home-private) and writes
          // b[me].
          {
            auto w = aa.write_view(me * chunk, me * chunk + chunk);
            for (std::size_t i = 0; i < chunk; ++i) w[i] = iter;
          }
          ctx.barrier();
          {
            const std::size_t peer = (me + 1) % nodes;
            auto r = aa.read_view(peer * chunk, peer * chunk + chunk);
            auto w = bb.write_view(me * chunk, me * chunk + chunk);
            for (std::size_t i = 0; i < chunk; ++i) w[i] = r[i] * 2;
            // Divergence: at iteration 6, write a[me] again during epoch
            // 2. The page is writable (predicted for epoch 1), so no trap
            // fires and the peer never receives the modification; only
            // the audit can see it.
            if (iter == 6) {
              auto wa = aa.write_view(me * chunk, me * chunk + 1);
              wa[0] = 777;
            }
          }
          ctx.barrier();
        }
      }),
      ProtocolError);
}

INSTANTIATE_TEST_SUITE_P(
    OverdriveModes, OverdriveTest,
    ::testing::Values(ProtocolKind::BarS, ProtocolKind::BarM),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      return info.param == ProtocolKind::BarS ? "bar_s" : "bar_m";
    });

}  // namespace
}  // namespace updsm
