// Protocol correctness matrix on small synthetic sharing patterns.
//
// Every protocol must make shared memory behave identically to sequential
// execution for data-race-free, barrier-synchronized programs. These tests
// exercise the canonical patterns the paper's applications are built from:
// producer/consumer, multi-writer false sharing, migratory data, rotating
// producers, and reductions -- each validated element-by-element.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/protocols/factory.hpp"

namespace updsm {
namespace {

using dsm::Cluster;
using dsm::ClusterConfig;
using dsm::NodeContext;
using protocols::ProtocolKind;

class ProtocolMatrixTest : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  ClusterConfig config() const {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.page_size = 1024;  // small pages keep the tests fast
    return cfg;
  }
};

TEST_P(ProtocolMatrixTest, ProducerConsumer) {
  const ClusterConfig cfg = config();
  mem::SharedHeap heap(cfg.page_size);
  constexpr std::size_t kCount = 1000;  // spans several pages
  const GlobalAddr base =
      heap.alloc_page_aligned(kCount * sizeof(std::uint64_t), "data");

  Cluster cluster(cfg, heap, protocols::make_protocol(GetParam()));
  cluster.run([&](NodeContext& ctx) {
    auto data = ctx.array<std::uint64_t>(base, kCount);
    for (std::uint64_t iter = 1; iter <= 5; ++iter) {
      ctx.iteration_begin();
      if (ctx.node() == 0) {
        auto w = data.write_all();
        for (std::size_t i = 0; i < kCount; ++i) w[i] = iter * 1000 + i;
      }
      ctx.barrier();
      auto r = data.read_all();
      for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(r[i], iter * 1000 + i)
            << "node " << ctx.node() << " iter " << iter << " index " << i;
      }
      ctx.barrier();
    }
  });
}

TEST_P(ProtocolMatrixTest, MultiWriterFalseSharing) {
  const ClusterConfig cfg = config();
  mem::SharedHeap heap(cfg.page_size);
  constexpr std::size_t kCount = 512;  // all four nodes write every page
  const GlobalAddr base =
      heap.alloc_page_aligned(kCount * sizeof(std::uint64_t), "data");

  Cluster cluster(cfg, heap, protocols::make_protocol(GetParam()));
  cluster.run([&](NodeContext& ctx) {
    auto data = ctx.array<std::uint64_t>(base, kCount);
    const auto nodes = static_cast<std::size_t>(ctx.num_nodes());
    const auto me = static_cast<std::size_t>(ctx.node());
    for (std::uint64_t iter = 1; iter <= 4; ++iter) {
      ctx.iteration_begin();
      // Interleaved ownership: node k writes elements k, k+N, k+2N, ...
      // Every page is concurrently written by every node (pure false
      // sharing) -- the multi-writer case of paper §2.1.
      for (std::size_t i = me; i < kCount; i += nodes) {
        data.set(i, iter * 10000 + i);
      }
      ctx.barrier();
      for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(data.get(i), iter * 10000 + i)
            << "node " << me << " iter " << iter << " index " << i;
      }
      ctx.barrier();
    }
  });
}

TEST_P(ProtocolMatrixTest, RotatingProducer) {
  // The producer role moves every iteration: sharing is iterative but NOT
  // stable, stressing copyset staleness and (for bar) non-home writers.
  const ClusterConfig cfg = config();
  mem::SharedHeap heap(cfg.page_size);
  constexpr std::size_t kCount = 600;
  const GlobalAddr base =
      heap.alloc_page_aligned(kCount * sizeof(std::uint64_t), "data");

  Cluster cluster(cfg, heap, protocols::make_protocol(GetParam()));
  cluster.run([&](NodeContext& ctx) {
    auto data = ctx.array<std::uint64_t>(base, kCount);
    for (std::uint64_t iter = 1; iter <= 6; ++iter) {
      const int producer = static_cast<int>(iter) % ctx.num_nodes();
      if (ctx.node() == producer) {
        auto w = data.write_all();
        for (std::size_t i = 0; i < kCount; ++i) w[i] = iter * 100 + i % 97;
      }
      ctx.barrier();
      for (std::size_t i = 0; i < kCount; i += 37) {
        ASSERT_EQ(data.get(i), iter * 100 + i % 97);
      }
      ctx.barrier();
    }
  });
}

TEST_P(ProtocolMatrixTest, MigratoryData) {
  // Figure 1's pattern: a value hops node to node, each reading the
  // previous node's writes and extending them.
  const ClusterConfig cfg = config();
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr base =
      heap.alloc_page_aligned(64 * sizeof(std::uint64_t), "token");

  Cluster cluster(cfg, heap, protocols::make_protocol(GetParam()));
  cluster.run([&](NodeContext& ctx) {
    auto token = ctx.array<std::uint64_t>(base, 64);
    const int n = ctx.num_nodes();
    for (int hop = 0; hop < 3 * n; ++hop) {
      if (hop % n == ctx.node()) {
        const std::uint64_t prev = hop == 0 ? 0 : token.get(0);
        ASSERT_EQ(prev, static_cast<std::uint64_t>(hop));
        token.set(0, prev + 1);
      }
      ctx.barrier();
    }
    ASSERT_EQ(token.get(0), static_cast<std::uint64_t>(3 * n));
  });
}

TEST_P(ProtocolMatrixTest, Reductions) {
  const ClusterConfig cfg = config();
  mem::SharedHeap heap(cfg.page_size);
  heap.alloc_page_aligned(64, "dummy");

  Cluster cluster(cfg, heap, protocols::make_protocol(GetParam()));
  cluster.run([&](NodeContext& ctx) {
    const double mine = static_cast<double>(ctx.node() + 1);
    EXPECT_DOUBLE_EQ(ctx.reduce_max(mine), 4.0);
    EXPECT_DOUBLE_EQ(ctx.reduce_min(mine), 1.0);
    EXPECT_DOUBLE_EQ(ctx.reduce_sum(mine), 10.0);
  });
}

TEST_P(ProtocolMatrixTest, UnreliableFlushesNeverBreakCorrectness) {
  // Paper §2.1.2: "lost flush messages do not affect correctness, only
  // performance". Drop 40% of all update pushes and re-run the stencil
  // pattern; results must be identical.
  ClusterConfig cfg = config();
  cfg.costs.net.flush_drop_rate = 0.4;
  mem::SharedHeap heap(cfg.page_size);
  constexpr std::size_t kCount = 800;
  const GlobalAddr base =
      heap.alloc_page_aligned(kCount * sizeof(std::uint64_t), "data");

  Cluster cluster(cfg, heap, protocols::make_protocol(GetParam()));
  cluster.run([&](NodeContext& ctx) {
    auto data = ctx.array<std::uint64_t>(base, kCount);
    const auto nodes = static_cast<std::size_t>(ctx.num_nodes());
    const auto me = static_cast<std::size_t>(ctx.node());
    const std::size_t chunk = kCount / nodes;
    for (std::uint64_t iter = 1; iter <= 6; ++iter) {
      ctx.iteration_begin();
      auto w = data.write_view(me * chunk, (me + 1) * chunk);
      for (std::size_t i = 0; i < chunk; ++i) {
        w[i] = iter * 31 + (me * chunk + i);
      }
      ctx.barrier();
      // Read the two neighbouring chunks (stencil-style consumption).
      const std::size_t left = (me + nodes - 1) % nodes;
      const std::size_t right = (me + 1) % nodes;
      for (const std::size_t owner : {left, right}) {
        auto r = data.read_view(owner * chunk, (owner + 1) * chunk);
        for (std::size_t i = 0; i < chunk; ++i) {
          ASSERT_EQ(r[i], iter * 31 + (owner * chunk + i));
        }
      }
      ctx.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolMatrixTest,
    ::testing::Values(ProtocolKind::LmwI, ProtocolKind::LmwU,
                      ProtocolKind::BarI, ProtocolKind::BarU),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name = protocols::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace updsm
