// Pool-ownership property tests for the per-worker allocation arenas.
//
// The host-parallel engine routes every diff / twin / batch-buffer
// allocation through the arena of the gang worker that owns the node
// (deterministic, uncontended). These tests prove the loan accounting is
// exact: arenas never leak (every take is closed by a recycle into the
// same arena), never cross-serve, and the counters reconcile with the
// run's protocol counters and network flush records -- and that results
// stay bit-identical for every worker count.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/diff_store.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/dsm/pool_arena.hpp"
#include "updsm/dsm/twin_store.hpp"
#include "updsm/mem/buffer_pool.hpp"
#include "updsm/mem/diff.hpp"
#include "updsm/protocols/factory.hpp"

namespace updsm {
namespace {

using dsm::Cluster;
using dsm::ClusterConfig;
using dsm::NodeContext;
using mem::BufferPool;
using mem::Diff;
using mem::DiffPool;
using protocols::ProtocolKind;

TEST(BufferPoolTest, LoanAccountingIsExact) {
  BufferPool pool(4);
  EXPECT_EQ(pool.takes(), 0u);
  EXPECT_EQ(pool.outstanding(), 0u);

  std::vector<std::vector<std::byte>> loans;
  for (int i = 0; i < 6; ++i) loans.push_back(pool.take());
  EXPECT_EQ(pool.takes(), 6u);
  EXPECT_EQ(pool.hits(), 0u);  // pool was empty: all fresh
  EXPECT_EQ(pool.outstanding(), 6u);

  for (auto& b : loans) {
    b.resize(128);  // give the buffers capacity worth keeping
    pool.recycle(std::move(b));
  }
  EXPECT_EQ(pool.recycles(), 6u);
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.pooled(), 4u);  // bounded: 2 of 6 were dropped

  auto b = pool.take();
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_TRUE(b.empty());         // recycled buffers come back cleared
  EXPECT_GE(b.capacity(), 128u);  // ...with their capacity intact
  pool.recycle(std::move(b));
}

TEST(BufferPoolTest, ZeroCapPoolStillCounts) {
  BufferPool pool(0);
  auto b = pool.take();
  b.resize(64);
  pool.recycle(std::move(b));
  EXPECT_EQ(pool.pooled(), 0u);  // nothing retained...
  EXPECT_EQ(pool.takes(), 1u);   // ...but the loan ledger is intact
  EXPECT_EQ(pool.recycles(), 1u);
}

TEST(DiffPoolTest, LoanAccountingIsExact) {
  DiffPool pool(2);
  Diff a = pool.take();
  Diff b = pool.take();
  EXPECT_EQ(pool.takes(), 2u);
  EXPECT_EQ(pool.outstanding(), 2u);
  pool.recycle(std::move(a));
  EXPECT_EQ(pool.outstanding(), 1u);
  pool.recycle(std::move(b));
  EXPECT_EQ(pool.outstanding(), 0u);
  Diff c = pool.take();
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_TRUE(c.empty());
  pool.recycle(std::move(c));
}

TEST(PoolArenaTest, TwinStoreRoutesThroughBoundPool) {
  BufferPool pool(8);
  {
    dsm::TwinStore twins;
    twins.bind_pool(&pool);

    std::vector<std::byte> page(256, std::byte{0x5a});
    twins.create(PageId{0}, page);
    EXPECT_EQ(pool.takes(), 1u);
    EXPECT_EQ(pool.outstanding(), 1u);

    // Content integrity: the twin is a faithful snapshot even though its
    // buffer came from the pool.
    const auto got = twins.get(PageId{0});
    ASSERT_EQ(got.size(), page.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), page.begin()));

    twins.discard(PageId{0});
    EXPECT_EQ(pool.outstanding(), 0u);

    // A dirty recycled buffer must not leak into the next snapshot.
    page.assign(256, std::byte{0x07});
    twins.create(PageId{1}, page);
    EXPECT_EQ(pool.hits(), 1u);
    const auto got2 = twins.get(PageId{1});
    EXPECT_TRUE(std::all_of(got2.begin(), got2.end(),
                            [](std::byte x) { return x == std::byte{0x07}; }));
    // Destructor closes the remaining loan.
  }
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(PoolArenaTest, DiffStoreRoutesThroughBoundPool) {
  DiffPool pool(8);
  const std::vector<std::byte> twin(64, std::byte{0});
  std::vector<std::byte> cur(64, std::byte{0});
  cur[3] = std::byte{1};
  {
    dsm::DiffStore store;
    store.bind_pool(&pool);

    Diff scratch = store.take_scratch();
    EXPECT_EQ(pool.takes(), 1u);
    Diff::create_into(scratch, twin, cur);
    const dsm::DiffStore::Key key{PageId{0}, EpochId{1}, NodeId{0}};
    store.put(key, std::move(scratch));
    EXPECT_EQ(pool.outstanding(), 1u);  // the stored diff is the open loan

    // put_copy builds its copy inside a pooled diff too.
    Diff src = Diff::create(twin, cur);
    store.put_copy(dsm::DiffStore::Key{PageId{1}, EpochId{1}, NodeId{0}}, src);
    EXPECT_EQ(pool.takes(), 2u);
    EXPECT_EQ(pool.outstanding(), 2u);

    // Content round-trip through the pooled copy.
    const Diff* found =
        store.find(dsm::DiffStore::Key{PageId{1}, EpochId{1}, NodeId{0}});
    ASSERT_NE(found, nullptr);
    std::vector<std::byte> rebuilt(64, std::byte{0});
    found->apply(rebuilt);
    EXPECT_EQ(rebuilt[3], std::byte{1});

    store.erase(key);
    EXPECT_EQ(pool.outstanding(), 1u);
    // clear() via destructor closes the rest.
  }
  EXPECT_EQ(pool.outstanding(), 0u);
}

/// Shared-heap workload with real cross-node traffic: neighbors write
/// overlapping pages, so bar-u creates diffs, flushes to homes, and pushes
/// updates to copyset members every barrier.
void neighbor_workload(NodeContext& ctx, GlobalAddr addr, std::size_t n) {
  auto arr = ctx.array<double>(addr, n);
  const auto nodes = static_cast<std::size_t>(ctx.num_nodes());
  const std::size_t chunk = n / nodes;
  const auto me = static_cast<std::size_t>(ctx.node());
  const std::size_t lo = me * chunk;
  // Overlap into the neighbor's slab so pages have multiple writers and
  // consumers (real copysets, update pushes, home flushes).
  const std::size_t hi = std::min(n, lo + chunk + chunk / 2);
  for (int iter = 0; iter < 4; ++iter) {
    auto w = arr.write_view(lo, hi);
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] += static_cast<double>(me + 1) * (static_cast<double>(iter) + 0.5);
    }
    ctx.barrier();
    auto r = arr.read_all();
    double acc = 0;
    for (std::size_t i = 0; i < n; i += 7) acc += r[i];
    (void)acc;
    ctx.barrier();
  }
}

struct ArenaTotals {
  std::uint64_t diff_takes = 0, diff_out = 0;
  std::uint64_t page_takes = 0, page_out = 0;
  std::uint64_t batch_takes = 0, batch_out = 0;
};

ArenaTotals sum_arenas(dsm::Runtime& rt) {
  ArenaTotals t;
  for (int w = 0; w < rt.workers(); ++w) {
    dsm::PoolArena& a = rt.arena(w);
    t.diff_takes += a.diffs.takes();
    t.diff_out += a.diffs.outstanding();
    t.page_takes += a.pages.takes();
    t.page_out += a.pages.outstanding();
    t.batch_takes += a.batch_buffers.takes();
    t.batch_out += a.batch_buffers.outstanding();
  }
  return t;
}

TEST(PoolArenaTest, ClusterRunLoansReconcileExactly) {
  constexpr std::size_t kElems = 2048;
  double reference = 0;
  for (const int workers : {1, 2, 4}) {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.page_size = 1024;
    cfg.workers = workers;
    mem::SharedHeap heap(cfg.page_size);
    const GlobalAddr a = heap.alloc_page_aligned(kElems * 8, "a");
    Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::BarU));
    cluster.run([&](NodeContext& ctx) { neighbor_workload(ctx, a, kElems); });

    dsm::Runtime& rt = cluster.runtime();
    EXPECT_EQ(rt.workers(), workers);
    const ArenaTotals t = sum_arenas(rt);
    const auto& c = rt.counters();

    // Every diff loan is closed at a barrier (zero diffs and home copies
    // immediately, queued diffs by the master hook, inbox copies at
    // release) -- nothing may still be on loan after the run.
    EXPECT_EQ(t.diff_out, 0u) << "workers=" << workers;
    // The only two diff-take sites are diff creation and update receipt,
    // each counted by exactly one protocol counter: the ledger reconciles
    // take for take.
    EXPECT_EQ(t.diff_takes, c.diffs_created + c.updates_received)
        << "workers=" << workers;
    EXPECT_GT(c.diffs_created, 0u);
    EXPECT_GT(c.updates_received.load(), 0u);
    // Perfect network: every staged update was delivered, and every
    // flush-class wire record is a staged record (home flushes are the
    // non-zero diffs of non-home writers, updates the rest).
    EXPECT_EQ(c.updates_received.load(), c.updates_sent.load());
    const auto& net = rt.measured_net_stats();
    EXPECT_GE(net.flush_class_records(), c.updates_sent.load());
    EXPECT_LE(net.flush_class_records(),
              c.diffs_created - c.zero_diffs + c.updates_sent.load());

    // Page buffers: the open loans are exactly the live twins + service
    // snapshots the protocol still holds (no leak, no cross-serve).
    EXPECT_EQ(t.page_out, cluster.protocol().live_page_buffers())
        << "workers=" << workers;
    EXPECT_GT(t.page_takes, 0u);

    // Batch buffers all return to their arenas at seal.
    EXPECT_EQ(t.batch_out, 0u) << "workers=" << workers;
    EXPECT_GT(t.batch_takes, 0u);

    // And the simulation itself is bit-identical for every worker count.
    const double elapsed = static_cast<double>(cluster.elapsed());
    if (workers == 1) {
      reference = elapsed;
    } else {
      EXPECT_EQ(elapsed, reference) << "workers=" << workers;
    }
  }
}

TEST(PoolArenaTest, LmwStoresReconcileAcrossWorkerCounts) {
  constexpr std::size_t kElems = 2048;
  std::uint64_t ref_elapsed = 0;
  std::uint64_t ref_takes = 0;
  for (const int workers : {1, 4}) {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.page_size = 1024;
    cfg.workers = workers;
    mem::SharedHeap heap(cfg.page_size);
    const GlobalAddr a = heap.alloc_page_aligned(kElems * 8, "a");
    Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::LmwU));
    cluster.run([&](NodeContext& ctx) { neighbor_workload(ctx, a, kElems); });

    dsm::Runtime& rt = cluster.runtime();
    const ArenaTotals t = sum_arenas(rt);
    // lmw retains diffs in its stores (open loans by design), but the
    // ledger must balance: outstanding == what the stores + in-flight
    // structures still hold, which on a quiesced run is at most takes.
    EXPECT_LE(t.diff_out, t.diff_takes);
    EXPECT_EQ(t.page_out, cluster.protocol().live_page_buffers())
        << "workers=" << workers;
    EXPECT_EQ(t.batch_out, 0u);
    // Deterministic routing: the same run does the same takes no matter
    // how many workers execute it.
    if (workers == 1) {
      ref_takes = t.diff_takes;
      ref_elapsed = cluster.elapsed();
    } else {
      EXPECT_EQ(t.diff_takes, ref_takes);
      EXPECT_EQ(cluster.elapsed(), ref_elapsed);
    }
  }
}

}  // namespace
}  // namespace updsm
