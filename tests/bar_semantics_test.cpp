// Protocol-semantics tests specific to the home-based bar protocols: the
// home effect, diff lifetimes (Figure 1's contrast), version indices,
// runtime home migration, copyset convergence and the home-private path.
#include <gtest/gtest.h>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/protocols/bar.hpp"
#include "updsm/protocols/factory.hpp"

namespace updsm {
namespace {

using dsm::Cluster;
using dsm::ClusterConfig;
using dsm::NodeContext;
using protocols::BarProtocol;
using protocols::ProtocolKind;

ClusterConfig config(int nodes = 4) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.page_size = 1024;
  return cfg;
}

struct BarCluster {
  explicit BarCluster(const ClusterConfig& cfg, const mem::SharedHeap& heap,
                      ProtocolKind kind = ProtocolKind::BarU)
      : protocol_owner(protocols::make_protocol(kind)),
        bar(dynamic_cast<BarProtocol*>(protocol_owner.get())),
        cluster(cfg, heap, std::move(protocol_owner)) {}
  std::unique_ptr<dsm::CoherenceProtocol> protocol_owner;
  BarProtocol* bar;
  Cluster cluster;
};

TEST(BarSemanticsTest, HomeEffectCreatesNoDiffsForHomeWrites) {
  // A page written only by its (migrated) home and read by one consumer:
  // bar-i must satisfy the consumer with whole-page fetches, never diffs.
  const ClusterConfig cfg = config(2);
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(128 * 8, "x");
  BarCluster b(cfg, heap, ProtocolKind::BarI);
  b.cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, 128);
    for (int iter = 1; iter <= 6; ++iter) {
      ctx.iteration_begin();
      if (ctx.node() == 0) {
        auto w = x.write_view(0, 128);
        for (std::size_t i = 0; i < 128; ++i) w[i] = iter * 5.0 + i;
      }
      ctx.barrier();
      if (ctx.node() == 1) {
        EXPECT_DOUBLE_EQ(x.get(9), iter * 5.0 + 9);
      }
      ctx.barrier();
    }
  });
  EXPECT_EQ(b.cluster.runtime().counters().diffs_created, 0u)
      << "the home effect: home writes need no diffs under bar-i";
  EXPECT_GT(b.cluster.runtime().counters().pages_fetched, 4u);
}

TEST(BarSemanticsTest, MigrationMovesHomesToWriters) {
  const ClusterConfig cfg = config(4);
  mem::SharedHeap heap(cfg.page_size);
  constexpr std::size_t kCount = 512;  // 4 pages of doubles
  const GlobalAddr a = heap.alloc_page_aligned(kCount * 8, "x");
  BarCluster b(cfg, heap);
  b.cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, kCount);
    const auto me = static_cast<std::size_t>(ctx.node());
    for (int iter = 1; iter <= 5; ++iter) {
      ctx.iteration_begin();
      // Node k writes page (k+1)%4: every page's writer differs from its
      // initial (block-distributed) home.
      const std::size_t target = (me + 1) % 4;
      auto w = x.write_view(target * 128, target * 128 + 128);
      for (std::size_t i = 0; i < 128; ++i) w[i] = iter + i;
      ctx.barrier();
    }
  });
  ASSERT_TRUE(b.bar->migration_done());
  EXPECT_EQ(b.cluster.runtime().counters().migrations, 4u);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(b.bar->home(PageId{p}).value(), (p + 4 - 1) % 4)
        << "page " << p << " must be homed at its writer";
  }
}

TEST(BarSemanticsTest, MigrationCanBeDisabled) {
  ClusterConfig cfg = config(4);
  cfg.home_migration = false;
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(512 * 8, "x");
  BarCluster b(cfg, heap);
  b.cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, 512);
    const auto me = static_cast<std::size_t>(ctx.node());
    for (int iter = 1; iter <= 4; ++iter) {
      ctx.iteration_begin();
      const std::size_t target = (me + 1) % 4;
      auto w = x.write_view(target * 128, target * 128 + 128);
      for (std::size_t i = 0; i < 128; ++i) w[i] = iter + i;
      ctx.barrier();
    }
  });
  EXPECT_FALSE(b.bar->migration_done());
  EXPECT_EQ(b.cluster.runtime().counters().migrations, 0u);
}

TEST(BarSemanticsTest, VersionsAreMonotoneAndBumpOnlyOnRealChange) {
  const ClusterConfig cfg = config(2);
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(128 * 8, "x");
  BarCluster b(cfg, heap);
  std::vector<std::uint64_t> versions;
  b.cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, 128);
    for (int iter = 1; iter <= 6; ++iter) {
      ctx.iteration_begin();
      if (ctx.node() == 1) {
        // Iterations 4+: write the SAME values -> empty diffs.
        auto w = x.write_view(0, 128);
        for (std::size_t i = 0; i < 128; ++i) {
          w[i] = std::min(iter, 4) * 3.0 + i;
        }
      }
      ctx.barrier();
      if (ctx.node() == 0) {
        (void)x.get(1);
        versions.push_back(b.bar->version(PageId{0}));
      }
      ctx.barrier();
    }
  });
  ASSERT_EQ(versions.size(), 6u);
  EXPECT_TRUE(std::is_sorted(versions.begin(), versions.end()));
  // Non-home writer with a twin: zero-length diffs must not bump versions.
  EXPECT_EQ(versions[4], versions[3]);
  EXPECT_EQ(versions[5], versions[4]);
}

TEST(BarSemanticsTest, UpdatesEliminateMissesByIterationTwo) {
  // Paper §2.2.1: "On the first iteration of the time-step loop, the
  // copysets of each page are empty and page faults occur. By the second
  // iteration, copyset information indicates the processors that need each
  // page."
  const ClusterConfig cfg = config(4);
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(512 * 8, "x");
  BarCluster b(cfg, heap);
  std::uint64_t misses_after_warmup = 0;
  b.cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, 512);
    const auto me = static_cast<std::size_t>(ctx.node());
    for (int iter = 1; iter <= 8; ++iter) {
      ctx.iteration_begin();
      auto w = x.write_view(me * 128, me * 128 + 128);
      for (std::size_t i = 0; i < 128; ++i) w[i] = iter * 2.0 + i;
      ctx.barrier();
      const std::size_t peer = (me + 1) % 4;
      auto r = x.read_view(peer * 128, peer * 128 + 128);
      EXPECT_DOUBLE_EQ(r[0], iter * 2.0);
      ctx.barrier();
      if (iter == 3 && ctx.node() == 0) {
        misses_after_warmup = b.cluster.runtime().counters().remote_misses;
      }
    }
  });
  EXPECT_EQ(b.cluster.runtime().counters().remote_misses, misses_after_warmup)
      << "no remote misses once copysets converged";
  EXPECT_GT(b.cluster.runtime().counters().updates_applied, 0u);
}

TEST(BarSemanticsTest, HomePrivatePagesStopAllProtocolWork) {
  const ClusterConfig cfg = config(4);
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(512 * 8, "x");
  BarCluster b(cfg, heap);
  std::uint64_t diffs_mid = 0;
  std::uint64_t segvs_mid = 0;
  auto count_segvs = [&] {
    std::uint64_t total = 0;
    for (int i = 0; i < 4; ++i) {
      total += b.cluster.runtime()
                   .os(NodeId{static_cast<std::uint32_t>(i)})
                   .counters()
                   .segvs;
    }
    return total;
  };
  b.cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, 512);
    const auto me = static_cast<std::size_t>(ctx.node());
    for (int iter = 1; iter <= 10; ++iter) {
      ctx.iteration_begin();
      auto w = x.write_view(me * 128, me * 128 + 128);  // purely private
      for (std::size_t i = 0; i < 128; ++i) w[i] = iter + i;
      ctx.barrier();
      if (iter == 4 && ctx.node() == 0) {
        diffs_mid = b.cluster.runtime().counters().diffs_created;
        segvs_mid = count_segvs();
      }
    }
  });
  EXPECT_EQ(b.cluster.runtime().counters().diffs_created, diffs_mid);
  EXPECT_EQ(count_segvs(), segvs_mid)
      << "untracked home pages take no write traps at all";
  EXPECT_GT(b.cluster.runtime().counters().private_entries, 0u);
}

TEST(BarSemanticsTest, LateConsumerRetracksPrivatePage) {
  const ClusterConfig cfg = config(2);
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(128 * 8, "x");
  BarCluster b(cfg, heap);
  b.cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, 128);
    for (int iter = 1; iter <= 8; ++iter) {
      ctx.iteration_begin();
      if (ctx.node() == 0) {
        auto w = x.write_view(0, 128);
        for (std::size_t i = 0; i < 128; ++i) w[i] = iter * 7.0 + i;
      }
      ctx.barrier();
      // Node 1 only starts reading at iteration 5, after the page went
      // home-private: the fetch must retrack it and deliver fresh data
      // from then on.
      if (ctx.node() == 1 && iter >= 5) {
        EXPECT_DOUBLE_EQ(x.get(3), iter * 7.0 + 3) << "iter " << iter;
      }
      ctx.barrier();
    }
  });
  EXPECT_GT(b.cluster.runtime().counters().private_entries, 0u);
  EXPECT_GT(b.cluster.runtime().counters().private_exits, 0u);
}

TEST(BarSemanticsTest, StaticHomeAnnotationsAreHonored) {
  // Zhou-style annotations (§2.2.1): the user assigns homes; with a good
  // assignment and migration disabled, the home effect applies from the
  // first iteration -- no diffs, no migrations.
  ClusterConfig cfg = config(4);
  cfg.home_migration = false;
  cfg.static_homes = {3, 0, 1, 2};  // page k is written by node (k+3)%4
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(512 * 8, "x");
  BarCluster b(cfg, heap, ProtocolKind::BarI);
  b.cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, 512);
    const auto me = static_cast<std::size_t>(ctx.node());
    for (int iter = 1; iter <= 4; ++iter) {
      ctx.iteration_begin();
      const std::size_t target = (me + 1) % 4;
      auto w = x.write_view(target * 128, target * 128 + 128);
      for (std::size_t i = 0; i < 128; ++i) w[i] = iter + i;
      ctx.barrier();
    }
  });
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(b.bar->home(PageId{p}).value(), (p + 3) % 4);
  }
  EXPECT_EQ(b.cluster.runtime().counters().diffs_created, 0u)
      << "a correct annotation gives the home effect without migration";
  EXPECT_EQ(b.cluster.runtime().counters().migrations, 0u);
}

TEST(BarSemanticsTest, BadStaticHomeAnnotationsRejected) {
  ClusterConfig cfg = config(2);
  cfg.static_homes = {7};  // node 7 does not exist
  mem::SharedHeap heap(cfg.page_size);
  heap.alloc_page_aligned(64, "x");
  EXPECT_THROW(BarCluster(cfg, heap), UsageError);
}

TEST(BarSemanticsTest, DiffsDieAtTheBarrier) {
  // Figure 1's contrast: under home-based protocols "both diffs can be
  // immediately discarded". Our bar implementation keeps no diff store at
  // all -- the retained-diff statistic must stay zero.
  const ClusterConfig cfg = config(3);
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(128 * 8, "x");
  BarCluster b(cfg, heap);
  b.cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<double>(a, 128);
    const int n = ctx.num_nodes();
    for (int hop = 0; hop < 3 * n; ++hop) {
      if (hop % n == ctx.node()) x.set(0, x.get(0) + 1.0);
      ctx.barrier();
    }
    EXPECT_DOUBLE_EQ(x.get(0), 3.0 * n);
  });
  EXPECT_EQ(b.cluster.runtime().counters().retained_diff_bytes_peak, 0u);
}

}  // namespace
}  // namespace updsm
