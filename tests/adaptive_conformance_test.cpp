// Adaptive-protocol conformance: per-page mode switching must change WHEN
// pages are delivered, never WHAT is computed, and the whole decision
// pipeline (window samples -> signals -> modeled costs -> barrier-time
// switches) must be a pure function of workload + config. This drives the
// adaptive protocol on a regular stencil (jacobi) and an irregular mesh
// (tomcat), under both cost profiles, across gang modes, worker counts and
// a battery of seeded random fault plans, and requires every run to be
// bit-identical on every observable -- data, virtual time, and the adaptive
// counters themselves.
//
// Plan count defaults to 10; UPDSM_ADAPTIVE_PLANS=<n> shrinks (or grows)
// the battery, which CI uses to keep the sanitizer job inside its budget.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "updsm/harness/experiment.hpp"
#include "updsm/sim/cost_model.hpp"

namespace updsm {
namespace {

using protocols::ProtocolKind;
using sim::GangMode;

constexpr const char* kApps[] = {"jacobi", "tomcat"};
constexpr const char* kProfiles[] = {"sp2", "rdma"};

int plan_count() {
  if (const char* env = std::getenv("UPDSM_ADAPTIVE_PLANS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 10;
}

/// Deterministic fault-plan battery, a pure function of i (same shape as
/// fault_conformance_test's: broad loss, loss+dup+delay, kind-targeted,
/// asymmetric + stalls).
std::string make_plan(int i) {
  const int pct = 2 + (i * 7) % 12;  // 2..13 percent
  const std::string p = "0.0" + std::to_string(pct);
  switch (i % 4) {
    case 0:
      return "drop=" + p;
    case 1:
      return "drop=" + p + ",dup=0.05,delay=0.05,delay_us=200";
    case 2:
      return "kind=flush,drop=0.2;drop=0.02";
    default:
      return "from=0,to=1,drop=0.25;node=1,stall=0.2,stall_us=300;drop=" + p;
  }
}

struct RunSpec {
  const char* app = "jacobi";
  const char* profile = "sp2";
  GangMode gang = GangMode::Parallel;
  int workers = 0;
  std::string plan;
  std::uint64_t fault_seed = 0;
};

harness::RunResult run_one(const RunSpec& spec) {
  apps::AppParams params;
  params.scale = 0.1;
  // One warmup iteration only: mode switches land a few epochs after the
  // window fills, and the measured counters must SEE them (the acceptance
  // bench reports adaptive_switches from the same window).
  params.warmup_iterations = 1;
  params.measured_iterations = 6;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.gang = spec.gang;
  cfg.workers = spec.workers;
  cfg.net_profile = spec.profile;
  cfg.costs = sim::CostModel::from_profile(spec.profile);
  cfg.adaptive_window = 3;
  if (!spec.plan.empty()) {
    cfg.faults = sim::FaultSpec::parse(spec.plan);
    cfg.fault_seed = spec.fault_seed;
  }
  return harness::run_app(spec.app, ProtocolKind::Adaptive, cfg, params);
}

void expect_identical(const harness::RunResult& a, const harness::RunResult& b,
                      const std::string& ctx) {
  EXPECT_EQ(a.checksum, b.checksum) << ctx;
  EXPECT_EQ(a.elapsed, b.elapsed) << ctx;
  EXPECT_EQ(a.barriers, b.barriers) << ctx;
  EXPECT_EQ(a.net.total_bytes(), b.net.total_bytes()) << ctx;
  EXPECT_EQ(a.counters.adaptive_switches.load(),
            b.counters.adaptive_switches.load())
      << ctx;
  EXPECT_EQ(a.counters.adaptive_window_evictions.load(),
            b.counters.adaptive_window_evictions.load())
      << ctx;
  EXPECT_EQ(a.counters.diffs_created.load(), b.counters.diffs_created.load())
      << ctx;
  EXPECT_EQ(a.counters.updates_applied.load(),
            b.counters.updates_applied.load())
      << ctx;
}

// The protocol actually adapts in the measured window on both apps and
// both profiles -- a silent all-update run would vacuously pass the
// determinism checks below.
TEST(AdaptiveConformanceTest, SwitchesHappenInTheMeasuredWindow) {
  for (const char* app : kApps) {
    for (const char* profile : kProfiles) {
      RunSpec spec;
      spec.app = app;
      spec.profile = profile;
      const harness::RunResult r = run_one(spec);
      EXPECT_GT(r.counters.adaptive_switches.load(), 0u)
          << app << " on " << profile;
    }
  }
}

// Bit-identical across gang modes and every worker count, on both
// profiles: the mode-switch pipeline adds no schedule dependence.
TEST(AdaptiveConformanceTest, SchedulesAgree) {
  for (const char* app : kApps) {
    for (const char* profile : kProfiles) {
      RunSpec base;
      base.app = app;
      base.profile = profile;
      base.gang = GangMode::Baton;
      base.workers = 1;
      const harness::RunResult baton1 = run_one(base);
      for (const GangMode gang : {GangMode::Baton, GangMode::Parallel}) {
        for (const int workers : {1, 2, 4, 16}) {
          RunSpec spec = base;
          spec.gang = gang;
          spec.workers = workers;
          const harness::RunResult r = run_one(spec);
          expect_identical(baton1, r,
                           std::string(app) + " on " + profile + " gang " +
                               (gang == GangMode::Baton ? "baton" : "parallel") +
                               " workers " + std::to_string(workers));
        }
      }
    }
  }
}

// Under every seeded fault plan the data matches the fault-free baseline
// bit for bit, and the decision pipeline itself is schedule-independent:
// both gang modes agree on every observable including the switch counters.
TEST(AdaptiveConformanceTest, FaultPlansNeverChangeData) {
  const int plans = plan_count();
  for (const char* app : kApps) {
    for (const char* profile : kProfiles) {
      RunSpec base;
      base.app = app;
      base.profile = profile;
      const harness::RunResult clean = run_one(base);
      ASSERT_NE(clean.checksum, 0.0) << app;
      for (int i = 0; i < plans; ++i) {
        RunSpec spec = base;
        spec.plan = make_plan(i);
        spec.fault_seed = 2000u + static_cast<std::uint64_t>(i);
        const std::string ctx = std::string(app) + " on " + profile +
                                " plan " + std::to_string(i) + " [" +
                                spec.plan + "]";
        const harness::RunResult faulty = run_one(spec);
        EXPECT_EQ(faulty.checksum, clean.checksum) << ctx;
        EXPECT_EQ(faulty.barriers, clean.barriers) << ctx;

        RunSpec other = spec;
        other.gang = GangMode::Baton;
        other.workers = 1;
        expect_identical(faulty, run_one(other), ctx + " (gang cross-check)");
      }
    }
  }
}

// The window length is part of the configuration, not a tuning accident:
// different windows may pick different modes (and different virtual
// times), but each is individually bit-exact on the data.
TEST(AdaptiveConformanceTest, WindowLengthNeverChangesData) {
  RunSpec base;
  const harness::RunResult r3 = run_one(base);
  for (const int window : {2, 6, 12}) {
    apps::AppParams params;
    params.scale = 0.1;
    params.warmup_iterations = 1;
    params.measured_iterations = 6;
    dsm::ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.adaptive_window = window;
    const harness::RunResult r =
        harness::run_app("jacobi", ProtocolKind::Adaptive, cfg, params);
    EXPECT_EQ(r.checksum, r3.checksum) << "window " << window;
  }
}

}  // namespace
}  // namespace updsm
