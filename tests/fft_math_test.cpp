// Validates the radix-2 FFT kernel against a direct DFT, plus transform
// identities (roundtrip, linearity, Parseval).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "updsm/apps/fft.hpp"
#include "updsm/common/rng.hpp"

namespace updsm::apps {
namespace {

using Cvec = std::vector<std::complex<double>>;

Cvec to_complex(const std::vector<double>& interleaved) {
  Cvec out(interleaved.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = {interleaved[2 * i], interleaved[2 * i + 1]};
  }
  return out;
}

Cvec naive_dft(const Cvec& in, bool inverse) {
  const std::size_t n = in.size();
  Cvec out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0, 0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * std::numbers::pi *
                         static_cast<double>(k * j) / static_cast<double>(n);
      acc += in[j] * std::complex<double>{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
  std::vector<double> signal(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    signal[i] =
        static_cast<double>(splitmix64(seed + i) >> 11) * 0x1.0p-53 - 0.5;
  }
  return signal;
}

class FftLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftLengthTest, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, 17);
  const Cvec reference = naive_dft(to_complex(signal), /*inverse=*/false);
  fft_radix2(signal.data(), n, /*inverse=*/false);
  const Cvec fast = to_complex(signal);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), reference[k].real(), 1e-9 * n);
    EXPECT_NEAR(fast[k].imag(), reference[k].imag(), 1e-9 * n);
  }
}

TEST_P(FftLengthTest, ForwardInverseRoundTrip) {
  const std::size_t n = GetParam();
  const auto original = random_signal(n, 23);
  auto signal = original;
  fft_radix2(signal.data(), n, /*inverse=*/false);
  fft_radix2(signal.data(), n, /*inverse=*/true);
  // Unnormalized: inverse(forward(x)) == n * x.
  for (std::size_t i = 0; i < 2 * n; ++i) {
    EXPECT_NEAR(signal[i], original[i] * static_cast<double>(n), 1e-9 * n);
  }
}

TEST_P(FftLengthTest, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, 31);
  double time_energy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    time_energy += signal[2 * i] * signal[2 * i] +
                   signal[2 * i + 1] * signal[2 * i + 1];
  }
  fft_radix2(signal.data(), n, /*inverse=*/false);
  double freq_energy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    freq_energy += signal[2 * i] * signal[2 * i] +
                   signal[2 * i + 1] * signal[2 * i + 1];
  }
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-8 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftLengthTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "n" + std::to_string(i.param);
                         });

TEST(FftTest, LinearityOfTransform) {
  constexpr std::size_t n = 64;
  auto a = random_signal(n, 1);
  auto b = random_signal(n, 2);
  std::vector<double> sum(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  fft_radix2(a.data(), n, false);
  fft_radix2(b.data(), n, false);
  fft_radix2(sum.data(), n, false);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    EXPECT_NEAR(sum[i], 2.0 * a[i] + 3.0 * b[i], 1e-9);
  }
}

TEST(FftTest, ImpulseTransformsToConstant) {
  constexpr std::size_t n = 32;
  std::vector<double> signal(2 * n, 0.0);
  signal[0] = 1.0;  // delta at t=0
  fft_radix2(signal.data(), n, false);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(signal[2 * k], 1.0, 1e-12);
    EXPECT_NEAR(signal[2 * k + 1], 0.0, 1e-12);
  }
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<double> signal(2 * 12);
  EXPECT_THROW(fft_radix2(signal.data(), 12, false), UsageError);
  EXPECT_THROW(fft_radix2(signal.data(), 0, false), UsageError);
}

}  // namespace
}  // namespace updsm::apps
