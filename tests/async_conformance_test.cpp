// Async-gang conformance: barrier-free iteration must stay a deterministic
// discrete-event simulation. Under GangMode::Async exactly one node runs at
// a time, picked by minimum virtual clock, so every observable -- the
// converged flag, virtual time, message census, protocol counters, sweep
// counts -- must be a pure function of (workload, config), bit-identical
// across worker counts and unchanged by host scheduling. This drives both
// async stencils under both async protocols across worker counts and a
// battery of seeded fault plans (drops, dups, delays, stalls -- the
// straggler-conformance grid), and additionally requires every faulty run
// to still CONVERGE: stale-tolerant reads plus the staleness refresh must
// heal arbitrary bounded loss.
//
// Plan count defaults to 10; UPDSM_ASYNC_PLANS=<n> shrinks (or grows) the
// battery, which CI uses to keep the sanitizer job inside its budget.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "updsm/harness/experiment.hpp"
#include "updsm/sim/fault_plan.hpp"

namespace updsm {
namespace {

using protocols::ProtocolKind;
using sim::GangMode;

constexpr const char* kApps[] = {"jacobi-async", "sor-async"};
constexpr ProtocolKind kProtocols[] = {ProtocolKind::AsyncU,
                                       ProtocolKind::AsyncI};

int plan_count() {
  if (const char* env = std::getenv("UPDSM_ASYNC_PLANS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 10;
}

/// Deterministic straggler/fault battery, a pure function of i: broad
/// loss, loss+dup+delay, batch-targeted loss, and asymmetric loss plus
/// per-step stalls (the straggler case proper).
std::string make_plan(int i) {
  const int pct = 5 + (i * 11) % 26;  // 5..30 percent
  const std::string p =
      std::string("0.") + (pct < 10 ? "0" : "") + std::to_string(pct);
  switch (i % 4) {
    case 0:
      return "drop=" + p;
    case 1:
      return "drop=" + p + ",dup=0.05,delay=0.1,delay_us=300";
    case 2:
      // Update pushes ride aggregated batches: kind=flushbatch is the
      // rule that actually targets them (kind=flush is the legacy
      // per-page path).
      return "kind=flushbatch,drop=0.4;drop=0.05";
    default:
      return "from=0,to=1,drop=0.3;node=1,stall=0.4,stall_us=2000;drop=" + p;
  }
}

struct RunSpec {
  const char* app = "jacobi-async";
  ProtocolKind protocol = ProtocolKind::AsyncU;
  int workers = 0;
  std::string plan;
  std::uint64_t fault_seed = 0;
};

harness::RunResult run_one(const RunSpec& spec) {
  apps::AppParams params;
  params.scale = 0.1;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.gang = GangMode::Async;
  cfg.workers = spec.workers;
  cfg.staleness_bound = 2;
  if (!spec.plan.empty()) {
    cfg.faults = sim::FaultSpec::parse(spec.plan);
    cfg.fault_seed = spec.fault_seed;
  }
  return harness::run_app(spec.app, spec.protocol, cfg, params);
}

void expect_identical(const harness::RunResult& a, const harness::RunResult& b,
                      const std::string& ctx) {
  EXPECT_EQ(a.checksum, b.checksum) << ctx;
  EXPECT_EQ(a.elapsed, b.elapsed) << ctx;
  EXPECT_EQ(a.barriers, b.barriers) << ctx;
  EXPECT_EQ(a.app_iterations, b.app_iterations) << ctx;
  EXPECT_EQ(a.final_residual, b.final_residual) << ctx;
  EXPECT_EQ(a.net.table_messages(), b.net.table_messages()) << ctx;
  EXPECT_EQ(a.net.total_bytes(), b.net.total_bytes()) << ctx;
  EXPECT_EQ(a.counters.async_steps.load(), b.counters.async_steps.load())
      << ctx;
  EXPECT_EQ(a.counters.async_refreshes.load(),
            b.counters.async_refreshes.load())
      << ctx;
  EXPECT_EQ(a.counters.async_invalidations.load(),
            b.counters.async_invalidations.load())
      << ctx;
  EXPECT_EQ(a.counters.async_throttles.load(),
            b.counters.async_throttles.load())
      << ctx;
  EXPECT_EQ(a.counters.diffs_created.load(), b.counters.diffs_created.load())
      << ctx;
  EXPECT_EQ(a.counters.updates_applied.load(),
            b.counters.updates_applied.load())
      << ctx;
  EXPECT_EQ(a.counters.pages_fetched.load(), b.counters.pages_fetched.load())
      << ctx;
}

std::string proto_name(ProtocolKind kind) {
  return std::string(protocols::to_string(kind));
}

// Clean async runs actually converge (checksum 1.0 = every node reached
// the fixed point within tolerance) and actually iterate asynchronously --
// a silent fallback to the barrier loop would vacuously pass the
// determinism checks below.
TEST(AsyncConformanceTest, CleanRunsConverge) {
  for (const char* app : kApps) {
    for (const ProtocolKind protocol : kProtocols) {
      RunSpec spec;
      spec.app = app;
      spec.protocol = protocol;
      const harness::RunResult r = run_one(spec);
      const std::string ctx = std::string(app) + " under " +
                              proto_name(protocol);
      EXPECT_EQ(r.checksum, 1.0) << ctx;
      EXPECT_GT(r.counters.async_steps.load(), 0u) << ctx;
      EXPECT_GT(r.app_iterations, 0u) << ctx;
      EXPECT_LE(r.final_residual, 1e-6) << ctx;
    }
  }
}

// Bit-identical across every worker count: the async scheduler's event
// order is a pure function of the virtual clocks, never of how many OS
// threads multiplex the node fibers. workers > nodes exercises the clamp;
// workers < nodes exercises multi-node workers.
TEST(AsyncConformanceTest, WorkerCountsAgree) {
  for (const char* app : kApps) {
    for (const ProtocolKind protocol : kProtocols) {
      RunSpec base;
      base.app = app;
      base.protocol = protocol;
      base.workers = 1;
      const harness::RunResult one = run_one(base);
      for (const int workers : {2, 3, 4, 16}) {
        RunSpec spec = base;
        spec.workers = workers;
        expect_identical(one, run_one(spec),
                         std::string(app) + " under " + proto_name(protocol) +
                             " workers " + std::to_string(workers));
      }
    }
  }
}

// The straggler battery: under every seeded fault plan the run still
// converges to the same tolerance (stale reads heal within the bound; the
// detector tolerates silent settled nodes), and the entire run -- fault
// decisions included -- is bit-identical across worker counts.
TEST(AsyncConformanceTest, FaultPlansConvergeAndAgree) {
  const int plans = plan_count();
  for (const char* app : kApps) {
    for (const ProtocolKind protocol : kProtocols) {
      for (int i = 0; i < plans; ++i) {
        RunSpec spec;
        spec.app = app;
        spec.protocol = protocol;
        spec.plan = make_plan(i);
        spec.fault_seed = 3000u + static_cast<std::uint64_t>(i);
        spec.workers = 1;
        const std::string ctx = std::string(app) + " under " +
                                proto_name(protocol) + " plan " +
                                std::to_string(i) + " [" + spec.plan + "]";
        const harness::RunResult faulty = run_one(spec);
        EXPECT_EQ(faulty.checksum, 1.0) << ctx;
        // final_residual is the worst drain-sweep reading: after sticky
        // global convergence a node's last sweep can be jolted slightly
        // above tolerance by a neighbor's late publish. The convergence
        // criterion proper (windowed detector verdict on every node) is
        // the checksum above; the drain reading just has to stay in the
        // same decade.
        EXPECT_LE(faulty.final_residual, 1e-5) << ctx;

        RunSpec other = spec;
        other.workers = 3;
        expect_identical(faulty, run_one(other), ctx + " (worker cross-check)");
      }
    }
  }
}

// Same seed, same plan => same run; different seed => the plan actually
// bites differently (iteration counts or message census move). Guards
// against a fault stream that silently ignores the seed.
TEST(AsyncConformanceTest, FaultSeedIsLoadBearing) {
  RunSpec spec;
  spec.plan = "drop=0.3";
  spec.fault_seed = 41;
  const harness::RunResult a = run_one(spec);
  const harness::RunResult again = run_one(spec);
  expect_identical(a, again, "same seed replay");

  RunSpec reseeded = spec;
  reseeded.fault_seed = 42;
  const harness::RunResult b = run_one(reseeded);
  EXPECT_EQ(b.checksum, 1.0);
  EXPECT_TRUE(a.elapsed != b.elapsed ||
              a.net.table_messages() != b.net.table_messages() ||
              a.counters.async_refreshes.load() !=
                  b.counters.async_refreshes.load())
      << "different fault seeds produced identical runs";
}

// The staleness bound is part of the configuration: tightening it to 0
// (always-fresh reads) must still converge, and under loss it must change
// the refresh traffic, not the outcome.
TEST(AsyncConformanceTest, StalenessBoundNeverChangesOutcome) {
  for (const int bound : {0, 1, 8}) {
    RunSpec spec;
    spec.plan = "drop=0.3";
    spec.fault_seed = 7;
    apps::AppParams params;
    params.scale = 0.1;
    dsm::ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.gang = GangMode::Async;
    cfg.staleness_bound = bound;
    cfg.faults = sim::FaultSpec::parse(spec.plan);
    cfg.fault_seed = spec.fault_seed;
    const harness::RunResult r =
        harness::run_app("jacobi-async", ProtocolKind::AsyncU, cfg, params);
    EXPECT_EQ(r.checksum, 1.0) << "staleness bound " << bound;
    EXPECT_LE(r.final_residual, 1e-5) << "staleness bound " << bound;
  }
}

}  // namespace
}  // namespace updsm
