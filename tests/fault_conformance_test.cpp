// Fault-conformance soak: the whole point of the fault subsystem is that an
// adversarial transport changes WHEN things happen, never WHAT is computed.
// This drives the six paper protocols on a regular stencil (jacobi) and an
// irregular mesh (tomcat), in both gang modes, under a battery of seeded
// random fault plans (drops, dups, delays, stalls, targeted rules), and
// requires every run to be bit-identical to its fault-free baseline with
// internally consistent fault counters.
//
// Plan count defaults to 20; UPDSM_FAULT_PLANS=<n> shrinks (or grows) the
// battery, which CI uses to keep the sanitizer job inside its time budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "updsm/common/rng.hpp"
#include "updsm/harness/experiment.hpp"

namespace updsm {
namespace {

using protocols::ProtocolKind;
using sim::GangMode;

struct Scenario {
  const char* app;
  std::vector<ProtocolKind> kinds;
};

// tomcat's write pattern shifts between iterations, so the overdrive
// predictors (bar-s / bar-m) are off the table for it -- same exclusion the
// benches apply.
const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> s{
      {"jacobi",
       {ProtocolKind::LmwI, ProtocolKind::LmwU, ProtocolKind::BarI,
        ProtocolKind::BarU, ProtocolKind::BarS, ProtocolKind::BarM}},
      {"tomcat",
       {ProtocolKind::LmwI, ProtocolKind::LmwU, ProtocolKind::BarI,
        ProtocolKind::BarU}},
  };
  return s;
}

int plan_count() {
  if (const char* env = std::getenv("UPDSM_FAULT_PLANS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 20;
}

/// Deterministic plan battery: plan i is a pure function of i. Mixes broad
/// low-rate plans, aggressive drop plans, kind-targeted rules and stalls.
std::string make_plan(int i) {
  std::uint64_t x = 0x1998'0330u + static_cast<std::uint64_t>(i);
  auto draw = [&x] {
    x = splitmix64(x);
    return static_cast<double>(x >> 11) * 0x1.0p-53;
  };
  auto pct = [&](double lo, double hi) {
    const double p = lo + draw() * (hi - lo);
    return std::to_string(p).substr(0, 6);
  };
  std::string plan;
  switch (i % 4) {
    case 0:  // uniform lossy channel
      plan = "drop=" + pct(0.02, 0.15);
      break;
    case 1:  // drops + dups + reordering delays everywhere
      plan = "drop=" + pct(0.01, 0.1) + ",dup=" + pct(0.01, 0.1) +
             ",delay=" + pct(0.01, 0.1) + ",delay_us=" +
             std::to_string(50 + static_cast<int>(draw() * 400));
      break;
    case 2:  // hammer one message kind, lightly stress the rest
      plan = std::string("kind=") +
             (i % 8 < 4 ? "data-reply" : "flush") + ",drop=" +
             pct(0.1, 0.3) + ";drop=" + pct(0.0, 0.05);
      break;
    default:  // asymmetric pair loss + a flaky node that stalls
      plan = "from=0,to=1,drop=" + pct(0.1, 0.3) + ";drop=" +
             pct(0.01, 0.08) + ";node=1,stall=" + pct(0.1, 0.4) +
             ",stall_us=" + std::to_string(100 + static_cast<int>(draw() * 800));
      break;
  }
  return plan;
}

harness::RunResult run_one(const char* app, ProtocolKind kind, GangMode gang,
                           const std::string& plan, std::uint64_t fault_seed) {
  apps::AppParams params;
  params.scale = 0.1;
  params.warmup_iterations = 4;
  params.measured_iterations = 2;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.gang = gang;
  if (!plan.empty()) {
    cfg.faults = sim::FaultSpec::parse(plan);
    cfg.fault_seed = fault_seed;
  }
  return harness::run_app(app, kind, cfg, params);
}

TEST(FaultConformanceTest, AllProtocolsBitExactUnderRandomPlans) {
  const int plans = plan_count();
  for (const Scenario& sc : scenarios()) {
    for (const ProtocolKind kind : sc.kinds) {
      const harness::RunResult base =
          run_one(sc.app, kind, GangMode::Parallel, "", 0);
      ASSERT_NE(base.checksum, 0.0) << sc.app;
      for (int i = 0; i < plans; ++i) {
        const std::string plan = make_plan(i);
        const std::uint64_t seed = 1000u + static_cast<std::uint64_t>(i);
        const harness::RunResult faulty =
            run_one(sc.app, kind, GangMode::Parallel, plan, seed);
        const std::string ctx = std::string(sc.app) + " under " +
                                protocols::to_string(kind) + " plan " +
                                std::to_string(i) + " [" + plan + "]";
        // The contract: faults shift time, never data.
        EXPECT_EQ(faulty.checksum, base.checksum) << ctx;
        EXPECT_EQ(faulty.barriers, base.barriers) << ctx;
        // Counter consistency: every retry was provoked by a loss, every
        // injected duplicate was suppressed exactly once, and a run that
        // lost reliable traffic must show the recovery work.
        EXPECT_GE(faulty.net.total_dropped(), faulty.counters.reliable_retries)
            << ctx;
        EXPECT_GE(faulty.counters.dup_suppressed, faulty.net.injected_dups)
            << ctx;
        // Recovery is (nearly) never free. Losing an aggregated update
        // batch can shave a sliver of time -- the receiver skips storage
        // work for speculative updates it would never have consumed -- so
        // allow a 2% tolerance instead of strict monotonicity.
        EXPECT_GE(faulty.elapsed * 100, base.elapsed * 98)
            << ctx << ": recovery made the run substantially faster";
      }
    }
  }
}

// The injected schedule is keyed by traffic content, not thread timing, so
// the two gang modes must agree on every observable -- times, counters and
// traffic -- under every plan, exactly as they do fault-free.
TEST(FaultConformanceTest, GangModesAgreeUnderFaults) {
  const int plans = plan_count();
  for (const Scenario& sc : scenarios()) {
    for (const ProtocolKind kind : sc.kinds) {
      for (int i = 0; i < plans; ++i) {
        const std::string plan = make_plan(i);
        const std::uint64_t seed = 1000u + static_cast<std::uint64_t>(i);
        const harness::RunResult baton =
            run_one(sc.app, kind, GangMode::Baton, plan, seed);
        const harness::RunResult par =
            run_one(sc.app, kind, GangMode::Parallel, plan, seed);
        const std::string ctx = std::string(sc.app) + " under " +
                                protocols::to_string(kind) + " plan " +
                                std::to_string(i);
        EXPECT_EQ(baton.checksum, par.checksum) << ctx;
        EXPECT_EQ(baton.elapsed, par.elapsed) << ctx;
        EXPECT_EQ(baton.net.total_bytes(), par.net.total_bytes()) << ctx;
        EXPECT_EQ(baton.net.total_dropped(), par.net.total_dropped()) << ctx;
        EXPECT_EQ(baton.net.injected_dups, par.net.injected_dups) << ctx;
        EXPECT_EQ(baton.counters.reliable_retries,
                  par.counters.reliable_retries)
            << ctx;
        EXPECT_EQ(baton.counters.dup_suppressed, par.counters.dup_suppressed)
            << ctx;
        EXPECT_EQ(baton.counters.recovery_faults, par.counters.recovery_faults)
            << ctx;
        EXPECT_EQ(baton.counters.node_stalls, par.counters.node_stalls) << ctx;
      }
    }
  }
}

// sc-sw rides its own single-writer machinery (and is baton-only); give it
// a lighter soak of its own so the whole protocol roster is covered.
TEST(FaultConformanceTest, ScSwSurvivesFaults) {
  const int plans = std::min(plan_count(), 5);
  const harness::RunResult base =
      run_one("jacobi", ProtocolKind::ScSw, GangMode::Baton, "", 0);
  for (int i = 0; i < plans; ++i) {
    const harness::RunResult faulty = run_one(
        "jacobi", ProtocolKind::ScSw, GangMode::Baton, make_plan(i),
        1000u + static_cast<std::uint64_t>(i));
    EXPECT_EQ(faulty.checksum, base.checksum) << make_plan(i);
  }
}

}  // namespace
}  // namespace updsm
