// Determinism contract of the parallel experiment engine: a grid run on N
// workers must be indistinguishable, cell for cell, from the same grid run
// serially -- results are keyed by grid index, and each cell is an
// independent bit-deterministic simulation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "updsm/harness/parallel_grid.hpp"

namespace updsm {
namespace {

using protocols::ProtocolKind;

apps::AppParams tiny_params() {
  apps::AppParams p;
  p.scale = 0.15;
  p.warmup_iterations = 2;
  p.measured_iterations = 2;
  p.seed = 42;
  return p;
}

dsm::ClusterConfig tiny_config() {
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.seed = 42;
  return cfg;
}

std::vector<std::function<harness::RunResult()>> small_grid_tasks() {
  std::vector<std::function<harness::RunResult()>> tasks;
  for (const char* app : {"jacobi", "sor"}) {
    for (const ProtocolKind kind : {ProtocolKind::LmwI, ProtocolKind::BarU}) {
      tasks.push_back([app, kind] {
        return harness::run_app(app, kind, tiny_config(), tiny_params());
      });
    }
    tasks.push_back([app] {
      return harness::run_sequential(app, tiny_config(), tiny_params());
    });
  }
  return tasks;
}

TEST(ParallelGridTest, JobsOneMatchesJobsFourPerCell) {
  const auto serial = harness::run_grid(small_grid_tasks(), 1);
  const auto parallel = harness::run_grid(small_grid_tasks(), 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& a = serial[i];
    const auto& b = parallel[i];
    EXPECT_EQ(a.app, b.app) << "cell " << i;
    EXPECT_EQ(a.protocol, b.protocol) << "cell " << i;
    EXPECT_EQ(a.checksum, b.checksum) << "cell " << i;
    EXPECT_EQ(a.elapsed, b.elapsed) << "cell " << i;
    EXPECT_EQ(a.barriers, b.barriers) << "cell " << i;
    EXPECT_EQ(a.counters.diffs_created, b.counters.diffs_created)
        << "cell " << i;
    EXPECT_EQ(a.counters.zero_diffs, b.counters.zero_diffs) << "cell " << i;
    EXPECT_EQ(a.counters.remote_misses, b.counters.remote_misses)
        << "cell " << i;
    EXPECT_EQ(a.counters.updates_sent, b.counters.updates_sent)
        << "cell " << i;
    EXPECT_EQ(a.net.table_messages(), b.net.table_messages()) << "cell " << i;
    EXPECT_EQ(a.net.total_bytes(), b.net.total_bytes()) << "cell " << i;
  }
}

TEST(ParallelGridTest, ResultsLandAtTheirGridIndex) {
  // More workers than tasks, and tasks of uneven cost: completion order is
  // arbitrary, collection order must not be.
  const auto results = harness::run_grid(small_grid_tasks(), 16);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].app, "jacobi");
  EXPECT_EQ(results[0].protocol, "lmw-i");
  EXPECT_EQ(results[1].protocol, "bar-u");
  EXPECT_EQ(results[2].nodes, 1);  // sequential baseline
  EXPECT_EQ(results[3].app, "sor");
  EXPECT_EQ(results[5].nodes, 1);
}

TEST(ParallelGridTest, FirstTaskExceptionPropagates) {
  std::vector<std::function<harness::RunResult()>> tasks;
  tasks.push_back([] {
    return harness::run_app("jacobi", ProtocolKind::BarI, tiny_config(),
                            tiny_params());
  });
  tasks.push_back([]() -> harness::RunResult {
    throw std::runtime_error("cell exploded");
  });
  EXPECT_THROW((void)harness::run_grid(tasks, 4), std::runtime_error);
  EXPECT_THROW((void)harness::run_grid(tasks, 1), std::runtime_error);
}

TEST(ParallelGridTest, DefaultJobsIsPositive) {
  EXPECT_GE(harness::default_jobs(), 1);
}

}  // namespace
}  // namespace updsm
