// ConvergenceDetector unit battery: the async runs' termination oracle
// must (a) terminate on monotone decrease, (b) never deadlock on a node
// that settled and then went silent (the straggler case), (c) never
// produce a false positive on an oscillating residual, and (d) stay
// sticky once converged -- late drain reports must not resurrect a run.
#include <gtest/gtest.h>

#include "updsm/common/error.hpp"
#include "updsm/protocols/convergence.hpp"

namespace updsm::protocols {
namespace {

TEST(ConvergenceDetectorTest, MonotoneDecreaseTerminates) {
  ConvergenceDetector det(3, 1e-6, 3);
  double r = 1.0;
  bool converged = false;
  for (int round = 0; round < 64 && !converged; ++round) {
    for (int n = 0; n < 3; ++n) converged = det.report(n, r);
    r *= 0.5;
  }
  EXPECT_TRUE(converged);
  EXPECT_TRUE(det.converged());
  for (int n = 0; n < 3; ++n) EXPECT_TRUE(det.settled(n));
}

TEST(ConvergenceDetectorTest, RequiresTheFullWindow) {
  ConvergenceDetector det(1, 1e-6, 3);
  EXPECT_FALSE(det.report(0, 1e-9));
  EXPECT_FALSE(det.report(0, 1e-9));
  EXPECT_TRUE(det.report(0, 1e-9));  // third consecutive: settled
}

// A node that settles and then goes quiet (stalled, or simply drained out
// of its loop) must not block detection: its verdict persists with no
// fresh reports required.
TEST(ConvergenceDetectorTest, SilentSettledNodeDoesNotDeadlock) {
  ConvergenceDetector det(2, 1e-6, 2);
  EXPECT_FALSE(det.report(0, 1e-8));
  EXPECT_FALSE(det.report(0, 1e-8));  // node 0 settles, then goes silent
  EXPECT_TRUE(det.settled(0));

  EXPECT_FALSE(det.report(1, 0.5));
  EXPECT_FALSE(det.report(1, 1e-8));
  EXPECT_TRUE(det.report(1, 1e-8));  // node 1 settles -> global, no node-0
  EXPECT_TRUE(det.converged());      // report needed in between
}

// Oscillation around the tolerance must never settle a node: any report
// above tolerance resets both the streak and the settled flag.
TEST(ConvergenceDetectorTest, OscillationNeverConverges) {
  ConvergenceDetector det(1, 1e-6, 3);
  for (int i = 0; i < 100; ++i) {
    const double r = (i % 3 == 2) ? 1e-5 : 1e-9;  // spike every third report
    EXPECT_FALSE(det.report(0, r)) << "report " << i;
  }
  EXPECT_FALSE(det.converged());
  EXPECT_FALSE(det.settled(0));
}

TEST(ConvergenceDetectorTest, SpikeUnsettlesANode) {
  ConvergenceDetector det(2, 1e-6, 2);
  det.report(0, 1e-8);
  det.report(0, 1e-8);
  ASSERT_TRUE(det.settled(0));
  det.report(0, 0.25);  // late spike before global convergence
  EXPECT_FALSE(det.settled(0));
  // ... and the streak restarts from zero.
  det.report(0, 1e-8);
  EXPECT_FALSE(det.settled(0));
  det.report(0, 1e-8);
  EXPECT_TRUE(det.settled(0));
}

// Once every node is settled the verdict is sticky: a draining node's
// last report -- even a wild one -- returns true and changes nothing.
TEST(ConvergenceDetectorTest, ConvergenceIsSticky) {
  ConvergenceDetector det(2, 1e-6, 1);
  det.report(0, 1e-8);
  EXPECT_TRUE(det.report(1, 1e-8));
  ASSERT_TRUE(det.converged());
  EXPECT_TRUE(det.report(0, 42.0));  // drain report far above tolerance
  EXPECT_TRUE(det.converged());
  EXPECT_TRUE(det.settled(0));
  EXPECT_TRUE(det.settled(1));
}

TEST(ConvergenceDetectorTest, WorstResidualTracksReporters) {
  ConvergenceDetector det(3, 1e-6, 1);
  EXPECT_EQ(det.worst_residual(), 0.0);  // nobody reported yet
  det.report(0, 1e-8);
  det.report(1, 3e-4);
  EXPECT_DOUBLE_EQ(det.worst_residual(), 3e-4);  // node 2 silent: excluded
  det.report(1, 2e-8);
  EXPECT_DOUBLE_EQ(det.worst_residual(), 2e-8);  // last report wins
}

TEST(ConvergenceDetectorTest, RejectsBadConstruction) {
  EXPECT_THROW(ConvergenceDetector(0, 1e-6, 3), UsageError);
  EXPECT_THROW(ConvergenceDetector(2, 0.0, 3), UsageError);
  EXPECT_THROW(ConvergenceDetector(2, 1e-6, 0), UsageError);
}

}  // namespace
}  // namespace updsm::protocols
