// The end-to-end correctness matrix: every application, under every
// protocol, must produce a checksum BIT-IDENTICAL to its own 1-node
// sequential execution (all kernels are deterministic and parallelisation
// never reorders any floating-point operation).
//
// This is the strongest statement the reproduction makes: diffs, twins,
// versions, copysets, updates, migration and overdrive all have to be
// exactly right, across every sharing pattern in the paper's suite.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "updsm/harness/experiment.hpp"

namespace updsm {
namespace {

using harness::run_app;
using harness::run_sequential;
using protocols::ProtocolKind;

struct Case {
  std::string_view app;
  ProtocolKind kind;
};

class AppValidationTest : public ::testing::TestWithParam<Case> {
 protected:
  static apps::AppParams params() {
    apps::AppParams p;
    p.scale = 0.25;  // small grids keep the full matrix fast
    p.warmup_iterations = 5;
    p.measured_iterations = 4;
    return p;
  }
  static dsm::ClusterConfig config() {
    dsm::ClusterConfig cfg;
    cfg.num_nodes = 8;
    return cfg;
  }

  // The sequential reference for each app is computed once and cached.
  static double reference(std::string_view app) {
    static std::map<std::string, double, std::less<>> cache;
    const auto it = cache.find(app);
    if (it != cache.end()) return it->second;
    const auto seq = run_sequential(app, config(), params());
    cache.emplace(std::string(app), seq.checksum);
    return seq.checksum;
  }
};

TEST_P(AppValidationTest, ChecksumMatchesSequential) {
  const Case& c = GetParam();
  const auto result = run_app(c.app, c.kind, config(), params());
  EXPECT_EQ(result.checksum, reference(c.app))
      << c.app << " under " << protocols::to_string(c.kind)
      << " diverged from sequential execution";
  EXPECT_GT(result.elapsed, 0);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const apps::AppParams probe_params;
  for (const auto app : apps::app_names()) {
    const bool od_safe = apps::make_app(app, probe_params)->overdrive_safe();
    for (const ProtocolKind kind : protocols::all_paper_protocols()) {
      // barnes' sharing pattern is dynamic: the paper excludes it from the
      // overdrive protocols (§5.1) and so do we.
      if (!od_safe && (kind == ProtocolKind::BarS ||
                       kind == ProtocolKind::BarM)) {
        continue;
      }
      cases.push_back(Case{app, kind});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AppValidationTest, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = std::string(info.param.app) + "_" +
                         protocols::to_string(info.param.kind);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace updsm
