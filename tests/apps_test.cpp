// Application-framework tests: the registry, scaling rules, determinism of
// checksums across node counts, and the framework's run() skeleton.
#include <gtest/gtest.h>

#include "updsm/apps/application.hpp"
#include "updsm/apps/grid.hpp"
#include "updsm/apps/jacobi.hpp"
#include "updsm/apps/registry.hpp"
#include "updsm/harness/experiment.hpp"

namespace updsm::apps {
namespace {

TEST(RegistryTest, AllPaperAppsByName) {
  const AppParams params;
  const auto names = app_names();
  ASSERT_EQ(names.size(), 8u);  // the paper's Table-1 suite
  for (const auto name : names) {
    auto app = make_app(name, params);
    ASSERT_NE(app, nullptr);
    EXPECT_EQ(app->name(), name);
  }
  EXPECT_THROW((void)make_app("nosuch", params), UsageError);
}

TEST(RegistryTest, OnlyBarnesIsOverdriveUnsafe) {
  const AppParams params;
  for (const auto name : app_names()) {
    const bool safe = make_app(name, params)->overdrive_safe();
    EXPECT_EQ(safe, name != "barnes") << name;
  }
}

TEST(ScaledDimTest, RespectsMultipleAndMinimum) {
  EXPECT_EQ(scaled_dim(512, 1.0, 16), 512u);
  EXPECT_EQ(scaled_dim(512, 0.25, 16), 128u);
  EXPECT_EQ(scaled_dim(512, 0.01, 16), 16u);  // clamped to the multiple
  EXPECT_EQ(scaled_dim(100, 1.0, 16), 96u);   // rounded down to multiple
}

TEST(BlockRangeTest, PartitionsExactly) {
  for (const std::size_t n : {1u, 7u, 64u, 100u, 1000u}) {
    for (const int parts : {1, 2, 3, 8, 16}) {
      std::size_t covered = 0;
      std::size_t prev_hi = 0;
      for (int k = 0; k < parts; ++k) {
        const Range r = block_range(n, parts, k);
        EXPECT_EQ(r.lo, prev_hi);
        prev_hi = r.hi;
        covered += r.size();
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_hi, n);
    }
  }
}

// Each app's checksum must be identical at 1, 2 and 8 nodes: the paper's
// methodology depends on the parallel runs computing the sequential answer.
class AppNodeSweepTest
    : public ::testing::TestWithParam<std::string_view> {};

TEST_P(AppNodeSweepTest, ChecksumInvariantAcrossNodeCounts) {
  AppParams params;
  params.scale = 0.25;
  params.warmup_iterations = 5;
  params.measured_iterations = 2;
  dsm::ClusterConfig cfg;

  const auto seq = harness::run_sequential(GetParam(), cfg, params);
  for (const int nodes : {2, 8}) {
    cfg.num_nodes = nodes;
    const auto par = harness::run_app(GetParam(),
                                      protocols::ProtocolKind::BarU, cfg,
                                      params);
    EXPECT_EQ(par.checksum, seq.checksum)
        << GetParam() << " at " << nodes << " nodes";
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppNodeSweepTest,
                         ::testing::ValuesIn(app_names()),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(AppFrameworkTest, RunsExpectedBarrierStructure) {
  // sor: 1 init barrier + 2 barriers for each of the 5 time-steps + 1
  // end-of-measurement barrier + 1 post-checksum barrier.
  AppParams params;
  params.scale = 0.1;
  params.warmup_iterations = 2;
  params.measured_iterations = 3;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  const auto run = harness::run_app("sor", protocols::ProtocolKind::LmwI,
                                    cfg, params);
  EXPECT_EQ(run.barriers, 1u + 5u * 2u + 1u + 1u);
}

TEST(AppFrameworkTest, ShalIsFinerGrainedThanItsBarrierTwin) {
  AppParams params;
  params.scale = 0.1;
  params.warmup_iterations = 1;
  params.measured_iterations = 1;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 2;
  const auto shal = harness::run_app("shal", protocols::ProtocolKind::LmwI,
                                     cfg, params);
  const auto swm = harness::run_app("swm", protocols::ProtocolKind::LmwI,
                                    cfg, params);
  EXPECT_GT(swm.barriers, shal.barriers)
      << "swm is the fine-synchronization-granularity variant";
}

TEST(AppFrameworkTest, SharedSegmentsMatchPaperScaleExpectations) {
  const AppParams params;  // scale 1.0
  for (const auto name : app_names()) {
    auto app = make_app(name, params);
    mem::SharedHeap heap(8192);
    app->allocate(heap);
    // Every paper app's shared segment sits in the hundreds-of-KB to
    // tens-of-MB band that stresses (or intentionally avoids stressing)
    // the VM layer.
    EXPECT_GE(heap.bytes_used(), 256u * 1024) << name;
    EXPECT_LE(heap.bytes_used(), 64u * 1024 * 1024) << name;
  }
}

TEST(AppFrameworkTest, JacobiResidualDecreases) {
  AppParams params;
  params.scale = 0.1;
  params.warmup_iterations = 2;
  params.measured_iterations = 8;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 1;
  auto app = make_app("jacobi", params);
  mem::SharedHeap heap(cfg.page_size);
  app->allocate(heap);
  dsm::Cluster cluster(cfg, heap,
                       protocols::make_protocol(protocols::ProtocolKind::Null));
  cluster.run([&](dsm::NodeContext& ctx) { app->run(ctx); });
  auto* jacobi = dynamic_cast<JacobiApp*>(app.get());
  ASSERT_NE(jacobi, nullptr);
  EXPECT_GT(jacobi->last_residual(), 0.0);
  EXPECT_LT(jacobi->last_residual(), 4.0)
      << "the solve must be converging, not diverging";
}

}  // namespace
}  // namespace updsm::apps
