// Wire-format unit tests for the aggregated FlushBatch (dsm/flush_batch.hpp):
// record round-trips against a reference decode, rejection of truncated and
// corrupted batches, empty-batch elision at the runtime layer, and the
// batch/record cost accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "updsm/common/rng.hpp"
#include "updsm/dsm/config.hpp"
#include "updsm/dsm/flush_batch.hpp"
#include "updsm/dsm/runtime.hpp"
#include "updsm/mem/diff.hpp"

namespace updsm {
namespace {

using dsm::BatchReadStatus;
using dsm::FlushBatchReader;
using dsm::FlushBatchWriter;
using dsm::FlushRecordView;
using mem::Diff;

constexpr std::size_t kPage = 1024;

NodeId nid(std::uint32_t v) { return NodeId{v}; }
PageId pid(std::uint32_t v) { return PageId{v}; }

/// A reproducible diff with `mods` scattered modified ranges.
Diff random_diff(std::uint64_t seed, int mods) {
  Xoshiro256 rng(seed);
  std::vector<std::byte> twin(kPage, std::byte{0});
  std::vector<std::byte> cur = twin;
  for (int m = 0; m < mods; ++m) {
    const std::size_t at = rng() % kPage;
    const std::size_t len = 1 + rng() % 32;
    for (std::size_t i = at; i < std::min(at + len, kPage); ++i) {
      cur[i] = static_cast<std::byte>(rng() & 0xff);
    }
  }
  return Diff::create(twin, cur);
}

/// Reference record decode: every view field must match the staged diff.
void expect_matches(const FlushRecordView& rec, PageId page, NodeId creator,
                    EpochId epoch, const Diff& diff) {
  EXPECT_EQ(rec.page, page);
  EXPECT_EQ(rec.creator, creator);
  EXPECT_EQ(rec.epoch, epoch);
  ASSERT_EQ(rec.runs.size(), diff.runs().size());
  for (std::size_t i = 0; i < rec.runs.size(); ++i) {
    EXPECT_EQ(rec.runs[i].offset, diff.runs()[i].offset);
    EXPECT_EQ(rec.runs[i].length, diff.runs()[i].length);
  }
  ASSERT_EQ(rec.payload.size(), diff.payload().size());
  EXPECT_EQ(std::memcmp(rec.payload.data(), diff.payload().data(),
                        rec.payload.size()),
            0);
  EXPECT_EQ(rec.diff_wire_bytes(), diff.wire_bytes());

  // decode_into reproduces the diff; applying both to the same base agrees.
  Diff decoded;
  rec.decode_into(decoded);
  std::vector<std::byte> via_diff(kPage, std::byte{0x5a});
  std::vector<std::byte> via_view(kPage, std::byte{0x5a});
  diff.apply(via_diff);
  rec.apply(via_view);
  EXPECT_EQ(via_diff, via_view);
  std::vector<std::byte> via_decoded(kPage, std::byte{0x5a});
  decoded.apply(via_decoded);
  EXPECT_EQ(via_diff, via_decoded);
}

TEST(FlushBatchTest, RoundTripsManyRandomRecords) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    FlushBatchWriter writer;
    writer.begin(nid(3));
    std::vector<Diff> staged;
    const int records = 1 + static_cast<int>(seed % 5);
    for (int r = 0; r < records; ++r) {
      staged.push_back(random_diff(seed * 97 + r, 1 + r * 3));
      writer.add(pid(10 + r), nid(r % 4), EpochId{seed},
                 staged.back());
    }
    writer.seal();
    EXPECT_EQ(writer.record_count(), static_cast<std::uint32_t>(records));

    FlushBatchReader reader(writer.bytes());
    ASSERT_TRUE(reader.header_ok());
    EXPECT_EQ(reader.sender(), nid(3));
    EXPECT_EQ(reader.record_count(), static_cast<std::uint32_t>(records));
    FlushRecordView rec;
    for (int r = 0; r < records; ++r) {
      ASSERT_EQ(reader.next(rec), BatchReadStatus::Record) << "record " << r;
      expect_matches(rec, pid(10 + r), nid(r % 4), EpochId{seed}, staged[r]);
    }
    EXPECT_EQ(reader.next(rec), BatchReadStatus::End);
    EXPECT_EQ(reader.next(rec), BatchReadStatus::End);  // idempotent
  }
}

TEST(FlushBatchTest, WriterResetKeepsNothingAcrossBatches) {
  FlushBatchWriter writer;
  const Diff d1 = random_diff(7, 4);
  writer.begin(nid(0));
  writer.add(pid(1), nid(0), EpochId{1}, d1);
  writer.seal();
  const std::size_t first_size = writer.bytes().size();
  writer.reset();
  EXPECT_TRUE(writer.empty());
  EXPECT_TRUE(writer.bytes().empty());

  const Diff d2 = random_diff(8, 1);
  writer.begin(nid(2));
  writer.add(pid(9), nid(2), EpochId{5}, d2);
  writer.seal();
  EXPECT_NE(writer.bytes().size(), first_size);
  FlushBatchReader reader(writer.bytes());
  ASSERT_TRUE(reader.header_ok());
  EXPECT_EQ(reader.sender(), nid(2));
  FlushRecordView rec;
  ASSERT_EQ(reader.next(rec), BatchReadStatus::Record);
  expect_matches(rec, pid(9), nid(2), EpochId{5}, d2);
  EXPECT_EQ(reader.next(rec), BatchReadStatus::End);
}

TEST(FlushBatchTest, RejectsTruncationAtEveryLength) {
  FlushBatchWriter writer;
  writer.begin(nid(1));
  const Diff a = random_diff(11, 3);
  const Diff b = random_diff(12, 2);
  writer.add(pid(0), nid(1), EpochId{2}, a);
  writer.add(pid(1), nid(1), EpochId{2}, b);
  writer.seal();
  const auto whole = writer.bytes();
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    FlushBatchReader reader(whole.first(cut));
    if (cut < dsm::kFlushBatchHeaderBytes) {
      EXPECT_FALSE(reader.header_ok()) << "cut " << cut;
      continue;
    }
    // Header bytes present but the body is short: the header's declared
    // body_bytes no longer fits, so the batch is rejected up front.
    EXPECT_FALSE(reader.header_ok()) << "cut " << cut;
    FlushRecordView rec;
    EXPECT_EQ(reader.next(rec), BatchReadStatus::Corrupt) << "cut " << cut;
  }
}

TEST(FlushBatchTest, RejectsCorruptedHeadersAndBodies) {
  FlushBatchWriter writer;
  writer.begin(nid(0));
  const Diff d = random_diff(21, 3);
  writer.add(pid(4), nid(0), EpochId{1}, d);
  writer.seal();
  const auto good = writer.bytes();
  FlushRecordView rec;

  {  // bad magic
    std::vector<std::byte> bytes(good.begin(), good.end());
    bytes[0] = std::byte{0x00};
    EXPECT_FALSE(FlushBatchReader(bytes).header_ok());
  }
  {  // record_count larger than the body holds
    std::vector<std::byte> bytes(good.begin(), good.end());
    const std::uint32_t two = 2;
    std::memcpy(bytes.data() + 8, &two, 4);
    FlushBatchReader reader(bytes);
    ASSERT_TRUE(reader.header_ok());
    EXPECT_EQ(reader.next(rec), BatchReadStatus::Record);
    EXPECT_EQ(reader.next(rec), BatchReadStatus::Corrupt);
  }
  {  // record_count smaller than the body holds: trailing junk detected
    std::vector<std::byte> bytes(good.begin(), good.end());
    const std::uint32_t zero = 0;
    std::memcpy(bytes.data() + 8, &zero, 4);
    FlushBatchReader reader(bytes);
    ASSERT_TRUE(reader.header_ok());
    EXPECT_EQ(reader.next(rec), BatchReadStatus::Corrupt);
  }
  {  // run lengths no longer sum to payload_len
    std::vector<std::byte> bytes(good.begin(), good.end());
    const std::size_t run_len_at =
        dsm::kFlushBatchHeaderBytes + dsm::kFlushRecordHeaderBytes + 4;
    std::uint32_t len = 0;
    std::memcpy(&len, bytes.data() + run_len_at, 4);
    len += 1;
    std::memcpy(bytes.data() + run_len_at, &len, 4);
    FlushBatchReader reader(bytes);
    ASSERT_TRUE(reader.header_ok());
    EXPECT_EQ(reader.next(rec), BatchReadStatus::Corrupt);
  }
  {  // declared payload_len overflowing the record body
    std::vector<std::byte> bytes(good.begin(), good.end());
    const std::size_t payload_len_at =
        dsm::kFlushBatchHeaderBytes + dsm::kFlushRecordHeaderBytes - 4;
    const std::uint32_t huge = 1u << 30;
    std::memcpy(bytes.data() + payload_len_at, &huge, 4);
    FlushBatchReader reader(bytes);
    ASSERT_TRUE(reader.header_ok());
    EXPECT_EQ(reader.next(rec), BatchReadStatus::Corrupt);
  }
}

TEST(FlushBatchTest, EmptyBatchesAreElided) {
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.aggregate_flushes = true;
  dsm::Runtime rt(cfg, 8);

  // Nothing staged: sealing transmits nothing at all.
  rt.seal_flush_batches();
  EXPECT_EQ(rt.net().stats().total_one_way_messages(), 0u);
  EXPECT_EQ(rt.counters().flush_batches.load(), 0u);

  // One staged record: exactly one FlushBatch, only between that pair, and
  // the delivery callback sees the staged diff back.
  const Diff d = random_diff(31, 2);
  int delivered = 0;
  rt.stage_flush(nid(1), nid(2), pid(3), nid(1), d, /*reliable=*/false,
                 [&](const FlushRecordView& rec) {
                   ++delivered;
                   expect_matches(rec, pid(3), nid(1), rt.epoch(), d);
                 });
  EXPECT_EQ(rt.net().stats().total_one_way_messages(), 0u)
      << "staging must not transmit";
  rt.seal_flush_batches();
  EXPECT_EQ(delivered, 1);
  const auto& stats = rt.net().stats();
  EXPECT_EQ(stats.of(sim::MsgKind::FlushBatch).count, 1u);
  EXPECT_EQ(stats.of(sim::MsgKind::FlushBatch).records, 1u);
  EXPECT_EQ(stats.of(sim::MsgKind::Flush).count, 0u);
  EXPECT_EQ(rt.counters().flush_batches.load(), 1u);
  EXPECT_EQ(rt.counters().flush_batch_records.load(), 1u);
  EXPECT_EQ(rt.counters().flush_batch_records_min.load(), 1u);
  EXPECT_EQ(rt.counters().flush_batch_records_max.load(), 1u);
  EXPECT_EQ(rt.counters().flush_batch_header_bytes_saved.load(), 0u)
      << "a 1-record batch saves no headers";

  // Sealing again without new staging is a no-op (buffers were reset).
  rt.seal_flush_batches();
  EXPECT_EQ(stats.of(sim::MsgKind::FlushBatch).count, 1u);
}

TEST(FlushBatchTest, BatchCostAccountingMatchesWireLayout) {
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.aggregate_flushes = true;
  dsm::Runtime rt(cfg, 8);
  const Diff a = random_diff(41, 2);
  const Diff b = random_diff(42, 5);
  rt.stage_flush(nid(0), nid(1), pid(0), nid(0), a, false, {});
  rt.stage_flush(nid(0), nid(1), pid(1), nid(0), b, false, {});
  rt.seal_flush_batches();

  auto padded = [](std::uint64_t n) { return (n + 3) & ~std::uint64_t{3}; };
  const std::uint64_t body =
      2 * dsm::kFlushRecordHeaderBytes +
      a.run_count() * sizeof(mem::DiffRun) + padded(a.payload_bytes()) +
      b.run_count() * sizeof(mem::DiffRun) + padded(b.payload_bytes());
  const auto& counter = rt.net().stats().of(sim::MsgKind::FlushBatch);
  EXPECT_EQ(counter.count, 1u);
  EXPECT_EQ(counter.records, 2u);
  EXPECT_EQ(counter.bytes, dsm::kFlushBatchHeaderBytes + body +
                               cfg.costs.net.header_bytes)
      << "one wire header per batch, all record framing counted as payload";
  EXPECT_EQ(rt.counters().flush_batch_header_bytes_saved.load(),
            cfg.costs.net.header_bytes)
      << "two records in one message save exactly one header";
  EXPECT_EQ(rt.counters().flush_batch_records_min.load(), 2u);
  EXPECT_EQ(rt.counters().flush_batch_records_max.load(), 2u);
}

}  // namespace
}  // namespace updsm
