// Physics sanity tests: the application kernels are real numerical codes,
// so their conserved/monotone quantities must behave. Run sequentially
// (the protocol matrix already proves parallel == sequential bit-exactly).
#include <gtest/gtest.h>

#include <cmath>

#include "updsm/apps/expl.hpp"
#include "updsm/apps/registry.hpp"
#include "updsm/apps/shallow.hpp"
#include "updsm/apps/sor.hpp"
#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/protocols/factory.hpp"

namespace updsm::apps {
namespace {

using dsm::Cluster;
using dsm::NodeContext;

/// Runs `app` sequentially and hands node 0's post-run context to `probe`.
template <typename Probe>
void run_and_probe(Application& app, Probe&& probe) {
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 1;
  mem::SharedHeap heap(cfg.page_size);
  app.allocate(heap);
  Cluster cluster(cfg, heap,
                  protocols::make_protocol(protocols::ProtocolKind::Null));
  cluster.run([&](NodeContext& ctx) {
    app.run(ctx);
    probe(ctx);
  });
}

AppParams quick(int measured) {
  AppParams p;
  p.scale = 0.25;
  p.warmup_iterations = 1;
  p.measured_iterations = measured;
  return p;
}

TEST(PhysicsTest, SorHeatStaysWithinBoundaryBounds) {
  // SOR relaxation toward a harmonic function: interior values remain
  // within [min, max] of the boundary conditions (0 and 100).
  SorApp sor(quick(10));
  run_and_probe(sor, [&](NodeContext& ctx) {
    // The checksum path reads everything; here sample via the public API.
    (void)ctx;
  });
  // checksum = sum of values * 1e-3; with rows*cols cells all in [0, 100]:
  const double cells = static_cast<double>(sor.rows() * sor.cols());
  EXPECT_GT(sor.result_checksum(), 0.0);
  EXPECT_LT(sor.result_checksum(), cells * 100.0 * 1e-3);
}

TEST(PhysicsTest, ExplWaveEnergyIsBounded) {
  // The leapfrog wave equation with CFL-stable dt must not blow up; the
  // checksum (sum of displacements) stays near the initial pulse's sum.
  ExplApp shorter(quick(2));
  ExplApp longer(quick(12));
  run_and_probe(shorter, [](NodeContext&) {});
  run_and_probe(longer, [](NodeContext&) {});
  EXPECT_TRUE(std::isfinite(longer.result_checksum()));
  // Displacement sum is conserved by the discrete wave equation up to
  // boundary losses: the long run stays within 2x of the short run.
  EXPECT_NEAR(longer.result_checksum(), shorter.result_checksum(),
              std::abs(shorter.result_checksum()) + 1.0);
}

TEST(PhysicsTest, ShallowWaterMassIsConserved) {
  // The p (pressure/height) field's total is the system's mass analogue:
  // the periodic shallow-water equations conserve it to high relative
  // precision over short runs.
  auto measure = [](int iters) {
    ShallowApp app(quick(iters), "shal", 256, false, false);
    run_and_probe(app, [](NodeContext&) {});
    return app.result_checksum();  // dominated by sum(p) * 1e-6
  };
  const double short_run = measure(2);
  const double long_run = measure(12);
  EXPECT_NEAR(long_run / short_run, 1.0, 0.01)
      << "mass must be conserved to ~1%";
}

TEST(PhysicsTest, TomcatMeshConverges) {
  // The mesh smoother's max residual decreases as iterations accumulate.
  auto residual = [](int iters) {
    auto app = make_app("tomcat", quick(iters));
    run_and_probe(*app, [](NodeContext&) {});
    // checksum = sum(x - y) + last_residual; isolate the residual by
    // differencing two runs is fragile -- instead re-run and query the
    // typed app directly.
    return app->result_checksum();
  };
  // Convergence shows up as the checksum stabilizing between run lengths.
  const double a = residual(4);
  const double b = residual(12);
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_TRUE(std::isfinite(b));
  EXPECT_NEAR(a, b, std::abs(a) * 0.05 + 1.0)
      << "the mesh solve should be settling, not drifting";
}

TEST(PhysicsTest, FftSpectralSolverDecaysSmoothly) {
  // The spectral heat solver damps every nonzero mode: the checksum (sum
  // of real parts == the DC component up to rounding) is preserved while
  // the field flattens, so successive runs converge to the mean.
  auto checksum = [](int iters) {
    auto app = make_app("fft", quick(iters));
    run_and_probe(*app, [](NodeContext&) {});
    return app->result_checksum();
  };
  const double a = checksum(2);
  const double b = checksum(10);
  // Heat diffusion preserves the total (DC mode) exactly.
  EXPECT_NEAR(a, b, std::abs(a) * 1e-9 + 1e-6);
}

}  // namespace
}  // namespace updsm::apps
