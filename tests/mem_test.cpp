// Unit tests for the remaining mem/ components: page tables, the shared
// heap, twin stores and diff stores.
#include <gtest/gtest.h>

#include "updsm/dsm/diff_store.hpp"
#include "updsm/dsm/twin_store.hpp"
#include "updsm/mem/page_table.hpp"
#include "updsm/mem/shared_heap.hpp"

namespace updsm {
namespace {

using dsm::DiffStore;
using dsm::TwinStore;
using mem::Diff;
using mem::PageTable;
using mem::Protect;
using mem::SharedHeap;

// --- PageTable -------------------------------------------------------------

TEST(PageTableTest, StartsInvalidAndZeroFilled) {
  PageTable table(4, 1024);
  EXPECT_EQ(table.num_pages(), 4u);
  EXPECT_EQ(table.segment_bytes(), 4096u);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(table.prot(PageId{p}), Protect::None);
    for (const std::byte b : table.frame(PageId{p})) {
      EXPECT_EQ(b, std::byte{0});
    }
  }
}

TEST(PageTableTest, FramesAreDisjointAndContiguous) {
  PageTable table(4, 1024);
  table.frame(PageId{1})[0] = std::byte{0xaa};
  EXPECT_EQ(table.segment()[1024], std::byte{0xaa});
  EXPECT_EQ(table.frame(PageId{0})[0], std::byte{0});
  EXPECT_EQ(table.frame(PageId{2})[0], std::byte{0});
}

TEST(PageTableTest, PageOfMapsAddresses) {
  PageTable table(4, 1024);
  EXPECT_EQ(table.page_of(0), PageId{0});
  EXPECT_EQ(table.page_of(1023), PageId{0});
  EXPECT_EQ(table.page_of(1024), PageId{1});
  EXPECT_EQ(table.page_of(4095), PageId{3});
  EXPECT_THROW((void)table.page_of(4096), UsageError);
}

TEST(PageTableTest, RejectsBadGeometry) {
  EXPECT_THROW(PageTable(0, 1024), UsageError);
  EXPECT_THROW(PageTable(4, 1000), UsageError);  // not a power of two
  EXPECT_THROW(PageTable(4, 32), UsageError);    // too small
}

TEST(PageTableTest, OutOfRangePageChecks) {
  PageTable table(4, 1024);
  EXPECT_THROW((void)table.prot(PageId{4}), InternalError);
  EXPECT_THROW((void)table.frame(PageId{7}), InternalError);
}

// --- SharedHeap --------------------------------------------------------------

TEST(SharedHeapTest, AlignsAllocations) {
  SharedHeap heap(8192);
  const GlobalAddr a = heap.alloc(10, "a");
  const GlobalAddr b = heap.alloc(10, "b");
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 10);
  const GlobalAddr c = heap.alloc_page_aligned(100, "c");
  EXPECT_EQ(c % 8192, 0u);
}

TEST(SharedHeapTest, SegmentPagesCoverEverything) {
  SharedHeap heap(1024);
  EXPECT_EQ(heap.segment_pages(), 1u);  // never zero
  heap.alloc(1, "x");
  EXPECT_EQ(heap.segment_pages(), 1u);
  heap.alloc(2048, "y");
  EXPECT_GE(heap.segment_pages() * 1024ull, heap.bytes_used());
}

TEST(SharedHeapTest, TracksNamedAllocations) {
  SharedHeap heap(1024);
  heap.alloc(128, "alpha");
  heap.alloc(256, "beta");
  ASSERT_EQ(heap.allocations().size(), 2u);
  EXPECT_EQ(heap.allocations()[0].name, "alpha");
  EXPECT_EQ(heap.allocations()[1].bytes, 256u);
}

TEST(SharedHeapTest, RejectsBadRequests) {
  SharedHeap heap(1024);
  EXPECT_THROW((void)heap.alloc(0, "zero"), UsageError);
  EXPECT_THROW((void)heap.alloc(8, "badalign", 48), UsageError);
  EXPECT_THROW(SharedHeap(100), UsageError);
}

// --- TwinStore ---------------------------------------------------------------

std::vector<std::byte> bytes(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (const int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(TwinStoreTest, CreateGetDiscard) {
  TwinStore twins;
  const auto data = bytes({1, 2, 3, 4});
  twins.create(PageId{7}, data);
  EXPECT_TRUE(twins.has(PageId{7}));
  EXPECT_EQ(twins.size(), 1u);
  EXPECT_EQ(twins.get(PageId{7})[2], std::byte{3});
  twins.discard(PageId{7});
  EXPECT_FALSE(twins.has(PageId{7}));
}

TEST(TwinStoreTest, DoubleCreateIsABug) {
  TwinStore twins;
  const auto data = bytes({1});
  twins.create(PageId{1}, data);
  EXPECT_THROW(twins.create(PageId{1}, data), InternalError);
}

TEST(TwinStoreTest, RefreshRequiresExistingTwin) {
  TwinStore twins;
  const auto v1 = bytes({1, 2});
  const auto v2 = bytes({3, 4});
  EXPECT_THROW(twins.refresh(PageId{0}, v1), InternalError);
  twins.create(PageId{0}, v1);
  twins.refresh(PageId{0}, v2);
  EXPECT_EQ(twins.get(PageId{0})[0], std::byte{3});
}

TEST(TwinStoreTest, PagesSortedIsSortedAndComplete) {
  TwinStore twins;
  const auto data = bytes({0});
  for (const std::uint32_t p : {9u, 3u, 27u, 1u}) {
    twins.create(PageId{p}, data);
  }
  const auto pages = twins.pages_sorted();
  ASSERT_EQ(pages.size(), 4u);
  EXPECT_TRUE(std::is_sorted(pages.begin(), pages.end()));
}

// --- DiffStore ----------------------------------------------------------------

Diff make_diff(std::size_t page_size, std::size_t lo, std::size_t hi) {
  std::vector<std::byte> twin(page_size, std::byte{0});
  std::vector<std::byte> cur = twin;
  for (std::size_t i = lo; i < hi; ++i) cur[i] = std::byte{0xee};
  return Diff::create(twin, cur);
}

TEST(DiffStoreTest, PutFindEraseAccounting) {
  DiffStore store;
  const DiffStore::Key key{PageId{3}, EpochId{5}, NodeId{1}};
  store.put(key, make_diff(1024, 0, 64));
  EXPECT_NE(store.find(key), nullptr);
  EXPECT_GT(store.retained_bytes(), 64u);
  const std::uint64_t before = store.retained_bytes();
  store.put(key, make_diff(1024, 0, 8));  // replace with a smaller diff
  EXPECT_LT(store.retained_bytes(), before);
  store.erase(key);
  EXPECT_EQ(store.find(key), nullptr);
  EXPECT_EQ(store.retained_bytes(), 0u);
}

TEST(DiffStoreTest, SquashErasesCoveredOlderDiffs) {
  DiffStore store;
  const PageId page{2};
  const NodeId creator{4};
  store.squash_put({page, EpochId{1}, creator}, make_diff(1024, 0, 64));
  store.squash_put({page, EpochId{2}, creator}, make_diff(1024, 32, 48));
  EXPECT_EQ(store.size(), 2u);  // epoch 2 does not cover epoch 1
  store.squash_put({page, EpochId{3}, creator}, make_diff(1024, 0, 128));
  EXPECT_EQ(store.size(), 1u);  // epoch 3 covers both
  EXPECT_EQ(store.find({page, EpochId{1}, creator}), nullptr);
  EXPECT_NE(store.find({page, EpochId{3}, creator}), nullptr);
}

TEST(DiffStoreTest, SquashLeavesOtherCreatorsAndPagesAlone) {
  DiffStore store;
  store.squash_put({PageId{2}, EpochId{1}, NodeId{0}}, make_diff(1024, 0, 64));
  store.squash_put({PageId{9}, EpochId{1}, NodeId{1}}, make_diff(1024, 0, 64));
  store.squash_put({PageId{2}, EpochId{2}, NodeId{1}},
                   make_diff(1024, 0, 1024));
  EXPECT_EQ(store.size(), 3u);  // different creator: node 0's diff stays
}

TEST(DiffStoreTest, FindOrSuccessorSkipsToNewerEpoch) {
  DiffStore store;
  const PageId page{1};
  const NodeId creator{0};
  store.put({page, EpochId{5}, creator}, make_diff(1024, 0, 1024));
  // Epoch 3's entry was squashed away: the successor must be epoch 5.
  EXPECT_EQ(store.find_or_successor({page, EpochId{3}, creator}),
            store.find({page, EpochId{5}, creator}));
  // No diff at all for another creator.
  EXPECT_EQ(store.find_or_successor({page, EpochId{3}, NodeId{2}}), nullptr);
  // Nothing for another page either.
  EXPECT_EQ(store.find_or_successor({PageId{7}, EpochId{0}, creator}),
            nullptr);
}

}  // namespace
}  // namespace updsm
