# Acceptance gate for the barrier-free async ablation: virtual-time results
# are a pure function of the workload and config, so ablation_async (and
# the BENCH_async.json it writes) must be byte-identical across --jobs,
# --workers and reruns; every cell must converge; and the async gang on
# the CLI driver must be deterministic across worker counts while
# rejecting protocols whose handlers cannot run barrier-free.
# Run via ctest:
#   cmake -DBENCH_DIR=<build>/bench -P bench_async_determinism.cmake
if(NOT DEFINED BENCH_DIR)
  message(FATAL_ERROR "pass -DBENCH_DIR=<dir with bench binaries>")
endif()

set(flags --quick)

# --jobs=1 vs --jobs=4, a --workers=2 run, plus a repeat of --jobs=1: all
# byte-identical on stdout. The JSON stamps host provenance (including the
# resolved worker count, on purpose), so the workers-varied run is compared
# with that one line masked out.
foreach(run jobs1 jobs4 workers2 jobs1_again)
  set(extra "")
  if(run STREQUAL jobs4)
    set(extra --jobs=4)
  elseif(run STREQUAL workers2)
    set(extra --workers=2)
  else()
    set(extra --jobs=1)
  endif()
  execute_process(
    COMMAND ${BENCH_DIR}/ablation_async ${flags} ${extra}
    WORKING_DIRECTORY ${BENCH_DIR}
    OUTPUT_VARIABLE out_${run}
    ERROR_VARIABLE err_${run}
    RESULT_VARIABLE rc_${run})
  if(NOT rc_${run} EQUAL 0)
    message(FATAL_ERROR
      "ablation_async (${run}) failed (${rc_${run}}): ${err_${run}}")
  endif()
  file(READ ${BENCH_DIR}/BENCH_async.json raw)
  string(REGEX REPLACE "\"workers\": [0-9]+" "\"workers\": X" raw "${raw}")
  set(json_${run} "${raw}")
endforeach()
foreach(run jobs4 workers2 jobs1_again)
  if(NOT out_jobs1 STREQUAL out_${run})
    message(FATAL_ERROR
      "ablation_async: stdout differs between --jobs=1 and ${run}")
  endif()
  if(NOT json_jobs1 STREQUAL json_${run})
    message(FATAL_ERROR
      "BENCH_async.json differs between --jobs=1 and ${run}")
  endif()
endforeach()
message(STATUS
  "ablation_async: byte-identical across --jobs, --workers and reruns")

# The matrix must show the headline phenomena even at --quick scale: every
# cell converged, and async winning the straggler columns outright.
string(REGEX MATCH "\"all_converged\": true" converged "${json_jobs1}")
if(NOT converged)
  message(FATAL_ERROR "BENCH_async.json: not every cell converged")
endif()
string(REGEX MATCH
       "\"async_wins_straggler_cells\": ([0-9]+),\n  \"straggler_cells\": ([0-9]+)"
       wins "${json_jobs1}")
if(NOT wins OR NOT CMAKE_MATCH_1 EQUAL CMAKE_MATCH_2 OR
   CMAKE_MATCH_2 EQUAL 0)
  message(FATAL_ERROR
    "BENCH_async.json: async won ${CMAKE_MATCH_1}/${CMAKE_MATCH_2} "
    "straggler cells; expected a clean sweep")
endif()
message(STATUS
  "ablation_async: all cells converged; async swept the straggler column")

# CLI smoke: a barrier-free run on the driver must converge, report async
# progress, and be byte-identical across --workers (modulo the benign
# clamp warning the 1-node sequential baseline prints to stderr).
set(runner ${BENCH_DIR}/../tools/updsm_run)
set(common --app=sor-async --protocol=async-u --gang=async --nodes=4
    --scale=0.25 --faults=drop=0.2 --fault-seed=9)
execute_process(COMMAND ${runner} ${common} --workers=1
                OUTPUT_VARIABLE out_w1 RESULT_VARIABLE rc_w1)
execute_process(COMMAND ${runner} ${common} --workers=4
                OUTPUT_VARIABLE out_w4 RESULT_VARIABLE rc_w4)
if(NOT rc_w1 EQUAL 0 OR NOT rc_w4 EQUAL 0)
  message(FATAL_ERROR "updsm_run --gang=async smoke failed to run")
endif()
if(NOT out_w1 STREQUAL out_w4)
  message(FATAL_ERROR
    "updsm_run: --gang=async output differs between --workers=1 and 4")
endif()
if(NOT out_w1 MATCHES "async[ ]+[0-9]+ steps")
  message(FATAL_ERROR
    "updsm_run: --gang=async run reported no async steps")
endif()
if(NOT out_w1 MATCHES "bit-exact vs sequential")
  message(FATAL_ERROR "updsm_run: --gang=async run did not converge")
endif()
message(STATUS "updsm_run: async gang deterministic across --workers")

# Protocols whose handlers are not parallel-safe must be rejected at parse
# time with an actionable message, not crash mid-run.
execute_process(COMMAND ${runner} --app=jacobi --protocol=sc-sw --gang=async
                        --nodes=4 --scale=0.1
                ERROR_VARIABLE err_reject RESULT_VARIABLE rc_reject)
if(rc_reject EQUAL 0)
  message(FATAL_ERROR "updsm_run accepted --gang=async with sc-sw")
endif()
if(NOT err_reject MATCHES "not parallel-safe")
  message(FATAL_ERROR
    "updsm_run: async/sc-sw rejection message is not actionable: "
    "${err_reject}")
endif()
message(STATUS "updsm_run: async gang rejects non-parallel-safe protocols")
