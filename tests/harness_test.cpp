// Tests for the harness: report formatting and the experiment runner's
// aggregate guarantees (the invariants the benches' claims rest on).
#include <gtest/gtest.h>

#include <sstream>

#include "updsm/harness/experiment.hpp"
#include "updsm/harness/report.hpp"

namespace updsm::harness {
namespace {

TEST(TextTableTest, AlignsAndBoxes) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1.50"});
  table.add_row({"much-longer-name", "23"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);
  // Numeric cells right-align: "  1.50" not "1.50  ".
  EXPECT_NE(out.find(" 1.50 |"), std::string::npos);
}

TEST(TextTableTest, RejectsRaggedRows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), UsageError);
}

TEST(FmtTest, FormatsWithDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt(10.0, 0), "10");
}

TEST(BarChartTest, RendersSeriesPerGroup) {
  std::ostringstream os;
  print_bar_chart(os, "Title", {"g1", "g2"}, {"s1", "s2"},
                  {{1.0, 2.0}, {3.0, 4.0}}, 4.0, 8);
  const std::string out = os.str();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("g1"), std::string::npos);
  EXPECT_NE(out.find("s2"), std::string::npos);
  EXPECT_NE(out.find("########"), std::string::npos);  // 4.0 of 4.0, width 8
}

TEST(BarChartTest, RejectsMismatchedShapes) {
  std::ostringstream os;
  EXPECT_THROW(
      print_bar_chart(os, "t", {"g"}, {"s1", "s2"}, {{1.0}}, 1.0, 8),
      UsageError);
}

TEST(ExperimentTest, SequentialBaselineHasNoProtocolActivity) {
  apps::AppParams params;
  params.scale = 0.1;
  params.warmup_iterations = 1;
  params.measured_iterations = 2;
  const dsm::ClusterConfig cfg;
  const auto seq = run_sequential("sor", cfg, params);
  EXPECT_EQ(seq.nodes, 1);
  EXPECT_EQ(seq.counters.remote_misses, 0u);
  EXPECT_EQ(seq.counters.diffs_created, 0u);
  EXPECT_EQ(seq.net.total_one_way_messages(), 0u);
  EXPECT_GT(seq.elapsed, 0);
}

TEST(ExperimentTest, ParallelBeatsSequentialOnAStencil) {
  apps::AppParams params;
  params.scale = 0.5;
  params.warmup_iterations = 5;
  params.measured_iterations = 4;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 8;
  const auto seq = run_sequential("sor", cfg, params);
  const auto par = run_app("sor", protocols::ProtocolKind::BarU, cfg, params);
  const double s = speedup(par, seq);
  EXPECT_GT(s, 2.0) << "an embarrassingly regular stencil must scale";
  EXPECT_LE(s, 8.0) << "no super-linear speedups in this model";
}

TEST(ExperimentTest, ElapsedScalesWithMeasuredIterations) {
  apps::AppParams base;
  base.scale = 0.25;
  base.warmup_iterations = 5;
  base.measured_iterations = 3;
  apps::AppParams longer = base;
  longer.measured_iterations = 9;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  const auto a = run_app("expl", protocols::ProtocolKind::BarU, cfg, base);
  const auto b = run_app("expl", protocols::ProtocolKind::BarU, cfg, longer);
  const double ratio = static_cast<double>(b.elapsed) /
                       static_cast<double>(a.elapsed);
  EXPECT_NEAR(ratio, 3.0, 0.45) << "steady state: time ~ iterations";
}

TEST(HotPagesTest, AttributesEventsToAllocations) {
  apps::AppParams params;
  params.scale = 0.25;
  params.warmup_iterations = 3;
  params.measured_iterations = 2;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  const auto run = run_app("jacobi", protocols::ProtocolKind::BarI, cfg,
                           params);
  const auto hot = hottest_pages(run, 5);
  ASSERT_FALSE(hot.empty());
  // Ordered by activity, attributed to jacobi's named arrays.
  for (std::size_t i = 1; i < hot.size(); ++i) {
    EXPECT_GE(hot[i - 1].stats.total(), hot[i].stats.total());
  }
  for (const auto& page : hot) {
    EXPECT_TRUE(page.allocation == "jacobi.cur" ||
                page.allocation == "jacobi.next")
        << page.allocation;
    EXPECT_GT(page.stats.total(), 0u);
  }
  // Asking for more pages than were ever touched is fine.
  EXPECT_LE(hottest_pages(run, 100000).size(), run.page_stats.size());
}

}  // namespace
}  // namespace updsm::harness
