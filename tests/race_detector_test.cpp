// Tests for the data-race detector (the §5.2 companion tool): interval
// algebra, cluster integration, and the suite-wide property that every
// application in the paper's workload is conflict-free.
#include <gtest/gtest.h>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/dsm/race_detector.hpp"
#include "updsm/harness/experiment.hpp"
#include "updsm/protocols/factory.hpp"

namespace updsm {
namespace {

using dsm::Cluster;
using dsm::ClusterConfig;
using dsm::NodeContext;
using dsm::RaceCheck;
using dsm::RaceDetector;
using protocols::ProtocolKind;

// --- detector unit tests ------------------------------------------------------

TEST(RaceDetectorUnitTest, DisjointAccessesAreClean) {
  RaceDetector det(4);
  det.record(NodeId{0}, 0, 100, /*write=*/true);
  det.record(NodeId{1}, 100, 100, /*write=*/true);
  det.record(NodeId{2}, 200, 100, /*write=*/false);
  EXPECT_TRUE(det.finish_epoch(EpochId{1}).empty());
}

TEST(RaceDetectorUnitTest, WriteWriteOverlapDetected) {
  RaceDetector det(2);
  det.record(NodeId{0}, 0, 64, true);
  det.record(NodeId{1}, 32, 64, true);
  const auto reports = det.finish_epoch(EpochId{2});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].write_write);
  EXPECT_EQ(reports[0].lo, 32u);
  EXPECT_EQ(reports[0].hi, 64u);
  EXPECT_EQ(reports[0].epoch, EpochId{2});
}

TEST(RaceDetectorUnitTest, WriteReadOverlapDetected) {
  RaceDetector det(2);
  det.record(NodeId{0}, 128, 64, true);
  det.record(NodeId{1}, 160, 8, false);
  const auto reports = det.finish_epoch(EpochId{0});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].write_write);
  EXPECT_EQ(reports[0].writer, NodeId{0});
  EXPECT_EQ(reports[0].other, NodeId{1});
}

TEST(RaceDetectorUnitTest, OwnReadOfOwnWriteIsClean) {
  RaceDetector det(2);
  det.record(NodeId{0}, 0, 64, true);
  det.record(NodeId{0}, 0, 64, false);
  EXPECT_TRUE(det.finish_epoch(EpochId{0}).empty());
}

TEST(RaceDetectorUnitTest, EpochBoundaryClearsState) {
  RaceDetector det(2);
  det.record(NodeId{0}, 0, 64, true);
  EXPECT_TRUE(det.finish_epoch(EpochId{0}).empty());
  det.record(NodeId{1}, 0, 64, false);  // previous epoch's write is gone
  EXPECT_TRUE(det.finish_epoch(EpochId{1}).empty());
}

TEST(RaceDetectorUnitTest, AdjacentRangesCoalesceWithoutFalsePositives) {
  RaceDetector det(2);
  // Row-by-row forward writes (the view pattern) by node 0...
  for (int r = 0; r < 10; ++r) det.record(NodeId{0}, r * 64, 64, true);
  // ...and node 1 right after them.
  for (int r = 10; r < 20; ++r) det.record(NodeId{1}, r * 64, 64, true);
  EXPECT_TRUE(det.finish_epoch(EpochId{0}).empty());
}

// --- cluster integration -------------------------------------------------------

TEST(RaceDetectorClusterTest, ThrowsOnDeliberateWriteWriteRace) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.page_size = 1024;
  cfg.race_check = RaceCheck::Throw;
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(64 * 8, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::LmwI));
  EXPECT_THROW(cluster.run([&](NodeContext& ctx) {
                 auto x = ctx.array<std::uint64_t>(a, 64);
                 x.set(5, ctx.node());  // both nodes write element 5
                 ctx.barrier();
               }),
               ProtocolError);
}

TEST(RaceDetectorClusterTest, WarnModeCollectsReportsAndContinues) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.page_size = 1024;
  cfg.race_check = RaceCheck::Warn;
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(64 * 8, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::LmwI));
  cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<std::uint64_t>(a, 64);
    if (ctx.node() == 0) x.set(7, 1);
    ctx.barrier();
    // Anti-dependence: node 0 rewrites while node 1 reads, same epoch.
    if (ctx.node() == 0) {
      x.set(7, 2);
    } else {
      (void)x.get(7);
    }
    ctx.barrier();
  });
  ASSERT_FALSE(cluster.race_reports().empty());
  EXPECT_FALSE(cluster.race_reports()[0].write_write);
  EXPECT_FALSE(cluster.race_reports()[0].describe().empty());
}

TEST(RaceDetectorClusterTest, FalseSharingIsNotARace) {
  // Distinct elements of one page: the very case multi-writer protocols
  // exist for must NOT be flagged.
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.page_size = 1024;
  cfg.race_check = RaceCheck::Throw;
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(128 * 8, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::LmwI));
  cluster.run([&](NodeContext& ctx) {
    auto x = ctx.array<std::uint64_t>(a, 128);
    for (std::size_t i = static_cast<std::size_t>(ctx.node()); i < 128;
         i += 4) {
      x.set(i, i);
    }
    ctx.barrier();
    for (std::size_t i = 0; i < 128; ++i) EXPECT_EQ(x.get(i), i);
    ctx.barrier();
  });
}

// --- the suite-wide property ----------------------------------------------------

class AppsAreRaceFreeTest : public ::testing::TestWithParam<std::string_view> {
};

TEST_P(AppsAreRaceFreeTest, NoWriteWriteConflictsUnderTheDetector) {
  apps::AppParams params;
  params.scale = 0.25;
  params.warmup_iterations = 4;
  params.measured_iterations = 2;
  dsm::ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.race_check = RaceCheck::Warn;

  auto app = apps::make_app(GetParam(), params);
  mem::SharedHeap heap(cfg.page_size);
  app->allocate(heap);
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::BarU));
  cluster.run([&](NodeContext& ctx) { app->run(ctx); });

  // No application may contain a write/write conflict -- concurrent diffs
  // would overlap and the merge order would matter.
  for (const auto& report : cluster.race_reports()) {
    EXPECT_FALSE(report.write_write)
        << GetParam() << ": " << report.describe();
  }
  // sor's in-place red-black sweep reads neighbour rows that its peer is
  // concurrently writing: element-disjoint (true red-black), so correct,
  // but an intra-epoch anti-dependence at view granularity -- exactly the
  // LRC-tolerated pattern of paper §2.1. Every other app is fully clean.
  if (GetParam() != "sor") {
    EXPECT_TRUE(cluster.race_reports().empty())
        << GetParam() << ": "
        << cluster.race_reports().front().describe();
  } else {
    EXPECT_FALSE(cluster.race_reports().empty())
        << "sor's red-black anti-dependence should be visible to the "
           "detector";
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppsAreRaceFreeTest,
                         ::testing::ValuesIn(apps::app_names()),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace updsm
