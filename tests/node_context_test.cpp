// NodeContext / SharedArray edge cases: view boundaries, multi-page spans,
// type handling, and the write-trap semantics of view acquisition.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/dsm/null_protocol.hpp"
#include "updsm/protocols/factory.hpp"

namespace updsm {
namespace {

using dsm::Cluster;
using dsm::ClusterConfig;
using dsm::NodeContext;
using protocols::ProtocolKind;

ClusterConfig one_node() {
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.page_size = 1024;
  return cfg;
}

TEST(SharedArrayTest, EmptyViewsAreLegalAndFree) {
  const ClusterConfig cfg = one_node();
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(64 * 8, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::Null));
  cluster.run([&](NodeContext& ctx) {
    auto arr = ctx.array<double>(a, 64);
    EXPECT_TRUE(arr.read_view(10, 10).empty());
    EXPECT_TRUE(arr.write_view(0, 0).empty());
    EXPECT_THROW((void)arr.read_view(5, 3), UsageError);   // reversed
    EXPECT_THROW((void)arr.read_view(0, 65), UsageError);  // past the end
  });
}

TEST(SharedArrayTest, ViewsSpanPagesContiguously) {
  const ClusterConfig cfg = one_node();
  mem::SharedHeap heap(cfg.page_size);
  constexpr std::size_t kCount = 1024;  // 8 pages of 1 KB
  const GlobalAddr a = heap.alloc_page_aligned(kCount * 8, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::Null));
  cluster.run([&](NodeContext& ctx) {
    auto arr = ctx.array<double>(a, kCount);
    auto w = arr.write_all();
    for (std::size_t i = 0; i < kCount; ++i) w[i] = static_cast<double>(i);
    // A view crossing several page boundaries sees contiguous data.
    auto r = arr.read_view(100, 900);
    for (std::size_t i = 0; i < r.size(); ++i) {
      ASSERT_DOUBLE_EQ(r[i], static_cast<double>(100 + i));
    }
  });
}

TEST(SharedArrayTest, DifferentElementTypesShareTheHeap) {
  const ClusterConfig cfg = one_node();
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr da = heap.alloc_page_aligned(16 * 8, "doubles");
  const GlobalAddr ia = heap.alloc_page_aligned(16 * 4, "ints");
  const GlobalAddr fa = heap.alloc_page_aligned(16 * 4, "floats");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::Null));
  cluster.run([&](NodeContext& ctx) {
    auto d = ctx.array<double>(da, 16);
    auto i32 = ctx.array<std::int32_t>(ia, 16);
    auto f = ctx.array<float>(fa, 16);
    d.set(3, 2.5);
    i32.set(3, -7);
    f.set(3, 1.25f);
    EXPECT_DOUBLE_EQ(d.get(3), 2.5);
    EXPECT_EQ(i32.get(3), -7);
    EXPECT_FLOAT_EQ(f.get(3), 1.25f);
  });
}

TEST(SharedArrayTest, WriteViewAcquisitionIsTheWriteTrap) {
  // Taking a write view IS a write access: the trap fires per page the
  // view covers, even if nothing is stored through it. This mirrors
  // hardware, where the segv happens on the first touch, and it is why
  // bar-s can create "pure overhead" zero-length diffs.
  ClusterConfig cfg = one_node();
  cfg.num_nodes = 2;
  mem::SharedHeap heap(cfg.page_size);
  const GlobalAddr a = heap.alloc_page_aligned(256 * 8, "x");  // 2 pages
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::LmwI));
  cluster.run([&](NodeContext& ctx) {
    if (ctx.node() == 0) {
      auto arr = ctx.array<double>(a, 256);
      (void)arr.write_view(0, 256);  // touch both pages, store nothing
    }
    ctx.barrier();
  });
  EXPECT_EQ(cluster.runtime().counters().write_faults, 2u);
  EXPECT_EQ(cluster.runtime().counters().twins_created, 2u);
  EXPECT_EQ(cluster.runtime().counters().zero_diffs, 2u);
  EXPECT_EQ(cluster.runtime().counters().remote_misses, 0u);
}

TEST(NodeContextTest, ComputeChargesOnlyAppTime) {
  const ClusterConfig cfg = one_node();
  mem::SharedHeap heap(cfg.page_size);
  heap.alloc_page_aligned(64, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::Null));
  cluster.run([&](NodeContext& ctx) {
    ctx.compute(sim::usec(100));
    ctx.compute_flops(1000);  // 1000 * flop_ns
  });
  const auto sum = cluster.breakdown().summed();
  const double expected_us =
      100.0 + 1000.0 * cluster.runtime().costs().app.flop_ns / 1000.0;
  EXPECT_NEAR(sim::to_usec(sum.app), expected_us, 0.5);
  EXPECT_EQ(sum.os, 0);
  EXPECT_EQ(sum.wait, 0);
}

TEST(NodeContextTest, IdsAndGeometryAccessors) {
  ClusterConfig cfg = one_node();
  cfg.num_nodes = 3;
  mem::SharedHeap heap(cfg.page_size);
  heap.alloc_page_aligned(64, "x");
  Cluster cluster(cfg, heap, protocols::make_protocol(ProtocolKind::LmwI));
  std::mutex mu;  // nodes run concurrently under the default parallel gang
  std::vector<int> seen;
  cluster.run([&](NodeContext& ctx) {
    EXPECT_EQ(ctx.num_nodes(), 3);
    EXPECT_EQ(ctx.page_size(), 1024u);
    EXPECT_EQ(ctx.id().value(), static_cast<std::uint32_t>(ctx.node()));
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(ctx.node());
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace updsm
