# Acceptance gate for the node-scaling ablation: virtual-time results are
# a pure function of the workload and config, so ablation_nodes (and the
# BENCH_nodes.json it writes) must be byte-identical whatever the worker
# count and across reruns -- and the --fanout / --relay-threshold toggles
# must actually change the traffic the CLI driver reports (proving the
# knobs reach the transport).
# Run via ctest:
#   cmake -DBENCH_DIR=<build>/bench -P bench_nodes_determinism.cmake
if(NOT DEFINED BENCH_DIR)
  message(FATAL_ERROR "pass -DBENCH_DIR=<dir with bench binaries>")
endif()

# 8 and 64 nodes cover both the legacy size and a post-64 cluster the flat
# stack could never reach; --quick keeps the 64-node sweep inside the test
# budget while still exercising the tree and relay paths for real.
set(flags --quick --nodes-list=8,64)

# --jobs=1 vs --jobs=4, plus a repeat of --jobs=1: all byte-identical, on
# stdout and in the emitted JSON.
foreach(run jobs1 jobs4 jobs1_again)
  if(run STREQUAL jobs4)
    set(jobs 4)
  else()
    set(jobs 1)
  endif()
  execute_process(
    COMMAND ${BENCH_DIR}/ablation_nodes ${flags} --jobs=${jobs}
    WORKING_DIRECTORY ${BENCH_DIR}
    OUTPUT_VARIABLE out_${run}
    ERROR_VARIABLE err_${run}
    RESULT_VARIABLE rc_${run})
  if(NOT rc_${run} EQUAL 0)
    message(FATAL_ERROR
      "ablation_nodes (${run}) failed (${rc_${run}}): ${err_${run}}")
  endif()
  file(READ ${BENCH_DIR}/BENCH_nodes.json json_${run})
endforeach()
if(NOT out_jobs1 STREQUAL out_jobs4)
  message(FATAL_ERROR
    "ablation_nodes: stdout differs between --jobs=1 and --jobs=4")
endif()
if(NOT out_jobs1 STREQUAL out_jobs1_again)
  message(FATAL_ERROR "ablation_nodes: repeated runs differ")
endif()
if(NOT json_jobs1 STREQUAL json_jobs4)
  message(FATAL_ERROR
    "BENCH_nodes.json differs between --jobs=1 and --jobs=4")
endif()
if(NOT json_jobs1 STREQUAL json_jobs1_again)
  message(FATAL_ERROR "BENCH_nodes.json differs across reruns")
endif()
message(STATUS "ablation_nodes: byte-identical across --jobs and reruns")

# The sweep must show the tree actually engaging: relayed batches at 64
# nodes, and a 64-node row where the tree is strictly faster than flat.
string(REGEX MATCH "\"nodes\": 64[^}]*\"speedup_flat_vs_tree\": 1" tree_wins
       "${json_jobs1}")
if(NOT tree_wins)
  message(FATAL_ERROR
    "BENCH_nodes.json shows no 64-node cell where the tree barrier wins")
endif()
string(REGEX MATCH "\"nodes\": 64[^}]*\"relay_batches\": [1-9]" relay_engages
       "${json_jobs1}")
if(NOT relay_engages)
  message(FATAL_ERROR
    "BENCH_nodes.json shows no relayed batches at 64 nodes at all")
endif()
message(STATUS "ablation_nodes: tree wins and relay engages at 64 nodes")

# Sanity-check the toggles on the CLI driver: flat and tree runs of a
# barrier-heavy workload must agree on correctness but disagree on the
# reported times; relay must change the message column.
execute_process(
  COMMAND ${BENCH_DIR}/../tools/updsm_run --app=fft --protocol=bar-u
          --nodes=64 --scale=0.25 --iters=2 --csv
  OUTPUT_VARIABLE out_flat RESULT_VARIABLE rc_flat)
execute_process(
  COMMAND ${BENCH_DIR}/../tools/updsm_run --app=fft --protocol=bar-u
          --nodes=64 --scale=0.25 --iters=2 --csv --fanout=4
          --relay-threshold=4
  OUTPUT_VARIABLE out_tree RESULT_VARIABLE rc_tree)
if(NOT rc_flat EQUAL 0 OR NOT rc_tree EQUAL 0)
  message(FATAL_ERROR "updsm_run topology toggle smoke failed")
endif()
if(out_flat STREQUAL out_tree)
  message(FATAL_ERROR
    "updsm_run: --fanout/--relay-threshold output is identical to the flat "
    "run; the knobs are not reaching the transport")
endif()
foreach(out IN ITEMS "${out_flat}" "${out_tree}")
  if(NOT out MATCHES ",1\n")
    message(FATAL_ERROR "updsm_run topology smoke: a run reported incorrect")
  endif()
endforeach()
message(STATUS "updsm_run: tree/relay knobs change traffic, not results")
