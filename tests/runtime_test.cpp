// Tests for Runtime's cost-charging helpers: every protocol cost flows
// through these, so their attribution (who pays, which category) is pinned
// here against hand-computed values.
#include <gtest/gtest.h>

#include "updsm/dsm/runtime.hpp"
#include "updsm/dsm/write_notice.hpp"

namespace updsm::dsm {
namespace {

using sim::MsgKind;
using sim::SimTime;
using sim::TimeCat;

ClusterConfig tiny_config() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.page_size = 1024;
  return cfg;
}

TEST(RuntimeTest, MprotectChargesOsAndCounts) {
  Runtime rt(tiny_config(), 8);
  const NodeId n{1};
  rt.mprotect(n, PageId{3}, mem::Protect::ReadWrite);
  EXPECT_EQ(rt.table(n).prot(PageId{3}), mem::Protect::ReadWrite);
  EXPECT_EQ(rt.os(n).counters().mprotects, 1u);
  EXPECT_EQ(rt.clock(n).in(TimeCat::Os), rt.costs().os.mprotect_base)
      << "8-page segment: unstressed, nominal cost";
  EXPECT_EQ(rt.clock(n).in(TimeCat::App), 0);

  rt.mprotect(n, PageId{4}, mem::Protect::None, /*sigio=*/true);
  EXPECT_GT(rt.clock(n).in(TimeCat::Sigio), 0);
}

TEST(RuntimeTest, RoundtripAttributionIsExact) {
  Runtime rt(tiny_config(), 8);
  const NodeId requester{0};
  const NodeId responder{2};
  const auto& net = rt.costs().net;
  const SimTime work = sim::usec(50);
  rt.roundtrip(requester, responder, MsgKind::DataRequest, 16, 1024, work);

  // Requester: two traps (Os) + the full latency (Wait).
  EXPECT_EQ(rt.clock(requester).in(TimeCat::Os),
            net.send_trap + net.recv_trap);
  const SimTime service = net.recv_trap + rt.costs().dsm.handler_fixed +
                          work + net.send_trap;
  EXPECT_EQ(rt.clock(requester).in(TimeCat::Wait),
            net.wire_time(16) + service + net.wire_time(1024));
  // Responder: everything in interrupt context.
  EXPECT_EQ(rt.clock(responder).in(TimeCat::Sigio), service);
  EXPECT_EQ(rt.clock(responder).in(TimeCat::Os), 0);
  // Stats: one request, one reply.
  EXPECT_EQ(rt.net().stats().of(MsgKind::DataRequest).count, 1u);
  EXPECT_EQ(rt.net().stats().of(MsgKind::DataReply).count, 1u);
}

TEST(RuntimeTest, FlushChargesSenderAndReceiver) {
  Runtime rt(tiny_config(), 8);
  const NodeId from{0};
  const NodeId to{3};
  ASSERT_TRUE(rt.flush(from, to, 512));
  EXPECT_EQ(rt.clock(from).in(TimeCat::Os), rt.costs().net.send_trap);
  EXPECT_EQ(rt.clock(to).in(TimeCat::Sigio), rt.costs().net.recv_trap);
  EXPECT_EQ(rt.clock(to).in(TimeCat::Wait), 0)
      << "flushes are one-way: nobody waits";
  EXPECT_EQ(rt.net().stats().of(MsgKind::Flush).count, 1u);
}

TEST(RuntimeTest, DroppedFlushChargesSenderOnly) {
  ClusterConfig cfg = tiny_config();
  cfg.costs.net.flush_drop_rate = 1.0;  // drop everything
  Runtime rt(cfg, 8);
  ASSERT_FALSE(rt.flush(NodeId{0}, NodeId{1}, 512));
  EXPECT_GT(rt.clock(NodeId{0}).in(TimeCat::Os), 0);
  EXPECT_EQ(rt.clock(NodeId{1}).in(TimeCat::Sigio), 0)
      << "a dropped message never reaches the receiver";
  // Reliable flushes ignore the drop rate.
  ASSERT_TRUE(rt.flush(NodeId{0}, NodeId{1}, 512, /*reliable=*/true));
}

TEST(RuntimeTest, ChargeDsmScalesPerByte) {
  Runtime rt(tiny_config(), 8);
  rt.charge_dsm(NodeId{0}, sim::usec(4), 6.0, 1000);
  EXPECT_EQ(rt.clock(NodeId{0}).in(TimeCat::Dsm),
            sim::usec(4) + static_cast<SimTime>(6.0 * 1000));
}

TEST(RuntimeTest, PayloadAccumulatorsAreTakeOnce) {
  Runtime rt(tiny_config(), 8);
  rt.add_arrival_payload(NodeId{1}, 100);
  rt.add_arrival_payload(NodeId{1}, 28);
  EXPECT_EQ(rt.take_arrival_payload(NodeId{1}), 128u);
  EXPECT_EQ(rt.take_arrival_payload(NodeId{1}), 0u);
  rt.add_release_payload(NodeId{2}, 64);
  EXPECT_EQ(rt.take_release_payload(NodeId{2}), 64u);
}

TEST(RuntimeTest, EpochAdvances) {
  Runtime rt(tiny_config(), 8);
  EXPECT_EQ(rt.epoch(), EpochId{0});
  rt.advance_epoch();
  rt.advance_epoch();
  EXPECT_EQ(rt.epoch(), EpochId{2});
}

TEST(RuntimeTest, SelfRoundtripIsABug) {
  Runtime rt(tiny_config(), 8);
  EXPECT_THROW(rt.roundtrip(NodeId{1}, NodeId{1}, MsgKind::DataRequest, 0,
                            0, 0),
               InternalError);
  EXPECT_THROW((void)rt.flush(NodeId{2}, NodeId{2}, 8), InternalError);
}

TEST(RuntimeTest, RejectsAbsurdClusterSizes) {
  ClusterConfig cfg = tiny_config();
  cfg.num_nodes = 0;
  EXPECT_THROW(Runtime(cfg, 8), UsageError);
  cfg.num_nodes = static_cast<int>(dsm::kMaxNodes) + 1;  // over the bitmap
  EXPECT_THROW(Runtime(cfg, 8), UsageError);
  cfg.num_nodes = 8;
  cfg.barrier_fanout = 1;  // a 1-ary tree is a degenerate chain: rejected
  EXPECT_THROW(Runtime(cfg, 8), UsageError);
  cfg.barrier_fanout = 0;
  cfg.relay_fanout = 1;
  EXPECT_THROW(Runtime(cfg, 8), UsageError);
}

TEST(WriteNoticeTest, OrderIsEpochThenCreator) {
  const WriteNotice a{PageId{5}, NodeId{2}, EpochId{1}};
  const WriteNotice b{PageId{5}, NodeId{0}, EpochId{2}};
  const WriteNotice c{PageId{5}, NodeId{1}, EpochId{2}};
  WriteNoticeOrder less;
  EXPECT_TRUE(less(a, b));  // older epoch first, regardless of creator
  EXPECT_TRUE(less(b, c));  // same epoch: creator order
  EXPECT_FALSE(less(c, b));
  NoticeList list{c, a, b};
  std::sort(list.begin(), list.end(), less);
  EXPECT_EQ(list[0], a);
  EXPECT_EQ(list[1], b);
  EXPECT_EQ(list[2], c);
}

}  // namespace
}  // namespace updsm::dsm
