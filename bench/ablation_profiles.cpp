// X4: interconnect cost-profile ablation. The paper's §3-§4 conclusions
// (update beats invalidate; overdrive pays) are derived on the 1998 SP-2
// cost vector (160us RPC, 45us per message). This ablation re-runs three
// representative iterative apps (a stencil, a vector kernel, a
// transpose-heavy FFT) under all six fixed protocols PLUS the adaptive
// per-page selector on both built-in profiles (sp2 and rdma) and reports
//   (a) which fixed-protocol rankings invert when the network gets four
//       orders of magnitude cheaper per message, and
//   (b) how close the adaptive selector lands to the best fixed protocol
//       on every (app x profile) cell -- the within-5% acceptance claim.
// Emits BENCH_profiles.json. Deterministic by construction (virtual-time
// results depend only on workload + config); the bench_profiles_determinism
// ctest pins byte-identical output across --jobs and --workers.
#include <cstdio>
#include <cmath>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace updsm;

constexpr const char* kApps[] = {"jacobi", "tomcat", "fft"};
constexpr const char* kProfiles[] = {"sp2", "rdma"};

}  // namespace

int main(int argc, char** argv) {
  using protocols::ProtocolKind;
  auto opt = bench::BenchOptions::parse(argc, argv);

  const std::vector<ProtocolKind> fixed = protocols::all_paper_protocols();
  const std::vector<ProtocolKind> grid = protocols::all_protocols_with_adaptive();
  std::vector<bench::GridCell> cells;
  for (const char* app : kApps) {
    for (const ProtocolKind kind : grid) {
      cells.push_back(bench::GridCell{app, kind});
    }
  }

  // One cache per profile: same workloads, different cost vector. Any
  // --cost=K=V overrides compose on top of BOTH profiles (that is the
  // point of an override: perturb one knob, keep the rest of the sweep).
  // speedup[profile][app][protocol]
  std::map<std::string, std::map<std::string, std::map<std::string, double>>>
      speedup;
  std::map<std::string, std::map<std::string, std::map<std::string, double>>>
      elapsed_ms;
  std::map<std::string, std::map<std::string, std::uint64_t>> switches;
  for (const char* profile : kProfiles) {
    bench::BenchOptions popt = opt;
    popt.net_profile = profile;
    bench::RunCache cache(popt);
    cache.warm(cells);
    for (const bench::GridCell& cell : cells) {
      cache.verify(cell.app, cell.kind);
      const char* proto = protocols::to_string(cell.kind);
      speedup[profile][cell.app][proto] = cache.speedup(cell.app, cell.kind);
      elapsed_ms[profile][cell.app][proto] =
          sim::to_msec(cache.parallel(cell.app, cell.kind).elapsed);
      if (cell.kind == ProtocolKind::Adaptive) {
        switches[profile][cell.app] =
            cache.parallel(cell.app, cell.kind)
                .counters.adaptive_switches.load();
      }
    }
  }

  // Per-profile speedup tables.
  std::printf("Ablation X4: cost profiles (sp2 vs rdma), %d nodes, scale %.2f, "
              "%d iters\n",
              opt.nodes, opt.scale, opt.iterations);
  for (const char* profile : kProfiles) {
    std::printf("\n%s profile (speedup vs sequential):\n  %-10s", profile,
                "protocol");
    for (const char* app : kApps) std::printf(" %8s", app);
    std::printf("\n");
    for (const ProtocolKind kind : grid) {
      const char* proto = protocols::to_string(kind);
      std::printf("  %-10s", proto);
      for (const char* app : kApps) {
        std::printf(" %8.2f", speedup[profile][app][proto]);
      }
      std::printf("\n");
    }
  }

  // (a) Fixed-protocol ranking inversions between the two profiles: pairs
  // (p, q) with p strictly faster than q on sp2 but strictly slower on
  // rdma, per app. (Ties never count as an inversion.)
  struct Inversion {
    std::string app, faster_sp2, faster_rdma;
    double sp2_margin, rdma_margin;
  };
  std::vector<Inversion> inversions;
  for (const char* app : kApps) {
    for (std::size_t i = 0; i < fixed.size(); ++i) {
      for (std::size_t j = i + 1; j < fixed.size(); ++j) {
        const char* p = protocols::to_string(fixed[i]);
        const char* q = protocols::to_string(fixed[j]);
        const double sp = speedup["sp2"][app][p] - speedup["sp2"][app][q];
        const double rd = speedup["rdma"][app][p] - speedup["rdma"][app][q];
        if (sp > 0 && rd < 0) {
          inversions.push_back({app, p, q, sp, -rd});
        } else if (sp < 0 && rd > 0) {
          inversions.push_back({app, q, p, -sp, rd});
        }
      }
    }
  }
  std::printf("\nfixed-protocol ranking inversions (sp2 -> rdma): %zu\n",
              inversions.size());
  for (const Inversion& inv : inversions) {
    std::printf("  %-7s %s beats %s on sp2 (+%.2f) but loses on rdma "
                "(-%.2f)\n",
                inv.app.c_str(), inv.faster_sp2.c_str(),
                inv.faster_rdma.c_str(), inv.sp2_margin, inv.rdma_margin);
  }

  // (b) Adaptive vs the best fixed protocol, per cell. bar-m is reported
  // but also factored out: it skips the quiet-epoch twin scans by fiat
  // and "is not guaranteed to maintain consistency" (paper §5), so it is
  // an unsafe upper bound rather than a deployable competitor. The
  // per-cell mode switches settle during warmup (that is the point of a
  // warmup), so the measured-window adaptive_switches counter in the
  // JSON is normally 0 here; conformance tests pin the switching itself.
  std::printf("\nadaptive vs best fixed protocol (bar-m = unsafe bound):\n");
  double max_gap_pct = 0.0;
  double max_safe_gap_pct = 0.0;
  struct GapRow {
    std::string profile, app, best_fixed, best_safe;
    double best_speedup, adaptive_speedup, gap_pct;
    double best_safe_speedup, safe_gap_pct;
    std::uint64_t switches;
  };
  std::vector<GapRow> gaps;
  for (const char* profile : kProfiles) {
    for (const char* app : kApps) {
      std::string best_name, best_safe_name;
      double best = 0.0, best_safe = 0.0;
      for (const ProtocolKind kind : fixed) {
        const char* proto = protocols::to_string(kind);
        const double s = speedup[profile][app][proto];
        if (s > best) {
          best = s;
          best_name = proto;
        }
        if (s > best_safe && std::string_view(proto) != "bar-m") {
          best_safe = s;
          best_safe_name = proto;
        }
      }
      const double ad = speedup[profile][app]["adaptive"];
      const double gap_pct = 100.0 * (best - ad) / best;
      const double safe_gap_pct = 100.0 * (best_safe - ad) / best_safe;
      max_gap_pct = std::max(max_gap_pct, gap_pct);
      max_safe_gap_pct = std::max(max_safe_gap_pct, safe_gap_pct);
      gaps.push_back({profile, app, best_name, best_safe_name, best, ad,
                      gap_pct, best_safe, safe_gap_pct,
                      switches[profile][app]});
      std::printf("  %-5s %-7s best %-6s %5.2f  adaptive %5.2f  gap %+6.2f%% "
                  " | best safe %-6s %5.2f  gap %+6.2f%%\n",
                  profile, app, best_name.c_str(), best, ad, gap_pct,
                  best_safe_name.c_str(), best_safe, safe_gap_pct);
    }
  }
  std::printf("\nmax adaptive gap: %.2f%% vs best fixed, %.2f%% vs best "
              "SAFE fixed\n(acceptance: within ~5%% of the best fixed "
              "protocol everywhere; the residual\nvs bar-m is the "
              "quiet-epoch scan tax it unsafely skips)\n",
              max_gap_pct, max_safe_gap_pct);

  // --- BENCH_profiles.json ---------------------------------------------
  std::FILE* json = std::fopen("BENCH_profiles.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_profiles.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"cost_profiles\",\n  \"scale\": %.3f,\n"
               "  \"iters\": %d,\n  \"nodes\": %d,\n",
               opt.scale, opt.iterations, opt.nodes);
  // This bench sweeps both profiles itself, so the uniform header key
  // records the sweep (per-run cells carry their own profile).
  bench::write_host_env_json(json,
                             sim::Gang::resolve_workers(opt.workers, opt.nodes),
                             opt.gang, "sweep", opt.cost_overrides);
  std::fprintf(json, "  \"runs\": [");
  bool first = true;
  for (const char* profile : kProfiles) {
    for (const char* app : kApps) {
      for (const ProtocolKind kind : grid) {
        const char* proto = protocols::to_string(kind);
        std::fprintf(json,
                     "%s\n    {\"profile\": \"%s\", \"app\": \"%s\", "
                     "\"protocol\": \"%s\", \"speedup\": %.4f, "
                     "\"elapsed_ms\": %.3f, \"correct\": true}",
                     first ? "" : ",", profile, app, proto,
                     speedup[profile][app][proto],
                     elapsed_ms[profile][app][proto]);
        first = false;
      }
    }
  }
  std::fprintf(json, "\n  ],\n  \"adaptive\": [");
  first = true;
  for (const GapRow& g : gaps) {
    std::fprintf(json,
                 "%s\n    {\"profile\": \"%s\", \"app\": \"%s\", "
                 "\"best_fixed\": \"%s\", \"best_speedup\": %.4f, "
                 "\"adaptive_speedup\": %.4f, \"gap_pct\": %.3f, "
                 "\"best_safe_fixed\": \"%s\", \"best_safe_speedup\": %.4f, "
                 "\"safe_gap_pct\": %.3f, "
                 "\"adaptive_switches\": %llu}",
                 first ? "" : ",", g.profile.c_str(), g.app.c_str(),
                 g.best_fixed.c_str(), g.best_speedup, g.adaptive_speedup,
                 g.gap_pct, g.best_safe.c_str(), g.best_safe_speedup,
                 g.safe_gap_pct,
                 static_cast<unsigned long long>(g.switches));
    first = false;
  }
  std::fprintf(json, "\n  ],\n  \"inversions\": [");
  first = true;
  for (const Inversion& inv : inversions) {
    std::fprintf(json,
                 "%s\n    {\"app\": \"%s\", \"faster_on_sp2\": \"%s\", "
                 "\"faster_on_rdma\": \"%s\"}",
                 first ? "" : ",", inv.app.c_str(), inv.faster_sp2.c_str(),
                 inv.faster_rdma.c_str());
    first = false;
  }
  std::fprintf(json,
               "\n  ],\n  \"ranking_inversions\": %zu,\n"
               "  \"max_adaptive_gap_pct\": %.3f,\n"
               "  \"max_adaptive_safe_gap_pct\": %.3f\n}\n",
               inversions.size(), max_gap_pct, max_safe_gap_pct);
  std::fclose(json);
  std::printf("wrote BENCH_profiles.json (%zu cells x 2 profiles, all "
              "bit-exact vs sequential)\n",
              cells.size());
  return 0;
}
