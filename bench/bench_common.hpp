// Shared plumbing for the table/figure bench binaries: command-line
// parsing, the canonical experiment grid (8 apps x protocols at paper
// scale), and result caching so one binary can build several views of the
// same runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "updsm/harness/experiment.hpp"
#include "updsm/harness/report.hpp"

namespace updsm::bench {

struct BenchOptions {
  int nodes = 8;            // the paper's 8-node SP-2
  double scale = 1.0;       // linear problem-size factor
  int warmup = 5;           // covers migration + overdrive learning
  int iterations = 10;      // measured steady-state time-steps
  std::uint64_t seed = 0x1998'0330;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&](const char* prefix) -> const char* {
        const std::size_t len = std::strlen(prefix);
        return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
      };
      if (const char* v = value("--nodes=")) {
        opt.nodes = std::atoi(v);
      } else if (const char* v = value("--scale=")) {
        opt.scale = std::atof(v);
      } else if (const char* v = value("--iters=")) {
        opt.iterations = std::atoi(v);
      } else if (const char* v = value("--warmup=")) {
        opt.warmup = std::atoi(v);
      } else if (arg == "--quick") {
        opt.scale = 0.25;
        opt.iterations = 4;
      } else if (arg == "--help") {
        std::printf(
            "options: --nodes=N --scale=F --iters=N --warmup=N --quick\n");
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return opt;
  }

  [[nodiscard]] apps::AppParams app_params() const {
    apps::AppParams p;
    p.scale = scale;
    p.warmup_iterations = warmup;
    p.measured_iterations = iterations;
    p.seed = seed;
    return p;
  }

  [[nodiscard]] dsm::ClusterConfig cluster_config() const {
    dsm::ClusterConfig cfg;
    cfg.num_nodes = nodes;
    cfg.seed = seed;
    return cfg;
  }
};

/// Runs (and caches) the experiment grid used by several benches.
class RunCache {
 public:
  explicit RunCache(const BenchOptions& opt) : opt_(opt) {}

  const harness::RunResult& parallel(std::string_view app,
                                     protocols::ProtocolKind kind) {
    const std::string key =
        std::string(app) + "/" + protocols::to_string(kind);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      it = cache_
               .emplace(key, harness::run_app(app, kind,
                                              opt_.cluster_config(),
                                              opt_.app_params()))
               .first;
    }
    return it->second;
  }

  const harness::RunResult& sequential(std::string_view app) {
    const std::string key = std::string(app) + "/seq";
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      it = cache_
               .emplace(key, harness::run_sequential(app,
                                                     opt_.cluster_config(),
                                                     opt_.app_params()))
               .first;
    }
    return it->second;
  }

  double speedup(std::string_view app, protocols::ProtocolKind kind) {
    return harness::speedup(parallel(app, kind), sequential(app));
  }

  /// Checks that the run reproduced the sequential checksum; aborts loudly
  /// otherwise (a bench must never report numbers from a wrong answer).
  void verify(std::string_view app, protocols::ProtocolKind kind) {
    const auto& par = parallel(app, kind);
    const auto& seq = sequential(app);
    if (par.checksum != seq.checksum) {
      std::fprintf(stderr,
                   "FATAL: %s under %s diverged from sequential result\n",
                   std::string(app).c_str(), protocols::to_string(kind));
      std::exit(1);
    }
  }

 private:
  BenchOptions opt_;
  std::map<std::string, harness::RunResult> cache_;
};

/// Apps excluded from overdrive (dynamic sharing), per paper §5.1.
[[nodiscard]] inline bool overdrive_safe(std::string_view app) {
  apps::AppParams probe;
  return apps::make_app(app, probe)->overdrive_safe();
}

}  // namespace updsm::bench
