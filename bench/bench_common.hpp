// Shared plumbing for the table/figure bench binaries: command-line
// parsing, the canonical experiment grid (8 apps x protocols at paper
// scale), and result caching so one binary can build several views of the
// same runs.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "updsm/harness/experiment.hpp"
#include "updsm/harness/parallel_grid.hpp"
#include "updsm/harness/report.hpp"
#include "updsm/sim/gang.hpp"

namespace updsm::bench {

struct BenchOptions {
  int nodes = 8;            // the paper's 8-node SP-2
  double scale = 1.0;       // linear problem-size factor
  int warmup = 5;           // covers migration + overdrive learning
  int iterations = 10;      // measured steady-state time-steps
  std::uint64_t seed = 0x1998'0330;
  /// Experiment-grid worker count; 1 reproduces the serial behavior.
  /// Output is byte-identical for every value (results are collected by
  /// grid index, and each cell is an independent deterministic simulation).
  int jobs = harness::default_jobs();
  /// Intra-run node scheduling (--gang=parallel|baton|async). Output is
  /// byte-identical across parallel/baton (and across worker counts in
  /// every mode); async changes the iteration structure itself, so its
  /// numbers form their own column. A ctest pins both properties.
  sim::GangMode gang = sim::GangMode::Parallel;
  /// OS threads the gang multiplexes the simulated nodes over
  /// (--workers=M; 0 = auto). Output is byte-identical for every value;
  /// a ctest pins it.
  int workers = 0;
  /// Barrier-time flush aggregation (--no-aggregate disables). Checksums
  /// are bit-identical either way; messages and times differ by design.
  bool aggregate = true;
  /// Tree-barrier fanout (--fanout=K; 0 = the flat master barrier).
  /// Checksums are bit-identical either way; barrier times differ.
  int fanout = 0;
  /// Relayed flush dissemination (--relay-threshold=N; 0 = off) and its
  /// tree fanout (--relay-fanout=K). Checksums are bit-identical.
  int relay_threshold = 0;
  int relay_fanout = 4;
  /// Interconnect cost profile (--net-profile=sp2|rdma) plus free-form
  /// key=value overrides (--cost=K=V, repeatable). Stamped into every
  /// BENCH_*.json so numbers from different platforms never get compared
  /// silently.
  std::string net_profile = "sp2";
  std::vector<std::string> cost_overrides;
  /// Sliding-window length for the adaptive protocol (--adaptive-window=W).
  int adaptive_window = 4;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&](const char* prefix) -> const char* {
        const std::size_t len = std::strlen(prefix);
        return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
      };
      if (const char* v = value("--nodes=")) {
        opt.nodes = std::atoi(v);
      } else if (const char* v = value("--scale=")) {
        opt.scale = std::atof(v);
      } else if (const char* v = value("--iters=")) {
        opt.iterations = std::atoi(v);
      } else if (const char* v = value("--warmup=")) {
        opt.warmup = std::atoi(v);
      } else if (const char* v = value("--jobs=")) {
        opt.jobs = std::max(1, std::atoi(v));
      } else if (const char* v = value("--gang=")) {
        const std::string mode = v;
        if (mode == "parallel") {
          opt.gang = sim::GangMode::Parallel;
        } else if (mode == "baton") {
          opt.gang = sim::GangMode::Baton;
        } else if (mode == "async") {
          opt.gang = sim::GangMode::Async;
        } else {
          std::fprintf(stderr, "unknown gang mode: %s\n", v);
          std::exit(2);
        }
      } else if (const char* v = value("--workers=")) {
        opt.workers = std::atoi(v);
        if (opt.workers < 1) {
          std::fprintf(stderr, "--workers must be >= 1, got %s\n", v);
          std::exit(2);
        }
      } else if (arg == "--no-aggregate") {
        opt.aggregate = false;
      } else if (const char* v = value("--fanout=")) {
        opt.fanout = std::atoi(v);
      } else if (const char* v = value("--relay-threshold=")) {
        opt.relay_threshold = std::atoi(v);
      } else if (const char* v = value("--relay-fanout=")) {
        opt.relay_fanout = std::atoi(v);
      } else if (const char* v = value("--net-profile=")) {
        opt.net_profile = v;
      } else if (const char* v = value("--cost=")) {
        opt.cost_overrides.emplace_back(v);
      } else if (const char* v = value("--adaptive-window=")) {
        opt.adaptive_window = std::atoi(v);
      } else if (arg == "--quick") {
        opt.scale = 0.25;
        opt.iterations = 4;
      } else if (arg == "--help") {
        std::printf(
            "options: --nodes=N --scale=F --iters=N --warmup=N --jobs=N "
            "--gang=parallel|baton|async --workers=M --no-aggregate --fanout=K "
            "--relay-threshold=N --relay-fanout=K --net-profile=sp2|rdma "
            "--cost=K=V --adaptive-window=W --quick\n");
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return opt;
  }

  [[nodiscard]] apps::AppParams app_params() const {
    apps::AppParams p;
    p.scale = scale;
    p.warmup_iterations = warmup;
    p.measured_iterations = iterations;
    p.seed = seed;
    return p;
  }

  [[nodiscard]] dsm::ClusterConfig cluster_config() const {
    dsm::ClusterConfig cfg;
    cfg.num_nodes = nodes;
    cfg.seed = seed;
    cfg.gang = gang;
    cfg.workers = workers;
    cfg.aggregate_flushes = aggregate;
    cfg.barrier_fanout = fanout;
    cfg.relay_threshold = relay_threshold;
    cfg.relay_fanout = relay_fanout;
    cfg.net_profile = net_profile;
    cfg.costs = sim::CostModel::from_profile(net_profile);
    sim::apply_cost_overrides(cfg.costs, cost_overrides);
    cfg.adaptive_window = adaptive_window;
    // Friendly parse-time rejection of out-of-range sizes / fanouts.
    dsm::validate_cluster_config(cfg);
    return cfg;
  }
};

/// Host-execution provenance recorded uniformly in every BENCH_*.json so
/// perf trajectories across machines, worker counts and cost profiles stay
/// comparable: physical core count, the gang's *resolved* worker count, the
/// gang mode, the interconnect profile, and any per-key cost overrides.
/// Emits `"key": value,` lines (caller is mid-object).
inline void write_host_env_json(std::FILE* json, int resolved_workers,
                                sim::GangMode mode,
                                const std::string& net_profile = "sp2",
                                const std::vector<std::string>& overrides = {}) {
  std::fprintf(json,
               "  \"host_cores\": %u,\n  \"workers\": %d,\n"
               "  \"gang\": \"%s\",\n  \"net_profile\": \"%s\",\n",
               std::thread::hardware_concurrency(), resolved_workers,
               sim::to_string(mode), net_profile.c_str());
  std::fprintf(json, "  \"cost_overrides\": [");
  for (std::size_t i = 0; i < overrides.size(); ++i) {
    std::fprintf(json, "%s\"%s\"", i == 0 ? "" : ", ", overrides[i].c_str());
  }
  std::fprintf(json, "],\n");
}

inline void write_host_env_json(std::FILE* json, const BenchOptions& opt) {
  write_host_env_json(json, sim::Gang::resolve_workers(opt.workers, opt.nodes),
                      opt.gang, opt.net_profile, opt.cost_overrides);
}

/// One cell of the experiment grid: an application under a protocol.
struct GridCell {
  std::string app;
  protocols::ProtocolKind kind;
};

/// Runs (and caches) the experiment grid used by several benches.
///
/// Benches declare their whole grid up front with warm(), which executes
/// the missing cells on a worker pool (BenchOptions::jobs wide) and fills
/// the cache; the subsequent per-cell accessors then never run anything,
/// so the printed output is byte-identical no matter how many workers ran.
/// Accessors also work without warm() -- they fall back to running the
/// cell inline, exactly the pre-parallel behavior.
class RunCache {
 public:
  explicit RunCache(const BenchOptions& opt) : opt_(opt) {}

  /// Runs every not-yet-cached cell, plus the sequential baseline of every
  /// app named by `cells` (computed once per app and shared across all of
  /// its cells), on `opt.jobs` workers.
  void warm(const std::vector<GridCell>& cells) {
    std::vector<std::string> keys;
    std::vector<std::function<harness::RunResult()>> tasks;
    auto plan = [&](const std::string& key,
                    std::function<harness::RunResult()> task) {
      if (cache_.count(key) != 0) return;
      // Dedup within this warm() call: the same app appears in many cells.
      if (std::find(keys.begin(), keys.end(), key) != keys.end()) return;
      keys.push_back(key);
      tasks.push_back(std::move(task));
    };
    for (const GridCell& cell : cells) {
      const BenchOptions opt = opt_;
      plan(cell.app + "/seq", [opt, app = cell.app] {
        return harness::run_sequential(app, opt.cluster_config(),
                                       opt.app_params());
      });
      plan(cell.app + "/" + protocols::to_string(cell.kind),
           [opt, app = cell.app, kind = cell.kind] {
             return harness::run_app(app, kind, opt.cluster_config(),
                                     opt.app_params());
           });
    }
    std::vector<harness::RunResult> results =
        harness::run_grid(tasks, opt_.jobs);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      cache_.emplace(keys[i], std::move(results[i]));
    }
  }

  const harness::RunResult& parallel(std::string_view app,
                                     protocols::ProtocolKind kind) {
    const std::string key =
        std::string(app) + "/" + protocols::to_string(kind);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      it = cache_
               .emplace(key, harness::run_app(app, kind,
                                              opt_.cluster_config(),
                                              opt_.app_params()))
               .first;
    }
    return it->second;
  }

  const harness::RunResult& sequential(std::string_view app) {
    const std::string key = std::string(app) + "/seq";
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      it = cache_
               .emplace(key, harness::run_sequential(app,
                                                     opt_.cluster_config(),
                                                     opt_.app_params()))
               .first;
    }
    return it->second;
  }

  double speedup(std::string_view app, protocols::ProtocolKind kind) {
    return harness::speedup(parallel(app, kind), sequential(app));
  }

  /// Checks that the run reproduced the sequential checksum; aborts loudly
  /// otherwise (a bench must never report numbers from a wrong answer).
  void verify(std::string_view app, protocols::ProtocolKind kind) {
    const auto& par = parallel(app, kind);
    const auto& seq = sequential(app);
    if (par.checksum != seq.checksum) {
      std::fprintf(stderr,
                   "FATAL: %s under %s diverged from sequential result\n",
                   std::string(app).c_str(), protocols::to_string(kind));
      std::exit(1);
    }
  }

 private:
  BenchOptions opt_;
  std::map<std::string, harness::RunResult> cache_;
};

/// Apps excluded from overdrive (dynamic sharing), per paper §5.1.
[[nodiscard]] inline bool overdrive_safe(std::string_view app) {
  apps::AppParams probe;
  return apps::make_app(app, probe)->overdrive_safe();
}

/// All apps under every paper protocol, with the overdrive protocols
/// filtered to overdrive-safe apps -- the grid of sweep_matrix and
/// claims_summary.
[[nodiscard]] inline std::vector<GridCell> full_grid() {
  using protocols::ProtocolKind;
  std::vector<GridCell> cells;
  for (const auto app : apps::app_names()) {
    for (const auto kind : protocols::all_paper_protocols()) {
      if (!overdrive_safe(app) &&
          (kind == ProtocolKind::BarS || kind == ProtocolKind::BarM)) {
        continue;
      }
      cells.push_back(GridCell{std::string(app), kind});
    }
  }
  return cells;
}

/// All apps under the four base protocols (table1, fig2).
[[nodiscard]] inline std::vector<GridCell> base_grid() {
  std::vector<GridCell> cells;
  for (const auto app : apps::app_names()) {
    for (const auto kind : protocols::base_protocols()) {
      cells.push_back(GridCell{std::string(app), kind});
    }
  }
  return cells;
}

/// All apps under one protocol (fig3's bar-u column).
[[nodiscard]] inline std::vector<GridCell> single_protocol_grid(
    protocols::ProtocolKind kind) {
  std::vector<GridCell> cells;
  for (const auto app : apps::app_names()) {
    cells.push_back(GridCell{std::string(app), kind});
  }
  return cells;
}

}  // namespace updsm::bench
