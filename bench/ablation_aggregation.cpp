// X7: what barrier-time flush aggregation buys, and when. Sweeps the fixed
// per-message network cost over {15, 45, 100, 200} us for all six paper
// protocols on jacobi (stencil), tomcat (irregular mesh) and fft
// (all-to-all transpose), running every point both with and without
// aggregation, verifying bit-exactness against the sequential baseline at
// every point, and reporting the message reduction and runtime speedup the
// batching layer delivers. Emits BENCH_aggregation.json.
//
// Deterministic by construction: virtual-time results depend only on
// (workload, config), never on --jobs or wall clock; the
// bench_aggregation_determinism ctest pins byte-identical output.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace updsm;

constexpr int kPerMessageUs[] = {15, 45, 100, 200};
constexpr const char* kApps[] = {"jacobi", "tomcat", "fft"};

struct Cell {
  std::string app;
  protocols::ProtocolKind kind;
  int per_message_us;
};

}  // namespace

int main(int argc, char** argv) {
  using protocols::ProtocolKind;

  auto opt = bench::BenchOptions::parse(argc, argv);
  // 144 runs; keep the sweep snappy. 0.5 (not the usual 0.4) because fft's
  // power-of-two sizing needs >= half scale before a transpose row spans
  // several pages -- the regime where batching has records to coalesce.
  if (opt.scale == 1.0) opt.scale = 0.5;

  // Plan every run up front and execute on the --jobs worker pool; results
  // land in task order, so output is identical at any worker count. Each
  // cell contributes two runs: aggregated then per-page.
  std::vector<Cell> cells;
  std::vector<std::function<harness::RunResult()>> tasks;
  std::vector<std::string> seq_apps;
  for (const char* app : kApps) {
    const bench::BenchOptions o = opt;
    tasks.push_back([o, app = std::string(app)] {
      return harness::run_sequential(app, o.cluster_config(), o.app_params());
    });
    seq_apps.push_back(app);
    for (const ProtocolKind kind : protocols::all_paper_protocols()) {
      if (!bench::overdrive_safe(app) &&
          (kind == ProtocolKind::BarS || kind == ProtocolKind::BarM)) {
        continue;
      }
      for (const int us : kPerMessageUs) {
        cells.push_back(Cell{app, kind, us});
        for (const bool aggregate : {true, false}) {
          tasks.push_back([o, app = std::string(app), kind, us, aggregate] {
            dsm::ClusterConfig cfg = o.cluster_config();
            cfg.costs.net.per_message = sim::usec(us);
            cfg.aggregate_flushes = aggregate;
            return harness::run_app(app, kind, cfg, o.app_params());
          });
        }
      }
    }
  }
  const std::vector<harness::RunResult> results =
      harness::run_grid(tasks, opt.jobs);

  // Task order: [seq(app0), cells(app0) x {agg, per-page}..., seq(app1), ...].
  std::size_t next = 0;
  std::vector<harness::RunResult> seq_results;
  std::vector<harness::RunResult> agg_results;
  std::vector<harness::RunResult> page_results;
  std::size_t cell_idx = 0;
  for (std::size_t a = 0; a < seq_apps.size(); ++a) {
    seq_results.push_back(results[next++]);
    while (cell_idx < cells.size() && cells[cell_idx].app == seq_apps[a]) {
      agg_results.push_back(results[next++]);
      page_results.push_back(results[next++]);
      ++cell_idx;
    }
  }

  auto seq_of = [&](const std::string& app) -> const harness::RunResult& {
    for (std::size_t a = 0; a < seq_apps.size(); ++a) {
      if (seq_apps[a] == app) return seq_results[a];
    }
    std::fprintf(stderr, "FATAL: no sequential baseline for %s\n",
                 app.c_str());
    std::exit(1);
  };

  std::printf("Ablation X7: flush aggregation vs per-message cost "
              "(scale %.2f, %d nodes)\n\n",
              opt.scale, opt.nodes);

  std::FILE* json = std::fopen("BENCH_aggregation.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_aggregation.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"flush_aggregation\",\n"
               "  \"scale\": %.3f,\n  \"nodes\": %d,\n",
               opt.scale, opt.nodes);
  bench::write_host_env_json(json, opt);
  std::fprintf(json,
               "  \"per_message_us\": [15, 45, 100, 200],\n"
               "  \"runs\": [");

  bool first_json = true;
  std::string cur_header;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const harness::RunResult& agg = agg_results[i];
    const harness::RunResult& page = page_results[i];
    const harness::RunResult& seq = seq_of(cell.app);
    if (agg.checksum != seq.checksum || page.checksum != seq.checksum) {
      std::fprintf(stderr,
                   "FATAL: %s under %s diverged at per_message=%dus\n",
                   cell.app.c_str(), protocols::to_string(cell.kind),
                   cell.per_message_us);
      return 1;
    }

    const std::string header =
        cell.app + " under " + protocols::to_string(cell.kind);
    if (header != cur_header) {
      cur_header = header;
      std::printf("%s:\n  %-8s %10s %10s %8s %10s %10s %8s %9s\n",
                  header.c_str(), "per-msg", "per-page", "aggregated",
                  "speedup", "msgs-page", "msgs-agg", "reduce", "recs/bat");
    }
    const double speedup =
        static_cast<double>(page.elapsed) / static_cast<double>(agg.elapsed);
    const std::uint64_t page_msgs = page.net.flush_class_messages();
    const std::uint64_t agg_msgs = agg.net.flush_class_messages();
    const double reduction =
        agg_msgs == 0 ? 1.0
                      : static_cast<double>(page_msgs) /
                            static_cast<double>(agg_msgs);
    const std::uint64_t batches = agg.counters.flush_batches.load();
    const double recs_per_batch =
        batches == 0
            ? 0.0
            : static_cast<double>(agg.counters.flush_batch_records.load()) /
                  static_cast<double>(batches);
    std::printf("  %-5dus %8.2fms %8.2fms %7.3fx %10llu %10llu %7.2fx %9.2f\n",
                cell.per_message_us, sim::to_msec(page.elapsed),
                sim::to_msec(agg.elapsed), speedup,
                static_cast<unsigned long long>(page_msgs),
                static_cast<unsigned long long>(agg_msgs), reduction,
                recs_per_batch);
    if (cell.per_message_us ==
        kPerMessageUs[sizeof(kPerMessageUs) / sizeof(kPerMessageUs[0]) - 1]) {
      std::printf("\n");
    }

    std::fprintf(
        json,
        "%s\n    {\"app\": \"%s\", \"protocol\": \"%s\", "
        "\"per_message_us\": %d, \"elapsed_ms\": %.3f, "
        "\"elapsed_no_agg_ms\": %.3f, \"speedup_vs_no_agg\": %.4f, "
        "\"flush_messages\": %llu, \"flush_messages_no_agg\": %llu, "
        "\"message_reduction\": %.4f, \"total_messages\": %llu, "
        "\"total_messages_no_agg\": %llu, \"records_per_batch\": %.3f, "
        "\"header_bytes_saved\": %llu, \"correct\": true}",
        first_json ? "" : ",", cell.app.c_str(),
        protocols::to_string(cell.kind), cell.per_message_us,
        sim::to_msec(agg.elapsed), sim::to_msec(page.elapsed), speedup,
        static_cast<unsigned long long>(agg_msgs),
        static_cast<unsigned long long>(page_msgs), reduction,
        static_cast<unsigned long long>(agg.net.table_messages()),
        static_cast<unsigned long long>(page.net.table_messages()),
        recs_per_batch,
        static_cast<unsigned long long>(
            agg.counters.flush_batch_header_bytes_saved.load()));
    first_json = false;
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_aggregation.json (%zu cells x {agg, per-page}, "
              "all bit-exact vs sequential)\n",
              cells.size());
  return 0;
}
